package main

import (
	"strings"
	"testing"
)

func TestUnknownExperimentRejected(t *testing.T) {
	err := run([]string{"-exp", "warp-drive"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("error = %v", err)
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestFastExperimentsRun(t *testing.T) {
	// Run the cheap experiments end to end through the CLI path.
	for _, exp := range []string{"ablation-rps", "ablation-sched", "ablation-overlay"} {
		if err := run([]string{"-exp", exp, "-seed", "2"}); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestSampleOverride(t *testing.T) {
	if err := run([]string{"-exp", "table2", "-samples", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "fig1", "-samples", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelOverride(t *testing.T) {
	// Any worker count must be accepted and produce the same tables;
	// the CLI just threads it through (identity is asserted exhaustively
	// in internal/experiments).
	for _, p := range []string{"1", "4"} {
		if err := run([]string{"-exp", "ablation-overlay", "-parallel", p}); err != nil {
			t.Errorf("-parallel %s: %v", p, err)
		}
	}
}

func TestCSVFormat(t *testing.T) {
	if err := run([]string{"-exp", "ablation-rps", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "ablation-rps", "-format", "yaml"}); err == nil {
		t.Error("unknown format accepted")
	}
}
