package main

import (
	"strings"
	"testing"
)

func TestUnknownExperimentRejected(t *testing.T) {
	err := run([]string{"-exp", "warp-drive"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("error = %v", err)
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestFastExperimentsRun(t *testing.T) {
	// Run the cheap experiments end to end through the CLI path.
	for _, exp := range []string{"ablation-rps", "ablation-sched", "ablation-overlay"} {
		if err := run([]string{"-exp", exp, "-seed", "2"}); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestSampleOverride(t *testing.T) {
	if err := run([]string{"-exp", "table2", "-samples", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "fig1", "-samples", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVFormat(t *testing.T) {
	if err := run([]string{"-exp", "ablation-rps", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "ablation-rps", "-format", "yaml"}); err == nil {
		t.Error("unknown format accepted")
	}
}
