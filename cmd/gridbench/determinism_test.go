package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureRun executes run(args) with stdout captured and returns the
// output minus the first line (the run header embeds the worker count
// and Go version, which legitimately vary).
func captureRun(t *testing.T, args ...string) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := run(args)
	_ = w.Close()
	os.Stdout = old
	out := <-done
	_ = r.Close()
	if runErr != nil {
		t.Fatalf("run(%v): %v", args, runErr)
	}
	if i := strings.IndexByte(out, '\n'); i >= 0 {
		out = out[i+1:]
	}
	return out
}

// TestCriticalPathTableByteIdenticalAcrossParallelism runs Table 2 with
// tracing on at -parallel 1 and 8 and requires the whole stdout —
// Table 2 itself, the per-phase table, and the critical-path
// attribution table — to match byte for byte. Causal ids are seeded
// from each sample's simulation seed and attribution is a pure function
// of the spans, so the fan-out schedule must not leak into any of it.
func TestCriticalPathTableByteIdenticalAcrossParallelism(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	args := []string{"-exp", "table2", "-samples", "2", "-trace", trace}
	p1 := captureRun(t, append(args, "-parallel", "1")...)
	p8 := captureRun(t, append(args, "-parallel", "8")...)
	if p1 != p8 {
		t.Error("traced table2 output differs between -parallel 1 and -parallel 8")
	}
	if !strings.Contains(p1, "Critical-path attribution") {
		t.Error("output lacks the critical-path attribution table")
	}
	for _, res := range []string{"cpu", "phase"} {
		if !strings.Contains(p1, res) {
			t.Errorf("critical-path table never attributes to %q:\n%s", res, p1)
		}
	}
}

// TestOutputsByteIdenticalAcrossParallelism regenerates Table 1,
// Table 2, and Ablation A at -parallel 1 and -parallel 8 and requires
// the tables to match the committed goldens byte for byte. This is the
// determinism guard on the data-plane optimizations: batched reads,
// pooled RPC calls, incremental routes, and interned telemetry keys
// must not move a single event, so the numbers cannot drift — at any
// worker count.
func TestOutputsByteIdenticalAcrossParallelism(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"table1.golden", []string{"-exp", "table1"}},
		{"table2_s2.golden", []string{"-exp", "table2", "-samples", "2"}},
		{"ablation-staging.golden", []string{"-exp", "ablation-staging"}},
		{"ablation-balance.golden", []string{"-exp", "ablation-balance"}},
		{"ablation-delta.golden", []string{"-exp", "ablation-delta"}},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			p1 := captureRun(t, append(tc.args, "-parallel", "1")...)
			p8 := captureRun(t, append(tc.args, "-parallel", "8")...)
			if p1 != p8 {
				t.Errorf("output differs between -parallel 1 and -parallel 8")
			}
			if p1 != string(want) {
				t.Errorf("output drifted from committed golden %s:\n got %d bytes\nwant %d bytes",
					tc.golden, len(p1), len(want))
			}
		})
	}
}
