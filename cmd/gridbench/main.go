// Command gridbench regenerates the paper's evaluation — Figure 1,
// Table 1, Table 2 — and the repository's ablations, printing each as an
// aligned text table.
//
// Usage:
//
//	gridbench [-exp all|fig1|table1|table2|ablation-staging|ablation-cache|
//	           ablation-sched|ablation-migration|ablation-rps|
//	           ablation-recovery|ablation-partition|ablation-balance|
//	           ablation-delta]
//	          [-seed N] [-samples N] [-parallel N] [-trace out.json]
//	          [-telemetry out.json]
//
// Independent simulation samples fan out across -parallel worker
// goroutines (default: one per CPU). The tables are bit-identical for
// every worker count; -parallel only changes wall-clock time.
//
// -trace records the fig1 and table2 samples with the obs layer and
// writes one Chrome trace-event JSON file (load it in chrome://tracing
// or Perfetto), plus a per-phase latency table decomposing each cell's
// startup wall clock and a critical-path attribution table: a
// deepest-cover walk of every session's causal span tree, attributing
// each cell's startup seconds to resources (vfs-wait, cpu, rpc,
// staging, ...). The trace bytes, like the tables, are identical at
// every -parallel value.
//
// -incidents runs the ablation-recovery sweep with a flight recorder on
// every grid and writes one deterministic JSON file of the incident
// bundles — one "recovery" incident per failover, each sealed with a
// postmortem report attributing the outage to detection, restore, and
// replay. Only ablation-recovery records incidents.
//
// -telemetry runs the fig1 and table2 samples with the telemetry
// pipeline attached — per-second scrapes of the node, session, and
// task gauges with the standard SLO rules armed — and writes one
// deterministic JSON file of every sample's time series and alert
// firings. Like -trace, the bytes are identical at every -parallel
// value.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"vmgrid/internal/experiments"
	"vmgrid/internal/obs"
	"vmgrid/internal/sim"
	"vmgrid/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gridbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gridbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	samples := fs.Int("samples", 0, "override sample count (0 = paper default)")
	format := fs.String("format", "text", "output format: text or csv")
	parallel := fs.Int("parallel", 0, "worker goroutines per experiment (0 = one per CPU)")
	tracePath := fs.String("trace", "", "write Chrome trace JSON of fig1/table2 samples to this file")
	telemetryPath := fs.String("telemetry", "", "write telemetry time-series/alert JSON of fig1/table2 samples to this file")
	incidentsPath := fs.String("incidents", "", "write incident-bundle JSON of ablation-recovery runs to this file")
	pprofPath := fs.String("pprof", "", "write a CPU profile of the run to this file (go tool pprof)")
	pprofMemPath := fs.String("pprof-mem", "", "write an allocation profile at exit to this file (go tool pprof)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofPath != "" {
		f, err := os.Create(*pprofPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}
	if *pprofMemPath != "" {
		path := *pprofMemPath
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gridbench: pprof-mem:", err)
				return
			}
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gridbench: pprof-mem:", err)
			}
			_ = f.Close()
		}()
	}
	var traceSet *obs.TraceSet
	if *tracePath != "" {
		traceSet = obs.NewTraceSet()
	}
	var telemetrySet *telemetry.Set
	if *telemetryPath != "" {
		telemetrySet = telemetry.NewSet()
	}
	var incidentSet *obs.IncidentSet
	if *incidentsPath != "" {
		incidentSet = obs.NewIncidentSet()
	}
	var emit func(*experiments.Table)
	switch *format {
	case "text":
		emit = func(t *experiments.Table) { fmt.Println(t) }
	case "csv":
		emit = func(t *experiments.Table) { fmt.Print(t.CSV()) }
	default:
		return fmt.Errorf("unknown format %q (want text or csv)", *format)
	}
	workers := experiments.DefaultWorkers(*parallel)
	// The run header makes recorded results reproducible: rerun with the
	// same seed and any -parallel value to regenerate them byte for byte.
	fmt.Printf("# gridbench seed=%d parallel=%d cpus=%d %s\n\n",
		*seed, workers, runtime.NumCPU(), runtime.Version())

	runners := map[string]func() error{
		"fig1": func() error {
			cfg := experiments.DefaultFig1Config()
			cfg.Seed = *seed
			cfg.Workers = workers
			cfg.Trace = traceSet
			cfg.Telemetry = telemetrySet
			if *samples > 0 {
				cfg.Samples = *samples
			}
			rows, err := experiments.Figure1(cfg)
			if err != nil {
				return err
			}
			emit(experiments.Figure1Table(rows))
			return nil
		},
		"table1": func() error {
			rows, err := experiments.Table1(*seed, workers)
			if err != nil {
				return err
			}
			emit(experiments.Table1Table(rows))
			return nil
		},
		"table2": func() error {
			cfg := experiments.DefaultTable2Config()
			cfg.Seed = *seed
			cfg.Workers = workers
			cfg.Trace = traceSet
			cfg.Telemetry = telemetrySet
			if *samples > 0 {
				cfg.Samples = *samples
			}
			rows, err := experiments.Table2(cfg)
			if err != nil {
				return err
			}
			emit(experiments.Table2Table(rows))
			return nil
		},
		"ablation-staging": func() error {
			rows, err := experiments.AblationStaging(*seed, workers)
			if err != nil {
				return err
			}
			emit(experiments.StagingTable(rows))
			return nil
		},
		"ablation-cache": func() error {
			n := 4
			if *samples > 0 {
				n = *samples
			}
			rows, err := experiments.AblationProxyCache(*seed, n, workers)
			if err != nil {
				return err
			}
			emit(experiments.CacheTable(rows))
			return nil
		},
		"ablation-sched": func() error {
			rows, err := experiments.AblationScheduling(*seed, workers)
			if err != nil {
				return err
			}
			emit(experiments.SchedTable(rows))
			return nil
		},
		"ablation-migration": func() error {
			rows, err := experiments.AblationMigration(*seed, workers)
			if err != nil {
				return err
			}
			emit(experiments.MigrationTable(rows))
			return nil
		},
		"ablation-overlay": func() error {
			rows, err := experiments.AblationOverlay(*seed, workers)
			if err != nil {
				return err
			}
			emit(experiments.OverlayTable(rows))
			return nil
		},
		"ablation-recovery": func() error {
			n := 0 // package default replicate count
			if *samples > 0 {
				n = *samples
			}
			var rows []experiments.RecoveryRow
			var err error
			if incidentSet != nil {
				rows, err = experiments.AblationRecoveryIncidents(*seed, n, workers, incidentSet)
			} else {
				rows, err = experiments.AblationRecovery(*seed, n, workers)
			}
			if err != nil {
				return err
			}
			emit(experiments.RecoveryTable(rows))
			return nil
		},
		"ablation-partition": func() error {
			n := 0 // package default replicate count
			if *samples > 0 {
				n = *samples
			}
			rows, err := experiments.AblationPartition(*seed, n, workers)
			if err != nil {
				return err
			}
			emit(experiments.PartitionTable(rows))
			return nil
		},
		"ablation-balance": func() error {
			n := 0 // package default replicate count
			if *samples > 0 {
				n = *samples
			}
			rows, err := experiments.AblationBalance(*seed, n, workers)
			if err != nil {
				return err
			}
			emit(experiments.BalanceTable(rows))
			return nil
		},
		"ablation-delta": func() error {
			n := 0 // package default replicate count
			if *samples > 0 {
				n = *samples
			}
			rows, err := experiments.AblationDelta(*seed, n, workers)
			if err != nil {
				return err
			}
			emit(experiments.DeltaTable(rows))
			return nil
		},
		"ablation-rps": func() error {
			rows, err := experiments.AblationPredictors(*seed, workers)
			if err != nil {
				return err
			}
			emit(experiments.PredictorTable(rows))
			return nil
		},
	}

	if *exp == "all" {
		for _, name := range []string{
			"fig1", "table1", "table2",
			"ablation-staging", "ablation-cache", "ablation-sched",
			"ablation-migration", "ablation-overlay", "ablation-rps",
			"ablation-recovery", "ablation-partition", "ablation-balance",
			"ablation-delta",
		} {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		if err := writeTrace(traceSet, *tracePath, emit); err != nil {
			return err
		}
		if err := writeTelemetry(telemetrySet, *telemetryPath); err != nil {
			return err
		}
		return writeIncidents(incidentSet, *incidentsPath)
	}
	runner, ok := runners[*exp]
	if !ok {
		names := make([]string, 0, len(runners)+1)
		names = append(names, "all")
		for name := range runners {
			names = append(names, name)
		}
		return fmt.Errorf("unknown experiment %q (want one of: %s)", *exp, strings.Join(names, ", "))
	}
	if err := runner(); err != nil {
		return err
	}
	if err := writeTrace(traceSet, *tracePath, emit); err != nil {
		return err
	}
	if err := writeTelemetry(telemetrySet, *telemetryPath); err != nil {
		return err
	}
	return writeIncidents(incidentSet, *incidentsPath)
}

// writeTrace dumps the collected trace set as Chrome trace-event JSON
// and prints the per-phase latency decomposition plus the critical-path
// attribution. A no-op without -trace or when the selected experiment
// recorded nothing.
func writeTrace(ts *obs.TraceSet, path string, emit func(*experiments.Table)) error {
	if ts == nil {
		return nil
	}
	if ts.Len() == 0 {
		fmt.Fprintln(os.Stderr, "gridbench: -trace set but the selected experiment records no traces (only fig1 and table2 do)")
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ts.WriteChrome(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	emit(phaseTable(ts))
	emit(criticalPathTable(ts))
	fmt.Printf("# trace: %d samples -> %s\n", ts.Len(), path)
	return nil
}

// writeIncidents dumps the collected incident set as deterministic
// JSON. A no-op without -incidents or when the selected experiment
// recorded nothing.
func writeIncidents(is *obs.IncidentSet, path string) error {
	if is == nil {
		return nil
	}
	if is.Len() == 0 {
		fmt.Fprintln(os.Stderr, "gridbench: -incidents set but the selected experiment records no incidents (only ablation-recovery does)")
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := is.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("# incidents: %d bundles over %d runs -> %s\n", is.Total(), is.Len(), path)
	return nil
}

// writeTelemetry dumps the collected telemetry set as deterministic
// JSON. A no-op without -telemetry or when the selected experiment
// recorded nothing.
func writeTelemetry(ts *telemetry.Set, path string) error {
	if ts == nil {
		return nil
	}
	if ts.Len() == 0 {
		fmt.Fprintln(os.Stderr, "gridbench: -telemetry set but the selected experiment records no telemetry (only fig1 and table2 do)")
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ts.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("# telemetry: %d samples -> %s\n", ts.Len(), path)
	return nil
}

// phaseTable aggregates the set's lifecycle spans per experiment cell:
// sample labels end in "/<index>", which is stripped so a cell's samples
// fold into one row per phase. Only the startup decomposition ("phase"
// spans from core, "vmm" spans from the monitor) is tabulated; RPC and
// supervisor spans stay in the JSON.
func phaseTable(ts *obs.TraceSet) *experiments.Table {
	t := &experiments.Table{
		Title:  "Per-phase startup latency (simulated seconds)",
		Note:   "phase spans partition submitted->ready exactly; mean over a cell's samples",
		Header: []string{"cell", "cat", "phase", "count", "mean", "max", "total"},
	}
	type key struct{ cell, cat, name string }
	idx := map[key]int{}
	type row struct {
		key   key
		stat  obs.PhaseStat
		count int
	}
	var rows []row
	for _, p := range ts.PhaseStats() {
		if p.Cat != "phase" && p.Cat != "vmm" {
			continue
		}
		k := key{cellOf(p.Label), p.Cat, p.Name}
		i, ok := idx[k]
		if !ok {
			i = len(rows)
			idx[k] = i
			rows = append(rows, row{key: k})
		}
		rows[i].stat.Total += p.Total
		if p.Max > rows[i].stat.Max {
			rows[i].stat.Max = p.Max
		}
		rows[i].count += p.Count
	}
	for _, r := range rows {
		mean := 0.0
		if r.count > 0 {
			mean = r.stat.Total.Seconds() / float64(r.count)
		}
		t.Rows = append(t.Rows, []string{
			r.key.cell, r.key.cat, r.key.name,
			fmt.Sprintf("%d", r.count),
			fmt.Sprintf("%.3f", mean),
			fmt.Sprintf("%.3f", r.stat.Max.Seconds()),
			fmt.Sprintf("%.3f", r.stat.Total.Seconds()),
		})
	}
	return t
}

// criticalPathTable runs the postmortem analyzer over every recorded
// sample: each session root's causal tree is walked deepest-cover, and
// the resulting attributions are summed per experiment cell. Entries are
// visited in Add order and attributions are pre-sorted by the analyzer,
// so the rows — like every gridbench table — are identical at any
// -parallel value.
func criticalPathTable(ts *obs.TraceSet) *experiments.Table {
	t := &experiments.Table{
		Title:  "Critical-path attribution (simulated seconds)",
		Note:   "deepest-cover walk of each session's causal span tree; self time summed over a cell's samples",
		Header: []string{"cell", "resource", "cat", "name", "self", "share"},
	}
	type key struct{ cell, resource, cat, name string }
	idx := map[key]int{}
	type row struct {
		key  key
		self sim.Duration
	}
	var rows []row
	total := map[string]sim.Duration{}
	for _, e := range ts.Entries() {
		spans := e.Tracer.Spans()
		cell := cellOf(e.Label)
		for _, root := range obs.Roots(spans) {
			rep := obs.Analyze(spans, obs.SpanContext{Trace: root.Trace, Span: root.ID})
			if rep == nil {
				continue
			}
			total[cell] += rep.TotalUs
			for _, a := range rep.Attribution {
				k := key{cell, a.Resource, a.Cat, a.Name}
				i, ok := idx[k]
				if !ok {
					i = len(rows)
					idx[k] = i
					rows = append(rows, row{key: k})
				}
				rows[i].self += a.SelfUs
			}
		}
	}
	for _, r := range rows {
		share := 0.0
		if total[r.key.cell] > 0 {
			share = float64(r.self) / float64(total[r.key.cell])
		}
		t.Rows = append(t.Rows, []string{
			r.key.cell, r.key.resource, r.key.cat, r.key.name,
			fmt.Sprintf("%.3f", r.self.Seconds()),
			fmt.Sprintf("%.1f%%", share*100),
		})
	}
	return t
}

// cellOf strips a trailing "/<sample index>" from a trace label.
func cellOf(label string) string {
	i := strings.LastIndex(label, "/")
	if i < 0 {
		return label
	}
	for _, c := range label[i+1:] {
		if c < '0' || c > '9' {
			return label
		}
	}
	if i+1 == len(label) {
		return label
	}
	return label[:i]
}
