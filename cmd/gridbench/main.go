// Command gridbench regenerates the paper's evaluation — Figure 1,
// Table 1, Table 2 — and the repository's ablations, printing each as an
// aligned text table.
//
// Usage:
//
//	gridbench [-exp all|fig1|table1|table2|ablation-staging|ablation-cache|
//	           ablation-sched|ablation-migration|ablation-rps|
//	           ablation-recovery]
//	          [-seed N] [-samples N] [-parallel N]
//
// Independent simulation samples fan out across -parallel worker
// goroutines (default: one per CPU). The tables are bit-identical for
// every worker count; -parallel only changes wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"vmgrid/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gridbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gridbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	samples := fs.Int("samples", 0, "override sample count (0 = paper default)")
	format := fs.String("format", "text", "output format: text or csv")
	parallel := fs.Int("parallel", 0, "worker goroutines per experiment (0 = one per CPU)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var emit func(*experiments.Table)
	switch *format {
	case "text":
		emit = func(t *experiments.Table) { fmt.Println(t) }
	case "csv":
		emit = func(t *experiments.Table) { fmt.Print(t.CSV()) }
	default:
		return fmt.Errorf("unknown format %q (want text or csv)", *format)
	}
	workers := experiments.DefaultWorkers(*parallel)
	// The run header makes recorded results reproducible: rerun with the
	// same seed and any -parallel value to regenerate them byte for byte.
	fmt.Printf("# gridbench seed=%d parallel=%d cpus=%d %s\n\n",
		*seed, workers, runtime.NumCPU(), runtime.Version())

	runners := map[string]func() error{
		"fig1": func() error {
			cfg := experiments.DefaultFig1Config()
			cfg.Seed = *seed
			cfg.Workers = workers
			if *samples > 0 {
				cfg.Samples = *samples
			}
			rows, err := experiments.Figure1(cfg)
			if err != nil {
				return err
			}
			emit(experiments.Figure1Table(rows))
			return nil
		},
		"table1": func() error {
			rows, err := experiments.Table1(*seed, workers)
			if err != nil {
				return err
			}
			emit(experiments.Table1Table(rows))
			return nil
		},
		"table2": func() error {
			cfg := experiments.DefaultTable2Config()
			cfg.Seed = *seed
			cfg.Workers = workers
			if *samples > 0 {
				cfg.Samples = *samples
			}
			rows, err := experiments.Table2(cfg)
			if err != nil {
				return err
			}
			emit(experiments.Table2Table(rows))
			return nil
		},
		"ablation-staging": func() error {
			rows, err := experiments.AblationStaging(*seed, workers)
			if err != nil {
				return err
			}
			emit(experiments.StagingTable(rows))
			return nil
		},
		"ablation-cache": func() error {
			n := 4
			if *samples > 0 {
				n = *samples
			}
			rows, err := experiments.AblationProxyCache(*seed, n, workers)
			if err != nil {
				return err
			}
			emit(experiments.CacheTable(rows))
			return nil
		},
		"ablation-sched": func() error {
			rows, err := experiments.AblationScheduling(*seed, workers)
			if err != nil {
				return err
			}
			emit(experiments.SchedTable(rows))
			return nil
		},
		"ablation-migration": func() error {
			rows, err := experiments.AblationMigration(*seed, workers)
			if err != nil {
				return err
			}
			emit(experiments.MigrationTable(rows))
			return nil
		},
		"ablation-overlay": func() error {
			rows, err := experiments.AblationOverlay(*seed, workers)
			if err != nil {
				return err
			}
			emit(experiments.OverlayTable(rows))
			return nil
		},
		"ablation-recovery": func() error {
			n := 0 // package default replicate count
			if *samples > 0 {
				n = *samples
			}
			rows, err := experiments.AblationRecovery(*seed, n, workers)
			if err != nil {
				return err
			}
			emit(experiments.RecoveryTable(rows))
			return nil
		},
		"ablation-rps": func() error {
			rows, err := experiments.AblationPredictors(*seed, workers)
			if err != nil {
				return err
			}
			emit(experiments.PredictorTable(rows))
			return nil
		},
	}

	if *exp == "all" {
		for _, name := range []string{
			"fig1", "table1", "table2",
			"ablation-staging", "ablation-cache", "ablation-sched",
			"ablation-migration", "ablation-overlay", "ablation-rps",
			"ablation-recovery",
		} {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	runner, ok := runners[*exp]
	if !ok {
		names := make([]string, 0, len(runners)+1)
		names = append(names, "all")
		for name := range runners {
			names = append(names, name)
		}
		return fmt.Errorf("unknown experiment %q (want one of: %s)", *exp, strings.Join(names, ", "))
	}
	return runner()
}
