package main

import (
	"testing"

	"vmgrid/internal/wire"
)

func TestBuildDemoFabric(t *testing.T) {
	srv := wire.NewServer(1)
	if err := buildDemo(srv); err != nil {
		t.Fatal(err)
	}
	l := wire.NewLocal(srv)
	st, err := l.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != 5 {
		t.Fatalf("demo fabric has %d nodes, want 5", len(st.Nodes))
	}

	// The demo fabric supports a full session immediately.
	info, err := l.NewSession(wire.SessionParams{
		User: "demo", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
		DataNode: "data", DataFile: "dataset",
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "running" {
		t.Errorf("state = %q", info.State)
	}
}

func TestDemoFabricServesTCP(t *testing.T) {
	srv := wire.NewServer(2)
	if err := buildDemo(srv); err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	c, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	futures, err := c.Query("vm-future")
	if err != nil {
		t.Fatal(err)
	}
	if len(futures) != 2 {
		t.Errorf("demo futures = %d", len(futures))
	}
}
