package main

import (
	"testing"
	"time"

	"vmgrid/internal/chunk"
	"vmgrid/internal/wire"
)

func TestBuildDemoFabric(t *testing.T) {
	srv := wire.NewServer(1)
	if err := buildDemo(srv); err != nil {
		t.Fatal(err)
	}
	l := wire.NewLocal(srv)
	st, err := l.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != 5 {
		t.Fatalf("demo fabric has %d nodes, want 5", len(st.Nodes))
	}

	// The demo fabric supports a full session immediately.
	info, err := l.NewSession(wire.SessionParams{
		User: "demo", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
		DataNode: "data", DataFile: "dataset",
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "running" {
		t.Errorf("state = %q", info.State)
	}
}

// TestChunkedDemoReportsStagingStats mirrors the README walkthrough:
// a -chunked daemon's demo fabric records chunk traffic on a staged
// session and surfaces it through the top op.
func TestChunkedDemoReportsStagingStats(t *testing.T) {
	srv := wire.NewServer(4)
	srv.Grid().EnableChunkedStaging(chunk.Config{})
	if err := buildDemo(srv); err != nil {
		t.Fatal(err)
	}
	l := wire.NewLocal(srv)
	// The demo pre-installs rh72 on every compute node, so installing it
	// already minted each chunk into the node's cache: a staged session
	// dedups completely against local content and moves nothing.
	if _, err := l.NewSession(wire.SessionParams{
		User: "demo", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "staged",
	}); err != nil {
		t.Fatal(err)
	}
	top, err := l.Top()
	if err != nil {
		t.Fatal(err)
	}
	if top.Staging == nil {
		t.Fatal("chunked daemon reports no staging stats")
	}
	if top.Staging.ChunkHits == 0 || top.Staging.BytesSaved == 0 {
		t.Errorf("staged session on a pre-imaged node saved nothing: %+v", top.Staging)
	}
	if top.Staging.ChunkMisses != 0 {
		t.Errorf("pre-imaged node missed %d chunks staging its own image",
			top.Staging.ChunkMisses)
	}
}

func TestDemoFabricServesTCP(t *testing.T) {
	srv := wire.NewServer(2)
	if err := buildDemo(srv); err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	c, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	futures, err := c.Query("vm-future")
	if err != nil {
		t.Fatal(err)
	}
	if len(futures) != 2 {
		t.Errorf("demo futures = %d", len(futures))
	}
}

// TestGracefulDrain is the daemon's shutdown contract: the SIGTERM path
// calls srv.Close, which must complete promptly even with clients still
// connected and idle — their requests in flight finish, their parked
// readers abort — so the daemon never wedges on shutdown.
func TestGracefulDrain(t *testing.T) {
	srv := wire.NewServer(3)
	if err := buildDemo(srv); err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A full session round trip leaves real state behind the connection.
	if _, err := c.NewSession(wire.SessionParams{
		User: "drain", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung with an idle client connected")
	}
	if err := c.Ping(); err == nil {
		t.Error("server still answering after drain")
	}
}
