package main

import (
	"testing"
	"time"

	"vmgrid/internal/wire"
)

func TestBuildDemoFabric(t *testing.T) {
	srv := wire.NewServer(1)
	if err := buildDemo(srv); err != nil {
		t.Fatal(err)
	}
	l := wire.NewLocal(srv)
	st, err := l.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != 5 {
		t.Fatalf("demo fabric has %d nodes, want 5", len(st.Nodes))
	}

	// The demo fabric supports a full session immediately.
	info, err := l.NewSession(wire.SessionParams{
		User: "demo", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
		DataNode: "data", DataFile: "dataset",
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "running" {
		t.Errorf("state = %q", info.State)
	}
}

func TestDemoFabricServesTCP(t *testing.T) {
	srv := wire.NewServer(2)
	if err := buildDemo(srv); err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	c, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	futures, err := c.Query("vm-future")
	if err != nil {
		t.Fatal(err)
	}
	if len(futures) != 2 {
		t.Errorf("demo futures = %d", len(futures))
	}
}

// TestGracefulDrain is the daemon's shutdown contract: the SIGTERM path
// calls srv.Close, which must complete promptly even with clients still
// connected and idle — their requests in flight finish, their parked
// readers abort — so the daemon never wedges on shutdown.
func TestGracefulDrain(t *testing.T) {
	srv := wire.NewServer(3)
	if err := buildDemo(srv); err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A full session round trip leaves real state behind the connection.
	if _, err := c.NewSession(wire.SessionParams{
		User: "drain", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung with an idle client connected")
	}
	if err := c.Ping(); err == nil {
		t.Error("server still answering after drain")
	}
}
