// Command vmgridd serves a vmgrid fabric over TCP. The grid starts
// empty; build topology and images with vmgridctl (or any client of the
// wire protocol), then create and manage VM sessions.
//
// Usage:
//
//	vmgridd [-listen :7609] [-seed 1] [-demo] [-chunked]
//
// With -demo the daemon pre-builds the two-site testbed used throughout
// the paper reproduction: front end, two compute nodes and a data server
// on one LAN, an image server across a WAN, a 2 GB RedHat 7.2 image
// (warm snapshot included), and a 1 GB user dataset.
//
// With -chunked the grid runs the content-addressed chunk plane
// (DESIGN.md §10): staged transfers dedup against per-node chunk
// caches and `vmgridctl top` reports the grid-wide hit rate.
//
// The served grid is traced and telemetered from birth: the metrics,
// spans, top, alerts, and watch wire ops always have data, and the
// standard SLO rules (slowdown, stale-lease, vfs-retry-storm) are
// armed. Drive the dashboard with `vmgridctl top` / `vmgridctl alerts`.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"vmgrid/internal/chunk"
	"vmgrid/internal/hw"
	"vmgrid/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vmgridd:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", ":7609", "listen address")
	seed := flag.Uint64("seed", 1, "simulation seed")
	demo := flag.Bool("demo", false, "pre-build the paper's two-site testbed")
	chunked := flag.Bool("chunked", false, "enable the content-addressed chunked staging plane")
	flag.Parse()

	srv := wire.NewServer(*seed)
	if *chunked {
		srv.Grid().EnableChunkedStaging(chunk.Config{})
	}
	if *demo {
		if err := buildDemo(srv); err != nil {
			return fmt.Errorf("demo fabric: %w", err)
		}
	}
	if err := srv.Serve(*listen); err != nil {
		return err
	}
	fmt.Printf("vmgridd: serving on %s (seed %d, demo=%v)\n", srv.Addr(), *seed, *demo)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("vmgridd: shutting down")
	return srv.Close()
}

// buildDemo assembles the standard testbed directly on the in-process
// grid (no need to round-trip through the socket for our own setup).
func buildDemo(srv *wire.Server) error {
	c := fabricBuilder{srv: srv}
	c.node(wire.AddNodeParams{Name: "front", Site: "nwu", Roles: []string{"front-end"}})
	c.node(wire.AddNodeParams{Name: "compute1", Site: "nwu", Roles: []string{"compute"}, Slots: 2, DHCPPrefix: "10.1.0."})
	c.node(wire.AddNodeParams{Name: "compute2", Site: "nwu", Roles: []string{"compute"}, Slots: 2, DHCPPrefix: "10.1.1."})
	c.node(wire.AddNodeParams{Name: "data", Site: "nwu", Roles: []string{"data-server"}})
	c.node(wire.AddNodeParams{Name: "images", Site: "ufl", Roles: []string{"image-server"}})
	lan := []string{"front", "compute1", "compute2", "data"}
	for i, a := range lan {
		for _, b := range lan[i+1:] {
			c.link(a, b, "lan")
		}
	}
	for _, a := range []string{"front", "compute1", "compute2"} {
		c.link(a, "images", "wan")
	}
	for _, node := range []string{"compute1", "compute2", "images"} {
		c.image(wire.InstallImageParams{
			Node: node, Name: "rh72", OS: "redhat-7.2",
			DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB,
		})
	}
	c.data(wire.CreateDataParams{Node: "data", File: "dataset", Bytes: 1 * hw.GB})
	return c.err
}

// fabricBuilder threads the first error through a chain of setup calls.
type fabricBuilder struct {
	srv *wire.Server
	err error
}

func (b *fabricBuilder) node(p wire.AddNodeParams) {
	if b.err != nil {
		return
	}
	b.err = clientless(b.srv).AddNode(p)
}

func (b *fabricBuilder) link(a, bn, kind string) {
	if b.err != nil {
		return
	}
	b.err = clientless(b.srv).Connect(a, bn, kind)
}

func (b *fabricBuilder) image(p wire.InstallImageParams) {
	if b.err != nil {
		return
	}
	b.err = clientless(b.srv).InstallImage(p)
}

func (b *fabricBuilder) data(p wire.CreateDataParams) {
	if b.err != nil {
		return
	}
	b.err = clientless(b.srv).CreateData(p)
}

func clientless(srv *wire.Server) *wire.Local { return wire.NewLocal(srv) }
