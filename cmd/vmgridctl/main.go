// Command vmgridctl drives a running vmgridd over TCP.
//
// Usage:
//
//	vmgridctl [-addr host:7609] <command> [args]
//
// Commands:
//
//	status
//	ping
//	add-node   -name N -site S -roles compute,front-end [-slots 2] [-dhcp 10.0.0.]
//	connect    -a A -b B [-kind lan|wan]
//	install    -node N -image I [-os OS] [-disk-bytes B] [-mem-bytes B]
//	mkdata     -node N -file F -bytes B
//	session    -user U -front F -image I [-mode restore|reboot]
//	           [-disk non-persistent|persistent]
//	           [-access local|loopback|on-demand|staged]
//	           [-data-node N -data-file F] [-home N] [-site S]
//	run        -session S -cpu SECONDS [-reads N -read-bytes B -mount M]
//	migrate    -session S -target NODE
//	hibernate  -session S
//	wake       -session S
//	shutdown   -session S
//	usage      -session S
//	query      -kind host|vm-future|vm|image-server|data-server|alert
//	metrics
//	spans      [-cat C]
//	trace      SESSION   (or -session S)
//	incidents
//	incident   ID        (or -id I)
//	top        [-n FRAMES] [-every SECONDS]
//	alerts
//
// top renders a live text dashboard of the served grid: one frame per
// node/session table plus the firing alerts, streamed -n times with
// -every virtual seconds between frames (one frame by default).
//
// trace prints one session's causal span tree (client RPC spans nested
// under the phases that issued them, server-side handler spans under
// the RPCs that carried them) followed by the postmortem: the critical
// path through the session's lifecycle and the attribution of its
// duration to resources (vfs-wait, cpu, migration, quorum-write, ...).
// incidents lists the flight recorder's frozen bundles; incident dumps
// one bundle — ring context, causal capture, and postmortem report.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"vmgrid/internal/obs"
	"vmgrid/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vmgridctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("vmgridctl", flag.ContinueOnError)
	addr := global.String("addr", "127.0.0.1:7609", "vmgridd address")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing command (try: status, session, run, migrate, query)")
	}
	cmd, cmdArgs := rest[0], rest[1:]

	c, err := wire.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()

	switch cmd {
	case "ping":
		if err := c.Ping(); err != nil {
			return err
		}
		fmt.Println("pong")
		return nil

	case "status":
		st, err := c.Status()
		if err != nil {
			return err
		}
		fmt.Printf("virtual time: %.1fs\n", st.VirtualSec)
		fmt.Println("nodes:")
		for _, n := range st.Nodes {
			fmt.Printf("  %-12s site=%-6s slots=%d runnable=%d files=%d\n",
				n.Name, n.Site, n.Slots, n.Runnable, len(n.Files))
		}
		fmt.Println("sessions:")
		for _, s := range st.Sessions {
			fmt.Printf("  %-20s state=%-10s node=%-10s addr=%s\n",
				s.Name, s.State, s.Node, s.Addr)
		}
		return nil

	case "add-node":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		name := fs.String("name", "", "node name")
		site := fs.String("site", "", "site")
		roles := fs.String("roles", "", "comma-separated roles")
		slots := fs.Int("slots", 0, "VM slots for compute nodes")
		dhcp := fs.String("dhcp", "", "DHCP prefix (e.g. 10.0.0.)")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		return c.AddNode(wire.AddNodeParams{
			Name: *name, Site: *site,
			Roles: splitList(*roles), Slots: *slots, DHCPPrefix: *dhcp,
		})

	case "connect":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		a := fs.String("a", "", "first node")
		b := fs.String("b", "", "second node")
		kind := fs.String("kind", "lan", "lan or wan")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		return c.Connect(*a, *b, *kind)

	case "install":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		node := fs.String("node", "", "node")
		image := fs.String("image", "", "image name")
		osName := fs.String("os", "redhat-7.2", "guest OS")
		diskBytes := fs.Int64("disk-bytes", 2<<30, "disk size")
		memBytes := fs.Int64("mem-bytes", 128<<20, "memory snapshot size (0 = cold image)")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		return c.InstallImage(wire.InstallImageParams{
			Node: *node, Name: *image, OS: *osName,
			DiskBytes: *diskBytes, MemBytes: *memBytes,
		})

	case "mkdata":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		node := fs.String("node", "", "node")
		file := fs.String("file", "", "file name")
		bytes := fs.Int64("bytes", 1<<30, "size")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		return c.CreateData(wire.CreateDataParams{Node: *node, File: *file, Bytes: *bytes})

	case "session":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		user := fs.String("user", "", "grid user")
		front := fs.String("front", "", "front-end node")
		image := fs.String("image", "", "image name")
		mode := fs.String("mode", "restore", "restore or reboot")
		disk := fs.String("disk", "non-persistent", "disk policy")
		access := fs.String("access", "local", "image access")
		dataNode := fs.String("data-node", "", "data server node")
		dataFile := fs.String("data-file", "", "data file")
		home := fs.String("home", "", "home node for tunneling")
		site := fs.String("site", "", "preferred site")
		place := fs.String("place", "", "placement policy: least-loaded, predicted-load, pack (default: registry ranking)")
		hint := fs.String("node-hint", "", "preferred compute node (not a pin)")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		info, err := c.NewSession(wire.SessionParams{
			User: *user, FrontEnd: *front, Image: *image,
			Mode: *mode, Disk: *disk, Access: *access,
			DataNode: *dataNode, DataFile: *dataFile,
			HomeNode: *home, Site: *site,
			Place: *place, NodeHint: *hint,
		})
		if err != nil {
			return err
		}
		printSession(info)
		return nil

	case "run":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		session := fs.String("session", "", "session name")
		name := fs.String("name", "job", "workload name")
		cpu := fs.Float64("cpu", 0, "CPU seconds")
		reads := fs.Int("reads", 0, "data reads")
		readBytes := fs.Int64("read-bytes", 0, "data bytes")
		mount := fs.String("mount", "data", "mount for reads")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		res, err := c.Run(wire.RunParams{
			Session: *session, Name: *name, CPUSeconds: *cpu,
			Reads: *reads, ReadBytes: *readBytes, Mount: *mount,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%s: elapsed %.1fs user %.1fs sys %.1fs reads %d iowait %.1fs\n",
			res.Name, res.ElapsedSec, res.UserSec, res.SysSec, res.Reads, res.IOWaitSec)
		return nil

	case "migrate":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		session := fs.String("session", "", "session name")
		target := fs.String("target", "", "target node")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		info, err := c.Migrate(*session, *target)
		if err != nil {
			return err
		}
		printSession(info)
		return nil

	case "usage":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		session := fs.String("session", "", "session name")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		u, err := c.Usage(*session)
		if err != nil {
			return err
		}
		fmt.Printf("session %s\n", u.Session)
		fmt.Printf("  host cpu:    %.1fs\n", u.CPUSeconds)
		fmt.Printf("  guest work:  %.1fs (efficiency %.1f%%)\n", u.GuestUserSeconds, u.Efficiency*100)
		fmt.Printf("  cow diff:    %d KB\n", u.DiffBytes>>10)
		fmt.Printf("  image fetch: %d KB\n", u.ImageBytesFetched>>10)
		fmt.Printf("  data fetch:  %d KB\n", u.DataBytesFetched>>10)
		fmt.Printf("  wall time:   %.1fs\n", u.WallSeconds)
		return nil

	case "hibernate", "wake", "shutdown":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		session := fs.String("session", "", "session name")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		switch cmd {
		case "hibernate":
			info, err := c.Hibernate(*session)
			if err != nil {
				return err
			}
			printSession(info)
		case "wake":
			info, err := c.Wake(*session)
			if err != nil {
				return err
			}
			printSession(info)
		case "shutdown":
			if err := c.Shutdown(*session); err != nil {
				return err
			}
			fmt.Println("ok")
		}
		return nil

	case "query":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		kind := fs.String("kind", "vm-future", "record kind")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		entries, err := c.Query(*kind)
		if err != nil {
			return err
		}
		for _, e := range entries {
			keys := make([]string, 0, len(e.Attrs))
			for k := range e.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var attrs []string
			for _, k := range keys {
				attrs = append(attrs, fmt.Sprintf("%s=%v", k, e.Attrs[k]))
			}
			fmt.Printf("%-14s %-24s %s\n", e.Kind, e.Name, strings.Join(attrs, " "))
		}
		return nil

	case "metrics":
		snap, err := c.Metrics()
		if err != nil {
			return err
		}
		printMetrics(snap)
		return nil

	case "spans":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		cat := fs.String("cat", "", "only spans of this category (phase, rpc, vmm, supervisor, lifecycle)")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		spans, err := c.Spans()
		if err != nil {
			return err
		}
		for _, sp := range spans {
			if *cat != "" && sp.Cat != *cat {
				continue
			}
			mark := fmt.Sprintf("%10.3fs %10.3fs", sp.Start.Seconds(), sp.Dur().Seconds())
			if sp.Instant {
				mark = fmt.Sprintf("%10.3fs %10s", sp.Start.Seconds(), "-")
			}
			line := fmt.Sprintf("%s  %-20s %-11s %s", mark, sp.Track, sp.Cat, sp.Name)
			if sp.Note != "" {
				line += "  (" + sp.Note + ")"
			}
			fmt.Println(line)
		}
		return nil

	case "trace":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		session := fs.String("session", "", "session name")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		if *session == "" && fs.NArg() > 0 {
			*session = fs.Arg(0)
		}
		info, err := c.Trace(*session)
		if err != nil {
			return err
		}
		fmt.Printf("session %s  trace %s  (%d spans)\n", info.Session, info.Trace, len(info.Spans))
		printSpanTree(info.Spans)
		printReport(info.Report)
		return nil

	case "incidents":
		rows, err := c.Incidents()
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			fmt.Println("incidents: none")
			return nil
		}
		for _, r := range rows {
			state := "OPEN"
			if r.Sealed {
				state = fmt.Sprintf("sealed at %.1fs", r.SealedSec)
			}
			line := fmt.Sprintf("%-24s %10.1fs  %-16s %-24s %s",
				r.ID, r.AtSec, r.Trigger, r.Subject, state)
			if r.Causal > 0 {
				line += fmt.Sprintf("  causal=%d", r.Causal)
			}
			if r.Root != "" {
				line += "  root=" + r.Root
			}
			fmt.Println(line)
		}
		return nil

	case "incident":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		id := fs.String("id", "", "incident id")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		if *id == "" && fs.NArg() > 0 {
			*id = fs.Arg(0)
		}
		inc, err := c.Incident(*id)
		if err != nil {
			return err
		}
		fmt.Printf("incident %s\n", inc.ID)
		fmt.Printf("  trigger: %s\n", inc.Trigger)
		fmt.Printf("  subject: %s\n", inc.Subject)
		fmt.Printf("  at:      %.3fs\n", inc.At.Seconds())
		if inc.Sealed() {
			fmt.Printf("  sealed:  %.3fs\n", inc.SealedAt.Seconds())
		} else {
			fmt.Println("  sealed:  (still open)")
		}
		fmt.Printf("  context: %d spans in the flight ring at trigger\n", len(inc.Context))
		if len(inc.Causal) > 0 {
			fmt.Printf("causal capture (%d spans):\n", len(inc.Causal))
			printSpanTree(inc.Causal)
		}
		printReport(inc.Report)
		return nil

	case "top":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		frames := fs.Int("n", 1, "frames to stream")
		every := fs.Float64("every", 1, "virtual seconds between frames")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		if *frames <= 1 {
			info, err := c.Top()
			if err != nil {
				return err
			}
			printTop(info)
			return nil
		}
		frame := 0
		return c.Watch(*frames, *every, func(info wire.TopInfo) error {
			if frame > 0 {
				fmt.Println(strings.Repeat("-", 64))
			}
			frame++
			printTop(info)
			return nil
		})

	case "alerts":
		info, err := c.Alerts()
		if err != nil {
			return err
		}
		fmt.Println("rules:")
		for _, r := range info.Rules {
			fmt.Printf("  %-18s %s\n", r.Name, r.Expr)
		}
		if len(info.Firings) == 0 {
			fmt.Println("firings: none")
			return nil
		}
		fmt.Println("firings:")
		for _, f := range info.Firings {
			state := "resolved"
			if f.ResolvedSec < 0 {
				state = "ACTIVE"
			}
			fmt.Printf("  %10.1fs %-8s %-18s %-40s value=%g\n",
				f.AtSec, state, f.Rule, f.Series, f.Value)
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func printTop(info wire.TopInfo) {
	fmt.Printf("virtual time: %.1fs  (scrapes: %d)\n", info.VirtualSec, info.Scrapes)
	fmt.Println("nodes:")
	for _, n := range info.Nodes {
		if n.Crashed {
			fmt.Printf("  %-12s site=%-6s CRASHED\n", n.Name, n.Site)
			continue
		}
		line := fmt.Sprintf("  %-12s site=%-6s slots=%d runnable=%-3d load=%.2f",
			n.Name, n.Site, n.Slots, n.Runnable, n.Load)
		if n.PredictedLoad > 0 {
			line += fmt.Sprintf(" predicted=%.2f", n.PredictedLoad)
		}
		fmt.Println(line)
	}
	fmt.Println("sessions:")
	for _, s := range info.Sessions {
		line := fmt.Sprintf("  %-20s state=%-10s node=%-10s", s.Name, s.State, s.Node)
		if s.Slowdown > 0 {
			line += fmt.Sprintf(" slowdown=%.3f", s.Slowdown)
		}
		if s.VFSHitRate > 0 {
			line += fmt.Sprintf(" vfs-hit=%.1f%%", s.VFSHitRate*100)
		}
		if s.VFSRetries > 0 {
			line += fmt.Sprintf(" vfs-retries=%d", s.VFSRetries)
		}
		if s.Epoch > 0 {
			line += fmt.Sprintf(" epoch=%d", s.Epoch)
		}
		fmt.Println(line)
	}
	if st := info.Staging; st != nil {
		fmt.Printf("staging cache: hits=%d misses=%d hit-rate=%.1f%% saved=%s",
			st.ChunkHits, st.ChunkMisses, st.HitRate*100, fmtBytes(st.BytesSaved))
		if st.Evictions > 0 {
			fmt.Printf(" evictions=%d", st.Evictions)
		}
		fmt.Println()
	}
	if len(info.Replicas) > 0 {
		fmt.Println("gis replicas:")
		for _, r := range info.Replicas {
			line := fmt.Sprintf("  %-12s lag=%.1fs", r.Node, r.LagSec)
			if r.LagSec > 0 {
				line += "  STALE"
			}
			fmt.Println(line)
		}
	}
	if len(info.Alerts) == 0 {
		fmt.Println("alerts: none")
		return
	}
	fmt.Println("alerts:")
	for _, f := range info.Alerts {
		fmt.Printf("  FIRING %-18s %-40s since=%.1fs value=%g\n",
			f.Rule, f.Series, f.AtSec, f.Value)
	}
}

// printSpanTree renders spans as a tree using causal parent links:
// children indent under the span that caused them, siblings order by
// start time. Spans whose parent is absent (or zero) print as roots.
func printSpanTree(spans []obs.SpanRecord) {
	present := make(map[obs.SpanID]bool, len(spans))
	for _, sp := range spans {
		if sp.ID != 0 {
			present[sp.ID] = true
		}
	}
	children := make(map[obs.SpanID][]int)
	var roots []int
	for i, sp := range spans {
		if sp.Parent != 0 && sp.Parent != sp.ID && present[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	byStart := func(idx []int) {
		sort.SliceStable(idx, func(a, b int) bool { return spans[idx[a]].Start < spans[idx[b]].Start })
	}
	byStart(roots)
	for _, kids := range children {
		byStart(kids)
	}
	var emit func(i, depth int)
	emit = func(i, depth int) {
		sp := spans[i]
		mark := fmt.Sprintf("%10.3fs %10.3fs", sp.Start.Seconds(), sp.Dur().Seconds())
		if sp.Instant {
			mark = fmt.Sprintf("%10.3fs %10s", sp.Start.Seconds(), "-")
		}
		line := fmt.Sprintf("%s  %s%s/%s", mark, strings.Repeat("  ", depth), sp.Cat, sp.Name)
		if sp.Track != "" {
			line += "  [" + sp.Track + "]"
		}
		if sp.Note != "" {
			line += "  (" + sp.Note + ")"
		}
		fmt.Println(line)
		for _, k := range children[sp.ID] {
			emit(k, depth+1)
		}
	}
	for _, r := range roots {
		emit(r, 0)
	}
}

// printReport renders a postmortem: the critical path through the root
// interval and the resource attribution derived from it.
func printReport(rep *obs.Report) {
	if rep == nil {
		return
	}
	fmt.Printf("postmortem: %s/%s  %.3fs..%.3fs  total %.3fs\n",
		rep.RootCat, rep.Root, rep.StartUs.Seconds(), rep.EndUs.Seconds(), rep.TotalUs.Seconds())
	fmt.Println("critical path:")
	for _, st := range rep.Critical {
		fmt.Printf("  %10.3fs %10.3fs  %s%s/%s  [%s]\n",
			st.StartUs.Seconds(), st.Dur().Seconds(),
			strings.Repeat("  ", st.Depth), st.Cat, st.Name, st.Resource)
	}
	fmt.Println("attribution:")
	for _, a := range rep.Attribution {
		fmt.Printf("  %-14s %-11s %-26s %10.3fs %5.1f%%\n",
			a.Resource, a.Cat, a.Name, a.SelfUs.Seconds(), a.Share*100)
	}
}

func printMetrics(snap obs.Snapshot) {
	if len(snap.Counters) > 0 {
		fmt.Println("counters:")
		for _, c := range snap.Counters {
			fmt.Printf("  %-28s %g\n", c.Name, c.Value)
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Println("gauges:")
		for _, g := range snap.Gauges {
			fmt.Printf("  %-28s %g\n", g.Name, g.Value)
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Println("histograms:")
		for _, h := range snap.Histograms {
			fmt.Printf("  %-28s n=%-6d mean=%.6fs max=%.6fs\n", h.Name, h.Count, h.MeanSec, h.MaxSec)
		}
	}
}

func printSession(info wire.SessionInfo) {
	fmt.Printf("session %s\n", info.Name)
	fmt.Printf("  state:     %s\n", info.State)
	fmt.Printf("  node:      %s\n", info.Node)
	if info.Addr != "" {
		fmt.Printf("  address:   %s\n", info.Addr)
	}
	if info.ImageServer != "" {
		fmt.Printf("  image via: %s\n", info.ImageServer)
	}
	fmt.Printf("  local user: %s\n", info.LocalUser)
	fmt.Printf("  console:   %s\n", info.Console)
	if info.StartupSec > 0 {
		fmt.Printf("  startup:   %.1fs\n", info.StartupSec)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
