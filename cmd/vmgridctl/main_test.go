package main

import (
	"strings"
	"testing"
	"time"

	"vmgrid/internal/wire"
)

// startDaemon spins a wire server with the demo-like minimal fabric and
// returns its address.
func startDaemon(t *testing.T) string {
	t.Helper()
	srv := wire.NewServer(1)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	l := wire.NewLocal(srv)
	steps := []func() error{
		func() error {
			return l.AddNode(wire.AddNodeParams{Name: "front", Site: "s", Roles: []string{"front-end"}})
		},
		func() error {
			return l.AddNode(wire.AddNodeParams{Name: "c1", Site: "s", Roles: []string{"compute"},
				Slots: 2, DHCPPrefix: "10.0.0."})
		},
		func() error { return l.Connect("front", "c1", "lan") },
		func() error {
			return l.InstallImage(wire.InstallImageParams{Node: "c1", Name: "rh72", OS: "rh",
				DiskBytes: 1 << 30, MemBytes: 128 << 20})
		},
		func() error { return l.CreateData(wire.CreateDataParams{Node: "c1", File: "d", Bytes: 1 << 20}) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("setup step %d: %v", i, err)
		}
	}
	return srv.Addr()
}

func ctl(t *testing.T, addr string, args ...string) error {
	t.Helper()
	full := append([]string{"-addr", addr}, args...)
	return run(full)
}

func TestCtlCommandFlow(t *testing.T) {
	addr := startDaemon(t)
	if err := ctl(t, addr, "ping"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "status"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "session", "-user", "u", "-front", "front", "-image", "rh72"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "run", "-session", "sess-1-u", "-cpu", "5"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "usage", "-session", "sess-1-u"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "hibernate", "-session", "sess-1-u"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "wake", "-session", "sess-1-u"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "query", "-kind", "vm"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "shutdown", "-session", "sess-1-u"); err != nil {
		t.Fatal(err)
	}
}

func TestCtlBuildsTopology(t *testing.T) {
	addr := startDaemon(t)
	if err := ctl(t, addr, "add-node", "-name", "x", "-site", "s", "-roles", "compute,image-server", "-slots", "1"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "connect", "-a", "x", "-b", "c1", "-kind", "wan"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "install", "-node", "x", "-image", "rh71"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "mkdata", "-node", "x", "-file", "f", "-bytes", "1024"); err != nil {
		t.Fatal(err)
	}
}

func TestCtlErrors(t *testing.T) {
	addr := startDaemon(t)
	if err := ctl(t, addr); err == nil || !strings.Contains(err.Error(), "missing command") {
		t.Errorf("no command: %v", err)
	}
	if err := ctl(t, addr, "explode"); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Errorf("unknown command: %v", err)
	}
	if err := ctl(t, addr, "run", "-session", "ghost", "-cpu", "1"); err == nil {
		t.Error("run on ghost session accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:1", "ping"}); err == nil {
		t.Error("dial to dead address succeeded")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("splitList = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitList = %v", got)
		}
	}
	if splitList("") != nil {
		t.Error("empty list not nil")
	}
}

// TestCtlObservability: metrics, spans, top, and alerts round-trip over
// a live TCP daemon with a real session driving data into them.
func TestCtlObservability(t *testing.T) {
	addr := startDaemon(t)
	if err := ctl(t, addr, "session", "-user", "u", "-front", "front", "-image", "rh72"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "run", "-session", "sess-1-u", "-cpu", "5"); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"metrics"},
		{"spans"},
		{"spans", "-cat", "phase"},
		{"top"},
		{"alerts"},
	} {
		if err := ctl(t, addr, args...); err != nil {
			t.Errorf("ctl %v: %v", args, err)
		}
	}
}

// TestCtlReplicatedTop: a daemon running a replicated registry surfaces
// the replica rows — with lag once a replica is partitioned away from a
// write — over live TCP, and the split-brain rule is installed.
func TestCtlReplicatedTop(t *testing.T) {
	srv := wire.NewServer(1)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	l := wire.NewLocal(srv)
	for _, n := range []string{"g1", "g2"} {
		if err := l.AddNode(wire.AddNodeParams{Name: n, Site: "s", Roles: []string{"data-server"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AddNode(wire.AddNodeParams{Name: "c1", Site: "s", Roles: []string{"compute"},
		Slots: 1, DHCPPrefix: "10.0.0."}); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"c1", "g1"}, {"c1", "g2"}, {"g1", "g2"}} {
		if err := l.Connect(pair[0], pair[1], "lan"); err != nil {
			t.Fatal(err)
		}
	}
	grid := srv.Grid()
	if _, err := grid.EnableGISReplication([]string{"c1", "g1", "g2"}, 0); err != nil {
		t.Fatal(err)
	}

	c, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	top, err := c.Top()
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Replicas) != 3 {
		t.Fatalf("replica rows = %d, want 3: %+v", len(top.Replicas), top.Replicas)
	}
	for _, r := range top.Replicas {
		if r.LagSec != 0 {
			t.Fatalf("replica %s lag = %.1fs before any partition", r.Node, r.LagSec)
		}
	}

	// Partition g2, advance virtual time (watch frames drive the clock),
	// and write: the majority takes the record, g2 falls behind.
	if err := grid.Net().SetNodeUp("g2", false); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, srv.Addr(), "top", "-n", "3", "-every", "2"); err != nil {
		t.Fatal(err)
	}
	if err := grid.Info().RegisterFrom("c1", "host", "late-arrival", nil, 0); err != nil {
		t.Fatal(err)
	}
	top, err = c.Top()
	if err != nil {
		t.Fatal(err)
	}
	lagged := 0.0
	for _, r := range top.Replicas {
		if r.Node == "g2" {
			lagged = r.LagSec
		}
	}
	if lagged <= 0 {
		t.Fatalf("partitioned replica shows no lag: %+v", top.Replicas)
	}

	alerts, err := c.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range alerts.Rules {
		if r.Name == "split-brain-risk" {
			found = true
		}
	}
	if !found {
		t.Fatalf("split-brain-risk rule not installed: %+v", alerts.Rules)
	}
}

// TestCtlTopStreams: multi-frame top uses the watch op and renders every
// frame; frames advance virtual time on an idle grid.
func TestCtlTopStreams(t *testing.T) {
	addr := startDaemon(t)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	before, err := c.Top()
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "top", "-n", "3", "-every", "2"); err != nil {
		t.Fatal(err)
	}
	after, err := c.Top()
	if err != nil {
		t.Fatal(err)
	}
	if after.VirtualSec < before.VirtualSec+4 {
		t.Fatalf("watch did not advance virtual time: %.1f -> %.1f",
			before.VirtualSec, after.VirtualSec)
	}
	if len(after.Nodes) == 0 {
		t.Fatal("top snapshot lost the nodes")
	}
}

// TestCtlWatchDrain: closing the daemon mid-watch errors out the stream
// instead of hanging the client.
func TestCtlWatchDrain(t *testing.T) {
	srv := wire.NewServer(1)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	l := wire.NewLocal(srv)
	if err := l.AddNode(wire.AddNodeParams{Name: "front", Site: "s", Roles: []string{"front-end"}}); err != nil {
		t.Fatal(err)
	}
	c, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	frames := 0
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.Watch(1_000_000, 1, func(wire.TopInfo) error {
			frames++
			return nil
		})
	}()
	// Let a few frames land, then drain the server under the stream.
	for i := 0; i < 200 && frames == 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("watch survived server drain")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch hung through server drain")
	}
	if frames == 0 {
		t.Fatal("no frames before drain")
	}
}
