package main

import (
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"vmgrid/internal/chunk"
	"vmgrid/internal/wire"
)

// startDaemon spins a wire server with the demo-like minimal fabric and
// returns its address.
func startDaemon(t *testing.T) string {
	t.Helper()
	srv := wire.NewServer(1)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	l := wire.NewLocal(srv)
	steps := []func() error{
		func() error {
			return l.AddNode(wire.AddNodeParams{Name: "front", Site: "s", Roles: []string{"front-end"}})
		},
		func() error {
			return l.AddNode(wire.AddNodeParams{Name: "c1", Site: "s", Roles: []string{"compute"},
				Slots: 2, DHCPPrefix: "10.0.0."})
		},
		func() error { return l.Connect("front", "c1", "lan") },
		func() error {
			return l.InstallImage(wire.InstallImageParams{Node: "c1", Name: "rh72", OS: "rh",
				DiskBytes: 1 << 30, MemBytes: 128 << 20})
		},
		func() error { return l.CreateData(wire.CreateDataParams{Node: "c1", File: "d", Bytes: 1 << 20}) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("setup step %d: %v", i, err)
		}
	}
	return srv.Addr()
}

func ctl(t *testing.T, addr string, args ...string) error {
	t.Helper()
	full := append([]string{"-addr", addr}, args...)
	return run(full)
}

func TestCtlCommandFlow(t *testing.T) {
	addr := startDaemon(t)
	if err := ctl(t, addr, "ping"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "status"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "session", "-user", "u", "-front", "front", "-image", "rh72"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "run", "-session", "sess-1-u", "-cpu", "5"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "usage", "-session", "sess-1-u"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "hibernate", "-session", "sess-1-u"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "wake", "-session", "sess-1-u"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "query", "-kind", "vm"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "shutdown", "-session", "sess-1-u"); err != nil {
		t.Fatal(err)
	}
}

func TestCtlBuildsTopology(t *testing.T) {
	addr := startDaemon(t)
	if err := ctl(t, addr, "add-node", "-name", "x", "-site", "s", "-roles", "compute,image-server", "-slots", "1"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "connect", "-a", "x", "-b", "c1", "-kind", "wan"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "install", "-node", "x", "-image", "rh71"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "mkdata", "-node", "x", "-file", "f", "-bytes", "1024"); err != nil {
		t.Fatal(err)
	}
}

func TestCtlErrors(t *testing.T) {
	addr := startDaemon(t)
	if err := ctl(t, addr); err == nil || !strings.Contains(err.Error(), "missing command") {
		t.Errorf("no command: %v", err)
	}
	if err := ctl(t, addr, "explode"); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Errorf("unknown command: %v", err)
	}
	if err := ctl(t, addr, "run", "-session", "ghost", "-cpu", "1"); err == nil {
		t.Error("run on ghost session accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:1", "ping"}); err == nil {
		t.Error("dial to dead address succeeded")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("splitList = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitList = %v", got)
		}
	}
	if splitList("") != nil {
		t.Error("empty list not nil")
	}
}

// TestCtlObservability: metrics, spans, top, and alerts round-trip over
// a live TCP daemon with a real session driving data into them.
func TestCtlObservability(t *testing.T) {
	addr := startDaemon(t)
	if err := ctl(t, addr, "session", "-user", "u", "-front", "front", "-image", "rh72"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "run", "-session", "sess-1-u", "-cpu", "5"); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"metrics"},
		{"spans"},
		{"spans", "-cat", "phase"},
		{"top"},
		{"alerts"},
	} {
		if err := ctl(t, addr, args...); err != nil {
			t.Errorf("ctl %v: %v", args, err)
		}
	}
}

// TestCtlReplicatedTop: a daemon running a replicated registry surfaces
// the replica rows — with lag once a replica is partitioned away from a
// write — over live TCP, and the split-brain rule is installed.
func TestCtlReplicatedTop(t *testing.T) {
	srv := wire.NewServer(1)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	l := wire.NewLocal(srv)
	for _, n := range []string{"g1", "g2"} {
		if err := l.AddNode(wire.AddNodeParams{Name: n, Site: "s", Roles: []string{"data-server"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AddNode(wire.AddNodeParams{Name: "c1", Site: "s", Roles: []string{"compute"},
		Slots: 1, DHCPPrefix: "10.0.0."}); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"c1", "g1"}, {"c1", "g2"}, {"g1", "g2"}} {
		if err := l.Connect(pair[0], pair[1], "lan"); err != nil {
			t.Fatal(err)
		}
	}
	grid := srv.Grid()
	if _, err := grid.EnableGISReplication([]string{"c1", "g1", "g2"}, 0); err != nil {
		t.Fatal(err)
	}

	c, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	top, err := c.Top()
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Replicas) != 3 {
		t.Fatalf("replica rows = %d, want 3: %+v", len(top.Replicas), top.Replicas)
	}
	for _, r := range top.Replicas {
		if r.LagSec != 0 {
			t.Fatalf("replica %s lag = %.1fs before any partition", r.Node, r.LagSec)
		}
	}

	// Partition g2, advance virtual time (watch frames drive the clock),
	// and write: the majority takes the record, g2 falls behind.
	if err := grid.Net().SetNodeUp("g2", false); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, srv.Addr(), "top", "-n", "3", "-every", "2"); err != nil {
		t.Fatal(err)
	}
	if err := grid.Info().RegisterFrom("c1", "host", "late-arrival", nil, 0); err != nil {
		t.Fatal(err)
	}
	top, err = c.Top()
	if err != nil {
		t.Fatal(err)
	}
	lagged := 0.0
	for _, r := range top.Replicas {
		if r.Node == "g2" {
			lagged = r.LagSec
		}
	}
	if lagged <= 0 {
		t.Fatalf("partitioned replica shows no lag: %+v", top.Replicas)
	}

	alerts, err := c.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range alerts.Rules {
		if r.Name == "split-brain-risk" {
			found = true
		}
	}
	if !found {
		t.Fatalf("split-brain-risk rule not installed: %+v", alerts.Rules)
	}
}

// TestCtlTopStreams: multi-frame top uses the watch op and renders every
// frame; frames advance virtual time on an idle grid.
func TestCtlTopStreams(t *testing.T) {
	addr := startDaemon(t)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	before, err := c.Top()
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "top", "-n", "3", "-every", "2"); err != nil {
		t.Fatal(err)
	}
	after, err := c.Top()
	if err != nil {
		t.Fatal(err)
	}
	if after.VirtualSec < before.VirtualSec+4 {
		t.Fatalf("watch did not advance virtual time: %.1f -> %.1f",
			before.VirtualSec, after.VirtualSec)
	}
	if len(after.Nodes) == 0 {
		t.Fatal("top snapshot lost the nodes")
	}
}

// TestCtlWatchDrain: closing the daemon mid-watch errors out the stream
// instead of hanging the client.
func TestCtlWatchDrain(t *testing.T) {
	srv := wire.NewServer(1)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	l := wire.NewLocal(srv)
	if err := l.AddNode(wire.AddNodeParams{Name: "front", Site: "s", Roles: []string{"front-end"}}); err != nil {
		t.Fatal(err)
	}
	c, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	frames := 0
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.Watch(1_000_000, 1, func(wire.TopInfo) error {
			frames++
			return nil
		})
	}()
	// Let a few frames land, then drain the server under the stream.
	for i := 0; i < 200 && frames == 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("watch survived server drain")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch hung through server drain")
	}
	if frames == 0 {
		t.Fatal("no frames before drain")
	}
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	fn()
	_ = w.Close()
	os.Stdout = old
	out := <-done
	_ = r.Close()
	return out
}

// TestCtlTopStagingLine: with the chunk plane enabled, staged session
// creation drives dedup accounting that surfaces both in the Top wire
// snapshot and in the rendered `top` output — and with the plane off,
// the staging section stays absent.
func TestCtlTopStagingLine(t *testing.T) {
	// Plane off: no staging block at all.
	plain := startDaemon(t)
	c0, err := wire.Dial(plain)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	top0, err := c0.Top()
	if err != nil {
		t.Fatal(err)
	}
	if top0.Staging != nil {
		t.Fatalf("staging block present without a chunk plane: %+v", top0.Staging)
	}

	srv := wire.NewServer(1)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	srv.Grid().EnableChunkedStaging(chunk.Config{})
	l := wire.NewLocal(srv)
	steps := []func() error{
		func() error {
			return l.AddNode(wire.AddNodeParams{Name: "front", Site: "s", Roles: []string{"front-end"}})
		},
		func() error {
			return l.AddNode(wire.AddNodeParams{Name: "c1", Site: "s", Roles: []string{"compute"},
				Slots: 2, DHCPPrefix: "10.0.0."})
		},
		func() error {
			return l.AddNode(wire.AddNodeParams{Name: "img", Site: "s", Roles: []string{"image-server"}})
		},
		func() error { return l.Connect("front", "c1", "lan") },
		func() error { return l.Connect("front", "img", "lan") },
		func() error { return l.Connect("c1", "img", "lan") },
		func() error {
			return l.InstallImage(wire.InstallImageParams{Node: "img", Name: "rh72", OS: "rh",
				DiskBytes: 256 << 20, MemBytes: 64 << 20})
		},
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("setup step %d: %v", i, err)
		}
	}
	addr := srv.Addr()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Cold staged create: every chunk misses.
	if err := ctl(t, addr, "session", "-user", "u", "-front", "front", "-image", "rh72",
		"-access", "staged"); err != nil {
		t.Fatal(err)
	}
	top1, err := c.Top()
	if err != nil {
		t.Fatal(err)
	}
	if top1.Staging == nil {
		t.Fatal("no staging block with the chunk plane enabled")
	}
	if top1.Staging.ChunkMisses == 0 {
		t.Errorf("cold staged create recorded no chunk misses: %+v", top1.Staging)
	}

	// Shut down and re-create: the content survives the files, so the
	// second stage hits.
	if err := ctl(t, addr, "shutdown", "-session", "sess-1-u"); err != nil {
		t.Fatal(err)
	}
	if err := ctl(t, addr, "session", "-user", "u", "-front", "front", "-image", "rh72",
		"-access", "staged"); err != nil {
		t.Fatal(err)
	}
	top2, err := c.Top()
	if err != nil {
		t.Fatal(err)
	}
	if top2.Staging.ChunkHits == 0 || top2.Staging.BytesSaved == 0 {
		t.Errorf("warm staged create recorded no dedup: %+v", top2.Staging)
	}
	if top2.Staging.HitRate <= 0 {
		t.Errorf("hit rate = %v after a warm create", top2.Staging.HitRate)
	}

	out := captureStdout(t, func() {
		if err := ctl(t, addr, "top"); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "staging cache:") {
		t.Errorf("rendered top lacks the staging cache line:\n%s", out)
	}
	for _, frag := range []string{"hits=", "misses=", "hit-rate=", "saved="} {
		if !strings.Contains(out, frag) {
			t.Errorf("staging line lacks %q:\n%s", frag, out)
		}
	}
}
