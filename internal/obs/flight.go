package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"vmgrid/internal/sim"
)

// FlightRecorder is the always-on black box: a bounded ring of the
// most recently completed spans and instants (attached to a Tracer
// with SetFlightRecorder), plus the incident bundles frozen from it.
// Like the rest of obs it is deterministic — ids, ordering, and
// incident numbering are pure functions of recorded data — and cheap
// when absent: an unattached recorder costs instrumented code one
// pointer test per completed span.
//
// Incidents come in two shapes. FreezeNow snapshots the ring
// immediately (an SLO alert fired, a zombie incarnation was fenced).
// Open starts an incident rooted at a live span (a recovery's failover
// span): the snapshot is taken at the trigger, every later span of the
// root's trace is captured as it completes, and the incident seals
// itself — postmortem report included — the moment the root span ends.
type FlightRecorder struct {
	clock Clock

	ring []SpanRecord
	next int
	full bool
	seen uint64

	seq     int
	sealed  []*Incident
	open    []*Incident
	dropped int

	cfg FlightConfig
}

// FlightConfig bounds the recorder.
type FlightConfig struct {
	// SpanCap is the ring capacity (default 512 completed spans).
	SpanCap int
	// MaxIncidents bounds retained incident bundles, open + sealed;
	// triggers beyond it are counted in Dropped (default 16).
	MaxIncidents int
	// MaxCausal bounds the causal capture of one open incident; an
	// incident that outgrows it seals early (default 4096 spans).
	MaxCausal int
}

func (c *FlightConfig) fill() {
	if c.SpanCap <= 0 {
		c.SpanCap = 512
	}
	if c.MaxIncidents <= 0 {
		c.MaxIncidents = 16
	}
	if c.MaxCausal <= 0 {
		c.MaxCausal = 4096
	}
}

// NewFlightRecorder returns a recorder reading the given clock.
func NewFlightRecorder(clock Clock, cfg FlightConfig) *FlightRecorder {
	cfg.fill()
	return &FlightRecorder{clock: clock, ring: make([]SpanRecord, 0, cfg.SpanCap), cfg: cfg}
}

// Incident is one frozen bundle: what the grid looked like when the
// trigger fired, the causal tree of the affected trace, and the
// postmortem computed from it at seal time.
type Incident struct {
	// ID is deterministic: sequence number plus trigger slug.
	ID string `json:"id"`
	// Trigger says why the bundle froze: "recovery", "fence", or
	// "alert:<rule>".
	Trigger string `json:"trigger"`
	// Subject names what the incident is about (a session, a series).
	Subject string `json:"subject"`
	// At is when the trigger fired; SealedAt when the bundle closed
	// (equal for FreezeNow incidents, -1 while still open).
	At       sim.Time `json:"atUs"`
	SealedAt sim.Time `json:"sealedUs"`
	// Root is the causal root the postmortem walks (zero for rootless
	// snapshots).
	Root SpanContext `json:"root"`
	// Context is the ring snapshot at trigger time — the recent past.
	Context []SpanRecord `json:"context"`
	// Causal is the root's causal tree: trace members already in the
	// ring at trigger time plus every member completed before sealing.
	Causal []SpanRecord `json:"causal,omitempty"`
	// Report is the postmortem (critical path + attribution), computed
	// when the incident seals; nil for rootless snapshots.
	Report *Report `json:"report,omitempty"`
}

// Sealed reports whether the bundle is closed.
func (inc *Incident) Sealed() bool { return inc.SealedAt >= 0 }

// noteSpan is the tracer's feed: every completed span and instant
// lands in the ring, and open incidents capture their trace's members.
func (r *FlightRecorder) noteSpan(rec SpanRecord) {
	if r == nil {
		return
	}
	r.seen++
	if len(r.ring) < r.cfg.SpanCap {
		r.ring = append(r.ring, rec)
	} else {
		r.ring[r.next] = rec
		r.next = (r.next + 1) % r.cfg.SpanCap
		r.full = true
	}
	if len(r.open) == 0 {
		return
	}
	// Iterate a copy of the open list: sealing mutates it.
	still := r.open
	for _, inc := range still {
		if rec.Trace == 0 || rec.Trace != inc.Root.Trace {
			continue
		}
		inc.Causal = append(inc.Causal, rec)
		if rec.ID == inc.Root.Span || len(inc.Causal) >= r.cfg.MaxCausal {
			r.seal(inc)
		}
	}
}

// NoteEvent drops a free-standing instant into the ring — fault
// events and other non-span context a postmortem reader wants.
func (r *FlightRecorder) NoteEvent(track, cat, name, note string) {
	if r == nil {
		return
	}
	now := r.clock.Now()
	r.noteSpan(SpanRecord{Track: track, Cat: cat, Name: name, Start: now, End: now, Instant: true, Note: note})
}

// Snapshot returns the ring's contents oldest-first (a copy).
func (r *FlightRecorder) Snapshot() []SpanRecord {
	if r == nil {
		return nil
	}
	if !r.full {
		out := make([]SpanRecord, len(r.ring))
		copy(out, r.ring)
		return out
	}
	out := make([]SpanRecord, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// SpansSeen returns how many spans ever passed through the ring.
func (r *FlightRecorder) SpansSeen() uint64 {
	if r == nil {
		return 0
	}
	return r.seen
}

// Dropped returns how many triggers were discarded because
// MaxIncidents bundles already existed.
func (r *FlightRecorder) Dropped() int {
	if r == nil {
		return 0
	}
	return r.dropped
}

// slug makes a trigger safe inside an incident id.
func slug(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
		case c >= 'A' && c <= 'Z':
			b[i] = c + ('a' - 'A')
		default:
			b[i] = '-'
		}
	}
	return string(b)
}

// newIncident allocates the bundle shell shared by Open and FreezeNow,
// or nil when the incident budget is spent.
func (r *FlightRecorder) newIncident(trigger, subject string) *Incident {
	if len(r.sealed)+len(r.open) >= r.cfg.MaxIncidents {
		r.dropped++
		return nil
	}
	r.seq++
	return &Incident{
		ID:       fmt.Sprintf("inc-%03d-%s", r.seq, slug(trigger)),
		Trigger:  trigger,
		Subject:  subject,
		At:       r.clock.Now(),
		SealedAt: -1,
		Context:  r.Snapshot(),
	}
}

// FreezeNow captures an immediately-sealed incident: ring snapshot,
// no causal capture, no report. Returns the incident id ("" if the
// bundle budget is spent or the recorder is nil).
func (r *FlightRecorder) FreezeNow(trigger, subject string) string {
	if r == nil {
		return ""
	}
	inc := r.newIncident(trigger, subject)
	if inc == nil {
		return ""
	}
	inc.SealedAt = inc.At
	r.sealed = append(r.sealed, inc)
	return inc.ID
}

// Open starts an incident rooted at a live span: trace members already
// in the ring seed the causal capture, later members append as they
// complete, and the incident seals — computing its postmortem — when
// the root span itself ends (or the capture hits MaxCausal). An
// invalid root degrades to FreezeNow.
func (r *FlightRecorder) Open(trigger, subject string, root SpanContext) string {
	if r == nil {
		return ""
	}
	if !root.Valid() {
		return r.FreezeNow(trigger, subject)
	}
	inc := r.newIncident(trigger, subject)
	if inc == nil {
		return ""
	}
	inc.Root = root
	for _, s := range inc.Context {
		if s.Trace == root.Trace {
			inc.Causal = append(inc.Causal, s)
		}
	}
	r.open = append(r.open, inc)
	return inc.ID
}

// seal closes an open incident: compute the postmortem and move the
// bundle to the sealed list.
func (r *FlightRecorder) seal(inc *Incident) {
	inc.SealedAt = r.clock.Now()
	inc.Report = Analyze(inc.Causal, inc.Root)
	kept := r.open[:0]
	for _, o := range r.open {
		if o != inc {
			kept = append(kept, o)
		}
	}
	r.open = kept
	r.sealed = append(r.sealed, inc)
}

// Incidents returns every bundle — sealed first (in seal order), then
// still-open ones (in open order).
func (r *FlightRecorder) Incidents() []*Incident {
	if r == nil {
		return nil
	}
	out := make([]*Incident, 0, len(r.sealed)+len(r.open))
	out = append(out, r.sealed...)
	out = append(out, r.open...)
	return out
}

// Incident returns the bundle with the given id, or nil.
func (r *FlightRecorder) Incident(id string) *Incident {
	for _, inc := range r.Incidents() {
		if inc.ID == id {
			return inc
		}
	}
	return nil
}

// IncidentSet aggregates the incident bundles of many independent
// simulations (one per experiment sample), mirroring TraceSet: entries
// are added in sample-index order after the fan-out joins, so the JSON
// export is byte-identical at any -parallel worker count.
type IncidentSet struct {
	entries []incidentEntry
}

type incidentEntry struct {
	Label     string      `json:"label"`
	Incidents []*Incident `json:"incidents"`
}

// NewIncidentSet returns an empty set.
func NewIncidentSet() *IncidentSet { return &IncidentSet{} }

// Add appends one sample's incidents under a label. Nil recorders and
// recorders with no incidents are recorded as empty entries, keeping
// sample indexing aligned with the experiment design.
func (is *IncidentSet) Add(label string, r *FlightRecorder) {
	if is == nil {
		return
	}
	is.entries = append(is.entries, incidentEntry{Label: label, Incidents: r.Incidents()})
}

// Len returns the number of samples collected.
func (is *IncidentSet) Len() int {
	if is == nil {
		return 0
	}
	return len(is.entries)
}

// Total returns the incident count across all samples.
func (is *IncidentSet) Total() int {
	if is == nil {
		return 0
	}
	n := 0
	for _, e := range is.entries {
		n += len(e.Incidents)
	}
	return n
}

// WriteJSON emits the set deterministically: {"incidents":[{label,
// incidents:[...]}, ...]} with entries in Add order and struct-ordered
// fields throughout.
func (is *IncidentSet) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	entries := []incidentEntry{}
	if is != nil {
		entries = is.entries
	}
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(struct {
		Incidents []incidentEntry `json:"incidents"`
	}{entries}); err != nil {
		return err
	}
	return bw.Flush()
}
