package obs

import (
	"slices"
	"strings"

	"vmgrid/internal/sim"
)

// Registry holds named counters, gauges, and simulated-time histograms.
// Instruments are created on first use and cached; a nil Registry hands
// out nil instruments whose methods are no-ops, so instrumented code
// never branches on "is tracing on".
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing count. Nil-safe.
type Counter struct{ v float64 }

// Gauge is a point-in-time value. Nil-safe.
type Gauge struct {
	v   float64
	set bool
}

// Histogram buckets simulated durations by decade: <10µs, <100µs, …,
// <100s, and an overflow bucket. Nil-safe.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     sim.Duration
	max     sim.Duration
}

// histBuckets: 8 decade buckets starting at 10µs plus overflow.
const histBuckets = 9

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Add increases the counter by v.
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	c.v += v
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v, g.set = v, true
}

// Value returns the last set value (0 on nil or never-set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Observe records one duration.
func (h *Histogram) Observe(d sim.Duration) {
	if h == nil {
		return
	}
	// Clamp negatives to zero so a clock-skewed or zero-duration span
	// lands in the first bucket instead of corrupting sum/mean.
	if d < 0 {
		d = 0
	}
	h.buckets[histBucket(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// histBucket maps a duration to its decade bucket index. Bucket 0
// catches everything below the first decade bound (10 µs), including
// zero-duration observations.
func histBucket(d sim.Duration) int {
	bound := sim.Duration(10) // 10 µs
	for i := 0; i < histBuckets-1; i++ {
		if d < bound {
			return i
		}
		bound *= 10
	}
	return histBuckets - 1
}

// CounterPoint is one counter in a snapshot.
type CounterPoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// GaugePoint is one gauge in a snapshot.
type GaugePoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramPoint summarizes one histogram in a snapshot.
type HistogramPoint struct {
	Name    string  `json:"name"`
	Count   uint64  `json:"count"`
	SumSec  float64 `json:"sumSec"`
	MeanSec float64 `json:"meanSec"`
	MaxSec  float64 `json:"maxSec"`
}

// Snapshot is a deterministic (name-sorted) view of a registry,
// serializable over the wire.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
}

// Snapshot captures the registry's instruments sorted by name. Safe on
// a nil registry (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterPoint{Name: name, Value: c.v})
	}
	for name, g := range r.gauges {
		if g.set {
			s.Gauges = append(s.Gauges, GaugePoint{Name: name, Value: g.v})
		}
	}
	for name, h := range r.hists {
		p := HistogramPoint{
			Name:   name,
			Count:  h.count,
			SumSec: h.sum.Seconds(),
			MaxSec: h.max.Seconds(),
		}
		if h.count > 0 {
			p.MeanSec = h.sum.Seconds() / float64(h.count)
		}
		s.Histograms = append(s.Histograms, p)
	}
	// Typed comparators: scrape-driven snapshots run often enough that
	// sort.Slice's reflective swapper shows up in profiles. Names are
	// unique map keys, so the unstable sort is still deterministic.
	slices.SortFunc(s.Counters, func(a, b CounterPoint) int { return strings.Compare(a.Name, b.Name) })
	slices.SortFunc(s.Gauges, func(a, b GaugePoint) int { return strings.Compare(a.Name, b.Name) })
	slices.SortFunc(s.Histograms, func(a, b HistogramPoint) int { return strings.Compare(a.Name, b.Name) })
	return s
}
