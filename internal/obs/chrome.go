package obs

import (
	"bufio"
	"fmt"
	"io"

	"vmgrid/internal/sim"
)

// TraceSet aggregates the tracers of many independent simulations (one
// per experiment sample) into one Chrome trace. Entries must be added
// in a deterministic order — the experiment runners collect per-sample
// tracers in sample-index order after the fan-out joins, so a set built
// under -parallel is identical at any worker count.
type TraceSet struct {
	entries []setEntry
}

type setEntry struct {
	label  string
	tracer *Tracer
}

// NewTraceSet returns an empty set.
func NewTraceSet() *TraceSet { return &TraceSet{} }

// Add appends one sample's tracer under a human-readable label (the
// experiment cell, e.g. "table2/unix-nfs"). Nil tracers are ignored.
func (ts *TraceSet) Add(label string, t *Tracer) {
	if ts == nil || t == nil {
		return
	}
	ts.entries = append(ts.entries, setEntry{label: label, tracer: t})
}

// Len returns the number of collected tracers.
func (ts *TraceSet) Len() int {
	if ts == nil {
		return 0
	}
	return len(ts.entries)
}

// Entry is one (label, tracer) pair of a TraceSet.
type Entry struct {
	Label  string
	Tracer *Tracer
}

// Entries returns the set's pairs in Add order.
func (ts *TraceSet) Entries() []Entry {
	if ts == nil {
		return nil
	}
	out := make([]Entry, len(ts.entries))
	for i, e := range ts.entries {
		out[i] = Entry{Label: e.label, Tracer: e.tracer}
	}
	return out
}

// WriteChrome emits the set in Chrome trace-event JSON (the format
// chrome://tracing and Perfetto load). Each entry becomes one "process"
// (pid = entry index, named by its label); each track becomes one
// "thread" (tid = first-use order). sim.Time is microseconds, exactly
// the unit the format's ts/dur fields expect, so timestamps pass
// through unconverted. Output bytes are a pure function of the recorded
// spans: field order is fixed, map iteration is never used.
func (ts *TraceSet) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	if ts != nil {
		for pid, e := range ts.entries {
			emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`,
				pid, e.label))
			tids := map[string]int{}
			var order []string
			tid := func(track string) int {
				id, ok := tids[track]
				if !ok {
					id = len(order)
					tids[track] = id
					order = append(order, track)
					emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`,
						pid, id, track))
				}
				return id
			}
			// Parent lookup for flow binding: a child on a different
			// track than its parent gets an explicit flow arrow, so
			// client RPC spans visually bind to their server-side
			// handler spans instead of rendering as unrelated tracks.
			spans := e.tracer.spansRO()
			byID := map[SpanID]int{}
			for i, s := range spans {
				if s.ID != 0 {
					byID[s.ID] = i
				}
			}
			for _, s := range spans {
				id := tid(s.Track)
				args := chromeArgs(s)
				if s.Instant {
					emit(fmt.Sprintf(`{"name":%q,"cat":%q,"ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"%s}`,
						s.Name, s.Cat, int64(s.Start), pid, id, args))
					continue
				}
				end := s.End
				if end < s.Start {
					end = s.Start // never-closed span renders as zero-length
				}
				emit(fmt.Sprintf(`{"name":%q,"cat":%q,"ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d%s}`,
					s.Name, s.Cat, int64(s.Start), int64(end.Sub(s.Start)), pid, id, args))
				if s.Parent != 0 {
					if pi, ok := byID[s.Parent]; ok && spans[pi].Track != s.Track {
						p := spans[pi]
						ptid := tid(p.Track)
						emit(fmt.Sprintf(`{"name":%q,"cat":"flow","ph":"s","id":%d,"ts":%d,"pid":%d,"tid":%d}`,
							s.Name, uint64(s.ID), int64(p.Start), pid, ptid))
						emit(fmt.Sprintf(`{"name":%q,"cat":"flow","ph":"f","bp":"e","id":%d,"ts":%d,"pid":%d,"tid":%d}`,
							s.Name, uint64(s.ID), int64(s.Start), pid, id))
					}
				}
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeArgs renders a span's args object: the optional note plus the
// causal identity (hex trace/span/parent ids) when present.
func chromeArgs(s SpanRecord) string {
	if s.Note == "" && s.ID == 0 {
		return ""
	}
	out := `,"args":{`
	sep := ""
	if s.Note != "" {
		out += fmt.Sprintf(`"note":%q`, s.Note)
		sep = ","
	}
	if s.ID != 0 {
		out += fmt.Sprintf(`%s"trace":%q,"span":%q`, sep, s.Trace.String(), s.ID.String())
		if s.Parent != 0 {
			out += fmt.Sprintf(`,"parent":%q`, s.Parent.String())
		}
	}
	return out + "}"
}

// PhaseStat aggregates every span sharing (label, cat, name) across one
// TraceSet entry: how often the phase ran and how long it took.
type PhaseStat struct {
	Label string
	Cat   string
	Name  string
	Count int
	Total sim.Duration
	Max   sim.Duration
}

// Mean returns the average span length.
func (p PhaseStat) Mean() sim.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Total / sim.Duration(p.Count)
}

// PhaseStats folds the set's spans into per-(label, cat, name) rows.
// Instants are skipped. Row order is deterministic: labels in Add
// order, then (cat, name) in first-recording order within a label —
// which for lifecycle phases is chronological.
func (ts *TraceSet) PhaseStats() []PhaseStat {
	if ts == nil {
		return nil
	}
	var rows []PhaseStat
	index := map[[3]string]int{}
	for _, e := range ts.entries {
		for _, s := range e.tracer.spansRO() {
			if s.Instant {
				continue
			}
			key := [3]string{e.label, s.Cat, s.Name}
			i, ok := index[key]
			if !ok {
				i = len(rows)
				index[key] = i
				rows = append(rows, PhaseStat{Label: e.label, Cat: s.Cat, Name: s.Name})
			}
			d := s.Dur()
			rows[i].Count++
			rows[i].Total += d
			if d > rows[i].Max {
				rows[i].Max = d
			}
		}
	}
	return rows
}

// MergedMetrics sums every entry's registry into one snapshot: counters
// and histogram contents add; gauges keep the last value set (in entry
// order). Deterministic because Snapshot sorts by name.
func (ts *TraceSet) MergedMetrics() Snapshot {
	if ts == nil {
		return Snapshot{}
	}
	merged := NewRegistry()
	for _, e := range ts.entries {
		reg := e.tracer.Metrics()
		if reg == nil {
			continue
		}
		for name, c := range reg.counters {
			merged.Counter(name).Add(c.v)
		}
		for name, g := range reg.gauges {
			if g.set {
				merged.Gauge(name).Set(g.v)
			}
		}
		for name, h := range reg.hists {
			m := merged.Histogram(name)
			for i, n := range h.buckets {
				m.buckets[i] += n
			}
			m.count += h.count
			m.sum += h.sum
			if h.max > m.max {
				m.max = h.max
			}
		}
	}
	return merged.Snapshot()
}
