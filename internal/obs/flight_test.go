package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// buildTree records a small causal tree (root -> rpc -> handler) and
// returns every id in allocation order, for comparing tracers.
func buildTree(tr *Tracer, clk *fakeClock) []uint64 {
	root := tr.BeginTrace("sess", "session", "lifecycle")
	clk.now += 10
	rpc := tr.BeginChild(root.Context(), "gram", "rpc", "submit")
	clk.now += 5
	h := tr.BeginChild(rpc.Context(), "gram", "server", "gatekeeper")
	clk.now += 20
	h.End()
	rpc.End()
	clk.now += 5
	root.End()
	var ids []uint64
	for _, s := range tr.Spans() {
		ids = append(ids, uint64(s.Trace), uint64(s.ID), uint64(s.Parent))
	}
	return ids
}

// TestSeededIDsDeterministic is the id-allocation contract behind the
// -parallel byte-identity guarantee: ids are a pure function of (seed,
// recording order), so two tracers with the same seed produce the same
// ids and differently-seeded tracers diverge.
func TestSeededIDsDeterministic(t *testing.T) {
	run := func(seed uint64) []uint64 {
		clk := &fakeClock{}
		tr := New(clk)
		tr.SeedIDs(seed)
		return buildTree(tr, clk)
	}
	a, b := run(42), run(42)
	if len(a) == 0 || fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different ids:\n%v\n%v", a, b)
	}
	if fmt.Sprint(run(42)) == fmt.Sprint(run(43)) {
		t.Fatal("different seeds produced identical ids")
	}
	// Reseeding after the first allocation must be a no-op: ids handed
	// out before the reseed would otherwise collide with later ones.
	clk := &fakeClock{}
	tr := New(clk)
	tr.SeedIDs(7)
	root := tr.BeginTrace("a", "b", "c")
	tr.SeedIDs(99)
	child := tr.BeginChild(root.Context(), "a", "b", "d")
	child.End()
	root.End()
	if fmt.Sprint(buildIDs(tr)) != fmt.Sprint(func() []uint64 {
		clk := &fakeClock{}
		tr := New(clk)
		tr.SeedIDs(7)
		root := tr.BeginTrace("a", "b", "c")
		child := tr.BeginChild(root.Context(), "a", "b", "d")
		child.End()
		root.End()
		return buildIDs(tr)
	}()) {
		t.Fatal("SeedIDs after first allocation changed the id stream")
	}
}

func buildIDs(tr *Tracer) []uint64 {
	var ids []uint64
	for _, s := range tr.Spans() {
		ids = append(ids, uint64(s.Trace), uint64(s.ID), uint64(s.Parent))
	}
	return ids
}

// TestSpansReturnsCopy is the aliasing regression test: the slice Spans
// hands out must be the caller's own — mutating it, or recording more
// spans afterwards, must not corrupt either side. (The pre-causality
// implementation returned the live backing array.)
func TestSpansReturnsCopy(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk)
	tr.SpanAt("a", "phase", "one", 0, 10)
	got := tr.Spans()
	got[0].Name = "mutated"
	if tr.Spans()[0].Name != "one" {
		t.Fatal("mutating the returned slice corrupted the tracer's history")
	}
	// Appending more spans must not grow into the caller's copy.
	first := tr.Spans()
	for i := 0; i < 32; i++ {
		tr.SpanAt("a", "phase", "later", 10, 20)
	}
	if first[0].Name != "one" || len(first) != 1 {
		t.Fatalf("later recording mutated an earlier snapshot: %+v", first)
	}
}

func TestFlightRecorderRingBounds(t *testing.T) {
	clk := &fakeClock{}
	rec := NewFlightRecorder(clk, FlightConfig{SpanCap: 4})
	tr := New(clk)
	tr.SetFlightRecorder(rec)
	for i := 0; i < 10; i++ {
		clk.now++
		tr.Instant("a", "evt", fmt.Sprintf("e%d", i))
	}
	snap := rec.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(snap))
	}
	// Oldest-first: the survivors are e6..e9.
	for i, s := range snap {
		if want := fmt.Sprintf("e%d", 6+i); s.Name != want {
			t.Errorf("ring[%d] = %s, want %s", i, s.Name, want)
		}
	}
	if rec.SpansSeen() != 10 {
		t.Errorf("SpansSeen = %d, want 10", rec.SpansSeen())
	}
}

func TestIncidentOpenSealLifecycle(t *testing.T) {
	clk := &fakeClock{}
	rec := NewFlightRecorder(clk, FlightConfig{})
	tr := New(clk)
	tr.SeedIDs(1)
	tr.SetFlightRecorder(rec)

	root := tr.BeginTrace("sess", "supervisor", "failover")
	id := rec.Open("recovery", "sess", root.Context())
	if id == "" {
		t.Fatal("Open returned no incident id")
	}
	inc := rec.Incident(id)
	if inc == nil || inc.Sealed() {
		t.Fatalf("open incident missing or already sealed: %+v", inc)
	}
	// A child of the trace completes: captured. An unrelated flat span:
	// not captured.
	clk.now = 100
	child := tr.BeginChild(root.Context(), "sess", "supervisor", "restore")
	clk.now = 400
	child.End()
	tr.SpanAt("other", "phase", "noise", 0, 50)
	if len(inc.Causal) != 1 || inc.Causal[0].Name != "restore" {
		t.Fatalf("causal capture = %+v, want the restore span only", inc.Causal)
	}
	// Root ends: the incident seals itself and computes its postmortem.
	clk.now = 500
	root.End()
	if !inc.Sealed() || inc.SealedAt != 500 {
		t.Fatalf("incident not sealed at root end: sealedAt=%d", inc.SealedAt)
	}
	if inc.Report == nil || !inc.Report.CriticalPathNames("supervisor", "restore") {
		t.Fatalf("postmortem missing or critical path lacks restore: %+v", inc.Report)
	}

	// FreezeNow seals immediately, without causal capture or report.
	fid := rec.FreezeNow("alert:slowdown", "sess-x")
	finc := rec.Incident(fid)
	if finc == nil || !finc.Sealed() || finc.Report != nil {
		t.Fatalf("FreezeNow incident wrong shape: %+v", finc)
	}

	// Incident ids are deterministic: sequence + trigger slug.
	if inc.ID != "inc-001-recovery" || finc.ID != "inc-002-alert-slowdown" {
		t.Errorf("incident ids = %q, %q", inc.ID, finc.ID)
	}
}

func TestIncidentBudget(t *testing.T) {
	clk := &fakeClock{}
	rec := NewFlightRecorder(clk, FlightConfig{MaxIncidents: 2})
	if rec.FreezeNow("a", "x") == "" || rec.FreezeNow("b", "y") == "" {
		t.Fatal("first two incidents rejected")
	}
	if got := rec.FreezeNow("c", "z"); got != "" {
		t.Fatalf("over-budget incident accepted: %q", got)
	}
	if rec.Dropped() != 1 || len(rec.Incidents()) != 2 {
		t.Fatalf("dropped=%d incidents=%d, want 1/2", rec.Dropped(), len(rec.Incidents()))
	}
}

// TestFlightOnlyTracerBounded: in flight-only mode the tracer's own
// span table never grows past the number of concurrently open spans,
// and Spans() stays nil — history lives in the recorder's ring alone.
func TestFlightOnlyTracerBounded(t *testing.T) {
	clk := &fakeClock{}
	rec := NewFlightRecorder(clk, FlightConfig{SpanCap: 8})
	tr := NewFlightOnly(clk)
	tr.SeedIDs(3)
	tr.SetFlightRecorder(rec)
	for i := 0; i < 100; i++ {
		sp := tr.BeginTrace("s", "c", "n")
		clk.now++
		sp.End()
	}
	if len(tr.spans) != 1 {
		t.Fatalf("flight-only tracer retained %d slots, want 1 recycled slot", len(tr.spans))
	}
	if tr.Spans() != nil {
		t.Fatal("flight-only tracer returned span history")
	}
	if rec.SpansSeen() != 100 {
		t.Fatalf("recorder saw %d spans, want 100", rec.SpansSeen())
	}
}

// TestRecorderIndependenceUnderRace drives many tracer+recorder pairs
// concurrently, one pair per goroutine — the experiment fan-out shape.
// Under -race this proves the recorder shares no hidden state across
// simulations; determinism is checked by comparing each pair's bundle
// bytes to a serially-produced reference.
func TestRecorderIndependenceUnderRace(t *testing.T) {
	run := func(seed uint64) []byte {
		clk := &fakeClock{}
		rec := NewFlightRecorder(clk, FlightConfig{SpanCap: 16})
		tr := NewFlightOnly(clk)
		tr.SeedIDs(seed)
		tr.SetFlightRecorder(rec)
		root := tr.BeginTrace("sess", "supervisor", "failover")
		rec.Open("recovery", "sess", root.Context())
		for i := 0; i < 50; i++ {
			clk.now++
			child := tr.BeginChild(root.Context(), "sess", "vmm", "restore")
			clk.now++
			child.End()
		}
		root.End()
		b, err := json.Marshal(rec.Incidents())
		if err != nil {
			t.Error(err)
		}
		return b
	}
	want := make([][]byte, 8)
	for i := range want {
		want[i] = run(uint64(i + 1))
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if got := run(uint64(i + 1)); !bytes.Equal(got, want[i]) {
				t.Errorf("seed %d: concurrent run diverged from serial run", i+1)
			}
		}(i)
	}
	wg.Wait()
}

// BenchmarkFlightRecorder measures the three recording modes of the
// span hot path: disabled (nil tracer — the production default for
// experiments), flight-only with a recorder attached (the always-on
// vmgridd mode), and full retention. The nil case is the guard: it must
// stay within a few ns — one pointer test — so instrumented code is
// free when observability is off.
func BenchmarkFlightRecorder(b *testing.B) {
	b.Run("tracer-nil", func(b *testing.B) {
		var tr *Tracer
		var ctx SpanContext
		for i := 0; i < b.N; i++ {
			sp := tr.BeginChild(ctx, "s", "c", "n")
			sp.End()
		}
	})
	b.Run("flight-only", func(b *testing.B) {
		clk := &fakeClock{}
		rec := NewFlightRecorder(clk, FlightConfig{})
		tr := NewFlightOnly(clk)
		tr.SeedIDs(1)
		tr.SetFlightRecorder(rec)
		root := tr.BeginTrace("s", "c", "root")
		ctx := root.Context()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := tr.BeginChild(ctx, "s", "c", "n")
			sp.End()
		}
	})
	b.Run("retained", func(b *testing.B) {
		clk := &fakeClock{}
		tr := New(clk)
		tr.SeedIDs(1)
		root := tr.BeginTrace("s", "c", "root")
		ctx := root.Context()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := tr.BeginChild(ctx, "s", "c", "n")
			sp.End()
		}
	})
}
