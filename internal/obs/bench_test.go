package obs

import (
	"testing"

	"vmgrid/internal/sim"
)

// The nil-sink benchmarks guard the off-by-default contract: a disabled
// tracer must cost one pointer test per call site, so instrumented hot
// paths (vfs transact, session marks) stay benchmark-neutral when
// tracing is off. Compare against the enabled variants to see the
// recording cost that -trace opts into.

func BenchmarkNilTracerSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("track", "cat", "name")
		sp.End()
	}
}

func BenchmarkNilTracerInstant(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Instant("track", "cat", "name")
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var tr *Tracer
	c := tr.Metrics().Counter("ops")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var tr *Tracer
	h := tr.Metrics().Histogram("lat")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(sim.Duration(i))
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	clk := &fakeClock{}
	tr := New(clk)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clk.now++
		sp := tr.Begin("track", "cat", "name")
		sp.End()
	}
}

func BenchmarkEnabledCounterInc(b *testing.B) {
	tr := New(&fakeClock{})
	c := tr.Metrics().Counter("ops")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
