package obs

import (
	"sort"
	"strings"

	"vmgrid/internal/sim"
)

// Postmortem analysis: given the spans of one causal tree, compute
// where the root interval's time actually went. The model is
// deepest-cover attribution — every instant of the root span belongs
// to the deepest span covering it — which for this middleware's
// serial, event-driven work IS the critical path: the time-ordered
// chain of deepest spans is the sequence of operations that each had
// to finish before the next could start. The walk is a pure function
// of span intervals and insertion order, so reports are deterministic
// at any -parallel worker count.

// PathStep is one segment of the critical path: the deepest span
// covering [StartUs, EndUs).
type PathStep struct {
	Track string `json:"track"`
	Cat   string `json:"cat"`
	Name  string `json:"name"`
	// Resource classifies the step (see ResourceOf).
	Resource string   `json:"resource"`
	StartUs  sim.Time `json:"startUs"`
	EndUs    sim.Time `json:"endUs"`
	// Depth is the step's nesting depth below the root (root self-time
	// segments have depth 0).
	Depth int `json:"depth"`
	// Via is the causal lineage between the root and this step —
	// "cat/name" of each enclosing span, outermost first. A step's time
	// belongs to the deepest span, but the path still passes through
	// every ancestor (a vmm restore runs *inside* the supervisor's
	// restore phase), and Via keeps that visible.
	Via []string `json:"via,omitempty"`
}

// Dur returns the step length.
func (p PathStep) Dur() sim.Duration { return p.EndUs.Sub(p.StartUs) }

// Attribution aggregates the critical path by (resource, cat, name):
// how much of the root interval each kind of work owned.
type Attribution struct {
	Resource string       `json:"resource"`
	Cat      string       `json:"cat"`
	Name     string       `json:"name"`
	SelfUs   sim.Duration `json:"selfUs"`
	// Share is SelfUs over the root duration.
	Share float64 `json:"share"`
}

// Report is one postmortem: the causal root, its critical path, and
// the slowdown attribution derived from it.
type Report struct {
	Trace    TraceID  `json:"trace"`
	RootID   SpanID   `json:"rootId"`
	Root     string   `json:"root"`
	RootCat  string   `json:"rootCat"`
	RootNote string   `json:"rootNote,omitempty"`
	StartUs  sim.Time `json:"startUs"`
	EndUs    sim.Time `json:"endUs"`
	// TotalUs is the root duration; the attribution rows sum to it.
	TotalUs     sim.Duration  `json:"totalUs"`
	Critical    []PathStep    `json:"criticalPath"`
	Attribution []Attribution `json:"attribution"`
}

// ResourceOf classifies a span into the resource classes the
// postmortem attributes slowdown to: vfs-wait (remote block moves),
// cpu (guest boot/restore work under the VMM), migration, recovery
// (supervisor failover machinery), checkpoint, quorum-write (epoch
// bumps through the replicated registry), rpc (control-path round
// trips), phase (lifecycle phases not refined by a deeper span), and
// other.
func ResourceOf(track, cat, name string) string {
	switch cat {
	case "rpc":
		if track == "vfs" {
			return "vfs-wait"
		}
		return "rpc"
	case "server":
		return "rpc"
	case "vmm":
		return "cpu"
	case "migration":
		return "migration"
	case "quorum":
		return "quorum-write"
	case "supervisor":
		if name == "checkpoint" {
			return "checkpoint"
		}
		return "recovery"
	case "phase":
		return "phase"
	case "session":
		return "session"
	}
	if strings.HasPrefix(name, "stage") {
		return "staging"
	}
	return "other"
}

// pmNode is one span in the containment forest.
type pmNode struct {
	rec  SpanRecord
	kids []*pmNode
}

func clampEnd(r SpanRecord) sim.Time {
	if r.End < r.Start {
		return r.Start // never-closed span reads as zero-length
	}
	return r.End
}

// Analyze computes the postmortem of the causal tree rooted at root
// from the given spans (a tracer dump, a flight-recorder bundle — any
// superset works; duplicates dedupe by SpanID). Returns nil when the
// root span is absent or the context invalid.
func Analyze(spans []SpanRecord, root SpanContext) *Report {
	if !root.Valid() {
		return nil
	}
	var rootRec SpanRecord
	haveRoot := false
	members := make([]SpanRecord, 0, len(spans))
	seen := make(map[SpanID]bool, len(spans))
	for _, s := range spans {
		if s.Instant || s.Trace != root.Trace || s.ID == 0 || seen[s.ID] {
			continue
		}
		seen[s.ID] = true
		if s.ID == root.Span {
			rootRec = s
			haveRoot = true
			continue
		}
		members = append(members, s)
	}
	if !haveRoot {
		return nil
	}
	rootEnd := clampEnd(rootRec)

	// Causal forest: each span hangs under its recorded Parent, and
	// spans whose parent is absent (ring eviction, a handler that never
	// closed) fall back to the root. Containment cannot be inferred from
	// intervals alone — a client-side phase span and the server handler
	// it brackets genuinely overlap without nesting — but the Parent
	// links recorded at BeginChild time resolve the ambiguity; the cover
	// walk then clips every child to its parent's window.
	rootNode := &pmNode{rec: rootRec}
	nodes := make(map[SpanID]*pmNode, len(members)+1)
	nodes[rootRec.ID] = rootNode
	kept := make([]*pmNode, 0, len(members))
	for _, m := range members {
		if m.Start >= rootEnd || clampEnd(m) <= rootRec.Start {
			continue // entirely outside the root interval
		}
		n := &pmNode{rec: m}
		nodes[m.ID] = n
		kept = append(kept, n)
	}
	for _, n := range kept {
		p := nodes[n.rec.Parent]
		if p == nil || p == n {
			p = rootNode
		}
		p.kids = append(p.kids, n)
	}
	// Walk children in time order; at equal starts the shorter span goes
	// first so the longer sibling covers the remainder instead of
	// clipping the shorter one to nothing. Ties keep recording order.
	var sortKids func(n *pmNode)
	sortKids = func(n *pmNode) {
		sort.SliceStable(n.kids, func(i, j int) bool {
			a, b := n.kids[i].rec, n.kids[j].rec
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			return clampEnd(a) < clampEnd(b)
		})
		for _, k := range n.kids {
			sortKids(k)
		}
	}
	sortKids(rootNode)

	// Cover walk: attribute every instant of the root interval to the
	// deepest span covering it, emitting the critical path in time
	// order. Children are visited in start order with clipping, so the
	// segments partition [root.Start, rootEnd) exactly.
	rep := &Report{
		Trace: rootRec.Trace, RootID: rootRec.ID,
		Root: rootRec.Name, RootCat: rootRec.Cat, RootNote: rootRec.Note,
		StartUs: rootRec.Start, EndUs: rootEnd,
		TotalUs: rootEnd.Sub(rootRec.Start),
	}
	type akey struct{ resource, cat, name string }
	attr := make(map[akey]*Attribution)
	addSeg := func(r SpanRecord, s, e sim.Time, depth int, via []string) {
		if e <= s {
			return
		}
		res := ResourceOf(r.Track, r.Cat, r.Name)
		rep.Critical = append(rep.Critical, PathStep{
			Track: r.Track, Cat: r.Cat, Name: r.Name, Resource: res,
			StartUs: s, EndUs: e, Depth: depth, Via: via,
		})
		k := akey{res, r.Cat, r.Name}
		a := attr[k]
		if a == nil {
			a = &Attribution{Resource: res, Cat: r.Cat, Name: r.Name}
			attr[k] = a
		}
		a.SelfUs += e.Sub(s)
	}
	var walk func(n *pmNode, lo, hi sim.Time, depth int, via []string)
	walk = func(n *pmNode, lo, hi sim.Time, depth int, via []string) {
		// Children inherit this node's lineage plus the node itself (the
		// root is identified by the report header, not repeated in Via).
		kidVia := via
		if depth > 0 {
			// Full-slice append: siblings never share growable backing.
			kidVia = append(via[:len(via):len(via)], n.rec.Cat+"/"+n.rec.Name)
		}
		cursor := lo
		for _, k := range n.kids {
			ks, ke := k.rec.Start, clampEnd(k.rec)
			if ks < cursor {
				ks = cursor
			}
			if ke > hi {
				ke = hi
			}
			if ke <= ks {
				continue
			}
			addSeg(n.rec, cursor, ks, depth, via)
			walk(k, ks, ke, depth+1, kidVia)
			cursor = ke
		}
		addSeg(n.rec, cursor, hi, depth, via)
	}
	walk(rootNode, rootRec.Start, rootEnd, 0, nil)

	rep.Attribution = make([]Attribution, 0, len(attr))
	for _, a := range attr {
		if rep.TotalUs > 0 {
			a.Share = float64(a.SelfUs) / float64(rep.TotalUs)
		}
		rep.Attribution = append(rep.Attribution, *a)
	}
	sort.Slice(rep.Attribution, func(i, j int) bool {
		a, b := rep.Attribution[i], rep.Attribution[j]
		if a.SelfUs != b.SelfUs {
			return a.SelfUs > b.SelfUs
		}
		if a.Resource != b.Resource {
			return a.Resource < b.Resource
		}
		if a.Cat != b.Cat {
			return a.Cat < b.Cat
		}
		return a.Name < b.Name
	})
	return rep
}

// Roots returns the trace roots among spans (non-instant spans with a
// TraceID and no parent), in recording order — the entry points for
// Analyze over a tracer dump.
func Roots(spans []SpanRecord) []SpanRecord {
	var out []SpanRecord
	for _, s := range spans {
		if !s.Instant && s.Trace != 0 && s.ID != 0 && s.Parent == 0 {
			out = append(out, s)
		}
	}
	return out
}

// CriticalPathNames reports whether the report's critical path passes
// through a span with the given cat and name — as the deepest owner of
// a step, or as an ancestor on a step's Via lineage (a vmm restore's
// time still passes through the supervisor restore phase enclosing it).
// This is the assertion hook acceptance tests use ("does the path name
// the supervisor restore?").
func (r *Report) CriticalPathNames(cat, name string) bool {
	if r == nil {
		return false
	}
	target := cat + "/" + name
	for _, s := range r.Critical {
		if s.Cat == cat && s.Name == name {
			return true
		}
		for _, v := range s.Via {
			if v == target {
				return true
			}
		}
	}
	return false
}
