package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vmgrid/internal/sim"
)

// fakeClock is a manually advanced Clock.
type fakeClock struct{ now sim.Time }

func (c *fakeClock) Now() sim.Time { return c.now }

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Begin("a", "b", "c")
	sp.Note("ignored")
	sp.End()
	sp.EndErr(nil)
	tr.Instant("a", "b", "c")
	tr.SpanAt("a", "b", "c", 0, 1)
	if tr.Spans() != nil {
		t.Fatal("nil tracer returned spans")
	}
	reg := tr.Metrics()
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(2)
	reg.Histogram("z").Observe(sim.Second)
	if got := reg.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %v", got)
	}
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestSpansAndInstants(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk)
	sp := tr.Begin("sess", "phase", "stage")
	clk.now = 250
	sp.End()
	tr.Instant("sess", "lifecycle", "ready")
	tr.SpanAt("sess", "phase", "connect", 250, 400)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Dur() != 250 || spans[0].Name != "stage" {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if !spans[1].Instant || spans[1].Start != 250 {
		t.Errorf("instant = %+v", spans[1])
	}
	if spans[2].Dur() != 150 {
		t.Errorf("SpanAt dur = %v", spans[2].Dur())
	}
}

func TestRegistrySnapshotSortedAndAggregated(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Add(2)
	reg.Counter("a.count").Inc()
	reg.Counter("b.count").Inc()
	reg.Gauge("g").Set(7.5)
	h := reg.Histogram("lat")
	h.Observe(5)                    // <10µs bucket
	h.Observe(3 * sim.Millisecond)  // <10ms bucket
	h.Observe(90 * sim.Millisecond) // <100ms bucket

	s := reg.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a.count" || s.Counters[1].Value != 3 {
		t.Errorf("counters = %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 7.5 {
		t.Errorf("gauges = %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	hp := s.Histograms[0]
	wantSum := (5*sim.Microsecond + 3*sim.Millisecond + 90*sim.Millisecond).Seconds()
	if hp.Count != 3 || hp.SumSec != wantSum || hp.MaxSec != (90*sim.Millisecond).Seconds() {
		t.Errorf("histogram point = %+v", hp)
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk)
	sp := tr.Begin("s0", "phase", "stage")
	clk.now = 1000
	sp.EndErr(nil)
	tr.Instant("s0", "lifecycle", "ready")
	open := tr.Begin("s0", "rpc", "never-closed")
	_ = open

	ts := NewTraceSet()
	ts.Add("cell-a", tr)
	var buf bytes.Buffer
	if err := ts.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// 2 metadata (process_name, thread_name) + 3 events.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5:\n%s", len(doc.TraceEvents), buf.String())
	}
	if doc.TraceEvents[0]["ph"] != "M" {
		t.Errorf("first event not metadata: %v", doc.TraceEvents[0])
	}
	var phX, phI int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			phX++
		case "i":
			phI++
		}
	}
	if phX != 2 || phI != 1 {
		t.Errorf("got %d complete + %d instant events, want 2 + 1", phX, phI)
	}
	if !strings.Contains(buf.String(), `"name":"cell-a"`) {
		t.Error("process label missing from output")
	}
}

func TestWriteChromeDeterministicBytes(t *testing.T) {
	build := func() []byte {
		clk := &fakeClock{}
		tr := New(clk)
		for i := 0; i < 5; i++ {
			sp := tr.Begin("track", "cat", "work")
			clk.now += 100
			sp.End()
		}
		ts := NewTraceSet()
		ts.Add("label", tr)
		var buf bytes.Buffer
		if err := ts.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical trace sets produced different bytes")
	}
}

func TestPhaseStats(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk)
	tr.SpanAt("s", "phase", "stage", 0, 100)
	tr.SpanAt("s", "phase", "boot", 100, 400)
	tr.SpanAt("s", "phase", "stage", 400, 600)
	tr.Instant("s", "lifecycle", "ready")

	ts := NewTraceSet()
	ts.Add("cell", tr)
	stats := ts.PhaseStats()
	if len(stats) != 2 {
		t.Fatalf("got %d rows, want 2: %+v", len(stats), stats)
	}
	if stats[0].Name != "stage" || stats[0].Count != 2 || stats[0].Total != 300 || stats[0].Max != 200 {
		t.Errorf("stage row = %+v", stats[0])
	}
	if stats[0].Mean() != 150 {
		t.Errorf("stage mean = %v", stats[0].Mean())
	}
	if stats[1].Name != "boot" || stats[1].Total != 300 {
		t.Errorf("boot row = %+v", stats[1])
	}
}

func TestMergedMetrics(t *testing.T) {
	mk := func(n float64) *Tracer {
		tr := New(&fakeClock{})
		tr.Metrics().Counter("ops").Add(n)
		tr.Metrics().Histogram("lat").Observe(sim.Duration(n) * sim.Millisecond)
		return tr
	}
	ts := NewTraceSet()
	ts.Add("a", mk(2))
	ts.Add("b", mk(3))
	s := ts.MergedMetrics()
	if len(s.Counters) != 1 || s.Counters[0].Value != 5 {
		t.Errorf("merged counters = %+v", s.Counters)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 2 {
		t.Errorf("merged histograms = %+v", s.Histograms)
	}
}

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    sim.Duration
		want int
	}{
		{0, 0}, {9, 0}, {10, 1}, {99, 1}, {100, 2},
		{sim.Millisecond, 3}, {sim.Second, 6}, {10 * sim.Second, 7},
		{100 * sim.Second, 8}, {sim.Hour, 8},
	}
	for _, c := range cases {
		if got := histBucket(c.d); got != c.want {
			t.Errorf("histBucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// Regression: zero-duration spans and sub-decade values must land in
// bucket 0 and keep count/sum consistent — they used to be able to skew
// the mean when negative durations slipped through.
func TestHistogramEdgeObservations(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edge")
	h.Observe(0)                   // zero-duration span
	h.Observe(sim.Duration(1))     // below the first decade bound
	h.Observe(-sim.Second)         // negative: clamped to zero, not dropped
	h.Observe(5 * sim.Microsecond) // still bucket 0

	if h.buckets[0] != 4 {
		t.Fatalf("bucket 0 = %d, want 4 (all edge values)", h.buckets[0])
	}
	s := reg.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	hp := s.Histograms[0]
	if hp.Count != 4 {
		t.Fatalf("count = %d, want 4", hp.Count)
	}
	wantSum := (sim.Duration(1) + 5*sim.Microsecond).Seconds()
	if hp.SumSec != wantSum {
		t.Fatalf("sum = %g, want %g (negative must clamp to 0)", hp.SumSec, wantSum)
	}
	if hp.MeanSec < 0 {
		t.Fatalf("mean = %g, want >= 0", hp.MeanSec)
	}
	if hp.MaxSec != (5 * sim.Microsecond).Seconds() {
		t.Fatalf("max = %g", hp.MaxSec)
	}
}

func TestHistBucketZeroAndNegative(t *testing.T) {
	if got := histBucket(0); got != 0 {
		t.Errorf("histBucket(0) = %d, want 0", got)
	}
	if got := histBucket(sim.Duration(9)); got != 0 {
		t.Errorf("histBucket(9us) = %d, want 0", got)
	}
}
