// Package obs is the middleware's observability layer: hierarchical
// spans and a metrics registry keyed on the deterministic sim clock.
// The paper's evaluation is entirely about where time goes — Figure 1's
// virtualization slowdown, Table 1's VFS overhead, Table 2's per-step
// startup latency — and obs makes that decomposition a first-class
// output instead of something re-derived from Session.Events by hand.
//
// Two properties shape the design:
//
//   - Determinism. Spans are stamped with sim.Time, never wall clock,
//     and every snapshot/emission order is a pure function of recorded
//     data (insertion order for spans, sorted names for metrics). A
//     trace produced under the parallel experiment runner is therefore
//     byte-identical at any -parallel worker count.
//
//   - Nil-sink fast path. Tracing is off by default: a nil *Tracer (and
//     the nil *Counter/*Gauge/*Histogram handles it hands out) is fully
//     usable — every method is a nil-receiver no-op — so instrumented
//     hot paths pay one pointer test when disabled, nothing more.
//
// obs depends only on internal/sim and the standard library.
package obs

import "vmgrid/internal/sim"

// Clock yields the current simulated time. *sim.Kernel satisfies it.
type Clock interface {
	Now() sim.Time
}

// SpanRecord is one completed (or still-open) interval on a track.
// Track groups related spans onto one timeline row (a session name, a
// VM name, "vfs"); Cat classifies the span ("phase", "rpc", "vmm",
// "supervisor"); Name says what happened. An open span has End < 0.
type SpanRecord struct {
	Track string   `json:"track"`
	Cat   string   `json:"cat"`
	Name  string   `json:"name"`
	Start sim.Time `json:"startUs"`
	End   sim.Time `json:"endUs"`
	// Note carries an optional annotation (an error, a byte count)
	// surfaced in trace-viewer args.
	Note string `json:"note,omitempty"`
	// Instant marks a point event rather than an interval.
	Instant bool `json:"instant,omitempty"`
}

// Dur returns the span length, or 0 for a span that never ended.
func (r SpanRecord) Dur() sim.Duration {
	if r.End < r.Start {
		return 0
	}
	return r.End.Sub(r.Start)
}

// Tracer records spans and instants against one sim clock and owns a
// metrics Registry. A nil Tracer is the disabled state; every method
// (and Metrics(), which returns a nil Registry) is safe and free on it.
// Tracers are not goroutine-safe by design: like the kernel they
// observe, each belongs to exactly one simulation goroutine.
type Tracer struct {
	clock Clock
	reg   *Registry
	spans []SpanRecord
}

// New returns an enabled Tracer reading the given clock.
func New(clock Clock) *Tracer {
	return &Tracer{clock: clock, reg: NewRegistry()}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Metrics returns the tracer's registry; nil for a nil tracer (the nil
// registry still hands out working no-op instruments).
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Span is a handle to an open span. The zero Span (from a nil tracer)
// ignores End/Note calls.
type Span struct {
	t   *Tracer
	idx int
	ok  bool
}

// Begin opens a span at the current sim time. Close it with End.
func (t *Tracer) Begin(track, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	t.spans = append(t.spans, SpanRecord{
		Track: track, Cat: cat, Name: name,
		Start: t.clock.Now(), End: -1,
	})
	return Span{t: t, idx: len(t.spans) - 1, ok: true}
}

// End closes the span at the current sim time.
func (s Span) End() {
	if !s.ok {
		return
	}
	s.t.spans[s.idx].End = s.t.clock.Now()
}

// EndErr closes the span, annotating it with err when non-nil.
func (s Span) EndErr(err error) {
	if !s.ok {
		return
	}
	if err != nil {
		s.t.spans[s.idx].Note = err.Error()
	}
	s.End()
}

// Note annotates the open span.
func (s Span) Note(note string) {
	if !s.ok {
		return
	}
	s.t.spans[s.idx].Note = note
}

// SpanAt records a complete span with explicit bounds — used when the
// interval is reconstructed after the fact (e.g. session lifecycle
// phases derived from consecutive marks).
func (t *Tracer) SpanAt(track, cat, name string, start, end sim.Time) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, SpanRecord{
		Track: track, Cat: cat, Name: name, Start: start, End: end,
	})
}

// Instant records a zero-duration event at the current sim time.
func (t *Tracer) Instant(track, cat, name string) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	t.spans = append(t.spans, SpanRecord{
		Track: track, Cat: cat, Name: name, Start: now, End: now, Instant: true,
	})
}

// Spans returns the recorded spans in recording order. The slice is
// shared; callers must not mutate it.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	return t.spans
}
