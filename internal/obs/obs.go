// Package obs is the middleware's observability layer: hierarchical
// causal spans, a metrics registry, and a bounded flight recorder, all
// keyed on the deterministic sim clock. The paper's evaluation is
// entirely about where time goes — Figure 1's virtualization slowdown,
// Table 1's VFS overhead, Table 2's per-step startup latency — and obs
// makes that decomposition a first-class output instead of something
// re-derived from Session.Events by hand.
//
// Three properties shape the design:
//
//   - Determinism. Spans are stamped with sim.Time, never wall clock,
//     and every snapshot/emission order is a pure function of recorded
//     data (insertion order for spans, sorted names for metrics).
//     Causal identity is deterministic too: TraceIDs and SpanIDs come
//     from a per-tracer splitmix64 stream seeded from the simulation
//     seed, never from a global counter or the wall clock, so a trace
//     produced under the parallel experiment runner is byte-identical
//     at any -parallel worker count.
//
//   - Nil-sink fast path. Tracing is off by default: a nil *Tracer (and
//     the nil *Counter/*Gauge/*Histogram handles it hands out) is fully
//     usable — every method is a nil-receiver no-op — so instrumented
//     hot paths pay one pointer test when disabled, nothing more.
//
//   - Causality. A span can name its parent, so one session's life
//     cycle — information-service query, GRAM submit, VFS block moves,
//     VM instantiation, supervisor failovers — is a single causal tree
//     spanning nodes, walkable by the postmortem analyzer.
//
// obs depends only on internal/sim and the standard library.
package obs

import (
	"fmt"

	"vmgrid/internal/sim"
)

// Clock yields the current simulated time. *sim.Kernel satisfies it.
type Clock interface {
	Now() sim.Time
}

// TraceID identifies one causal tree (one session life cycle, one
// recovery). Zero means "no causal identity".
type TraceID uint64

// String renders the id as fixed-width hex.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// SpanID identifies one span within a trace. Zero means "none".
type SpanID uint64

// String renders the id as fixed-width hex.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// SpanContext is a position in a causal tree, carried across
// boundaries (GRAM job submits, wire RPCs, VFS mounts) so work done on
// the far side parents under the caller's span. The zero value means
// "no context" and produces flat spans, exactly as before causality
// existed.
type SpanContext struct {
	Trace TraceID `json:"trace"`
	Span  SpanID  `json:"span"`
}

// Valid reports whether the context names a real span.
func (c SpanContext) Valid() bool { return c.Trace != 0 && c.Span != 0 }

// SpanRecord is one completed (or still-open) interval on a track.
// Track groups related spans onto one timeline row (a session name, a
// VM name, "vfs"); Cat classifies the span ("phase", "rpc", "vmm",
// "supervisor"); Name says what happened. An open span has End < 0.
type SpanRecord struct {
	Track string   `json:"track"`
	Cat   string   `json:"cat"`
	Name  string   `json:"name"`
	Start sim.Time `json:"startUs"`
	End   sim.Time `json:"endUs"`
	// Note carries an optional annotation (an error, a byte count)
	// surfaced in trace-viewer args.
	Note string `json:"note,omitempty"`
	// Instant marks a point event rather than an interval.
	Instant bool `json:"instant,omitempty"`
	// Trace/ID/Parent are the span's causal identity: which tree it
	// belongs to, its own id, and the span it descends from. All zero
	// for flat spans recorded without a context.
	Trace  TraceID `json:"trace,omitempty"`
	ID     SpanID  `json:"id,omitempty"`
	Parent SpanID  `json:"parent,omitempty"`
}

// Dur returns the span length, or 0 for a span that never ended.
func (r SpanRecord) Dur() sim.Duration {
	if r.End < r.Start {
		return 0
	}
	return r.End.Sub(r.Start)
}

// Context returns the record's position in its causal tree (invalid
// for flat spans).
func (r SpanRecord) Context() SpanContext {
	return SpanContext{Trace: r.Trace, Span: r.ID}
}

// defaultIDSeed seeds the id stream of tracers nobody seeded
// explicitly; any fixed constant keeps ids deterministic.
const defaultIDSeed = 0x766d677269640a5d // "vmgrid"

// Tracer records spans and instants against one sim clock and owns a
// metrics Registry. A nil Tracer is the disabled state; every method
// (and Metrics(), which returns a nil Registry) is safe and free on it.
// Tracers are not goroutine-safe by design: like the kernel they
// observe, each belongs to exactly one simulation goroutine.
type Tracer struct {
	clock Clock
	reg   *Registry
	spans []SpanRecord

	// idgen is the splitmix64 state behind TraceID/SpanID allocation;
	// idused locks the seed once the first id is handed out.
	idgen  uint64
	idused bool

	// rec, when attached, receives every completed span and instant —
	// the always-on flight-recorder hook (one pointer test when absent).
	rec *FlightRecorder

	// retain is false in flight-recorder-only mode: closed spans live
	// only in the recorder's ring and their slots recycle through free,
	// so an always-on tracer stays bounded. Spans() returns nil then.
	retain bool
	free   []int
}

// New returns an enabled Tracer reading the given clock.
func New(clock Clock) *Tracer {
	return &Tracer{clock: clock, reg: NewRegistry(), idgen: defaultIDSeed, retain: true}
}

// NewFlightOnly returns a tracer that retains no span history of its
// own: completed spans flow to the attached FlightRecorder's bounded
// ring (or nowhere) and open-span slots are recycled, so memory stays
// constant no matter how long the simulation runs — the always-on
// production mode. Metrics still accumulate normally.
func NewFlightOnly(clock Clock) *Tracer {
	return &Tracer{clock: clock, reg: NewRegistry(), idgen: defaultIDSeed}
}

// SeedIDs reseeds the tracer's TraceID/SpanID stream (typically from
// the simulation seed, so ids are as deterministic as everything
// else). No-op once any id has been allocated, and on a nil tracer.
func (t *Tracer) SeedIDs(seed uint64) {
	if t == nil || t.idused {
		return
	}
	t.idgen = seed ^ defaultIDSeed
}

// nextID advances the splitmix64 stream (the same recipe sim.NewRNG
// expands its seed with). Never returns zero — zero means "no id".
func (t *Tracer) nextID() uint64 {
	t.idused = true
	t.idgen += 0x9e3779b97f4a7c15
	z := t.idgen
	z ^= z >> 30
	z *= 0xbf58476d1ce4b9b1
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// SetFlightRecorder attaches a recorder: from now on every completed
// span and instant is also appended to its bounded ring. Nil detaches.
func (t *Tracer) SetFlightRecorder(r *FlightRecorder) {
	if t == nil {
		return
	}
	t.rec = r
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Metrics returns the tracer's registry; nil for a nil tracer (the nil
// registry still hands out working no-op instruments).
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Span is a handle to an open span. The zero Span (from a nil tracer)
// ignores End/Note calls.
type Span struct {
	t   *Tracer
	idx int
	ok  bool
}

// alloc stores an open span record and returns its slot. Flight-only
// tracers recycle slots freed by End, keeping the table bounded by the
// number of concurrently open spans.
func (t *Tracer) alloc(rec SpanRecord) int {
	if !t.retain && len(t.free) > 0 {
		i := t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
		t.spans[i] = rec
		return i
	}
	t.spans = append(t.spans, rec)
	return len(t.spans) - 1
}

// Begin opens a flat span (no causal identity) at the current sim
// time. Close it with End.
func (t *Tracer) Begin(track, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	idx := t.alloc(SpanRecord{
		Track: track, Cat: cat, Name: name,
		Start: t.clock.Now(), End: -1,
	})
	return Span{t: t, idx: idx, ok: true}
}

// BeginTrace opens the root span of a new causal tree: fresh TraceID,
// fresh SpanID, no parent. Everything recorded with the root's
// Context() — across GRAM, VFS, supervisor, and wire boundaries —
// hangs off this tree.
func (t *Tracer) BeginTrace(track, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	idx := t.alloc(SpanRecord{
		Track: track, Cat: cat, Name: name,
		Start: t.clock.Now(), End: -1,
		Trace: TraceID(t.nextID()), ID: SpanID(t.nextID()),
	})
	return Span{t: t, idx: idx, ok: true}
}

// BeginChild opens a span parented under ctx: same trace, fresh
// SpanID, Parent = ctx.Span. An invalid (zero) ctx degrades to a flat
// Begin, so call sites never branch on whether causality is wired.
func (t *Tracer) BeginChild(ctx SpanContext, track, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	if !ctx.Valid() {
		return t.Begin(track, cat, name)
	}
	idx := t.alloc(SpanRecord{
		Track: track, Cat: cat, Name: name,
		Start: t.clock.Now(), End: -1,
		Trace: ctx.Trace, ID: SpanID(t.nextID()), Parent: ctx.Span,
	})
	return Span{t: t, idx: idx, ok: true}
}

// Context returns the span's position in its causal tree, for passing
// across a boundary so the far side's spans parent under this one.
// Invalid for flat spans and the zero Span.
func (s Span) Context() SpanContext {
	if !s.ok {
		return SpanContext{}
	}
	r := s.t.spans[s.idx]
	return SpanContext{Trace: r.Trace, Span: r.ID}
}

// End closes the span at the current sim time.
func (s Span) End() {
	if !s.ok {
		return
	}
	t := s.t
	t.spans[s.idx].End = t.clock.Now()
	if t.rec != nil {
		t.rec.noteSpan(t.spans[s.idx])
	}
	if !t.retain {
		t.free = append(t.free, s.idx)
	}
}

// EndErr closes the span, annotating it with err when non-nil.
func (s Span) EndErr(err error) {
	if !s.ok {
		return
	}
	if err != nil {
		s.t.spans[s.idx].Note = err.Error()
	}
	s.End()
}

// Note annotates the open span. Calling Note after End is undefined in
// flight-only mode (the slot may have been recycled).
func (s Span) Note(note string) {
	if !s.ok {
		return
	}
	s.t.spans[s.idx].Note = note
}

// record stores a completed span: into the span table when the tracer
// retains history, and into the flight recorder when one is attached.
func (t *Tracer) record(rec SpanRecord) {
	if t.retain {
		t.spans = append(t.spans, rec)
	}
	if t.rec != nil {
		t.rec.noteSpan(rec)
	}
}

// SpanAt records a complete flat span with explicit bounds — used when
// the interval is reconstructed after the fact (e.g. session lifecycle
// phases derived from consecutive marks).
func (t *Tracer) SpanAt(track, cat, name string, start, end sim.Time) {
	if t == nil {
		return
	}
	t.record(SpanRecord{Track: track, Cat: cat, Name: name, Start: start, End: end})
}

// SpanAtChild is SpanAt parented under ctx, returning the recorded
// span's own context (so later reconstructions can chain). A zero ctx
// records a flat span and returns the zero context.
func (t *Tracer) SpanAtChild(ctx SpanContext, track, cat, name string, start, end sim.Time) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	if !ctx.Valid() {
		t.SpanAt(track, cat, name, start, end)
		return SpanContext{}
	}
	rec := SpanRecord{
		Track: track, Cat: cat, Name: name, Start: start, End: end,
		Trace: ctx.Trace, ID: SpanID(t.nextID()), Parent: ctx.Span,
	}
	t.record(rec)
	return rec.Context()
}

// Instant records a zero-duration event at the current sim time.
func (t *Tracer) Instant(track, cat, name string) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	t.record(SpanRecord{Track: track, Cat: cat, Name: name, Start: now, End: now, Instant: true})
}

// Spans returns a copy of the recorded spans in recording order: the
// caller owns the result and later recording never mutates it (the
// pre-causality version returned the live backing array). Always nil
// for flight-only tracers — read their history from the recorder.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil || !t.retain {
		return nil
	}
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// spansRO returns the live span slice for same-package readers that
// only iterate (Chrome emission, phase stats); callers must not mutate
// or retain it.
func (t *Tracer) spansRO() []SpanRecord {
	if t == nil || !t.retain {
		return nil
	}
	return t.spans
}
