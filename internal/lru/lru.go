// Package lru provides the intrusive LRU index shared by the simulation
// data plane's block caches (the vfs proxy cache and the host OS buffer
// cache). It replaces container/list in those hot paths: nodes are
// recycled through a freelist and the index map is pre-sized, so a cache
// operating at steady state performs no allocations at all — a touch is
// a map lookup plus four pointer writes.
package lru

// Cache is an LRU set of keys. It tracks recency only; byte accounting
// stays with the caller. The zero value is not usable; call New.
type Cache[K comparable] struct {
	index map[K]*node[K]
	head  *node[K] // most recently used
	tail  *node[K] // least recently used
	free  *node[K] // recycled nodes, chained through next
}

type node[K comparable] struct {
	key        K
	prev, next *node[K]
}

// New creates a cache whose index is pre-sized for sizeHint entries.
func New[K comparable](sizeHint int) *Cache[K] {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Cache[K]{index: make(map[K]*node[K], sizeHint)}
}

// Len returns the number of cached keys.
func (c *Cache[K]) Len() int { return len(c.index) }

// Touch moves key to the front if present and reports whether it was.
func (c *Cache[K]) Touch(key K) bool {
	n, ok := c.index[key]
	if !ok {
		return false
	}
	c.moveToFront(n)
	return true
}

// Insert adds key at the front (or just touches it if already present).
func (c *Cache[K]) Insert(key K) {
	if n, ok := c.index[key]; ok {
		c.moveToFront(n)
		return
	}
	n := c.alloc()
	n.key = key
	c.index[key] = n
	c.pushFront(n)
}

// EvictOldest removes and returns the least recently used key; ok is
// false when the cache is empty.
func (c *Cache[K]) EvictOldest() (key K, ok bool) {
	if c.tail == nil {
		var zero K
		return zero, false
	}
	n := c.tail
	key = n.key
	c.unlink(n)
	delete(c.index, key)
	c.recycle(n)
	return key, true
}

// Remove deletes key and reports whether it was present.
func (c *Cache[K]) Remove(key K) bool {
	n, ok := c.index[key]
	if !ok {
		return false
	}
	c.unlink(n)
	delete(c.index, key)
	c.recycle(n)
	return true
}

// Filter removes every key for which drop returns true, scanning from
// least to most recently used. Used by cold invalidation paths.
func (c *Cache[K]) Filter(drop func(K) bool) {
	for n := c.tail; n != nil; {
		prev := n.prev
		if drop(n.key) {
			c.unlink(n)
			delete(c.index, n.key)
			c.recycle(n)
		}
		n = prev
	}
}

func (c *Cache[K]) alloc() *node[K] {
	if n := c.free; n != nil {
		c.free = n.next
		n.next = nil
		return n
	}
	return &node[K]{}
}

func (c *Cache[K]) recycle(n *node[K]) {
	var zero K
	n.key = zero
	n.prev = nil
	n.next = c.free
	c.free = n
}

func (c *Cache[K]) pushFront(n *node[K]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache[K]) unlink(n *node[K]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache[K]) moveToFront(n *node[K]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
