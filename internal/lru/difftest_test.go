package lru

import (
	"container/list"
	"math/rand"
	"testing"
)

// TestAgainstContainerList drives the intrusive cache and a
// container/list reference through the same random op sequence and
// requires identical observable behavior, eviction order included.
func TestAgainstContainerList(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New[int](16)
	l := list.New()
	idx := map[int]*list.Element{}
	for i := 0; i < 200000; i++ {
		op := rng.Intn(4)
		k := rng.Intn(40)
		switch op {
		case 0:
			a := c.Touch(k)
			el, ok := idx[k]
			if ok {
				l.MoveToFront(el)
			}
			if a != ok {
				t.Fatalf("op %d: touch(%d) = %v, want %v", i, k, a, ok)
			}
		case 1:
			c.Insert(k)
			if el, ok := idx[k]; ok {
				l.MoveToFront(el)
			} else {
				idx[k] = l.PushFront(k)
			}
		case 2:
			k1, ok1 := c.EvictOldest()
			if l.Len() == 0 {
				if ok1 {
					t.Fatalf("op %d: evict on empty returned %d", i, k1)
				}
				continue
			}
			oldest := l.Back()
			k2 := oldest.Value.(int)
			delete(idx, k2)
			l.Remove(oldest)
			if !ok1 || k1 != k2 {
				t.Fatalf("op %d: evict = %d,%v want %d", i, k1, ok1, k2)
			}
		case 3:
			a := c.Remove(k)
			el, ok := idx[k]
			if ok {
				delete(idx, k)
				l.Remove(el)
			}
			if a != ok {
				t.Fatalf("op %d: remove(%d) = %v, want %v", i, k, a, ok)
			}
		}
		if c.Len() != l.Len() {
			t.Fatalf("op %d: len %d vs %d", i, c.Len(), l.Len())
		}
	}
}
