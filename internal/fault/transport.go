package fault

import (
	"vmgrid/internal/sim"
	"vmgrid/internal/vfs"
)

// FlakyTransport wraps a vfs.Transport with injectable RPC loss and
// delay. A dropped RPC simply never completes — neither request nor
// reply arrives — which is exactly the failure the client's per-op
// timeout and retry policy exist to absorb. Loss decisions come from
// the injector-style seeded RNG, so a given seed drops the same RPCs
// every run.
type FlakyTransport struct {
	k     *sim.Kernel
	rng   *sim.RNG
	inner vfs.Transport

	dropProb float64
	delay    sim.Duration
	down     bool

	dropped uint64
	delayed uint64
}

var _ vfs.Transport = (*FlakyTransport)(nil)

// NewFlakyTransport wraps inner with a seeded fault stream.
func NewFlakyTransport(k *sim.Kernel, inner vfs.Transport, seed uint64) *FlakyTransport {
	return &FlakyTransport{k: k, rng: sim.NewRNG(seed), inner: inner}
}

// SetDropProb sets the probability that any single RPC vanishes.
func (t *FlakyTransport) SetDropProb(p float64) { t.dropProb = p }

// SetDelay adds a fixed extra delay to every RPC (slow path, not loss).
func (t *FlakyTransport) SetDelay(d sim.Duration) { t.delay = d }

// SetDown hard-fails the transport: while down, every RPC is dropped.
func (t *FlakyTransport) SetDown(down bool) { t.down = down }

// Dropped returns how many RPCs vanished.
func (t *FlakyTransport) Dropped() uint64 { return t.dropped }

// Delayed returns how many RPCs were slowed.
func (t *FlakyTransport) Delayed() uint64 { return t.delayed }

func (t *FlakyTransport) issue(op func()) bool {
	if t.down || (t.dropProb > 0 && t.rng.Float64() < t.dropProb) {
		t.dropped++
		return false
	}
	if t.delay > 0 {
		t.delayed++
		t.k.After(t.delay, op)
		return true
	}
	op()
	return true
}

// Read implements vfs.Transport.
func (t *FlakyTransport) Read(file string, off, size int64, done func(error)) {
	t.issue(func() { t.inner.Read(file, off, size, done) })
}

// Write implements vfs.Transport.
func (t *FlakyTransport) Write(file string, off, size int64, done func(error)) {
	t.issue(func() { t.inner.Write(file, off, size, done) })
}
