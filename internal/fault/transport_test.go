package fault

import (
	"testing"

	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/netsim"
	"vmgrid/internal/retry"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/vfs"
)

// flakyWorld wires a vfs client to a real server through a
// FlakyTransport over a LAN.
func flakyWorld(t *testing.T, seed uint64) (*sim.Kernel, *vfs.Client, *FlakyTransport) {
	t.Helper()
	k := sim.NewKernel(1)
	n := netsim.New(k)
	n.AddNode("server")
	n.AddNode("client")
	if err := n.ConnectLAN("client", "server"); err != nil {
		t.Fatal(err)
	}
	host, err := hostos.New(k, hw.ReferenceMachine("server"))
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore(host)
	if err := store.Create("data", 1<<30); err != nil {
		t.Fatal(err)
	}
	inner, err := vfs.NewNetTransport(n, "client", "server", vfs.NewServer(store))
	if err != nil {
		t.Fatal(err)
	}
	flaky := NewFlakyTransport(k, inner, seed)
	cfg := vfs.LANConfig()
	cfg.Retry = retry.Policy{
		MaxAttempts: 6, Timeout: sim.Second, Backoff: 20 * sim.Millisecond,
	}
	client, err := vfs.NewClient(k, flaky, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, client, flaky
}

func TestFlakyTransportLossAbsorbedByRetry(t *testing.T) {
	k, client, flaky := flakyWorld(t, 7)
	flaky.SetDropProb(0.3)
	file := client.Open("data", 1<<30)
	done := 0
	for i := 0; i < 20; i++ {
		file.Read(int64(i)*(1<<20), 64<<10, func() { done++ })
	}
	_ = k.RunUntil(k.Now().Add(10 * sim.Minute))
	if done != 20 {
		t.Fatalf("completed %d/20 reads", done)
	}
	if flaky.Dropped() == 0 {
		t.Fatal("no RPCs dropped at p=0.3; fault injection inert")
	}
	if client.Retries() == 0 {
		t.Error("drops absorbed without retries?")
	}
	if client.TransportErrors() != 0 {
		t.Errorf("TransportErrors = %d; the retry budget should have absorbed p=0.3 loss",
			client.TransportErrors())
	}
}

func TestFlakyTransportDeterministicPerSeed(t *testing.T) {
	run := func() (uint64, uint64) {
		k, client, flaky := flakyWorld(t, 7)
		flaky.SetDropProb(0.3)
		file := client.Open("data", 1<<30)
		for i := 0; i < 20; i++ {
			file.Read(int64(i)*(1<<20), 64<<10, nil)
		}
		_ = k.RunUntil(k.Now().Add(10 * sim.Minute))
		return flaky.Dropped(), client.Retries()
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 || r1 != r2 {
		t.Errorf("fault stream not reproducible: drops %d vs %d, retries %d vs %d", d1, d2, r1, r2)
	}
}

func TestFlakyTransportDown(t *testing.T) {
	k, client, flaky := flakyWorld(t, 1)
	flaky.SetDown(true)
	file := client.Open("data", 1<<30)
	done := false
	file.Read(0, 4<<10, func() { done = true })
	_ = k.RunUntil(k.Now().Add(sim.Minute))
	if !done {
		t.Fatal("read hung instead of failing soft after retry exhaustion")
	}
	if client.TransportErrors() == 0 {
		t.Error("hard-down transport produced no transport errors")
	}
	flaky.SetDown(false)
	done = false
	file.Read(1<<20, 4<<10, func() { done = true })
	_ = k.RunUntil(k.Now().Add(sim.Minute))
	if !done {
		t.Fatal("read failed after transport came back")
	}
}

func TestFlakyTransportDelayOnly(t *testing.T) {
	k, client, flaky := flakyWorld(t, 1)
	flaky.SetDelay(50 * sim.Millisecond)
	file := client.Open("data", 1<<30)
	start := k.Now()
	var end sim.Time
	file.Read(0, 4<<10, func() { end = k.Now() })
	_ = k.RunUntil(k.Now().Add(sim.Minute))
	if end == 0 {
		t.Fatal("read never completed")
	}
	if elapsed := end.Sub(start); elapsed < 50*sim.Millisecond {
		t.Errorf("elapsed %v, want ≥ the injected 50ms delay", elapsed)
	}
	if flaky.Delayed() == 0 {
		t.Error("no RPCs recorded as delayed")
	}
	if client.Retries() != 0 {
		t.Errorf("delay (not loss) caused %d retries; timeout too tight", client.Retries())
	}
}
