// Package fault is the deterministic fault-injection fabric: it
// schedules failures — node crash/reboot, link flap, network partition,
// VFS RPC loss and delay — on the simulation kernel, with every random
// choice drawn from a seeded sim.RNG stream. The same seed therefore
// produces the same failure schedule, bit for bit, which keeps faulty
// runs safe under experiments.RunSamples fan-out and lets recovery
// experiments pair faulty and fault-free arms exactly.
//
// The package is deliberately below the middleware: it knows how to
// break links (netsim) and transports (vfs), and drives node-level
// crashes through the Crasher interface so core can stay independent.
package fault

import (
	"sort"

	"vmgrid/internal/netsim"
	"vmgrid/internal/obs"
	"vmgrid/internal/sim"
)

// Crasher is anything whose nodes can fail-stop and later recover —
// core.Grid implements it.
type Crasher interface {
	CrashNode(name string) error
	RebootNode(name string) error
}

// Injector schedules failures on one simulation kernel. All randomness
// flows from its private RNG stream, so the schedule is a pure function
// of the seed.
type Injector struct {
	k     *sim.Kernel
	rng   *sim.RNG
	trace *obs.Tracer

	scheduled int
	fired     int
}

// New creates an injector whose RNG stream splits off the kernel's —
// deterministic as long as construction happens at a fixed point in the
// setup sequence.
func New(k *sim.Kernel) *Injector {
	return NewSeeded(k, k.RNG().Uint64())
}

// NewSeeded creates an injector with an explicit seed, independent of
// how much kernel randomness other components consumed. Experiments use
// this to share one crash schedule across paired arms.
func NewSeeded(k *sim.Kernel, seed uint64) *Injector {
	return &Injector{k: k, rng: sim.NewRNG(seed)}
}

// RNG exposes the injector's stream for custom fault distributions.
func (in *Injector) RNG() *sim.RNG { return in.rng }

// SetTracer records an instant per fired fault plus scheduled/fired
// counters into tr. A nil tracer (the default) disables tracing.
func (in *Injector) SetTracer(tr *obs.Tracer) { in.trace = tr }

// Scheduled returns how many fault events have been scheduled.
func (in *Injector) Scheduled() int { return in.scheduled }

// Fired returns how many fault events have executed.
func (in *Injector) Fired() int { return in.fired }

// At schedules fn as a fault event at absolute time t (immediately if t
// is not in the future).
func (in *Injector) At(t sim.Time, fn func()) {
	in.at(t, "fault", fn)
}

// at schedules fn and, when tracing, marks its firing with an instant
// named name on the shared "fault" track.
func (in *Injector) at(t sim.Time, name string, fn func()) {
	in.scheduled++
	in.trace.Metrics().Counter("fault.scheduled").Inc()
	run := func() {
		in.fired++
		in.trace.Metrics().Counter("fault.fired").Inc()
		in.trace.Instant("fault", "fault", name)
		fn()
	}
	if t <= in.k.Now() {
		in.k.After(0, run)
		return
	}
	in.k.At(t, run)
}

// Times draws failure instants from a Poisson process with the given
// mean time between failures, over [now, now+horizon), sorted ascending.
// The draw consumes the injector's RNG stream only, so two injectors
// with the same seed produce identical schedules.
func (in *Injector) Times(mtbf, horizon sim.Duration) []sim.Time {
	var out []sim.Time
	t := in.k.Now()
	end := t.Add(horizon)
	for {
		gap := sim.DurationOf(in.rng.Exp(mtbf.Seconds()))
		t = t.Add(gap)
		if t >= end {
			break
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CrashReboot schedules a fail-stop crash of node at time at, followed
// by a reboot after outage (outage ≤ 0 = the node never comes back).
func (in *Injector) CrashReboot(c Crasher, node string, at sim.Time, outage sim.Duration) {
	in.at(at, "crash:"+node, func() { _ = c.CrashNode(node) })
	if outage > 0 {
		in.at(at.Add(outage), "reboot:"+node, func() { _ = c.RebootNode(node) })
	}
}

// FlapLink takes the a<->b link down at time at and restores it after
// outage (outage ≤ 0 = the link stays down).
func (in *Injector) FlapLink(n *netsim.Network, a, b string, at sim.Time, outage sim.Duration) {
	in.at(at, "link-down:"+a+"<->"+b, func() { _ = n.SetLinkUp(a, b, false) })
	if outage > 0 {
		in.at(at.Add(outage), "link-up:"+a+"<->"+b, func() { _ = n.SetLinkUp(a, b, true) })
	}
}

// PartitionNode isolates a node — every attached link fails — at time
// at, healing after outage (outage ≤ 0 = permanent).
func (in *Injector) PartitionNode(n *netsim.Network, node string, at sim.Time, outage sim.Duration) {
	in.at(at, "partition:"+node, func() { _ = n.SetNodeUp(node, false) })
	if outage > 0 {
		in.at(at.Add(outage), "heal:"+node, func() { _ = n.SetNodeUp(node, true) })
	}
}

// FlapLinkOneWay takes only the from->to direction of a link down at
// time at and restores it after outage (outage ≤ 0 = stays down). The
// reverse direction keeps flowing throughout — the asymmetric fault
// shape that defeats naive "can I hear you" failure detectors.
func (in *Injector) FlapLinkOneWay(n *netsim.Network, from, to string, at sim.Time, outage sim.Duration) {
	in.at(at, "link-down:"+from+"->"+to, func() { _ = n.SetLinkDirUp(from, to, false) })
	if outage > 0 {
		in.at(at.Add(outage), "link-up:"+from+"->"+to, func() { _ = n.SetLinkDirUp(from, to, true) })
	}
}

// PartitionNodeOneWay fails one direction of every link attached to
// node at time at: outbound=true mutes it (its heartbeats vanish while
// it still hears the grid — the canonical split-brain trigger),
// outbound=false deafens it. Heals after outage (outage ≤ 0 =
// permanent).
func (in *Injector) PartitionNodeOneWay(n *netsim.Network, node string, at sim.Time, outage sim.Duration, outbound bool) {
	dir := "in"
	if outbound {
		dir = "out"
	}
	in.at(at, "partition-"+dir+":"+node, func() { _ = n.SetNodeDirUp(node, outbound, false) })
	if outage > 0 {
		in.at(at.Add(outage), "heal-"+dir+":"+node, func() { _ = n.SetNodeDirUp(node, outbound, true) })
	}
}
