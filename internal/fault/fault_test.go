package fault

import (
	"testing"

	"vmgrid/internal/netsim"
	"vmgrid/internal/sim"
)

type fakeCrasher struct {
	log []string
}

func (f *fakeCrasher) CrashNode(name string) error {
	f.log = append(f.log, "crash:"+name)
	return nil
}

func (f *fakeCrasher) RebootNode(name string) error {
	f.log = append(f.log, "reboot:"+name)
	return nil
}

func TestTimesDeterministicPerSeed(t *testing.T) {
	k1 := sim.NewKernel(1)
	k2 := sim.NewKernel(99) // different kernel seed must not matter
	a := NewSeeded(k1, 42).Times(10*sim.Minute, 12*sim.Hour)
	b := NewSeeded(k2, 42).Times(10*sim.Minute, 12*sim.Hour)
	if len(a) == 0 {
		t.Fatal("no failures drawn over 12h at 10min MTBF")
	}
	if len(a) != len(b) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := NewSeeded(k1, 43).Times(10*sim.Minute, 12*sim.Hour)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
	// Sanity: a Poisson process at 10 min MTBF over 12 h yields ~72
	// events; accept a wide band.
	if len(a) < 30 || len(a) > 140 {
		t.Errorf("draw count = %d, implausible for MTBF 10min over 12h", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("schedule not sorted")
		}
	}
}

func TestCrashRebootOrdering(t *testing.T) {
	k := sim.NewKernel(1)
	in := New(k)
	var fc fakeCrasher
	in.CrashReboot(&fc, "n1", k.Now().Add(10*sim.Second), 5*sim.Second)
	in.CrashReboot(&fc, "n2", k.Now().Add(12*sim.Second), 0) // never reboots
	_ = k.RunUntil(k.Now().Add(sim.Minute))
	want := []string{"crash:n1", "crash:n2", "reboot:n1"}
	if len(fc.log) != len(want) {
		t.Fatalf("log = %v, want %v", fc.log, want)
	}
	for i := range want {
		if fc.log[i] != want[i] {
			t.Fatalf("log = %v, want %v", fc.log, want)
		}
	}
	if in.Scheduled() != 3 || in.Fired() != 3 {
		t.Errorf("scheduled/fired = %d/%d, want 3/3", in.Scheduled(), in.Fired())
	}
}

func TestAtPastTimeFiresImmediately(t *testing.T) {
	k := sim.NewKernel(1)
	in := New(k)
	fired := false
	in.At(k.Now(), func() { fired = true })
	_ = k.RunUntil(k.Now().Add(sim.Second))
	if !fired {
		t.Error("fault at now never fired")
	}
}

func TestFlapLinkPartitionsAndHeals(t *testing.T) {
	k := sim.NewKernel(1)
	n := netsim.New(k)
	n.AddNode("a")
	n.AddNode("b")
	if err := n.ConnectLAN("a", "b"); err != nil {
		t.Fatal(err)
	}
	in := New(k)
	in.FlapLink(n, "a", "b", k.Now().Add(sim.Second), 2*sim.Second)

	reachable := func() bool {
		_, err := n.Latency("a", "b", 1024)
		return err == nil
	}
	if !reachable() {
		t.Fatal("link down before the flap")
	}
	_ = k.RunUntil(k.Now().Add(1500 * sim.Millisecond))
	if reachable() {
		t.Error("link still up mid-flap")
	}
	_ = k.RunUntil(k.Now().Add(2 * sim.Second))
	if !reachable() {
		t.Error("link never healed")
	}
}

func TestPartitionNodeIsolates(t *testing.T) {
	k := sim.NewKernel(1)
	n := netsim.New(k)
	for _, name := range []string{"a", "b", "c"} {
		n.AddNode(name)
	}
	if err := n.ConnectLAN("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := n.ConnectLAN("b", "c"); err != nil {
		t.Fatal(err)
	}
	in := New(k)
	in.PartitionNode(n, "b", k.Now().Add(sim.Second), 2*sim.Second)
	_ = k.RunUntil(k.Now().Add(1500 * sim.Millisecond))
	if _, err := n.Latency("a", "c", 1024); err == nil {
		t.Error("a→c path survived b's partition")
	}
	_ = k.RunUntil(k.Now().Add(2 * sim.Second))
	if _, err := n.Latency("a", "c", 1024); err != nil {
		t.Errorf("a→c never healed: %v", err)
	}
}
