// Package hostos models the host operating system of a grid node: a
// time-sharing CPU scheduler multiplexing processes, POSIX-style
// stop/continue signals, a disk buffer cache, and background load
// processes driven by trace playback.
//
// The CPU is a fluid model: each runnable process declares a demand (the
// fraction of one core it would consume if unimpeded) and the scheduler
// grants rates by weighted max-min fairness, recomputed whenever the set
// of demands changes. Time-sharing costs are charged as a context-switch
// efficiency factor when more than one process shares the core, so the
// contention phenomena in the paper's Figure 1 arise mechanistically.
package hostos

import (
	"fmt"
	"math"

	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
)

// Defaults for the time-sharing model, matching a Linux 2.4-era kernel on
// the paper's hardware.
const (
	// DefaultQuantum is the scheduler time slice.
	DefaultQuantum = 10 * sim.Millisecond
	// DefaultCtxSwitchCost is the direct plus cache-disturbance cost of
	// one context switch.
	DefaultCtxSwitchCost = 60 * sim.Microsecond
)

// Host is one physical node running a host operating system.
type Host struct {
	k     *sim.Kernel
	spec  hw.MachineSpec
	disk  *hw.Disk
	cache *BufferCache

	quantum sim.Duration
	ctxCost sim.Duration

	procs  []*Process
	nextID int

	// rebalance scratch, reused across calls. rebalance runs on every
	// demand change — twice per guest I/O operation — so per-call slice
	// and map allocations here dominated the macrobenchmark profile.
	scratchActive   []*Process
	scratchUncapped []int
}

// Option configures a Host.
type Option func(*Host)

// WithQuantum overrides the scheduler quantum.
func WithQuantum(q sim.Duration) Option {
	return func(h *Host) { h.quantum = q }
}

// WithCtxSwitchCost overrides the per-context-switch cost.
func WithCtxSwitchCost(c sim.Duration) Option {
	return func(h *Host) { h.ctxCost = c }
}

// New boots a host OS on the given hardware.
func New(k *sim.Kernel, spec hw.MachineSpec, opts ...Option) (*Host, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("hostos: %w", err)
	}
	h := &Host{
		k:       k,
		spec:    spec,
		disk:    hw.NewDisk(k, spec.Disk),
		quantum: DefaultQuantum,
		ctxCost: DefaultCtxSwitchCost,
	}
	// The buffer cache gets roughly what Linux would leave free on the
	// paper's 512 MB host after the kernel and resident daemons.
	h.cache = NewBufferCache(h.disk, spec.MemBytes*6/10)
	for _, opt := range opts {
		opt(h)
	}
	return h, nil
}

// Kernel returns the simulation kernel the host runs on.
func (h *Host) Kernel() *sim.Kernel { return h.k }

// Spec returns the host's hardware description.
func (h *Host) Spec() hw.MachineSpec { return h.spec }

// Disk returns the raw disk device.
func (h *Host) Disk() *hw.Disk { return h.disk }

// Cache returns the host's disk buffer cache.
func (h *Host) Cache() *BufferCache { return h.cache }

// Name returns the machine name.
func (h *Host) Name() string { return h.spec.Name }

// Capacity returns the CPU capacity in work units per second. The
// sequential benchmarks in the paper exercise one core; the fluid model
// likewise schedules a single core (see DESIGN.md §2).
func (h *Host) Capacity() float64 { return h.spec.CPU.Speed }

// Procs returns the current process table (a copy).
func (h *Host) Procs() []*Process {
	out := make([]*Process, len(h.procs))
	copy(out, h.procs)
	return out
}

// Runnable returns the number of processes with positive demand that are
// not stopped — the instantaneous load the machine would report.
func (h *Host) Runnable() int {
	n := 0
	for _, p := range h.procs {
		if p.active() {
			n++
		}
	}
	return n
}

// LoadAverage returns the demand-weighted load: the sum of active
// processes' CPU demands. Unlike Runnable (a process count), an idle VM
// ticking its timer at 1% demand contributes 0.01, not 1 — this is what
// a load sensor should report.
func (h *Host) LoadAverage() float64 {
	var sum float64
	for _, p := range h.procs {
		if p.active() {
			d := p.demand
			if d > 1 {
				d = 1
			}
			sum += d
		}
	}
	return sum
}

// Spawn creates a process with zero demand and weight 1.
func (h *Host) Spawn(name string) *Process {
	h.nextID++
	p := &Process{host: h, id: h.nextID, name: name, weight: 1}
	h.procs = append(h.procs, p)
	return p
}

// rebalance recomputes granted rates by weighted max-min fairness and
// notifies every process whose rate changed. The working state lives in
// scratch slices on the Host and a pending-rate field on each Process,
// so steady-state rebalances allocate nothing.
func (h *Host) rebalance() {
	capacity := h.Capacity()

	active := h.scratchActive[:0]
	for _, p := range h.procs {
		if p.active() {
			p.newRate = 0
			active = append(active, p)
		}
	}
	h.scratchActive = active

	if len(active) > 0 {
		// Weighted max-min fairness (water-filling): repeatedly hand out
		// capacity in proportion to weight, capping processes at their
		// demand, until capacity or uncapped processes run out.
		remaining := capacity
		uncapped := h.scratchUncapped[:0]
		for i := range active {
			uncapped = append(uncapped, i)
		}
		h.scratchUncapped = uncapped
		for len(uncapped) > 0 && remaining > 1e-12 {
			var wsum float64
			for _, i := range uncapped {
				wsum += active[i].weight
			}
			// Find the smallest normalized headroom to cap first. Only the
			// minimum matters — ties yield identical grants either way — so
			// a linear scan replaces sorting the whole remainder.
			minAt := 0
			minH := math.Inf(1)
			for at, i := range uncapped {
				p := active[i]
				if hr := (p.demand*capacity - p.newRate) / p.weight; hr < minH {
					minH = hr
					minAt = at
				}
			}
			uncapped[0], uncapped[minAt] = uncapped[minAt], uncapped[0]
			first := active[uncapped[0]]
			need := first.demand*capacity - first.newRate
			perWeight := remaining / wsum
			if grant := need / first.weight; grant <= perWeight {
				// The most constrained process saturates; give every
				// uncapped process that much per weight and retire it.
				for _, i := range uncapped {
					active[i].newRate += grant * active[i].weight
				}
				remaining -= grant * wsum
				uncapped = uncapped[1:]
			} else {
				// Capacity runs out before anyone else saturates.
				for _, i := range uncapped {
					active[i].newRate += perWeight * active[i].weight
				}
				remaining = 0
			}
		}
	}

	// Time-sharing overhead: with n>1 processes sharing the core, each
	// quantum boundary costs a context switch.
	sharing := 0
	for _, p := range active {
		if p.newRate > 1e-12 {
			sharing++
		}
	}
	eff := 1.0
	if sharing > 1 && h.quantum > 0 {
		eff = 1 - h.ctxCost.Seconds()/h.quantum.Seconds()
		if eff < 0 {
			eff = 0
		}
	}

	for _, p := range h.procs {
		rate := 0.0
		if p.active() {
			rate = p.newRate * eff
		}
		if rate != p.rate {
			p.account()
			p.rate = rate
			if p.onRate != nil {
				p.onRate(rate)
			}
		}
	}
}

// Process is a host OS process: a schedulable CPU consumer. The zero
// value is not usable; create processes with Host.Spawn.
type Process struct {
	host    *Host
	id      int
	name    string
	demand  float64 // desired fraction of one core, in [0, 1]
	weight  float64
	rate    float64 // granted work units per second
	stopped bool
	exited  bool
	onRate  func(rate float64)
	newRate float64 // rebalance working value; meaningless between calls

	// accounting: CPU consumed so far, reconciled lazily.
	consumed     float64
	consumedAsOf sim.Time
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// ID returns the host-unique process id.
func (p *Process) ID() int { return p.id }

// Host returns the owning host.
func (p *Process) Host() *Host { return p.host }

// Rate returns the currently granted CPU rate in work units per second.
func (p *Process) Rate() float64 { return p.rate }

// account charges the elapsed interval at the current rate.
func (p *Process) account() {
	now := p.host.k.Now()
	if now > p.consumedAsOf {
		p.consumed += p.rate * now.Sub(p.consumedAsOf).Seconds()
	}
	p.consumedAsOf = now
}

// CPUSeconds returns the total CPU the process has consumed — the basis
// for the resource accounting the paper says VM-granular control
// enables ("account for the usage of a resource in a CPU-server
// environment").
func (p *Process) CPUSeconds() float64 {
	p.account()
	return p.consumed
}

// Demand returns the current declared demand.
func (p *Process) Demand() float64 { return p.demand }

// Weight returns the scheduler weight.
func (p *Process) Weight() float64 { return p.weight }

// Stopped reports whether the process is stopped (SIGSTOP).
func (p *Process) Stopped() bool { return p.stopped }

// Exited reports whether the process has exited.
func (p *Process) Exited() bool { return p.exited }

func (p *Process) active() bool {
	return !p.stopped && !p.exited && p.demand > 0
}

// OnRate registers the callback invoked whenever the granted rate
// changes. Typically this feeds a sim.WorkTracker.SetRate.
func (p *Process) OnRate(fn func(rate float64)) {
	p.onRate = fn
	if fn != nil {
		fn(p.rate)
	}
}

// SetDemand declares how much of one core the process wants, clamped to
// [0, 1]. A CPU-bound task demands 1; trace-driven background load
// demands the trace's load average (capped at the core).
func (p *Process) SetDemand(d float64) {
	if p.exited {
		return
	}
	if d < 0 {
		d = 0
	}
	if d > 1 {
		d = 1
	}
	if d == p.demand {
		return
	}
	p.demand = d
	p.host.rebalance()
}

// SetWeight changes the scheduler weight (must be positive).
func (p *Process) SetWeight(w float64) {
	if w <= 0 || p.exited {
		return
	}
	p.weight = w
	p.host.rebalance()
}

// SetLoad configures the process to behave like a background load with
// the given load average u, the semantics of host-load trace playback: a
// load average of u stands for u competing runnable processes, so a
// CPU-bound task sharing the core sees slowdown ≈ 1+u (Dinda, LCR 2000).
// That falls out of weighted fairness with weight u and demand min(u, 1):
// alone, the load consumes min(u, 1) of the core; against a weight-1
// CPU-bound task it takes u/(1+u), leaving the task 1/(1+u).
func (p *Process) SetLoad(u float64) {
	if p.exited {
		return
	}
	if u <= 0 {
		p.SetDemand(0)
		return
	}
	p.weight = u
	d := u
	if d > 1 {
		d = 1
	}
	// Assign demand directly so a single rebalance covers both changes.
	p.demand = d
	p.host.rebalance()
}

// Stop delivers SIGSTOP: the process keeps its demand but receives no
// CPU until Cont.
func (p *Process) Stop() {
	if p.stopped || p.exited {
		return
	}
	p.stopped = true
	p.host.rebalance()
}

// Cont delivers SIGCONT, resuming a stopped process.
func (p *Process) Cont() {
	if !p.stopped || p.exited {
		return
	}
	p.stopped = false
	p.host.rebalance()
}

// Exit removes the process from the host permanently.
func (p *Process) Exit() {
	if p.exited {
		return
	}
	p.account()
	p.exited = true
	p.rate = 0 // stop accruing CPU time; the table entry is gone
	procs := p.host.procs
	for i, q := range procs {
		if q == p {
			p.host.procs = append(procs[:i], procs[i+1:]...)
			break
		}
	}
	p.host.rebalance()
	if p.onRate != nil {
		p.onRate(0)
	}
}

// RunWork executes `work` reference CPU-seconds on the process, declaring
// full demand for the duration and invoking done at completion. It
// returns the tracker so callers can observe or abort the task.
func (p *Process) RunWork(work float64, done func()) *sim.WorkTracker {
	var tr *sim.WorkTracker
	tr = sim.NewWorkTracker(p.host.k, work, func() {
		p.SetDemand(0)
		p.OnRate(nil)
		if done != nil {
			done()
		}
	})
	p.OnRate(tr.SetRate)
	p.SetDemand(1)
	// SetDemand may have been a no-op if demand was already 1; make sure
	// the tracker sees the current rate either way.
	tr.SetRate(p.rate)
	return tr
}
