package hostos

import (
	"vmgrid/internal/hw"
	"vmgrid/internal/lru"
	"vmgrid/internal/sim"
)

// CachePageSize is the buffer cache page granularity. 64 KB pages keep
// the simulated cache index small while staying finer than the transfer
// sizes that matter (boot block runs, image copy chunks).
const CachePageSize int64 = 64 * 1024

// hitLatency is the CPU cost of satisfying a read from the cache.
const hitLatency = 50 * sim.Microsecond

// BufferCache is the host OS disk buffer cache: an LRU of fixed-size
// pages keyed by (file, page index) in front of an hw.Disk. Reads that
// hit cost only a memory copy; misses are charged to the device. Writes
// are write-through: the caller's completion waits for the device, and
// the written pages become cached (this is what makes a VM image read
// shortly after it was copied fast, as in Table 2's persistent rows).
// The page index is an intrusive LRU with recycled nodes, so a cache at
// steady state allocates nothing.
type BufferCache struct {
	disk     *hw.Disk
	capacity int64 // bytes
	used     int64

	pages *lru.Cache[pageKey]

	hits, misses uint64
}

type pageKey struct {
	file string
	page int64
}

// NewBufferCache creates a cache of the given byte capacity over disk.
func NewBufferCache(disk *hw.Disk, capacity int64) *BufferCache {
	if capacity < 0 {
		capacity = 0
	}
	return &BufferCache{
		disk:     disk,
		capacity: capacity,
		pages:    lru.New[pageKey](int(capacity / CachePageSize)),
	}
}

// Hits returns the number of pages served from memory.
func (c *BufferCache) Hits() uint64 { return c.hits }

// Misses returns the number of pages that went to the device.
func (c *BufferCache) Misses() uint64 { return c.misses }

// CachedBytes returns the bytes currently resident.
func (c *BufferCache) CachedBytes() int64 { return c.used }

// Capacity returns the configured byte capacity.
func (c *BufferCache) Capacity() int64 { return c.capacity }

func pageRange(off, size int64) (first, last int64) {
	if size <= 0 {
		size = 1
	}
	return off / CachePageSize, (off + size - 1) / CachePageSize
}

func (c *BufferCache) touch(key pageKey) bool {
	return c.pages.Touch(key)
}

func (c *BufferCache) insert(key pageKey) {
	if c.capacity < CachePageSize {
		return
	}
	if c.pages.Touch(key) {
		return
	}
	for c.used+CachePageSize > c.capacity && c.pages.Len() > 0 {
		c.pages.EvictOldest()
		c.used -= CachePageSize
	}
	c.pages.Insert(key)
	c.used += CachePageSize
}

// Read fetches [off, off+size) of file through the cache and invokes
// done when the data is available. Missing pages are fetched from the
// device in a single request; fully cached reads complete after a memory
// copy latency.
func (c *BufferCache) Read(k *sim.Kernel, file string, off, size int64, done func()) {
	first, last := pageRange(off, size)
	var missing int64
	for pg := first; pg <= last; pg++ {
		key := pageKey{file: file, page: pg}
		if c.touch(key) {
			c.hits++
			continue
		}
		c.misses++
		missing += CachePageSize
		c.insert(key)
	}
	if missing == 0 {
		k.After(hitLatency, done)
		return
	}
	c.disk.Submit(missing, done)
}

// ReadSequential is Read for streaming access patterns: device fetches
// skip the per-request seek, as the host readahead would arrange.
func (c *BufferCache) ReadSequential(k *sim.Kernel, file string, off, size int64, done func()) {
	first, last := pageRange(off, size)
	var missing int64
	for pg := first; pg <= last; pg++ {
		key := pageKey{file: file, page: pg}
		if c.touch(key) {
			c.hits++
			continue
		}
		c.misses++
		missing += CachePageSize
		c.insert(key)
	}
	if missing == 0 {
		k.After(hitLatency, done)
		return
	}
	c.disk.SubmitSequential(missing, done)
}

// Write stores [off, off+size) of file through the cache (write-through)
// and invokes done when the device has absorbed the data. The written
// pages become resident.
func (c *BufferCache) Write(k *sim.Kernel, file string, off, size int64, done func()) {
	c.write(k, file, off, size, done, false)
}

// WriteSequential is Write without the per-request seek charge, for
// streaming writers creating fresh files (e.g. image copies).
func (c *BufferCache) WriteSequential(k *sim.Kernel, file string, off, size int64, done func()) {
	c.write(k, file, off, size, done, true)
}

func (c *BufferCache) write(k *sim.Kernel, file string, off, size int64, done func(), sequential bool) {
	first, last := pageRange(off, size)
	for pg := first; pg <= last; pg++ {
		c.insert(pageKey{file: file, page: pg})
	}
	if size <= 0 {
		k.After(hitLatency, done)
		return
	}
	if sequential {
		c.disk.SubmitSequential(size, done)
		return
	}
	c.disk.Submit(size, done)
}

// Invalidate drops all cached pages of file (e.g. when it is deleted).
func (c *BufferCache) Invalidate(file string) {
	c.pages.Filter(func(key pageKey) bool {
		if key.file != file {
			return false
		}
		c.used -= CachePageSize
		return true
	})
}
