package hostos

import (
	"math"
	"testing"
	"testing/quick"

	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
	"vmgrid/internal/trace"
)

func newHost(t *testing.T, k *sim.Kernel) *Host {
	t.Helper()
	h, err := New(k, hw.ReferenceMachine("n1"))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewRejectsBadSpec(t *testing.T) {
	k := sim.NewKernel(1)
	bad := hw.ReferenceMachine("n1")
	bad.CPU.Speed = 0
	if _, err := New(k, bad); err == nil {
		t.Fatal("New accepted invalid machine spec")
	}
}

func TestSingleProcessGetsFullCore(t *testing.T) {
	k := sim.NewKernel(1)
	h := newHost(t, k)
	p := h.Spawn("cpu-hog")
	p.SetDemand(1)
	if got := p.Rate(); got != h.Capacity() {
		t.Fatalf("solo rate = %v, want full capacity %v", got, h.Capacity())
	}
}

func TestTwoCPUBoundProcessesShare(t *testing.T) {
	k := sim.NewKernel(1)
	h := newHost(t, k)
	a := h.Spawn("a")
	b := h.Spawn("b")
	a.SetDemand(1)
	b.SetDemand(1)
	// Equal weights halve the core, minus context-switch overhead.
	eff := 1 - DefaultCtxSwitchCost.Seconds()/DefaultQuantum.Seconds()
	want := h.Capacity() / 2 * eff
	if math.Abs(a.Rate()-want) > 1e-9 || math.Abs(b.Rate()-want) > 1e-9 {
		t.Fatalf("rates = %v, %v; want %v each", a.Rate(), b.Rate(), want)
	}
}

func TestLightDemandIsSatisfiedFirst(t *testing.T) {
	k := sim.NewKernel(1)
	h := newHost(t, k)
	hog := h.Spawn("hog")
	light := h.Spawn("light")
	hog.SetDemand(1)
	light.SetDemand(0.2)
	eff := 1 - DefaultCtxSwitchCost.Seconds()/DefaultQuantum.Seconds()
	// Max-min fairness: light gets its 0.2, hog gets the remaining 0.8.
	if math.Abs(light.Rate()-0.2*eff) > 1e-9 {
		t.Errorf("light rate = %v, want %v", light.Rate(), 0.2*eff)
	}
	if math.Abs(hog.Rate()-0.8*eff) > 1e-9 {
		t.Errorf("hog rate = %v, want %v", hog.Rate(), 0.8*eff)
	}
}

func TestWeightsBiasAllocation(t *testing.T) {
	k := sim.NewKernel(1)
	h := newHost(t, k)
	a := h.Spawn("a")
	b := h.Spawn("b")
	a.SetWeight(3)
	a.SetDemand(1)
	b.SetDemand(1)
	eff := 1 - DefaultCtxSwitchCost.Seconds()/DefaultQuantum.Seconds()
	if math.Abs(a.Rate()-0.75*eff) > 1e-9 {
		t.Errorf("a rate = %v, want %v", a.Rate(), 0.75*eff)
	}
	if math.Abs(b.Rate()-0.25*eff) > 1e-9 {
		t.Errorf("b rate = %v, want %v", b.Rate(), 0.25*eff)
	}
}

func TestStopContSignals(t *testing.T) {
	k := sim.NewKernel(1)
	h := newHost(t, k)
	a := h.Spawn("a")
	b := h.Spawn("b")
	a.SetDemand(1)
	b.SetDemand(1)
	b.Stop()
	if !b.Stopped() {
		t.Fatal("b not stopped")
	}
	if b.Rate() != 0 {
		t.Errorf("stopped process has rate %v", b.Rate())
	}
	if a.Rate() != h.Capacity() {
		t.Errorf("a rate = %v after sibling stop, want full core", a.Rate())
	}
	b.Cont()
	if b.Rate() == 0 || a.Rate() == h.Capacity() {
		t.Error("Cont did not restore sharing")
	}
	// Double stop/cont are no-ops.
	b.Cont()
	b.Stop()
	b.Stop()
	b.Cont()
}

func TestExitRemovesProcess(t *testing.T) {
	k := sim.NewKernel(1)
	h := newHost(t, k)
	a := h.Spawn("a")
	b := h.Spawn("b")
	a.SetDemand(1)
	b.SetDemand(1)
	b.Exit()
	if !b.Exited() {
		t.Fatal("b not exited")
	}
	if len(h.Procs()) != 1 {
		t.Fatalf("process table has %d entries, want 1", len(h.Procs()))
	}
	if a.Rate() != h.Capacity() {
		t.Errorf("survivor rate = %v, want full core", a.Rate())
	}
	// Operations on an exited process are inert.
	b.SetDemand(1)
	b.Exit()
	if h.Runnable() != 1 {
		t.Errorf("Runnable = %d, want 1", h.Runnable())
	}
}

func TestRunWorkDuration(t *testing.T) {
	k := sim.NewKernel(1)
	h := newHost(t, k)
	p := h.Spawn("job")
	var doneAt sim.Time = -1
	p.RunWork(10, func() { doneAt = k.Now() })
	k.Run()
	if doneAt != sim.Time(10*sim.Second) {
		t.Fatalf("10 work units solo finished at %v, want 10s", doneAt)
	}
	if p.Demand() != 0 {
		t.Errorf("demand not cleared after completion: %v", p.Demand())
	}
}

func TestRunWorkUnderContention(t *testing.T) {
	k := sim.NewKernel(1)
	h := newHost(t, k)
	p := h.Spawn("job")
	loadProc := h.Spawn("load")
	loadProc.SetDemand(1)
	var doneAt sim.Time = -1
	p.RunWork(10, func() { doneAt = k.Now() })
	k.Run()
	// Two CPU-bound processes: job runs at ~half speed, so ~20s plus
	// context-switch overhead.
	eff := 1 - DefaultCtxSwitchCost.Seconds()/DefaultQuantum.Seconds()
	want := 20.0 / eff
	if math.Abs(doneAt.Seconds()-want) > 0.01 {
		t.Fatalf("contended completion at %vs, want ~%vs", doneAt.Seconds(), want)
	}
}

func TestSlowdownMatchesLoadAverage(t *testing.T) {
	// A CPU task under a constant background load u must see slowdown
	// ≈ 1+u — the basic premise behind the Figure 1 scenarios.
	for _, u := range []float64{0.25, 0.5, 0.75, 1.5} {
		k := sim.NewKernel(1)
		h := newHost(t, k)
		bg := h.Spawn("bg")
		bg.SetLoad(u)
		p := h.Spawn("test")
		var doneAt sim.Time
		p.RunWork(5, func() { doneAt = k.Now() })
		k.Run()
		slowdown := doneAt.Seconds() / 5.0
		if math.Abs(slowdown-(1+u)) > 0.03 {
			t.Errorf("u=%v: slowdown = %v, want ~%v", u, slowdown, 1+u)
		}
	}
}

func TestLoadProcessPlayback(t *testing.T) {
	k := sim.NewKernel(1)
	h := newHost(t, k)
	tr := &trace.Trace{Step: sim.Second, Loads: []float64{0.5}}
	lp := NewLoadProcess(h, "bg", tr)
	lp.Start()
	p := h.Spawn("test")
	var doneAt sim.Time
	p.RunWork(4, func() { doneAt = k.Now() })
	if err := k.RunUntil(sim.Time(sim.Minute)); err != nil {
		t.Fatal(err)
	}
	if math.Abs(doneAt.Seconds()-6.0) > 0.1 { // slowdown 1.5
		t.Errorf("completion at %vs, want ~6s under 0.5 load", doneAt.Seconds())
	}
	lp.Kill()
	if h.Runnable() != 0 {
		t.Errorf("Runnable = %d after kill", h.Runnable())
	}
}

// Property: rates never exceed demand*capacity, never go negative, and
// their sum never exceeds capacity.
func TestRebalanceInvariants(t *testing.T) {
	prop := func(demandsRaw []uint8, weightsRaw []uint8) bool {
		k := sim.NewKernel(9)
		h, err := New(k, hw.ReferenceMachine("n"))
		if err != nil {
			return false
		}
		n := len(demandsRaw)
		if n > 12 {
			n = 12
		}
		var procs []*Process
		for i := 0; i < n; i++ {
			p := h.Spawn("p")
			w := float64(1)
			if i < len(weightsRaw) {
				w = float64(weightsRaw[i]%5) + 1
			}
			p.SetWeight(w)
			p.SetDemand(float64(demandsRaw[i]%101) / 100.0)
			procs = append(procs, p)
		}
		var sum float64
		for _, p := range procs {
			r := p.Rate()
			if r < 0 || r > p.Demand()*h.Capacity()+1e-9 {
				return false
			}
			sum += r
		}
		return sum <= h.Capacity()+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBufferCacheHitAndMiss(t *testing.T) {
	k := sim.NewKernel(1)
	h := newHost(t, k)
	c := h.Cache()
	var first, second sim.Time
	c.Read(k, "img", 0, 128*1024, func() { first = k.Now() })
	k.Run()
	c.Read(k, "img", 0, 128*1024, func() { second = k.Now() })
	k.Run()
	if c.Misses() == 0 {
		t.Fatal("first read recorded no misses")
	}
	if c.Hits() == 0 {
		t.Fatal("second read recorded no hits")
	}
	missTime := first.Sub(0)
	hitTime := second.Sub(first)
	if hitTime >= missTime {
		t.Errorf("cached read (%v) not faster than device read (%v)", hitTime, missTime)
	}
}

func TestBufferCacheWriteMakesResident(t *testing.T) {
	k := sim.NewKernel(1)
	h := newHost(t, k)
	c := h.Cache()
	c.WriteSequential(k, "copy", 0, 1<<20, nil)
	k.Run()
	start := k.Now()
	var doneAt sim.Time
	c.Read(k, "copy", 0, 1<<20, func() { doneAt = k.Now() })
	k.Run()
	if doneAt.Sub(start) > sim.Millisecond {
		t.Errorf("read-after-write took %v, want cache hit", doneAt.Sub(start))
	}
}

func TestBufferCacheEviction(t *testing.T) {
	k := sim.NewKernel(1)
	disk := hw.NewDisk(k, hw.ReferenceMachine("n").Disk)
	c := NewBufferCache(disk, 4*CachePageSize)
	for i := int64(0); i < 8; i++ {
		c.Write(k, "f", i*CachePageSize, CachePageSize, nil)
	}
	k.Run()
	if c.CachedBytes() > c.Capacity() {
		t.Fatalf("cache over capacity: %d > %d", c.CachedBytes(), c.Capacity())
	}
	// The earliest pages must have been evicted.
	before := c.Misses()
	c.Read(k, "f", 0, CachePageSize, nil)
	k.Run()
	if c.Misses() == before {
		t.Error("evicted page served as hit")
	}
}

func TestBufferCacheInvalidate(t *testing.T) {
	k := sim.NewKernel(1)
	h := newHost(t, k)
	c := h.Cache()
	c.Write(k, "a", 0, CachePageSize, nil)
	c.Write(k, "b", 0, CachePageSize, nil)
	k.Run()
	c.Invalidate("a")
	before := c.Misses()
	c.Read(k, "a", 0, CachePageSize, nil)
	k.Run()
	if c.Misses() == before {
		t.Error("invalidated page served as hit")
	}
	hitsBefore := c.Hits()
	c.Read(k, "b", 0, CachePageSize, nil)
	k.Run()
	if c.Hits() == hitsBefore {
		t.Error("unrelated file was invalidated too")
	}
}

func TestZeroCapacityCacheAlwaysMisses(t *testing.T) {
	k := sim.NewKernel(1)
	disk := hw.NewDisk(k, hw.ReferenceMachine("n").Disk)
	c := NewBufferCache(disk, 0)
	c.Read(k, "f", 0, CachePageSize, nil)
	c.Read(k, "f", 0, CachePageSize, nil)
	k.Run()
	if c.Hits() != 0 {
		t.Errorf("zero-capacity cache recorded %d hits", c.Hits())
	}
}
