package hostos

import (
	"vmgrid/internal/trace"
)

// LoadProcess couples a background "load" process to a host load trace,
// reproducing the paper's host-load-trace playback: at every trace step
// the process's CPU demand is set to the traced load average (capped at
// one core by the process model, as a single competing process can use
// at most the whole core).
type LoadProcess struct {
	proc     *Process
	playback *trace.Playback
}

// NewLoadProcess spawns a load process on h driven by tr. Call Start to
// begin applying load.
func NewLoadProcess(h *Host, name string, tr *trace.Trace) *LoadProcess {
	p := h.Spawn(name)
	lp := &LoadProcess{proc: p}
	lp.playback = trace.NewPlayback(h.Kernel(), tr, func(load float64) {
		if !p.Exited() {
			p.SetLoad(load)
		}
	})
	return lp
}

// Proc returns the underlying host process.
func (l *LoadProcess) Proc() *Process { return l.proc }

// Start begins trace playback.
func (l *LoadProcess) Start() { l.playback.Start() }

// Stop halts playback and removes the background demand.
func (l *LoadProcess) Stop() { l.playback.Stop() }

// Kill stops playback and exits the process.
func (l *LoadProcess) Kill() {
	l.playback.Stop()
	l.proc.Exit()
}
