package hostos

import (
	"math"
	"testing"

	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
)

func TestCPUSecondsAccountsWork(t *testing.T) {
	k := sim.NewKernel(1)
	h, err := New(k, hw.ReferenceMachine("n"))
	if err != nil {
		t.Fatal(err)
	}
	p := h.Spawn("job")
	p.RunWork(10, nil)
	k.Run()
	if got := p.CPUSeconds(); math.Abs(got-10) > 1e-6 {
		t.Errorf("CPUSeconds = %v, want 10", got)
	}
}

func TestCPUSecondsUnderContention(t *testing.T) {
	// Two CPU-bound processes for 20 s: each consumes ~10 s (minus
	// context-switch overhead); together they account for ~the whole
	// machine.
	k := sim.NewKernel(1)
	h, err := New(k, hw.ReferenceMachine("n"))
	if err != nil {
		t.Fatal(err)
	}
	a := h.Spawn("a")
	b := h.Spawn("b")
	a.SetDemand(1)
	b.SetDemand(1)
	_ = k.RunUntil(sim.Time(20 * sim.Second))
	ca, cb := a.CPUSeconds(), b.CPUSeconds()
	if math.Abs(ca-cb) > 0.01 {
		t.Errorf("unequal shares: %v vs %v", ca, cb)
	}
	total := ca + cb
	if total < 19.5 || total > 20.0 {
		t.Errorf("total accounted = %v, want ≈ 20 (machine-seconds)", total)
	}
}

func TestCPUSecondsExcludesStoppedTime(t *testing.T) {
	k := sim.NewKernel(1)
	h, err := New(k, hw.ReferenceMachine("n"))
	if err != nil {
		t.Fatal(err)
	}
	p := h.Spawn("p")
	p.SetDemand(1)
	_ = k.RunUntil(sim.Time(5 * sim.Second))
	p.Stop()
	_ = k.RunUntil(sim.Time(60 * sim.Second))
	if got := p.CPUSeconds(); math.Abs(got-5) > 1e-6 {
		t.Errorf("CPUSeconds = %v, want 5 (stopped time is free)", got)
	}
	p.Cont()
	_ = k.RunUntil(sim.Time(62 * sim.Second))
	if got := p.CPUSeconds(); math.Abs(got-7) > 1e-6 {
		t.Errorf("CPUSeconds = %v after resume, want 7", got)
	}
}

func TestCPUSecondsFrozenAfterExit(t *testing.T) {
	k := sim.NewKernel(1)
	h, err := New(k, hw.ReferenceMachine("n"))
	if err != nil {
		t.Fatal(err)
	}
	p := h.Spawn("p")
	p.SetDemand(1)
	_ = k.RunUntil(sim.Time(3 * sim.Second))
	p.Exit()
	_ = k.RunUntil(sim.Time(30 * sim.Second))
	if got := p.CPUSeconds(); math.Abs(got-3) > 1e-6 {
		t.Errorf("CPUSeconds = %v after exit, want 3", got)
	}
}

func TestLoadAverageWeightsByDemand(t *testing.T) {
	k := sim.NewKernel(1)
	h, err := New(k, hw.ReferenceMachine("n"))
	if err != nil {
		t.Fatal(err)
	}
	if h.LoadAverage() != 0 {
		t.Errorf("idle load = %v", h.LoadAverage())
	}
	idleVM := h.Spawn("idle-vm")
	idleVM.SetDemand(0.01)
	if got := h.LoadAverage(); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("idle-VM load = %v, want 0.01", got)
	}
	busy := h.Spawn("busy")
	busy.SetDemand(1)
	if got := h.LoadAverage(); math.Abs(got-1.01) > 1e-12 {
		t.Errorf("load = %v, want 1.01", got)
	}
	busy.Stop()
	if got := h.LoadAverage(); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("load after stop = %v, want 0.01", got)
	}
}
