package hw

import (
	"vmgrid/internal/sim"
)

// Disk is a simulated disk device: a FIFO request queue in front of a
// head that charges seek time plus size/bandwidth per request. Requests
// issued while the device is busy wait their turn, so concurrent I/O
// streams slow each other down, as they do on real hardware.
type Disk struct {
	k     *sim.Kernel
	spec  DiskSpec
	queue []diskReq
	busy  bool

	requests  uint64
	bytesRead uint64
}

type diskReq struct {
	size       int64
	sequential bool
	done       func()
}

// NewDisk creates a disk device on the kernel.
func NewDisk(k *sim.Kernel, spec DiskSpec) *Disk {
	return &Disk{k: k, spec: spec}
}

// Spec returns the device's static description.
func (d *Disk) Spec() DiskSpec { return d.spec }

// Requests returns the number of requests completed or in flight.
func (d *Disk) Requests() uint64 { return d.requests }

// BytesTransferred returns total bytes moved through the device.
func (d *Disk) BytesTransferred() uint64 { return d.bytesRead }

// QueueLen returns the number of requests waiting (not counting the one
// in service).
func (d *Disk) QueueLen() int { return len(d.queue) }

// Submit enqueues a transfer of size bytes and invokes done when it
// completes. Each Submit pays the device's seek time.
func (d *Disk) Submit(size int64, done func()) {
	d.submit(diskReq{size: max64(size, 0), done: done})
}

// SubmitSequential enqueues a transfer that skips the seek charge — used
// for streaming access patterns like whole-image copies where the head
// does not reposition between requests.
func (d *Disk) SubmitSequential(size int64, done func()) {
	d.submit(diskReq{size: max64(size, 0), sequential: true, done: done})
}

func (d *Disk) submit(req diskReq) {
	d.requests++
	if d.busy {
		d.queue = append(d.queue, req)
		return
	}
	d.start(req)
}

func (d *Disk) serviceTime(size int64, sequential bool) sim.Duration {
	t := sim.DurationOf(float64(size) / d.spec.BandwidthBps)
	if !sequential {
		t += d.spec.SeekTime
	}
	return t
}

func (d *Disk) start(req diskReq) {
	d.busy = true
	d.bytesRead += uint64(req.size)
	svc := d.serviceTime(req.size, req.sequential)
	d.k.After(svc, func() {
		d.busy = false
		// Start the next queued request before running the completion
		// callback: a stream that resubmits from its callback must go to
		// the back of the line, not cut in front of waiting requests.
		d.next()
		if req.done != nil {
			req.done()
		}
	})
}

func (d *Disk) next() {
	if d.busy || len(d.queue) == 0 {
		return
	}
	req := d.queue[0]
	d.queue = d.queue[1:]
	d.start(req)
}

// ReadTime returns the unloaded service time for a non-sequential
// transfer of size bytes — useful for analytic assertions in tests.
func (d *Disk) ReadTime(size int64) sim.Duration {
	return d.serviceTime(size, false)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
