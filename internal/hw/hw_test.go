package hw

import (
	"testing"

	"vmgrid/internal/sim"
)

func TestSpecValidation(t *testing.T) {
	ref := ReferenceMachine("n1")
	if err := ref.Validate(); err != nil {
		t.Fatalf("reference machine invalid: %v", err)
	}
	if err := ServerMachine("s1").Validate(); err != nil {
		t.Fatalf("server machine invalid: %v", err)
	}

	tests := []struct {
		name string
		mut  func(*MachineSpec)
	}{
		{"empty name", func(m *MachineSpec) { m.Name = "" }},
		{"zero cpu speed", func(m *MachineSpec) { m.CPU.Speed = 0 }},
		{"zero cores", func(m *MachineSpec) { m.CPU.Cores = 0 }},
		{"zero disk bw", func(m *MachineSpec) { m.Disk.BandwidthBps = 0 }},
		{"negative seek", func(m *MachineSpec) { m.Disk.SeekTime = -1 }},
		{"zero memory", func(m *MachineSpec) { m.MemBytes = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := ReferenceMachine("n1")
			tt.mut(&m)
			if err := m.Validate(); err == nil {
				t.Errorf("Validate() accepted bad spec")
			}
		})
	}
}

func TestDiskSingleRequestTime(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDisk(k, DiskSpec{SeekTime: 5 * sim.Millisecond, BandwidthBps: 1e6})
	var doneAt sim.Time = -1
	d.Submit(1e6, func() { doneAt = k.Now() }) // 1 MB at 1 MB/s + 5ms seek
	k.Run()
	want := sim.Time(sim.Second + 5*sim.Millisecond)
	if doneAt != want {
		t.Fatalf("completion at %v, want %v", doneAt, want)
	}
	if d.Requests() != 1 {
		t.Errorf("Requests = %d", d.Requests())
	}
	if d.BytesTransferred() != 1e6 {
		t.Errorf("BytesTransferred = %d", d.BytesTransferred())
	}
}

func TestDiskFIFOQueueing(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDisk(k, DiskSpec{SeekTime: 10 * sim.Millisecond, BandwidthBps: 1e6})
	var order []int
	var times []sim.Time
	for i := 0; i < 3; i++ {
		i := i
		d.Submit(1e5, func() { // each: 10ms seek + 100ms transfer
			order = append(order, i)
			times = append(times, k.Now())
		})
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
	per := sim.Duration(110 * sim.Millisecond)
	for i, at := range times {
		want := sim.Time(0).Add(per * sim.Duration(i+1))
		if at != want {
			t.Errorf("request %d done at %v, want %v", i, at, want)
		}
	}
}

func TestDiskSequentialSkipsSeek(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDisk(k, DiskSpec{SeekTime: 10 * sim.Millisecond, BandwidthBps: 1e6})
	var doneAt sim.Time
	d.SubmitSequential(1e6, nil)
	d.SubmitSequential(1e6, func() { doneAt = k.Now() })
	k.Run()
	if doneAt != sim.Time(2*sim.Second) {
		t.Fatalf("sequential pair finished at %v, want 2s (no seeks)", doneAt)
	}
}

func TestDiskZeroSizeRequest(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDisk(k, DiskSpec{SeekTime: 2 * sim.Millisecond, BandwidthBps: 1e6})
	var doneAt sim.Time = -1
	d.Submit(0, func() { doneAt = k.Now() })
	k.Run()
	if doneAt != sim.Time(2*sim.Millisecond) {
		t.Fatalf("zero-size request at %v, want seek only", doneAt)
	}
	// Negative sizes are clamped rather than corrupting the queue.
	d.Submit(-5, nil)
	k.Run()
}

func TestDiskInterleavedStreamsShareDevice(t *testing.T) {
	// Two streams submitting alternately must each see ~half the
	// device throughput (here: strict FIFO alternation).
	k := sim.NewKernel(1)
	d := NewDisk(k, DiskSpec{SeekTime: 0, BandwidthBps: 1e6})
	var aDone, bDone sim.Time
	var submitA, submitB func(n int)
	submitA = func(n int) {
		if n == 0 {
			aDone = k.Now()
			return
		}
		d.Submit(1e5, func() { submitA(n - 1) })
	}
	submitB = func(n int) {
		if n == 0 {
			bDone = k.Now()
			return
		}
		d.Submit(1e5, func() { submitB(n - 1) })
	}
	submitA(10)
	submitB(10)
	k.Run()
	// 20 requests of 100 ms total 2 s; both streams finish near the end.
	if aDone < sim.Time(1900*sim.Millisecond) || bDone < sim.Time(1900*sim.Millisecond) {
		t.Errorf("streams finished at %v and %v; expected both near 2s", aDone, bDone)
	}
}

func TestReadTimeMatchesSubmit(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDisk(k, ReferenceMachine("n").Disk)
	var doneAt sim.Time
	d.Submit(4096, func() { doneAt = k.Now() })
	k.Run()
	if got := sim.Time(0).Add(d.ReadTime(4096)); got != doneAt {
		t.Errorf("ReadTime = %v, actual completion %v", got, doneAt)
	}
}
