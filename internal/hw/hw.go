// Package hw models the physical hardware underneath a grid node: CPU,
// disk, and network interface. The models are deliberately simple fluid /
// queueing abstractions — just detailed enough that the phenomena the
// paper measures (CPU contention, virtualization trap costs, disk copy
// bandwidth, NFS round trips) emerge from mechanism rather than from
// hard-coded answers.
package hw

import (
	"fmt"

	"vmgrid/internal/sim"
)

// CPUSpec describes a processor. Work throughout vmgrid is measured in
// reference CPU-seconds: a CPU with Speed 1.0 retires one unit of work per
// virtual second per core. The paper's compute node is a dual Pentium
// III/933; we model the sequential benchmarks on a single core and expose
// Cores for completeness.
type CPUSpec struct {
	// Model is a human-readable name ("PIII-933").
	Model string
	// Speed is the per-core execution rate in reference work units per
	// second. 1.0 is the reference machine.
	Speed float64
	// Cores is the number of identical cores.
	Cores int
}

// Validate reports whether the spec is usable.
func (c CPUSpec) Validate() error {
	if c.Speed <= 0 {
		return fmt.Errorf("hw: cpu %q has non-positive speed %v", c.Model, c.Speed)
	}
	if c.Cores <= 0 {
		return fmt.Errorf("hw: cpu %q has %d cores", c.Model, c.Cores)
	}
	return nil
}

// DiskSpec describes a disk device.
type DiskSpec struct {
	Model string
	// SeekTime is the fixed positioning cost charged per request.
	SeekTime sim.Duration
	// BandwidthBps is the sequential transfer rate in bytes per second.
	BandwidthBps float64
	// CapacityBytes bounds the stored data (0 = unbounded).
	CapacityBytes int64
}

// Validate reports whether the spec is usable.
func (d DiskSpec) Validate() error {
	if d.BandwidthBps <= 0 {
		return fmt.Errorf("hw: disk %q has non-positive bandwidth %v", d.Model, d.BandwidthBps)
	}
	if d.SeekTime < 0 {
		return fmt.Errorf("hw: disk %q has negative seek time %v", d.Model, d.SeekTime)
	}
	return nil
}

// NICSpec describes a network interface.
type NICSpec struct {
	Model string
	// BandwidthBps is the line rate in bytes per second.
	BandwidthBps float64
}

// MachineSpec bundles the hardware of one physical node.
type MachineSpec struct {
	Name     string
	CPU      CPUSpec
	Disk     DiskSpec
	NIC      NICSpec
	MemBytes int64
}

// Validate reports whether the machine spec is usable.
func (m MachineSpec) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("hw: machine without a name")
	}
	if err := m.CPU.Validate(); err != nil {
		return fmt.Errorf("machine %q: %w", m.Name, err)
	}
	if err := m.Disk.Validate(); err != nil {
		return fmt.Errorf("machine %q: %w", m.Name, err)
	}
	if m.MemBytes <= 0 {
		return fmt.Errorf("hw: machine %q has %d bytes of memory", m.Name, m.MemBytes)
	}
	return nil
}

const (
	// KB, MB, GB are byte sizes used throughout the hardware catalog.
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// ReferenceMachine returns the paper's compute node: a (single-core model
// of a) dual Pentium III/933 with 512 MB memory, an IDE-era disk, and
// 100 Mbit Ethernet. All calibration in the cost model assumes Speed 1.0
// on this machine.
func ReferenceMachine(name string) MachineSpec {
	return MachineSpec{
		Name: name,
		CPU:  CPUSpec{Model: "PIII-933", Speed: 1.0, Cores: 2},
		Disk: DiskSpec{
			Model:         "IDE-40",
			SeekTime:      6 * sim.Millisecond,
			BandwidthBps:  40e6,
			CapacityBytes: 60 * GB,
		},
		NIC:      NICSpec{Model: "eepro100", BandwidthBps: 100e6 / 8},
		MemBytes: 512 * MB,
	}
}

// ServerMachine returns a beefier CPU-farm node used by capacity tests.
func ServerMachine(name string) MachineSpec {
	m := ReferenceMachine(name)
	m.CPU = CPUSpec{Model: "PIII-Xeon", Speed: 1.2, Cores: 4}
	m.MemBytes = 2 * GB
	m.NIC = NICSpec{Model: "gigE", BandwidthBps: 1000e6 / 8}
	return m
}
