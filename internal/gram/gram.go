// Package gram is the resource-management layer of the grid middleware
// (after Globus GRAM): per-site gatekeepers that authenticate and
// dispatch jobs, a globusrun-style client that submits over the network
// and waits, and explicit file staging (GASS/GridFTP-style) as the
// alternative to the virtual file system's on-demand transfers.
//
// The paper's Table 2 measures VM startup "using globusrun within a
// LAN"; the control-path costs here (authentication, job-manager
// startup, round trips) are what sits between the raw device times and
// the measured wall clock.
package gram

import (
	"errors"
	"fmt"

	"vmgrid/internal/chunk"
	"vmgrid/internal/hostos"
	"vmgrid/internal/netsim"
	"vmgrid/internal/obs"
	"vmgrid/internal/retry"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
)

// Control-path calibration (Globus 2.0 era, GSI authentication).
const (
	// AuthWork is the gatekeeper's CPU work to authenticate a request
	// and fork a job manager (reference seconds).
	AuthWork = 0.9
	// ClientSetupWork is the client-side proxy/handshake work.
	ClientSetupWork = 0.4
	// ControlMsgBytes sizes the control-channel messages.
	ControlMsgBytes = 4 << 10
)

// Errors callers match with errors.Is.
var (
	ErrNoGatekeeper = errors.New("gram: no gatekeeper at node")
	ErrDenied       = errors.New("gram: authorization denied")
	// ErrUnavailable wraps failures that occurred before the job was
	// dispatched (the gatekeeper could not be reached), so the job never
	// ran and resubmitting is safe. Failures after dispatch — a lost
	// completion notification — are NOT wrapped: the job may have run.
	ErrUnavailable = errors.New("gram: gatekeeper unavailable")
)

// Job is the unit of dispatch: middleware-visible work that eventually
// calls done exactly once.
type Job struct {
	// Name labels the job (e.g. "start-vm:rh72").
	Name string
	// User is the grid identity submitting the job.
	User string
	// Run performs the work; it must invoke done(err) exactly once.
	Run func(done func(err error))
	// RunCtx, when set, is used instead of Run: it additionally receives
	// the gatekeeper's handler-span context, so work done on the far
	// side of the submit parents under the server-side span of the RPC.
	RunCtx func(ctx obs.SpanContext, done func(err error))
	// Ctx is the submitter's span context. The client's submit span
	// parents under it, and the gatekeeper's handler span re-parents
	// under the submit span — the trace crosses the wire with the job.
	// Zero keeps every span flat, as before causality existed.
	Ctx obs.SpanContext
	// Fence, when non-nil, is evaluated at the gatekeeper after
	// authentication and immediately before Run; a non-nil error rejects
	// the job without running it. Supervisors thread fencing tokens
	// through it so a restore dispatched before a newer failover cannot
	// execute against a superseded epoch.
	Fence func() error
}

// body returns the job's work function, bridging Run and RunCtx.
func (j Job) body() func(ctx obs.SpanContext, done func(error)) {
	if j.RunCtx != nil {
		return j.RunCtx
	}
	if j.Run == nil {
		return nil
	}
	return func(_ obs.SpanContext, done func(error)) { j.Run(done) }
}

// Gatekeeper accepts jobs at one host, the way a Globus gatekeeper plus
// job manager would.
type Gatekeeper struct {
	host *hostos.Host
	// authorized is the gridmap: which users may submit (empty = all).
	authorized map[string]bool
	accepted   uint64
	trace      *obs.Tracer
}

// NewGatekeeper starts a gatekeeper on host.
func NewGatekeeper(host *hostos.Host) *Gatekeeper {
	return &Gatekeeper{host: host, authorized: make(map[string]bool)}
}

// Host returns the gatekeeper's machine.
func (g *Gatekeeper) Host() *hostos.Host { return g.host }

// SetTracer records a server-side handler span per accepted job into
// tr, re-parented under the submitting side's context when the job
// carries one. A nil tracer (the default) disables tracing.
func (g *Gatekeeper) SetTracer(tr *obs.Tracer) { g.trace = tr }

// Accepted returns the number of jobs accepted so far.
func (g *Gatekeeper) Accepted() uint64 { return g.accepted }

// Authorize adds a user to the gridmap. With no authorized users at all,
// the gatekeeper is open (convenient for single-tenant tests).
func (g *Gatekeeper) Authorize(user string) { g.authorized[user] = true }

// Revoke removes a user.
func (g *Gatekeeper) Revoke(user string) { delete(g.authorized, user) }

// Submit runs a job locally: authenticate (CPU work on the host — a
// loaded machine authenticates slowly, part of Table 2's variance), then
// execute. done receives the job's error.
func (g *Gatekeeper) Submit(job Job, done func(error)) error {
	body := job.body()
	if body == nil {
		return fmt.Errorf("gram: job %q with no body", job.Name)
	}
	if len(g.authorized) > 0 && !g.authorized[job.User] {
		return fmt.Errorf("%w: user %q", ErrDenied, job.User)
	}
	g.accepted++
	// The handler span re-parents under the submitter's context: the
	// client RPC span on one node, the server-side dispatch on another,
	// one causal tree across the wire.
	hsp := g.trace.BeginChild(job.Ctx, "gram", "server", "gatekeeper:"+job.Name)
	proc := g.host.Spawn("gatekeeper:" + job.Name)
	proc.RunWork(AuthWork, func() {
		proc.Exit()
		if job.Fence != nil {
			if err := job.Fence(); err != nil {
				hsp.EndErr(err)
				if done != nil {
					done(err)
				}
				return
			}
		}
		body(hsp.Context(), func(err error) {
			hsp.EndErr(err)
			if done != nil {
				done(err)
			}
		})
	})
	return nil
}

// Registry maps network nodes to gatekeepers (the service lookup a real
// deployment does via well-known ports).
type Registry struct {
	gatekeepers map[string]*Gatekeeper
}

// NewRegistry creates an empty gatekeeper registry.
func NewRegistry() *Registry {
	return &Registry{gatekeepers: make(map[string]*Gatekeeper)}
}

// Add registers a gatekeeper at a network node name.
func (r *Registry) Add(node string, g *Gatekeeper) { r.gatekeepers[node] = g }

// At returns the gatekeeper at node, or nil.
func (r *Registry) At(node string) *Gatekeeper { return r.gatekeepers[node] }

// Client submits jobs across the network — the globusrun command line.
type Client struct {
	net      *netsim.Network
	registry *Registry
	node     string
	host     *hostos.Host
	trace    *obs.Tracer
}

// SetTracer records a span per submission (the full globusrun
// envelope) into tr. A nil tracer (the default) disables tracing.
func (c *Client) SetTracer(tr *obs.Tracer) { c.trace = tr }

// NewClient creates a submitting client at clientNode, running its
// local work on clientHost.
func NewClient(net *netsim.Network, registry *Registry, clientNode string, clientHost *hostos.Host) (*Client, error) {
	if net.Node(clientNode) == nil {
		return nil, fmt.Errorf("gram: client node %q not attached", clientNode)
	}
	return &Client{net: net, registry: registry, node: clientNode, host: clientHost}, nil
}

// Submit sends a job to the gatekeeper at serverNode and invokes done
// with the job's result once the completion notification returns — the
// full globusrun wall-clock envelope.
func (c *Client) Submit(serverNode string, job Job, done func(error)) error {
	gk := c.registry.At(serverNode)
	if gk == nil {
		return fmt.Errorf("%w: %s", ErrNoGatekeeper, serverNode)
	}
	sp := c.trace.BeginChild(job.Ctx, "gram", "rpc", "submit:"+job.Name)
	if ctx := sp.Context(); ctx.Valid() {
		// Inject: the far side's handler span parents under this RPC span.
		job.Ctx = ctx
	}
	c.trace.Metrics().Counter("gram.submissions").Inc()
	fail := func(err error) {
		sp.EndErr(err)
		if done != nil {
			done(err)
		}
	}
	// Client-side setup (proxy init), then the request round trip. Each
	// submission is its own globusrun process, as on a real front end.
	proc := c.host.Spawn("globusrun:" + job.Name)
	proc.RunWork(ClientSetupWork, func() {
		proc.Exit()
		sendErr := c.net.Send(c.node, serverNode, ControlMsgBytes, nil, func(any) {
			if err := gk.Submit(job, func(jobErr error) {
				// Completion notification travels back.
				if sendErr := c.net.Send(serverNode, c.node, ControlMsgBytes, nil, func(any) {
					fail(jobErr)
				}); sendErr != nil {
					fail(sendErr)
				}
			}); err != nil {
				// Denied: the refusal still crosses the network.
				if sendErr := c.net.Send(serverNode, c.node, ControlMsgBytes, nil, func(any) {
					fail(err)
				}); sendErr != nil {
					fail(sendErr)
				}
			}
		})
		if sendErr != nil {
			// The request never left: the job did not run, so this is the
			// retry-safe failure class.
			fail(fmt.Errorf("%w: %v", ErrUnavailable, sendErr))
		}
	})
	return nil
}

// gramBaseBackoff is the historical base backoff applied when the
// policy leaves Backoff zero.
const gramBaseBackoff = 500 * sim.Millisecond

// SubmitRetry submits like Submit but reissues transient failures —
// ErrUnavailable, meaning the request never reached the gatekeeper and
// the job did not run — with capped exponential backoff. Job errors and
// fatal control-path errors pass through unchanged after the first
// attempt. The final error keeps its ErrUnavailable wrapping so callers
// can distinguish "gave up retrying" from "the job failed".
func (c *Client) SubmitRetry(serverNode string, job Job, p retry.Policy, done func(error)) error {
	attempts := p.Attempts()
	k := c.host.Kernel()
	var attempt func(n int) error
	attempt = func(n int) error {
		return c.Submit(serverNode, job, func(err error) {
			if err != nil && errors.Is(err, ErrUnavailable) && n < attempts {
				c.trace.Metrics().Counter("gram.retries").Inc()
				k.After(p.Delay(n, gramBaseBackoff), func() {
					if retryErr := attempt(n + 1); retryErr != nil && done != nil {
						done(retryErr)
					}
				})
				return
			}
			if done != nil {
				done(err)
			}
		})
	}
	return attempt(1)
}

// stageChunk is the transfer unit of explicit staging.
const stageChunk int64 = 1 << 20

// stageWindow is how many chunks a chunked stage keeps in flight:
// double-buffered, so the source disk reads chunk i+1 while chunk i is
// on the wire or landing on the destination disk.
const stageWindow = 2

// Stage copies a whole file between stores across the network — the
// GASS/GridFTP file-staging model the paper contrasts with on-demand
// virtual file systems: the entire file moves before work starts,
// whether or not it is all used.
//
// When both stores share a content-addressed chunk plane, the copy is
// chunked and deduplicated: the source ships the file's key manifest,
// the destination answers with the chunks its cache lacks, and only
// those cross the wire (pipelined, double-buffered). Chunks the
// destination already holds materialize by copy-on-write reference,
// free of I/O. The staged file's manifest is adopted from the source,
// so identity propagates with the content. Without a shared plane the
// pre-chunking whole-file path runs unchanged.
func Stage(net *netsim.Network, srcNode string, src *storage.Store, file string,
	dstNode string, dst *storage.Store, asName string, done func(error)) error {
	size, err := src.Size(file)
	if err != nil {
		return fmt.Errorf("gram: stage %q: %w", file, err)
	}
	if dst.Has(asName) {
		return fmt.Errorf("gram: stage: %w: %s", storage.ErrExists, asName)
	}
	if plane := src.ChunkPlane(); plane != nil && plane == dst.ChunkPlane() {
		return stageChunked(net, srcNode, src, file, dstNode, dst, asName, size, done)
	}
	if err := dst.Create(asName, 0); err != nil {
		return err
	}
	srcFile, err := src.Open(file)
	if err != nil {
		return err
	}
	dstFile, err := dst.Open(asName)
	if err != nil {
		return err
	}
	var step func(off int64)
	step = func(off int64) {
		if off >= size {
			if done != nil {
				done(nil)
			}
			return
		}
		n := stageChunk
		if off+n > size {
			n = size - off
		}
		srcFile.ReadSequential(off, n, func() {
			sendErr := net.Send(srcNode, dstNode, n, nil, func(any) {
				dstFile.Write(off, n, func() {
					step(off + n)
				})
			})
			if sendErr != nil && done != nil {
				done(sendErr)
			}
		})
	}
	step(0)
	return nil
}

// stageChunked is the content-addressed staging path: manifest
// negotiation, dedup against the destination's chunk cache, then a
// double-buffered pipeline over the missing chunks.
func stageChunked(net *netsim.Network, srcNode string, src *storage.Store, file string,
	dstNode string, dst *storage.Store, asName string, size int64, done func(error)) error {
	plane := src.ChunkPlane()
	// The manifest snapshot is taken now, synchronously: a stage
	// launched in the same event as a suspend captures the frozen
	// image's identity even if the guest resumes and keeps dirtying the
	// file while chunks move (a COW-protected checkpoint image).
	keys := src.ChunkKeys(file)
	if err := dst.Create(asName, 0); err != nil {
		return err
	}
	srcFile, err := src.Open(file)
	if err != nil {
		return err
	}
	dstFile, err := dst.Open(asName)
	if err != nil {
		return err
	}
	finish := func(err error) {
		if done != nil {
			done(err)
		}
	}
	if len(keys) == 0 {
		net.Kernel().After(0, func() { finish(nil) })
		return nil
	}
	cache := plane.CacheFor(dst.Host().Name())
	// Round trip 1: the source ships the chunk manifest (8 bytes per
	// key plus the control envelope).
	manifestBytes := int64(len(keys))*8 + ControlMsgBytes
	sendErr := net.Send(srcNode, dstNode, manifestBytes, nil, func(any) {
		// At the destination: chunks already in the cache materialize by
		// reference; the rest are requested back as a needed-chunk
		// bitmap.
		var missing []int
		for i, k := range keys {
			off, n := plane.Span(size, i)
			if cache.Lookup(k, n) {
				dst.AdoptChunk(asName, i, k, off, n)
			} else {
				missing = append(missing, i)
			}
		}
		replyBytes := int64(len(keys)+7)/8 + ControlMsgBytes
		sendErr := net.Send(dstNode, srcNode, replyBytes, nil, func(any) {
			stagePipeline(net, srcNode, dstNode, srcFile, dstFile, plane, size, keys, missing, finish)
		})
		if sendErr != nil {
			finish(sendErr)
		}
	})
	if sendErr != nil {
		// The manifest never left; undo the creation so a retry can run.
		_ = dst.Delete(asName)
		return sendErr
	}
	return nil
}

// stagePipeline moves the missing chunks with stageWindow of them in
// flight at once: read chunk i+1 from the source disk while chunk i is
// on the wire or being written — the copy stays busy end to end instead
// of serializing read, send, write.
func stagePipeline(net *netsim.Network, srcNode, dstNode string,
	srcFile, dstFile *storage.LocalFile, plane *chunk.Plane, size int64,
	keys []chunk.Key, missing []int, finish func(error)) {
	next, inflight := 0, 0
	failed := false
	fail := func(err error) {
		if !failed {
			failed = true
			finish(err)
		}
	}
	var pump func()
	landed := func() {
		inflight--
		pump()
	}
	pump = func() {
		if failed {
			return
		}
		if next >= len(missing) && inflight == 0 {
			finish(nil)
			return
		}
		for inflight < stageWindow && next < len(missing) {
			i := missing[next]
			next++
			inflight++
			off, n := plane.Span(size, i)
			key := keys[i]
			srcFile.ReadSequential(off, n, func() {
				sendErr := net.Send(srcNode, dstNode, n, nil, func(any) {
					dstFile.WriteChunkAs(i, key, off, n, landed)
				})
				if sendErr != nil {
					fail(sendErr)
				}
			})
		}
	}
	pump()
}
