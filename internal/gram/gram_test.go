package gram

import (
	"errors"
	"testing"

	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/netsim"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
)

type grid struct {
	k        *sim.Kernel
	net      *netsim.Network
	client   *Client
	registry *Registry
	server   *hostos.Host
	clientH  *hostos.Host
}

func newGrid(t *testing.T) *grid {
	t.Helper()
	k := sim.NewKernel(1)
	n := netsim.New(k)
	if err := n.BuildLAN("front", "compute"); err != nil {
		t.Fatal(err)
	}
	server, err := hostos.New(k, hw.ReferenceMachine("compute"))
	if err != nil {
		t.Fatal(err)
	}
	clientH, err := hostos.New(k, hw.ReferenceMachine("front"))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Add("compute", NewGatekeeper(server))
	c, err := NewClient(n, reg, "front", clientH)
	if err != nil {
		t.Fatal(err)
	}
	return &grid{k: k, net: n, client: c, registry: reg, server: server, clientH: clientH}
}

func TestSubmitRunsJob(t *testing.T) {
	g := newGrid(t)
	ran := false
	var doneAt sim.Time = -1
	job := Job{
		Name: "noop",
		User: "alice",
		Run: func(done func(error)) {
			ran = true
			done(nil)
		},
	}
	if err := g.client.Submit("compute", job, func(err error) {
		if err != nil {
			t.Errorf("job error: %v", err)
		}
		doneAt = g.k.Now()
	}); err != nil {
		t.Fatal(err)
	}
	g.k.Run()
	if !ran || doneAt < 0 {
		t.Fatal("job did not run to completion")
	}
	// The control path costs client setup + auth + round trips: on an
	// idle LAN this is on the order of 1-3 s, never sub-second.
	if doneAt < sim.Time(sim.Second) || doneAt > sim.Time(5*sim.Second) {
		t.Errorf("control path took %v, want ~1-3s (globusrun envelope)", doneAt)
	}
	if g.registry.At("compute").Accepted() != 1 {
		t.Error("gatekeeper did not count the job")
	}
}

func TestSubmitErrors(t *testing.T) {
	g := newGrid(t)
	if err := g.client.Submit("nowhere", Job{Name: "x", Run: func(done func(error)) { done(nil) }}, nil); !errors.Is(err, ErrNoGatekeeper) {
		t.Errorf("submit to unknown node = %v", err)
	}
	gk := g.registry.At("compute")
	if err := gk.Submit(Job{Name: "empty"}, nil); err == nil {
		t.Error("bodyless job accepted")
	}
}

func TestGridmapAuthorization(t *testing.T) {
	g := newGrid(t)
	gk := g.registry.At("compute")
	gk.Authorize("alice")

	var aliceErr, malloryErr error = errSentinel, errSentinel
	okJob := Job{Name: "j", User: "alice", Run: func(done func(error)) { done(nil) }}
	if err := g.client.Submit("compute", okJob, func(err error) { aliceErr = err }); err != nil {
		t.Fatal(err)
	}
	badJob := Job{Name: "j2", User: "mallory", Run: func(done func(error)) { done(nil) }}
	if err := g.client.Submit("compute", badJob, func(err error) { malloryErr = err }); err != nil {
		t.Fatal(err)
	}
	g.k.Run()
	if aliceErr != nil {
		t.Errorf("authorized user rejected: %v", aliceErr)
	}
	if !errors.Is(malloryErr, ErrDenied) {
		t.Errorf("unauthorized user result = %v, want ErrDenied", malloryErr)
	}

	// Keep bob authorized so the gridmap stays closed after the revoke
	// (an empty gridmap means an open gatekeeper by convention).
	gk.Authorize("bob")
	gk.Revoke("alice")
	var afterRevoke error
	if err := g.client.Submit("compute", okJob, func(err error) { afterRevoke = err }); err != nil {
		t.Fatal(err)
	}
	g.k.Run()
	if !errors.Is(afterRevoke, ErrDenied) {
		t.Errorf("revoked user result = %v", afterRevoke)
	}
}

var errSentinel = errors.New("sentinel")

func TestJobErrorPropagates(t *testing.T) {
	g := newGrid(t)
	boom := errors.New("disk on fire")
	var got error
	job := Job{Name: "failing", Run: func(done func(error)) { done(boom) }}
	if err := g.client.Submit("compute", job, func(err error) { got = err }); err != nil {
		t.Fatal(err)
	}
	g.k.Run()
	if !errors.Is(got, boom) {
		t.Errorf("propagated error = %v", got)
	}
}

func TestLoadedHostSlowsControlPath(t *testing.T) {
	idle := newGrid(t)
	var idleAt sim.Time
	_ = idle.client.Submit("compute", Job{Name: "j", Run: func(done func(error)) { done(nil) }},
		func(error) { idleAt = idle.k.Now() })
	idle.k.Run()

	busy := newGrid(t)
	hog := busy.server.Spawn("hog")
	hog.SetDemand(1)
	var busyAt sim.Time
	_ = busy.client.Submit("compute", Job{Name: "j", Run: func(done func(error)) { done(nil) }},
		func(error) { busyAt = busy.k.Now() })
	_ = busy.k.RunUntil(sim.Time(sim.Minute))
	if busyAt <= idleAt {
		t.Errorf("loaded gatekeeper (%v) not slower than idle (%v)", busyAt, idleAt)
	}
}

func TestStageWholeFile(t *testing.T) {
	g := newGrid(t)
	srcStore := storage.NewStore(g.clientH)
	dstStore := storage.NewStore(g.server)
	const size = 64 << 20
	if err := srcStore.Create("image", size); err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time = -1
	if err := Stage(g.net, "front", srcStore, "image", "compute", dstStore, "image", func(err error) {
		if err != nil {
			t.Errorf("stage: %v", err)
		}
		doneAt = g.k.Now()
	}); err != nil {
		t.Fatal(err)
	}
	g.k.Run()
	if doneAt < 0 {
		t.Fatal("stage never finished")
	}
	if sz, _ := dstStore.Size("image"); sz != size {
		t.Errorf("staged size = %d", sz)
	}
	// 64 MB over 100 Mbit ≥ 5.1 s, plus disk on both ends.
	if doneAt.Seconds() < 5 {
		t.Errorf("stage took %.2fs, faster than the wire allows", doneAt.Seconds())
	}
}

func TestStageErrors(t *testing.T) {
	g := newGrid(t)
	src := storage.NewStore(g.clientH)
	dst := storage.NewStore(g.server)
	if err := Stage(g.net, "front", src, "missing", "compute", dst, "x", nil); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("stage missing = %v", err)
	}
	if err := src.Create("f", 10); err != nil {
		t.Fatal(err)
	}
	if err := dst.Create("x", 10); err != nil {
		t.Fatal(err)
	}
	if err := Stage(g.net, "front", src, "f", "compute", dst, "x", nil); !errors.Is(err, storage.ErrExists) {
		t.Errorf("stage onto existing = %v", err)
	}
}

func TestClientValidation(t *testing.T) {
	g := newGrid(t)
	if _, err := NewClient(g.net, g.registry, "ghost", g.clientH); err == nil {
		t.Error("client at unknown node accepted")
	}
}
