package gram

import (
	"testing"

	"vmgrid/internal/chunk"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
)

// TestStageChunkedDedup stages the same content twice: the cold stage
// pays the wire for every chunk, and after the destination copy is
// deleted (content outlives the name in the chunk cache) the re-stage
// moves only manifest control traffic — the bytes saved are accounted
// and the manifests match the source exactly.
func TestStageChunkedDedup(t *testing.T) {
	g := newGrid(t)
	plane := chunk.NewPlane(chunk.Config{ChunkBytes: 1 << 20})
	src := storage.NewStore(g.clientH)
	src.SetChunkPlane(plane)
	dst := storage.NewStore(g.server)
	dst.SetChunkPlane(plane)
	const size = 64 << 20
	if err := src.Create("image", size); err != nil {
		t.Fatal(err)
	}

	stage := func(asName string) sim.Duration {
		t.Helper()
		start := g.k.Now()
		var end sim.Time = -1
		if err := Stage(g.net, "front", src, "image", "compute", dst, asName, func(err error) {
			if err != nil {
				t.Errorf("stage %s: %v", asName, err)
			}
			end = g.k.Now()
		}); err != nil {
			t.Fatal(err)
		}
		g.k.Run()
		if end < 0 {
			t.Fatalf("stage %s never finished", asName)
		}
		return end.Sub(start)
	}

	bytes0 := g.net.BytesSent()
	cold := stage("image")
	coldWire := g.net.BytesSent() - bytes0
	if sz, _ := dst.Size("image"); sz != size {
		t.Fatalf("staged size = %d", sz)
	}
	want := src.ChunkKeys("image")
	got := dst.ChunkKeys("image")
	if len(got) != len(want) {
		t.Fatalf("dst manifest = %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunk %d: staged key differs from source — identity lost in transfer", i)
		}
	}
	// 64 MB over 100 Mbit is ≥ 5.1 s of wire no matter the pipelining.
	if cold.Seconds() < 5 {
		t.Errorf("cold stage took %.2fs, faster than the wire allows", cold.Seconds())
	}
	if coldWire < size {
		t.Errorf("cold stage moved %d wire bytes, want ≥ %d (every chunk misses)", coldWire, size)
	}

	// Drop the name; the chunk cache still holds the content.
	if err := dst.Delete("image"); err != nil {
		t.Fatal(err)
	}
	savedBefore := plane.Stats().BytesSaved
	bytes1 := g.net.BytesSent()
	warm := stage("image")
	warmWire := g.net.BytesSent() - bytes1
	if warmWire >= size/16 {
		t.Errorf("warm re-stage moved %d wire bytes, want control traffic only", warmWire)
	}
	if warm >= cold/4 {
		t.Errorf("warm re-stage took %.2fs vs cold %.2fs — dedup not engaged",
			warm.Seconds(), cold.Seconds())
	}
	st := plane.Stats()
	if st.BytesSaved-savedBefore != uint64(size) {
		t.Errorf("bytes saved = %d, want the full %d skipped", st.BytesSaved-savedBefore, size)
	}
	if sz, _ := dst.Size("image"); sz != size {
		t.Errorf("warm-staged size = %d", sz)
	}
}

// TestStageChunkedDelta: after the destination holds one generation, a
// source write dirtying a single chunk makes the next stage move just
// that chunk.
func TestStageChunkedDelta(t *testing.T) {
	g := newGrid(t)
	plane := chunk.NewPlane(chunk.Config{ChunkBytes: 1 << 20})
	src := storage.NewStore(g.clientH)
	src.SetChunkPlane(plane)
	dst := storage.NewStore(g.server)
	dst.SetChunkPlane(plane)
	const size = 32 << 20
	if err := src.Create("state", size); err != nil {
		t.Fatal(err)
	}
	run := func(asName string) {
		t.Helper()
		ok := false
		if err := Stage(g.net, "front", src, "state", "compute", dst, asName, func(err error) {
			if err != nil {
				t.Errorf("stage %s: %v", asName, err)
			}
			ok = true
		}); err != nil {
			t.Fatal(err)
		}
		g.k.Run()
		if !ok {
			t.Fatalf("stage %s never finished", asName)
		}
	}
	run("gen0")

	f, err := src.Open("state")
	if err != nil {
		t.Fatal(err)
	}
	f.Write(5<<20+100, 1000, nil) // dirty exactly chunk 5
	g.k.Run()

	bytes0 := g.net.BytesSent()
	run("gen1")
	wire := g.net.BytesSent() - bytes0
	// One 1 MiB chunk plus manifest/bitmap control messages.
	if max := int64(2 << 20); int64(wire) > max {
		t.Errorf("delta stage moved %d wire bytes, want ≤ %d (one dirty chunk)", wire, max)
	}
	got := dst.ChunkKeys("gen1")
	want := src.ChunkKeys("state")
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunk %d of gen1 differs from source", i)
		}
	}
}
