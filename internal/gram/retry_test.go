package gram

import (
	"errors"
	"fmt"
	"testing"

	"vmgrid/internal/retry"
	"vmgrid/internal/sim"
)

func TestSubmitUnreachableIsUnavailable(t *testing.T) {
	g := newGrid(t)
	if err := g.net.SetLinkUp("front", "compute", false); err != nil {
		t.Fatal(err)
	}
	var got error
	done := false
	if err := g.client.Submit("compute", Job{
		Name: "x", User: "u", Run: func(d func(error)) { d(nil) },
	}, func(err error) { got = err; done = true }); err != nil {
		t.Fatal(err)
	}
	g.k.Run()
	if !done {
		t.Fatal("submission never resolved")
	}
	if !errors.Is(got, ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable (request never left)", got)
	}
}

func TestSubmitRetrySucceedsAfterHeal(t *testing.T) {
	g := newGrid(t)
	if err := g.net.SetLinkUp("front", "compute", false); err != nil {
		t.Fatal(err)
	}
	// Heal the partition while the client is backing off.
	g.k.After(3*sim.Second, func() { _ = g.net.SetLinkUp("front", "compute", true) })

	ran := false
	var got error
	done := false
	err := g.client.SubmitRetry("compute", Job{
		Name: "x", User: "u", Run: func(d func(error)) { ran = true; d(nil) },
	}, retry.Policy{MaxAttempts: 6, Backoff: sim.Second}, func(err error) {
		got = err
		done = true
	})
	if err != nil {
		t.Fatal(err)
	}
	g.k.Run()
	if !done {
		t.Fatal("submission never resolved")
	}
	if got != nil {
		t.Fatalf("err = %v after the partition healed", got)
	}
	if !ran {
		t.Fatal("job never ran")
	}
}

func TestSubmitRetryExhaustionKeepsUnavailable(t *testing.T) {
	g := newGrid(t)
	if err := g.net.SetLinkUp("front", "compute", false); err != nil {
		t.Fatal(err)
	}
	var got error
	done := false
	err := g.client.SubmitRetry("compute", Job{
		Name: "x", User: "u", Run: func(d func(error)) { d(nil) },
	}, retry.Policy{MaxAttempts: 3, Backoff: 100 * sim.Millisecond}, func(err error) {
		got = err
		done = true
	})
	if err != nil {
		t.Fatal(err)
	}
	g.k.Run()
	if !done {
		t.Fatal("submission never resolved")
	}
	if !errors.Is(got, ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable after exhaustion", got)
	}
}

func TestSubmitRetryDoesNotReplayJobFailures(t *testing.T) {
	g := newGrid(t)
	attempts := 0
	jobErr := fmt.Errorf("application exploded")
	var got error
	done := false
	err := g.client.SubmitRetry("compute", Job{
		Name: "x", User: "u", Run: func(d func(error)) {
			attempts++
			d(jobErr)
		},
	}, retry.Policy{MaxAttempts: 5, Backoff: 100 * sim.Millisecond}, func(err error) {
		got = err
		done = true
	})
	if err != nil {
		t.Fatal(err)
	}
	g.k.Run()
	if !done {
		t.Fatal("submission never resolved")
	}
	if attempts != 1 {
		t.Errorf("job ran %d times; a job that RAN and failed must never be replayed", attempts)
	}
	if !errors.Is(got, jobErr) {
		t.Errorf("err = %v, want the job's own error", got)
	}
	if errors.Is(got, ErrUnavailable) {
		t.Error("job failure mislabeled as unavailability")
	}
}
