package placement

import "testing"

func cands() []Candidate {
	return []Candidate{
		{Node: "c1", Slots: 1, Speed: 1.0, Load: 2.0, Predicted: 3.0},
		{Node: "c2", Slots: 4, Speed: 1.0, Load: 0.5, Predicted: 2.5},
		{Node: "c3", Slots: 2, Speed: 2.0, Load: 0.5, Predicted: 0.1},
	}
}

func TestLeastLoadedPicksLowestLoadFastest(t *testing.T) {
	// c2 and c3 tie on load; c3 is faster.
	got, ok := LeastLoaded{}.Pick(Request{}, cands())
	if !ok || got != "c3" {
		t.Fatalf("LeastLoaded picked %q ok=%v, want c3", got, ok)
	}
}

func TestPredictedLoadPicksLowestForecast(t *testing.T) {
	got, ok := PredictedLoad{}.Pick(Request{}, cands())
	if !ok || got != "c3" {
		t.Fatalf("PredictedLoad picked %q ok=%v, want c3", got, ok)
	}
	// Flip the forecast: c2 is about to drain, c3 about to spike.
	cs := cands()
	cs[1].Predicted, cs[2].Predicted = 0.1, 2.5
	if got, _ := (PredictedLoad{}).Pick(Request{}, cs); got != "c2" {
		t.Fatalf("PredictedLoad ignored the forecast: picked %q, want c2", got)
	}
}

func TestPackPicksFewestFreeSlots(t *testing.T) {
	got, ok := Pack{}.Pick(Request{}, cands())
	if !ok || got != "c1" {
		t.Fatalf("Pack picked %q ok=%v, want c1 (1 free slot)", got, ok)
	}
}

func TestPickEmptyCandidates(t *testing.T) {
	for _, p := range []Placer{LeastLoaded{}, PredictedLoad{}, Pack{}} {
		if got, ok := p.Pick(Request{}, nil); ok {
			t.Errorf("%s picked %q from no candidates", p.Name(), got)
		}
	}
}

func TestTiesBreakByName(t *testing.T) {
	flat := []Candidate{
		{Node: "b", Slots: 2, Speed: 1, Load: 1, Predicted: 1},
		{Node: "a", Slots: 2, Speed: 1, Load: 1, Predicted: 1},
		{Node: "c", Slots: 2, Speed: 1, Load: 1, Predicted: 1},
	}
	for _, p := range []Placer{LeastLoaded{}, PredictedLoad{}, Pack{}} {
		if got, _ := p.Pick(Request{}, flat); got != "a" {
			t.Errorf("%s tie-break picked %q, want a", p.Name(), got)
		}
	}
}

func TestRankOrdersLikePick(t *testing.T) {
	for _, p := range []Placer{LeastLoaded{}, PredictedLoad{}, Pack{}} {
		ranked := Rank(p, cands())
		if len(ranked) != 3 {
			t.Fatalf("%s Rank dropped candidates: %d", p.Name(), len(ranked))
		}
		want, _ := p.Pick(Request{}, cands())
		if ranked[0].Node != want {
			t.Errorf("%s Rank head %q != Pick %q", p.Name(), ranked[0].Node, want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil || p == nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := ByName(""); err != nil || p != nil {
		t.Errorf("ByName(\"\") = %v, %v; want nil, nil", p, err)
	}
	if _, err := ByName("round-robin"); err == nil {
		t.Error("ByName accepted an unknown policy")
	}
}
