// Package placement decides where VM sessions run. It is the paper's
// resource-management loop (§3.2) turned into a subsystem: pluggable
// placement policies rank candidate compute nodes for every session
// create and every restore-target choice, and an autonomic balancer
// (balancer.go) watches per-node predicted load and drives live
// migrations off sustained hotspots.
//
// The package is deliberately mechanism-free: it ranks Candidates and
// detects hotspots, while the core package supplies the candidates
// (from the information service, filtered by image presence and
// bidirectional reachability) and executes the migrations. That split
// keeps one placement code path shared between the front end, the
// supervisor's failover, and the balancer.
package placement

import (
	"fmt"
	"sort"
)

// Candidate is one compute node a session could run on, as seen at
// decision time.
type Candidate struct {
	// Node is the node name.
	Node string
	// Site is the node's administrative domain.
	Site string
	// Slots is the node's remaining free VM capacity (> 0).
	Slots int
	// Speed is the node's relative CPU speed.
	Speed float64
	// Load is the node's current load average (runnable tasks,
	// exponentially smoothed) — where load is.
	Load float64
	// Predicted is the RPS forecast of near-future load (falls back to
	// Load when no predictor runs) — where load is going.
	Predicted float64
}

// Request describes the session being placed.
type Request struct {
	// Session is the session name ("" before the name is assigned).
	Session string
	// User is the grid identity.
	User string
	// Image is the base image the node must serve.
	Image string
	// Site restricts the search ("" = any).
	Site string
	// MinMemBytes is the guest memory requirement.
	MinMemBytes int64
	// Exclude names a node the session must not land on (the migration
	// source). Core filters it out of the candidates; policies may
	// still consult it.
	Exclude string
}

// Placer ranks candidates and picks a node. Candidates arrive in the
// information service's ranking order (advertised load ascending,
// speed descending) and are pre-filtered: every one is alive, has a
// free slot, holds the image when required, and is reachable. Pick
// returns false when no candidate is acceptable.
type Placer interface {
	// Name is the policy's wire/CLI name.
	Name() string
	// Pick selects a node from the candidate list.
	Pick(req Request, cands []Candidate) (string, bool)
}

// LeastLoaded places where current load is lowest: live load average
// ascending, CPU speed descending, name ascending. This is the
// reactive policy — it chases load, it does not anticipate it.
type LeastLoaded struct{}

// Name implements Placer.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Placer.
func (LeastLoaded) Pick(_ Request, cands []Candidate) (string, bool) {
	return pickBy(cands, lessLeastLoaded)
}

func lessLeastLoaded(a, b Candidate) bool {
	if a.Load != b.Load {
		return a.Load < b.Load
	}
	if a.Speed != b.Speed {
		return a.Speed > b.Speed
	}
	return a.Node < b.Node
}

// PredictedLoad places where load is *going* to be lowest, consuming
// the RPS per-node forecasts: predicted load ascending, then current
// load, speed, name. With the monitor running this dodges nodes whose
// load is still ramping — the paper's argument for prediction-driven
// management.
type PredictedLoad struct{}

// Name implements Placer.
func (PredictedLoad) Name() string { return "predicted-load" }

// Pick implements Placer.
func (PredictedLoad) Pick(_ Request, cands []Candidate) (string, bool) {
	return pickBy(cands, lessPredicted)
}

func lessPredicted(a, b Candidate) bool {
	if a.Predicted != b.Predicted {
		return a.Predicted < b.Predicted
	}
	return lessLeastLoaded(a, b)
}

// Pack consolidates: it fills the node with the fewest free slots
// first (ties to the busier, then lexically first node), keeping the
// rest of the grid idle for hibernation or big arrivals. It is also
// the adversarial policy for the balancer ablation — packing
// concentrates load exactly where a skewed arrival burst hurts most.
type Pack struct{}

// Name implements Placer.
func (Pack) Name() string { return "pack" }

// Pick implements Placer.
func (Pack) Pick(_ Request, cands []Candidate) (string, bool) {
	return pickBy(cands, lessPack)
}

func lessPack(a, b Candidate) bool {
	if a.Slots != b.Slots {
		return a.Slots < b.Slots
	}
	if a.Load != b.Load {
		return a.Load > b.Load
	}
	return a.Node < b.Node
}

// pickBy returns the minimum candidate under less; ties resolve to the
// earlier candidate in information-service order.
func pickBy(cands []Candidate, less func(a, b Candidate) bool) (string, bool) {
	if len(cands) == 0 {
		return "", false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if less(c, best) {
			best = c
		}
	}
	return best.Node, true
}

// lessFor exposes the comparator behind each built-in policy (nil for
// foreign placers).
func lessFor(p Placer) func(a, b Candidate) bool {
	switch p.(type) {
	case LeastLoaded:
		return lessLeastLoaded
	case PredictedLoad:
		return lessPredicted
	case Pack:
		return lessPack
	}
	return nil
}

// Rank returns the candidates sorted by the placer's preference — the
// order Pick would drain them in. Foreign placers (no known
// comparator) keep the input order.
func Rank(p Placer, cands []Candidate) []Candidate {
	out := append([]Candidate(nil), cands...)
	if less := lessFor(p); less != nil {
		sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	}
	return out
}

// Names lists the built-in policy names in ByName's vocabulary.
func Names() []string { return []string{"least-loaded", "predicted-load", "pack"} }

// ByName resolves a policy by its wire/CLI name. The empty string
// resolves to nil — the caller's default (information-service ranking
// order, first fit).
func ByName(name string) (Placer, error) {
	switch name {
	case "":
		return nil, nil
	case "least-loaded":
		return LeastLoaded{}, nil
	case "predicted-load", "predicted":
		return PredictedLoad{}, nil
	case "pack":
		return Pack{}, nil
	}
	return nil, fmt.Errorf("placement: unknown policy %q (want least-loaded, predicted-load, or pack)", name)
}
