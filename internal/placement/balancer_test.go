package placement

import (
	"testing"

	"vmgrid/internal/sim"
)

// fakeFabric is a two-node world where migrations move sessions
// instantly and load follows a scripted or derived function.
type fakeFabric struct {
	nodes    []string
	loads    map[string]func() float64
	sessions map[string][]string
	target   string
	moves    []string // "sess:from->to"
	failNext error
}

func (f *fakeFabric) Nodes() []string { return f.nodes }

func (f *fakeFabric) NodeLoad(node string) (float64, bool) {
	fn, ok := f.loads[node]
	if !ok {
		return 0, false
	}
	return fn(), true
}

func (f *fakeFabric) Sessions(node string) []string { return f.sessions[node] }

func (f *fakeFabric) Target(sess, from string) (string, bool) {
	if f.target == "" || f.target == from {
		return "", false
	}
	return f.target, true
}

func (f *fakeFabric) Migrate(sess, target string, done func(error)) error {
	if err := f.failNext; err != nil {
		f.failNext = nil
		done(err)
		return nil
	}
	var from string
	for node, list := range f.sessions {
		for i, s := range list {
			if s == sess {
				from = node
				f.sessions[node] = append(append([]string(nil), list[:i]...), list[i+1:]...)
			}
		}
	}
	f.sessions[target] = append(f.sessions[target], sess)
	f.moves = append(f.moves, sess+":"+from+"->"+target)
	done(nil)
	return nil
}

func constLoad(v float64) func() float64 { return func() float64 { return v } }

func newTestBalancer(t *testing.T, fab *fakeFabric, cfg BalancerConfig) (*sim.Kernel, *Balancer) {
	t.Helper()
	k := sim.NewKernel(1)
	b, err := NewBalancer(k, fab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, b
}

func TestBalancerMigratesSustainedHotspot(t *testing.T) {
	fab := &fakeFabric{
		nodes: []string{"c1", "c2"},
		loads: map[string]func() float64{"c1": constLoad(3.0), "c2": constLoad(0.2)},
		sessions: map[string][]string{
			"c1": {"sess-1", "sess-2"},
			"c2": {},
		},
		target: "c2",
	}
	k, b := newTestBalancer(t, fab, BalancerConfig{
		Interval: sim.Second, HotLoad: 2.0, ClearLoad: 1.0, Sustain: 3,
	})
	b.Start()

	// Two ticks (t=0, t=1s): streak below Sustain, nothing moves.
	_ = k.RunUntil(sim.Time(1500 * sim.Millisecond))
	if len(fab.moves) != 0 {
		t.Fatalf("balancer moved before Sustain ticks: %v", fab.moves)
	}
	// Third tick arms the hotspot.
	_ = k.RunUntil(sim.Time(2500 * sim.Millisecond))
	if len(fab.moves) != 1 || fab.moves[0] != "sess-1:c1->c2" {
		t.Fatalf("moves = %v, want [sess-1:c1->c2]", fab.moves)
	}
	if st := b.Stats(); st.Migrations != 1 || st.Hotspots != 1 {
		t.Errorf("stats = %+v, want 1 migration / 1 hotspot", st)
	}
	b.Stop()
}

// TestBalancerHysteresisNoPingPong: load that oscillates hot → clear →
// hot (a bursty node that keeps draining) must never arm a migration —
// every clear reading resets the streak, so no burst shorter than
// Sustain can trigger a move.
func TestBalancerHysteresisNoPingPong(t *testing.T) {
	tick := 0
	fab := &fakeFabric{
		nodes: []string{"c1", "c2"},
		loads: map[string]func() float64{
			// Alternates 2.5 (hot), 0.5 (clear), 2.5, 0.5, ... — never two
			// consecutive hot readings.
			"c1": func() float64 {
				tick++
				if tick%2 == 1 {
					return 2.5
				}
				return 0.5
			},
			"c2": constLoad(0.2),
		},
		sessions: map[string][]string{"c1": {"sess-1"}, "c2": {}},
		target:   "c2",
	}
	k, b := newTestBalancer(t, fab, BalancerConfig{
		Interval: sim.Second, HotLoad: 2.0, ClearLoad: 1.0, Sustain: 2,
	})
	b.Start()
	_ = k.RunUntil(sim.Time(30 * sim.Second))
	if len(fab.moves) != 0 {
		t.Fatalf("oscillating load migrated anyway: %v", fab.moves)
	}
	b.Stop()
}

// TestBalancerBandHoldsStreak: dips into the hysteresis band (between
// ClearLoad and HotLoad) hold the hot streak rather than resetting it —
// a node hovering around HotLoad is still a persistent hotspot and is
// eventually relieved, just slower.
func TestBalancerBandHoldsStreak(t *testing.T) {
	tick := 0
	fab := &fakeFabric{
		nodes: []string{"c1", "c2"},
		loads: map[string]func() float64{
			// Alternates 2.5 (hot), 1.5 (band), ... — hot half the time,
			// never clear.
			"c1": func() float64 {
				tick++
				if tick%2 == 1 {
					return 2.5
				}
				return 1.5
			},
			"c2": constLoad(0.2),
		},
		sessions: map[string][]string{"c1": {"sess-1"}, "c2": {}},
		target:   "c2",
	}
	k, b := newTestBalancer(t, fab, BalancerConfig{
		Interval: sim.Second, HotLoad: 2.0, ClearLoad: 1.0, Sustain: 3,
	})
	b.Start()
	// Hot readings land on ticks 1, 3, 5; the streak holds through the
	// band dips, so the third hot reading (tick 5, t=4s) arms the move.
	_ = k.RunUntil(sim.Time(3500 * sim.Millisecond))
	if len(fab.moves) != 0 {
		t.Fatalf("moved before three hot readings accumulated: %v", fab.moves)
	}
	_ = k.RunUntil(sim.Time(4500 * sim.Millisecond))
	if len(fab.moves) != 1 {
		t.Fatalf("band dips reset the streak; hovering hotspot never relieved: %v", fab.moves)
	}
	b.Stop()
}

// TestBalancerCooldownBlocksReMigration: after a session moves, it is
// immune for Cooldown even if its new home immediately runs hot.
func TestBalancerCooldownBlocksReMigration(t *testing.T) {
	fab := &fakeFabric{
		nodes: []string{"c1", "c2"},
		// Both sides look permanently hot except the current target —
		// Target() always offers the other node, so without cooldown the
		// session would bounce every Sustain ticks.
		loads:    map[string]func() float64{"c1": constLoad(3.0), "c2": constLoad(0.5)},
		sessions: map[string][]string{"c1": {"sess-1"}, "c2": {}},
		target:   "c2",
	}
	k, b := newTestBalancer(t, fab, BalancerConfig{
		Interval: sim.Second, HotLoad: 2.0, ClearLoad: 1.0, Sustain: 2,
		Cooldown: 60 * sim.Second,
	})
	b.Start()
	_ = k.RunUntil(sim.Time(2 * sim.Second))
	if len(fab.moves) != 1 {
		t.Fatalf("setup move missing: %v", fab.moves)
	}
	// Now make the session's new home hot and offer c1 back.
	fab.loads["c2"] = constLoad(3.0)
	fab.loads["c1"] = constLoad(0.5)
	fab.target = "c1"
	_ = k.RunUntil(sim.Time(50 * sim.Second))
	if len(fab.moves) != 1 {
		t.Fatalf("session ping-ponged inside cooldown: %v", fab.moves)
	}
	// Past the cooldown the (still hot) node may shed it again.
	_ = k.RunUntil(sim.Time(90 * sim.Second))
	if len(fab.moves) != 2 {
		t.Fatalf("session stuck after cooldown expired: %v", fab.moves)
	}
	b.Stop()
}

// TestBalancerRefusesWarmTarget: a target above ClearLoad is refused —
// moving the session there would just relocate the hotspot.
func TestBalancerRefusesWarmTarget(t *testing.T) {
	fab := &fakeFabric{
		nodes:    []string{"c1", "c2"},
		loads:    map[string]func() float64{"c1": constLoad(3.0), "c2": constLoad(1.8)},
		sessions: map[string][]string{"c1": {"sess-1"}, "c2": {}},
		target:   "c2",
	}
	k, b := newTestBalancer(t, fab, BalancerConfig{
		Interval: sim.Second, HotLoad: 2.0, ClearLoad: 1.0, Sustain: 2,
	})
	b.Start()
	_ = k.RunUntil(sim.Time(10 * sim.Second))
	if len(fab.moves) != 0 {
		t.Fatalf("balancer moved onto a warm target: %v", fab.moves)
	}
	if st := b.Stats(); st.Skipped == 0 {
		t.Error("warm-target refusals not counted as skips")
	}
	b.Stop()
}

func TestBalancerCountsFailedMigrations(t *testing.T) {
	fab := &fakeFabric{
		nodes:    []string{"c1", "c2"},
		loads:    map[string]func() float64{"c1": constLoad(3.0), "c2": constLoad(0.2)},
		sessions: map[string][]string{"c1": {"sess-1"}, "c2": {}},
		target:   "c2",
		failNext: errFake,
	}
	k, b := newTestBalancer(t, fab, BalancerConfig{
		Interval: sim.Second, HotLoad: 2.0, ClearLoad: 1.0, Sustain: 1,
	})
	b.Start()
	_ = k.RunUntil(sim.Time(500 * sim.Millisecond))
	if st := b.Stats(); st.Failed != 1 || st.Migrations != 0 {
		t.Errorf("stats = %+v, want 1 failed / 0 migrations", st)
	}
	b.Stop()
}

var errFake = errFakeType{}

type errFakeType struct{}

func (errFakeType) Error() string { return "fake migration failure" }

func TestBalancerConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := NewBalancer(k, &fakeFabric{}, BalancerConfig{HotLoad: 1, ClearLoad: 2}); err == nil {
		t.Error("ClearLoad above HotLoad accepted")
	}
	b, err := NewBalancer(k, &fakeFabric{}, BalancerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := b.Config()
	if cfg.Interval != 5*sim.Second || cfg.HotLoad != 2.0 || cfg.ClearLoad != 1.0 ||
		cfg.Sustain != 3 || cfg.Cooldown != 60*sim.Second || cfg.MaxMoves != 1 {
		t.Errorf("defaults not filled: %+v", cfg)
	}
}
