package placement

import (
	"fmt"
	"sort"

	"vmgrid/internal/sim"
)

// Fabric is the narrow view of the grid the balancer acts through. The
// core package implements it; tests substitute fakes. Every method is
// called from kernel context at tick time.
type Fabric interface {
	// Nodes returns the compute nodes to watch, in a deterministic
	// (name) order. Crashed nodes are omitted.
	Nodes() []string
	// NodeLoad returns a node's predicted load — the telemetry TSDB's
	// node.predicted_load series, falling back through the monitor's
	// live forecast to the raw load average. ok is false when the node
	// has no signal yet.
	NodeLoad(node string) (load float64, ok bool)
	// Sessions returns the names of the migratable sessions hosted on
	// node, in eviction-preference order (lowest priority first, then
	// name). Sessions that are mid-checkpoint, mid-recovery, or
	// already migrating are omitted.
	Sessions(node string) []string
	// Target picks a destination for migrating sess off from, through
	// the same placement code path the supervisor's failover uses. ok
	// is false when nothing can host the session.
	Target(sess, from string) (target string, ok bool)
	// Migrate starts a fenced live migration; done fires with its
	// outcome.
	Migrate(sess, target string, done func(error)) error
}

// BalancerConfig tunes hotspot detection and migration pacing.
type BalancerConfig struct {
	// Interval is the watch cadence. Default 5 s.
	Interval sim.Duration
	// HotLoad is the predicted load at or above which a node counts as
	// hot. Default 2.0.
	HotLoad float64
	// ClearLoad is the predicted load at or below which a node's hot
	// streak resets. Between ClearLoad and HotLoad the streak holds —
	// the hysteresis band that keeps oscillating load from repeatedly
	// re-arming the detector. A migration target must also sit at or
	// below ClearLoad, so a move never creates the next hotspot.
	// Default half of HotLoad.
	ClearLoad float64
	// Sustain is how many consecutive hot ticks arm a migration: a
	// hotspot must persist Sustain × Interval before the balancer acts.
	// Default 3.
	Sustain int
	// Cooldown is the per-session re-migration holdoff. A session just
	// moved is immune for this long — with the target-load bound above,
	// the ping-pong defense. Default 12 × Interval.
	Cooldown sim.Duration
	// MaxMoves bounds concurrent migrations. Default 1.
	MaxMoves int
}

func (c *BalancerConfig) fill() error {
	if c.Interval <= 0 {
		c.Interval = 5 * sim.Second
	}
	if c.HotLoad <= 0 {
		c.HotLoad = 2.0
	}
	if c.ClearLoad <= 0 {
		c.ClearLoad = c.HotLoad / 2
	}
	if c.ClearLoad > c.HotLoad {
		return fmt.Errorf("placement: ClearLoad %.2f above HotLoad %.2f", c.ClearLoad, c.HotLoad)
	}
	if c.Sustain <= 0 {
		c.Sustain = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 12 * c.Interval
	}
	if c.MaxMoves <= 0 {
		c.MaxMoves = 1
	}
	return nil
}

// BalancerStats counts what the balancer saw and did.
type BalancerStats struct {
	// Ticks is how many watch rounds ran.
	Ticks int
	// Hotspots is how many armed hotspots (sustained past Sustain)
	// the balancer considered acting on.
	Hotspots int
	// Migrations is how many migrations completed successfully.
	Migrations int
	// Failed is how many migrations started but failed (including
	// fenced ones that raced a failover).
	Failed int
	// Skipped is how many armed hotspots the balancer left alone — no
	// eligible victim, no acceptable target, or the move cap.
	Skipped int
}

// Balancer is the autonomic load-balancing loop: every Interval it
// reads each node's predicted load, arms hotspots that stay hot for
// Sustain consecutive ticks, and live-migrates one session at a time
// off the hottest node to wherever the placement path says — fenced
// through the epoch machinery so a balancer move can never race a
// partition failover.
type Balancer struct {
	k   *sim.Kernel
	fab Fabric
	cfg BalancerConfig

	running  bool
	next     sim.EventID
	streak   map[string]int
	cool     map[string]sim.Time
	inflight int
	stats    BalancerStats
}

// NewBalancer builds a balancer over the fabric. Start arms it.
func NewBalancer(k *sim.Kernel, fab Fabric, cfg BalancerConfig) (*Balancer, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Balancer{
		k: k, fab: fab, cfg: cfg,
		streak: make(map[string]int),
		cool:   make(map[string]sim.Time),
	}, nil
}

// Config returns the filled configuration.
func (b *Balancer) Config() BalancerConfig { return b.cfg }

// Stats returns a snapshot of the counters.
func (b *Balancer) Stats() BalancerStats { return b.stats }

// Start begins the watch loop with an immediate first tick.
func (b *Balancer) Start() {
	if b.running {
		return
	}
	b.running = true
	b.tick()
}

// Stop halts the loop; in-flight migrations run to completion.
func (b *Balancer) Stop() {
	if !b.running {
		return
	}
	b.running = false
	b.k.Cancel(b.next)
	b.next = sim.EventID{}
}

// tick is one watch round: update every node's hot streak, then act on
// armed hotspots hottest-first.
func (b *Balancer) tick() {
	if !b.running {
		return
	}
	b.stats.Ticks++
	type hotspot struct {
		node string
		load float64
	}
	var armed []hotspot
	for _, node := range b.fab.Nodes() {
		load, ok := b.fab.NodeLoad(node)
		if !ok {
			continue
		}
		switch {
		case load >= b.cfg.HotLoad:
			b.streak[node]++
		case load <= b.cfg.ClearLoad:
			b.streak[node] = 0
			// Between the thresholds the streak holds: hysteresis.
		}
		if b.streak[node] >= b.cfg.Sustain {
			armed = append(armed, hotspot{node, load})
		}
	}
	sort.Slice(armed, func(i, j int) bool {
		if armed[i].load != armed[j].load {
			return armed[i].load > armed[j].load
		}
		return armed[i].node < armed[j].node
	})
	for _, h := range armed {
		b.stats.Hotspots++
		if b.inflight >= b.cfg.MaxMoves {
			b.stats.Skipped++
			continue
		}
		if !b.relieve(h.node) {
			b.stats.Skipped++
		}
	}
	b.next = b.k.After(b.cfg.Interval, b.tick)
}

// relieve migrates one session off a hot node. It picks the first
// victim not in cooldown, asks the placement path for a target, and
// refuses targets above ClearLoad — moving load onto a warm node would
// only relocate the hotspot.
func (b *Balancer) relieve(node string) bool {
	now := b.k.Now()
	for _, sess := range b.fab.Sessions(node) {
		if until, ok := b.cool[sess]; ok && now < until {
			continue
		}
		target, ok := b.fab.Target(sess, node)
		if !ok || target == node {
			continue
		}
		if tl, ok := b.fab.NodeLoad(target); ok && tl > b.cfg.ClearLoad {
			continue
		}
		// Re-detect from scratch after the move lands rather than
		// stacking migrations off one reading.
		b.streak[node] = 0
		b.cool[sess] = now.Add(b.cfg.Cooldown)
		b.inflight++
		err := b.fab.Migrate(sess, target, func(err error) {
			b.inflight--
			if err != nil {
				b.stats.Failed++
			} else {
				b.stats.Migrations++
			}
		})
		if err != nil {
			b.inflight--
			b.stats.Failed++
		}
		return true
	}
	return false
}
