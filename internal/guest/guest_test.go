package guest

import (
	"math"
	"testing"

	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
)

type fixture struct {
	k     *sim.Kernel
	host  *hostos.Host
	store *storage.Store
	os    *OS
}

func newNativeFixture(t *testing.T) *fixture {
	t.Helper()
	k := sim.NewKernel(1)
	h, err := hostos.New(k, hw.ReferenceMachine("phys"))
	if err != nil {
		t.Fatal(err)
	}
	s := storage.NewStore(h)
	cpu := NewNativeCPU(h.Spawn("task"))
	os := NewOS(cpu)
	if err := s.Create("root.disk", 2<<30); err != nil {
		t.Fatal(err)
	}
	root, err := s.Open("root.disk")
	if err != nil {
		t.Fatal(err)
	}
	os.Mount("root", root)
	return &fixture{k: k, host: h, store: s, os: os}
}

func TestWorkloadValidate(t *testing.T) {
	good := MicroTask(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Workload{
		{Name: "zero-cpu"},
		{Name: "neg-reads", CPUSeconds: 1, Reads: -1},
		{Name: "neg-bytes", CPUSeconds: 1, ReadBytes: -1},
		{Name: "neg-priv", CPUSeconds: 1, PrivPerSec: -1},
		{Name: "neg-mem", CPUSeconds: 1, MemVirtPerSec: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %q", bad.Name)
		}
	}
}

func TestPresetWorkloadsMatchPaperBaselines(t *testing.T) {
	// Native system time = CPUSeconds × PrivPerSec × NativeCost must
	// reproduce the paper's measured user/sys splits.
	seis := SPECseis96()
	sysSeis := seis.CPUSeconds * seis.PrivPerSec * NativeCost.Seconds()
	if sysSeis < 15 || sysSeis > 23 {
		t.Errorf("SPECseis native sys time = %.1fs, paper measured 19s", sysSeis)
	}
	climate := SPECclimate()
	sysClim := climate.CPUSeconds * climate.PrivPerSec * NativeCost.Seconds()
	if sysClim < 1.5 || sysClim > 5 {
		t.Errorf("SPECclimate native sys time = %.1fs, paper measured 3s", sysClim)
	}
	if climate.MemVirtPerSec <= seis.MemVirtPerSec {
		t.Error("SPECclimate must be more memory-intensive than SPECseis")
	}
}

func TestNativeTaskElapsed(t *testing.T) {
	f := newNativeFixture(t)
	var res TaskResult
	if _, err := f.os.Run(MicroTask(10), func(r TaskResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	f.k.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// Native: 10 s of work plus 300 events/s at 1 µs each ≈ 10.003 s.
	want := 10 * (1 + 300*NativeCost.Seconds())
	if math.Abs(res.Elapsed().Seconds()-want) > 0.001 {
		t.Errorf("elapsed = %v, want %.4fs", res.Elapsed().Seconds(), want)
	}
	if res.UserSeconds != 10 {
		t.Errorf("UserSeconds = %v", res.UserSeconds)
	}
	if f.os.UserSeconds() != 10 {
		t.Errorf("OS.UserSeconds = %v", f.os.UserSeconds())
	}
}

func TestTaskWithIO(t *testing.T) {
	f := newNativeFixture(t)
	w := Workload{
		Name:       "io-task",
		CPUSeconds: 2,
		Reads:      10,
		ReadBytes:  10 << 20,
		Mount:      "root",
	}
	var res TaskResult
	if _, err := f.os.Run(w, func(r TaskResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	f.k.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Reads != 10 {
		t.Errorf("Reads = %d, want 10", res.Reads)
	}
	if res.IOWait <= 0 {
		t.Error("IOWait not recorded")
	}
	// Elapsed must exceed pure CPU time by at least the device time of
	// 10 MB (plus seeks).
	if res.Elapsed().Seconds() < 2.2 {
		t.Errorf("elapsed = %v, expected CPU + I/O", res.Elapsed())
	}
	if res.SysSeconds() <= 0 {
		t.Error("SysSeconds = 0 for an I/O-heavy task")
	}
}

func TestTaskMissingMount(t *testing.T) {
	f := newNativeFixture(t)
	w := Workload{Name: "orphan", CPUSeconds: 1, Reads: 5, ReadBytes: 1 << 20, Mount: "nfs"}
	if _, err := f.os.Run(w, nil); err == nil {
		t.Fatal("Run accepted task with missing mount")
	}
}

func TestTwoTasksShareGuestCPU(t *testing.T) {
	f := newNativeFixture(t)
	var t1End, t2End sim.Time
	if _, err := f.os.Run(MicroTask(5), func(r TaskResult) { t1End = r.End }); err != nil {
		t.Fatal(err)
	}
	if _, err := f.os.Run(MicroTask(5), func(r TaskResult) { t2End = r.End }); err != nil {
		t.Fatal(err)
	}
	if f.os.Runnable() != 2 {
		t.Fatalf("Runnable = %d", f.os.Runnable())
	}
	f.k.Run()
	// Both finish around 10 s (two 5 s tasks sharing one CPU).
	for _, end := range []sim.Time{t1End, t2End} {
		if math.Abs(end.Seconds()-10) > 0.2 {
			t.Errorf("task end = %v, want ~10s", end.Seconds())
		}
	}
}

func TestBootMarksBooted(t *testing.T) {
	f := newNativeFixture(t)
	if f.os.Booted() {
		t.Fatal("fresh OS claims booted")
	}
	var bootErr error = errSentinel
	if err := f.os.Boot(DefaultBoot(), func(err error) { bootErr = err }); err != nil {
		t.Fatal(err)
	}
	f.k.Run()
	if bootErr != nil {
		t.Fatalf("boot error: %v", bootErr)
	}
	if !f.os.Booted() {
		t.Error("OS not booted after boot completes")
	}
	if err := f.os.Boot(DefaultBoot(), nil); err == nil {
		t.Error("double boot accepted")
	}
}

var errSentinel = errTest{}

type errTest struct{}

func (errTest) Error() string { return "sentinel" }

func TestMarkBootedAndResume(t *testing.T) {
	f := newNativeFixture(t)
	f.os.MarkBooted()
	if !f.os.Booted() {
		t.Fatal("MarkBooted did not take")
	}
	done := false
	if err := f.os.ResumeWarm(DefaultResume(), func(err error) { done = err == nil }); err != nil {
		t.Fatal(err)
	}
	f.k.Run()
	if !done {
		t.Error("resume did not complete")
	}
}

func TestRebindPreservesTaskProgress(t *testing.T) {
	f := newNativeFixture(t)
	var res TaskResult
	task, err := f.os.Run(MicroTask(10), func(r TaskResult) { res = r })
	if err != nil {
		t.Fatal(err)
	}
	if err := f.k.RunUntil(sim.Time(4 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if p := task.Progress(); p < 0.3 || p > 0.5 {
		t.Fatalf("progress = %v at 4s", p)
	}
	// Move the guest to a new (faster) host mid-task.
	h2, err := hostos.New(f.k, hw.ServerMachine("big"))
	if err != nil {
		t.Fatal(err)
	}
	cpu2 := NewNativeCPU(h2.Spawn("task"))
	f.os.Rebind(cpu2)
	f.k.Run()
	if res.End == 0 {
		t.Fatal("task never finished after rebind")
	}
	// ~4 s done at speed 1, remaining ~6 work units at speed 1.2 → ~9 s.
	if res.End.Seconds() > 9.5 {
		t.Errorf("task finished at %v; rebind to faster host had no effect", res.End)
	}
	if res.UserSeconds != 10 {
		t.Errorf("UserSeconds = %v after migration", res.UserSeconds)
	}
}

func TestMountNamesAndRemount(t *testing.T) {
	f := newNativeFixture(t)
	if got := len(f.os.MountNames()); got != 1 {
		t.Fatalf("mounts = %d", got)
	}
	other, err := f.store.OpenOrCreate("data.img")
	if err != nil {
		t.Fatal(err)
	}
	f.os.Mount("data", other)
	if got := len(f.os.MountNames()); got != 2 {
		t.Errorf("mounts after add = %d", got)
	}
	f.os.Mount("data", other) // remount is idempotent
	if got := len(f.os.MountNames()); got != 2 {
		t.Errorf("mounts after remount = %d", got)
	}
}

func TestIdleOSConsumesNothing(t *testing.T) {
	f := newNativeFixture(t)
	if f.os.Runnable() != 0 || f.os.Tasks() != 0 {
		t.Error("fresh OS has phantom tasks")
	}
	if f.os.CPU().Rate() != 0 {
		t.Errorf("idle rate = %v", f.os.CPU().Rate())
	}
}

func TestTaskWithWrites(t *testing.T) {
	f := newNativeFixture(t)
	w := Workload{
		Name:       "writer",
		CPUSeconds: 3,
		Reads:      5,
		ReadBytes:  5 << 20,
		Writes:     8,
		WriteBytes: 8 << 20,
		Mount:      "root",
	}
	var res TaskResult
	if _, err := f.os.Run(w, func(r TaskResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	f.k.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Reads != 5 || res.Writes != 8 {
		t.Errorf("reads/writes = %d/%d, want 5/8", res.Reads, res.Writes)
	}
	if res.Elapsed().Seconds() <= 3 {
		t.Error("writes cost nothing")
	}
}

func TestWritesGrowCowDiff(t *testing.T) {
	// A writing task on a COW root disk must grow the session diff —
	// the mechanism that sizes migration traffic.
	k := sim.NewKernel(2)
	h, err := hostos.New(k, hw.ReferenceMachine("n"))
	if err != nil {
		t.Fatal(err)
	}
	s := storage.NewStore(h)
	if err := s.Create("base", 1<<30); err != nil {
		t.Fatal(err)
	}
	base, _ := s.Open("base")
	diff, _ := s.OpenOrCreate("d.cow")
	cow := storage.NewCowDisk(base, diff)
	os := NewOS(NewNativeCPU(h.Spawn("t")))
	os.MarkBooted()
	os.Mount("root", cow)
	w := Workload{Name: "w", CPUSeconds: 2, Writes: 16, WriteBytes: 4 << 20}
	done := false
	if _, err := os.Run(w, func(TaskResult) { done = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !done {
		t.Fatal("task never finished")
	}
	if cow.DiffBytes() == 0 {
		t.Error("writes did not land in the COW diff")
	}
}

func TestNegativeWritesRejected(t *testing.T) {
	bad := Workload{Name: "x", CPUSeconds: 1, Writes: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative writes accepted")
	}
}
