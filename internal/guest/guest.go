// Package guest models the operating system running inside a virtual
// machine (or directly on hardware): booting, resuming from a memory
// image, scheduling workload tasks, and performing file I/O through
// mounted backends.
//
// The same guest OS code runs over two CPU providers: a vmm.VM (the
// virtualized case) or a NativeCPU (the physical-machine baseline the
// paper compares against). That symmetry is what makes the Figure 1 and
// Table 1 comparisons apples-to-apples: identical workload mechanics,
// different cost of privileged operations.
package guest

import (
	"fmt"

	"vmgrid/internal/hostos"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
)

// CPU is what a guest OS needs from the machine it runs on. It is
// implemented by vmm.VM (virtual) and NativeCPU (physical).
type CPU interface {
	// Kernel returns the simulation kernel.
	Kernel() *sim.Kernel
	// SetActivity declares the guest's current scheduling state; the
	// provider recomputes the delivered work rate.
	SetActivity(a Activity)
	// OnRate registers the callback receiving the delivered guest work
	// rate (reference work units per second). Pass nil to unregister.
	OnRate(fn func(rate float64))
	// Rate returns the currently delivered guest work rate.
	Rate() float64
	// IOPenalty returns the fixed per-I/O-operation overhead of this
	// provider (device virtualization cost for a VM, bare syscall and
	// driver cost natively).
	IOPenalty() sim.Duration
}

// Activity is what the guest reports to its CPU provider.
type Activity struct {
	// Runnable is the number of runnable guest tasks.
	Runnable int
	// BgLoad is guest-internal background load (competing processes
	// from trace playback), as a load average.
	BgLoad float64
	// PrivPerSec is the running mix's privileged-event rate (system
	// calls, traps) per guest-CPU-second; these cost NativeCost natively
	// and NativeCost plus the VMM's trap overhead in a VM.
	PrivPerSec float64
	// MemPerSec is the memory-system event rate (page-table/TLB work)
	// per guest-CPU-second; free natively, trapped by a VMM.
	MemPerSec float64
}

// Contenders returns how many scheduling entities compete inside the
// guest (tasks plus the background load, if any).
func (a Activity) Contenders() int {
	n := a.Runnable
	if a.BgLoad > 0.05 {
		n++
	}
	return n
}

// NativeCost is the cost of one privileged event (system call, fault)
// on the physical machine — the baseline the VMM's trap-and-emulate
// overhead is measured against.
const NativeCost = 1 * sim.Microsecond

// NativeIOPenalty is the per-I/O syscall-and-driver cost on the
// physical machine.
const NativeIOPenalty = 60 * sim.Microsecond

// NativeCPU runs a guest OS directly on a host process — the paper's
// "physical machine" configuration.
type NativeCPU struct {
	proc *hostos.Process
	act  Activity
	sink func(rate float64)
	rate float64
}

var _ CPU = (*NativeCPU)(nil)

// NewNativeCPU wraps a host process as a CPU provider.
func NewNativeCPU(proc *hostos.Process) *NativeCPU {
	n := &NativeCPU{proc: proc}
	proc.OnRate(func(float64) { n.recompute() })
	return n
}

// Kernel implements CPU.
func (n *NativeCPU) Kernel() *sim.Kernel { return n.proc.Host().Kernel() }

// SetActivity implements CPU. Memory-system events are free natively.
// Guest-internal background load does not apply to the native case (on a
// physical machine, competing load is its own host process), but is
// honored for symmetry: it raises demand when no task is runnable.
func (n *NativeCPU) SetActivity(a Activity) {
	n.act = a
	switch {
	case a.Runnable > 0:
		n.proc.SetDemand(1)
	case a.BgLoad > 0:
		n.proc.SetDemand(minF(a.BgLoad, 1))
	default:
		n.proc.SetDemand(0)
	}
	n.recompute()
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// OnRate implements CPU.
func (n *NativeCPU) OnRate(fn func(rate float64)) {
	n.sink = fn
	if fn != nil {
		fn(n.rate)
	}
}

// Rate implements CPU.
func (n *NativeCPU) Rate() float64 { return n.rate }

// IOPenalty implements CPU.
func (n *NativeCPU) IOPenalty() sim.Duration { return NativeIOPenalty }

func (n *NativeCPU) recompute() {
	// Useful work rate: the host rate discounted by the native cost of
	// the privileged events the work generates.
	r := n.proc.Rate() / (1 + n.act.PrivPerSec*NativeCost.Seconds())
	if n.act.Runnable == 0 {
		r = 0
	}
	if r != n.rate {
		n.rate = r
		if n.sink != nil {
			n.sink(r)
		}
	}
}

// OS is the guest operating system instance.
type OS struct {
	cpu    CPU
	mounts map[string]storage.Backend

	tasks  []*Task
	booted bool
	bgLoad float64

	userSeconds float64 // accumulated reference CPU-seconds of user work
}

// NewOS creates a guest OS on the given CPU provider.
func NewOS(cpu CPU) *OS {
	os := &OS{cpu: cpu, mounts: make(map[string]storage.Backend)}
	cpu.OnRate(os.redistribute)
	return os
}

// CPU returns the provider the OS runs on.
func (o *OS) CPU() CPU { return o.cpu }

// Rebind moves the OS onto a new CPU provider — the memory-state half of
// VM migration. Task state (remaining work, pending I/O) is preserved;
// the tasks simply start draining at the new provider's delivered rate.
// The previous provider should be powered off by the caller.
func (o *OS) Rebind(cpu CPU) {
	o.cpu = cpu
	cpu.OnRate(o.redistribute)
	o.updateActivity()
}

// Kernel returns the simulation kernel.
func (o *OS) Kernel() *sim.Kernel { return o.cpu.Kernel() }

// Mount attaches a storage backend under a name ("root", "data", ...).
// Remounting a name replaces the backend, which is how a migrated VM
// reconnects to its data server.
func (o *OS) Mount(name string, b storage.Backend) {
	o.mounts[name] = b
}

// MountNames returns the attached mount points.
func (o *OS) MountNames() []string {
	out := make([]string, 0, len(o.mounts))
	for name := range o.mounts {
		out = append(out, name)
	}
	return out
}

// Booted reports whether the OS has finished booting (or resuming).
func (o *OS) Booted() bool { return o.booted }

// MarkBooted transitions the OS to booted without running the boot
// sequence — used when a VM is restored from a warm (post-boot) image.
func (o *OS) MarkBooted() { o.booted = true }

// Runnable returns the number of runnable (CPU-wanting) tasks.
func (o *OS) Runnable() int {
	n := 0
	for _, t := range o.tasks {
		if t.state == taskRunning {
			n++
		}
	}
	return n
}

// Tasks returns the number of live (not finished) tasks.
func (o *OS) Tasks() int { return len(o.tasks) }

// UserSeconds returns the total user CPU work retired so far.
func (o *OS) UserSeconds() float64 { return o.userSeconds }

// SetBackgroundLoad models trace-driven competing processes inside the
// guest (the Figure 1 "load on VM" placement): a load average u steals
// u shares of the guest CPU from the real tasks and adds a contender to
// the guest scheduler.
func (o *OS) SetBackgroundLoad(u float64) {
	if u < 0 {
		u = 0
	}
	o.bgLoad = u
	o.updateActivity()
}

// BackgroundLoad returns the current guest-internal load.
func (o *OS) BackgroundLoad() float64 { return o.bgLoad }

// updateActivity tells the CPU provider about the current task mix.
func (o *OS) updateActivity() {
	runnable := 0
	var priv, mem float64
	for _, t := range o.tasks {
		if t.state == taskRunning {
			runnable++
			priv += t.workload.PrivPerSec
			mem += t.workload.MemVirtPerSec
		}
	}
	if runnable > 0 {
		priv /= float64(runnable)
		mem /= float64(runnable)
	}
	o.cpu.SetActivity(Activity{
		Runnable:   runnable,
		BgLoad:     o.bgLoad,
		PrivPerSec: priv,
		MemPerSec:  mem,
	})
	o.redistribute(o.cpu.Rate())
}

// redistribute splits the delivered guest rate among runnable tasks and
// the background load by processor sharing: with n tasks and load u,
// each task gets rate/(n+u).
func (o *OS) redistribute(rate float64) {
	runnable := o.Runnable()
	if runnable == 0 {
		return
	}
	per := rate / (float64(runnable) + o.bgLoad)
	for _, t := range o.tasks {
		if t.state == taskRunning && t.tracker != nil {
			t.tracker.SetRate(per)
		}
	}
}

// remove drops a finished task from the table.
func (o *OS) remove(t *Task) {
	for i, q := range o.tasks {
		if q == t {
			o.tasks = append(o.tasks[:i], o.tasks[i+1:]...)
			break
		}
	}
	o.updateActivity()
}

func (o *OS) mountFor(t *Task) (storage.Backend, error) {
	name := t.workload.Mount
	if name == "" {
		name = "root"
	}
	b, ok := o.mounts[name]
	if !ok {
		return nil, fmt.Errorf("guest: task %q: mount %q not attached", t.workload.Name, name)
	}
	return b, nil
}
