package guest

import (
	"errors"
	"fmt"
)

// ErrAlreadyBooted is returned when booting a live OS.
var ErrAlreadyBooted = errors.New("guest: already booted")

// DefaultBoot returns the cold-boot sequence of the paper-era RedHat
// guest: kernel decompression and init, device probing, and service
// startup — about 45 s of CPU work interleaved with ~2400 reads pulling
// ~200 MB of kernel, libraries, and service binaries from the virtual
// disk. On the reference machine this yields the ~65-75 s "VM-reboot"
// startup floor of Table 2.
func DefaultBoot() Workload {
	return Workload{
		Name:          "boot",
		CPUSeconds:    44,
		PrivPerSec:    2000,
		MemVirtPerSec: 1000,
		Reads:         2000,
		ReadBytes:     160 << 20,
		Mount:         "root",
	}
}

// DefaultResume returns the in-guest portion of resuming from a warm
// (post-boot) memory image: re-initializing devices and timers, a couple
// of seconds of CPU and ~150 reads of device and page state from the
// virtual disk. The memory image itself is read by the VMM, not the
// guest (see vmm.VM restore).
func DefaultResume() Workload {
	return Workload{
		Name:          "resume",
		CPUSeconds:    2.4,
		PrivPerSec:    3000,
		MemVirtPerSec: 1000,
		Reads:         180,
		ReadBytes:     12 << 20,
		Mount:         "root",
	}
}

// Boot runs the boot sequence and marks the OS booted. done receives nil
// on success.
func (o *OS) Boot(profile Workload, done func(error)) error {
	if o.booted {
		return ErrAlreadyBooted
	}
	_, err := o.Run(profile, func(res TaskResult) {
		if res.Err == nil {
			o.booted = true
		}
		if done != nil {
			done(res.Err)
		}
	})
	if err != nil {
		return fmt.Errorf("guest: boot: %w", err)
	}
	return nil
}

// ResumeWarm runs the post-restore resume sequence and marks the OS
// booted.
func (o *OS) ResumeWarm(profile Workload, done func(error)) error {
	_, err := o.Run(profile, func(res TaskResult) {
		if res.Err == nil {
			o.booted = true
		}
		if done != nil {
			done(res.Err)
		}
	})
	if err != nil {
		return fmt.Errorf("guest: resume: %w", err)
	}
	return nil
}
