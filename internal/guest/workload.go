package guest

import (
	"fmt"
	"math"

	"vmgrid/internal/sim"

	"vmgrid/internal/storage"
)

// Workload describes a program the guest runs: user CPU work plus the
// privileged-operation and I/O behaviour that determines how much a
// virtual machine monitor slows it down. The rates are calibrated so the
// physical-machine baseline reproduces the paper's measured user/system
// splits (see DESIGN.md §5).
type Workload struct {
	// Name labels the workload in results.
	Name string
	// CPUSeconds is the user work in reference CPU-seconds.
	CPUSeconds float64
	// PrivPerSec is the rate of privileged events (system calls, traps)
	// per CPU-second. These cost NativeCost natively and NativeCost plus
	// the VMM's trap overhead in a VM.
	PrivPerSec float64
	// MemVirtPerSec is the rate of memory-system events (page-table
	// updates, TLB activity) per CPU-second. These are nearly free
	// natively (handled in hardware) but trap into the VMM's shadow
	// page tables — the dominant cost for memory-intensive codes like
	// SPECclimate.
	MemVirtPerSec float64
	// Reads is the number of data-file read operations issued, spread
	// evenly through the CPU work.
	Reads int
	// ReadBytes is the total bytes read across all operations.
	ReadBytes int64
	// Mount names the file system the data reads go to (default "root").
	Mount string
	// RootOps is the number of scratch/root-disk operations (temporary
	// files, library loads) spread through the work. They always target
	// the "root" mount — the VM-state path, which in the paper's PVFS
	// scenario crosses the wide-area network.
	RootOps int
	// RootBytes is the total bytes moved by root operations.
	RootBytes int64
	// Writes is the number of output operations (results written to the
	// data mount — or the root disk's COW diff when no data mount is
	// named), spread through the work like the reads.
	Writes int
	// WriteBytes is the total bytes written.
	WriteBytes int64
}

// Validate reports whether the workload is runnable.
func (w Workload) Validate() error {
	if w.CPUSeconds <= 0 {
		return fmt.Errorf("guest: workload %q: cpu seconds %v", w.Name, w.CPUSeconds)
	}
	if w.Reads < 0 || w.ReadBytes < 0 || w.RootOps < 0 || w.RootBytes < 0 ||
		w.Writes < 0 || w.WriteBytes < 0 {
		return fmt.Errorf("guest: workload %q: negative I/O", w.Name)
	}
	if w.PrivPerSec < 0 || w.MemVirtPerSec < 0 {
		return fmt.Errorf("guest: workload %q: negative event rate", w.Name)
	}
	return nil
}

// SPECseis96 returns a workload shaped like the paper's SPECseis run:
// 16395 s of user work, enough system-call traffic to account for the
// measured 19 s of native system time, light memory-system activity, and
// a seismic dataset streamed from the data mount.
func SPECseis96() Workload {
	return Workload{
		Name:          "SPECseis",
		CPUSeconds:    16395,
		PrivPerSec:    1160, // × NativeCost ≈ 19 s native system time
		MemVirtPerSec: 500,
		Reads:         62000,
		ReadBytes:     480 << 20,
		Mount:         "data",
		RootOps:       3000, // seismic scratch files on the VM root disk
		RootBytes:     96 << 20,
	}
}

// SPECclimate returns a workload shaped like the paper's SPECclimate
// run: 9304 s of user work, almost no system calls (3 s native system
// time), but intense memory-system activity — which is why its VM
// overhead (4%) is higher than SPECseis's (1.2%).
func SPECclimate() Workload {
	return Workload{
		Name:          "SPECclimate",
		CPUSeconds:    9304,
		PrivPerSec:    320, // × NativeCost ≈ 3 s native system time
		MemVirtPerSec: 6600,
		Reads:         10500,
		ReadBytes:     84 << 20,
		Mount:         "data",
		RootOps:       500,
		RootBytes:     16 << 20,
	}
}

// MicroTask returns the synthetic CPU-bound test task of the Figure 1
// microbenchmark: a short spin of pure computation with the incidental
// syscall traffic of a timing loop.
func MicroTask(seconds float64) Workload {
	return Workload{
		Name:          "micro",
		CPUSeconds:    seconds,
		PrivPerSec:    300,
		MemVirtPerSec: 200,
	}
}

// TaskResult reports a finished task.
type TaskResult struct {
	Workload Workload
	// Start and End bound the task's execution in virtual time.
	Start, End sim.Time
	// UserSeconds is the reference CPU work retired (equals the
	// workload's CPUSeconds on success).
	UserSeconds float64
	// IOWait is the total time spent blocked on file I/O.
	IOWait sim.Duration
	// Reads counts completed read operations.
	Reads int
	// Writes counts completed write operations.
	Writes int
	// Err is non-nil if the task failed (e.g. missing mount).
	Err error
}

// Elapsed returns the wall-clock (virtual) run time.
func (r TaskResult) Elapsed() sim.Duration { return r.End.Sub(r.Start) }

// SysSeconds returns everything that was not user work: privileged
// handling, I/O waiting, and virtualization overhead. The paper's
// "system time" maps onto this (plus scheduler noise) when the machine
// is otherwise idle.
func (r TaskResult) SysSeconds() float64 {
	s := r.Elapsed().Seconds() - r.UserSeconds
	if s < 0 {
		return 0
	}
	return s
}

type taskState int

const (
	taskRunning taskState = iota + 1
	taskBlocked
	taskDone
)

// ioOp is one planned I/O operation: when the task's retired work crosses
// threshold, it blocks to transfer bytes at offset on mount.
type ioOp struct {
	threshold float64
	mount     string
	offset    int64
	bytes     int64
	write     bool
}

// Task is a workload executing in the guest.
type Task struct {
	os       *OS
	workload Workload
	state    taskState
	tracker  *sim.WorkTracker
	done     func(TaskResult)

	start      sim.Time
	ioStart    sim.Time
	ioWait     sim.Duration
	readsDone  int
	writesDone int
	plan       []ioOp
	next       int // index of the next planned I/O

	// Pre-bound callbacks, created once per task. The I/O loop runs tens
	// of thousands of times per workload; minting fresh closures for each
	// poll, issue, and completion was a dominant allocation source. Only
	// one planned I/O is ever outstanding, so sharing them is safe.
	pollFn     func()
	issueFn    func()
	completeFn func()
	ioMount    storage.Backend // mount resolved when the current op blocked
}

// Run starts a workload in the guest and invokes done with the result
// when it finishes. It returns an error immediately for invalid
// workloads or missing mounts.
func (o *OS) Run(w Workload, done func(TaskResult)) (*Task, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	t := &Task{os: o, workload: w, done: done, start: o.Kernel().Now()}
	t.pollFn = t.pollNext
	t.issueFn = t.issueIO
	t.completeFn = t.completeIO
	t.plan = buildIOPlan(w)
	seen := make(map[string]bool, 2)
	for _, op := range t.plan {
		if seen[op.mount] {
			continue
		}
		seen[op.mount] = true
		if _, ok := o.mounts[op.mount]; !ok {
			return nil, fmt.Errorf("guest: task %q: mount %q not attached", w.Name, op.mount)
		}
	}
	t.state = taskRunning
	t.tracker = sim.NewWorkTracker(o.Kernel(), w.CPUSeconds, t.cpuDone)
	o.tasks = append(o.tasks, t)
	o.updateActivity()
	t.scheduleNextIO()
	return t, nil
}

// buildIOPlan merges the workload's data and root I/O streams into one
// work-ordered schedule. Each stream's thresholds strictly increase, so
// a three-way merge into one pre-sized slice produces the sorted plan
// directly — no append growth, no reflection-based sort. The threshold
// formulas are kept bitwise-identical to the historical sort-based
// builder so existing experiment outputs do not move.
func buildIOPlan(w Workload) []ioOp {
	total := w.Reads + w.RootOps + w.Writes
	if total == 0 {
		return nil
	}
	dataMount := w.Mount
	if dataMount == "" {
		dataMount = "root"
	}
	var perRead, perRoot, perWrite int64
	if w.Reads > 0 {
		perRead = w.ReadBytes / int64(w.Reads)
	}
	if w.RootOps > 0 {
		perRoot = w.RootBytes / int64(w.RootOps)
	}
	if w.Writes > 0 {
		perWrite = w.WriteBytes / int64(w.Writes)
	}

	plan := make([]ioOp, 0, total)
	ri, oi, wi := 0, 0, 0
	inf := math.Inf(1)
	rt, ot, wt := inf, inf, inf
	if w.Reads > 0 {
		rt = w.CPUSeconds * float64(1) / float64(w.Reads+1)
	}
	if w.RootOps > 0 {
		ot = w.CPUSeconds * (float64(1)/float64(w.RootOps+1) + 1e-9)
	}
	if w.Writes > 0 {
		wt = w.CPUSeconds * (float64(1)/float64(w.Writes+1) + 2e-9)
	}
	for len(plan) < total {
		switch {
		case rt <= ot && rt <= wt:
			plan = append(plan, ioOp{
				threshold: rt, mount: dataMount,
				offset: perRead * int64(ri), bytes: perRead,
			})
			ri++
			rt = inf
			if ri < w.Reads {
				rt = w.CPUSeconds * float64(ri+1) / float64(w.Reads+1)
			}
		case ot <= wt:
			plan = append(plan, ioOp{
				threshold: ot, mount: "root",
				offset: perRoot * int64(oi), bytes: perRoot,
			})
			oi++
			ot = inf
			if oi < w.RootOps {
				ot = w.CPUSeconds * (float64(oi+1)/float64(w.RootOps+1) + 1e-9)
			}
		default:
			plan = append(plan, ioOp{
				threshold: wt, mount: dataMount,
				offset: perWrite * int64(wi), bytes: perWrite,
				write: true,
			})
			wi++
			wt = inf
			if wi < w.Writes {
				wt = w.CPUSeconds * (float64(wi+1)/float64(w.Writes+1) + 2e-9)
			}
		}
	}
	return plan
}

// State helpers for tests and monitoring.

// Running reports whether the task currently wants CPU.
func (t *Task) Running() bool { return t.state == taskRunning }

// Blocked reports whether the task is waiting on I/O.
func (t *Task) Blocked() bool { return t.state == taskBlocked }

// Done reports whether the task finished.
func (t *Task) Done() bool { return t.state == taskDone }

// Progress returns the fraction of user work completed.
func (t *Task) Progress() float64 {
	if t.tracker == nil {
		return 0
	}
	return t.tracker.Consumed() / t.workload.CPUSeconds
}

// scheduleNextIO arranges for the task to block for a read when it
// crosses the next planned I/O point.
func (t *Task) scheduleNextIO() {
	if t.next >= len(t.plan) {
		return
	}
	t.pollNext()
}

// pollNext watches for the work tracker crossing the next planned op's
// threshold. Rather than polling on a timer, it predicts the crossing
// from the current rate and re-predicts whenever it fires early. The
// threshold is read from the plan at fire time: t.next only advances
// when an op completes, which in turn ends the poll chain, so the value
// is the same one the chain started with.
func (t *Task) pollNext() {
	if t.state != taskRunning || t.tracker == nil || t.tracker.Finished() {
		return
	}
	if t.next >= len(t.plan) {
		return
	}
	threshold := t.plan[t.next].threshold
	k := t.os.Kernel()
	consumed := t.tracker.Consumed()
	if consumed >= threshold {
		t.blockForIO()
		return
	}
	rate := t.tracker.Rate()
	var wait sim.Duration
	if rate > 0 {
		wait = sim.DurationOf((threshold - consumed) / rate)
		if wait < sim.Microsecond {
			wait = sim.Microsecond
		}
	} else {
		// Stalled (VM suspended or preempted): check again in a while.
		wait = 100 * sim.Millisecond
	}
	k.After(wait, t.pollFn)
}

// blockForIO parks the task and issues the next planned read.
func (t *Task) blockForIO() {
	op := &t.plan[t.next]
	mount, ok := t.os.mounts[op.mount]
	if !ok {
		t.fail(fmt.Errorf("guest: mount %q detached mid-run", op.mount))
		return
	}
	t.state = taskBlocked
	t.ioStart = t.os.Kernel().Now()
	t.tracker.SetRate(0)
	t.os.updateActivity()

	// The mount is resolved now (fail-fast when detached) but used after
	// the provider's I/O penalty elapses, as before.
	t.ioMount = mount
	t.os.Kernel().After(t.os.cpu.IOPenalty(), t.issueFn)
}

// issueIO hands the current planned op to its mount once the per-op
// penalty has been charged.
func (t *Task) issueIO() {
	op := &t.plan[t.next]
	if op.write {
		t.ioMount.Write(op.offset, op.bytes, t.completeFn)
		return
	}
	t.ioMount.Read(op.offset, op.bytes, t.completeFn)
}

// completeIO is the completion callback of the in-flight planned op.
func (t *Task) completeIO() {
	op := &t.plan[t.next]
	if op.write {
		t.writesDone++
	} else {
		t.readsDone++
	}
	t.next++
	t.ioWait += t.os.Kernel().Now().Sub(t.ioStart)
	if t.state != taskBlocked {
		return // task was torn down while blocked
	}
	t.state = taskRunning
	t.os.updateActivity()
	t.scheduleNextIO()
}

// cpuDone fires when all user work has been retired.
func (t *Task) cpuDone() {
	t.state = taskDone
	t.os.userSeconds += t.workload.CPUSeconds
	res := TaskResult{
		Workload:    t.workload,
		Start:       t.start,
		End:         t.os.Kernel().Now(),
		UserSeconds: t.workload.CPUSeconds,
		IOWait:      t.ioWait,
		Reads:       t.readsDone,
		Writes:      t.writesDone,
	}
	t.os.remove(t)
	if t.done != nil {
		t.done(res)
	}
}

func (t *Task) fail(err error) {
	t.state = taskDone
	if t.tracker != nil {
		t.tracker.Abort()
	}
	res := TaskResult{
		Workload: t.workload,
		Start:    t.start,
		End:      t.os.Kernel().Now(),
		Err:      err,
	}
	t.os.remove(t)
	if t.done != nil {
		t.done(res)
	}
}
