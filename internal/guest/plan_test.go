package guest

import (
	"testing"
	"testing/quick"

	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
)

// Property: the merged I/O plan is sorted by work threshold, covers the
// requested operation counts, routes each op to the right mount, and
// conserves bytes.
func TestIOPlanProperties(t *testing.T) {
	prop := func(readsRaw, rootRaw uint8, cpuRaw uint8) bool {
		w := Workload{
			Name:       "prop",
			CPUSeconds: float64(cpuRaw%100) + 1,
			Reads:      int(readsRaw % 64),
			ReadBytes:  int64(readsRaw%64) * 8192,
			Mount:      "data",
			RootOps:    int(rootRaw % 32),
			RootBytes:  int64(rootRaw%32) * 4096,
		}
		plan := buildIOPlan(w)
		if len(plan) != w.Reads+w.RootOps {
			return false
		}
		var dataOps, rootOps int
		var dataBytes, rootBytes int64
		last := -1.0
		for _, op := range plan {
			if op.threshold < last {
				return false // not sorted
			}
			last = op.threshold
			if op.threshold <= 0 || op.threshold >= w.CPUSeconds {
				return false // I/O points strictly inside the work
			}
			switch op.mount {
			case "data":
				dataOps++
				dataBytes += op.bytes
			case "root":
				rootOps++
				rootBytes += op.bytes
			default:
				return false
			}
		}
		if dataOps != w.Reads || rootOps != w.RootOps {
			return false
		}
		// Byte conservation up to integer division remainder.
		if w.Reads > 0 && (dataBytes > w.ReadBytes || dataBytes < w.ReadBytes-int64(w.Reads)) {
			return false
		}
		if w.RootOps > 0 && (rootBytes > w.RootBytes || rootBytes < w.RootBytes-int64(w.RootOps)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIOPlanEmptyForPureCPU(t *testing.T) {
	if plan := buildIOPlan(MicroTask(5)); len(plan) != 0 {
		t.Errorf("pure CPU workload has %d planned ops", len(plan))
	}
}

func TestIOPlanDefaultMountIsRoot(t *testing.T) {
	w := Workload{Name: "x", CPUSeconds: 10, Reads: 4, ReadBytes: 4096}
	for _, op := range buildIOPlan(w) {
		if op.mount != "root" {
			t.Fatalf("unmounted reads routed to %q", op.mount)
		}
	}
}

// Property: a task's elapsed time on an otherwise idle native machine is
// at least its CPU time plus per-event native costs and never wildly
// more (no lost wakeups, no double charging).
func TestNativeElapsedBounds(t *testing.T) {
	prop := func(cpuRaw, privRaw uint8) bool {
		cpu := float64(cpuRaw%30) + 1
		priv := float64(privRaw) * 20
		f := newPropFixture()
		var elapsed float64
		w := Workload{Name: "b", CPUSeconds: cpu, PrivPerSec: priv}
		if _, err := f.os.Run(w, func(r TaskResult) { elapsed = r.Elapsed().Seconds() }); err != nil {
			return false
		}
		f.k.Run()
		ideal := cpu * (1 + priv*NativeCost.Seconds())
		return elapsed >= ideal-1e-6 && elapsed < ideal*1.001+1e-3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// newPropFixture is a minimal native rig for property tests (no testing.T
// so it can live inside quick.Check closures).
func newPropFixture() *propFixture {
	k := sim.NewKernel(99)
	h, err := hostos.New(k, hw.ReferenceMachine("p"))
	if err != nil {
		panic(err)
	}
	os := NewOS(NewNativeCPU(h.Spawn("t")))
	os.MarkBooted()
	return &propFixture{k: k, os: os}
}

type propFixture struct {
	k  *sim.Kernel
	os *OS
}
