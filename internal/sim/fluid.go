package sim

import (
	"fmt"
	"math"
)

// WorkTracker models a fixed quantity of work draining at a
// piecewise-constant rate — the fluid approximation shared by the CPU,
// disk, and network models. Work is in abstract units (CPU-seconds,
// bytes); rate is units per virtual second. The tracker schedules a
// kernel event for the completion instant and reschedules it whenever
// SetRate changes the drain rate.
type WorkTracker struct {
	k         *Kernel
	remaining float64
	rate      float64
	since     Time    // when remaining/rate were last reconciled
	done      func()  // invoked exactly once at completion
	pending   EventID // completion event, if one is scheduled
	finished  bool
	consumed  float64
	// completeFn is w.complete bound once at construction; SetRate runs on
	// every scheduler rebalance, and minting a fresh method-value closure
	// there dominated the tracker's allocation profile.
	completeFn func()
}

// NewWorkTracker creates a tracker for total units of work, initially at
// rate zero (stalled). done runs exactly once, at the instant the work
// completes. total must be positive.
func NewWorkTracker(k *Kernel, total float64, done func()) *WorkTracker {
	if total <= 0 {
		panic(fmt.Sprintf("sim: WorkTracker with non-positive work %v", total))
	}
	w := &WorkTracker{k: k, remaining: total, since: k.Now(), done: done}
	w.completeFn = w.complete
	return w
}

// Remaining returns the work left at the current virtual time.
func (w *WorkTracker) Remaining() float64 {
	w.reconcile()
	return w.remaining
}

// Consumed returns the work completed so far at the current virtual time.
func (w *WorkTracker) Consumed() float64 {
	w.reconcile()
	return w.consumed
}

// Finished reports whether the work has completed.
func (w *WorkTracker) Finished() bool { return w.finished }

// Rate returns the current drain rate.
func (w *WorkTracker) Rate() float64 { return w.rate }

// reconcile charges the elapsed interval at the current rate.
func (w *WorkTracker) reconcile() {
	now := w.k.Now()
	if w.finished || now == w.since {
		w.since = now
		return
	}
	drained := w.rate * now.Sub(w.since).Seconds()
	if drained > w.remaining {
		drained = w.remaining
	}
	w.remaining -= drained
	w.consumed += drained
	w.since = now
}

// SetRate changes the drain rate effective immediately. A rate of zero
// stalls the work. Negative rates panic.
func (w *WorkTracker) SetRate(rate float64) {
	if rate < 0 {
		panic(fmt.Sprintf("sim: WorkTracker rate %v < 0", rate))
	}
	w.reconcile()
	if w.finished {
		return
	}
	w.rate = rate
	w.k.Cancel(w.pending)
	w.pending = EventID{}
	if rate <= 0 {
		return
	}
	eta := DurationOf(w.remaining / rate)
	if eta < 0 {
		eta = 0
	}
	w.pending = w.k.After(eta, w.completeFn)
}

// Abort cancels the work without running the completion callback.
func (w *WorkTracker) Abort() {
	w.reconcile()
	if w.finished {
		return
	}
	w.finished = true
	w.k.Cancel(w.pending)
	w.pending = EventID{}
}

func (w *WorkTracker) complete() {
	w.reconcile()
	if w.finished {
		return
	}
	// Guard against floating-point residue: by construction the event
	// fires at (or a microsecond after) the analytic completion time.
	w.consumed += w.remaining
	w.remaining = 0
	w.finished = true
	w.pending = EventID{}
	if w.done != nil {
		w.done()
	}
}

// Stat accumulates running mean/stddev/min/max of float64 samples using
// Welford's algorithm. The zero value is ready to use. Stat backs the
// "mean ± stddev over N samples" rows reported throughout the paper's
// evaluation (Figure 1, Table 2).
type Stat struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds a sample into the statistic.
func (s *Stat) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of samples folded in.
func (s *Stat) N() int { return s.n }

// Mean returns the sample mean (zero before any samples).
func (s *Stat) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Stat) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the unbiased sample standard deviation.
func (s *Stat) Stddev() float64 {
	v := s.Var()
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest sample (zero before any samples).
func (s *Stat) Min() float64 { return s.min }

// Max returns the largest sample (zero before any samples).
func (s *Stat) Max() float64 { return s.max }
