package sim

import "testing"

// BenchmarkKernelDispatch measures raw event throughput of the
// simulation core — the budget every higher-level model spends from.
func BenchmarkKernelDispatch(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < b.N {
			k.After(1, fire)
		}
	}
	k.After(1, fire)
	b.ResetTimer()
	k.Run()
}

// BenchmarkKernelScheduleCancel measures churn: schedule + cancel pairs,
// the pattern WorkTracker rate changes produce.
func BenchmarkKernelScheduleCancel(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := k.At(Time(i+1), nil)
		k.Cancel(id)
	}
}

// BenchmarkKernelCancelReschedule measures the cancel-then-reschedule
// pattern against a pool of live events — what WorkTracker produces on a
// contended host. Lazy deletion makes the cancel O(1) instead of a heap
// removal, and the freelist makes the reschedule allocation-free.
func BenchmarkKernelCancelReschedule(b *testing.B) {
	k := NewKernel(1)
	const live = 64
	ids := make([]EventID, live)
	for i := range ids {
		ids[i] = k.At(Time((i+1)*1000), nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % live
		k.Cancel(ids[slot])
		ids[slot] = k.At(Time((slot+1)*1000), nil)
	}
}

// BenchmarkWorkTrackerRateChanges measures the fluid model under
// frequent reallocation (the hot path of a contended host).
func BenchmarkWorkTrackerRateChanges(b *testing.B) {
	k := NewKernel(1)
	w := NewWorkTracker(k, 1e12, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.SetRate(float64(i%7) + 1)
	}
}

// BenchmarkRNG measures the deterministic generator.
func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
