package sim_test

import (
	"fmt"

	"vmgrid/internal/sim"
)

// A kernel dispatches events in virtual-time order; the clock advances
// only when events fire, so simulated hours cost real microseconds.
func ExampleKernel() {
	k := sim.NewKernel(1)
	k.After(2*sim.Hour, func() {
		fmt.Printf("backup at %v\n", k.Now())
	})
	k.After(30*sim.Second, func() {
		fmt.Printf("heartbeat at %v\n", k.Now())
	})
	end := k.Run()
	fmt.Printf("simulation ended at %v\n", end)
	// Output:
	// heartbeat at t=30.000000s
	// backup at t=7200.000000s
	// simulation ended at t=7200.000000s
}

// A WorkTracker drains a fixed amount of work at a piecewise-constant
// rate — the fluid model behind every CPU, disk, and wire in vmgrid.
func ExampleWorkTracker() {
	k := sim.NewKernel(1)
	job := sim.NewWorkTracker(k, 10, func() {
		fmt.Printf("done at %v\n", k.Now())
	})
	job.SetRate(1) // 1 unit/s
	// Halfway through, the machine gets twice as fast.
	k.At(sim.Time(5*sim.Second), func() { job.SetRate(2) })
	k.Run()
	// Output:
	// done at t=7.500000s
}
