package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). Every source of randomness in a
// simulation flows from the kernel's RNG so experiments are reproducible
// from their seed alone. RNG is not safe for concurrent use, matching the
// single-threaded kernel.
type RNG struct {
	s [4]uint64
	// spare holds a cached normal variate from the Box-Muller pair.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expands the single word into four non-zero state words.
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Split derives an independent generator from r, advancing r. Use it to
// give subsystems their own streams without coupling their draw order.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform variate in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normal variate with the given mean and standard
// deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return mean + stddev*u*m
}

// Pareto returns a Pareto variate with the given scale (minimum) and shape
// alpha. Heavy-tailed draws like these model bursty host load.
func (r *RNG) Pareto(scale, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return scale / math.Pow(u, 1/alpha)
}

// Jitter returns base scaled by a uniform factor in [1-frac, 1+frac].
func (r *RNG) Jitter(base float64, frac float64) float64 {
	return base * r.Uniform(1-frac, 1+frac)
}
