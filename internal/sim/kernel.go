// Package sim provides the discrete-event simulation kernel on which the
// vmgrid hardware, operating-system, network, and middleware models run.
//
// All simulated components share a single Kernel, which owns the virtual
// clock and a priority queue of pending events. Virtual time is expressed
// as Time (microseconds); it advances only when the kernel dispatches the
// next event, so simulations are deterministic and run as fast as the host
// machine allows regardless of how many simulated seconds they cover.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in microseconds since the start of the
// simulation. It is deliberately not time.Time: simulated experiments must
// never consult the wall clock.
type Time int64

// Duration is a span of virtual time, in microseconds.
type Duration int64

// Common durations, mirroring the time package for readability.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
	Hour        Duration = 60 * Minute
)

// Seconds converts d to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts d to a standard library time.Duration for display purposes.
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Microsecond }

// String renders the duration using the standard library notation.
func (d Duration) String() string { return d.Std().String() }

// DurationOf converts floating-point seconds to a Duration, rounding to the
// nearest microsecond.
func DurationOf(seconds float64) Duration {
	return Duration(math.Round(seconds * float64(Second)))
}

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

// Seconds converts t to floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("t=%.6fs", t.Seconds()) }

// ErrStalled is returned by RunUntil when the event queue drains before the
// requested time is reached. Callers that expect an open-ended simulation
// can match it with errors.Is.
var ErrStalled = errors.New("sim: event queue drained before deadline")

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant so dispatch order is deterministic (FIFO per instant).
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // position in the heap, maintained by heap.Interface
}

// EventID identifies a scheduled event so it can be canceled. The zero
// EventID is invalid.
type EventID struct{ ev *event }

// Valid reports whether the id refers to a scheduled (possibly already
// fired) event.
func (id EventID) Valid() bool { return id.ev != nil }

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Kernel is the discrete-event simulation core: a virtual clock plus an
// ordered queue of pending events. A Kernel is not safe for concurrent use;
// a simulation is a single-threaded deterministic program by design.
type Kernel struct {
	now        Time
	queue      eventQueue
	seq        uint64
	rng        *RNG
	dispatched uint64
}

// NewKernel returns a kernel with the clock at zero and randomness seeded
// from seed. The same seed always produces the same simulation.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random number generator.
func (k *Kernel) RNG() *RNG { return k.rng }

// Pending returns the number of events waiting to be dispatched.
func (k *Kernel) Pending() int { return len(k.queue) }

// Dispatched returns the total number of events executed so far.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past (before Now) panics: it is always a simulation bug, never a
// recoverable condition.
func (k *Kernel) At(at Time, fn func()) EventID {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v, before now %v", at, k.now))
	}
	ev := &event{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return EventID{ev: ev}
}

// After schedules fn to run d after the current time. Negative d panics.
func (k *Kernel) After(d Duration, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event %v in the past", d))
	}
	return k.At(k.now.Add(d), fn)
}

// Cancel prevents a scheduled event from firing. Canceling an event that
// already fired (or an invalid id) is a no-op so callers can cancel
// unconditionally during teardown.
func (k *Kernel) Cancel(id EventID) {
	if id.ev == nil || id.ev.canceled {
		return
	}
	id.ev.canceled = true
	if id.ev.index >= 0 {
		heap.Remove(&k.queue, id.ev.index)
	}
}

// step dispatches the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was dispatched.
func (k *Kernel) step() bool {
	for len(k.queue) > 0 {
		ev := heap.Pop(&k.queue).(*event)
		if ev.canceled {
			continue
		}
		k.now = ev.at
		k.dispatched++
		if ev.fn != nil {
			ev.fn()
		}
		return true
	}
	return false
}

// Run dispatches events until the queue is empty and returns the final
// virtual time.
func (k *Kernel) Run() Time {
	for k.step() {
	}
	return k.now
}

// RunUntil dispatches events until the virtual clock reaches deadline.
// Events scheduled exactly at the deadline are dispatched. If the queue
// drains early the clock stays at the last event time and ErrStalled is
// returned.
func (k *Kernel) RunUntil(deadline Time) error {
	for {
		if len(k.queue) == 0 {
			if k.now < deadline {
				k.now = deadline
				return ErrStalled
			}
			return nil
		}
		next := k.queue[0]
		if next.at > deadline {
			k.now = deadline
			return nil
		}
		k.step()
	}
}

// RunFor advances the simulation by d virtual time. See RunUntil.
func (k *Kernel) RunFor(d Duration) error { return k.RunUntil(k.now.Add(d)) }
