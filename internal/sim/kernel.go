// Package sim provides the discrete-event simulation kernel on which the
// vmgrid hardware, operating-system, network, and middleware models run.
//
// All simulated components share a single Kernel, which owns the virtual
// clock and a priority queue of pending events. Virtual time is expressed
// as Time (microseconds); it advances only when the kernel dispatches the
// next event, so simulations are deterministic and run as fast as the host
// machine allows regardless of how many simulated seconds they cover.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in microseconds since the start of the
// simulation. It is deliberately not time.Time: simulated experiments must
// never consult the wall clock.
type Time int64

// Duration is a span of virtual time, in microseconds.
type Duration int64

// Common durations, mirroring the time package for readability.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
	Hour        Duration = 60 * Minute
)

// Seconds converts d to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts d to a standard library time.Duration for display purposes.
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Microsecond }

// String renders the duration using the standard library notation.
func (d Duration) String() string { return d.Std().String() }

// DurationOf converts floating-point seconds to a Duration, rounding to the
// nearest microsecond.
func DurationOf(seconds float64) Duration {
	return Duration(math.Round(seconds * float64(Second)))
}

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

// Seconds converts t to floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("t=%.6fs", t.Seconds()) }

// ErrStalled is returned by RunUntil when the event queue drains before the
// requested time is reached. Callers that expect an open-ended simulation
// can match it with errors.Is.
var ErrStalled = errors.New("sim: event queue drained before deadline")

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant so dispatch order is deterministic (FIFO per instant).
// Events are recycled through the kernel's freelist; gen distinguishes the
// current occupant from stale EventIDs that refer to a previous use.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	gen      uint64
	owner    *Kernel
	canceled bool
}

// EventID identifies a scheduled event so it can be canceled. The zero
// EventID is invalid. An EventID stays safe to cancel after the event has
// fired or been recycled: the generation stamp no longer matches, so the
// cancel is a no-op rather than a hit on an unrelated event.
type EventID struct {
	ev  *event
	gen uint64
}

// Valid reports whether the id refers to a scheduled (possibly already
// fired) event.
func (id EventID) Valid() bool { return id.ev != nil }

// Kernel is the discrete-event simulation core: a virtual clock plus an
// ordered queue of pending events. A Kernel is not safe for concurrent use;
// a simulation is a single-threaded deterministic program by design.
// Callers that want parallelism run one Kernel per goroutine (see
// internal/experiments' sample runner) — nothing here is shared.
type Kernel struct {
	now        Time
	queue      []*event // binary min-heap on (at, seq)
	seq        uint64
	rng        *RNG
	dispatched uint64
	live       int      // scheduled events that are neither canceled nor fired
	ncanceled  int      // canceled events still occupying heap slots
	free       []*event // recycled events; single-threaded, so no sync.Pool
}

// initialQueueCap pre-sizes the event heap and freelist: even small models
// (a host, a VM, a few trackers) keep tens of events in flight, and growing
// the backing array during the hot loop shows up in profiles.
const initialQueueCap = 128

// NewKernel returns a kernel with the clock at zero and randomness seeded
// from seed. The same seed always produces the same simulation.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{
		rng:   NewRNG(seed),
		queue: make([]*event, 0, initialQueueCap),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random number generator.
func (k *Kernel) RNG() *RNG { return k.rng }

// Pending returns the number of events waiting to be dispatched. Canceled
// events still occupying queue slots are not counted.
func (k *Kernel) Pending() int { return k.live }

// Dispatched returns the total number of events executed so far.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// alloc takes an event from the freelist, or makes one. The returned event
// keeps the generation it was retired with; At stamps the EventID with it.
func (k *Kernel) alloc() *event {
	if n := len(k.free); n > 0 {
		ev := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return ev
	}
	return &event{owner: k}
}

// recycle retires an event (fired or discarded after cancel) to the
// freelist. Bumping gen invalidates every outstanding EventID for it, and
// dropping fn releases the closure for GC.
func (k *Kernel) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.canceled = false
	k.free = append(k.free, ev)
}

// eventLess orders the heap by time, then schedule order.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// up restores the heap property from leaf i toward the root.
func (k *Kernel) up(i int) {
	q := k.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(ev, q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
}

// down restores the heap property from node i toward the leaves.
func (k *Kernel) down(i int) {
	q := k.queue
	n := len(q)
	ev := q[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventLess(q[r], q[child]) {
			child = r
		}
		if !eventLess(q[child], ev) {
			break
		}
		q[i] = q[child]
		i = child
	}
	q[i] = ev
}

// popMin removes and returns the heap root.
func (k *Kernel) popMin() *event {
	q := k.queue
	n := len(q) - 1
	ev := q[0]
	q[0] = q[n]
	q[n] = nil
	k.queue = q[:n]
	if n > 0 {
		k.down(0)
	}
	return ev
}

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past (before Now) panics: it is always a simulation bug, never a
// recoverable condition.
func (k *Kernel) At(at Time, fn func()) EventID {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v, before now %v", at, k.now))
	}
	ev := k.alloc()
	ev.at = at
	ev.seq = k.seq
	ev.fn = fn
	k.seq++
	k.live++
	k.queue = append(k.queue, ev)
	k.up(len(k.queue) - 1)
	return EventID{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time. Negative d panics.
func (k *Kernel) After(d Duration, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event %v in the past", d))
	}
	return k.At(k.now.Add(d), fn)
}

// Cancel prevents a scheduled event from firing. Canceling an event that
// already fired, an invalid id, a stale id whose event was recycled, or an
// id minted by a different kernel is a no-op, so callers can cancel
// unconditionally during teardown. Cancel is O(1): the event is marked and
// lazily dropped when it surfaces at the head of the queue (the common
// cancel-then-reschedule pattern never pays heap-removal churn).
func (k *Kernel) Cancel(id EventID) {
	ev := id.ev
	if ev == nil || ev.owner != k || ev.gen != id.gen || ev.canceled {
		return
	}
	ev.canceled = true
	k.live--
	k.ncanceled++
	// If canceled tombstones dominate the heap, sweep them out so memory
	// and per-op log factors track the live event count, not churn.
	if k.ncanceled > 64 && k.ncanceled > len(k.queue)/2 {
		k.compact()
	}
}

// compact removes all canceled events from the heap in one pass and
// re-heapifies. Amortized O(1) per cancel given the trigger threshold.
func (k *Kernel) compact() {
	q := k.queue[:0]
	for _, ev := range k.queue {
		if ev.canceled {
			k.recycle(ev)
		} else {
			q = append(q, ev)
		}
	}
	for i := len(q); i < len(k.queue); i++ {
		k.queue[i] = nil
	}
	k.queue = q
	k.ncanceled = 0
	for i := len(q)/2 - 1; i >= 0; i-- {
		k.down(i)
	}
}

// skimCanceled discards canceled events sitting at the head of the queue so
// the root, if any, is live.
func (k *Kernel) skimCanceled() {
	for len(k.queue) > 0 && k.queue[0].canceled {
		k.ncanceled--
		k.recycle(k.popMin())
	}
}

// step dispatches the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was dispatched.
func (k *Kernel) step() bool {
	for len(k.queue) > 0 {
		ev := k.popMin()
		if ev.canceled {
			k.ncanceled--
			k.recycle(ev)
			continue
		}
		k.now = ev.at
		k.dispatched++
		k.live--
		fn := ev.fn
		// Recycle before running fn: a cancel of this id during fn sees a
		// stale generation, and fn is free to schedule into the slot.
		k.recycle(ev)
		if fn != nil {
			fn()
		}
		return true
	}
	return false
}

// Run dispatches events until the queue is empty and returns the final
// virtual time.
func (k *Kernel) Run() Time {
	for k.step() {
	}
	return k.now
}

// RunUntil dispatches events until the virtual clock reaches deadline.
// Events scheduled exactly at the deadline are dispatched. If the queue
// drains early the clock stays at the last event time and ErrStalled is
// returned.
func (k *Kernel) RunUntil(deadline Time) error {
	for {
		k.skimCanceled()
		if len(k.queue) == 0 {
			if k.now < deadline {
				k.now = deadline
				return ErrStalled
			}
			return nil
		}
		if k.queue[0].at > deadline {
			k.now = deadline
			return nil
		}
		k.step()
	}
}

// RunFor advances the simulation by d virtual time. See RunUntil.
func (k *Kernel) RunFor(d Duration) error { return k.RunUntil(k.now.Add(d)) }
