package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWorkTrackerConstantRate(t *testing.T) {
	k := NewKernel(1)
	var doneAt Time = -1
	w := NewWorkTracker(k, 10, func() { doneAt = k.Now() })
	w.SetRate(2) // 10 units at 2/s -> 5s
	k.Run()
	if doneAt != Time(5*Second) {
		t.Fatalf("completion at %v, want 5s", doneAt)
	}
	if !w.Finished() || w.Remaining() != 0 {
		t.Errorf("Finished=%v Remaining=%v", w.Finished(), w.Remaining())
	}
	if w.Consumed() != 10 {
		t.Errorf("Consumed = %v, want 10", w.Consumed())
	}
}

func TestWorkTrackerRateChange(t *testing.T) {
	k := NewKernel(1)
	var doneAt Time = -1
	w := NewWorkTracker(k, 10, func() { doneAt = k.Now() })
	w.SetRate(1)
	// After 4s, 6 units remain; doubling the rate finishes 3s later.
	k.At(Time(4*Second), func() { w.SetRate(2) })
	k.Run()
	if doneAt != Time(7*Second) {
		t.Fatalf("completion at %v, want 7s", doneAt)
	}
}

func TestWorkTrackerStall(t *testing.T) {
	k := NewKernel(1)
	done := false
	w := NewWorkTracker(k, 10, func() { done = true })
	w.SetRate(1)
	k.At(Time(3*Second), func() { w.SetRate(0) })
	if err := k.RunUntil(Time(100 * Second)); err != nil && !done {
		// Stalling is expected; the queue drains with work outstanding.
	}
	if done {
		t.Fatal("stalled work completed")
	}
	if got := w.Remaining(); math.Abs(got-7) > 1e-9 {
		t.Errorf("Remaining = %v, want 7", got)
	}
	// Resume and finish.
	w.SetRate(7)
	k.Run()
	if !done {
		t.Error("work did not complete after resume")
	}
}

func TestWorkTrackerAbort(t *testing.T) {
	k := NewKernel(1)
	done := false
	w := NewWorkTracker(k, 10, func() { done = true })
	w.SetRate(1)
	k.At(Time(2*Second), func() { w.Abort() })
	k.Run()
	if done {
		t.Error("aborted work ran completion callback")
	}
	if !w.Finished() {
		t.Error("aborted work not marked finished")
	}
	// SetRate after abort is a no-op.
	w.SetRate(5)
	k.Run()
	if done {
		t.Error("abort then SetRate resurrected the work")
	}
}

func TestWorkTrackerZeroWorkPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("zero work did not panic")
		}
	}()
	NewWorkTracker(k, 0, nil)
}

func TestWorkTrackerNegativeRatePanics(t *testing.T) {
	k := NewKernel(1)
	w := NewWorkTracker(k, 1, nil)
	defer func() {
		if recover() == nil {
			t.Error("negative rate did not panic")
		}
	}()
	w.SetRate(-1)
}

// Property: completion time is invariant under splitting the run into an
// arbitrary prefix at one rate plus remainder at another, when total
// area-under-rate matches.
func TestWorkTrackerPiecewiseProperty(t *testing.T) {
	prop := func(workRaw, r1Raw, r2Raw uint8, switchRaw uint16) bool {
		work := float64(workRaw%50) + 1
		r1 := float64(r1Raw%9) + 1
		r2 := float64(r2Raw%9) + 1
		switchAfter := Duration(switchRaw%5000+1) * Millisecond

		k := NewKernel(3)
		var doneAt Time = -1
		w := NewWorkTracker(k, work, func() { doneAt = k.Now() })
		w.SetRate(r1)
		k.At(Time(switchAfter), func() {
			if !w.Finished() {
				w.SetRate(r2)
			}
		})
		k.Run()
		if doneAt < 0 {
			return false
		}
		// Analytic completion time.
		var want float64
		d1 := switchAfter.Seconds()
		if work <= r1*d1 {
			want = work / r1
		} else {
			want = d1 + (work-r1*d1)/r2
		}
		return math.Abs(doneAt.Seconds()-want) < 2e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStatBasics(t *testing.T) {
	var s Stat
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population stddev of this classic set is 2; sample stddev is
	// sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", s.Stddev(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestStatSingleSample(t *testing.T) {
	var s Stat
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Stddev() != 0 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Errorf("single-sample stat wrong: %+v", s)
	}
}

func TestStatMatchesDirectComputation(t *testing.T) {
	prop := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var s Stat
		var sum float64
		for _, v := range raw {
			s.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, v := range raw {
			d := float64(v) - mean
			m2 += d * d
		}
		wantVar := m2 / float64(len(raw)-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-wantVar) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
