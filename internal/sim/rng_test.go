package sim

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children produced the same first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(12)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d distinct values in 1000 draws", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(3.0)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.05 {
		t.Errorf("Exp(3) sample mean = %v, want ~3", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(14)
	const n = 200000
	var s Stat
	for i := 0; i < n; i++ {
		s.Add(r.Normal(10, 2))
	}
	if math.Abs(s.Mean()-10) > 0.05 {
		t.Errorf("Normal mean = %v, want ~10", s.Mean())
	}
	if math.Abs(s.Stddev()-2) > 0.05 {
		t.Errorf("Normal stddev = %v, want ~2", s.Stddev())
	}
}

func TestParetoScaleIsMinimum(t *testing.T) {
	r := NewRNG(15)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2.0, 1.5); v < 2.0 {
			t.Fatalf("Pareto(2, 1.5) = %v below scale", v)
		}
	}
}

func TestUniformBounds(t *testing.T) {
	r := NewRNG(16)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform(-3,7) = %v", v)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 10000; i++ {
		v := r.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("Jitter(100, 0.1) = %v out of [90,110]", v)
		}
	}
}
