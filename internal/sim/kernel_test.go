package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel(1)
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
}

func TestKernelDispatchOrder(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	end := k.Run()
	if end != 30 {
		t.Errorf("Run() end time = %v, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", got, want)
		}
	}
}

func TestKernelFIFOAtSameInstant(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
	}
}

func TestKernelClockAdvances(t *testing.T) {
	k := NewKernel(1)
	var at1, at2 Time
	k.After(100, func() {
		at1 = k.Now()
		k.After(50, func() { at2 = k.Now() })
	})
	k.Run()
	if at1 != 100 || at2 != 150 {
		t.Fatalf("event times = %v, %v; want 100, 150", at1, at2)
	}
}

func TestKernelSchedulePastPanics(t *testing.T) {
	k := NewKernel(1)
	k.After(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	k.Run()
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	id := k.After(10, func() { fired = true })
	k.Cancel(id)
	k.Run()
	if fired {
		t.Error("canceled event fired")
	}
	// Double-cancel and zero-id cancel are no-ops.
	k.Cancel(id)
	k.Cancel(EventID{})
}

func TestKernelCancelOneOfMany(t *testing.T) {
	k := NewKernel(1)
	var got []int
	var ids []EventID
	for i := 0; i < 5; i++ {
		i := i
		ids = append(ids, k.At(Time(10*(i+1)), func() { got = append(got, i) }))
	}
	k.Cancel(ids[2])
	k.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestKernelCancelStaleIDAfterRecycle(t *testing.T) {
	// Events are recycled through a freelist. A stale EventID — one whose
	// event already fired or was canceled — must never cancel the slot's
	// next occupant, even under heavy recycling.
	k := NewKernel(1)
	fired := false
	idA := k.After(10, func() {})
	k.Cancel(idA)
	k.Run() // drains the canceled event; its slot returns to the freelist
	idB := k.After(10, func() { fired = true })
	k.Cancel(idA) // stale: generation no longer matches
	k.Cancel(idA) // double-cancel of a stale id, still a no-op
	k.Run()
	if !fired {
		t.Error("stale EventID canceled a recycled event")
	}
	_ = idB
}

func TestKernelCancelAfterFire(t *testing.T) {
	k := NewKernel(1)
	var id EventID
	id = k.After(5, func() {
		// Canceling the currently-firing event from inside its own
		// callback must be a no-op (the id is already stale).
		k.Cancel(id)
	})
	k.Run()
	// The slot is recycled; a new event must be schedulable and fire.
	fired := false
	k.After(1, func() { fired = true })
	k.Cancel(id) // stale again
	k.Run()
	if !fired {
		t.Error("cancel-after-fire leaked into a later event")
	}
}

func TestKernelCancelForeignKernelNoOp(t *testing.T) {
	// An EventID minted by one kernel must not touch another kernel's
	// queue, even though recycled events make pointer reuse possible.
	a, b := NewKernel(1), NewKernel(2)
	id := a.After(10, func() {})
	b.After(30, func() {})
	before := b.Pending()
	b.Cancel(id) // id belongs to a, not b
	if b.Pending() != before {
		t.Error("foreign cancel changed Pending")
	}
	a.After(20, func() {})
	a.Cancel(EventID{}) // zero id
	a.Run()
	if a.Dispatched() != 2 {
		t.Errorf("Dispatched = %d, want 2 (foreign cancel must not kill a's event)", a.Dispatched())
	}
}

func TestKernelPendingUnderLazyDelete(t *testing.T) {
	// Cancel is lazy (tombstones stay queued until they surface or are
	// compacted); Pending must count live events only, and double-cancel
	// must not double-decrement.
	k := NewKernel(1)
	var ids []EventID
	for i := 0; i < 10; i++ {
		ids = append(ids, k.At(Time(10*(i+1)), func() {}))
	}
	if k.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", k.Pending())
	}
	k.Cancel(ids[3])
	k.Cancel(ids[7])
	k.Cancel(ids[3]) // double-cancel
	if k.Pending() != 8 {
		t.Fatalf("Pending = %d after cancels, want 8", k.Pending())
	}
	if err := k.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	// Events at 10,20,30,50 fired (40 canceled); 60..100 remain minus 80.
	if k.Pending() != 4 {
		t.Fatalf("Pending = %d after partial run, want 4", k.Pending())
	}
	k.Run()
	if k.Pending() != 0 || k.Dispatched() != 8 {
		t.Fatalf("Pending = %d, Dispatched = %d; want 0, 8", k.Pending(), k.Dispatched())
	}
}

func TestKernelCancelCompaction(t *testing.T) {
	// Mass cancellation must not leave the queue full of tombstones:
	// schedule-and-cancel churn keeps memory bounded via compaction, and
	// the surviving events still fire in order.
	k := NewKernel(1)
	var keep []int
	for round := 0; round < 1000; round++ {
		id := k.At(Time(round*10+1), nil)
		k.Cancel(id)
	}
	for i := 0; i < 5; i++ {
		i := i
		k.At(Time(100_000+i), func() { keep = append(keep, i) })
	}
	if k.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", k.Pending())
	}
	k.Run()
	for i, v := range keep {
		if v != i {
			t.Fatalf("survivors fired out of order: %v", keep)
		}
	}
}

func TestRunUntilAllCanceledStalls(t *testing.T) {
	// RunUntil must not treat a queue of tombstones as pending work.
	k := NewKernel(1)
	id := k.At(10, func() {})
	k.Cancel(id)
	if err := k.RunUntil(100); !errors.Is(err, ErrStalled) {
		t.Fatalf("RunUntil = %v, want ErrStalled", err)
	}
	if k.Now() != 100 {
		t.Errorf("Now() = %v, want 100", k.Now())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.At(10, func() { fired++ })
	k.At(20, func() { fired++ })
	k.At(30, func() { fired++ })
	if err := k.RunUntil(20); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (deadline inclusive)", fired)
	}
	if k.Now() != 20 {
		t.Errorf("Now() = %v, want 20", k.Now())
	}
	k.Run()
	if fired != 3 {
		t.Errorf("fired = %d after Run, want 3", fired)
	}
}

func TestRunUntilStalled(t *testing.T) {
	k := NewKernel(1)
	k.At(10, func() {})
	err := k.RunUntil(100)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("RunUntil past queue = %v, want ErrStalled", err)
	}
	if k.Now() != 100 {
		t.Errorf("Now() = %v, want clock advanced to deadline 100", k.Now())
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	k := NewKernel(1)
	k.At(5, func() {})
	if err := k.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	k.At(12, func() {})
	// The queue drains at t=12, so advancing to t=15 reports a stall but
	// still moves the clock to the deadline.
	if err := k.RunFor(10); !errors.Is(err, ErrStalled) {
		t.Fatalf("RunFor = %v, want ErrStalled", err)
	}
	if k.Now() != 15 {
		t.Errorf("Now() = %v, want 15", k.Now())
	}
}

func TestDurationConversions(t *testing.T) {
	tests := []struct {
		seconds float64
		want    Duration
	}{
		{0, 0},
		{1, Second},
		{0.001, Millisecond},
		{1.5, 1500 * Millisecond},
		{0.0000005, 1}, // rounds to nearest microsecond
	}
	for _, tt := range tests {
		if got := DurationOf(tt.seconds); got != tt.want {
			t.Errorf("DurationOf(%v) = %v, want %v", tt.seconds, got, tt.want)
		}
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds() = %v, want 2.5", got)
	}
	if got := Time(0).Add(Minute); got != Time(60*Second) {
		t.Errorf("Add = %v", got)
	}
	if got := Time(90 * Second).Sub(Time(30 * Second)); got != Minute {
		t.Errorf("Sub = %v", got)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		k := NewKernel(42)
		var draws []uint64
		var step func()
		step = func() {
			draws = append(draws, k.RNG().Uint64())
			if len(draws) < 100 {
				k.After(Duration(k.RNG().Intn(1000)+1), step)
			}
		}
		k.After(1, step)
		k.Run()
		return draws
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: with any batch of non-negative offsets, Run dispatches all
// events in non-decreasing time order and ends at the max offset.
func TestKernelOrderingProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		k := NewKernel(7)
		var seen []Time
		var max Time
		for _, off := range offsets {
			at := Time(off)
			if at > max {
				max = at
			}
			k.At(at, func() { seen = append(seen, k.Now()) })
		}
		end := k.Run()
		if end != max || len(seen) != len(offsets) {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
