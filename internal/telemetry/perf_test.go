package telemetry

import (
	"testing"

	"vmgrid/internal/sim"
)

// TestRecordExistingSeriesZeroAllocs: the scrape hot path — recording a
// sample to an already-interned series — allocates nothing, for both
// the unlabeled and the labeled (canonical-key scratch render + zero-copy
// lookup) paths.
func TestRecordExistingSeriesZeroAllocs(t *testing.T) {
	db, err := NewDB(64)
	if err != nil {
		t.Fatal(err)
	}
	labels := []Label{L("node", "c1"), L("session", "s9")}
	db.Record(0, "node.load", nil, 1)
	db.Record(0, "node.load", labels, 1)

	at := sim.Time(1)
	unlabeled := testing.AllocsPerRun(200, func() {
		db.Record(at, "node.load", nil, 2.5)
		at++
	})
	if unlabeled != 0 {
		t.Errorf("unlabeled Record allocates %.1f objects/op, want 0", unlabeled)
	}
	labeled := testing.AllocsPerRun(200, func() {
		db.Record(at, "node.load", labels, 2.5)
		at++
	})
	if labeled != 0 {
		t.Errorf("labeled Record on an existing series allocates %.1f objects/op, want 0", labeled)
	}
	if db.Len() != 2 {
		t.Fatalf("series count = %d, want 2 (no accidental re-interning)", db.Len())
	}
}

// TestRecordUnsortedLabelsStillCanonical: the zero-alloc fast path must
// not change keying — unsorted label sets land in the same series as
// their sorted spelling.
func TestRecordUnsortedLabelsStillCanonical(t *testing.T) {
	db, err := NewDB(8)
	if err != nil {
		t.Fatal(err)
	}
	db.Record(0, "m", []Label{L("b", "2"), L("a", "1")}, 1)
	db.Record(1, "m", []Label{L("a", "1"), L("b", "2")}, 2)
	if db.Len() != 1 {
		t.Fatalf("series count = %d, want 1", db.Len())
	}
	s := db.Lookup("m{a=1,b=2}")
	if s == nil {
		t.Fatal("canonical key not found")
	}
	if s.Len() != 2 {
		t.Errorf("samples = %d, want 2", s.Len())
	}
}

// BenchmarkTelemetryObserve measures the labeled observe path on an
// existing series: sort check, scratch key render, zero-copy lookup,
// ring append.
func BenchmarkTelemetryObserve(b *testing.B) {
	db, err := NewDB(512)
	if err != nil {
		b.Fatal(err)
	}
	labels := []Label{L("node", "c1"), L("session", "s9")}
	db.Record(0, "node.load", labels, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Record(sim.Time(i), "node.load", labels, float64(i))
	}
}
