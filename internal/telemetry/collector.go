package telemetry

import (
	"fmt"

	"vmgrid/internal/obs"
	"vmgrid/internal/sim"
)

// Config tunes a Collector. The zero value selects the defaults noted
// on each field.
type Config struct {
	// Interval is the scrape cadence when the collector self-ticks via
	// Start. Default 1 s (the RPS sensor cadence).
	Interval sim.Duration
	// History is the per-series ring capacity. Default 512.
	History int
	// Trace, when non-nil, receives alert firings as instant events on
	// an "alerts" track and counts them in the metrics registry, so
	// alerts land in the Chrome trace next to the spans they explain.
	Trace *obs.Tracer
}

func (c *Config) fill() {
	if c.Interval <= 0 {
		c.Interval = sim.Second
	}
	if c.History <= 0 {
		c.History = 512
	}
}

// Source is one scrape callback: read fabric state, record samples.
// Sources must only read simulation state — the collector promises that
// scraping never perturbs what it observes.
type Source func(r *Recorder)

// Recorder is the write handle a Source receives: every sample it
// records is stamped with the scrape instant.
type Recorder struct {
	db *DB
	at sim.Time
}

// At returns the scrape instant.
func (r *Recorder) At() sim.Time { return r.at }

// Record appends one sample.
func (r *Recorder) Record(name string, v float64, labels ...Label) {
	r.db.Record(r.at, name, labels, v)
}

// registryFeed is one attached obs registry, scraped by snapshot.
type registryFeed struct {
	src string
	reg *obs.Registry
}

// Collector owns the pipeline: registered sources and obs registries
// are scraped into the DB, then the rule engine evaluates. A nil
// Collector is the disabled state — every method is a nil-receiver
// no-op costing one pointer test.
//
// Scrapes run either manually (Scrape, for drivers that must keep the
// kernel's event queue drainable, like the wire server) or on a
// self-armed tick (Start, for experiments that bound the kernel with
// RunUntil horizons).
type Collector struct {
	k   *sim.Kernel
	cfg Config
	db  *DB

	sources []Source
	feeds   []registryFeed
	engine  *Engine

	running    bool
	next       sim.EventID
	scrapes    int
	lastScrape sim.Time
}

// NewCollector creates an enabled collector on the kernel's clock.
func NewCollector(k *sim.Kernel, cfg Config) (*Collector, error) {
	if k == nil {
		return nil, fmt.Errorf("telemetry: collector without a kernel")
	}
	cfg.fill()
	db, err := NewDB(cfg.History)
	if err != nil {
		return nil, err
	}
	c := &Collector{k: k, cfg: cfg, db: db, lastScrape: -1}
	c.engine = newEngine(c)
	return c, nil
}

// Enabled reports whether the collector records anything.
func (c *Collector) Enabled() bool { return c != nil }

// DB returns the backing time-series store (nil on a nil collector).
func (c *Collector) DB() *DB {
	if c == nil {
		return nil
	}
	return c.db
}

// Scrapes returns how many scrape rounds have run.
func (c *Collector) Scrapes() int {
	if c == nil {
		return 0
	}
	return c.scrapes
}

// Interval returns the configured scrape cadence.
func (c *Collector) Interval() sim.Duration {
	if c == nil {
		return 0
	}
	return c.cfg.Interval
}

// AddSource registers a scrape callback. Sources run in registration
// order on every scrape — registration order is part of the
// deterministic contract, so register sources in a fixed order.
func (c *Collector) AddSource(fn Source) {
	if c == nil || fn == nil {
		return
	}
	c.sources = append(c.sources, fn)
}

// AttachRegistry scrapes an obs metrics registry on every round:
// counters and gauges become series named after the instrument with a
// src label; histograms contribute <name>.count and <name>.mean_sec.
// Snapshot order is name-sorted, so the resulting series set is
// deterministic.
func (c *Collector) AttachRegistry(src string, reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	c.feeds = append(c.feeds, registryFeed{src: src, reg: reg})
}

// Observe records one unlabeled sample at the current sim time — the
// inline instrumentation hot path. On a nil collector this is a single
// pointer test.
func (c *Collector) Observe(name string, v float64) {
	if c == nil {
		return
	}
	c.db.Record(c.k.Now(), name, nil, v)
}

// Record is Observe with labels.
func (c *Collector) Record(name string, v float64, labels ...Label) {
	if c == nil {
		return
	}
	c.db.Record(c.k.Now(), name, labels, v)
}

// Scrape runs one collection round at the current instant: sources in
// registration order, then attached registries, then rule evaluation.
// A second Scrape at the same instant is a no-op, so drivers may call
// it after every operation without stacking duplicate samples.
func (c *Collector) Scrape() {
	if c == nil {
		return
	}
	now := c.k.Now()
	if c.scrapes > 0 && now == c.lastScrape {
		return
	}
	c.scrapes++
	c.lastScrape = now
	r := &Recorder{db: c.db, at: now}
	for _, src := range c.sources {
		src(r)
	}
	for _, f := range c.feeds {
		snap := f.reg.Snapshot()
		lbl := []Label{{Key: "src", Value: f.src}}
		for _, p := range snap.Counters {
			c.db.Record(now, p.Name, lbl, p.Value)
		}
		for _, p := range snap.Gauges {
			c.db.Record(now, p.Name, lbl, p.Value)
		}
		for _, p := range snap.Histograms {
			c.db.Record(now, p.Name+".count", lbl, float64(p.Count))
			c.db.Record(now, p.Name+".mean_sec", lbl, p.MeanSec)
		}
	}
	c.engine.eval(now)
}

// Start arms the self-ticking scrape loop (first scrape immediately).
// Self-ticking keeps the kernel's event queue non-empty forever, so it
// suits drivers that bound the simulation with RunUntil horizons; use
// manual Scrape where ErrStalled doubles as an idle detector.
func (c *Collector) Start() {
	if c == nil || c.running {
		return
	}
	c.running = true
	c.tick()
}

// Stop halts the self-ticking loop.
func (c *Collector) Stop() {
	if c == nil || !c.running {
		return
	}
	c.running = false
	c.k.Cancel(c.next)
	c.next = sim.EventID{}
}

func (c *Collector) tick() {
	if !c.running {
		return
	}
	c.Scrape()
	c.next = c.k.After(c.cfg.Interval, c.tick)
}

// AddRule parses and registers an alert rule (see the package grammar
// in rules.go). Rules evaluate after every scrape in registration
// order.
func (c *Collector) AddRule(name, expr string) error {
	if c == nil {
		return fmt.Errorf("telemetry: add rule %q on nil collector", name)
	}
	return c.engine.addRule(name, expr)
}

// Rules returns the registered rules in registration order.
func (c *Collector) Rules() []RuleInfo {
	if c == nil {
		return nil
	}
	return c.engine.rulesInfo()
}

// Firings returns every alert firing so far (resolved and active) in
// firing order.
func (c *Collector) Firings() []Firing {
	if c == nil {
		return nil
	}
	return append([]Firing(nil), c.engine.firings...)
}

// Active returns the currently-firing alerts in firing order.
func (c *Collector) Active() []Firing {
	if c == nil {
		return nil
	}
	var out []Firing
	for _, f := range c.engine.firings {
		if f.ResolvedAt < 0 {
			out = append(out, f)
		}
	}
	return out
}

// OnFire registers a hook invoked when an alert starts firing — the
// bridge to GIS soft state. Hooks run inside the scrape, in
// registration order.
func (c *Collector) OnFire(fn func(Firing)) {
	if c == nil || fn == nil {
		return
	}
	c.engine.onFire = append(c.engine.onFire, fn)
}

// OnResolve registers a hook invoked when a firing alert clears.
func (c *Collector) OnResolve(fn func(Firing)) {
	if c == nil || fn == nil {
		return
	}
	c.engine.onResolve = append(c.engine.onResolve, fn)
}
