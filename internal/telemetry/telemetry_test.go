package telemetry

import (
	"bytes"
	"testing"

	"vmgrid/internal/obs"
	"vmgrid/internal/sim"
)

func TestCanonicalKey(t *testing.T) {
	if got := canonicalKey("node.load", nil); got != "node.load" {
		t.Fatalf("bare key = %q", got)
	}
	got := canonicalKey("node.load", []Label{L("node", "c1"), L("zone", "a")})
	if got != "node.load{node=c1,zone=a}" {
		t.Fatalf("labeled key = %q", got)
	}
}

func TestSeriesRingEviction(t *testing.T) {
	db, err := NewDB(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		db.Record(sim.Time(i), "x", nil, float64(i))
	}
	s := db.Lookup("x")
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	pts := s.Points()
	for i, p := range pts {
		want := float64(6 + i)
		if p.V != want || p.At != sim.Time(6+i) {
			t.Fatalf("point %d = %+v, want {%d %g}", i, p, 6+i, want)
		}
	}
	if last := s.Last(); last.V != 9 {
		t.Fatalf("Last = %+v", last)
	}
}

func TestWindowAggregates(t *testing.T) {
	db, _ := NewDB(128)
	for i := 1; i <= 100; i++ {
		db.Record(sim.Time(i)*sim.Time(sim.Second), "v", nil, float64(i))
	}
	s := db.Lookup("v")

	a := s.Window(0)
	if a.Count != 100 || a.Min != 1 || a.Max != 100 || a.Last != 100 {
		t.Fatalf("full window = %+v", a)
	}
	if a.Mean != 50.5 {
		t.Fatalf("mean = %g", a.Mean)
	}
	if a.P99 != 99 { // nearest-rank ceil(0.99*100) = 99th value
		t.Fatalf("p99 = %g", a.P99)
	}

	// Sliding window: last 10 samples only.
	a = s.Window(sim.Time(91) * sim.Time(sim.Second))
	if a.Count != 10 || a.Min != 91 || a.Max != 100 {
		t.Fatalf("sliding window = %+v", a)
	}

	// Empty window.
	if a := s.Window(sim.Time(1000) * sim.Time(sim.Second)); a.Count != 0 {
		t.Fatalf("empty window = %+v", a)
	}
}

func TestRate(t *testing.T) {
	db, _ := NewDB(16)
	// Counter rising 5/s for 4 seconds.
	for i := 0; i <= 4; i++ {
		db.Record(sim.Time(i)*sim.Time(sim.Second), "c", nil, float64(5*i))
	}
	s := db.Lookup("c")
	if r := s.Rate(0); r != 5 {
		t.Fatalf("rate = %g, want 5", r)
	}
	// Single sample: no rate.
	db.Record(0, "one", nil, 1)
	if r := db.Lookup("one").Rate(0); r != 0 {
		t.Fatalf("single-sample rate = %g", r)
	}
}

func TestSelectSubsetMatch(t *testing.T) {
	db, _ := NewDB(8)
	db.Record(0, "load", []Label{L("node", "c1")}, 1)
	db.Record(0, "load", []Label{L("node", "c2")}, 2)
	db.Record(0, "load", []Label{L("node", "c1"), L("zone", "a")}, 3)
	db.Record(0, "other", nil, 4)

	all := db.Select("load", nil)
	if len(all) != 3 {
		t.Fatalf("Select all = %d series", len(all))
	}
	// Key order: ',' sorts before '}', so the two-label series leads.
	if all[0].Key() != "load{node=c1,zone=a}" || all[1].Key() != "load{node=c1}" || all[2].Key() != "load{node=c2}" {
		t.Fatalf("key order: %q, %q, %q", all[0].Key(), all[1].Key(), all[2].Key())
	}
	c1 := db.Select("load", []Label{L("node", "c1")})
	if len(c1) != 2 {
		t.Fatalf("Select node=c1 = %d series", len(c1))
	}
}

func TestLabelOrderInsensitive(t *testing.T) {
	db, _ := NewDB(8)
	db.Record(0, "x", []Label{L("b", "2"), L("a", "1")}, 1)
	db.Record(1, "x", []Label{L("a", "1"), L("b", "2")}, 2)
	if db.Len() != 1 {
		t.Fatalf("label order created %d series, want 1", db.Len())
	}
	if s := db.Lookup("x{a=1,b=2}"); s == nil || s.Len() != 2 {
		t.Fatalf("canonical lookup failed: %+v", s)
	}
}

func newTestCollector(t *testing.T, k *sim.Kernel, cfg Config) *Collector {
	t.Helper()
	c, err := NewCollector(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCollectorScrapeIdempotentPerInstant(t *testing.T) {
	k := sim.NewKernel(1)
	c := newTestCollector(t, k, Config{})
	calls := 0
	c.AddSource(func(r *Recorder) {
		calls++
		r.Record("s", float64(calls))
	})
	c.Scrape()
	c.Scrape() // same instant: no-op
	if calls != 1 || c.Scrapes() != 1 {
		t.Fatalf("calls = %d, scrapes = %d", calls, c.Scrapes())
	}
	k.After(sim.Second, func() { c.Scrape() })
	if err := k.RunUntil(sim.Time(0).Add(2 * sim.Second)); err != nil && err != sim.ErrStalled {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("calls after advance = %d", calls)
	}
}

func TestCollectorSelfTick(t *testing.T) {
	k := sim.NewKernel(1)
	c := newTestCollector(t, k, Config{Interval: sim.Second})
	v := 0.0
	c.AddSource(func(r *Recorder) { v++; r.Record("tick", v) })
	c.Start()
	if err := k.RunUntil(sim.Time(0).Add(5*sim.Second + sim.Millisecond)); err != nil && err != sim.ErrStalled {
		t.Fatal(err)
	}
	c.Stop()
	s := c.DB().Lookup("tick")
	if s == nil || s.Len() != 6 { // t=0,1,2,3,4,5
		t.Fatalf("ticks = %v", s)
	}
	// Stopped: no further events.
	if err := k.RunUntil(sim.Time(0).Add(10 * sim.Second)); err != sim.ErrStalled {
		t.Fatalf("RunUntil after Stop = %v, want ErrStalled", err)
	}
}

func TestAttachRegistry(t *testing.T) {
	k := sim.NewKernel(1)
	tr := obs.New(k)
	reg := tr.Metrics()
	reg.Counter("ops").Add(7)
	reg.Gauge("depth").Set(3)
	reg.Histogram("lat").Observe(2 * sim.Millisecond)

	c := newTestCollector(t, k, Config{})
	c.AttachRegistry("grid", reg)
	c.Scrape()

	if s := c.DB().Lookup("ops{src=grid}"); s == nil || s.Last().V != 7 {
		t.Fatalf("counter series: %+v", s)
	}
	if s := c.DB().Lookup("depth{src=grid}"); s == nil || s.Last().V != 3 {
		t.Fatalf("gauge series: %+v", s)
	}
	if s := c.DB().Lookup("lat.count{src=grid}"); s == nil || s.Last().V != 1 {
		t.Fatalf("hist count series: %+v", s)
	}
	if s := c.DB().Lookup("lat.mean_sec{src=grid}"); s == nil || s.Last().V != 0.002 {
		t.Fatalf("hist mean series: %+v", s)
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector enabled")
	}
	c.Observe("x", 1)
	c.Record("x", 1, L("a", "b"))
	c.Scrape()
	c.Start()
	c.Stop()
	c.AddSource(func(*Recorder) {})
	c.AttachRegistry("g", obs.NewRegistry())
	c.OnFire(func(Firing) {})
	c.OnResolve(func(Firing) {})
	if c.DB() != nil || c.Scrapes() != 0 || c.Rules() != nil || c.Firings() != nil || c.Active() != nil {
		t.Fatal("nil collector leaked state")
	}
	if err := c.AddRule("r", "x > 1"); err == nil {
		t.Fatal("AddRule on nil collector should error")
	}
}

// BenchmarkNilObserve is the disabled-cost acceptance gate: one pointer
// test, ~1-2 ns/op, 0 allocs.
func BenchmarkNilObserve(b *testing.B) {
	var c *Collector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Observe("session.slowdown", 1.05)
	}
}

func BenchmarkEnabledObserve(b *testing.B) {
	k := sim.NewKernel(1)
	c, err := NewCollector(k, Config{History: 256})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe("session.slowdown", 1.05)
	}
}

func TestRuleParsing(t *testing.T) {
	good := []string{
		"mean(session.slowdown, 30s) > 1.10 for 30s",
		"last(lease.age) > 4",
		"rate(vfs.retries, 10s) > 5",
		"p99(rpc.lat{node=c1}, 500ms) >= 0.25",
		"min(x) < -1 for 1.5s",
		"node.load{node=c1,zone=a} <= 0.9",
		"max(q, 2m) > 10 for 1h",
	}
	for _, expr := range good {
		if _, err := parseRule(expr); err != nil {
			t.Errorf("parseRule(%q) = %v", expr, err)
		}
	}
	bad := []string{
		"",
		"median(x) > 1",        // unknown func
		"mean(x, 30s > 1",      // missing ')'
		"x >",                  // missing number
		"x > 1 for",            // missing duration
		"x > 1 for 30d",        // bad unit
		"x > 1 banana",         // trailing garbage
		"mean(x{a=}) > 1",      // empty label value is fine? -> value "" parses; keep out
		"> 1",                  // no selector
		"x = 1",                // bad cmp
		"x > 1 for 30s extra",  // trailing after for
		"mean(x{a 1, b=2}) >1", // malformed labels
	}
	for _, expr := range bad {
		if expr == "mean(x{a=}) > 1" {
			continue // empty label value is tolerated by the grammar
		}
		if _, err := parseRule(expr); err == nil {
			t.Errorf("parseRule(%q) succeeded, want error", expr)
		}
	}
}

func TestRuleFiringLifecycle(t *testing.T) {
	k := sim.NewKernel(1)
	tr := obs.New(k)
	c := newTestCollector(t, k, Config{Trace: tr})
	load := 0.0
	c.AddSource(func(r *Recorder) { r.Record("load", load, L("node", "c1")) })
	if err := c.AddRule("hot", "last(load) > 0.9 for 2s"); err != nil {
		t.Fatal(err)
	}
	var fired, resolved []Firing
	c.OnFire(func(f Firing) { fired = append(fired, f) })
	c.OnResolve(func(f Firing) { resolved = append(resolved, f) })

	step := func(sec int, v float64) {
		k.After(sim.Duration(sec)*sim.Second, func() {
			load = v
			c.Scrape()
		})
	}
	// t=0: below. t=1,2,3: above (pending at 1, fires at 3: 2s elapsed).
	// t=4: below (resolves). t=5: above again (pending). t=6: still above
	// but only 1s pending — not firing yet.
	step(0, 0.5)
	step(1, 1.0)
	step(2, 1.0)
	step(3, 1.0)
	step(4, 0.2)
	step(5, 1.0)
	step(6, 1.0)
	if err := k.RunUntil(sim.Time(0).Add(7 * sim.Second)); err != nil && err != sim.ErrStalled {
		t.Fatal(err)
	}

	if len(fired) != 1 {
		t.Fatalf("fired = %+v", fired)
	}
	f := fired[0]
	if f.Rule != "hot" || f.Series != "load{node=c1}" || f.At != sim.Time(0).Add(3*sim.Second) || f.Value != 1.0 {
		t.Fatalf("firing = %+v", f)
	}
	if len(resolved) != 1 || resolved[0].ResolvedAt != sim.Time(0).Add(4*sim.Second) {
		t.Fatalf("resolved = %+v", resolved)
	}
	all := c.Firings()
	if len(all) != 1 || all[0].ResolvedAt < 0 {
		t.Fatalf("Firings = %+v", all)
	}
	if len(c.Active()) != 0 {
		t.Fatalf("Active = %+v", c.Active())
	}
	// Trace got fire + resolve instants and counters.
	snap := tr.Metrics().Snapshot()
	counts := map[string]float64{}
	for _, p := range snap.Counters {
		counts[p.Name] = p.Value
	}
	if counts["telemetry.alerts.fired"] != 1 || counts["telemetry.alerts.resolved"] != 1 {
		t.Fatalf("alert counters = %v", counts)
	}
}

func TestRulePerSeriesStateMachines(t *testing.T) {
	k := sim.NewKernel(1)
	c := newTestCollector(t, k, Config{})
	c.AddSource(func(r *Recorder) {
		r.Record("age", 5, L("sess", "a")) // always over
		r.Record("age", 1, L("sess", "b")) // always under
	})
	if err := c.AddRule("stale", "last(age) > 4"); err != nil {
		t.Fatal(err)
	}
	c.Scrape()
	act := c.Active()
	if len(act) != 1 || act[0].Series != "age{sess=a}" {
		t.Fatalf("Active = %+v", act)
	}
	// Already firing: no duplicate on next scrape.
	k.After(sim.Second, c.Scrape)
	if err := k.RunUntil(sim.Time(0).Add(2 * sim.Second)); err != nil && err != sim.ErrStalled {
		t.Fatal(err)
	}
	if len(c.Firings()) != 1 {
		t.Fatalf("Firings = %+v", c.Firings())
	}
}

func TestRuleRateAndWindowFuncs(t *testing.T) {
	k := sim.NewKernel(1)
	c := newTestCollector(t, k, Config{})
	n := 0.0
	c.AddSource(func(r *Recorder) {
		n += 10 // 10/s counter growth
		r.Record("retries", n)
	})
	if err := c.AddRule("storm", "rate(retries, 10s) > 5"); err != nil {
		t.Fatal(err)
	}
	c.Start()
	if err := k.RunUntil(sim.Time(0).Add(5 * sim.Second)); err != nil && err != sim.ErrStalled {
		t.Fatal(err)
	}
	c.Stop()
	if len(c.Active()) != 1 {
		t.Fatalf("rate rule did not fire: %+v", c.Firings())
	}
}

func TestDuplicateRuleRejected(t *testing.T) {
	k := sim.NewKernel(1)
	c := newTestCollector(t, k, Config{})
	if err := c.AddRule("r", "x > 1"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRule("r", "y > 2"); err == nil {
		t.Fatal("duplicate rule accepted")
	}
	if err := c.AddRule("", "x > 1"); err == nil {
		t.Fatal("unnamed rule accepted")
	}
	if err := c.AddRule("bad", "x >"); err == nil {
		t.Fatal("malformed rule accepted")
	}
	info := c.Rules()
	if len(info) != 1 || info[0].Name != "r" || info[0].Expr != "x > 1" {
		t.Fatalf("Rules = %+v", info)
	}
}

func TestSetWriteJSONDeterministic(t *testing.T) {
	build := func() *Set {
		k := sim.NewKernel(1)
		c, _ := NewCollector(k, Config{})
		c.AddSource(func(r *Recorder) {
			r.Record("load", 0.5+r.At().Seconds(), L("node", "c1"))
			r.Record("load", 0.1, L("node", "c2"))
		})
		c.AddRule("hot", "last(load) > 1")
		c.Start()
		if err := k.RunUntil(sim.Time(0).Add(3 * sim.Second)); err != nil && err != sim.ErrStalled {
			t.Fatal(err)
		}
		ts := NewSet()
		ts.Add("sample-0", c)
		return ts
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("non-deterministic export:\n%s\nvs\n%s", a.String(), b.String())
	}
	for _, want := range []string{`"label":"sample-0"`, `"key":"load{node=c1}"`, `"rule":"hot"`, `"resolvedUs":-1`} {
		if !bytes.Contains(a.Bytes(), []byte(want)) {
			t.Fatalf("export missing %q:\n%s", want, a.String())
		}
	}
}
