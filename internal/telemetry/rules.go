package telemetry

import (
	"fmt"
	"strconv"
	"strings"

	"vmgrid/internal/sim"
)

// Alert rules are declarative threshold + for-duration conditions over
// the stored series, in a grammar small enough to read in full:
//
//	rule     := expr cmp number [ "for" duration ]
//	expr     := func "(" selector [ "," duration ] ")" | selector
//	func     := "mean" | "min" | "max" | "p99" | "rate" | "last"
//	selector := name [ "{" key "=" value { "," key "=" value } "}" ]
//	cmp      := ">" | ">=" | "<" | "<="
//	duration := float unit, unit in us|ms|s|m|h
//
// A bare selector means last(selector). The function's duration is the
// sliding window (default: the whole retained history; rate defaults to
// 10 s). A selector without labels matches every series of that name —
// the rule tracks an independent state machine per matching series, so
// `last(lease.age) > 4 for 4s` watches every session's lease at once.
//
// Examples:
//
//	mean(session.slowdown, 30s) > 1.10 for 30s
//	last(lease.age) > 4
//	rate(vfs.retries, 10s) > 5
//
// Evaluation runs after every scrape: rules in registration order,
// matching series in key order — deterministic, so firings are
// byte-identical at any experiment worker count.

// RuleFunc identifies the aggregation a rule applies to its window.
type RuleFunc string

// Rule aggregation functions.
const (
	FuncMean RuleFunc = "mean"
	FuncMin  RuleFunc = "min"
	FuncMax  RuleFunc = "max"
	FuncP99  RuleFunc = "p99"
	FuncRate RuleFunc = "rate"
	FuncLast RuleFunc = "last"
)

// defaultRateWindow is the rate() window when the rule names none.
const defaultRateWindow = 10 * sim.Second

// rule is one parsed alert rule.
type rule struct {
	name      string
	expr      string
	fn        RuleFunc
	series    string
	sub       []Label
	window    sim.Duration // 0 = whole retained history
	cmp       string
	threshold float64
	forDur    sim.Duration
}

// RuleInfo describes a registered rule.
type RuleInfo struct {
	Name string `json:"name"`
	Expr string `json:"expr"`
}

// Firing is one alert activation: rule, the concrete series that
// tripped it, when, at what value, and when it cleared (ResolvedAt < 0
// while still active).
type Firing struct {
	Rule       string   `json:"rule"`
	Series     string   `json:"series"`
	At         sim.Time `json:"atUs"`
	Value      float64  `json:"value"`
	ResolvedAt sim.Time `json:"resolvedUs"`
}

// alertKey identifies one (rule, series) state machine.
type alertKey struct {
	rule   string
	series string
}

// alertState tracks one (rule, series) pair: inactive -> pending (the
// condition holds, the for-duration is running) -> firing.
type alertState struct {
	pending      bool
	pendingSince sim.Time
	firing       bool
	firingIdx    int // index into engine.firings while firing
}

// Engine evaluates the rules after each scrape and keeps the firing
// log.
type Engine struct {
	c         *Collector
	rules     []*rule
	states    map[alertKey]*alertState
	firings   []Firing
	onFire    []func(Firing)
	onResolve []func(Firing)
}

func newEngine(c *Collector) *Engine {
	return &Engine{c: c, states: make(map[alertKey]*alertState)}
}

func (e *Engine) addRule(name, expr string) error {
	if name == "" {
		return fmt.Errorf("telemetry: rule without a name")
	}
	for _, r := range e.rules {
		if r.name == name {
			return fmt.Errorf("telemetry: duplicate rule %q", name)
		}
	}
	r, err := parseRule(expr)
	if err != nil {
		return fmt.Errorf("telemetry: rule %q: %w", name, err)
	}
	r.name = name
	e.rules = append(e.rules, r)
	return nil
}

func (e *Engine) rulesInfo() []RuleInfo {
	out := make([]RuleInfo, len(e.rules))
	for i, r := range e.rules {
		out[i] = RuleInfo{Name: r.name, Expr: r.expr}
	}
	return out
}

// eval runs every rule against the current store contents.
func (e *Engine) eval(now sim.Time) {
	for _, r := range e.rules {
		for _, s := range e.c.db.Select(r.series, r.sub) {
			v, ok := r.value(s, now)
			key := alertKey{rule: r.name, series: s.Key()}
			if !ok || !compare(v, r.cmp, r.threshold) {
				e.clear(key, now)
				continue
			}
			st := e.states[key]
			if st == nil {
				st = &alertState{}
				e.states[key] = st
			}
			if st.firing {
				continue
			}
			if !st.pending {
				st.pending, st.pendingSince = true, now
			}
			if now.Sub(st.pendingSince) >= r.forDur {
				e.fire(r, key, st, now, v)
			}
		}
	}
}

// value computes the rule's aggregate over one series. ok is false when
// the window holds no data.
func (r *rule) value(s *Series, now sim.Time) (float64, bool) {
	if r.fn == FuncRate {
		w := r.window
		if w <= 0 {
			w = defaultRateWindow
		}
		return s.Rate(now.Add(-w)), true
	}
	since := sim.Time(0)
	if r.window > 0 {
		since = now.Add(-r.window)
	}
	if r.fn == FuncLast && r.window <= 0 {
		if s.Len() == 0 {
			return 0, false
		}
		return s.Last().V, true
	}
	a := s.Window(since)
	if a.Count == 0 {
		return 0, false
	}
	switch r.fn {
	case FuncMean:
		return a.Mean, true
	case FuncMin:
		return a.Min, true
	case FuncMax:
		return a.Max, true
	case FuncP99:
		return a.P99, true
	case FuncLast:
		return a.Last, true
	}
	return 0, false
}

func compare(v float64, cmp string, threshold float64) bool {
	switch cmp {
	case ">":
		return v > threshold
	case ">=":
		return v >= threshold
	case "<":
		return v < threshold
	case "<=":
		return v <= threshold
	}
	return false
}

func (e *Engine) fire(r *rule, key alertKey, st *alertState, now sim.Time, v float64) {
	st.pending, st.firing = false, true
	st.firingIdx = len(e.firings)
	f := Firing{Rule: r.name, Series: key.series, At: now, Value: v, ResolvedAt: -1}
	e.firings = append(e.firings, f)
	if tr := e.c.cfg.Trace; tr != nil {
		tr.Instant("alerts", "alert", "fire: "+r.name+" "+key.series)
		tr.Metrics().Counter("telemetry.alerts.fired").Inc()
	}
	for _, fn := range e.onFire {
		fn(f)
	}
}

// clear resets a (rule, series) state, resolving its firing if active.
func (e *Engine) clear(key alertKey, now sim.Time) {
	st := e.states[key]
	if st == nil {
		return
	}
	if st.firing {
		e.firings[st.firingIdx].ResolvedAt = now
		f := e.firings[st.firingIdx]
		if tr := e.c.cfg.Trace; tr != nil {
			tr.Instant("alerts", "alert", "resolve: "+f.Rule+" "+f.Series)
			tr.Metrics().Counter("telemetry.alerts.resolved").Inc()
		}
		for _, fn := range e.onResolve {
			fn(f)
		}
	}
	delete(e.states, key)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

type scanner struct {
	s   string
	pos int
}

func (sc *scanner) ws() {
	for sc.pos < len(sc.s) && (sc.s[sc.pos] == ' ' || sc.s[sc.pos] == '\t') {
		sc.pos++
	}
}

func identChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '.' || c == '_' || c == '-'
}

func (sc *scanner) ident() string {
	start := sc.pos
	for sc.pos < len(sc.s) && identChar(sc.s[sc.pos]) {
		sc.pos++
	}
	return sc.s[start:sc.pos]
}

func (sc *scanner) expect(c byte) error {
	sc.ws()
	if sc.pos >= len(sc.s) || sc.s[sc.pos] != c {
		return fmt.Errorf("expected %q at offset %d of %q", string(c), sc.pos, sc.s)
	}
	sc.pos++
	return nil
}

func (sc *scanner) peek() byte {
	sc.ws()
	if sc.pos >= len(sc.s) {
		return 0
	}
	return sc.s[sc.pos]
}

// selector parses name[{k=v,...}], returning sorted labels.
func (sc *scanner) selector() (string, []Label, error) {
	sc.ws()
	name := sc.ident()
	if name == "" {
		return "", nil, fmt.Errorf("expected series name at offset %d of %q", sc.pos, sc.s)
	}
	if sc.peek() != '{' {
		return name, nil, nil
	}
	sc.pos++
	var labels []Label
	for {
		sc.ws()
		key := sc.ident()
		if key == "" {
			return "", nil, fmt.Errorf("expected label key at offset %d of %q", sc.pos, sc.s)
		}
		if err := sc.expect('='); err != nil {
			return "", nil, err
		}
		sc.ws()
		val := sc.ident()
		labels = append(labels, Label{Key: key, Value: val})
		switch sc.peek() {
		case ',':
			sc.pos++
		case '}':
			sc.pos++
			sortLabels(labels)
			return name, labels, nil
		default:
			return "", nil, fmt.Errorf("expected ',' or '}' at offset %d of %q", sc.pos, sc.s)
		}
	}
}

func sortLabels(labels []Label) {
	for i := 1; i < len(labels); i++ {
		for j := i; j > 0 && labels[j].Key < labels[j-1].Key; j-- {
			labels[j], labels[j-1] = labels[j-1], labels[j]
		}
	}
}

// duration parses float+unit (us, ms, s, m, h) into sim.Duration.
func (sc *scanner) duration() (sim.Duration, error) {
	sc.ws()
	start := sc.pos
	for sc.pos < len(sc.s) && (sc.s[sc.pos] >= '0' && sc.s[sc.pos] <= '9' || sc.s[sc.pos] == '.') {
		sc.pos++
	}
	num := sc.s[start:sc.pos]
	ustart := sc.pos
	for sc.pos < len(sc.s) && (sc.s[sc.pos] >= 'a' && sc.s[sc.pos] <= 'z') {
		sc.pos++
	}
	unit := sc.s[ustart:sc.pos]
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q in %q", num+unit, sc.s)
	}
	var scale sim.Duration
	switch unit {
	case "us":
		scale = sim.Microsecond
	case "ms":
		scale = sim.Millisecond
	case "s":
		scale = sim.Second
	case "m":
		scale = sim.Minute
	case "h":
		scale = sim.Hour
	default:
		return 0, fmt.Errorf("bad duration unit %q in %q (want us, ms, s, m, h)", unit, sc.s)
	}
	return sim.Duration(v * float64(scale)), nil
}

func (sc *scanner) number() (float64, error) {
	sc.ws()
	start := sc.pos
	for sc.pos < len(sc.s) {
		c := sc.s[sc.pos]
		if c >= '0' && c <= '9' || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			sc.pos++
			continue
		}
		break
	}
	v, err := strconv.ParseFloat(sc.s[start:sc.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("bad number at offset %d of %q", start, sc.s)
	}
	return v, nil
}

func (sc *scanner) cmp() (string, error) {
	sc.ws()
	if sc.pos < len(sc.s) && (sc.s[sc.pos] == '>' || sc.s[sc.pos] == '<') {
		op := sc.s[sc.pos : sc.pos+1]
		sc.pos++
		if sc.pos < len(sc.s) && sc.s[sc.pos] == '=' {
			op += "="
			sc.pos++
		}
		return op, nil
	}
	return "", fmt.Errorf("expected comparison at offset %d of %q", sc.pos, sc.s)
}

func parseRule(expr string) (*rule, error) {
	sc := &scanner{s: expr}
	r := &rule{expr: strings.TrimSpace(expr), fn: FuncLast}

	sc.ws()
	start := sc.pos
	head := sc.ident()
	if head == "" {
		return nil, fmt.Errorf("expected expression in %q", expr)
	}
	if sc.peek() == '(' {
		switch RuleFunc(head) {
		case FuncMean, FuncMin, FuncMax, FuncP99, FuncRate, FuncLast:
			r.fn = RuleFunc(head)
		default:
			return nil, fmt.Errorf("unknown function %q in %q", head, expr)
		}
		sc.pos++ // consume '('
		name, labels, err := sc.selector()
		if err != nil {
			return nil, err
		}
		r.series, r.sub = name, labels
		if sc.peek() == ',' {
			sc.pos++
			w, err := sc.duration()
			if err != nil {
				return nil, err
			}
			r.window = w
		}
		if err := sc.expect(')'); err != nil {
			return nil, err
		}
	} else {
		// Bare selector: rewind and parse it whole (head may be the full
		// name already, but a label block could follow).
		sc.pos = start
		name, labels, err := sc.selector()
		if err != nil {
			return nil, err
		}
		r.series, r.sub = name, labels
	}

	op, err := sc.cmp()
	if err != nil {
		return nil, err
	}
	r.cmp = op
	threshold, err := sc.number()
	if err != nil {
		return nil, err
	}
	r.threshold = threshold

	sc.ws()
	if sc.pos < len(sc.s) {
		kw := sc.ident()
		if kw != "for" {
			return nil, fmt.Errorf("expected 'for' at offset %d of %q", sc.pos, expr)
		}
		d, err := sc.duration()
		if err != nil {
			return nil, err
		}
		r.forDur = d
	}
	sc.ws()
	if sc.pos < len(sc.s) {
		return nil, fmt.Errorf("trailing input %q in %q", sc.s[sc.pos:], expr)
	}
	return r, nil
}
