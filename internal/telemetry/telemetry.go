// Package telemetry is the grid-wide monitoring pipeline: a bounded
// in-memory time-series store fed by periodic scrapes of the fabric
// (obs metrics registries, node and session gauges, supervisor lease
// ages, rps load predictions), windowed aggregation over the stored
// history, and a declarative threshold/for-duration alert engine whose
// firings are ordinary simulated-time events.
//
// The package generalizes rps.Series — a plain float64 ring buffer — to
// timestamped, labeled series: each Series is still a bounded ring, but
// every sample carries its sim.Time and the series is keyed by a name
// plus a sorted label set, Prometheus-style ("node.load{node=c1}").
//
// Like obs, telemetry inherits the two design rules of the simulation:
//
//   - Determinism. Samples are stamped with sim.Time; snapshot, export,
//     and rule-evaluation order are pure functions of the recorded data
//     (series in key order, rules in registration order). A telemetry
//     set collected under the parallel experiment runner is therefore
//     byte-identical at any -parallel worker count.
//
//   - Nil fast path. A nil *Collector is the disabled state: every
//     method is a nil-receiver no-op, so instrumented code pays one
//     pointer test when telemetry is off.
//
// telemetry depends only on internal/sim, internal/obs, and the
// standard library.
package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"vmgrid/internal/sim"
)

// Point is one timestamped sample.
type Point struct {
	At sim.Time
	V  float64
}

// Label is one key=value dimension of a series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// canonicalKey renders name plus sorted labels as the series identity,
// e.g. `node.load{node=c1}`. Series with no labels key as the bare name.
func canonicalKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Series is a bounded ring buffer of timestamped samples under one
// (name, labels) identity — rps.Series with time and dimensions.
type Series struct {
	name   string
	labels []Label // sorted by key
	key    string

	data  []Point
	start int
	n     int
}

// Name returns the series name (without labels).
func (s *Series) Name() string { return s.name }

// Labels returns the sorted label set (shared; do not mutate).
func (s *Series) Labels() []Label { return s.labels }

// Key returns the canonical identity, name{k=v,...}.
func (s *Series) Key() string { return s.key }

// Add appends a sample, evicting the oldest when the ring is full.
func (s *Series) Add(at sim.Time, v float64) {
	if s.n < len(s.data) {
		s.data[(s.start+s.n)%len(s.data)] = Point{At: at, V: v}
		s.n++
		return
	}
	s.data[s.start] = Point{At: at, V: v}
	s.start = (s.start + 1) % len(s.data)
}

// Len returns the number of stored samples.
func (s *Series) Len() int { return s.n }

// Last returns the most recent sample (zero Point if empty).
func (s *Series) Last() Point {
	if s.n == 0 {
		return Point{}
	}
	return s.data[(s.start+s.n-1)%len(s.data)]
}

// Points returns the samples oldest-first (a copy).
func (s *Series) Points() []Point {
	out := make([]Point, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.data[(s.start+i)%len(s.data)]
	}
	return out
}

// Agg summarizes the samples of one window.
type Agg struct {
	Count int
	Min   float64
	Max   float64
	Mean  float64
	Last  float64
	// P99 is the nearest-rank 99th percentile of the window.
	P99 float64
}

// Window aggregates the samples with At >= since (min/max/mean/p99 over
// the sliding window, plus the latest value). An empty window returns
// the zero Agg.
func (s *Series) Window(since sim.Time) Agg {
	var vals []float64
	var a Agg
	for i := 0; i < s.n; i++ {
		p := s.data[(s.start+i)%len(s.data)]
		if p.At < since {
			continue
		}
		vals = append(vals, p.V)
		if a.Count == 0 || p.V < a.Min {
			a.Min = p.V
		}
		if a.Count == 0 || p.V > a.Max {
			a.Max = p.V
		}
		a.Mean += p.V
		a.Last = p.V
		a.Count++
	}
	if a.Count == 0 {
		return a
	}
	a.Mean /= float64(a.Count)
	sort.Float64s(vals)
	rank := (99*len(vals) + 99) / 100 // nearest-rank ceil(0.99·n)
	if rank < 1 {
		rank = 1
	}
	a.P99 = vals[rank-1]
	return a
}

// Rate returns the per-second increase of the series over the window —
// (last-first)/(t_last-t_first) across samples with At >= since. Windows
// with fewer than two samples (or no time spread) rate as 0. Meaningful
// for cumulative counters.
func (s *Series) Rate(since sim.Time) float64 {
	var first, last Point
	count := 0
	for i := 0; i < s.n; i++ {
		p := s.data[(s.start+i)%len(s.data)]
		if p.At < since {
			continue
		}
		if count == 0 {
			first = p
		}
		last = p
		count++
	}
	if count < 2 || last.At <= first.At {
		return 0
	}
	return (last.V - first.V) / last.At.Sub(first.At).Seconds()
}

// DB is the bounded time-series store: series are created on first
// write and hold at most the configured history per series. Canonical
// keys are interned: the observe path renders the key into a reused
// scratch buffer and resolves the series through a zero-copy map
// lookup, so recording to an existing series allocates nothing.
type DB struct {
	history int
	series  map[string]*Series
	keyBuf  []byte // scratch for canonical-key rendering
}

// NewDB creates a store keeping history samples per series.
func NewDB(history int) (*DB, error) {
	if history <= 0 {
		return nil, fmt.Errorf("telemetry: history %d", history)
	}
	return &DB{history: history, series: make(map[string]*Series)}, nil
}

// upsert returns (creating if needed) the series for (name, labels).
// labels must already be sorted by key; the slice is retained.
func (db *DB) upsert(name string, labels []Label) *Series {
	key := canonicalKey(name, labels)
	s := db.series[key]
	if s == nil {
		s = &Series{name: name, labels: labels, key: key, data: make([]Point, db.history)}
		db.series[key] = s
	}
	return s
}

// labelsSorted reports whether ls is sorted by key — the manual loop
// sort.SliceIsSorted would run, without boxing the slice or minting a
// comparison closure on every Record.
func labelsSorted(ls []Label) bool {
	for i := 1; i < len(ls); i++ {
		if ls[i].Key < ls[i-1].Key {
			return false
		}
	}
	return true
}

// Record appends a sample to the series for (name, labels), creating it
// on first use. Labels are sorted by key before keying. Unlabeled
// samples — the inline instrumentation hot path — resolve by name
// directly; labeled samples render their canonical key into the scratch
// buffer and intern it on first use.
func (db *DB) Record(at sim.Time, name string, labels []Label, v float64) {
	if len(labels) == 0 {
		s := db.series[name]
		if s == nil {
			s = &Series{name: name, key: name, data: make([]Point, db.history)}
			db.series[name] = s
		}
		s.Add(at, v)
		return
	}
	sorted := labels
	if !labelsSorted(labels) {
		sorted = append([]Label(nil), labels...)
		sortLabels(sorted)
	}
	buf := append(db.keyBuf[:0], name...)
	buf = append(buf, '{')
	for i, l := range sorted {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, l.Key...)
		buf = append(buf, '=')
		buf = append(buf, l.Value...)
	}
	buf = append(buf, '}')
	db.keyBuf = buf
	s := db.series[string(buf)] // zero-copy lookup: the conversion does not escape
	if s == nil {
		key := string(buf)
		s = &Series{name: name, labels: sorted, key: key, data: make([]Point, db.history)}
		db.series[key] = s
	}
	s.Add(at, v)
}

// Lookup returns the series with the exact canonical key, or nil.
func (db *DB) Lookup(key string) *Series { return db.series[key] }

// Len returns the number of distinct series.
func (db *DB) Len() int { return len(db.series) }

// Keys returns every canonical series key, sorted — the deterministic
// iteration order for snapshots and export.
func (db *DB) Keys() []string {
	keys := make([]string, 0, len(db.series))
	for k := range db.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Select returns the series matching name and carrying every label of
// sub (a subset match; empty sub matches all), in key order.
func (db *DB) Select(name string, sub []Label) []*Series {
	var out []*Series
	for _, k := range db.Keys() {
		s := db.series[k]
		if s.name != name {
			continue
		}
		if !labelsSubset(sub, s.labels) {
			continue
		}
		out = append(out, s)
	}
	return out
}

// labelsSubset reports whether every label of sub appears in set.
func labelsSubset(sub, set []Label) bool {
	for _, want := range sub {
		found := false
		for _, have := range set {
			if have.Key == want.Key && have.Value == want.Value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
