package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Set collects the telemetry of many experiment samples, one labeled
// collector per sample, for a single deterministic JSON export
// (gridbench -telemetry). Mirrors obs.TraceSet: entries are added in
// sample-index order by the experiment driver, so the export is
// byte-identical at any -parallel worker count.
type Set struct {
	entries []setEntry
}

type setEntry struct {
	label string
	c     *Collector
}

// NewSet creates an empty telemetry set.
func NewSet() *Set { return &Set{} }

// Add appends one sample's collector under a label. Nil collectors are
// skipped.
func (ts *Set) Add(label string, c *Collector) {
	if ts == nil || c == nil {
		return
	}
	ts.entries = append(ts.entries, setEntry{label: label, c: c})
}

// Len returns the number of collected entries.
func (ts *Set) Len() int {
	if ts == nil {
		return 0
	}
	return len(ts.entries)
}

// WriteJSON emits the set as deterministic JSON:
//
//	{"telemetry":[
//	  {"label":"...",
//	   "series":[{"key":"...","name":"...","points":[[tUs,v],...]},...],
//	   "alerts":[{"rule":"...","series":"...","atUs":N,"value":V,"resolvedUs":N},...]},
//	  ...]}
//
// Series appear in key order, points oldest-first, alerts in firing
// order; floats render via strconv.FormatFloat(v, 'g', -1, 64). The
// bytes are a pure function of the recorded data.
func (ts *Set) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"telemetry":[`)
	for i, e := range ts.entries {
		if i > 0 {
			bw.WriteByte(',')
		}
		if err := writeEntry(bw, e); err != nil {
			return err
		}
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

func writeEntry(bw *bufio.Writer, e setEntry) error {
	fmt.Fprintf(bw, `{"label":%s,"series":[`, strconv.Quote(e.label))
	db := e.c.DB()
	for i, key := range db.Keys() {
		if i > 0 {
			bw.WriteByte(',')
		}
		s := db.Lookup(key)
		fmt.Fprintf(bw, `{"key":%s,"name":%s,"points":[`, strconv.Quote(key), strconv.Quote(s.Name()))
		for j, p := range s.Points() {
			if j > 0 {
				bw.WriteByte(',')
			}
			bw.WriteByte('[')
			bw.WriteString(strconv.FormatInt(int64(p.At), 10))
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatFloat(p.V, 'g', -1, 64))
			bw.WriteByte(']')
		}
		bw.WriteString("]}")
	}
	bw.WriteString(`],"alerts":[`)
	for i, f := range e.c.Firings() {
		if i > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, `{"rule":%s,"series":%s,"atUs":%d,"value":%s,"resolvedUs":%d}`,
			strconv.Quote(f.Rule), strconv.Quote(f.Series), int64(f.At),
			strconv.FormatFloat(f.Value, 'g', -1, 64), int64(f.ResolvedAt))
	}
	bw.WriteString("]}")
	return nil
}
