package vmm

import (
	"math"
	"testing"

	"vmgrid/internal/guest"
	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
)

// runWithCost measures the elapsed time of a workload on a VM with the
// given cost model.
func runWithCost(t *testing.T, cost CostModel, w guest.Workload) float64 {
	t.Helper()
	k := sim.NewKernel(1)
	h, err := hostos.New(k, hw.ReferenceMachine("host"))
	if err != nil {
		t.Fatal(err)
	}
	s := storage.NewStore(h)
	img := storage.ImageInfo{Name: "img", OS: "rh", DiskBytes: hw.GB, MemBytes: 128 * hw.MB}
	if err := storage.InstallImage(s, img); err != nil {
		t.Fatal(err)
	}
	base, _ := s.Open(img.DiskFile())
	diff, _ := s.OpenOrCreate("d.cow")
	mem, _ := s.Open(img.MemFile())
	vm, err := New(h, Config{
		Name: "vm", MemBytes: 128 * hw.MB,
		Disk: storage.NewCowDisk(base, diff), MemImage: mem,
		Cost: cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	var elapsed float64
	if err := vm.Start(WarmRestore, func(err error) {
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := vm.Guest().Run(w, func(r guest.TaskResult) {
			elapsed = r.Elapsed().Seconds()
		}); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if elapsed == 0 {
		t.Fatal("workload never finished")
	}
	return elapsed
}

// TestOverheadScalesWithTrapCost is the cost-model sensitivity check the
// design calls for: doubling the per-trap cost roughly doubles the
// trap-attributable overhead.
func TestOverheadScalesWithTrapCost(t *testing.T) {
	w := guest.Workload{Name: "sys-heavy", CPUSeconds: 100, PrivPerSec: 5000}

	base := DefaultCostModel()
	base.TimerExtra = 0 // isolate the trap term
	doubled := base
	doubled.TrapExtra *= 2

	t0 := runWithCost(t, base, w)
	t1 := runWithCost(t, doubled, w)
	ovh0 := t0 - 100*(1+5000*guest.NativeCost.Seconds())
	ovh1 := t1 - 100*(1+5000*guest.NativeCost.Seconds())
	if ovh0 <= 0 || ovh1 <= 0 {
		t.Fatalf("overheads: %v, %v", ovh0, ovh1)
	}
	if ratio := ovh1 / ovh0; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("doubling TrapExtra scaled overhead by %.2f, want ~2", ratio)
	}
}

func TestMemTrapCostOnlyHitsMemoryWorkloads(t *testing.T) {
	memHeavy := guest.Workload{Name: "mem", CPUSeconds: 100, MemVirtPerSec: 8000}
	syscallFree := guest.Workload{Name: "pure", CPUSeconds: 100}

	base := DefaultCostModel()
	bigMem := base
	bigMem.MemTrapExtra *= 4

	dMem := runWithCost(t, bigMem, memHeavy) - runWithCost(t, base, memHeavy)
	dPure := runWithCost(t, bigMem, syscallFree) - runWithCost(t, base, syscallFree)
	if dMem <= 0.5 {
		t.Errorf("memory workload insensitive to MemTrapExtra: Δ=%v", dMem)
	}
	if math.Abs(dPure) > 0.05 {
		t.Errorf("pure-CPU workload affected by MemTrapExtra: Δ=%v", dPure)
	}
}

func TestZeroExtraCostModelApproachesNative(t *testing.T) {
	// With all virtualization costs zeroed, the VM should run within a
	// whisker of native speed — the model has no hidden flat tax.
	free := CostModel{
		GuestQuantum: 10 * sim.Millisecond,
		InitWork:     0.01,
		TimerRate:    100,
	}
	w := guest.MicroTask(50)
	vmTime := runWithCost(t, free, w)

	k := sim.NewKernel(1)
	h, _ := hostos.New(k, hw.ReferenceMachine("host"))
	os := guest.NewOS(guest.NewNativeCPU(h.Spawn("t")))
	os.MarkBooted()
	var native float64
	if _, err := os.Run(w, func(r guest.TaskResult) { native = r.Elapsed().Seconds() }); err != nil {
		t.Fatal(err)
	}
	k.Run()

	if ratio := vmTime / native; ratio > 1.002 {
		t.Errorf("zero-cost VM still %.4fx native", ratio)
	}
}

func TestWorldSwitchCostOnlyUnderContention(t *testing.T) {
	w := guest.MicroTask(60)

	base := DefaultCostModel()
	bigWS := base
	bigWS.WorldSwitch *= 10

	// Unloaded: world-switch cost must not matter.
	d := runWithCost(t, bigWS, w) - runWithCost(t, base, w)
	if math.Abs(d) > 0.05 {
		t.Errorf("world-switch cost charged on an idle host: Δ=%v", d)
	}

	// Contended: it must.
	contended := func(cost CostModel) float64 {
		k := sim.NewKernel(1)
		h, _ := hostos.New(k, hw.ReferenceMachine("host"))
		hog := h.Spawn("hog")
		hog.SetDemand(1)
		s := storage.NewStore(h)
		img := storage.ImageInfo{Name: "img", OS: "rh", DiskBytes: hw.GB, MemBytes: 128 * hw.MB}
		if err := storage.InstallImage(s, img); err != nil {
			t.Fatal(err)
		}
		base2, _ := s.Open(img.DiskFile())
		diff, _ := s.OpenOrCreate("d.cow")
		mem, _ := s.Open(img.MemFile())
		vm, err := New(h, Config{Name: "vm", MemBytes: 128 * hw.MB,
			Disk: storage.NewCowDisk(base2, diff), MemImage: mem, Cost: cost})
		if err != nil {
			t.Fatal(err)
		}
		var elapsed float64
		if err := vm.Start(WarmRestore, func(error) {
			if _, err := vm.Guest().Run(w, func(r guest.TaskResult) {
				elapsed = r.Elapsed().Seconds()
			}); err != nil {
				t.Error(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		_ = k.RunUntil(sim.Time(sim.Hour))
		return elapsed
	}
	if d := contended(bigWS) - contended(base); d <= 0.1 {
		t.Errorf("world-switch cost invisible under contention: Δ=%v", d)
	}
}
