// Package vmm implements the "classic" virtual machine monitor at the
// center of the paper: a host OS process that presents a raw machine to
// a guest operating system. The monitor's performance model charges
// virtualization where it actually occurs — trapping and emulating
// privileged instructions, maintaining shadow page tables, switching
// worlds when the host preempts the monitor, and virtualizing device
// I/O — so the paper's measured overheads (≤10% micro, 1-4% macro)
// emerge from mechanism.
package vmm

import (
	"errors"
	"fmt"

	"vmgrid/internal/guest"
	"vmgrid/internal/hostos"
	"vmgrid/internal/obs"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
)

// CostModel holds the virtualization cost parameters. See DESIGN.md §5
// for the calibration against the paper's Tables 1-2 and Figure 1.
type CostModel struct {
	// TrapExtra is the added cost of one privileged event (beyond its
	// native cost): trap into the monitor, decode, emulate, return.
	TrapExtra sim.Duration
	// MemTrapExtra is the added cost of one memory-system event (shadow
	// page table update); natively these are free in hardware.
	MemTrapExtra sim.Duration
	// TimerRate and TimerExtra model the periodic timer interrupt every
	// guest must field, each one a small storm of privileged operations.
	TimerRate  float64
	TimerExtra sim.Duration
	// CtxSwitchExtra is the added cost of a guest context switch (page
	// table base changes trap; VMware calls this out explicitly).
	CtxSwitchExtra sim.Duration
	// WorldSwitch is the cost of switching between the VMM world and
	// the host world, paid when the host preempts the monitor.
	WorldSwitch sim.Duration
	// IOExtra is the added per-operation cost of virtual device I/O.
	IOExtra sim.Duration
	// GuestQuantum is the guest scheduler time slice (sets the guest
	// context-switch rate when multiple guest tasks are runnable).
	GuestQuantum sim.Duration
	// InitWork is the CPU work (reference seconds) of starting the
	// monitor process and opening its devices.
	InitWork float64
}

// DefaultCostModel returns the calibration used throughout the
// reproduction (VMware Workstation 3.0a on the reference machine).
func DefaultCostModel() CostModel {
	return CostModel{
		TrapExtra:      5 * sim.Microsecond,
		MemTrapExtra:   5 * sim.Microsecond,
		TimerRate:      100,
		TimerExtra:     50 * sim.Microsecond,
		CtxSwitchExtra: 250 * sim.Microsecond,
		WorldSwitch:    200 * sim.Microsecond,
		IOExtra:        150 * sim.Microsecond,
		GuestQuantum:   10 * sim.Millisecond,
		InitWork:       2.4,
	}
}

// State is the lifecycle state of a VM.
type State int

// VM lifecycle states.
const (
	StateCreated State = iota + 1
	StateInitializing
	StateBooting
	StateRestoring
	StateRunning
	StateSuspending
	StateSuspended
	StateOff
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateInitializing:
		return "initializing"
	case StateBooting:
		return "booting"
	case StateRestoring:
		return "restoring"
	case StateRunning:
		return "running"
	case StateSuspending:
		return "suspending"
	case StateSuspended:
		return "suspended"
	case StateOff:
		return "off"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Errors callers match with errors.Is.
var (
	ErrBadState = errors.New("vmm: operation invalid in current state")
	ErrNoDisk   = errors.New("vmm: no virtual disk attached")
	ErrNoMemImg = errors.New("vmm: no memory image attached")
)

// Config describes a virtual machine to create.
type Config struct {
	// Name labels the VM.
	Name string
	// MemBytes is the guest memory size (also the suspend image size).
	MemBytes int64
	// Disk is the virtual disk backend (persistent clone, COW stack, or
	// remote file).
	Disk storage.Backend
	// MemImage, when set, is where the saved memory state lives: read
	// on restore, written on suspend.
	MemImage storage.Backend
	// DirtyBps, when positive, models the guest's memory dirtying rate
	// (bytes per wall-clock second): after the image has been written
	// in full once, later Suspends write only the bytes dirtied since
	// the image was last in sync (floored at one restore chunk, capped
	// at MemBytes). Zero keeps full-image suspends — the historical
	// behavior. With the chunk plane attached to the backing store,
	// the untouched chunks keep their content keys, so checkpoint
	// staging ships deltas instead of full images.
	DirtyBps int64
	// Cost overrides the cost model (zero value = DefaultCostModel).
	Cost CostModel
	// Trace, when non-nil, records lifecycle spans (init, boot, restore,
	// suspend) and the world-switch-rate gauge.
	Trace *obs.Tracer
	// Ctx, when valid, parents the lifecycle spans under the caller's
	// causal tree (the gatekeeper handler that instantiated this VM).
	Ctx obs.SpanContext
}

// VM is one virtual machine: a monitor process on a host plus the guest
// OS it runs.
type VM struct {
	host *hostos.Host
	proc *hostos.Process
	cfg  Config
	cost CostModel
	os   *guest.OS

	state State
	act   guest.Activity
	sink  func(rate float64)
	rate  float64

	// gWS tracks the modeled world-switch rate (Hz) while the host
	// contends with the monitor; nil (free) when tracing is off.
	gWS *obs.Gauge

	// imagePrimed is set once a Suspend has written the full memory
	// image to cfg.MemImage — only then can later suspends write dirty
	// deltas on top of a known-complete base.
	imagePrimed bool
	// imageSyncAt is when the image last matched guest memory; the
	// dirty estimate accrues DirtyBps from this instant.
	imageSyncAt sim.Time
}

var _ guest.CPU = (*VM)(nil)

// New creates a VM on host. The guest OS is created attached to it; use
// AdoptGuest to install a migrated guest instead.
func New(host *hostos.Host, cfg Config) (*VM, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("vmm: VM without a name")
	}
	if cfg.MemBytes <= 0 {
		return nil, fmt.Errorf("vmm: VM %q with %d bytes of memory", cfg.Name, cfg.MemBytes)
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	vm := &VM{
		host:  host,
		cfg:   cfg,
		cost:  cfg.Cost,
		state: StateCreated,
		gWS:   cfg.Trace.Metrics().Gauge("vmm.worldswitch-hz:" + cfg.Name),
	}
	vm.proc = host.Spawn("vmm:" + cfg.Name)
	vm.proc.OnRate(func(float64) { vm.recompute() })
	vm.os = guest.NewOS(vm)
	if cfg.Disk != nil {
		vm.os.Mount("root", cfg.Disk)
	}
	return vm, nil
}

// Name returns the VM name.
func (vm *VM) Name() string { return vm.cfg.Name }

// Host returns the host the monitor runs on.
func (vm *VM) Host() *hostos.Host { return vm.host }

// Proc returns the monitor's host process (for resource control).
func (vm *VM) Proc() *hostos.Process { return vm.proc }

// Guest returns the guest OS.
func (vm *VM) Guest() *guest.OS { return vm.os }

// State returns the lifecycle state.
func (vm *VM) State() State { return vm.state }

// Config returns the creation configuration.
func (vm *VM) Config() Config { return vm.cfg }

// Kernel implements guest.CPU.
func (vm *VM) Kernel() *sim.Kernel { return vm.host.Kernel() }

// IOPenalty implements guest.CPU: device virtualization overhead on top
// of the native driver cost.
func (vm *VM) IOPenalty() sim.Duration {
	return guest.NativeIOPenalty + vm.cost.IOExtra
}

// SetActivity implements guest.CPU.
func (vm *VM) SetActivity(a guest.Activity) {
	vm.act = a
	vm.updateDemand()
	vm.recompute()
}

// OnRate implements guest.CPU.
func (vm *VM) OnRate(fn func(rate float64)) {
	vm.sink = fn
	if fn != nil {
		fn(vm.rate)
	}
}

// Rate implements guest.CPU.
func (vm *VM) Rate() float64 { return vm.rate }

// updateDemand sets the monitor process's host demand from guest
// activity and lifecycle state.
func (vm *VM) updateDemand() {
	switch vm.state {
	case StateRunning, StateBooting, StateRestoring:
		switch {
		case vm.act.Runnable > 0:
			vm.proc.SetDemand(1)
		case vm.act.BgLoad > 0:
			// Only guest-internal background load: the monitor is one
			// host process demanding what the load would use.
			d := vm.act.BgLoad
			if d > 1 {
				d = 1
			}
			vm.proc.SetDemand(d)
		default:
			// Idle guest: timer ticks only.
			vm.proc.SetDemand(0.01)
		}
	case StateInitializing, StateSuspending:
		vm.proc.SetDemand(1)
	default:
		vm.proc.SetDemand(0)
	}
}

// recompute derives the delivered guest work rate from the host rate and
// the virtualization cost model:
//
//	guestRate × (1 + privRate×trap) = hostRate − wallOverheads
//
// Wall-clock overheads (timer emulation, world switches under host
// contention, guest context switches under guest contention) consume the
// monitor's allocation independent of how much guest work retires;
// per-event costs scale with the work itself.
func (vm *VM) recompute() {
	r := vm.proc.Rate()
	deliverable := 0.0
	if vm.guestActive() && (vm.act.Runnable > 0 || vm.act.BgLoad > 0) && r > 0 {
		share := r / vm.host.Capacity()
		wall := vm.cost.TimerRate * vm.cost.TimerExtra.Seconds()
		if vm.host.Runnable() > 1 {
			// The host preempts the monitor roughly once per quantum of
			// monitor execution; each preemption is a world switch out
			// and back.
			wsRate := share / hostos.DefaultQuantum.Seconds()
			wall += wsRate * vm.cost.WorldSwitch.Seconds()
			vm.gWS.Set(wsRate)
		} else {
			vm.gWS.Set(0)
		}
		if vm.act.Contenders() > 1 {
			// Guest context switches at quantum granularity, each one a
			// train of trapped privileged instructions.
			csRate := share / vm.cost.GuestQuantum.Seconds()
			wall += csRate * vm.cost.CtxSwitchExtra.Seconds()
		}
		perEvent := vm.act.PrivPerSec*(guest.NativeCost.Seconds()+vm.cost.TrapExtra.Seconds()) +
			vm.act.MemPerSec*vm.cost.MemTrapExtra.Seconds()
		deliverable = (r - wall*vm.host.Capacity()) / (1 + perEvent)
		if deliverable < 0 {
			deliverable = 0
		}
	}
	if deliverable != vm.rate {
		vm.rate = deliverable
		if vm.sink != nil {
			vm.sink(deliverable)
		}
	}
}

func (vm *VM) guestActive() bool {
	switch vm.state {
	case StateRunning, StateBooting, StateRestoring:
		return true
	default:
		return false
	}
}
