package vmm

import (
	"errors"
	"math"
	"testing"

	"vmgrid/internal/guest"
	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
)

type rig struct {
	k     *sim.Kernel
	host  *hostos.Host
	store *storage.Store
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	h, err := hostos.New(k, hw.ReferenceMachine("host"))
	if err != nil {
		t.Fatal(err)
	}
	s := storage.NewStore(h)
	img := storage.ImageInfo{Name: "rh72", OS: "redhat-7.2", DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB}
	if err := storage.InstallImage(s, img); err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, host: h, store: s}
}

// newVM builds a VM with a COW disk over the installed image and a local
// memory image — the non-persistent DiskFS configuration of Table 2.
func (r *rig) newVM(t *testing.T, name string) *VM {
	t.Helper()
	base, err := r.store.Open("rh72.disk")
	if err != nil {
		t.Fatal(err)
	}
	diff, err := r.store.OpenOrCreate(name + ".cow")
	if err != nil {
		t.Fatal(err)
	}
	mem, err := r.store.Open("rh72.mem")
	if err != nil {
		t.Fatal(err)
	}
	vm, err := New(r.host, Config{
		Name:     name,
		MemBytes: 128 * hw.MB,
		Disk:     storage.NewCowDisk(base, diff),
		MemImage: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestNewValidation(t *testing.T) {
	r := newRig(t)
	if _, err := New(r.host, Config{MemBytes: 1}); err == nil {
		t.Error("unnamed VM accepted")
	}
	if _, err := New(r.host, Config{Name: "x"}); err == nil {
		t.Error("memoryless VM accepted")
	}
}

func TestStateStrings(t *testing.T) {
	states := []State{StateCreated, StateInitializing, StateBooting, StateRestoring,
		StateRunning, StateSuspending, StateSuspended, StateOff}
	seen := map[string]bool{}
	for _, s := range states {
		name := s.String()
		if seen[name] {
			t.Errorf("duplicate state name %q", name)
		}
		seen[name] = true
	}
	if ColdBoot.String() != "reboot" || WarmRestore.String() != "restore" {
		t.Error("start mode names do not match the paper's terminology")
	}
}

func TestColdBootTiming(t *testing.T) {
	// Table 2, VM-reboot + non-persistent DiskFS: ~65-80 s end to end
	// (minus the ~3 s globusrun overhead added at the middleware layer).
	r := newRig(t)
	vm := r.newVM(t, "vm1")
	var doneAt sim.Time = -1
	if err := vm.Start(ColdBoot, func(err error) {
		if err != nil {
			t.Errorf("boot: %v", err)
		}
		doneAt = r.k.Now()
	}); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if doneAt < 0 {
		t.Fatal("boot never completed")
	}
	got := doneAt.Seconds()
	if got < 55 || got > 85 {
		t.Errorf("cold boot = %.1fs, want ~62-75s (Table 2 band)", got)
	}
	if vm.State() != StateRunning {
		t.Errorf("state = %v", vm.State())
	}
	if !vm.Guest().Booted() {
		t.Error("guest not booted")
	}
}

func TestWarmRestoreTiming(t *testing.T) {
	// Table 2, VM-restore + non-persistent DiskFS: ~10-25 s.
	r := newRig(t)
	vm := r.newVM(t, "vm1")
	var doneAt sim.Time = -1
	if err := vm.Start(WarmRestore, func(err error) {
		if err != nil {
			t.Errorf("restore: %v", err)
		}
		doneAt = r.k.Now()
	}); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if doneAt < 0 {
		t.Fatal("restore never completed")
	}
	got := doneAt.Seconds()
	if got < 5 || got > 25 {
		t.Errorf("warm restore = %.1fs, want ~7-22s (Table 2 band)", got)
	}
	if !vm.Guest().Booted() {
		t.Error("guest not marked booted after restore")
	}
}

func TestRestoreMuchFasterThanBoot(t *testing.T) {
	r1 := newRig(t)
	vmBoot := r1.newVM(t, "boot-vm")
	var bootAt sim.Time
	if err := vmBoot.Start(ColdBoot, func(error) { bootAt = r1.k.Now() }); err != nil {
		t.Fatal(err)
	}
	r1.k.Run()

	r2 := newRig(t)
	vmRestore := r2.newVM(t, "restore-vm")
	var restoreAt sim.Time
	if err := vmRestore.Start(WarmRestore, func(error) { restoreAt = r2.k.Now() }); err != nil {
		t.Fatal(err)
	}
	r2.k.Run()

	if restoreAt.Seconds()*3 > bootAt.Seconds() {
		t.Errorf("restore (%.1fs) not ≪ boot (%.1fs)", restoreAt.Seconds(), bootAt.Seconds())
	}
}

func TestStartGuards(t *testing.T) {
	r := newRig(t)
	vm := r.newVM(t, "vm1")
	if err := vm.Start(ColdBoot, nil); err != nil {
		t.Fatal(err)
	}
	if err := vm.Start(ColdBoot, nil); !errors.Is(err, ErrBadState) {
		t.Errorf("double start = %v", err)
	}
	r.k.Run()

	noDisk, err := New(r.host, Config{Name: "bare", MemBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := noDisk.Start(ColdBoot, nil); !errors.Is(err, ErrNoDisk) {
		t.Errorf("diskless start = %v", err)
	}

	base, _ := r.store.Open("rh72.disk")
	noMem, err := New(r.host, Config{Name: "nomem", MemBytes: 1 << 20, Disk: base})
	if err != nil {
		t.Fatal(err)
	}
	if err := noMem.Start(WarmRestore, nil); !errors.Is(err, ErrNoMemImg) {
		t.Errorf("restore without image = %v", err)
	}
}

// macroOverhead runs workload w on a VM and natively, returning the
// relative elapsed-time overhead.
func macroOverhead(t *testing.T, w guest.Workload) float64 {
	t.Helper()

	// Native run.
	kN := sim.NewKernel(1)
	hN, err := hostos.New(kN, hw.ReferenceMachine("phys"))
	if err != nil {
		t.Fatal(err)
	}
	sN := storage.NewStore(hN)
	if err := sN.Create("data", 2*hw.GB); err != nil {
		t.Fatal(err)
	}
	osN := guest.NewOS(guest.NewNativeCPU(hN.Spawn("t")))
	dataN, _ := sN.Open("data")
	osN.Mount("data", dataN)
	osN.Mount("root", dataN)
	osN.MarkBooted()
	var native guest.TaskResult
	if _, err := osN.Run(w, func(res guest.TaskResult) { native = res }); err != nil {
		t.Fatal(err)
	}
	kN.Run()
	if native.Err != nil {
		t.Fatal(native.Err)
	}

	// VM run (local disk state).
	r := newRig(t)
	vm := r.newVM(t, "vm1")
	if err := r.store.Create("data", 2*hw.GB); err != nil {
		t.Fatal(err)
	}
	dataV, _ := r.store.Open("data")
	vm.Guest().Mount("data", dataV)
	var vres guest.TaskResult
	if err := vm.Start(WarmRestore, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Guest().Run(w, func(res guest.TaskResult) { vres = res }); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if vres.Err != nil {
		t.Fatal(vres.Err)
	}
	return vres.Elapsed().Seconds()/native.Elapsed().Seconds() - 1
}

func TestSPECseisOverheadBand(t *testing.T) {
	// Table 1: SPECseis on VM with local disk = 1.2% over physical.
	ovh := macroOverhead(t, guest.SPECseis96())
	if ovh < 0.004 || ovh > 0.025 {
		t.Errorf("SPECseis VM overhead = %.2f%%, paper measured 1.2%%", ovh*100)
	}
}

func TestSPECclimateOverheadBand(t *testing.T) {
	// Table 1: SPECclimate on VM with local disk = 4.0% over physical.
	ovh := macroOverhead(t, guest.SPECclimate())
	if ovh < 0.02 || ovh > 0.06 {
		t.Errorf("SPECclimate VM overhead = %.2f%%, paper measured 4.0%%", ovh*100)
	}
}

func TestMicrobenchmarkSlowdownUnder10Percent(t *testing.T) {
	// Figure 1's takeaway: the VM adds ≤ ~10% for a CPU-bound test task
	// regardless of load placement. Check the unloaded case here; the
	// full 12-scenario sweep lives in the benchmark harness.
	w := guest.MicroTask(1)

	kN := sim.NewKernel(1)
	hN, _ := hostos.New(kN, hw.ReferenceMachine("phys"))
	osN := guest.NewOS(guest.NewNativeCPU(hN.Spawn("t")))
	osN.MarkBooted()
	var native guest.TaskResult
	if _, err := osN.Run(w, func(r guest.TaskResult) { native = r }); err != nil {
		t.Fatal(err)
	}
	kN.Run()

	r := newRig(t)
	vm := r.newVM(t, "vm1")
	var vres guest.TaskResult
	if err := vm.Start(WarmRestore, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Guest().Run(w, func(res guest.TaskResult) { vres = res }); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	r.k.Run()

	slowdown := vres.Elapsed().Seconds() / native.Elapsed().Seconds()
	if slowdown < 1.0 {
		t.Errorf("VM faster than native: %v", slowdown)
	}
	if slowdown > 1.10 {
		t.Errorf("VM slowdown = %.3f, paper shows ≤ ~1.10", slowdown)
	}
}

func TestSuspendFreezesAndUnpauseResumes(t *testing.T) {
	r := newRig(t)
	vm := r.newVM(t, "vm1")
	var res guest.TaskResult
	taskDone := false
	if err := vm.Start(WarmRestore, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Guest().Run(guest.MicroTask(30), func(rr guest.TaskResult) {
			res = rr
			taskDone = true
		}); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Let the task get going, then suspend.
	if err := r.k.RunUntil(sim.Time(25 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if vm.State() != StateRunning {
		t.Fatalf("state = %v at 25s", vm.State())
	}
	if err := vm.Suspend(nil); err != nil {
		t.Fatal(err)
	}
	if err := r.k.RunUntil(sim.Time(200 * sim.Second)); err != nil && !errors.Is(err, sim.ErrStalled) {
		t.Fatal(err)
	}
	if vm.State() != StateSuspended {
		t.Fatalf("state = %v after suspend", vm.State())
	}
	if taskDone {
		t.Fatal("task completed while suspended")
	}
	if err := vm.Unpause(); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if !taskDone {
		t.Fatal("task never completed after unpause")
	}
	if res.UserSeconds != 30 {
		t.Errorf("UserSeconds = %v", res.UserSeconds)
	}
}

func TestSuspendGuards(t *testing.T) {
	r := newRig(t)
	vm := r.newVM(t, "vm1")
	if err := vm.Suspend(nil); !errors.Is(err, ErrBadState) {
		t.Errorf("suspend before start = %v", err)
	}
	if err := vm.Unpause(); !errors.Is(err, ErrBadState) {
		t.Errorf("unpause before suspend = %v", err)
	}
}

func TestPowerOffStopsConsumption(t *testing.T) {
	r := newRig(t)
	vm := r.newVM(t, "vm1")
	if err := vm.Start(WarmRestore, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Guest().Run(guest.MicroTask(1000), nil); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.k.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	vm.PowerOff()
	if vm.State() != StateOff {
		t.Fatalf("state = %v", vm.State())
	}
	if vm.Proc().Demand() != 0 {
		t.Errorf("powered-off VM still demands %v CPU", vm.Proc().Demand())
	}
	if vm.Rate() != 0 {
		t.Errorf("powered-off VM delivers rate %v", vm.Rate())
	}
}

func TestAdoptGuestMigration(t *testing.T) {
	// Suspend on host A, adopt the guest into a VM on host B, restore,
	// and verify the task finishes with full work accounted.
	k := sim.NewKernel(1)
	hostA, err := hostos.New(k, hw.ReferenceMachine("A"))
	if err != nil {
		t.Fatal(err)
	}
	hostB, err := hostos.New(k, hw.ReferenceMachine("B"))
	if err != nil {
		t.Fatal(err)
	}
	mkVM := func(h *hostos.Host, name string) *VM {
		s := storage.NewStore(h)
		img := storage.ImageInfo{Name: "rh72", OS: "rh72", DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB}
		if err := storage.InstallImage(s, img); err != nil {
			t.Fatal(err)
		}
		base, _ := s.Open("rh72.disk")
		diff, _ := s.OpenOrCreate(name + ".cow")
		mem, _ := s.Open("rh72.mem")
		vm, err := New(h, Config{Name: name, MemBytes: 128 * hw.MB,
			Disk: storage.NewCowDisk(base, diff), MemImage: mem})
		if err != nil {
			t.Fatal(err)
		}
		return vm
	}
	vmA := mkVM(hostA, "vmA")
	var res guest.TaskResult
	finished := false
	if err := vmA.Start(WarmRestore, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vmA.Guest().Run(guest.MicroTask(60), func(r guest.TaskResult) {
			res = r
			finished = true
		}); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(sim.Time(40 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	suspended := false
	if err := vmA.Suspend(func(error) { suspended = true }); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(sim.Time(100 * sim.Second)); err != nil && !errors.Is(err, sim.ErrStalled) {
		t.Fatal(err)
	}
	if !suspended {
		t.Fatal("suspend did not complete")
	}

	vmB := mkVM(hostB, "vmB")
	migrated := vmA.Guest()
	vmA.PowerOff()
	if err := vmB.AdoptGuest(migrated); err != nil {
		t.Fatal(err)
	}
	if err := vmB.Start(WarmRestore, nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !finished {
		t.Fatal("migrated task never finished")
	}
	if res.UserSeconds != 60 {
		t.Errorf("UserSeconds = %v after migration", res.UserSeconds)
	}
	if math.Abs(res.End.Seconds()) < 60 {
		t.Errorf("implausibly fast migrated completion: %v", res.End)
	}
}

func TestAdoptGuestGuard(t *testing.T) {
	r := newRig(t)
	vm := r.newVM(t, "vm1")
	if err := vm.Start(ColdBoot, nil); err != nil {
		t.Fatal(err)
	}
	other := r.newVM(t, "vm2")
	if err := vm.AdoptGuest(other.Guest()); !errors.Is(err, ErrBadState) {
		t.Errorf("adopt into started VM = %v", err)
	}
}

func TestVMIOPenaltyExceedsNative(t *testing.T) {
	r := newRig(t)
	vm := r.newVM(t, "vm1")
	if vm.IOPenalty() <= guest.NativeIOPenalty {
		t.Error("virtual I/O not more expensive than native")
	}
}
