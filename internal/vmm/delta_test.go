package vmm

import (
	"errors"
	"testing"

	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
)

// deltaVM builds a VM like newVM but with a guest dirty rate, backed by
// a private memory file so suspend writes are observable.
func (r *rig) deltaVM(t *testing.T, name string, dirtyBps int64) *VM {
	t.Helper()
	base, err := r.store.Open("rh72.disk")
	if err != nil {
		t.Fatal(err)
	}
	diff, err := r.store.OpenOrCreate(name + ".cow")
	if err != nil {
		t.Fatal(err)
	}
	mem, err := r.store.OpenOrCreate(name + ".mem")
	if err != nil {
		t.Fatal(err)
	}
	vm, err := New(r.host, Config{
		Name:     name,
		MemBytes: 128 * hw.MB,
		Disk:     storage.NewCowDisk(base, diff),
		MemImage: mem,
		DirtyBps: dirtyBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

// suspendDuration suspends the VM and returns how long the memory-image
// write took.
func suspendDuration(t *testing.T, k *sim.Kernel, vm *VM) sim.Duration {
	t.Helper()
	start := k.Now()
	var end sim.Time = -1
	if err := vm.Suspend(func(err error) {
		if err != nil {
			t.Errorf("suspend: %v", err)
		}
		end = k.Now()
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if end < 0 {
		t.Fatal("suspend never completed")
	}
	return end.Sub(start)
}

// TestDeltaSuspendWritesOnlyDirtyWindow: the first suspend always
// writes the full image (the private file starts empty), and once the
// image is primed, subsequent suspends write only the window the guest
// could have dirtied — orders of magnitude less for a briefly-running
// guest.
func TestDeltaSuspendWritesOnlyDirtyWindow(t *testing.T) {
	r := newRig(t)
	vm := r.deltaVM(t, "vm1", 256<<10)
	started := false
	if err := vm.Start(ColdBoot, func(err error) {
		if err != nil {
			t.Errorf("start: %v", err)
		}
		started = true
	}); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if !started {
		t.Fatal("VM never started")
	}
	full := suspendDuration(t, r.k, vm)
	if err := vm.Unpause(); err != nil {
		t.Fatal(err)
	}
	// 10 s of guest time dirties ≤ 2.5 MB + the 1 MB floor.
	if err := r.k.RunUntil(r.k.Now().Add(10 * sim.Second)); err != nil && !errors.Is(err, sim.ErrStalled) {
		t.Fatal(err)
	}
	delta := suspendDuration(t, r.k, vm)
	if delta*10 >= full {
		t.Errorf("delta suspend took %.2fs vs full %.2fs — want ≥ 10x cheaper",
			delta.Seconds(), full.Seconds())
	}

	// A guest that runs long enough re-dirties everything: the delta
	// estimate must cap at the full image, not beyond.
	if err := vm.Unpause(); err != nil {
		t.Fatal(err)
	}
	if err := r.k.RunUntil(r.k.Now().Add(2 * sim.Hour)); err != nil && !errors.Is(err, sim.ErrStalled) {
		t.Fatal(err)
	}
	recap := suspendDuration(t, r.k, vm)
	if recap > full+sim.Second {
		t.Errorf("fully-dirty suspend took %.2fs, full write takes %.2fs — estimate exceeds the image",
			recap.Seconds(), full.Seconds())
	}
}

// TestDeltaDisabledWithoutDirtyRate: DirtyBps zero keeps the historical
// full write on every suspend.
func TestDeltaDisabledWithoutDirtyRate(t *testing.T) {
	r := newRig(t)
	vm := r.deltaVM(t, "vm1", 0)
	if err := vm.Start(ColdBoot, nil); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	first := suspendDuration(t, r.k, vm)
	if err := vm.Unpause(); err != nil {
		t.Fatal(err)
	}
	if err := r.k.RunUntil(r.k.Now().Add(10 * sim.Second)); err != nil && !errors.Is(err, sim.ErrStalled) {
		t.Fatal(err)
	}
	second := suspendDuration(t, r.k, vm)
	// Both are full 128 MB writes; allow scheduling slack.
	if second*2 < first {
		t.Errorf("second suspend (%.2fs) much cheaper than first (%.2fs) with delta off",
			second.Seconds(), first.Seconds())
	}
}

// TestPrimeImageArmsDelta: priming (what migration arrival and failover
// restore do after reading the staged image back) makes even the first
// suspend a delta.
func TestPrimeImageArmsDelta(t *testing.T) {
	r := newRig(t)
	vm := r.deltaVM(t, "vm1", 256<<10)
	if err := vm.Start(ColdBoot, nil); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	vm.PrimeImage()
	if err := r.k.RunUntil(r.k.Now().Add(10 * sim.Second)); err != nil && !errors.Is(err, sim.ErrStalled) {
		t.Fatal(err)
	}
	primed := suspendDuration(t, r.k, vm)

	r2 := newRig(t)
	vm2 := r2.deltaVM(t, "vm1", 256<<10)
	if err := vm2.Start(ColdBoot, nil); err != nil {
		t.Fatal(err)
	}
	r2.k.Run()
	if err := r2.k.RunUntil(r2.k.Now().Add(10 * sim.Second)); err != nil && !errors.Is(err, sim.ErrStalled) {
		t.Fatal(err)
	}
	unprimed := suspendDuration(t, r2.k, vm2)
	if primed*10 >= unprimed {
		t.Errorf("primed first suspend took %.2fs vs unprimed %.2fs — want ≥ 10x cheaper",
			primed.Seconds(), unprimed.Seconds())
	}
}
