package vmm

import (
	"fmt"

	"vmgrid/internal/guest"
	"vmgrid/internal/obs"
)

// StartMode selects how a VM comes up.
type StartMode int

// Start modes, matching Table 2's two instantiation paths.
const (
	// ColdBoot boots the guest OS from the virtual disk ("VM-reboot").
	ColdBoot StartMode = iota + 1
	// WarmRestore loads a saved memory image and resumes the guest from
	// its post-boot state ("VM-restore").
	WarmRestore
)

// String names the mode.
func (m StartMode) String() string {
	switch m {
	case ColdBoot:
		return "reboot"
	case WarmRestore:
		return "restore"
	default:
		return fmt.Sprintf("StartMode(%d)", int(m))
	}
}

// restoreChunk is the unit in which the monitor pages a saved memory
// image back in.
const restoreChunk int64 = 1 << 20

// Start brings the VM up. done receives nil once the guest is running
// (booted or resumed). Start returns an error immediately if the VM is
// not freshly created or lacks the needed state files.
func (vm *VM) Start(mode StartMode, done func(error)) error {
	if vm.state != StateCreated && vm.state != StateOff && vm.state != StateSuspended {
		return fmt.Errorf("%w: start in %v", ErrBadState, vm.state)
	}
	if vm.cfg.Disk == nil {
		return ErrNoDisk
	}
	if mode == WarmRestore && vm.cfg.MemImage == nil {
		return ErrNoMemImg
	}

	var runSpan obs.Span
	finish := func(err error) {
		runSpan.EndErr(err)
		if err == nil {
			vm.state = StateRunning
		} else {
			vm.state = StateOff
		}
		vm.updateDemand()
		vm.recompute()
		if done != nil {
			done(err)
		}
	}

	// Phase 1: the monitor process itself starts up (CPU work on the
	// host, so a loaded host starts VMs slower).
	vm.state = StateInitializing
	vm.updateDemand()
	initSpan := vm.cfg.Trace.BeginChild(vm.cfg.Ctx, vm.cfg.Name, "vmm", "init")
	vm.proc.RunWork(vm.cost.InitWork, func() {
		initSpan.End()
		// Re-register the rate hook that RunWork cleared.
		vm.proc.OnRate(func(float64) { vm.recompute() })
		switch mode {
		case ColdBoot:
			vm.state = StateBooting
			vm.updateDemand()
			vm.recompute()
			runSpan = vm.cfg.Trace.BeginChild(vm.cfg.Ctx, vm.cfg.Name, "vmm", "boot")
			if err := vm.os.Boot(guest.DefaultBoot(), finish); err != nil {
				finish(fmt.Errorf("vmm %q: %w", vm.cfg.Name, err))
			}
		case WarmRestore:
			vm.state = StateRestoring
			vm.updateDemand()
			vm.recompute()
			runSpan = vm.cfg.Trace.BeginChild(vm.cfg.Ctx, vm.cfg.Name, "vmm", "restore")
			vm.readMemImage(0, func() {
				vm.os.MarkBooted()
				if err := vm.os.ResumeWarm(guest.DefaultResume(), finish); err != nil {
					finish(fmt.Errorf("vmm %q: %w", vm.cfg.Name, err))
				}
			})
		default:
			finish(fmt.Errorf("vmm %q: unknown start mode %v", vm.cfg.Name, mode))
		}
	})
	return nil
}

// readMemImage streams the saved memory image back in, chunk by chunk,
// through whatever backend holds it (local file or grid virtual file
// system).
func (vm *VM) readMemImage(off int64, done func()) {
	size := vm.cfg.MemBytes
	if off >= size {
		done()
		return
	}
	n := restoreChunk
	if off+n > size {
		n = size - off
	}
	vm.cfg.MemImage.ReadSequential(off, n, func() {
		vm.readMemImage(off+n, done)
	})
}

// Suspend checkpoints the running guest: its memory is written to the
// memory image backend and the VM stops consuming CPU. The guest's task
// state is preserved in place, so a later Start(WarmRestore) — possibly
// on another host after the state files are transferred — continues the
// computation.
func (vm *VM) Suspend(done func(error)) error {
	if vm.state != StateRunning {
		return fmt.Errorf("%w: suspend in %v", ErrBadState, vm.state)
	}
	if vm.cfg.MemImage == nil {
		return ErrNoMemImg
	}
	vm.state = StateSuspending
	vm.updateDemand()
	vm.recompute() // freezes guest tasks at rate 0
	sp := vm.cfg.Trace.BeginChild(vm.cfg.Ctx, vm.cfg.Name, "vmm", "suspend")
	vm.writeMemImage(0, vm.dirtyBytes(), func() {
		sp.End()
		vm.imagePrimed = true
		vm.imageSyncAt = vm.Kernel().Now()
		vm.state = StateSuspended
		vm.updateDemand()
		if done != nil {
			done(nil)
		}
	})
	return nil
}

// PrimeImage marks the memory image as exactly matching guest memory
// right now, arming delta suspends. Callers must guarantee that the
// backend a future Suspend writes holds the guest's full memory — true
// after a WarmRestore whose restore source IS the suspend target (the
// migration-arrival and failover-restore paths, where the staged
// session file serves both roles), never for a fresh session whose
// private file is still empty.
func (vm *VM) PrimeImage() {
	vm.imagePrimed = true
	vm.imageSyncAt = vm.Kernel().Now()
}

// dirtyBytes estimates how much of the memory image a Suspend must
// rewrite. Without dirty-rate modeling (or before the first full
// write), that is everything; afterwards it is the bytes the guest
// could have dirtied since the image was last in sync, floored at one
// restore chunk so a suspend always writes something.
func (vm *VM) dirtyBytes() int64 {
	size := vm.cfg.MemBytes
	if vm.cfg.DirtyBps <= 0 || !vm.imagePrimed {
		return size
	}
	elapsed := vm.Kernel().Now().Sub(vm.imageSyncAt).Seconds()
	dirty := restoreChunk + int64(float64(vm.cfg.DirtyBps)*elapsed)
	if dirty > size {
		dirty = size
	}
	return dirty
}

func (vm *VM) writeMemImage(off, limit int64, done func()) {
	if off >= limit {
		done()
		return
	}
	n := restoreChunk
	if off+n > limit {
		n = limit - off
	}
	vm.cfg.MemImage.Write(off, n, func() {
		vm.writeMemImage(off+n, limit, done)
	})
}

// Unpause resumes a suspended VM in place (no memory image read: the
// pages are still resident). For cross-host resume use Start(WarmRestore)
// on a new VM that adopted the guest.
func (vm *VM) Unpause() error {
	if vm.state != StateSuspended {
		return fmt.Errorf("%w: unpause in %v", ErrBadState, vm.state)
	}
	vm.state = StateRunning
	vm.updateDemand()
	vm.recompute()
	return nil
}

// PowerOff stops the VM. Guest state is abandoned (non-persistent
// sessions discard their COW diff at this point).
func (vm *VM) PowerOff() {
	vm.state = StateOff
	vm.updateDemand()
	vm.recompute()
}

// AdoptGuest replaces the VM's guest OS with one carried over from
// another VM — the memory-state half of migration. The guest's CPU
// provider is rebound to this VM; its mounts and task state come along.
// Valid only before the VM starts.
func (vm *VM) AdoptGuest(os *guest.OS) error {
	if vm.state != StateCreated {
		return fmt.Errorf("%w: adopt guest in %v", ErrBadState, vm.state)
	}
	vm.os = os
	os.Rebind(vm)
	if vm.cfg.Disk != nil {
		os.Mount("root", vm.cfg.Disk)
	}
	return nil
}
