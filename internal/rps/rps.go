// Package rps is the resource prediction system the paper relies on for
// application-perspective adaptation (§3.2): streaming sensors sample
// resource signals (host load, network bandwidth), time series hold the
// history, and predictors (last-value, moving mean, autoregressive)
// forecast the next measurement so applications can pick resources. It
// follows the architecture of Dinda's RPS toolkit.
package rps

import (
	"errors"
	"fmt"
	"math"

	"vmgrid/internal/sim"
)

// Series is a bounded ring buffer of measurements.
type Series struct {
	data  []float64
	start int
	n     int
}

// NewSeries creates a series holding at most capacity samples.
func NewSeries(capacity int) (*Series, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("rps: series capacity %d", capacity)
	}
	return &Series{data: make([]float64, capacity)}, nil
}

// Add appends a sample, evicting the oldest when full.
func (s *Series) Add(v float64) {
	if s.n < len(s.data) {
		s.data[(s.start+s.n)%len(s.data)] = v
		s.n++
		return
	}
	s.data[s.start] = v
	s.start = (s.start + 1) % len(s.data)
}

// Len returns the number of stored samples.
func (s *Series) Len() int { return s.n }

// Last returns the most recent sample (0 if empty).
func (s *Series) Last() float64 {
	if s.n == 0 {
		return 0
	}
	return s.data[(s.start+s.n-1)%len(s.data)]
}

// Values returns the samples oldest-first (a copy).
func (s *Series) Values() []float64 {
	out := make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.data[(s.start+i)%len(s.data)]
	}
	return out
}

// Mean returns the sample mean (0 if empty).
func (s *Series) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values() {
		sum += v
	}
	return sum / float64(s.n)
}

// Sensor periodically samples a measurement function into a series —
// the streaming time-series feed of the RPS architecture.
type Sensor struct {
	k        *sim.Kernel
	interval sim.Duration
	measure  func() float64
	series   *Series
	tee      func(at sim.Time, v float64)
	running  bool
	next     sim.EventID
}

// NewSensor creates a sensor sampling measure every interval into a
// series of the given history length.
func NewSensor(k *sim.Kernel, interval sim.Duration, history int, measure func() float64) (*Sensor, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("rps: sensor interval %v", interval)
	}
	if measure == nil {
		return nil, errors.New("rps: sensor without a measurement function")
	}
	series, err := NewSeries(history)
	if err != nil {
		return nil, err
	}
	return &Sensor{k: k, interval: interval, measure: measure, series: series}, nil
}

// Series returns the sensor's backing series.
func (s *Sensor) Series() *Series { return s.series }

// Tee registers an observer invoked with every sample the sensor takes,
// stamped with the sampling instant — the bridge that lets the
// telemetry pipeline mirror sensor readings into its timestamped store
// without a second measurement. At most one observer; nil disables.
func (s *Sensor) Tee(fn func(at sim.Time, v float64)) { s.tee = fn }

// Start begins sampling (first sample immediately).
func (s *Sensor) Start() {
	if s.running {
		return
	}
	s.running = true
	s.tick()
}

// Stop halts sampling.
func (s *Sensor) Stop() {
	if !s.running {
		return
	}
	s.running = false
	s.k.Cancel(s.next)
	s.next = sim.EventID{}
}

func (s *Sensor) tick() {
	if !s.running {
		return
	}
	v := s.measure()
	s.series.Add(v)
	if s.tee != nil {
		s.tee(s.k.Now(), v)
	}
	s.next = s.k.After(s.interval, s.tick)
}

// Predictor forecasts the next sample of a signal.
type Predictor interface {
	// Name identifies the model.
	Name() string
	// Train fits the model to a history (oldest first).
	Train(history []float64) error
	// Predict returns the one-step-ahead forecast.
	Predict() float64
	// Observe feeds the actual next sample, sliding the model forward.
	Observe(v float64)
}

// LastValue predicts "the next value equals the current one" — the
// baseline that is surprisingly hard to beat on host load at short
// leads.
type LastValue struct{ last float64 }

// Name implements Predictor.
func (p *LastValue) Name() string { return "LAST" }

// Train implements Predictor.
func (p *LastValue) Train(history []float64) error {
	if len(history) == 0 {
		return errors.New("rps: LAST needs at least one sample")
	}
	p.last = history[len(history)-1]
	return nil
}

// Predict implements Predictor.
func (p *LastValue) Predict() float64 { return p.last }

// Observe implements Predictor.
func (p *LastValue) Observe(v float64) { p.last = v }

// MovingMean predicts the mean of the last W samples.
type MovingMean struct {
	window  int
	samples []float64
}

// NewMovingMean creates a mean predictor over a window of w samples.
func NewMovingMean(w int) (*MovingMean, error) {
	if w <= 0 {
		return nil, fmt.Errorf("rps: window %d", w)
	}
	return &MovingMean{window: w}, nil
}

// Name implements Predictor.
func (p *MovingMean) Name() string { return fmt.Sprintf("MEAN(%d)", p.window) }

// Train implements Predictor.
func (p *MovingMean) Train(history []float64) error {
	if len(history) == 0 {
		return errors.New("rps: MEAN needs at least one sample")
	}
	start := len(history) - p.window
	if start < 0 {
		start = 0
	}
	p.samples = append(p.samples[:0], history[start:]...)
	return nil
}

// Predict implements Predictor.
func (p *MovingMean) Predict() float64 {
	if len(p.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range p.samples {
		sum += v
	}
	return sum / float64(len(p.samples))
}

// Observe implements Predictor.
func (p *MovingMean) Observe(v float64) {
	p.samples = append(p.samples, v)
	if len(p.samples) > p.window {
		p.samples = p.samples[1:]
	}
}

// AR is an autoregressive model AR(p) fit by the Yule-Walker equations
// (Levinson-Durbin recursion) — the workhorse model of the RPS toolkit
// for host load.
type AR struct {
	order  int
	coeffs []float64
	mean   float64
	recent []float64 // last `order` samples, newest last
}

// NewAR creates an AR model of the given order.
func NewAR(order int) (*AR, error) {
	if order <= 0 {
		return nil, fmt.Errorf("rps: AR order %d", order)
	}
	return &AR{order: order}, nil
}

// Name implements Predictor.
func (p *AR) Name() string { return fmt.Sprintf("AR(%d)", p.order) }

// Train implements Predictor: fit coefficients by Levinson-Durbin on the
// sample autocorrelations.
func (p *AR) Train(history []float64) error {
	if len(history) < p.order*2+1 {
		return fmt.Errorf("rps: AR(%d) needs ≥ %d samples, got %d", p.order, p.order*2+1, len(history))
	}
	n := len(history)
	var mean float64
	for _, v := range history {
		mean += v
	}
	mean /= float64(n)

	// Autocorrelations r[0..order].
	r := make([]float64, p.order+1)
	for lag := 0; lag <= p.order; lag++ {
		for i := lag; i < n; i++ {
			r[lag] += (history[i] - mean) * (history[i-lag] - mean)
		}
		r[lag] /= float64(n)
	}
	if r[0] <= 1e-12 {
		// Constant signal: degenerate to predicting the mean.
		p.coeffs = make([]float64, p.order)
		p.mean = mean
		p.recent = append(p.recent[:0], history[n-p.order:]...)
		return nil
	}

	// Levinson-Durbin recursion.
	a := make([]float64, p.order+1)
	next := make([]float64, p.order+1)
	e := r[0]
	for k := 1; k <= p.order; k++ {
		var acc float64
		for j := 1; j < k; j++ {
			acc += a[j] * r[k-j]
		}
		lambda := (r[k] - acc) / e
		copy(next, a)
		for j := 1; j < k; j++ {
			next[j] = a[j] - lambda*a[k-j]
		}
		next[k] = lambda
		copy(a, next)
		e *= 1 - lambda*lambda
		if e <= 0 {
			e = 1e-12
		}
	}
	p.coeffs = a[1:]
	p.mean = mean
	p.recent = append(p.recent[:0], history[n-p.order:]...)
	return nil
}

// Predict implements Predictor.
func (p *AR) Predict() float64 {
	if len(p.recent) < p.order {
		return p.mean
	}
	pred := p.mean
	for j := 0; j < p.order; j++ {
		pred += p.coeffs[j] * (p.recent[len(p.recent)-1-j] - p.mean)
	}
	return pred
}

// Observe implements Predictor.
func (p *AR) Observe(v float64) {
	p.recent = append(p.recent, v)
	if len(p.recent) > p.order {
		p.recent = p.recent[1:]
	}
}

// Eval reports one-step-ahead accuracy of a predictor on a signal.
type Eval struct {
	Predictor string
	MSE       float64
	MAE       float64
	N         int
}

// Evaluate trains p on the first train samples of data, then walks the
// remainder predicting one step ahead and observing the truth.
func Evaluate(p Predictor, data []float64, train int) (Eval, error) {
	if train <= 0 || train >= len(data) {
		return Eval{}, fmt.Errorf("rps: train split %d of %d", train, len(data))
	}
	if err := p.Train(data[:train]); err != nil {
		return Eval{}, err
	}
	var mse, mae float64
	n := 0
	for i := train; i < len(data); i++ {
		pred := p.Predict()
		err := pred - data[i]
		mse += err * err
		mae += math.Abs(err)
		p.Observe(data[i])
		n++
	}
	return Eval{Predictor: p.Name(), MSE: mse / float64(n), MAE: mae / float64(n), N: n}, nil
}
