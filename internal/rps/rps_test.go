package rps

import (
	"math"
	"testing"
	"testing/quick"

	"vmgrid/internal/sim"
	"vmgrid/internal/trace"
)

func TestSeriesRingBuffer(t *testing.T) {
	s, err := NewSeries(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Last() != 0 || s.Mean() != 0 {
		t.Error("empty series not zero-valued")
	}
	for i := 1; i <= 5; i++ {
		s.Add(float64(i))
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	vals := s.Values()
	want := []float64{3, 4, 5}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Values = %v, want %v", vals, want)
		}
	}
	if s.Last() != 5 {
		t.Errorf("Last = %v", s.Last())
	}
	if s.Mean() != 4 {
		t.Errorf("Mean = %v", s.Mean())
	}
}

func TestSeriesValidation(t *testing.T) {
	if _, err := NewSeries(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestSensorSamples(t *testing.T) {
	k := sim.NewKernel(1)
	val := 1.0
	sensor, err := NewSensor(k, sim.Second, 100, func() float64 { return val })
	if err != nil {
		t.Fatal(err)
	}
	sensor.Start()
	sensor.Start() // idempotent
	k.At(sim.Time(2500*sim.Millisecond), func() { val = 9 })
	_ = k.RunUntil(sim.Time(4*sim.Second + 1))
	sensor.Stop()
	got := sensor.Series().Values()
	want := []float64{1, 1, 1, 9, 9} // t=0,1,2,3,4
	if len(got) != len(want) {
		t.Fatalf("samples = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("samples = %v, want %v", got, want)
		}
	}
	k.Run()
	if sensor.Series().Len() != len(want) {
		t.Error("sensor kept sampling after Stop")
	}
}

func TestSensorValidation(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := NewSensor(k, 0, 10, func() float64 { return 0 }); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewSensor(k, sim.Second, 10, nil); err == nil {
		t.Error("nil measure accepted")
	}
}

func TestLastValue(t *testing.T) {
	var p LastValue
	if err := p.Train(nil); err == nil {
		t.Error("empty train accepted")
	}
	if err := p.Train([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if p.Predict() != 3 {
		t.Errorf("Predict = %v", p.Predict())
	}
	p.Observe(7)
	if p.Predict() != 7 {
		t.Errorf("Predict after Observe = %v", p.Predict())
	}
}

func TestMovingMean(t *testing.T) {
	if _, err := NewMovingMean(0); err == nil {
		t.Error("zero window accepted")
	}
	p, err := NewMovingMean(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train([]float64{10, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got := p.Predict(); got != 2 {
		t.Errorf("Predict = %v, want 2 (window excludes the 10)", got)
	}
	p.Observe(6) // window now 2,3,6
	if got := p.Predict(); math.Abs(got-11.0/3) > 1e-12 {
		t.Errorf("Predict = %v", got)
	}
}

func TestARRecoversAR1Process(t *testing.T) {
	// Generate a known AR(1) process and verify the fit recovers phi.
	rng := sim.NewRNG(5)
	const phi = 0.8
	n := 20000
	data := make([]float64, n)
	for i := 1; i < n; i++ {
		data[i] = phi*data[i-1] + rng.Normal(0, 0.1)
	}
	p, err := NewAR(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(data); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.coeffs[0]-phi) > 0.05 {
		t.Errorf("AR(1) coefficient = %v, want ~%v", p.coeffs[0], phi)
	}
}

func TestARDegenerateConstantSignal(t *testing.T) {
	p, err := NewAR(2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 100)
	for i := range data {
		data[i] = 4.2
	}
	if err := p.Train(data); err != nil {
		t.Fatal(err)
	}
	if got := p.Predict(); math.Abs(got-4.2) > 1e-9 {
		t.Errorf("constant-signal prediction = %v", got)
	}
}

func TestARValidation(t *testing.T) {
	if _, err := NewAR(0); err == nil {
		t.Error("order 0 accepted")
	}
	p, _ := NewAR(8)
	if err := p.Train([]float64{1, 2, 3}); err == nil {
		t.Error("undersized history accepted")
	}
}

func TestEvaluateOrdering(t *testing.T) {
	// On strongly autocorrelated host load, AR and LAST must beat the
	// long-window mean in one-step MSE — RPS's core observation.
	tr := trace.Synthetic(trace.Heavy, sim.NewRNG(11), 4000)
	data := tr.Loads
	const train = 1000

	ar, _ := NewAR(8)
	arEval, err := Evaluate(ar, data, train)
	if err != nil {
		t.Fatal(err)
	}
	lastEval, err := Evaluate(&LastValue{}, data, train)
	if err != nil {
		t.Fatal(err)
	}
	mm, _ := NewMovingMean(500)
	meanEval, err := Evaluate(mm, data, train)
	if err != nil {
		t.Fatal(err)
	}

	if arEval.MSE >= meanEval.MSE {
		t.Errorf("AR MSE %v not better than long-mean MSE %v", arEval.MSE, meanEval.MSE)
	}
	if lastEval.MSE >= meanEval.MSE {
		t.Errorf("LAST MSE %v not better than long-mean MSE %v", lastEval.MSE, meanEval.MSE)
	}
	if arEval.N != len(data)-train {
		t.Errorf("N = %d", arEval.N)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(&LastValue{}, []float64{1, 2}, 0); err == nil {
		t.Error("train=0 accepted")
	}
	if _, err := Evaluate(&LastValue{}, []float64{1, 2}, 2); err == nil {
		t.Error("train=len accepted")
	}
}

// Property: series Values() always returns the most recent ≤cap samples
// in order.
func TestSeriesProperty(t *testing.T) {
	prop := func(capRaw uint8, vals []float64) bool {
		capacity := int(capRaw%10) + 1
		s, err := NewSeries(capacity)
		if err != nil {
			return false
		}
		for _, v := range vals {
			s.Add(v)
		}
		got := s.Values()
		want := vals
		if len(vals) > capacity {
			want = vals[len(vals)-capacity:]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
