package gis

import (
	"errors"
	"fmt"
	"testing"

	"vmgrid/internal/sim"
)

func TestRegisterLookup(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k)
	if err := s.Register(KindHost, "n1", map[string]any{AttrSpeed: 1.0, AttrSite: "nwu"}, 0); err != nil {
		t.Fatal(err)
	}
	e, err := s.Lookup(KindHost, "n1")
	if err != nil {
		t.Fatal(err)
	}
	if e.Float(AttrSpeed) != 1.0 || e.Str(AttrSite) != "nwu" {
		t.Errorf("attrs = %+v", e.Attrs)
	}
	if _, err := s.Lookup(KindHost, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing lookup = %v", err)
	}
	if err := s.Register(KindHost, "", nil, 0); err == nil {
		t.Error("empty name accepted")
	}
}

func TestAttrsAreCopied(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k)
	attrs := map[string]any{AttrSlots: int64(4)}
	if err := s.Register(KindVMFuture, "n1", attrs, 0); err != nil {
		t.Fatal(err)
	}
	attrs[AttrSlots] = int64(0) // caller mutation must not leak in
	e, err := s.Lookup(KindVMFuture, "n1")
	if err != nil {
		t.Fatal(err)
	}
	if e.Int(AttrSlots) != 4 {
		t.Error("registry shares caller's map")
	}
}

func TestTTLExpiry(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k)
	if err := s.Register(KindVM, "vm1", nil, 10*sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup(KindVM, "vm1"); err != nil {
		t.Fatal(err)
	}
	_ = k.RunUntil(sim.Time(11 * sim.Second))
	if _, err := s.Lookup(KindVM, "vm1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("expired lookup = %v", err)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d with only expired entries", s.Len())
	}
	if n := s.Expire(); n != 1 {
		t.Errorf("Expire dropped %d", n)
	}
	// Refresh resurrects.
	if err := s.Register(KindVM, "vm1", nil, 10*sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup(KindVM, "vm1"); err != nil {
		t.Errorf("refreshed lookup = %v", err)
	}
}

func TestSelectSortedAndFiltered(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k)
	for i, site := range []string{"ufl", "nwu", "nwu"} {
		if err := s.Register(KindHost, fmt.Sprintf("h%d", 3-i), map[string]any{AttrSite: site}, 0); err != nil {
			t.Fatal(err)
		}
	}
	all := s.Select(KindHost, nil)
	if len(all) != 3 || all[0].Name != "h1" || all[2].Name != "h3" {
		t.Errorf("Select order: %v", all)
	}
	nwu := s.Select(KindHost, func(e Entry) bool { return e.Str(AttrSite) == "nwu" })
	if len(nwu) != 2 {
		t.Errorf("filtered Select = %d entries", len(nwu))
	}
	if got := s.SelectBounded(KindHost, nil, 2); len(got) != 2 {
		t.Errorf("SelectBounded = %d", len(got))
	}
}

func TestDeregister(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k)
	_ = s.Register(KindDataServer, "d1", nil, 0)
	s.Deregister(KindDataServer, "d1")
	s.Deregister(KindDataServer, "d1") // idempotent
	if s.Len() != 0 {
		t.Error("deregister did not remove")
	}
}

func TestJoin(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k)
	_ = s.Register(KindVMFuture, "f1", map[string]any{AttrSite: "nwu"}, 0)
	_ = s.Register(KindVMFuture, "f2", map[string]any{AttrSite: "ufl"}, 0)
	_ = s.Register(KindImageServer, "i1", map[string]any{AttrSite: "nwu"}, 0)
	pairs := s.Join(KindVMFuture, KindImageServer, func(a, b Entry) bool {
		return a.Str(AttrSite) == b.Str(AttrSite)
	})
	if len(pairs) != 1 || pairs[0][0].Name != "f1" || pairs[0][1].Name != "i1" {
		t.Errorf("Join = %v", pairs)
	}
	if all := s.Join(KindVMFuture, KindImageServer, nil); len(all) != 2 {
		t.Errorf("unconditioned join = %d pairs", len(all))
	}
}

func TestFindFutures(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k)
	reg := func(name string, mem, disk, slots int64, speed, load float64, site string) {
		t.Helper()
		err := s.Register(KindVMFuture, name, map[string]any{
			AttrMemBytes: mem, AttrDiskBytes: disk, AttrSlots: slots,
			AttrSpeed: speed, AttrLoad: load, AttrSite: site,
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	reg("big-busy", 2<<30, 100<<30, 4, 1.2, 0.9, "nwu")
	reg("small", 128<<20, 10<<30, 1, 1.0, 0.0, "nwu")
	reg("big-idle", 2<<30, 100<<30, 2, 1.2, 0.1, "ufl")
	reg("full", 4<<30, 100<<30, 0, 2.0, 0.0, "nwu") // no slots

	got := s.FindFutures(FutureQuery{MinMemBytes: 256 << 20})
	if len(got) != 2 {
		t.Fatalf("futures = %v", got)
	}
	if got[0].Name != "big-idle" {
		t.Errorf("best future = %s, want least-loaded big-idle", got[0].Name)
	}

	nwuOnly := s.FindFutures(FutureQuery{Site: "nwu"})
	for _, e := range nwuOnly {
		if e.Str(AttrSite) != "nwu" {
			t.Errorf("site filter leaked %s", e.Name)
		}
	}
	if len(s.FindFutures(FutureQuery{MinSpeed: 5})) != 0 {
		t.Error("impossible speed query returned futures")
	}
}

func TestEntryTypeHelpers(t *testing.T) {
	e := Entry{Attrs: map[string]any{
		"i64": int64(5), "i": 7, "f": 2.5, "s": "x",
	}}
	if e.Int("i64") != 5 || e.Int("i") != 7 || e.Int("f") != 0 || e.Int("missing") != 0 {
		t.Error("Int helper wrong")
	}
	if e.Float("f") != 2.5 || e.Float("i64") != 5 || e.Float("i") != 7 || e.Float("s") != 0 {
		t.Error("Float helper wrong")
	}
	if e.Str("s") != "x" || e.Str("i") != "" {
		t.Error("Str helper wrong")
	}
}
