// GIS replication: the registry is the single point the whole
// architecture hangs off (registration, VM-future discovery, failover's
// restage query), so this file makes it partition-tolerant. A Cluster
// pins N Service replicas to distinct netsim nodes; writes take effect
// only when the originating node can reach a majority of replicas
// (quorum, fail-closed), while reads always come from a local replica —
// possibly stale on the minority side of a partition, and marked so by
// the read Client. Periodic anti-entropy gossip exchanges timestamped
// last-writer-wins entries (including tombstones) over the simulated
// network, so a healed partition reconverges to one view.
package gis

import (
	"errors"
	"fmt"
	"sort"

	"vmgrid/internal/netsim"
	"vmgrid/internal/retry"
	"vmgrid/internal/sim"
)

// ErrUnreachable is returned by Client reads when no replica can be
// reached from the reader's node within the retry budget.
var ErrUnreachable = errors.New("gis: no reachable replica")

// Stamp totally orders writes for last-writer-wins reconciliation:
// simulated time first, then a cluster-wide sequence number, then the
// origin node name. Within one cluster the sequence number alone is
// unique, so ties cannot occur; Origin is kept for debuggability.
type Stamp struct {
	T      sim.Time
	Seq    uint64
	Origin string
}

// After reports whether a supersedes b in LWW order.
func (a Stamp) After(b Stamp) bool {
	if a.T != b.T {
		return a.T > b.T
	}
	if a.Seq != b.Seq {
		return a.Seq > b.Seq
	}
	return a.Origin > b.Origin
}

// stamped is one replica's metadata for a key: the stamp of the value
// it currently holds, and whether that value is a tombstone.
type stamped struct {
	st  Stamp
	del bool
}

// Replica is one member of a Cluster: a Service pinned to a network
// node, plus the per-key stamps that anti-entropy reconciles on.
type Replica struct {
	Svc  *Service
	Node string

	meta map[string]stamped
}

// gossipEntry is one record in flight between replicas.
type gossipEntry struct {
	key string
	stamped
	e Entry // zero-valued for tombstones
}

// Modeled wire cost of anti-entropy traffic.
const (
	gossipBaseBytes     = 64
	gossipPerEntryBytes = 256
)

// DefaultGossipInterval is the anti-entropy cadence when the caller
// passes zero.
const DefaultGossipInterval = 1 * sim.Second

// Cluster replicates a registry across netsim nodes. Writes are
// synchronous quorum operations (control-plane RPC latency is folded
// into the callers' heartbeat cadence); anti-entropy runs on the
// simulated wire and pays real latency, bandwidth, and partitions.
type Cluster struct {
	k    *sim.Kernel
	net  *netsim.Network
	reps []*Replica

	seq            uint64
	gossipEvery    sim.Duration
	running        bool
	minorityWrites uint64
	gossipRounds   uint64
}

// NewCluster replicates primary across the named netsim nodes (which
// must exist and be distinct). The primary becomes replica 0, pinned to
// nodes[0]; the remaining replicas start as copies of its current
// state. gossipEvery ≤ 0 selects DefaultGossipInterval. Anti-entropy
// does not run until Start.
func NewCluster(net *netsim.Network, primary *Service, nodes []string, gossipEvery sim.Duration) (*Cluster, error) {
	if primary.cluster != nil {
		return nil, fmt.Errorf("gis: service already replicated")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("gis: cluster needs at least one node")
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if net.Node(n) == nil {
			return nil, fmt.Errorf("gis: cluster node %q not in network", n)
		}
		if seen[n] {
			return nil, fmt.Errorf("gis: duplicate cluster node %q", n)
		}
		seen[n] = true
	}
	if gossipEvery <= 0 {
		gossipEvery = DefaultGossipInterval
	}
	c := &Cluster{k: primary.k, net: net, gossipEvery: gossipEvery}
	for i, n := range nodes {
		svc := primary
		if i > 0 {
			svc = New(primary.k)
			for k, e := range primary.records {
				svc.records[k] = e
			}
		}
		svc.cluster = c
		svc.home = n
		r := &Replica{Svc: svc, Node: n, meta: make(map[string]stamped, len(primary.records))}
		c.reps = append(c.reps, r)
	}
	// Seed identical stamps for pre-existing state so the cluster starts
	// converged.
	now := c.k.Now()
	keys := make([]string, 0, len(primary.records))
	for k := range primary.records {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c.seq++
		st := stamped{st: Stamp{T: now, Seq: c.seq}}
		for _, r := range c.reps {
			r.meta[k] = st
		}
	}
	return c, nil
}

// Start begins periodic anti-entropy. Idempotent.
func (c *Cluster) Start() {
	if c.running || len(c.reps) < 2 {
		return
	}
	c.running = true
	c.k.After(c.gossipEvery, c.tick)
}

// Stop halts anti-entropy after the currently scheduled round.
func (c *Cluster) Stop() { c.running = false }

func (c *Cluster) tick() {
	if !c.running {
		return
	}
	c.gossipRounds++
	c.gossip()
	c.k.After(c.gossipEvery, c.tick)
}

// gossip pushes every replica's full state to every peer it can send
// to. Deliveries ride the simulated network: they pay latency, queue
// for bandwidth, and are lost to partitions exactly like data traffic.
// Full-state push keeps reconciliation trivially correct at control-
// plane sizes (N ≤ 5, hundreds of records).
func (c *Cluster) gossip() {
	for _, src := range c.reps {
		var snap []gossipEntry
		for _, dst := range c.reps {
			if dst == src {
				continue
			}
			if snap == nil {
				snap = src.snapshot()
			}
			size := int64(gossipBaseBytes + gossipPerEntryBytes*len(snap))
			to := dst
			_ = c.net.Send(src.Node, dst.Node, size, snap, func(payload any) {
				to.merge(payload.([]gossipEntry))
			})
		}
	}
}

// snapshot copies a replica's stamped state for transmission.
func (r *Replica) snapshot() []gossipEntry {
	out := make([]gossipEntry, 0, len(r.meta))
	for k, m := range r.meta {
		ge := gossipEntry{key: k, stamped: m}
		if !m.del {
			ge.e = r.Svc.records[k]
		}
		out = append(out, ge)
	}
	return out
}

// merge applies newer-stamped entries from a peer's snapshot. Keys are
// independent, so application order within a snapshot cannot matter.
func (r *Replica) merge(snap []gossipEntry) {
	for _, ge := range snap {
		r.install(ge.key, ge.stamped, ge.e)
	}
}

// install adopts (key, value) if its stamp supersedes the local one.
func (r *Replica) install(key string, m stamped, e Entry) {
	if cur, ok := r.meta[key]; ok && !m.st.After(cur.st) {
		return
	}
	r.meta[key] = m
	if m.del {
		delete(r.Svc.records, key)
		return
	}
	r.Svc.records[key] = e
}

// reachable reports whether a control-plane RPC between two nodes would
// complete — both the request and the reply direction must route, so
// one-way partitions fail it.
func (c *Cluster) reachable(a, b string) bool {
	if a == b {
		return true
	}
	if _, err := c.net.Latency(a, b, 0); err != nil {
		return false
	}
	if _, err := c.net.Latency(b, a, 0); err != nil {
		return false
	}
	return true
}

// write is the quorum write path behind Register/Deregister on a
// replicated Service: judged from the originating node, applied to
// every replica that node can currently reach, rejected fail-closed
// with ErrNoQuorum from the minority side.
func (c *Cluster) write(origin string, kind Kind, name string, attrs map[string]any, ttl sim.Duration, del bool) error {
	reach := 0
	for _, r := range c.reps {
		if c.reachable(origin, r.Node) {
			reach++
		}
	}
	if 2*reach <= len(c.reps) {
		c.minorityWrites++
		return fmt.Errorf("%w: %s reaches %d of %d replicas", ErrNoQuorum, origin, reach, len(c.reps))
	}
	c.seq++
	m := stamped{st: Stamp{T: c.k.Now(), Seq: c.seq, Origin: origin}, del: del}
	var e Entry
	if !del {
		cp := make(map[string]any, len(attrs))
		for k, v := range attrs {
			cp[k] = v
		}
		e = Entry{Kind: kind, Name: name, Attrs: cp}
		if ttl > 0 {
			e.Expires = c.k.Now().Add(ttl)
		}
	}
	k := key(kind, name)
	for _, r := range c.reps {
		if c.reachable(origin, r.Node) {
			r.install(k, m, e)
		}
	}
	return nil
}

// BumpEpoch advances a session's fencing epoch through a quorum write:
// read the largest epoch visible from any reachable replica, write
// epoch+1. Quorum intersection makes the result strictly monotonic —
// any successful bump's majority overlaps the previous one's, so the
// read always sees the latest committed epoch.
func (c *Cluster) BumpEpoch(origin, session string) (int64, error) {
	var cur int64
	for _, r := range c.reps {
		if !c.reachable(origin, r.Node) {
			continue
		}
		if e := r.Svc.Epoch(session); e > cur {
			cur = e
		}
	}
	next := cur + 1
	if err := c.write(origin, KindEpoch, session, map[string]any{AttrEpoch: next}, 0, false); err != nil {
		return 0, err
	}
	return next, nil
}

// GuardAt is the cluster form of Service.EpochGuard: the check reads
// the first replica reachable from node at call time — the view a
// server pinned there would actually have. With no replica in reach the
// token cannot be validated and the op is admitted; fencing bites as
// soon as the server can see any replica carrying the bumped epoch.
func (c *Cluster) GuardAt(node, session string, token int64) func() error {
	guards := make([]func() error, len(c.reps))
	for i, r := range c.reps {
		guards[i] = r.Svc.EpochGuard(session, token)
	}
	return func() error {
		for i, r := range c.reps {
			if c.reachable(node, r.Node) {
				return guards[i]()
			}
		}
		return nil
	}
}

// Size returns the replica count.
func (c *Cluster) Size() int { return len(c.reps) }

// Replica returns the i'th member's Service (reads stay local to it).
func (c *Cluster) Replica(i int) *Service { return c.reps[i].Svc }

// Node returns the i'th member's netsim node.
func (c *Cluster) Node(i int) string { return c.reps[i].Node }

// MinorityWrites counts write attempts rejected with ErrNoQuorum —
// each one is a moment a partitioned node tried to mutate the grid
// view, the raw signal behind the split-brain-risk alert.
func (c *Cluster) MinorityWrites() uint64 { return c.minorityWrites }

// GossipRounds counts completed anti-entropy rounds.
func (c *Cluster) GossipRounds() uint64 { return c.gossipRounds }

// Converged reports whether every replica holds the identical stamped
// view — the post-heal invariant the chaos sweep asserts.
func (c *Cluster) Converged() bool {
	base := c.reps[0]
	for _, r := range c.reps[1:] {
		if len(r.meta) != len(base.meta) || len(r.Svc.records) != len(base.Svc.records) {
			return false
		}
		for k, m := range base.meta {
			if got, ok := r.meta[k]; !ok || got != m {
				return false
			}
		}
	}
	return true
}

// maxStamp returns the newest stamp a replica has adopted.
func (r *Replica) maxStamp() Stamp {
	var max Stamp
	for _, m := range r.meta {
		if m.st.After(max) {
			max = m.st
		}
	}
	return max
}

// Lag returns how far behind the i'th replica is, as the simulated-time
// distance between the newest stamp anywhere in the cluster and the
// newest stamp the replica has adopted. Zero when it has seen the
// latest write; grows while a partition starves it of gossip.
func (c *Cluster) Lag(i int) sim.Duration {
	var newest Stamp
	for _, r := range c.reps {
		if s := r.maxStamp(); s.After(newest) {
			newest = s
		}
	}
	mine := c.reps[i].maxStamp()
	if newest.T <= mine.T {
		return 0
	}
	return sim.Duration(newest.T - mine.T)
}

// Cluster returns the cluster a replicated Service belongs to (nil for
// a standalone registry).
func (s *Service) Cluster() *Cluster { return s.cluster }

// Home returns the netsim node a replicated Service is pinned to (""
// for a standalone registry).
func (s *Service) Home() string { return s.home }

// Client is a node's read-side view of the replicated registry: reads
// fail over across replicas in pinned order under the shared
// retry.Policy vocabulary, and are marked stale when the replica that
// served them sits on the minority side of a partition (it may be
// missing committed writes).
type Client struct {
	c    *Cluster
	node string
	pol  retry.Policy
}

// ClientAt creates a read client anchored at a netsim node. The
// policy's attempt budget bounds how many replicas a read probes before
// giving up with ErrUnreachable; zero-value policy probes every
// replica once.
func (c *Cluster) ClientAt(node string, pol retry.Policy) *Client {
	if pol.MaxAttempts < 1 {
		pol.MaxAttempts = len(c.reps)
	}
	return &Client{c: c, node: node, pol: pol}
}

// serving picks the replica a read uses: the first one reachable from
// the client's node, probing at most the policy's attempt budget.
func (cl *Client) serving() (*Replica, bool, error) {
	attempts := cl.pol.Attempts()
	for i, r := range cl.c.reps {
		if i >= attempts {
			break
		}
		if !cl.c.reachable(cl.node, r.Node) {
			continue
		}
		// Stale when the serving replica cannot itself assemble a
		// quorum: committed writes may be missing from its view.
		reach := 0
		for _, p := range cl.c.reps {
			if cl.c.reachable(r.Node, p.Node) {
				reach++
			}
		}
		return r, 2*reach <= len(cl.c.reps), nil
	}
	return nil, false, fmt.Errorf("%w: from %s (tried %d)", ErrUnreachable, cl.node, min(attempts, len(cl.c.reps)))
}

// Lookup fetches one record from the first reachable replica. stale
// reports minority-side service.
func (cl *Client) Lookup(kind Kind, name string) (e Entry, stale bool, err error) {
	r, stale, err := cl.serving()
	if err != nil {
		return Entry{}, false, err
	}
	e, err = r.Svc.Lookup(kind, name)
	return e, stale, err
}

// Select lists matching records from the first reachable replica.
func (cl *Client) Select(kind Kind, pred func(Entry) bool) (out []Entry, stale bool, err error) {
	r, stale, err := cl.serving()
	if err != nil {
		return nil, false, err
	}
	return r.Svc.Select(kind, pred), stale, nil
}

// FindFutures runs the VM-future query against the first reachable
// replica — the failover-time restage query stays answerable as long
// as any replica is in reach.
func (cl *Client) FindFutures(q FutureQuery) (out []Entry, stale bool, err error) {
	r, stale, err := cl.serving()
	if err != nil {
		return nil, false, err
	}
	return r.Svc.FindFutures(q), stale, nil
}

// Epoch reads a session's epoch from the first reachable replica.
func (cl *Client) Epoch(session string) (int64, bool, error) {
	r, stale, err := cl.serving()
	if err != nil {
		return 0, false, err
	}
	return r.Svc.Epoch(session), stale, nil
}
