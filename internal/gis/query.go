package gis

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file implements the textual query language of the information
// service — the "unified relational approach" (URGIS) the paper extends
// with virtual machines. Applications discover resources by posing
// queries like:
//
//	select vm-future where mem_bytes >= 268435456 and site == "nwu"
//	       order by load limit 3
//
//	select vm-future, image-server on site where image == "rh72"
//
// The second form is a join: pairs of records of the two kinds that
// agree on the join attribute, filtered by the predicate. Results are
// deterministic (name-ordered before limits), matching the bounded
// partial-result semantics described in the paper.

// Query is a parsed query.
type Query struct {
	// Kinds has one entry for a select, two for a join.
	Kinds []Kind
	// JoinOn is the attribute both sides must agree on (joins only).
	JoinOn string
	// Where is the root predicate (nil = match all).
	Where *Cond
	// OrderBy is an attribute to sort ascending by ("" = by name).
	OrderBy string
	// Limit bounds the result count (0 = unlimited).
	Limit int
}

// Cond is a predicate tree: either a comparison leaf or a conjunction /
// disjunction of children.
type Cond struct {
	// Leaf comparison.
	Attr string
	Op   string // "==", "!=", ">=", "<=", ">", "<"
	// Value is a string or float64 constant.
	Value any

	// Internal node: And/Or hold children ("and" binds tighter).
	And []*Cond
	Or  []*Cond
}

// Row is one query result: a single entry, or a pair for joins.
type Row struct {
	Entries []Entry
}

// ParseQuery parses the query language. The grammar:
//
//	query  := "select" kinds [join] ["where" expr] ["order" "by" attr] ["limit" int]
//	kinds  := kind | kind "," kind
//	join   := "on" attr
//	expr   := term {"or" term}
//	term   := factor {"and" factor}
//	factor := attr op value | "(" expr ")"
//	value  := number | quoted string | bareword
func ParseQuery(src string) (Query, error) {
	toks, err := lexQuery(src)
	if err != nil {
		return Query{}, err
	}
	p := &queryParser{toks: toks}
	q, err := p.parse()
	if err != nil {
		return Query{}, err
	}
	return q, nil
}

// Run executes a parsed query against the service.
func (s *Service) Run(q Query) ([]Row, error) {
	match := func(entries []Entry) bool {
		if q.Where == nil {
			return true
		}
		return q.Where.eval(entries)
	}

	var rows []Row
	switch len(q.Kinds) {
	case 1:
		for _, e := range s.Select(q.Kinds[0], nil) {
			if match([]Entry{e}) {
				rows = append(rows, Row{Entries: []Entry{e}})
			}
		}
	case 2:
		if q.JoinOn == "" {
			return nil, fmt.Errorf("gis: two-kind query without an 'on' attribute")
		}
		for _, pair := range s.Join(q.Kinds[0], q.Kinds[1], func(a, b Entry) bool {
			return attrEqual(a.Attrs[q.JoinOn], b.Attrs[q.JoinOn])
		}) {
			entries := []Entry{pair[0], pair[1]}
			if match(entries) {
				rows = append(rows, Row{Entries: entries})
			}
		}
	default:
		return nil, fmt.Errorf("gis: query selects %d kinds", len(q.Kinds))
	}

	if q.OrderBy != "" {
		sort.SliceStable(rows, func(i, j int) bool {
			return rowKey(rows[i], q.OrderBy) < rowKey(rows[j], q.OrderBy)
		})
	}
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	return rows, nil
}

// QueryString parses and runs a query in one step.
func (s *Service) QueryString(src string) ([]Row, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return s.Run(q)
}

func rowKey(r Row, attr string) float64 {
	for _, e := range r.Entries {
		if _, ok := e.Attrs[attr]; ok {
			return e.Float(attr)
		}
	}
	return 0
}

func attrEqual(a, b any) bool {
	if a == nil || b == nil {
		return false
	}
	return fmt.Sprint(a) == fmt.Sprint(b)
}

// eval evaluates the predicate against the row's entries: an attribute
// reference binds to the first entry carrying it.
func (c *Cond) eval(entries []Entry) bool {
	if len(c.Or) > 0 {
		for _, child := range c.Or {
			if child.eval(entries) {
				return true
			}
		}
		return false
	}
	if len(c.And) > 0 {
		for _, child := range c.And {
			if !child.eval(entries) {
				return false
			}
		}
		return true
	}
	var val any
	found := false
	for _, e := range entries {
		if v, ok := e.Attrs[c.Attr]; ok {
			val = v
			found = true
			break
		}
		if c.Attr == "name" {
			val = e.Name
			found = true
			break
		}
	}
	if !found {
		return false
	}
	switch want := c.Value.(type) {
	case string:
		got := fmt.Sprint(val)
		switch c.Op {
		case "==":
			return got == want
		case "!=":
			return got != want
		default:
			return false // ordered comparison on strings is not supported
		}
	case float64:
		got, ok := toFloat(val)
		if !ok {
			return false
		}
		switch c.Op {
		case "==":
			return got == want
		case "!=":
			return got != want
		case ">=":
			return got >= want
		case "<=":
			return got <= want
		case ">":
			return got > want
		case "<":
			return got < want
		}
	}
	return false
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	default:
		return 0, false
	}
}

// --- lexer ---

type qtok struct {
	kind string // word, string, number, punct
	text string
	num  float64
}

func lexQuery(src string) ([]qtok, error) {
	var toks []qtok
	i := 0
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			i++
		case ch == '"' || ch == '\'':
			quote := ch
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("gis: unterminated string at %d", i)
			}
			toks = append(toks, qtok{kind: "string", text: src[i+1 : j]})
			i = j + 1
		case ch == '(' || ch == ')' || ch == ',':
			toks = append(toks, qtok{kind: "punct", text: string(ch)})
			i++
		case strings.ContainsRune("=!<>", rune(ch)):
			j := i + 1
			if j < len(src) && src[j] == '=' {
				j++
			}
			toks = append(toks, qtok{kind: "punct", text: src[i:j]})
			i = j
		case ch >= '0' && ch <= '9' || ch == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' || src[j] == '+' || src[j] == '-') {
				// Stop '-'/'+' unless preceded by an exponent marker.
				if (src[j] == '-' || src[j] == '+') && src[j-1] != 'e' {
					break
				}
				j++
			}
			n, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("gis: bad number %q", src[i:j])
			}
			toks = append(toks, qtok{kind: "number", text: src[i:j], num: n})
			i = j
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n\r()=!<>,\"'", rune(src[j])) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("gis: unexpected character %q at %d", ch, i)
			}
			toks = append(toks, qtok{kind: "word", text: src[i:j]})
			i = j
		}
	}
	return toks, nil
}

// --- parser ---

type queryParser struct {
	toks []qtok
	pos  int
}

func (p *queryParser) peek() (qtok, bool) {
	if p.pos >= len(p.toks) {
		return qtok{}, false
	}
	return p.toks[p.pos], true
}

func (p *queryParser) next() (qtok, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *queryParser) expectWord(word string) error {
	t, ok := p.next()
	if !ok || t.kind != "word" || !strings.EqualFold(t.text, word) {
		return fmt.Errorf("gis: expected %q, got %q", word, t.text)
	}
	return nil
}

func (p *queryParser) parse() (Query, error) {
	var q Query
	if err := p.expectWord("select"); err != nil {
		return q, err
	}
	kind, ok := p.next()
	if !ok || kind.kind != "word" {
		return q, fmt.Errorf("gis: expected a record kind after select")
	}
	q.Kinds = append(q.Kinds, Kind(kind.text))
	if t, ok := p.peek(); ok && t.text == "," {
		p.pos++
		second, ok := p.next()
		if !ok || second.kind != "word" {
			return q, fmt.Errorf("gis: expected a second kind after ','")
		}
		q.Kinds = append(q.Kinds, Kind(second.text))
	}
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		switch {
		case t.kind == "word" && strings.EqualFold(t.text, "on"):
			p.pos++
			attr, ok := p.next()
			if !ok || attr.kind != "word" {
				return q, fmt.Errorf("gis: expected an attribute after 'on'")
			}
			q.JoinOn = attr.text
		case t.kind == "word" && strings.EqualFold(t.text, "where"):
			p.pos++
			cond, err := p.parseOr()
			if err != nil {
				return q, err
			}
			q.Where = cond
		case t.kind == "word" && strings.EqualFold(t.text, "order"):
			p.pos++
			if err := p.expectWord("by"); err != nil {
				return q, err
			}
			attr, ok := p.next()
			if !ok || attr.kind != "word" {
				return q, fmt.Errorf("gis: expected an attribute after 'order by'")
			}
			q.OrderBy = attr.text
		case t.kind == "word" && strings.EqualFold(t.text, "limit"):
			p.pos++
			n, ok := p.next()
			if !ok || n.kind != "number" || n.num < 0 || n.num != float64(int(n.num)) {
				return q, fmt.Errorf("gis: expected a non-negative integer after 'limit'")
			}
			q.Limit = int(n.num)
		default:
			return q, fmt.Errorf("gis: unexpected token %q", t.text)
		}
	}
	if len(q.Kinds) == 2 && q.JoinOn == "" {
		return q, fmt.Errorf("gis: join query requires 'on <attr>'")
	}
	return q, nil
}

func (p *queryParser) parseOr() (*Cond, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []*Cond{first}
	for {
		t, ok := p.peek()
		if !ok || t.kind != "word" || !strings.EqualFold(t.text, "or") {
			break
		}
		p.pos++
		next, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	if len(children) == 1 {
		return first, nil
	}
	return &Cond{Or: children}, nil
}

func (p *queryParser) parseAnd() (*Cond, error) {
	first, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	children := []*Cond{first}
	for {
		t, ok := p.peek()
		if !ok || t.kind != "word" || !strings.EqualFold(t.text, "and") {
			break
		}
		p.pos++
		next, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	if len(children) == 1 {
		return first, nil
	}
	return &Cond{And: children}, nil
}

func (p *queryParser) parseFactor() (*Cond, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("gis: expected a condition")
	}
	if t.text == "(" {
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		closing, ok := p.next()
		if !ok || closing.text != ")" {
			return nil, fmt.Errorf("gis: missing ')'")
		}
		return inner, nil
	}
	attr, ok := p.next()
	if !ok || attr.kind != "word" {
		return nil, fmt.Errorf("gis: expected an attribute, got %q", attr.text)
	}
	op, ok := p.next()
	if !ok || op.kind != "punct" || !isCompareOp(op.text) {
		return nil, fmt.Errorf("gis: expected a comparison after %q", attr.text)
	}
	val, ok := p.next()
	if !ok {
		return nil, fmt.Errorf("gis: expected a value after %q %s", attr.text, op.text)
	}
	cond := &Cond{Attr: attr.text, Op: op.text}
	switch val.kind {
	case "number":
		cond.Value = val.num
	case "string", "word":
		cond.Value = val.text
	default:
		return nil, fmt.Errorf("gis: bad value %q", val.text)
	}
	return cond, nil
}

func isCompareOp(s string) bool {
	switch s {
	case "==", "!=", ">=", "<=", ">", "<":
		return true
	}
	return false
}
