package gis

import (
	"strings"
	"testing"

	"vmgrid/internal/sim"
)

func queryFixture(t *testing.T) *Service {
	t.Helper()
	k := sim.NewKernel(1)
	s := New(k)
	reg := func(kind Kind, name string, attrs map[string]any) {
		t.Helper()
		if err := s.Register(kind, name, attrs, 0); err != nil {
			t.Fatal(err)
		}
	}
	reg(KindVMFuture, "f1", map[string]any{
		AttrSite: "nwu", AttrSlots: int64(2), AttrMemBytes: int64(256 << 20),
		AttrSpeed: 1.0, AttrLoad: 0.5,
	})
	reg(KindVMFuture, "f2", map[string]any{
		AttrSite: "nwu", AttrSlots: int64(1), AttrMemBytes: int64(2 << 30),
		AttrSpeed: 1.2, AttrLoad: 0.1,
	})
	reg(KindVMFuture, "f3", map[string]any{
		AttrSite: "ufl", AttrSlots: int64(4), AttrMemBytes: int64(1 << 30),
		AttrSpeed: 0.8, AttrLoad: 0.9,
	})
	reg(KindImageServer, "i1", map[string]any{AttrSite: "nwu", AttrImage: "rh72"})
	reg(KindImageServer, "i2", map[string]any{AttrSite: "ufl", AttrImage: "rh71"})
	return s
}

func TestQuerySelectAll(t *testing.T) {
	s := queryFixture(t)
	rows, err := s.QueryString("select vm-future")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Default order: by name.
	if rows[0].Entries[0].Name != "f1" || rows[2].Entries[0].Name != "f3" {
		t.Errorf("unexpected order: %v, %v", rows[0].Entries[0].Name, rows[2].Entries[0].Name)
	}
}

func TestQueryWhereString(t *testing.T) {
	s := queryFixture(t)
	rows, err := s.QueryString(`select vm-future where site == "nwu"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	rows, err = s.QueryString(`select vm-future where site != "nwu"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Entries[0].Name != "f3" {
		t.Fatalf("!= rows = %v", rows)
	}
}

func TestQueryWhereNumeric(t *testing.T) {
	s := queryFixture(t)
	rows, err := s.QueryString("select vm-future where mem_bytes >= 1073741824")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want f2 and f3", len(rows))
	}
	rows, err = s.QueryString("select vm-future where speed > 1.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Entries[0].Name != "f2" {
		t.Fatalf("speed query = %v", rows)
	}
}

func TestQueryAndOrParens(t *testing.T) {
	s := queryFixture(t)
	rows, err := s.QueryString(`select vm-future where site == "nwu" and slots >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Entries[0].Name != "f1" {
		t.Fatalf("and query = %v", rows)
	}
	rows, err = s.QueryString(`select vm-future where site == "ufl" or speed > 1.1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("or query = %d rows", len(rows))
	}
	// Parentheses change grouping: (ufl or nwu) and slots >= 4 = only f3.
	rows, err = s.QueryString(`select vm-future where (site == "ufl" or site == "nwu") and slots >= 4`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Entries[0].Name != "f3" {
		t.Fatalf("paren query = %v", rows)
	}
}

func TestQueryOrderAndLimit(t *testing.T) {
	s := queryFixture(t)
	rows, err := s.QueryString("select vm-future order by load limit 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Entries[0].Name != "f2" || rows[1].Entries[0].Name != "f1" {
		t.Errorf("order by load gave %s, %s", rows[0].Entries[0].Name, rows[1].Entries[0].Name)
	}
}

func TestQueryJoin(t *testing.T) {
	s := queryFixture(t)
	// Futures co-located with an image server holding rh72.
	rows, err := s.QueryString(`select vm-future, image-server on site where image == "rh72"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("join rows = %d, want f1+i1 and f2+i1", len(rows))
	}
	for _, r := range rows {
		if len(r.Entries) != 2 {
			t.Fatalf("join row has %d entries", len(r.Entries))
		}
		if r.Entries[0].Str(AttrSite) != r.Entries[1].Str(AttrSite) {
			t.Error("join attribute mismatch")
		}
		if r.Entries[1].Name != "i1" {
			t.Errorf("join matched wrong server %s", r.Entries[1].Name)
		}
	}
}

func TestQueryJoinPredicateSpansBothSides(t *testing.T) {
	s := queryFixture(t)
	rows, err := s.QueryString(
		`select vm-future, image-server on site where image == "rh71" and slots >= 4`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Entries[0].Name != "f3" {
		t.Fatalf("cross-side predicate = %v", rows)
	}
}

func TestQueryNameAttribute(t *testing.T) {
	s := queryFixture(t)
	rows, err := s.QueryString(`select vm-future where name == "f2"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Entries[0].Name != "f2" {
		t.Fatalf("name query = %v", rows)
	}
}

func TestQueryMissingAttributeNeverMatches(t *testing.T) {
	s := queryFixture(t)
	rows, err := s.QueryString("select vm-future where nonexistent >= 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestQueryParseErrors(t *testing.T) {
	bad := []string{
		"",
		"frobnicate vm-future",
		"select",
		"select vm-future where",
		"select vm-future where site ==",
		"select vm-future where (site == 'x'",
		"select vm-future order load",
		"select vm-future limit -3",
		"select vm-future limit 1.5",
		"select a, b where x == 1",            // join without 'on'
		`select vm-future where site = "nwu"`, // single '=' parses as op? must fail
		`select vm-future where site ~ "nwu"`,
		`select vm-future where site == "unterminated`,
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery accepted %q", src)
		}
	}
}

func TestQueryStringComparisonOrderedOpsRejectedAtEval(t *testing.T) {
	s := queryFixture(t)
	rows, err := s.QueryString(`select vm-future where site > "a"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Error("ordered comparison on strings matched rows")
	}
}

func TestQueryCaseInsensitiveKeywords(t *testing.T) {
	s := queryFixture(t)
	rows, err := s.QueryString(`SELECT vm-future WHERE site == "nwu" ORDER BY load LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestQueryExpiredRecordsExcluded(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k)
	if err := s.Register(KindVM, "v1", nil, 5*sim.Second); err != nil {
		t.Fatal(err)
	}
	_ = k.RunUntil(sim.Time(10 * sim.Second))
	rows, err := s.QueryString("select vm")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Error("expired record matched")
	}
}

func TestQuerySingleEqualsIsError(t *testing.T) {
	if _, err := ParseQuery(`select x where a = 1`); err == nil ||
		!strings.Contains(err.Error(), "comparison") {
		t.Errorf("single = error: %v", err)
	}
}
