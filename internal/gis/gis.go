// Package gis is the grid information service (in the mold of Globus MDS
// and the URGIS relational approach the paper extends): a registry of
// typed, attribute-carrying, soft-state records that applications query
// — including the paper's key addition, *VM futures*: advertisements by
// hosts of what kinds and how many virtual machines they are willing to
// instantiate.
package gis

import (
	"errors"
	"fmt"
	"sort"

	"vmgrid/internal/sim"
)

// Kind classifies registry entries.
type Kind string

// The record kinds of the VM-grid architecture (Figure 3).
const (
	KindHost        Kind = "host"      // physical machines
	KindVMFuture    Kind = "vm-future" // capability to instantiate VMs
	KindVM          Kind = "vm"        // live VM instances
	KindImageServer Kind = "image-server"
	KindDataServer  Kind = "data-server"
	// KindLease carries session heartbeat leases: the supervisor
	// re-registers them with a TTL, so a crashed host's sessions fall out
	// of the registry once the lease expires — soft state as the failure
	// detector.
	KindLease Kind = "lease"
	// KindAlert mirrors telemetry alert firings into the soft-state
	// registry, so middleware can discover SLO violations the same way
	// it discovers hosts and VMs. Alert entries are registered without a
	// TTL and deregistered when the alert resolves.
	KindAlert Kind = "alert"
	// KindEpoch carries per-session fencing epochs: a monotonic counter
	// the supervisor bumps through a quorum write before every failover,
	// so effects of the pre-failover incarnation can be recognized and
	// rejected (no TTL — epochs must outlive any partition).
	KindEpoch Kind = "epoch"
)

// Entry is one registered record. Attrs values are strings, int64s, or
// float64s.
type Entry struct {
	Kind    Kind
	Name    string
	Attrs   map[string]any
	Expires sim.Time // zero means no expiry
}

// Int returns an integer attribute (0 if absent or mistyped).
func (e Entry) Int(key string) int64 {
	switch v := e.Attrs[key].(type) {
	case int64:
		return v
	case int:
		return int64(v)
	default:
		return 0
	}
}

// Float returns a float attribute (also accepting ints).
func (e Entry) Float(key string) float64 {
	switch v := e.Attrs[key].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	case int:
		return float64(v)
	default:
		return 0
	}
}

// Str returns a string attribute ("" if absent).
func (e Entry) Str(key string) string {
	s, _ := e.Attrs[key].(string)
	return s
}

// ErrNotFound is returned by Lookup for missing or expired entries.
var ErrNotFound = errors.New("gis: not found")

// ErrNoQuorum is returned by writes against a replicated registry when
// the originating node cannot reach a majority of replicas: the write
// fails closed rather than diverging on the minority side.
var ErrNoQuorum = errors.New("gis: no quorum")

// ErrFencedEpoch is returned by epoch guards when an operation carries
// a fencing token older than the session's current epoch — the caller
// is a pre-failover zombie whose effects must be rejected.
var ErrFencedEpoch = errors.New("gis: fenced epoch")

// Service is the registry. Entries are soft state: registrations carry a
// TTL and vanish unless refreshed, so crashed providers age out.
//
// A Service may optionally be one replica of a Cluster (see replica.go),
// in which case writes route through quorum and reads stay local — the
// replica keeps serving possibly-stale reads during a partition. A
// standalone Service (nil cluster) behaves exactly as before.
type Service struct {
	k       *sim.Kernel
	records map[string]Entry

	cluster *Cluster // nil = unreplicated
	home    string   // netsim node this replica is pinned to
}

// New creates an empty information service.
func New(k *sim.Kernel) *Service {
	return &Service{k: k, records: make(map[string]Entry)}
}

func key(kind Kind, name string) string { return string(kind) + "/" + name }

// Register adds or refreshes a record. ttl ≤ 0 means no expiry. The
// attribute map is copied. On a replicated registry this is a quorum
// write originating at the replica's own node and can fail with
// ErrNoQuorum.
func (s *Service) Register(kind Kind, name string, attrs map[string]any, ttl sim.Duration) error {
	return s.RegisterFrom(s.home, kind, name, attrs, ttl)
}

// RegisterFrom is Register with an explicit originating node: on a
// replicated registry, quorum reachability is judged from origin, so a
// partitioned host's refreshes fail closed even when the replica
// co-located with the caller is healthy. On a standalone Service the
// origin is ignored.
func (s *Service) RegisterFrom(origin string, kind Kind, name string, attrs map[string]any, ttl sim.Duration) error {
	if name == "" {
		return fmt.Errorf("gis: register %v with empty name", kind)
	}
	if s.cluster != nil {
		return s.cluster.write(origin, kind, name, attrs, ttl, false)
	}
	s.apply(kind, name, attrs, ttl)
	return nil
}

// apply installs a record locally, bypassing replication.
func (s *Service) apply(kind Kind, name string, attrs map[string]any, ttl sim.Duration) {
	cp := make(map[string]any, len(attrs))
	for k, v := range attrs {
		cp[k] = v
	}
	e := Entry{Kind: kind, Name: name, Attrs: cp}
	if ttl > 0 {
		e.Expires = s.k.Now().Add(ttl)
	}
	s.records[key(kind, name)] = e
}

// Deregister removes a record (idempotent). On a replicated registry a
// minority-side deregister is silently dropped (the signature predates
// replication); callers that must know use DeregisterFrom.
func (s *Service) Deregister(kind Kind, name string) {
	_ = s.DeregisterFrom(s.home, kind, name)
}

// DeregisterFrom removes a record through a quorum write originating at
// the given node, failing with ErrNoQuorum on the minority side of a
// partition.
func (s *Service) DeregisterFrom(origin string, kind Kind, name string) error {
	if s.cluster != nil {
		return s.cluster.write(origin, kind, name, nil, 0, true)
	}
	delete(s.records, key(kind, name))
	return nil
}

func (s *Service) live(e Entry) bool {
	return e.Expires == 0 || e.Expires >= s.k.Now()
}

// Lookup fetches one record.
func (s *Service) Lookup(kind Kind, name string) (Entry, error) {
	e, ok := s.records[key(kind, name)]
	if !ok || !s.live(e) {
		return Entry{}, fmt.Errorf("%w: %v %q", ErrNotFound, kind, name)
	}
	return e, nil
}

// Select returns the live records of a kind matching pred (nil matches
// all), sorted by name for determinism.
func (s *Service) Select(kind Kind, pred func(Entry) bool) []Entry {
	var out []Entry
	for _, e := range s.records {
		if e.Kind != kind || !s.live(e) {
			continue
		}
		if pred == nil || pred(e) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SelectBounded is Select returning at most limit results — the paper's
// model of queries that "are non-deterministic and return partial
// results in a bounded amount of time". (In the deterministic simulation
// the subset is the name-ordered prefix.)
func (s *Service) SelectBounded(kind Kind, pred func(Entry) bool, limit int) []Entry {
	out := s.Select(kind, pred)
	if limit >= 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Join returns pairs (a, b) of live records with a of kindA, b of kindB,
// and on(a, b) true — the relational query with joins the paper argues
// resource discovery needs (e.g. "VM futures on hosts whose image server
// is in the same site").
func (s *Service) Join(kindA, kindB Kind, on func(a, b Entry) bool) [][2]Entry {
	as := s.Select(kindA, nil)
	bs := s.Select(kindB, nil)
	var out [][2]Entry
	for _, a := range as {
		for _, b := range bs {
			if on == nil || on(a, b) {
				out = append(out, [2]Entry{a, b})
			}
		}
	}
	return out
}

// Expire removes expired entries eagerly (they are also filtered lazily
// on read). Returns how many were dropped.
func (s *Service) Expire() int {
	n := 0
	for k, e := range s.records {
		if !s.live(e) {
			delete(s.records, k)
			n++
		}
	}
	return n
}

// Len returns the number of live records.
func (s *Service) Len() int {
	n := 0
	for _, e := range s.records {
		if s.live(e) {
			n++
		}
	}
	return n
}

// VM-future helpers: the attribute vocabulary used by vmgrid hosts.
const (
	// AttrMemBytes is the largest guest memory a future offers.
	AttrMemBytes = "mem_bytes"
	// AttrDiskBytes is the largest virtual disk a future offers.
	AttrDiskBytes = "disk_bytes"
	// AttrSlots is how many more VMs the host will instantiate.
	AttrSlots = "slots"
	// AttrSpeed is the host's CPU speed relative to the reference.
	AttrSpeed = "speed"
	// AttrSite is the administrative domain.
	AttrSite = "site"
	// AttrOS is an image's installed guest OS.
	AttrOS = "os"
	// AttrImage names an image catalogued on an image server.
	AttrImage = "image"
	// AttrWarm marks an image carrying a post-boot memory snapshot.
	AttrWarm = "warm"
	// AttrAddr is a live VM's virtual network address.
	AttrAddr = "addr"
	// AttrHost is the physical machine carrying a VM.
	AttrHost = "host"
	// AttrLoad is a host's most recent load measurement.
	AttrLoad = "load"
	// AttrEpoch is a session's current fencing epoch (KindEpoch records).
	AttrEpoch = "epoch"
)

// Epoch returns a session's current fencing epoch as recorded in this
// replica's view (0 if the session has none yet).
func (s *Service) Epoch(session string) int64 {
	e, ok := s.records[key(KindEpoch, session)]
	if !ok {
		return 0
	}
	return e.Int(AttrEpoch)
}

// EpochGuard returns a fencing check bound to one session and token:
// it reports ErrFencedEpoch once the session's epoch in this replica's
// view has moved past token. The key is precomputed and the closure
// does one map lookup — cheap enough for data-plane hot paths (vfs
// flushes, gram submits). Against a replicated registry the guard reads
// the local replica: a zombie on the minority side trips the fence as
// soon as anti-entropy delivers the bumped epoch after heal.
func (s *Service) EpochGuard(session string, token int64) func() error {
	k := key(KindEpoch, session)
	return func() error {
		e, ok := s.records[k]
		if !ok {
			return nil
		}
		if cur, _ := e.Attrs[AttrEpoch].(int64); cur > token {
			return ErrFencedEpoch
		}
		return nil
	}
}

// BumpEpochFrom advances a session's fencing epoch by one through a
// quorum write originating at the given node and returns the new
// epoch. On the minority side of a partition it fails with ErrNoQuorum
// and the epoch is unchanged — a supervisor that cannot prove it holds
// the majority view must not fence anybody.
func (s *Service) BumpEpochFrom(origin, session string) (int64, error) {
	if s.cluster != nil {
		return s.cluster.BumpEpoch(origin, session)
	}
	next := s.Epoch(session) + 1
	s.apply(KindEpoch, session, map[string]any{AttrEpoch: next}, 0)
	return next, nil
}

// FutureQuery describes what a user needs from a VM future.
type FutureQuery struct {
	MinMemBytes  int64
	MinDiskBytes int64
	MinSpeed     float64
	Site         string // "" = any
}

// FindFutures returns VM futures satisfying q, best (fastest, least
// loaded) first.
func (s *Service) FindFutures(q FutureQuery) []Entry {
	out := s.Select(KindVMFuture, func(e Entry) bool {
		if e.Int(AttrSlots) <= 0 {
			return false
		}
		if e.Int(AttrMemBytes) < q.MinMemBytes {
			return false
		}
		if e.Int(AttrDiskBytes) < q.MinDiskBytes {
			return false
		}
		if e.Float(AttrSpeed) < q.MinSpeed {
			return false
		}
		if q.Site != "" && e.Str(AttrSite) != q.Site {
			return false
		}
		return true
	})
	sort.SliceStable(out, func(i, j int) bool {
		li, lj := out[i].Float(AttrLoad), out[j].Float(AttrLoad)
		if li != lj {
			return li < lj
		}
		return out[i].Float(AttrSpeed) > out[j].Float(AttrSpeed)
	})
	return out
}
