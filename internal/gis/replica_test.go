package gis

import (
	"errors"
	"testing"

	"vmgrid/internal/netsim"
	"vmgrid/internal/retry"
	"vmgrid/internal/sim"
)

// lanCluster builds a LAN of the named nodes and replicates a fresh
// registry across the first n of them.
func lanCluster(t *testing.T, k *sim.Kernel, n int, nodes ...string) (*netsim.Network, *Service, *Cluster) {
	t.Helper()
	net := netsim.New(k)
	if err := net.BuildLAN(nodes...); err != nil {
		t.Fatal(err)
	}
	svc := New(k)
	c, err := NewCluster(net, svc, nodes[:n], 0)
	if err != nil {
		t.Fatal(err)
	}
	return net, svc, c
}

// TestClusterOfOneDegenerates: a single replica is today's unreplicated
// registry — every write from anywhere succeeds (quorum of 1 is 1),
// reads are never stale, and the view is trivially converged. The
// experiment goldens rely on this degeneration.
func TestClusterOfOneDegenerates(t *testing.T) {
	k := sim.NewKernel(1)
	net, svc, c := lanCluster(t, k, 1, "g0", "far")

	if err := svc.RegisterFrom("far", KindHost, "h1", map[string]any{AttrSite: "nwu"}, 0); err != nil {
		t.Fatal(err)
	}
	// Even a fully partitioned origin cannot lose quorum against itself
	// being the only judge — but an origin that cannot reach the lone
	// replica must still fail closed.
	if err := net.SetNodeUp("far", false); err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterFrom("far", KindHost, "h2", nil, 0); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("partitioned origin against lone replica: err %v, want ErrNoQuorum", err)
	}
	// Writes from the replica's own node always work.
	if err := svc.Register(KindHost, "h3", nil, 0); err != nil {
		t.Fatal(err)
	}
	if !c.Converged() {
		t.Error("cluster of one not converged")
	}
	cl := c.ClientAt("g0", retry.Policy{})
	if _, stale, err := cl.Lookup(KindHost, "h1"); err != nil || stale {
		t.Errorf("lookup: stale=%v err=%v", stale, err)
	}
}

// TestClusterOfTwoSplitFailsClosed: with two replicas a split leaves
// both sides at 1 of 2 — neither reaches a majority, so writes fail on
// both sides (no quorum is possible, the safe degenerate of even N).
func TestClusterOfTwoSplitFailsClosed(t *testing.T) {
	k := sim.NewKernel(1)
	net, svc, c := lanCluster(t, k, 2, "g0", "g1")

	if err := svc.Register(KindHost, "pre", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.SetLinkUp("g0", "g1", false); err != nil {
		t.Fatal(err)
	}
	for _, origin := range []string{"g0", "g1"} {
		err := svc.RegisterFrom(origin, KindHost, "during", nil, 0)
		if !errors.Is(err, ErrNoQuorum) {
			t.Errorf("write from %s during 1-1 split: err %v, want ErrNoQuorum", origin, err)
		}
	}
	if got := c.MinorityWrites(); got != 2 {
		t.Errorf("MinorityWrites = %d, want 2", got)
	}
	// Reads still serve from either side, stale-marked.
	for _, node := range []string{"g0", "g1"} {
		cl := c.ClientAt(node, retry.Policy{})
		if _, stale, err := cl.Lookup(KindHost, "pre"); err != nil || !stale {
			t.Errorf("read at %s during split: stale=%v err=%v, want stale pre-split record", node, stale, err)
		}
	}
	// Heal: writes flow again and both replicas converge.
	if err := net.SetLinkUp("g0", "g1", true); err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterFrom("g1", KindHost, "after", nil, 0); err != nil {
		t.Fatal(err)
	}
	if !c.Converged() {
		t.Error("healed 2-cluster not converged")
	}
}

// TestClusterOfFiveTwoConcurrentPartitions: with five replicas and two
// isolated members, the three-node majority keeps accepting writes and
// the isolated members reject them; gossip reconverges everyone after
// heal, including a deregistration (tombstone) committed during the
// outage.
func TestClusterOfFiveTwoConcurrentPartitions(t *testing.T) {
	k := sim.NewKernel(1)
	nodes := []string{"g0", "g1", "g2", "g3", "g4"}
	net, svc, c := lanCluster(t, k, 5, nodes...)
	c.Start()
	defer c.Stop()

	if err := svc.Register(KindHost, "doomed", nil, 0); err != nil {
		t.Fatal(err)
	}
	// Two concurrent partitions: g3 fully isolated, g4 muted (one-way).
	if err := net.SetNodeUp("g3", false); err != nil {
		t.Fatal(err)
	}
	if err := net.SetNodeDirUp("g4", true, false); err != nil {
		t.Fatal(err)
	}

	// Majority side commits a write and a delete.
	if err := svc.RegisterFrom("g0", KindHost, "boom", map[string]any{AttrSite: "ufl"}, 0); err != nil {
		t.Fatal(err)
	}
	if err := svc.DeregisterFrom("g1", KindHost, "doomed"); err != nil {
		t.Fatal(err)
	}
	// Both isolated members fail closed — the muted g4 too, because a
	// write needs its reply direction.
	for _, origin := range []string{"g3", "g4"} {
		if err := svc.RegisterFrom(origin, KindHost, "minority-"+origin, nil, 0); !errors.Is(err, ErrNoQuorum) {
			t.Errorf("write from %s: err %v, want ErrNoQuorum", origin, err)
		}
	}
	// Minority replicas serve their pre-partition view, stale-marked.
	cl3 := c.ClientAt("g3", retry.Policy{})
	if _, stale, err := cl3.Lookup(KindHost, "doomed"); err != nil || !stale {
		t.Errorf("g3 read during isolation: stale=%v err=%v, want stale hit", stale, err)
	}
	if _, _, err := cl3.Lookup(KindHost, "boom"); !errors.Is(err, ErrNotFound) {
		t.Errorf("g3 sees majority-era write during isolation: %v", err)
	}

	// Let gossip run during the outage: the split must persist (no
	// back-channel), then heal and reconverge.
	if err := k.RunUntil(sim.Time(5 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if c.Converged() {
		t.Fatal("cluster converged across a live partition")
	}
	if err := net.SetNodeUp("g3", true); err != nil {
		t.Fatal(err)
	}
	if err := net.SetNodeDirUp("g4", true, true); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(sim.Time(8 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if !c.Converged() {
		t.Fatal("cluster not converged after heal + gossip")
	}
	// The tombstone won: "doomed" is gone everywhere, "boom" is present.
	for i := 0; i < c.Size(); i++ {
		if _, err := c.Replica(i).Lookup(KindHost, "doomed"); !errors.Is(err, ErrNotFound) {
			t.Errorf("replica %d resurrects deregistered record: %v", i, err)
		}
		if _, err := c.Replica(i).Lookup(KindHost, "boom"); err != nil {
			t.Errorf("replica %d missing majority write after heal: %v", i, err)
		}
	}
}

// TestClientFailoverAcrossReplicas: a reader whose nearest replicas are
// unreachable fails over down the pinned order; the retry budget bounds
// the probes.
func TestClientFailoverAcrossReplicas(t *testing.T) {
	k := sim.NewKernel(1)
	nodes := []string{"g0", "g1", "g2"}
	net, svc, c := lanCluster(t, k, 3, append(nodes, "reader")...)

	if err := svc.Register(KindHost, "h", nil, 0); err != nil {
		t.Fatal(err)
	}
	// Isolate g0 and g1 entirely: only g2 remains in the reader's reach.
	if err := net.SetNodeUp("g0", false); err != nil {
		t.Fatal(err)
	}
	if err := net.SetNodeUp("g1", false); err != nil {
		t.Fatal(err)
	}
	// The read fails over to g2 and is stale-marked: g2 alone is a
	// minority of three.
	cl := c.ClientAt("reader", retry.Policy{})
	if _, stale, err := cl.Lookup(KindHost, "h"); err != nil || !stale {
		t.Fatalf("failover read: stale=%v err=%v, want stale minority hit", stale, err)
	}
	// A one-attempt budget only probes g0 and gives up.
	one := c.ClientAt("reader", retry.Policy{MaxAttempts: 1})
	if _, _, err := one.Lookup(KindHost, "h"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("budgeted read: err %v, want ErrUnreachable", err)
	}
	// Fully cut off: even the full budget fails.
	if err := net.SetNodeUp("reader", false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Lookup(KindHost, "h"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("cut-off read: err %v, want ErrUnreachable", err)
	}
}

// TestBumpEpochMonotonicAcrossPartitions: epoch bumps stay strictly
// monotonic because every successful bump's quorum intersects the
// previous one's; a minority-side bump fails without consuming a value.
func TestBumpEpochMonotonicAcrossPartitions(t *testing.T) {
	k := sim.NewKernel(1)
	nodes := []string{"g0", "g1", "g2"}
	net, svc, c := lanCluster(t, k, 3, nodes...)

	e1, err := c.BumpEpoch("g0", "sess")
	if err != nil || e1 != 1 {
		t.Fatalf("first bump = %d, %v", e1, err)
	}
	// Isolate g2; bump from the majority side.
	if err := net.SetNodeUp("g2", false); err != nil {
		t.Fatal(err)
	}
	e2, err := c.BumpEpoch("g1", "sess")
	if err != nil || e2 != 2 {
		t.Fatalf("majority bump = %d, %v", e2, err)
	}
	// Minority bump fails closed.
	if _, err := c.BumpEpoch("g2", "sess"); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("minority bump: err %v, want ErrNoQuorum", err)
	}
	// Heal, then bump from the previously isolated node: it must see 2
	// via quorum intersection and produce 3, not 2 again.
	if err := net.SetNodeUp("g2", true); err != nil {
		t.Fatal(err)
	}
	e3, err := c.BumpEpoch("g2", "sess")
	if err != nil || e3 != 3 {
		t.Fatalf("post-heal bump = %d, %v", e3, err)
	}
	if got := svc.Epoch("sess"); got != 3 {
		t.Errorf("primary view epoch = %d, want 3", got)
	}
}

// TestEpochGuardFencesStaleToken: the guard admits the current epoch
// and rejects an older token with ErrFencedEpoch, allocation-free.
func TestEpochGuardFencesStaleToken(t *testing.T) {
	k := sim.NewKernel(1)
	_, svc, c := lanCluster(t, k, 1, "g0")

	e1, err := c.BumpEpoch("g0", "sess")
	if err != nil {
		t.Fatal(err)
	}
	guard := svc.EpochGuard("sess", e1)
	if err := guard(); err != nil {
		t.Fatalf("current-epoch guard: %v", err)
	}
	if _, err := c.BumpEpoch("g0", "sess"); err != nil {
		t.Fatal(err)
	}
	if err := guard(); !errors.Is(err, ErrFencedEpoch) {
		t.Fatalf("stale-token guard: err %v, want ErrFencedEpoch", err)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = guard() }); allocs != 0 {
		t.Errorf("EpochGuard check allocates %v per run, want 0", allocs)
	}
}

// TestLWWStampOrder pins the reconciliation order: time beats sequence
// beats origin.
func TestLWWStampOrder(t *testing.T) {
	a := Stamp{T: 10, Seq: 1, Origin: "a"}
	b := Stamp{T: 9, Seq: 2, Origin: "z"}
	if !a.After(b) || b.After(a) {
		t.Error("later time must win")
	}
	c := Stamp{T: 10, Seq: 2, Origin: "a"}
	if !c.After(a) {
		t.Error("same time: higher seq must win")
	}
	d := Stamp{T: 10, Seq: 2, Origin: "b"}
	if !d.After(c) {
		t.Error("same time+seq: higher origin must win")
	}
}
