package gis_test

import (
	"fmt"

	"vmgrid/internal/gis"
	"vmgrid/internal/sim"
)

// Applications discover resources with the URGIS-style query language:
// selections, joins on an attribute, predicates, ordering, and bounded
// results.
func ExampleService_QueryString() {
	k := sim.NewKernel(1)
	info := gis.New(k)
	_ = info.Register(gis.KindVMFuture, "farm-1", map[string]any{
		gis.AttrSite: "nwu", gis.AttrSlots: int64(2), gis.AttrLoad: 0.8,
	}, 0)
	_ = info.Register(gis.KindVMFuture, "farm-2", map[string]any{
		gis.AttrSite: "nwu", gis.AttrSlots: int64(4), gis.AttrLoad: 0.1,
	}, 0)
	_ = info.Register(gis.KindImageServer, "archive", map[string]any{
		gis.AttrSite: "nwu", gis.AttrImage: "rh72",
	}, 0)

	rows, err := info.QueryString(
		`select vm-future where slots >= 2 order by load limit 1`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("best future:", rows[0].Entries[0].Name)

	joined, err := info.QueryString(
		`select vm-future, image-server on site where image == "rh72"`)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, r := range joined {
		fmt.Printf("%s can fetch from %s\n", r.Entries[0].Name, r.Entries[1].Name)
	}
	// Output:
	// best future: farm-2
	// farm-1 can fetch from archive
	// farm-2 can fetch from archive
}
