package core

import (
	"errors"
	"testing"

	"vmgrid/internal/guest"
	"vmgrid/internal/sim"
)

func frontEndFixture(t *testing.T) (*Grid, *FrontEnd) {
	t.Helper()
	g := testbed(t)
	fe := NewFrontEnd(g, "S")
	for i := 0; i < 2; i++ {
		cfg := baseConfig()
		cfg.User = "provider"
		s := startSession(t, g, cfg)
		if err := fe.AddBackend(s); err != nil {
			t.Fatal(err)
		}
	}
	return g, fe
}

func TestFrontEndMultiplexesUsers(t *testing.T) {
	g, fe := frontEndFixture(t)
	if fe.Backends() != 2 {
		t.Fatalf("backends = %d", fe.Backends())
	}

	users := []string{"A", "B", "C", "D"}
	results := map[string]guest.TaskResult{}
	for _, u := range users {
		u := u
		if err := fe.Submit(u, guest.MicroTask(30), func(r guest.TaskResult) {
			results[u] = r
		}); err != nil {
			t.Fatal(err)
		}
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(30 * sim.Minute))
	if len(results) != len(users) {
		t.Fatalf("finished %d/%d jobs", len(results), len(users))
	}
	for u, r := range results {
		if r.Err != nil {
			t.Errorf("user %s: %v", u, r.Err)
		}
		if r.UserSeconds != 30 {
			t.Errorf("user %s retired %v", u, r.UserSeconds)
		}
	}

	report := fe.UserReport()
	if len(report) != 4 {
		t.Fatalf("report has %d users", len(report))
	}
	for _, u := range report {
		if u.Jobs != 1 || u.UserSeconds != 30 {
			t.Errorf("user %s: %+v", u.User, u)
		}
	}
}

func TestFrontEndQueuesBeyondCapacity(t *testing.T) {
	g, fe := frontEndFixture(t)
	// Capacity = 2 backends × 2 tasks; the fifth job must queue.
	finished := 0
	for i := 0; i < 5; i++ {
		if err := fe.Submit("u", guest.MicroTask(50), func(guest.TaskResult) { finished++ }); err != nil {
			t.Fatal(err)
		}
	}
	if fe.Queued() != 1 {
		t.Errorf("Queued = %d, want 1", fe.Queued())
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(time60m()))
	if finished != 5 {
		t.Fatalf("finished %d/5 jobs", finished)
	}
	if fe.Queued() != 0 {
		t.Errorf("queue not drained: %d", fe.Queued())
	}
}

func time60m() sim.Duration { return sim.Hour }

func TestFrontEndBalancesAcrossBackends(t *testing.T) {
	g, fe := frontEndFixture(t)
	for i := 0; i < 2; i++ {
		if err := fe.Submit("u", guest.MicroTask(100), nil); err != nil {
			t.Fatal(err)
		}
	}
	// With 2 idle backends, the 2 jobs must not share one VM.
	busy := 0
	for _, s := range fe.pool {
		if s.VM().Guest().Tasks() > 0 {
			busy++
		}
	}
	if busy != 2 {
		t.Errorf("jobs packed onto %d backend(s), want spread across 2", busy)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(sim.Hour))
}

func TestFrontEndValidation(t *testing.T) {
	g := testbed(t)
	fe := NewFrontEnd(g, "S")
	if err := fe.Submit("u", guest.MicroTask(1), nil); !errors.Is(err, ErrNoBackends) {
		t.Errorf("submit without backends = %v", err)
	}
	if err := fe.Submit("", guest.MicroTask(1), nil); err == nil {
		t.Error("userless job accepted")
	}
	if err := fe.Submit("u", guest.Workload{}, nil); err == nil {
		t.Error("invalid workload accepted")
	}
	s := startSession(t, g, baseConfig())
	s.Shutdown()
	if err := fe.AddBackend(s); !errors.Is(err, ErrBadSession) {
		t.Errorf("dead backend accepted: %v", err)
	}
}

func TestFrontEndRemoveBackend(t *testing.T) {
	g, fe := frontEndFixture(t)
	_ = g
	name := fe.pool[0].Name()
	fe.RemoveBackend(name)
	if fe.Backends() != 1 {
		t.Errorf("backends = %d after remove", fe.Backends())
	}
	fe.RemoveBackend("ghost") // no-op
	if fe.Backends() != 1 {
		t.Errorf("backends = %d after ghost remove", fe.Backends())
	}
}
