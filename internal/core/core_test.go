package core

import (
	"errors"
	"testing"

	"vmgrid/internal/guest"
	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/vmm"
)

// testbed builds the paper's deployment: a front end, two compute nodes
// and a data server on one site's LAN, and an image server across a WAN
// (Northwestern / Florida in Table 1's caption).
func testbed(t *testing.T) *Grid {
	t.Helper()
	g := NewGrid(1)
	add := func(cfg NodeConfig) *Node {
		t.Helper()
		n, err := g.AddNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	add(NodeConfig{Name: "front", Site: "nwu", Role: RoleFrontEnd})
	add(NodeConfig{Name: "compute1", Site: "nwu", Role: RoleCompute, Slots: 2, DHCPPrefix: "10.1.0."})
	add(NodeConfig{Name: "compute2", Site: "nwu", Role: RoleCompute, Slots: 2, DHCPPrefix: "10.1.1."})
	add(NodeConfig{Name: "data", Site: "nwu", Role: RoleDataServer})
	add(NodeConfig{Name: "images", Site: "ufl", Role: RoleImageServer})
	if err := g.Net().BuildLAN("front", "compute1", "compute2", "data"); err != nil {
		t.Fatal(err)
	}
	if err := g.Net().ConnectWAN("front", "images"); err != nil {
		t.Fatal(err)
	}
	if err := g.Net().ConnectWAN("compute1", "images"); err != nil {
		t.Fatal(err)
	}
	if err := g.Net().ConnectWAN("compute2", "images"); err != nil {
		t.Fatal(err)
	}

	img := storage.ImageInfo{Name: "rh72", OS: "redhat-7.2", DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB}
	for _, n := range []string{"compute1", "compute2", "images"} {
		if err := g.Node(n).InstallImage(img); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Node("data").CreateUserData("alice-dataset", 1*hw.GB); err != nil {
		t.Fatal(err)
	}
	return g
}

func baseConfig() SessionConfig {
	return SessionConfig{
		User:     "alice",
		FrontEnd: "front",
		Image:    "rh72",
		Mode:     vmm.WarmRestore,
		Disk:     NonPersistent,
		Access:   AccessLocal,
		DataNode: "data",
		DataFile: "alice-dataset",
	}
}

func startSession(t *testing.T, g *Grid, cfg SessionConfig) *Session {
	t.Helper()
	var sess *Session
	var serr error
	ready := false
	s, err := g.CreateSession(cfg, func(s *Session, err error) {
		sess, serr = s, err
		ready = true
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(30 * sim.Minute))
	if !ready {
		t.Fatal("session never became ready")
	}
	if serr != nil {
		t.Fatalf("session error: %v", serr)
	}
	return sess
}

func TestSessionLifecycleSteps(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())

	for _, step := range []string{"submitted", "future-selected", "image-located",
		"vm-starting", "vm-running", "addr-assigned", "data-attached", "ready"} {
		if s.EventAt(step) < 0 {
			t.Errorf("step %q never happened; events: %v", step, s.Events())
		}
	}
	if s.State() != StateRunning {
		t.Errorf("state = %q", s.State())
	}
	if s.Addr() == "" {
		t.Error("no address assigned despite site DHCP")
	}
	if s.LocalUser() == "" {
		t.Error("no logical-account mapping")
	}
	if s.Console() == "" {
		t.Error("no console handle")
	}
	if s.VM().State() != vmm.StateRunning {
		t.Errorf("VM state = %v", s.VM().State())
	}
	// The VM is registered in the information service.
	if _, err := g.Info().Lookup("vm", s.Name()); err != nil {
		t.Errorf("VM not registered: %v", err)
	}
}

func TestRestoreSessionStartupBand(t *testing.T) {
	// Table 2: restore + non-persistent + DiskFS ≈ 12 s (9.6-25).
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	elapsed := s.EventAt("ready").Sub(s.EventAt("submitted")).Seconds()
	if elapsed < 6 || elapsed > 26 {
		t.Errorf("restore startup = %.1fs, want Table 2 band ~10-25s", elapsed)
	}
}

func TestRebootSessionStartupBand(t *testing.T) {
	// Table 2: reboot + non-persistent + DiskFS ≈ 69 s (64-86).
	g := testbed(t)
	cfg := baseConfig()
	cfg.Mode = vmm.ColdBoot
	s := startSession(t, g, cfg)
	elapsed := s.EventAt("ready").Sub(s.EventAt("submitted")).Seconds()
	if elapsed < 55 || elapsed > 90 {
		t.Errorf("reboot startup = %.1fs, want Table 2 band ~64-86s", elapsed)
	}
}

func TestPersistentCopyDominatesStartup(t *testing.T) {
	// Table 2: the persistent rows are minutes, dominated by the copy.
	g := testbed(t)
	cfg := baseConfig()
	cfg.Disk = Persistent
	s := startSession(t, g, cfg)
	elapsed := s.EventAt("ready").Sub(s.EventAt("submitted")).Seconds()
	if elapsed < 150 {
		t.Errorf("persistent startup = %.1fs, want minutes (copy-dominated)", elapsed)
	}
	// The private copies exist on the node.
	if !s.Node().Store().Has(s.Name() + ".disk") {
		t.Error("persistent disk copy missing")
	}
}

func TestLoopbackSlowerThanLocal(t *testing.T) {
	g1 := testbed(t)
	local := startSession(t, g1, baseConfig())
	localTime := local.EventAt("ready").Sub(local.EventAt("submitted"))

	g2 := testbed(t)
	cfg := baseConfig()
	cfg.Access = AccessLoopback
	loop := startSession(t, g2, cfg)
	loopTime := loop.EventAt("ready").Sub(loop.EventAt("submitted"))

	if loopTime <= localTime {
		t.Errorf("LoopbackNFS (%v) not slower than DiskFS (%v)", loopTime, localTime)
	}
	// Still in the paper's band: restore over loopback NFS ≈ 23-44 s.
	if loopTime.Seconds() > 60 {
		t.Errorf("LoopbackNFS restore = %.1fs, way over Table 2", loopTime.Seconds())
	}
}

// testbedRemoteImages is testbed but with images only on the UFL image
// server, forcing the cross-domain paths.
func testbedRemoteImages(t *testing.T) *Grid {
	t.Helper()
	g := NewGrid(1)
	add := func(cfg NodeConfig) {
		t.Helper()
		if _, err := g.AddNode(cfg); err != nil {
			t.Fatal(err)
		}
	}
	add(NodeConfig{Name: "front", Site: "nwu", Role: RoleFrontEnd})
	add(NodeConfig{Name: "compute1", Site: "nwu", Role: RoleCompute, Slots: 2, DHCPPrefix: "10.1.0."})
	add(NodeConfig{Name: "data", Site: "nwu", Role: RoleDataServer})
	add(NodeConfig{Name: "images", Site: "ufl", Role: RoleImageServer})
	if err := g.Net().BuildLAN("front", "compute1", "data"); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"front", "compute1"} {
		if err := g.Net().ConnectWAN(n, "images"); err != nil {
			t.Fatal(err)
		}
	}
	img := storage.ImageInfo{Name: "rh72", OS: "redhat-7.2", DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB}
	if err := g.Node("images").InstallImage(img); err != nil {
		t.Fatal(err)
	}
	if err := g.Node("data").CreateUserData("alice-dataset", 1*hw.GB); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOnDemandSessionFromRemoteImageServer(t *testing.T) {
	g := testbedRemoteImages(t)
	cfg := baseConfig()
	cfg.Access = AccessOnDemand
	s := startSession(t, g, cfg)
	if s.ImageServer() != "images" {
		t.Errorf("image server = %q, want images", s.ImageServer())
	}
	elapsed := s.EventAt("ready").Sub(s.EventAt("submitted")).Seconds()
	// On-demand restore over the WAN moves ~the memory image working
	// set, not the 2 GB disk: minutes would mean staging leaked in.
	if elapsed > 120 {
		t.Errorf("on-demand startup = %.1fs; should be far below whole-image staging", elapsed)
	}
}

func TestStagedSessionMovesWholeImage(t *testing.T) {
	g := testbedRemoteImages(t)
	cfg := baseConfig()
	cfg.Access = AccessStaged
	s := startSession(t, g, cfg)
	// 2 GB + 128 MB over a 5 MB/s WAN ≥ 400 s.
	elapsed := s.EventAt("ready").Sub(s.EventAt("submitted")).Seconds()
	if elapsed < 400 {
		t.Errorf("staged startup = %.1fs, must include the whole-image transfer", elapsed)
	}
	if !s.Node().Store().Has(s.Name() + ".disk") {
		t.Error("staged disk missing on compute node")
	}
}

func TestSessionRunsWorkload(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	var res guest.TaskResult
	if err := s.Run(guest.MicroTask(5), func(r guest.TaskResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(sim.Minute))
	if res.UserSeconds != 5 {
		t.Fatalf("workload did not complete: %+v", res)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
}

func TestSessionDataMountReachesDataServer(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	w := guest.Workload{
		Name: "reader", CPUSeconds: 10,
		Reads: 100, ReadBytes: 10 << 20, Mount: "data",
	}
	var res guest.TaskResult
	if err := s.Run(w, func(r guest.TaskResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(10 * sim.Minute))
	if res.Reads != 100 {
		t.Fatalf("reads = %d", res.Reads)
	}
	if g.Node("data").VFSServer().Ops() == 0 {
		t.Error("data server saw no RPCs; mount not actually remote")
	}
}

func TestShutdownCleansUp(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	node := s.Node()
	slotsBefore := node.Slots()
	addr := s.Addr()
	s.Shutdown()
	if s.State() != StateDead {
		t.Errorf("state = %q", s.State())
	}
	if node.Slots() != slotsBefore+1 {
		t.Errorf("slot not released: %d -> %d", slotsBefore, node.Slots())
	}
	if node.Store().Has(s.Name() + ".cow") {
		t.Error("COW diff not discarded")
	}
	if _, err := g.Info().Lookup("vm", s.Name()); err == nil {
		t.Error("VM still registered after shutdown")
	}
	// The address is reusable.
	if addr != "" {
		if a, err := node.dhcp.Lease("probe"); err != nil || a != addr {
			t.Errorf("address not recycled: %v %v", a, err)
		}
	}
	s.Shutdown() // idempotent
}

func TestHibernateAndWake(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	var res guest.TaskResult
	finished := false
	if err := s.Run(guest.MicroTask(60), func(r guest.TaskResult) { res = r; finished = true }); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(20 * sim.Second))

	hibernated := false
	if err := s.Hibernate(func(err error) {
		if err != nil {
			t.Errorf("hibernate: %v", err)
		}
		hibernated = true
	}); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(5 * sim.Minute))
	if !hibernated || s.State() != StateHibernated {
		t.Fatalf("hibernate failed: state %q", s.State())
	}
	if finished {
		t.Fatal("task ran to completion while hibernated")
	}

	if err := s.Wake(nil); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(10 * sim.Minute))
	if !finished {
		t.Fatal("task never finished after wake")
	}
	if res.UserSeconds != 60 {
		t.Errorf("UserSeconds = %v", res.UserSeconds)
	}
}

func TestMigrationPreservesComputation(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	firstNode := s.Node().Name()

	var res guest.TaskResult
	finished := false
	if err := s.Run(guest.MicroTask(120), func(r guest.TaskResult) { res = r; finished = true }); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(30 * sim.Second))

	target := "compute2"
	if firstNode == "compute2" {
		target = "compute1"
	}
	migrated := false
	if err := s.Migrate(target, func(err error) {
		if err != nil {
			t.Errorf("migrate: %v", err)
		}
		migrated = true
	}); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(30 * sim.Minute))
	if !migrated {
		t.Fatal("migration never completed")
	}
	if s.Node().Name() != target {
		t.Errorf("session on %s, want %s", s.Node().Name(), target)
	}
	if !finished {
		_ = g.Kernel().RunUntil(g.Kernel().Now().Add(30 * sim.Minute))
	}
	if !finished {
		t.Fatal("task never finished after migration")
	}
	if res.UserSeconds != 120 {
		t.Errorf("UserSeconds = %v (work lost in flight?)", res.UserSeconds)
	}
	// Old node's session files are gone; registry points at the target.
	e, err := g.Info().Lookup("vm", s.Name())
	if err != nil {
		t.Fatal(err)
	}
	if e.Str("host") != target {
		t.Errorf("registry host = %q", e.Str("host"))
	}
}

func TestMigrationGuards(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	if err := s.Migrate("front", nil); err == nil {
		t.Error("migrate to non-compute node accepted")
	}
	if err := s.Migrate("ghost", nil); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("migrate to unknown node = %v", err)
	}
	s.Shutdown()
	if err := s.Migrate("compute2", nil); !errors.Is(err, ErrBadSession) {
		t.Errorf("migrate dead session = %v", err)
	}
}

func TestSessionValidation(t *testing.T) {
	g := testbed(t)
	bad := []SessionConfig{
		{},
		{User: "a", FrontEnd: "front"}, // no image
		{User: "a", FrontEnd: "ghost", Image: "rh72", Mode: vmm.ColdBoot, Disk: NonPersistent, Access: AccessLocal},                   // bad front end
		{User: "a", FrontEnd: "front", Image: "rh72", Disk: NonPersistent, Access: AccessLocal},                                       // no mode
		{User: "a", FrontEnd: "front", Image: "rh72", Mode: vmm.ColdBoot, Access: AccessLocal},                                        // no policy
		{User: "a", FrontEnd: "front", Image: "rh72", Mode: vmm.ColdBoot, Disk: NonPersistent},                                        // no access
		{User: "a", FrontEnd: "front", Image: "rh72", Mode: vmm.ColdBoot, Disk: NonPersistent, Access: AccessLocal, DataNode: "data"}, // dangling data
	}
	for i, cfg := range bad {
		if _, err := g.CreateSession(cfg, nil); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestNoFutureFails(t *testing.T) {
	g := testbed(t)
	cfg := baseConfig()
	cfg.Site = "mars"
	var got error
	if _, err := g.CreateSession(cfg, func(_ *Session, err error) { got = err }); err != nil {
		t.Fatal(err)
	}
	g.Kernel().Run()
	if !errors.Is(got, ErrNoFuture) {
		t.Errorf("session error = %v, want ErrNoFuture", got)
	}
}

func TestMissingImageFails(t *testing.T) {
	g := testbed(t)
	cfg := baseConfig()
	cfg.Image = "windows-xp"
	var got error
	if _, err := g.CreateSession(cfg, func(_ *Session, err error) { got = err }); err != nil {
		t.Fatal(err)
	}
	g.Kernel().Run()
	if !errors.Is(got, ErrNoImage) {
		t.Errorf("session error = %v, want ErrNoImage", got)
	}
}

func TestSlotsExhaustion(t *testing.T) {
	g := testbed(t)
	// Fill all four slots, then a fifth session must fail.
	for i := 0; i < 4; i++ {
		cfg := baseConfig()
		cfg.User = "alice"
		startSession(t, g, cfg)
	}
	var got error
	done := false
	if _, err := g.CreateSession(baseConfig(), func(_ *Session, err error) { got = err; done = true }); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(sim.Hour))
	if !done {
		t.Fatal("fifth session never resolved")
	}
	if !errors.Is(got, ErrNoFuture) {
		t.Errorf("fifth session = %v, want ErrNoFuture", got)
	}
}

func TestTunnelWhenNoDHCP(t *testing.T) {
	g := NewGrid(2)
	mustAdd := func(cfg NodeConfig) {
		t.Helper()
		if _, err := g.AddNode(cfg); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(NodeConfig{Name: "home", Site: "user", Role: RoleFrontEnd})
	mustAdd(NodeConfig{Name: "farm", Site: "provider", Role: RoleCompute, Slots: 1}) // no DHCP
	if err := g.Net().ConnectWAN("home", "farm"); err != nil {
		t.Fatal(err)
	}
	img := storage.ImageInfo{Name: "rh72", OS: "rh72", DiskBytes: 1 * hw.GB, MemBytes: 128 * hw.MB}
	if err := g.Node("farm").InstallImage(img); err != nil {
		t.Fatal(err)
	}
	cfg := SessionConfig{
		User: "bob", FrontEnd: "home", Image: "rh72",
		Mode: vmm.WarmRestore, Disk: NonPersistent, Access: AccessLocal,
		HomeNode: "home",
	}
	s := startSession(t, g, cfg)
	if s.Tunnel() == nil {
		t.Fatal("no tunnel despite missing site DHCP")
	}
	if s.Addr() != "" {
		t.Error("address assigned from nowhere")
	}
	if s.EventAt("tunnel-established") < 0 {
		t.Error("tunnel step missing from timeline")
	}
}

func TestNoAddressSourceFails(t *testing.T) {
	g := NewGrid(3)
	if _, err := g.AddNode(NodeConfig{Name: "home", Site: "u", Role: RoleFrontEnd}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddNode(NodeConfig{Name: "farm", Site: "p", Role: RoleCompute, Slots: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Net().ConnectWAN("home", "farm"); err != nil {
		t.Fatal(err)
	}
	img := storage.ImageInfo{Name: "rh72", OS: "rh72", DiskBytes: 1 * hw.GB, MemBytes: 128 * hw.MB}
	if err := g.Node("farm").InstallImage(img); err != nil {
		t.Fatal(err)
	}
	cfg := SessionConfig{
		User: "bob", FrontEnd: "home", Image: "rh72",
		Mode: vmm.WarmRestore, Disk: NonPersistent, Access: AccessLocal,
		// no HomeNode, farm has no DHCP
	}
	var got error
	done := false
	if _, err := g.CreateSession(cfg, func(_ *Session, err error) { got = err; done = true }); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(sim.Hour))
	if !done {
		t.Fatal("session never resolved")
	}
	if !errors.Is(got, ErrNoAddress) {
		t.Errorf("error = %v, want ErrNoAddress", got)
	}
}

func TestAddNodeValidation(t *testing.T) {
	g := NewGrid(4)
	if _, err := g.AddNode(NodeConfig{}); err == nil {
		t.Error("nameless node accepted")
	}
	if _, err := g.AddNode(NodeConfig{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddNode(NodeConfig{Name: "x"}); err == nil {
		t.Error("duplicate node accepted")
	}
	bad := hw.ReferenceMachine("y")
	bad.CPU.Speed = -1
	if _, err := g.AddNode(NodeConfig{Name: "y", Spec: bad}); err == nil {
		t.Error("invalid spec accepted")
	}
}
