package core

import (
	"errors"
	"testing"

	"vmgrid/internal/guest"
	"vmgrid/internal/sim"
)

// replicate spreads the testbed's registry across the control-plane
// nodes (data is the supervisor's stable node and replica home).
func replicate(t *testing.T, g *Grid) {
	t.Helper()
	if _, err := g.EnableGISReplication([]string{"data", "front", "images"}, 0); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionFailoverFencesZombie is the end-to-end fencing story: a
// partitioned (not crashed) host keeps its incarnation running, the
// supervisor fails over behind a quorum epoch bump, and the marooned
// incarnation's late completion is rejected — exactly one result is
// delivered — after which the zombie's slot and address are reclaimed.
func TestPartitionFailoverFencesZombie(t *testing.T) {
	g := testbed(t)
	replicate(t, g)
	s := startSession(t, g, baseConfig())
	sup := superviseSession(t, g, s, SupervisorConfig{CheckpointInterval: 30 * sim.Second})

	var res guest.TaskResult
	completions := 0
	if err := sup.Run(s, guest.MicroTask(600), func(r guest.TaskResult) {
		res = r
		completions++
	}); err != nil {
		t.Fatal(err)
	}
	k := g.Kernel()
	victim := s.Node()
	// Heal only after the zombie's own completion (~620 s): its stale
	// result must be what surfaces and fences it, not the reachability
	// sweep.
	k.After(120*sim.Second, func() { _ = g.Net().SetNodeUp(victim.name, false) })
	k.After(700*sim.Second, func() { _ = g.Net().SetNodeUp(victim.name, true) })

	stepUntil(g, 2*sim.Hour, func() bool {
		return completions > 0 && sup.stats.FencedResults > 0
	})
	st := sup.Stats()
	if completions != 1 {
		t.Fatalf("completions = %d, want exactly 1 (fencing must reject the zombie's)", completions)
	}
	if res.Err != nil {
		t.Fatalf("task error: %v", res.Err)
	}
	if res.UserSeconds != 600 {
		t.Errorf("UserSeconds = %v, want the full 600", res.UserSeconds)
	}
	if st.FencedResults != 1 {
		t.Errorf("fenced results = %d, want 1", st.FencedResults)
	}
	if st.ZombiesFenced != 1 {
		t.Errorf("zombies fenced = %d, want 1", st.ZombiesFenced)
	}
	if st.Crashes != 1 || st.Recoveries != 1 {
		t.Errorf("crashes/recoveries = %d/%d, want 1/1", st.Crashes, st.Recoveries)
	}
	if s.Epoch() < 1 {
		t.Errorf("session epoch = %d, want bumped by the failover", s.Epoch())
	}
	if s.State() != StateRunning {
		t.Errorf("state = %q after partition failover", s.State())
	}
	if s.Node() == victim {
		t.Error("session still on the partitioned host")
	}
	for _, ev := range []string{"partitioned", "recovered", "fenced"} {
		if s.EventAt(ev) < 0 {
			t.Errorf("missing %q step; events: %v", ev, s.Events())
		}
	}
	// The fenced zombie gave back what it held on the old host.
	if victim.slots != 2 {
		t.Errorf("victim slots = %d, want 2 after the zombie was fenced", victim.slots)
	}
	if victim.dhcp.Leased() != 0 {
		t.Errorf("victim leaked %d DHCP leases", victim.dhcp.Leased())
	}
	// Post-heal anti-entropy reconverges the registry.
	cl := g.Info().Cluster()
	stepUntil(g, sim.Minute, cl.Converged)
	if !cl.Converged() {
		t.Error("replicas did not reconverge after heal")
	}
	if cl.MinorityWrites() == 0 {
		t.Error("no minority-side writes recorded during the partition")
	}
	sup.Stop()
}

// TestZombieSweepReclaimsZombieOnHeal covers the other fencing
// trigger: a zombie that never finishes (here the heal lands long
// before its task would) produces no stale result, so the supervisor's
// heartbeat sweep must notice the host answering again and reclaim the
// marooned incarnation by reachability alone.
func TestZombieSweepReclaimsZombieOnHeal(t *testing.T) {
	g := testbed(t)
	replicate(t, g)
	s := startSession(t, g, baseConfig())
	sup := superviseSession(t, g, s, SupervisorConfig{CheckpointInterval: 30 * sim.Second})

	completions := 0
	if err := sup.Run(s, guest.MicroTask(600), func(guest.TaskResult) {
		completions++
	}); err != nil {
		t.Fatal(err)
	}
	k := g.Kernel()
	victim := s.Node()
	k.After(120*sim.Second, func() { _ = g.Net().SetNodeUp(victim.name, false) })
	k.After(300*sim.Second, func() { _ = g.Net().SetNodeUp(victim.name, true) })

	stepUntil(g, 2*sim.Hour, func() bool {
		return completions > 0 && sup.stats.ZombiesFenced > 0
	})
	st := sup.Stats()
	if completions != 1 {
		t.Fatalf("completions = %d, want exactly 1", completions)
	}
	if st.ZombiesFenced != 1 {
		t.Errorf("zombies fenced = %d, want 1 (by the heal sweep)", st.ZombiesFenced)
	}
	if st.FencedResults != 0 {
		t.Errorf("fenced results = %d, want 0 (the sweep killed the VM first)", st.FencedResults)
	}
	if victim.slots != 2 {
		t.Errorf("victim slots = %d, want 2 after the sweep", victim.slots)
	}
	if victim.dhcp.Leased() != 0 {
		t.Errorf("victim leaked %d DHCP leases", victim.dhcp.Leased())
	}
	sup.Stop()
}

// TestMinoritySupervisorBacksOff pins the quorum on the session's side
// of the partition: the supervisor's stable node is the isolated one,
// so the epoch bump finds no quorum and no failover happens — the task
// completes on the original host once nothing fences it.
func TestMinoritySupervisorBacksOff(t *testing.T) {
	g := testbed(t)
	replicate(t, g)
	s := startSession(t, g, baseConfig())
	sup := superviseSession(t, g, s, SupervisorConfig{CheckpointInterval: 30 * sim.Second})

	var res guest.TaskResult
	completions := 0
	if err := sup.Run(s, guest.MicroTask(300), func(r guest.TaskResult) {
		res = r
		completions++
	}); err != nil {
		t.Fatal(err)
	}
	k := g.Kernel()
	// Isolate the stable node (replica home "data"): the host still
	// reaches front+images (2 of 3), so its renewals keep quorum, while
	// any failover the data-side supervisor wanted could not fence.
	k.After(60*sim.Second, func() { _ = g.Net().SetNodeUp("data", false) })
	k.After(240*sim.Second, func() { _ = g.Net().SetNodeUp("data", true) })

	stepUntil(g, 2*sim.Hour, func() bool { return completions > 0 })
	if completions != 1 || res.Err != nil {
		t.Fatalf("completions = %d err = %v, want one clean completion", completions, res.Err)
	}
	if st := sup.Stats(); st.Recoveries != 0 || st.FencedResults != 0 {
		t.Errorf("stats = %+v, want no failover for a healthy majority-side host", st)
	}
	if s.Epoch() != 0 {
		t.Errorf("epoch = %d, want 0 (never fenced)", s.Epoch())
	}
	sup.Stop()
}

// TestCrashMidFailoverSlotInvariant crashes the failover target while
// the checkpoint is being restaged onto it, then reboots it. The
// reserved slot's release must not mint capacity the reboot already
// restored: at the end every compute node holds exactly
// capacity - hosted sessions.
func TestCrashMidFailoverSlotInvariant(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	sup := superviseSession(t, g, s, SupervisorConfig{CheckpointInterval: 30 * sim.Second})

	var res guest.TaskResult
	finished := false
	if err := sup.Run(s, guest.MicroTask(600), func(r guest.TaskResult) {
		res = r
		finished = true
	}); err != nil {
		t.Fatal(err)
	}
	k := g.Kernel()
	victim := s.Node().Name()
	target := "compute2"
	if victim == "compute2" {
		target = "compute1"
	}
	k.After(120*sim.Second, func() { _ = g.CrashNode(victim) })
	// Lease TTL is 6 s, so detection lands ~126-128 s; the restage onto
	// the target is in flight at 129 s.
	k.After(129*sim.Second, func() { _ = g.CrashNode(target) })
	k.After(150*sim.Second, func() { _ = g.RebootNode(target) })
	k.After(420*sim.Second, func() { _ = g.RebootNode(victim) })

	// Continuously assert the invariant while the crash/reboot/retry
	// machinery churns: slots over capacity mean a stale release minted
	// one.
	overMint := false
	var tick func()
	tick = func() {
		for _, name := range []string{"compute1", "compute2"} {
			if g.Node(name).slots > 2 {
				overMint = true
			}
		}
		if !finished {
			k.After(5*sim.Second, tick)
		}
	}
	k.After(125*sim.Second, tick)

	stepUntil(g, 2*sim.Hour, func() bool { return finished })
	if !finished {
		t.Fatalf("task never resolved; state %q", s.State())
	}
	if res.Err != nil {
		t.Fatalf("task error: %v", res.Err)
	}
	if overMint {
		t.Error("a compute node advertised more slots than its capacity")
	}
	for _, name := range []string{"compute1", "compute2"} {
		n := g.Node(name)
		hosted := len(g.sessionsOn(n))
		if n.slots != 2-hosted {
			t.Errorf("%s slots = %d with %d hosted sessions, want %d",
				name, n.slots, hosted, 2-hosted)
		}
	}
	sup.Stop()
}

// TestConnectFailureReleasesLease: a session whose data attachment
// fails after its DHCP lease was granted must give the address back —
// the other half of the crash-mid-failover resource-leak fix.
func TestConnectFailureReleasesLease(t *testing.T) {
	g := testbed(t)
	cfg := baseConfig()
	cfg.DataFile = "no-such-dataset"
	var serr error
	ready := false
	if _, err := g.CreateSession(cfg, func(_ *Session, err error) {
		serr = err
		ready = true
	}); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(30 * sim.Minute))
	if !ready || serr == nil {
		t.Fatalf("session with missing data file did not fail (ready=%v err=%v)", ready, serr)
	}
	for _, name := range []string{"compute1", "compute2"} {
		if n := g.Node(name); n.dhcp.Leased() != 0 {
			t.Errorf("%s holds %d leases after failed connect", name, n.dhcp.Leased())
		}
	}
}

// TestReplicatedGridPreservesGoldenPath: with replication enabled but
// no faults, the crash-failover scenario behaves exactly as the
// unreplicated one — same merged result, same stats — because quorum
// writes on a healthy fabric always succeed.
func TestReplicatedGridPreservesGoldenPath(t *testing.T) {
	run := func(replicated bool) (guest.TaskResult, SupervisorStats) {
		g := testbed(t)
		if replicated {
			replicate(t, g)
		}
		s := startSession(t, g, baseConfig())
		sup := superviseSession(t, g, s, SupervisorConfig{CheckpointInterval: 30 * sim.Second})
		var res guest.TaskResult
		done := false
		if err := sup.Run(s, guest.MicroTask(300), func(r guest.TaskResult) {
			res = r
			done = true
		}); err != nil {
			t.Fatal(err)
		}
		stepUntil(g, 2*sim.Hour, func() bool { return done })
		if !done {
			t.Fatal("task never finished")
		}
		sup.Stop()
		return res, sup.Stats()
	}
	plainRes, plainStats := run(false)
	replRes, replStats := run(true)
	if plainRes != replRes {
		t.Errorf("results diverge with replication on a healthy fabric:\n  %+v\n  %+v", plainRes, replRes)
	}
	if plainStats != replStats {
		t.Errorf("stats diverge with replication on a healthy fabric:\n  %+v\n  %+v", plainStats, replStats)
	}
	if errors.Is(plainRes.Err, ErrNoQuorum) {
		t.Error("healthy fabric produced a quorum error")
	}
}
