package core

import (
	"strings"
	"testing"

	"vmgrid/internal/guest"
	"vmgrid/internal/sim"
)

func TestUsageMetersConsumption(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())

	before := s.Usage()
	if before.CPUSeconds <= 0 {
		t.Error("restore consumed no host CPU")
	}
	if before.GuestUserSeconds <= 0 {
		t.Error("resume sequence retired no guest work")
	}

	w := guest.Workload{
		Name: "bill-me", CPUSeconds: 60,
		PrivPerSec: 500, Reads: 40, ReadBytes: 20 << 20, Mount: "data",
	}
	var done bool
	if err := s.Run(w, func(guest.TaskResult) { done = true }); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(10 * sim.Minute))
	if !done {
		t.Fatal("workload never finished")
	}

	after := s.Usage()
	if after.GuestUserSeconds < before.GuestUserSeconds+60 {
		t.Errorf("guest work did not accumulate: %v -> %v",
			before.GuestUserSeconds, after.GuestUserSeconds)
	}
	if after.CPUSeconds <= before.CPUSeconds+59 {
		t.Errorf("host CPU (%v) below the guest work it must carry", after.CPUSeconds)
	}
	// Virtualization overhead: host CPU strictly exceeds useful work.
	if after.CPUSeconds <= after.GuestUserSeconds {
		t.Errorf("cpu %v not above guest work %v (overhead must show up)",
			after.CPUSeconds, after.GuestUserSeconds)
	}
	if eff := after.Efficiency(); eff <= 0.5 || eff >= 1.0 {
		t.Errorf("efficiency = %v, want (0.5, 1.0)", eff)
	}
	if after.DataBytesFetched == 0 {
		t.Error("data fetch bytes not metered")
	}
	if after.WallSeconds <= 0 {
		t.Error("wall clock not metered")
	}
	if !strings.Contains(after.String(), "cpu=") {
		t.Error("usage string missing fields")
	}
}

func TestUsageDiffBytesGrowWithWrites(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	if s.Usage().DiffBytes == 0 {
		// The resume sequence may or may not have written; force some
		// guest root I/O through a workload with root traffic.
		w := guest.Workload{Name: "scratch", CPUSeconds: 5, RootOps: 20, RootBytes: 4 << 20}
		done := false
		if err := s.Run(w, func(guest.TaskResult) { done = true }); err != nil {
			t.Fatal(err)
		}
		_ = g.Kernel().RunUntil(g.Kernel().Now().Add(5 * sim.Minute))
		if !done {
			t.Fatal("workload never finished")
		}
	}
	// Reads alone do not grow the diff; this asserts the meter is wired,
	// not a particular value.
	_ = s.Usage().DiffBytes
}

func TestAccountingReport(t *testing.T) {
	g := testbed(t)
	var sessions []*Session
	for i := 0; i < 2; i++ {
		cfg := baseConfig()
		sessions = append(sessions, startSession(t, g, cfg))
	}
	report := AccountingReport(sessions)
	for _, want := range []string{"sess-1-alice", "sess-2-alice", "TOTAL", "alice"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestIdleSessionAccruesAlmostNothing(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	after := s.Usage()
	// Let it idle for an hour of virtual time.
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(sim.Hour))
	idle := s.Usage()
	accrued := idle.CPUSeconds - after.CPUSeconds
	// The idle guest only fields timer ticks (1% demand).
	if accrued > 60 {
		t.Errorf("idle hour consumed %.1fs of CPU, want ~36s (1%% timer demand)", accrued)
	}
}
