package core

// Tracing glue: the grid owns at most one obs.Tracer, shared by every
// layer it builds (sessions, VFS mounts, GRAM clients, VMMs, the
// supervisor). Tracing is off by default — the nil tracer's no-op fast
// path keeps instrumented code free — and is enabled per grid with
// SetTracer before sessions are created.

import "vmgrid/internal/obs"

// SetTracer enables observability for everything the grid does from now
// on. Call it right after NewGrid: components capture the tracer when
// they are built, so sessions created earlier stay untraced. A nil
// tracer disables tracing (the default). The tracer's causal id stream
// is seeded from the grid seed, so trace and span ids are a pure
// function of (seed, recording order) — identical across runs and
// worker counts. If a flight recorder was enabled first, the tracer is
// attached to it.
func (g *Grid) SetTracer(t *obs.Tracer) {
	g.tracer = t
	t.SeedIDs(g.seed)
	if g.recorder != nil {
		t.SetFlightRecorder(g.recorder)
	}
	// Gatekeepers of already-attached nodes pick up the tracer too, so
	// server-side handler spans appear regardless of call order.
	for _, n := range g.nodes {
		if n.gk != nil {
			n.gk.SetTracer(t)
		}
	}
}

// Tracer returns the grid's tracer (nil when tracing is off; the nil
// value is safe to use).
func (g *Grid) Tracer() *obs.Tracer { return g.tracer }

// startupPhases names the Figure 3 phase that ends at each milestone
// mark. The five phases partition submitted→ready exactly — no gaps, no
// overlap — so their per-session durations sum to the startup
// wall-clock Table 2 reports.
var startupPhases = map[string]string{
	"future-selected": "query-future", // step 1: information-service query
	"image-located":   "locate-image", // step 2: image-server query
	"vm-starting":     "stage",        // step 3: data session / staging
	"vm-running":      "instantiate",  // step 4: VM boot or restore
	"ready":           "connect",      // step 5: network identity + data
}
