package core

import (
	"errors"
	"testing"

	"vmgrid/internal/guest"
	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/vmm"
	"vmgrid/internal/vnet"
)

// These tests inject failures into the fabric and assert the middleware
// degrades the way the paper's architecture implies it should.

func TestDHCPExhaustionFallsBackToTunnel(t *testing.T) {
	g := NewGrid(5)
	mustAdd := func(cfg NodeConfig) {
		t.Helper()
		if _, err := g.AddNode(cfg); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(NodeConfig{Name: "home", Site: "user", Role: RoleFrontEnd})
	mustAdd(NodeConfig{
		Name: "farm", Site: "provider", Role: RoleCompute,
		Slots: 2, DHCPPrefix: "10.0.0.", DHCPSize: 1, // one address only
	})
	if err := g.Net().ConnectWAN("home", "farm"); err != nil {
		t.Fatal(err)
	}
	img := storage.ImageInfo{Name: "rh72", OS: "rh72", DiskBytes: 1 * hw.GB, MemBytes: 128 * hw.MB}
	if err := g.Node("farm").InstallImage(img); err != nil {
		t.Fatal(err)
	}
	cfg := SessionConfig{
		User: "u", FrontEnd: "home", Image: "rh72",
		Mode: vmm.WarmRestore, Disk: NonPersistent, Access: AccessLocal,
		HomeNode: "home",
	}
	first := startSession(t, g, cfg)
	if first.Addr() == "" {
		t.Fatal("first session should get the one address")
	}
	second := startSession(t, g, cfg)
	if second.Addr() != "" {
		t.Error("second session got an address from an exhausted pool")
	}
	if second.Tunnel() == nil {
		t.Error("second session did not fall back to tunneling")
	}
}

func TestImageServerPartitionFailsOnDemandSession(t *testing.T) {
	g := testbedRemoteImages(t)
	// Cut both WAN links before the session starts (cutting only one
	// just reroutes through the front end — multi-path works).
	if err := g.Net().SetLinkUp("compute1", "images", false); err != nil {
		t.Fatal(err)
	}
	if err := g.Net().SetLinkUp("front", "images", false); err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.Access = AccessOnDemand
	var got error
	done := false
	if _, err := g.CreateSession(cfg, func(_ *Session, err error) { got = err; done = true }); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(sim.Hour))
	if !done {
		t.Fatal("session never resolved")
	}
	if got == nil {
		t.Fatal("session succeeded across a partition")
	}
}

func TestTunnelEstablishmentFailsAcrossPartition(t *testing.T) {
	g := NewGrid(6)
	if _, err := g.AddNode(NodeConfig{Name: "home", Site: "u", Role: RoleFrontEnd}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddNode(NodeConfig{Name: "relay", Site: "u", Role: RoleFrontEnd}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddNode(NodeConfig{Name: "farm", Site: "p", Role: RoleCompute, Slots: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Net().ConnectWAN("home", "farm"); err != nil {
		t.Fatal(err)
	}
	img := storage.ImageInfo{Name: "rh72", OS: "rh72", DiskBytes: 1 * hw.GB, MemBytes: 128 * hw.MB}
	if err := g.Node("farm").InstallImage(img); err != nil {
		t.Fatal(err)
	}
	// Home node partitions after submission but before connectivity.
	if err := g.Net().SetLinkUp("home", "farm", false); err != nil {
		t.Fatal(err)
	}
	cfg := SessionConfig{
		User: "u", FrontEnd: "home", Image: "rh72",
		Mode: vmm.WarmRestore, Disk: NonPersistent, Access: AccessLocal,
		HomeNode: "home",
	}
	var got error
	done := false
	if _, err := g.CreateSession(cfg, func(_ *Session, err error) { got = err; done = true }); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(sim.Hour))
	if !done {
		t.Fatal("session never resolved")
	}
	if !errors.Is(got, vnet.ErrPoolExhausted) && got == nil {
		// Any failure is acceptable; success is not.
		t.Log("session failed as expected:", got)
	}
	if got == nil {
		t.Fatal("session established a tunnel across a partition")
	}
}

func TestMigrateToFullNodeRejected(t *testing.T) {
	g := testbed(t)
	// Fill compute2 completely.
	cfg := baseConfig()
	cfg.Site = "nwu"
	var fillers []*Session
	for i := 0; i < 4; i++ {
		fillers = append(fillers, startSession(t, g, cfg))
	}
	var victim *Session
	for _, s := range fillers {
		if s.Node().Name() == "compute1" {
			victim = s
			break
		}
	}
	if victim == nil {
		t.Fatal("no session on compute1")
	}
	if err := victim.Migrate("compute2", nil); err == nil {
		t.Error("migrate to a full node accepted")
	}
}

func TestHibernateDuringIOCompletesAfterWake(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	w := guest.Workload{
		Name: "io-heavy", CPUSeconds: 60,
		Reads: 600, ReadBytes: 300 << 20, Mount: "data",
	}
	var res guest.TaskResult
	done := false
	if err := s.Run(w, func(r guest.TaskResult) { res = r; done = true }); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(20 * sim.Second))

	if err := s.Hibernate(nil); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(5 * sim.Minute))
	if s.State() != StateHibernated {
		t.Fatalf("state = %q", s.State())
	}
	if err := s.Wake(nil); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(30 * sim.Minute))
	if !done {
		t.Fatal("I/O-heavy task never finished after hibernate/wake")
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Reads != 600 {
		t.Errorf("reads = %d, want 600", res.Reads)
	}
}

func TestDoubleMigrateSequential(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	firstNode := s.Node().Name()
	other := "compute2"
	if firstNode == "compute2" {
		other = "compute1"
	}
	var task guest.TaskResult
	done := false
	if err := s.Run(guest.MicroTask(90), func(r guest.TaskResult) { task = r; done = true }); err != nil {
		t.Fatal(err)
	}
	migrate := func(target string) {
		t.Helper()
		finished := false
		if err := s.Migrate(target, func(err error) {
			if err != nil {
				t.Errorf("migrate to %s: %v", target, err)
			}
			finished = true
		}); err != nil {
			t.Fatal(err)
		}
		_ = g.Kernel().RunUntil(g.Kernel().Now().Add(20 * sim.Minute))
		if !finished {
			t.Fatalf("migration to %s never completed", target)
		}
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(10 * sim.Second))
	migrate(other)     // there ...
	migrate(firstNode) // ... and back again
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(30 * sim.Minute))
	if !done {
		t.Fatal("task lost across double migration")
	}
	if task.UserSeconds != 90 {
		t.Errorf("UserSeconds = %v", task.UserSeconds)
	}
	if s.Node().Name() != firstNode {
		t.Errorf("session on %s, want %s", s.Node().Name(), firstNode)
	}
}
