package core

import (
	"errors"
	"fmt"

	"vmgrid/internal/gis"
	"vmgrid/internal/gram"
	"vmgrid/internal/guest"
	"vmgrid/internal/obs"
	"vmgrid/internal/placement"
	"vmgrid/internal/retry"
	"vmgrid/internal/sim"
	"vmgrid/internal/vmm"
)

// SupervisorConfig tunes the self-healing session supervisor.
type SupervisorConfig struct {
	// HeartbeatInterval is how often the supervisor refreshes a charge's
	// lease (and, for crashed charges, polls for lease expiry). Default
	// 2 s.
	HeartbeatInterval sim.Duration
	// LeaseTTL is the lease lifetime per refresh; a host must miss
	// several heartbeats before its sessions are declared failed.
	// Default 3 × HeartbeatInterval.
	LeaseTTL sim.Duration
	// CheckpointInterval is how often the supervisor checkpoints each
	// charge (stop-and-copy: suspend, stage the memory image and COW
	// diff to stable storage, resume). Default 60 s.
	CheckpointInterval sim.Duration
	// StableNode names the node whose store holds checkpoints. It must
	// survive the failures the supervisor is expected to mask
	// (typically a data server). Required.
	StableNode string
	// MaxRecoveries bounds failovers per session before the supervisor
	// gives up and fails the session's tasks with ErrLeaseExpired.
	// Default 8.
	MaxRecoveries int
	// Placer ranks restore-target candidates. nil keeps the information
	// service's ranking (first viable future) — the behavior every
	// recovery experiment was calibrated against. The candidate list is
	// built by the grid's shared placement path either way, so the
	// viability filters (image, slots, bidirectional reachability from
	// the stable node and the front end) are identical to session
	// creation and balancer target selection.
	Placer placement.Placer
	// StageRetry governs the checkpoint staging copies (.mem/.cow to
	// the stable node), the same way vfs mounts and GRAM submits take a
	// retry policy: a transient fabric failure mid-stage re-attempts
	// with capped exponential backoff instead of abandoning the
	// checkpoint. The zero value keeps the historical single attempt.
	StageRetry retry.Policy
}

func (c *SupervisorConfig) fill() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * sim.Second
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * c.HeartbeatInterval
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 60 * sim.Second
	}
	if c.MaxRecoveries <= 0 {
		c.MaxRecoveries = 8
	}
}

// SupervisorStats aggregates what the supervisor did and what the
// failures cost — the raw material for the recovery ablation.
type SupervisorStats struct {
	// Checkpoints is how many checkpoints committed to stable storage.
	Checkpoints int
	// CheckpointSec is total virtual time charges spent suspended or
	// staging for checkpoints (the fault-free overhead of protection).
	CheckpointSec float64
	// Crashes counts lease expiries detected (one per charge per crash).
	Crashes int
	// Recoveries counts successful failovers.
	Recoveries int
	// LostWorkSec is user work retired after the last checkpoint and
	// before the crash — work that must be replayed.
	LostWorkSec float64
	// RepairSec is virtual time from crash to the charge running again
	// (detection latency + restore; excludes replay).
	RepairSec float64
	// GivenUp counts charges abandoned after MaxRecoveries.
	GivenUp int
	// FencedResults counts task completions delivered by a superseded
	// incarnation and rejected by the epoch check — each one a double
	// completion that fencing prevented.
	FencedResults int
	// NoQuorumBackoffs counts failover attempts deferred because the
	// supervisor could not commit the epoch bump to a registry quorum
	// (it may itself be on the minority side of a partition).
	NoQuorumBackoffs int
	// ZombiesFenced counts marooned pre-failover incarnations cleaned up
	// after they surfaced (a fence trip or a late task result).
	ZombiesFenced int
}

// supTask is one supervised workload: the original request plus the
// progress accounting that survives failovers.
type supTask struct {
	w    guest.Workload
	done func(guest.TaskResult)

	task  *guest.Task
	start sim.Time
	// baseSec is absolute user progress (reference CPU-seconds of w) at
	// the start of the current incarnation; ckptSec the progress
	// captured by the last committed checkpoint.
	baseSec float64
	ckptSec float64
	// remaining is the workload the current incarnation is running
	// (w minus baseSec, I/O scaled down proportionally).
	remaining guest.Workload
	finished  bool
}

// charge is one supervised session.
type charge struct {
	s     *Session
	tasks []*supTask

	// slot is the committed checkpoint slot (0 or 1; -1 = none). The
	// next checkpoint stages into the other slot and flips on success,
	// so a crash mid-checkpoint never destroys the last good one.
	slot      int
	ckptPages []int64

	hbNext        sim.EventID
	ckNext        sim.EventID
	checkpointing bool
	recovering    bool
	failSpan      obs.Span
	// lossAccounted marks that the current crash's lost work has been
	// charged to the stats; failover retries (no target available yet)
	// must not count the same crash again.
	lossAccounted bool
	recoveries    int
	stopped       bool
	// lastRenew is when the lease was last refreshed (-1 before the
	// first renewal) — the telemetry pipeline derives lease.age from it.
	lastRenew sim.Time

	// epoch is the charge's current fencing epoch: bumped through a
	// quorum registry write before every failover, captured by each
	// incarnation's task submissions, and compared in taskDone so a
	// superseded incarnation's results are rejected.
	epoch int64
	// carried marks epochs the one true incarnation previously ran
	// under: a fenced migration bumps the epoch but keeps the guest, so
	// task results submitted under a carried epoch are genuine, not
	// zombie double-completions. Failover clears the set — a new
	// incarnation's history starts from its checkpoint.
	carried map[int64]bool
	// Zombie state: the resources of partitioned-away incarnations,
	// remembered at failover time and released only when each zombie
	// surfaces (the supervisor cannot reach through a partition to kill
	// it). Repeated partitions can maroon several incarnations at once,
	// so the refs form a list keyed by the fencing epoch the incarnation
	// held — a surfacing event names its incarnation by that token, and
	// the others keep their resources until they surface themselves.
	zombies []zombieRef
}

// zombieRef remembers what one marooned incarnation held: the VM to
// power off, the DHCP lease to return, the slot release closure, and
// the fencing epoch the incarnation ran under (its identity).
type zombieRef struct {
	epoch   int64
	vm      *vmm.VM
	node    *Node
	addr    string
	release func()
}

func (c *charge) ckptFiles(slot int) (mem, cow string) {
	return fmt.Sprintf("%s.ckpt%d.mem", c.s.name, slot),
		fmt.Sprintf("%s.ckpt%d.cow", c.s.name, slot)
}

// Supervisor gives sessions a heartbeat lease in the information
// service (soft state as the failure detector), periodic memory-image
// checkpoints to stable storage, and automatic re-instantiation on a
// surviving node when the lease expires — replaying only the work lost
// since the last checkpoint.
type Supervisor struct {
	g       *Grid
	cfg     SupervisorConfig
	charges map[string]*charge
	stats   SupervisorStats
}

// NewSupervisor creates a supervisor writing checkpoints to
// cfg.StableNode.
func NewSupervisor(g *Grid, cfg SupervisorConfig) (*Supervisor, error) {
	cfg.fill()
	if cfg.StableNode == "" || g.nodes[cfg.StableNode] == nil {
		return nil, fmt.Errorf("%w: stable node %q", ErrUnknownNode, cfg.StableNode)
	}
	sup := &Supervisor{g: g, cfg: cfg, charges: make(map[string]*charge)}
	g.supervisors = append(g.supervisors, sup)
	return sup, nil
}

// Stats returns a snapshot of the supervisor's counters.
func (sup *Supervisor) Stats() SupervisorStats { return sup.stats }

// view returns the registry replica the supervisor reads: the one
// pinned to the stable node when the registry is replicated (the
// supervisor conceptually runs there), else the grid's service. Writes
// still go through quorum; only reads are local.
func (sup *Supervisor) view() *gis.Service {
	if cl := sup.g.info.Cluster(); cl != nil {
		for i := 0; i < cl.Size(); i++ {
			if cl.Node(i) == sup.cfg.StableNode {
				return cl.Replica(i)
			}
		}
	}
	return sup.g.info
}

// Adopt places a running session under supervision: registers its
// lease, takes an immediate baseline checkpoint (so a valid checkpoint
// exists before the first failure can strike), and starts the periodic
// heartbeat and checkpoint ticks. done fires when the baseline
// checkpoint commits.
func (sup *Supervisor) Adopt(s *Session, done func(error)) error {
	if !s.State().CanRun() {
		return fmt.Errorf("%w: adopt in %q", ErrBadSession, s.State())
	}
	if s.cow == nil {
		return errors.New("core: supervisor requires a non-persistent (COW) session")
	}
	if _, dup := sup.charges[s.name]; dup {
		return fmt.Errorf("core: session %q already supervised", s.name)
	}
	c := &charge{s: s, slot: -1, lastRenew: -1}
	sup.charges[s.name] = c
	sup.renewLease(c)
	sup.scheduleHeartbeat(c)
	sup.checkpoint(c, func(err error) {
		if err == nil {
			sup.scheduleCheckpoint(c)
		}
		if done != nil {
			done(err)
		}
	})
	return nil
}

// Run starts a workload in a supervised session. The done callback sees
// a merged result spanning failovers: UserSeconds counts the full
// workload and Start is the original submission time, so only End (and
// therefore Elapsed) reflects recovery delays.
func (sup *Supervisor) Run(s *Session, w guest.Workload, done func(guest.TaskResult)) error {
	c := sup.charges[s.name]
	if c == nil {
		return fmt.Errorf("core: session %q not supervised", s.name)
	}
	t := &supTask{w: w, done: done, start: sup.g.k.Now(), remaining: w}
	epoch := c.epoch
	task, err := s.RunTask(w, func(res guest.TaskResult) { sup.taskDone(c, t, epoch, res) })
	if err != nil {
		return err
	}
	t.task = task
	c.tasks = append(c.tasks, t)
	return nil
}

// Release ends supervision without ending the session: ticks stop and
// the lease lapses naturally.
func (sup *Supervisor) Release(s *Session) {
	c := sup.charges[s.name]
	if c == nil {
		return
	}
	c.stopped = true
	sup.g.k.Cancel(c.hbNext)
	sup.g.k.Cancel(c.ckNext)
	sup.g.info.Deregister(gis.KindLease, s.name)
	delete(sup.charges, s.name)
}

// Stop releases every charge.
func (sup *Supervisor) Stop() {
	for _, c := range sup.charges {
		sup.Release(c.s)
	}
}

// renewLease refreshes the charge's lease as a write originating at
// the session's host: against a replicated registry, a partitioned
// host's renewal fails closed (no quorum) even though the supervisor
// itself is healthy — that failure is the partition detector.
func (sup *Supervisor) renewLease(c *charge) bool {
	host := ""
	if c.s.node != nil {
		host = c.s.node.name
	}
	if err := sup.g.info.RegisterFrom(host, gis.KindLease, c.s.name, map[string]any{
		gis.AttrHost:  host,
		gis.AttrEpoch: c.epoch,
	}, sup.cfg.LeaseTTL); err != nil {
		return false
	}
	c.lastRenew = sup.g.k.Now()
	return true
}

func (sup *Supervisor) scheduleHeartbeat(c *charge) {
	c.hbNext = sup.g.k.After(sup.cfg.HeartbeatInterval, func() { sup.heartbeat(c) })
}

func (sup *Supervisor) scheduleCheckpoint(c *charge) {
	c.ckNext = sup.g.k.After(sup.cfg.CheckpointInterval, func() {
		sup.scheduleCheckpoint(c)
		sup.checkpoint(c, nil)
	})
}

// heartbeat is the supervisor's periodic tick for one charge: refresh
// the lease while the host is healthy, detect expiry once it is not.
func (sup *Supervisor) heartbeat(c *charge) {
	if c.stopped {
		return
	}
	s := c.s
	switch s.State() {
	case StateDead:
		sup.Release(s)
		return
	case StateRunning, StateHibernated:
		if sup.renewLease(c) {
			break
		}
		// The host cannot reach a registry quorum: it is on the minority
		// side of a partition. Once the lease expires in the supervisor's
		// (majority-side) view, fail over — with fencing, because unlike a
		// crash the old incarnation is still running over there.
		if !c.recovering {
			if _, err := sup.view().Lookup(gis.KindLease, s.name); err != nil {
				sup.partitionFailover(c)
			}
		}
	case StateCrashed:
		if !c.recovering {
			if _, err := sup.view().Lookup(gis.KindLease, s.name); err != nil {
				sup.failover(c)
			}
		}
	}
	sup.sweepZombies(c)
	sup.scheduleHeartbeat(c)
}

// sweepZombies reclaims marooned incarnations whose host answers
// again. A zombie that was suspended mid-checkpoint when the partition
// hit never finishes its task, so no stale result will ever surface it;
// reachability is the only remaining trigger for taking back its slot
// and address.
func (sup *Supervisor) sweepZombies(c *charge) {
	var ripe []int64
	for _, z := range c.zombies {
		if z.node != nil && sup.g.biReachable(sup.cfg.StableNode, z.node.name) {
			ripe = append(ripe, z.epoch)
		}
	}
	for _, epoch := range ripe {
		sup.fenceZombie(c, epoch)
	}
}

// progressSec returns a task's absolute user progress right now, in
// reference CPU-seconds of the original workload.
func (t *supTask) progressSec() float64 {
	if t.finished {
		return t.w.CPUSeconds
	}
	if t.task == nil {
		return t.baseSec
	}
	return t.baseSec + t.task.Progress()*t.remaining.CPUSeconds
}

// checkpoint runs one stop-and-copy checkpoint: suspend the VM (memory
// image lands in the node store), record task progress and COW
// occupancy, stage both state files into the spare slot on the stable
// node, flip the slot, resume. A crash mid-checkpoint leaves the
// previous slot intact.
func (sup *Supervisor) checkpoint(c *charge, done func(error)) {
	finish := func(err error) {
		if done != nil {
			done(err)
		}
	}
	s := c.s
	if c.stopped || c.recovering || c.checkpointing || s.migrating || !s.State().CanRun() {
		finish(fmt.Errorf("%w: checkpoint in %q", ErrBadSession, s.State()))
		return
	}
	c.checkpointing = true
	suspendedAt := sup.g.k.Now()
	ep := c.epoch
	sp := sup.g.tracer.BeginChild(s.sctx, s.name, "supervisor", "checkpoint")
	unlock := func(err error) {
		c.checkpointing = false
		sup.stats.CheckpointSec += sup.g.k.Now().Sub(suspendedAt).Seconds()
		sp.EndErr(err)
		finish(err)
	}
	if err := s.vm.Suspend(func(err error) {
		if err != nil {
			unlock(err)
			return
		}
		// Progress and disk state are now frozen; snapshot both.
		snap := make([]float64, len(c.tasks))
		for i, t := range c.tasks {
			snap[i] = t.progressSec()
		}
		pages := s.cow.WrittenPages()
		spare := 0
		if c.slot == 0 {
			spare = 1
		}
		commit := func(err error) error {
			// A checkpoint begun before a failover must not commit: its
			// image is the superseded incarnation's state.
			if err == nil && c.epoch != ep {
				err = ErrFencedEpoch
			}
			if err == nil {
				c.slot = spare
				c.ckptPages = pages
				// Tasks submitted while we staged are not in this image;
				// only the snapshot's prefix advances (append-only list).
				for i := range snap {
					c.tasks[i].ckptSec = snap[i]
				}
				sup.stats.Checkpoints++
				sup.g.tracer.Metrics().Counter("core.checkpoints").Inc()
			}
			return err
		}
		if s.node.store.ChunkPlane() != nil {
			// Pipelined checkpoint: the chunked stage snapshots both file
			// manifests synchronously in this event (modeling a COW-
			// protected checkpoint image), so the guest can resume now and
			// compute while the chunks drain to stable storage in the
			// background. Only the frozen window counts as checkpoint
			// overhead; the slot still flips only when staging commits.
			sup.stageCheckpoint(c, spare, func(err error) {
				err = commit(err)
				c.checkpointing = false
				sp.EndErr(err)
				finish(err)
			})
			sup.stats.CheckpointSec += sup.g.k.Now().Sub(suspendedAt).Seconds()
			if s.vm != nil && s.State() == StateRunning {
				_ = s.vm.Unpause()
			}
			return
		}
		sup.stageCheckpoint(c, spare, func(err error) {
			err = commit(err)
			// The node may have crashed while we staged; only a VM still
			// sitting suspended resumes.
			if s.vm != nil && s.State() == StateRunning {
				if uerr := s.vm.Unpause(); uerr != nil && err == nil {
					err = uerr
				}
			}
			unlock(err)
		})
	}); err != nil {
		c.checkpointing = false
		sp.EndErr(err)
		finish(err)
	}
}

// stageBaseBackoff is the base delay between checkpoint-staging
// retries when StageRetry leaves Backoff zero.
const stageBaseBackoff = 500 * sim.Millisecond

// stageFile copies one session state file into the stable store under
// asName, retrying per cfg.StageRetry. Each attempt deletes whatever
// partial file the previous one left, so a retry stages into a clean
// name instead of tripping over ErrExists.
func (sup *Supervisor) stageFile(c *charge, file, asName string, done func(error)) {
	s := c.s
	stable := sup.g.nodes[sup.cfg.StableNode]
	attempts := sup.cfg.StageRetry.Attempts()
	var attempt func(n int)
	attempt = func(n int) {
		if stable.store.Has(asName) {
			_ = stable.store.Delete(asName)
		}
		retryOrFail := func(err error) {
			if err != nil && n < attempts {
				sup.g.tracer.Metrics().Counter("core.checkpoint-stage-retries").Inc()
				sup.g.k.After(sup.cfg.StageRetry.Delay(n, stageBaseBackoff), func() {
					attempt(n + 1)
				})
				return
			}
			done(err)
		}
		if err := gram.Stage(sup.g.net, s.node.name, s.node.store, file,
			stable.name, stable.store, asName, retryOrFail); err != nil {
			retryOrFail(err)
		}
	}
	attempt(1)
}

// stageCheckpoint copies the session's .mem and .cow files into the
// given checkpoint slot on the stable node, each copy under the
// supervisor's staging retry policy. With the chunk plane enabled the
// two copies run concurrently — their manifests snapshot in the same
// event, so the pair is one consistent image even while the resumed
// guest keeps dirtying the COW — and only missing chunks cross the
// wire; without it they run back to back, as they always have.
func (sup *Supervisor) stageCheckpoint(c *charge, slot int, done func(error)) {
	s := c.s
	memName, cowName := c.ckptFiles(slot)
	if s.node.store.ChunkPlane() != nil {
		pending := 2
		var firstErr error
		settle := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if pending--; pending == 0 {
				done(firstErr)
			}
		}
		sup.stageFile(c, s.name+".mem", memName, settle)
		sup.stageFile(c, s.name+".cow", cowName, settle)
		return
	}
	sup.stageFile(c, s.name+".mem", memName, func(err error) {
		if err != nil {
			done(err)
			return
		}
		sup.stageFile(c, s.name+".cow", cowName, done)
	})
}

// failover recovers a crashed charge: account the lost work, pick a
// surviving compute node holding the base image, stage the last
// checkpoint there, dispatch a restore job through GRAM (with retry —
// the fabric may still be flaky), and resubmit the remaining work.
func (sup *Supervisor) failover(c *charge) {
	s := c.s
	if !c.lossAccounted {
		c.lossAccounted = true
		sup.stats.Crashes++
		sup.g.tracer.Metrics().Counter("core.lease-expiries").Inc()
		for _, t := range c.tasks {
			if t.finished {
				continue
			}
			if lost := t.progressSec() - t.ckptSec; lost > 0 {
				sup.stats.LostWorkSec += lost
			}
		}
	}
	if c.slot < 0 || c.recoveries >= sup.cfg.MaxRecoveries {
		sup.giveUp(c)
		return
	}
	c.recovering = true
	c.checkpointing = false // a checkpoint in flight died with the node
	s.state = StateRecovering
	s.mark("recovering")
	c.failSpan = sup.g.tracer.BeginChild(s.sctx, s.name, "supervisor", "failover")
	// Recovery entered: open an incident rooted at the failover span.
	// The bundle captures the session's trace as the recovery unfolds
	// and seals — postmortem included — when the failover span ends.
	sup.g.incidentOpen("recovery", s.name, c.failSpan.Context())

	target := sup.pickTarget(s)
	if target == nil {
		// Nothing can host the session right now (all candidates down or
		// full). Back off one lease and let the heartbeat re-detect; this
		// attempt does not count against MaxRecoveries.
		s.state = StateCrashed
		c.failSpan.Note("no target available")
		c.failSpan.End()
		sup.g.k.After(sup.cfg.LeaseTTL, func() { c.recovering = false })
		return
	}
	// Fence before the new incarnation can exist: bump the session's
	// epoch through a quorum write. Failure means the supervisor cannot
	// prove it holds the majority view (it may itself be partitioned) —
	// back off rather than risk two live incarnations at the same epoch.
	ep, err := sup.g.info.BumpEpochFrom(sup.cfg.StableNode, s.name)
	if err != nil {
		sup.stats.NoQuorumBackoffs++
		s.state = StateCrashed
		c.failSpan.Note("no quorum for epoch bump")
		c.failSpan.End()
		sup.g.k.After(sup.cfg.LeaseTTL, func() { c.recovering = false })
		return
	}
	c.epoch = ep
	s.epoch = ep
	// Migration-carried epochs died with the old incarnation; results
	// still in flight under them are now zombie results and must fence.
	c.carried = nil

	c.recoveries++
	release := target.reserveSlot()

	abort := func(err error) {
		release()
		s.state = StateCrashed
		c.failSpan.EndErr(err)
		sup.g.k.After(sup.cfg.LeaseTTL, func() { c.recovering = false })
	}

	memName, cowName := c.ckptFiles(c.slot)
	stable := sup.g.nodes[sup.cfg.StableNode]
	for _, f := range []string{s.name + ".mem", s.name + ".cow"} {
		if target.store.Has(f) {
			_ = target.store.Delete(f)
		}
	}
	stageSp := sup.g.tracer.BeginChild(c.failSpan.Context(), s.name, "supervisor", "restore-stage")
	stageAbort := func(err error) {
		stageSp.EndErr(err)
		abort(err)
	}
	if err := gram.Stage(sup.g.net, stable.name, stable.store, memName,
		target.name, target.store, s.name+".mem", func(err error) {
			if err != nil {
				stageAbort(err)
				return
			}
			if err := gram.Stage(sup.g.net, stable.name, stable.store, cowName,
				target.name, target.store, s.name+".cow", func(err error) {
					if err != nil {
						stageAbort(err)
						return
					}
					stageSp.End()
					sup.dispatchRestore(c, target, release)
				}); err != nil {
				stageAbort(err)
			}
		}); err != nil {
		stageAbort(err)
	}
}

// partitionFailover recovers a charge whose host is partitioned rather
// than dead: lease renewals from the host fail closed and the lease
// has expired in the supervisor's majority-side view. Unlike a crash,
// the old incarnation is still running on the far side — so the epoch
// is bumped first (refusing to proceed without quorum), and the old
// incarnation's resources are remembered as zombie state, to be
// released when it surfaces (a fence trip or a late task result)
// rather than by reaching through the partition to kill it.
func (sup *Supervisor) partitionFailover(c *charge) {
	s := c.s
	old := c.epoch
	ep, err := sup.g.info.BumpEpochFrom(sup.cfg.StableNode, s.name)
	if err != nil {
		// No quorum from the stable node either: the supervisor itself
		// may be the minority. Do nothing; the heartbeat re-detects.
		sup.stats.NoQuorumBackoffs++
		return
	}
	c.epoch = ep
	s.epoch = ep
	c.carried = nil
	c.zombies = append(c.zombies, zombieRef{
		epoch: old, vm: s.vm, node: s.node, addr: s.addr, release: s.slotRelease,
	})
	s.slotRelease = nil
	s.addr = ""
	s.crashedAt = sup.g.k.Now()
	s.state = StateCrashed
	s.mark("partitioned")
	sup.failover(c)
}

// fenceZombie releases what the marooned incarnation that ran under
// the given epoch held, once it has surfaced. Other, still-unsurfaced
// zombies keep their resources — releasing a slot out from under a VM
// still running on the far side would mint capacity. Safe to call when
// no zombie matches.
func (sup *Supervisor) fenceZombie(c *charge, epoch int64) {
	kept := c.zombies[:0]
	fenced := false
	for _, z := range c.zombies {
		if z.epoch != epoch {
			kept = append(kept, z)
			continue
		}
		fenced = true
		if z.vm != nil {
			z.vm.PowerOff()
		}
		if z.addr != "" && z.node != nil && !z.node.crashed && z.node.dhcp != nil {
			_ = z.node.dhcp.Release(z.addr)
		}
		if z.release != nil {
			z.release()
		}
	}
	c.zombies = kept
	if !fenced {
		return
	}
	c.s.mark("fenced")
	sup.stats.ZombiesFenced++
	sup.g.tracer.Metrics().Counter("core.zombies-fenced").Inc()
	sup.g.incidentNow("fence", c.s.name)
}

// pickTarget picks the restore target through the grid's shared
// placement path: candidates come from the supervisor's registry view,
// filtered for the session's base image and for bidirectional
// reachability from the stable node (checkpoint staging and its acks)
// and the front end (restore dispatch and its result) — a partitioned
// host still advertises a stale future, and a half-dead node with a
// muted transmit side would swallow the replies and hang the failover.
// cfg.Placer then ranks what survives; nil keeps registry order.
func (sup *Supervisor) pickTarget(s *Session) *Node {
	futures := sup.view().FindFutures(gis.FutureQuery{
		MinMemBytes: s.cfg.MemBytes,
		Site:        s.cfg.Site,
	})
	cands := sup.g.futureCandidates(futures, s.cfg.Image, "",
		sup.cfg.StableNode, s.cfg.FrontEnd)
	name, ok := placeWith(sup.cfg.Placer, placement.Request{
		Session:     s.name,
		User:        s.cfg.User,
		Image:       s.cfg.Image,
		Site:        s.cfg.Site,
		MinMemBytes: s.cfg.MemBytes,
	}, cands)
	if !ok {
		return nil
	}
	return sup.g.nodes[name]
}

// dispatchRestore submits the restore job through GRAM from the
// session's front end and, on success, resubmits the remaining work.
// release frees the slot reserved on target if the restore fails.
func (sup *Supervisor) dispatchRestore(c *charge, target *Node, release func()) {
	s := c.s
	abort := func(err error) {
		release()
		s.state = StateCrashed
		c.failSpan.EndErr(err)
		sup.g.k.After(sup.cfg.LeaseTTL, func() { c.recovering = false })
	}
	front := sup.g.nodes[s.cfg.FrontEnd]
	if front == nil || front.crashed {
		abort(fmt.Errorf("%w: front end %q", ErrUnknownNode, s.cfg.FrontEnd))
		return
	}
	client, err := gram.NewClient(sup.g.net, sup.g.registry, front.name, front.host)
	if err != nil {
		abort(err)
		return
	}
	ep := c.epoch
	job := gram.Job{
		Name: "restore-vm:" + s.name,
		User: s.cfg.User,
		Ctx:  c.failSpan.Context(),
		// The fencing token rides the job: if a newer failover bumped the
		// epoch while this dispatch sat in retry backoff, the gatekeeper
		// rejects the stale restore instead of resurrecting a zombie.
		Fence: func() error {
			if c.epoch != ep {
				return ErrFencedEpoch
			}
			return nil
		},
		RunCtx: func(ctx obs.SpanContext, jobDone func(error)) {
			rsp := sup.g.tracer.BeginChild(ctx, s.name, "supervisor", "restore")
			s.restoreFrom(target, c.ckptPages, rsp.Context(), func(err error) {
				rsp.EndErr(err)
				jobDone(err)
			})
		},
	}
	policy := retry.Policy{MaxAttempts: 4, Backoff: 500 * sim.Millisecond, MaxBackoff: 4 * sim.Second}
	if err := client.SubmitRetry(target.name, job, policy, func(err error) {
		if err != nil {
			abort(err)
			return
		}
		s.slotRelease = release
		sup.resume(c)
	}); err != nil {
		abort(err)
	}
}

// resume restarts the unfinished work of a freshly restored charge from
// its checkpointed progress and re-arms the lease and ticks.
func (sup *Supervisor) resume(c *charge) {
	s := c.s
	now := sup.g.k.Now()
	sup.stats.Recoveries++
	sup.stats.RepairSec += now.Sub(s.crashedAt).Seconds()
	sup.g.tracer.Metrics().Counter("core.recoveries").Inc()
	c.failSpan.End()
	for _, t := range c.tasks {
		if t.finished {
			continue
		}
		t.baseSec = t.ckptSec
		rem := t.w
		rem.CPUSeconds = t.w.CPUSeconds - t.baseSec
		if rem.CPUSeconds < 1e-3 {
			rem.CPUSeconds = 1e-3
		}
		frac := rem.CPUSeconds / t.w.CPUSeconds
		rem.Reads = int(float64(t.w.Reads) * frac)
		rem.ReadBytes = int64(float64(t.w.ReadBytes) * frac)
		rem.Writes = int(float64(t.w.Writes) * frac)
		rem.WriteBytes = int64(float64(t.w.WriteBytes) * frac)
		rem.RootOps = int(float64(t.w.RootOps) * frac)
		rem.RootBytes = int64(float64(t.w.RootBytes) * frac)
		t.remaining = rem
		t.task = nil
		epoch := c.epoch
		task, err := s.RunTask(rem, func(res guest.TaskResult) { sup.taskDone(c, t, epoch, res) })
		if err != nil {
			// The restore raced another failure; fail the task rather
			// than lose it silently.
			t.finished = true
			if t.done != nil {
				t.done(guest.TaskResult{
					Workload: t.w, Start: t.start, End: now,
					UserSeconds: t.baseSec,
					Err:         fmt.Errorf("%w: resubmit: %v", ErrLeaseExpired, err),
				})
			}
			continue
		}
		t.task = task
	}
	c.recovering = false
	c.lossAccounted = false
	_ = sup.renewLease(c)
}

// taskDone merges an incarnation's result into the original request's
// frame of reference and delivers it. epoch is the fencing token
// captured when the task was submitted: a result arriving from a
// superseded incarnation — the double-completion hazard of partition
// failover — is rejected, and the zombie that sent it is cleaned up.
func (sup *Supervisor) taskDone(c *charge, t *supTask, epoch int64, res guest.TaskResult) {
	if epoch != c.epoch && !c.carried[epoch] {
		sup.stats.FencedResults++
		sup.g.tracer.Metrics().Counter("core.fenced-results").Inc()
		sup.fenceZombie(c, epoch)
		return
	}
	if t.finished {
		return
	}
	t.finished = true
	res.Workload = t.w
	res.Start = t.start
	res.UserSeconds += t.baseSec
	if t.done != nil {
		t.done(res)
	}
}

// giveUp abandons recovery: every unfinished task fails with
// ErrLeaseExpired and the session shuts down.
func (sup *Supervisor) giveUp(c *charge) {
	s := c.s
	now := sup.g.k.Now()
	sup.stats.GivenUp++
	for _, t := range c.tasks {
		if t.finished {
			continue
		}
		t.finished = true
		if t.done != nil {
			t.done(guest.TaskResult{
				Workload: t.w, Start: t.start, End: now,
				UserSeconds: t.ckptSec,
				Err:         fmt.Errorf("%w: %s", ErrLeaseExpired, s.name),
			})
		}
	}
	sup.Release(s)
	s.Shutdown()
}
