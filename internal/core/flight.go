package core

// Flight-recorder glue: the grid owns at most one obs.FlightRecorder,
// fed by the grid tracer. Incident triggers live at the core layer —
// supervisor recoveries, zombie fencing, SLO alerts — so the helpers
// here are what the rest of the package calls; every one is a cheap
// no-op when no recorder is enabled.

import "vmgrid/internal/obs"

// EnableFlightRecorder turns on the always-on black box: a bounded
// ring of recently completed spans plus incident bundles frozen from
// it on triggers (recovery entry, fencing, SLO alerts). Call it right
// after NewGrid, like SetTracer. If no tracer is set yet, a
// flight-only tracer is installed — spans flow through the ring with
// bounded memory but are not retained for full-trace export; enable a
// retaining tracer first (SetTracer) when both are wanted.
func (g *Grid) EnableFlightRecorder(cfg obs.FlightConfig) *obs.FlightRecorder {
	if g.recorder != nil {
		return g.recorder
	}
	g.recorder = obs.NewFlightRecorder(g.k, cfg)
	if g.tracer == nil {
		g.SetTracer(obs.NewFlightOnly(g.k))
	} else {
		g.tracer.SetFlightRecorder(g.recorder)
	}
	return g.recorder
}

// Recorder returns the grid's flight recorder (nil when disabled; the
// nil value is safe to use).
func (g *Grid) Recorder() *obs.FlightRecorder { return g.recorder }

// incidentNow freezes an immediately-sealed incident bundle.
func (g *Grid) incidentNow(trigger, subject string) { g.recorder.FreezeNow(trigger, subject) }

// incidentOpen starts an incident rooted at a live span; the bundle
// captures the root's trace as it unfolds and seals — postmortem
// included — when the root span ends.
func (g *Grid) incidentOpen(trigger, subject string, root obs.SpanContext) {
	g.recorder.Open(trigger, subject, root)
}
