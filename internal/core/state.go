package core

import "fmt"

// State is a session's position in the Figure 3 life cycle. It replaces
// the stringly-typed state the API started with; the wire protocol
// still speaks the lower-case names via String.
type State int

// Session states.
const (
	// StatePending: submitted, working through steps 1-5.
	StatePending State = iota + 1
	// StateRunning: ready; the guest executes workloads.
	StateRunning
	// StateHibernated: suspended to a memory image on the node's store.
	StateHibernated
	// StateCrashed: the hosting node failed; un-checkpointed guest state
	// is gone. A supervisor may still recover the session.
	StateCrashed
	// StateRecovering: a supervisor is restoring the session from its
	// last checkpoint.
	StateRecovering
	// StateDead: shut down (or failed during setup); terminal.
	StateDead
)

// String returns the wire name of the state.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateHibernated:
		return "hibernated"
	case StateCrashed:
		return "crashed"
	case StateRecovering:
		return "recovering"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ParseState maps a wire name back to a State.
func ParseState(name string) (State, error) {
	for s := StatePending; s <= StateDead; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown session state %q", name)
}

// Alive reports whether the session still holds resources somewhere
// (anything but dead).
func (s State) Alive() bool { return s != StateDead && s != 0 }

// CanRun reports whether workloads may be submitted.
func (s State) CanRun() bool { return s == StateRunning }

// CanMigrate reports whether Migrate is valid: the complete-state
// encapsulation argument of §2 — a session moves whenever its full
// state (memory image + COW diff) is materializable, running or
// hibernated.
func (s State) CanMigrate() bool { return s == StateRunning || s == StateHibernated }

// CanHibernate reports whether Hibernate is valid.
func (s State) CanHibernate() bool { return s == StateRunning }

// CanWake reports whether Wake is valid.
func (s State) CanWake() bool { return s == StateHibernated }

// Failed reports whether the hosting node failed (crashed or mid-
// recovery).
func (s State) Failed() bool { return s == StateCrashed || s == StateRecovering }
