package core

import (
	"errors"
	"fmt"
	"sort"

	"vmgrid/internal/guest"
)

// FrontEnd is the paper's Figure 3 service provider S: it owns a pool
// of virtual back-end sessions and multiplexes many grid users onto
// them, PUNCH-style. Users never hold accounts on the physical machines
// — the front end maps each job to a pooled VM and meters usage per
// grid identity (the logical user account model taken one step
// further: one logical user per job, many logical users per VM).
type FrontEnd struct {
	grid *Grid
	name string
	pool []*Session

	queue   []*pendingJob
	byUser  map[string]*userAccount
	nextJob int
}

type pendingJob struct {
	id       int
	user     string
	workload guest.Workload
	done     func(guest.TaskResult)
}

type userAccount struct {
	jobs        int
	userSeconds float64
}

// ErrNoBackends is returned when the pool has no running sessions.
var ErrNoBackends = errors.New("core: front end has no running back-ends")

// NewFrontEnd creates a provider front end named for diagnostics.
func NewFrontEnd(g *Grid, name string) *FrontEnd {
	return &FrontEnd{grid: g, name: name, byUser: make(map[string]*userAccount)}
}

// CreateBackend grows the pool by one: it creates a session through
// the grid's placement path (any CreateOption — placer, node hint,
// priority — applies) and, once running, adds it as a back-end. done
// fires after the session has joined the pool (or with the creation
// error).
func (f *FrontEnd) CreateBackend(cfg SessionConfig, done func(*Session, error), opts ...CreateOption) error {
	_, err := f.grid.CreateSession(cfg, func(s *Session, err error) {
		if err == nil {
			err = f.AddBackend(s)
		}
		if done != nil {
			done(s, err)
		}
	}, opts...)
	return err
}

// AddBackend places a running session into the pool.
func (f *FrontEnd) AddBackend(s *Session) error {
	if !s.State().CanRun() {
		return fmt.Errorf("%w: session %s is %s", ErrBadSession, s.Name(), s.State())
	}
	f.pool = append(f.pool, s)
	f.drain()
	return nil
}

// RemoveBackend takes a session out of the pool (it keeps running; the
// provider may shut it down separately).
func (f *FrontEnd) RemoveBackend(name string) {
	for i, s := range f.pool {
		if s.Name() == name {
			f.pool = append(f.pool[:i], f.pool[i+1:]...)
			return
		}
	}
}

// Backends returns the pool size.
func (f *FrontEnd) Backends() int { return len(f.pool) }

// Queued returns the number of jobs waiting for capacity.
func (f *FrontEnd) Queued() int { return len(f.queue) }

// Submit routes a user's job to the least-loaded running back-end, or
// queues it when all back-ends are saturated. done receives the result.
func (f *FrontEnd) Submit(user string, w guest.Workload, done func(guest.TaskResult)) error {
	if err := w.Validate(); err != nil {
		return err
	}
	if user == "" {
		return errors.New("core: job without a user")
	}
	if len(f.pool) == 0 {
		return ErrNoBackends
	}
	f.nextJob++
	job := &pendingJob{id: f.nextJob, user: user, workload: w, done: done}
	f.queue = append(f.queue, job)
	f.drain()
	return nil
}

// maxTasksPerBackend bounds multiprogramming inside one pooled VM.
const maxTasksPerBackend = 2

// drain dispatches queued jobs onto back-ends with capacity.
func (f *FrontEnd) drain() {
	for len(f.queue) > 0 {
		target := f.pickBackend()
		if target == nil {
			return
		}
		job := f.queue[0]
		f.queue = f.queue[1:]
		f.dispatch(target, job)
	}
}

func (f *FrontEnd) pickBackend() *Session {
	var candidates []*Session
	for _, s := range f.pool {
		if s.State().CanRun() && s.VM().Guest().Tasks() < maxTasksPerBackend {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		ti, tj := candidates[i].VM().Guest().Tasks(), candidates[j].VM().Guest().Tasks()
		if ti != tj {
			return ti < tj
		}
		return candidates[i].Name() < candidates[j].Name()
	})
	return candidates[0]
}

func (f *FrontEnd) dispatch(target *Session, job *pendingJob) {
	acct := f.byUser[job.user]
	if acct == nil {
		acct = &userAccount{}
		f.byUser[job.user] = acct
	}
	acct.jobs++
	if err := target.Run(job.workload, func(res guest.TaskResult) {
		acct.userSeconds += res.UserSeconds
		if job.done != nil {
			job.done(res)
		}
		f.drain()
	}); err != nil {
		// The back-end refused (e.g. it died between pick and run):
		// push the job back and try another.
		acct.jobs--
		f.queue = append([]*pendingJob{job}, f.queue...)
		f.RemoveBackend(target.Name())
		f.drain()
	}
}

// UserReport returns per-user accounting: jobs submitted and guest work
// consumed, sorted by user.
func (f *FrontEnd) UserReport() []UserUsage {
	out := make([]UserUsage, 0, len(f.byUser))
	for user, acct := range f.byUser {
		out = append(out, UserUsage{User: user, Jobs: acct.jobs, UserSeconds: acct.userSeconds})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// UserUsage is one user's consumption through a front end.
type UserUsage struct {
	User        string
	Jobs        int
	UserSeconds float64
}
