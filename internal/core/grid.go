// Package core is the paper's contribution: grid computing middleware
// whose unit of scheduling is a classic virtual machine rather than an
// operating-system user. It ties the substrates together — VMM and
// guest models, image storage, the grid virtual file system, virtual
// networking, the information service, and GRAM-style dispatch — into
// the session life cycle of the paper's Figure 3:
//
//  1. query the information service for a VM future,
//  2. query for an image server holding a suitable image,
//  3. establish the image data session (on-demand VFS or explicit staging),
//  4. instantiate the VM through globusrun (cold boot or warm restore),
//  5. assign a network identity (site DHCP or tunnel) and attach the
//     user's data session,
//  6. run the application; later shutdown, hibernate, or migrate.
package core

import (
	"fmt"
	"sort"

	"vmgrid/internal/chunk"
	"vmgrid/internal/gis"
	"vmgrid/internal/gram"
	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/netsim"
	"vmgrid/internal/obs"
	"vmgrid/internal/placement"
	"vmgrid/internal/retry"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/telemetry"
	"vmgrid/internal/vfs"
	"vmgrid/internal/vnet"
)

// Grid is one virtual-machine grid: the shared simulation kernel, the
// network joining the sites, the information service, and the attached
// nodes.
type Grid struct {
	k        *sim.Kernel
	seed     uint64
	net      *netsim.Network
	info     *gis.Service
	registry *gram.Registry
	nodes    map[string]*Node
	sessions int
	live     map[string]*Session
	vfsRetry retry.Policy
	tracer   *obs.Tracer
	recorder *obs.FlightRecorder

	telemetry     *telemetry.Collector
	monitor       *Monitor
	supervisors   []*Supervisor
	defaultPlacer placement.Placer
	chunks        *chunk.Plane
}

// NewGrid creates an empty grid fabric seeded deterministically.
func NewGrid(seed uint64) *Grid {
	k := sim.NewKernel(seed)
	return &Grid{
		k:        k,
		seed:     seed,
		net:      netsim.New(k),
		info:     gis.New(k),
		registry: gram.NewRegistry(),
		nodes:    make(map[string]*Node),
		live:     make(map[string]*Session),
	}
}

// SetVFSRetry applies a retry policy to every VFS client the grid builds
// from now on (data mounts and on-demand image mounts), threading
// fault tolerance through the file system layer.
func (g *Grid) SetVFSRetry(p retry.Policy) { g.vfsRetry = p }

// Kernel returns the simulation kernel.
func (g *Grid) Kernel() *sim.Kernel { return g.k }

// Net returns the network, for wiring topologies.
func (g *Grid) Net() *netsim.Network { return g.net }

// Info returns the information service.
func (g *Grid) Info() *gis.Service { return g.info }

// EnableGISReplication replicates the information service across the
// named nodes (which must already be attached and connected): the
// existing registry becomes replica 0, pinned to nodes[0], and writes
// from then on require a quorum judged from the originating node.
// Anti-entropy gossip starts immediately at the given cadence (≤ 0 =
// gis.DefaultGossipInterval). Call after the topology is built and
// before injecting faults. With one node this degenerates to the
// unreplicated behavior every existing experiment is calibrated
// against.
func (g *Grid) EnableGISReplication(nodes []string, gossipEvery sim.Duration) (*gis.Cluster, error) {
	c, err := gis.NewCluster(g.net, g.info, nodes, gossipEvery)
	if err != nil {
		return nil, err
	}
	c.Start()
	return c, nil
}

// EnableChunkedStaging attaches a content-addressed chunk plane to
// every node store (present and future): staging paths — session
// creation, checkpoint staging, failover restores, fenced migrations,
// tape traffic — then move only the chunks the destination does not
// already hold, and supervised checkpoints overlap their copy window
// with guest compute. Existing files get manifests in sorted node and
// file order, so enabling the plane is deterministic. Call once, after
// the topology exists or before it is built; without it every transfer
// path behaves exactly as before chunking existed.
func (g *Grid) EnableChunkedStaging(cfg chunk.Config) *chunk.Plane {
	p := chunk.NewPlane(cfg)
	g.chunks = p
	names := make([]string, 0, len(g.nodes))
	for name := range g.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g.nodes[name].store.SetChunkPlane(p)
	}
	return p
}

// ChunkPlane returns the grid's chunk plane, or nil when chunked
// staging is not enabled.
func (g *Grid) ChunkPlane() *chunk.Plane { return g.chunks }

// epochGuardAt builds the fencing check a data-plane server at
// serverNode applies to a session incarnation's operations: reject with
// gis.ErrFencedEpoch once the session's epoch, as visible to that
// server, has moved past the incarnation's token. Unreplicated grids
// consult the single registry; replicated ones consult the first
// replica reachable from the server (a server that can see no replica
// cannot validate tokens and admits the op — fencing is only as strong
// as the information the server can reach).
func (g *Grid) epochGuardAt(serverNode, session string, token int64) func() error {
	if c := g.info.Cluster(); c != nil {
		return c.GuardAt(serverNode, session, token)
	}
	return g.info.EpochGuard(session, token)
}

// Node returns the named node, or nil.
func (g *Grid) Node(name string) *Node { return g.nodes[name] }

// Role flags what services a node runs.
type Role int

// Node roles; a node may combine them.
const (
	// RoleCompute accepts VM instantiation (runs a gatekeeper).
	RoleCompute Role = 1 << iota
	// RoleImageServer archives VM images and exports them via the VFS.
	RoleImageServer
	// RoleDataServer stores user data and exports it via the VFS.
	RoleDataServer
	// RoleFrontEnd submits sessions on behalf of users.
	RoleFrontEnd
)

// advertiseRetry is how long a node waits before re-sending a
// VM-future advertise that failed to reach a registry quorum.
const advertiseRetry = 5 * sim.Second

// Node is one machine attached to the grid.
type Node struct {
	grid *Grid
	name string
	site string
	role Role

	host  *hostos.Host
	store *storage.Store
	vfsrv *vfs.Server
	gk    *gram.Gatekeeper
	dhcp  *vnet.DHCP

	images map[string]storage.ImageInfo
	slots  int

	// capacity is the configured slot count, restored on reboot.
	capacity int
	crashed  bool
	// bootEpoch counts reboots. Slot releases captured before a crash
	// compare it: RebootNode resets slots to capacity wholesale, so a
	// pre-crash reservation released afterwards would overcount.
	bootEpoch int
	// DHCP pool parameters, kept to rebuild the pool after a reboot
	// (crash loses all leases).
	dhcpPrefix string
	dhcpSize   int
	// adRetry marks a failed VM-future advertise awaiting retry. Slot
	// changes are the only other trigger, so without the retry a write
	// lost to a partition would leave the record stale forever.
	adRetry bool
}

// NodeConfig describes a node to attach.
type NodeConfig struct {
	Name string
	Site string
	Role Role
	Spec hw.MachineSpec
	// Slots is how many concurrent VMs a compute node offers.
	Slots int
	// DHCPPrefix, when set, gives the node a pool of addresses for VM
	// instances ("10.1.0."); compute nodes without one force tunneling.
	DHCPPrefix string
	// DHCPSize is the pool size (default 64).
	DHCPSize int
}

// AddNode attaches a machine to the grid. The caller connects it to the
// network afterwards via Grid.Net (links are topology, not node,
// configuration).
func (g *Grid) AddNode(cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: node without a name")
	}
	if _, dup := g.nodes[cfg.Name]; dup {
		return nil, fmt.Errorf("core: duplicate node %q", cfg.Name)
	}
	if cfg.Spec.Name == "" {
		cfg.Spec = hw.ReferenceMachine(cfg.Name)
	}
	host, err := hostos.New(g.k, cfg.Spec)
	if err != nil {
		return nil, fmt.Errorf("core: node %q: %w", cfg.Name, err)
	}
	n := &Node{
		grid:   g,
		name:   cfg.Name,
		site:   cfg.Site,
		role:   cfg.Role,
		host:   host,
		store:  storage.NewStore(host),
		images: make(map[string]storage.ImageInfo),
		slots:  cfg.Slots,
	}
	if g.chunks != nil {
		n.store.SetChunkPlane(g.chunks)
	}
	n.vfsrv = vfs.NewServer(n.store)
	g.net.AddNode(cfg.Name)
	if cfg.Role&RoleCompute != 0 {
		n.gk = gram.NewGatekeeper(host)
		n.gk.SetTracer(g.tracer)
		g.registry.Add(cfg.Name, n.gk)
		if n.slots <= 0 {
			n.slots = 1
		}
	}
	n.capacity = n.slots
	if cfg.DHCPPrefix != "" {
		size := cfg.DHCPSize
		if size <= 0 {
			size = 64
		}
		n.dhcpPrefix, n.dhcpSize = cfg.DHCPPrefix, size
		n.dhcp = vnet.NewDHCP(cfg.DHCPPrefix, size)
	}
	if err := g.info.Register(gis.KindHost, cfg.Name, map[string]any{
		gis.AttrSite:  cfg.Site,
		gis.AttrSpeed: cfg.Spec.CPU.Speed,
	}, 0); err != nil {
		return nil, err
	}
	n.advertise()
	g.nodes[cfg.Name] = n
	return n, nil
}

// Name returns the node name (also its network address).
func (n *Node) Name() string { return n.name }

// Site returns the administrative domain.
func (n *Node) Site() string { return n.site }

// Host returns the node's host OS.
func (n *Node) Host() *hostos.Host { return n.host }

// Store returns the node's local file store.
func (n *Node) Store() *storage.Store { return n.store }

// VFSServer returns the node's virtual-file-system export.
func (n *Node) VFSServer() *vfs.Server { return n.vfsrv }

// Gatekeeper returns the node's job gatekeeper (nil unless RoleCompute).
func (n *Node) Gatekeeper() *gram.Gatekeeper { return n.gk }

// Slots returns the remaining VM capacity.
func (n *Node) Slots() int { return n.slots }

// Crashed reports whether the node is currently failed-stop.
func (n *Node) Crashed() bool { return n.crashed }

// advertise refreshes the node's VM-future record: what it is willing
// to instantiate right now. Crashed nodes advertise nothing.
func (n *Node) advertise() {
	if n.role&RoleCompute == 0 || n.crashed {
		return
	}
	spec := n.host.Spec()
	err := n.grid.info.RegisterFrom(n.name, gis.KindVMFuture, n.name, map[string]any{
		gis.AttrSite:      n.site,
		gis.AttrSlots:     int64(n.slots),
		gis.AttrSpeed:     spec.CPU.Speed,
		gis.AttrMemBytes:  spec.MemBytes / 2,
		gis.AttrDiskBytes: spec.Disk.CapacityBytes,
		gis.AttrLoad:      float64(n.host.Runnable()),
	}, 0)
	if err == nil || n.adRetry {
		return
	}
	// The origin cannot reach a registry quorum right now (partitioned,
	// or the registry side is down). The record is soft state: keep
	// retrying until the write lands, else the grid would keep routing
	// around this node after the fabric heals.
	n.adRetry = true
	n.grid.k.After(advertiseRetry, func() {
		n.adRetry = false
		n.advertise()
	})
}

// InstallImage archives a VM image on the node and advertises it. Any
// node can hold images, but typically image servers do.
func (n *Node) InstallImage(info storage.ImageInfo) error {
	if err := storage.InstallImage(n.store, info); err != nil {
		return fmt.Errorf("core: node %q: %w", n.name, err)
	}
	n.images[info.Name] = info
	return n.grid.info.Register(gis.KindImageServer, n.name+"/"+info.Name, map[string]any{
		gis.AttrImage:    info.Name,
		gis.AttrOS:       info.OS,
		gis.AttrSite:     n.site,
		gis.AttrWarm:     boolAttr(info.Warm()),
		gis.AttrMemBytes: info.MemBytes,
		"node":           n.name,
	}, 0)
}

// Image returns the metadata of an installed image.
func (n *Node) Image(name string) (storage.ImageInfo, bool) {
	info, ok := n.images[name]
	return info, ok
}

// CreateUserData provisions a user file on a data-server node.
func (n *Node) CreateUserData(file string, size int64) error {
	if err := n.store.Create(file, size); err != nil {
		return err
	}
	return n.grid.info.Register(gis.KindDataServer, n.name+"/"+file, map[string]any{
		gis.AttrSite: n.site,
		"node":       n.name,
		"file":       file,
	}, 0)
}

func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// CrashNode fail-stops a node: every attached link drops out of the
// topology, the VMs it hosts die with their in-memory guest state, its
// VM-future advertisement disappears, and its DHCP leases are lost. The
// node's disk store survives the crash (it is back after RebootNode),
// but sessions that were running there lose everything since their last
// checkpoint — recovering them is the Supervisor's job. Crashing an
// already-crashed node is a no-op.
func (g *Grid) CrashNode(name string) error {
	n := g.nodes[name]
	if n == nil {
		return fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	if n.crashed {
		return nil
	}
	n.crashed = true
	_ = g.net.SetNodeUp(name, false)
	g.info.Deregister(gis.KindVMFuture, name)
	for _, s := range g.sessionsOn(n) {
		s.crash()
	}
	return nil
}

// RebootNode brings a crashed node back: links restore, the full slot
// capacity is free again, and a fresh DHCP pool comes up. Sessions that
// died in the crash do not come back by themselves.
func (g *Grid) RebootNode(name string) error {
	n := g.nodes[name]
	if n == nil {
		return fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	if !n.crashed {
		return nil
	}
	n.crashed = false
	n.bootEpoch++
	_ = g.net.SetNodeUp(name, true)
	if n.dhcpPrefix != "" {
		n.dhcp = vnet.NewDHCP(n.dhcpPrefix, n.dhcpSize)
	}
	n.slots = n.capacity
	n.advertise()
	return nil
}

// reserveSlot takes a slot on n and returns a release closure that is
// safe to call after an intervening crash/reboot cycle: reboot restores
// full capacity, so a stale release must become a no-op instead of
// minting an extra slot.
func (n *Node) reserveSlot() (release func()) {
	n.slots--
	n.advertise()
	boot := n.bootEpoch
	released := false
	return func() {
		if released || n.crashed || n.bootEpoch != boot {
			released = true
			return
		}
		released = true
		n.slots++
		n.advertise()
	}
}

// sessionsOn returns the live sessions hosted by n in name order (the
// deterministic order fault handling iterates them in).
func (g *Grid) sessionsOn(n *Node) []*Session {
	var out []*Session
	for _, s := range g.live {
		if s.node == n {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// FindImage locates image servers holding the named image, closest
// (by unloaded network latency from the requesting node) first.
func (g *Grid) FindImage(image, from string) []gis.Entry {
	entries := g.info.Select(gis.KindImageServer, func(e gis.Entry) bool {
		return e.Str(gis.AttrImage) == image
	})
	// Order by latency from the requester; unreachable servers last.
	type scored struct {
		e   gis.Entry
		lat sim.Duration
		ok  bool
	}
	out := make([]scored, 0, len(entries))
	for _, e := range entries {
		lat, err := g.net.Latency(from, e.Str("node"), 1024)
		out = append(out, scored{e: e, lat: lat, ok: err == nil})
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			less := func(a, b scored) bool {
				if a.ok != b.ok {
					return a.ok
				}
				return a.lat < b.lat
			}
			if less(out[j], out[i]) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	result := make([]gis.Entry, len(out))
	for i, s := range out {
		result[i] = s.e
	}
	return result
}
