package core

import (
	"errors"
	"testing"

	"vmgrid/internal/gis"
	"vmgrid/internal/guest"
	"vmgrid/internal/sim"
)

// crashSession crashes the node hosting s and returns once the session
// is in the crashed state.
func crashSession(t *testing.T, g *Grid, s *Session) {
	t.Helper()
	if err := g.CrashNode(s.Node().Name()); err != nil {
		t.Fatal(err)
	}
	if s.State() != StateCrashed {
		t.Fatalf("state = %q after node crash", s.State())
	}
}

func TestCrashedSessionOperationsFail(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	target := "compute2"
	if s.Node().Name() == "compute2" {
		target = "compute1"
	}
	crashSession(t, g, s)

	if err := s.Run(guest.MicroTask(1), nil); !errors.Is(err, ErrBadSession) {
		t.Errorf("Run on crashed session = %v, want ErrBadSession", err)
	}
	if err := s.Hibernate(nil); !errors.Is(err, ErrBadSession) {
		t.Errorf("Hibernate on crashed session = %v, want ErrBadSession", err)
	}
	if err := s.Wake(nil); !errors.Is(err, ErrBadSession) {
		t.Errorf("Wake on crashed session = %v, want ErrBadSession", err)
	}
	if err := s.Migrate(target, nil); !errors.Is(err, ErrBadSession) {
		t.Errorf("Migrate on crashed session = %v, want ErrBadSession", err)
	}
	// The crashed VM is deregistered and its host's slot is not leaked
	// back into the pool before reboot.
	if _, err := g.Info().Lookup("vm", s.Name()); err == nil {
		t.Error("crashed VM still registered")
	}
	// Shutdown of a crashed session is safe (the give-up path uses it).
	s.Shutdown()
	if s.State() != StateDead {
		t.Errorf("state = %q after shutdown", s.State())
	}
	s.Shutdown() // idempotent
}

func TestRecoveringSessionOperationsFail(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	sup := superviseSession(t, g, s, SupervisorConfig{CheckpointInterval: 30 * sim.Second})
	if err := sup.Run(s, guest.MicroTask(600), nil); err != nil {
		t.Fatal(err)
	}
	target := "compute2"
	if s.Node().Name() == "compute2" {
		target = "compute1"
	}
	g.Kernel().After(60*sim.Second, func() { _ = g.CrashNode(s.Node().Name()) })

	// Step in fine quanta until the supervisor enters the failover
	// window, then poke the session mid-recovery.
	deadline := g.Kernel().Now().Add(10 * sim.Minute)
	for s.State() != StateRecovering && g.Kernel().Now() < deadline {
		_ = g.Kernel().RunUntil(g.Kernel().Now().Add(100 * sim.Millisecond))
	}
	if s.State() != StateRecovering {
		t.Fatalf("never observed recovering state (state %q)", s.State())
	}
	if err := s.Run(guest.MicroTask(1), nil); !errors.Is(err, ErrBadSession) {
		t.Errorf("Run while recovering = %v, want ErrBadSession", err)
	}
	if err := s.Hibernate(nil); !errors.Is(err, ErrBadSession) {
		t.Errorf("Hibernate while recovering = %v, want ErrBadSession", err)
	}
	if err := s.Wake(nil); !errors.Is(err, ErrBadSession) {
		t.Errorf("Wake while recovering = %v, want ErrBadSession", err)
	}
	if err := s.Migrate(target, nil); !errors.Is(err, ErrBadSession) {
		t.Errorf("Migrate while recovering = %v, want ErrBadSession", err)
	}

	// Recovery still completes despite the poking.
	stepUntil(g, sim.Hour, func() bool { return s.State() == StateRunning })
	if s.State() != StateRunning {
		t.Fatalf("session never recovered; state %q", s.State())
	}
	sup.Stop()
}

func TestRebootRestoresCapacity(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	node := s.Node()
	name := node.Name()
	if err := g.CrashNode(name); err != nil {
		t.Fatal(err)
	}
	if !node.Crashed() {
		t.Fatal("node not marked crashed")
	}
	// Crashed nodes advertise no futures.
	for _, e := range g.Info().FindFutures(gis.FutureQuery{}) {
		if e.Name == name {
			t.Errorf("crashed node %s still advertises a future", name)
		}
	}
	if err := g.RebootNode(name); err != nil {
		t.Fatal(err)
	}
	if node.Crashed() {
		t.Error("node still crashed after reboot")
	}
	if node.Slots() != 2 {
		t.Errorf("slots = %d after reboot, want full capacity 2", node.Slots())
	}
	// Crash/reboot of unknown nodes fail; double crash/reboot are no-ops.
	if err := g.CrashNode("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("crash unknown node = %v", err)
	}
	if err := g.RebootNode("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("reboot unknown node = %v", err)
	}
	if err := g.RebootNode(name); err != nil {
		t.Errorf("reboot healthy node = %v, want nil no-op", err)
	}
}
