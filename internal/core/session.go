package core

import (
	"errors"
	"fmt"

	"vmgrid/internal/gis"
	"vmgrid/internal/gram"
	"vmgrid/internal/guest"
	"vmgrid/internal/obs"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/vfs"
	"vmgrid/internal/vmm"
	"vmgrid/internal/vnet"
)

// DiskPolicy selects how the session's virtual disk relates to the base
// image — Table 2's persistent / non-persistent axis.
type DiskPolicy int

// Disk policies.
const (
	// NonPersistent layers a discardable copy-on-write diff over the
	// (possibly shared, possibly remote) base image.
	NonPersistent DiskPolicy = iota + 1
	// Persistent creates an explicit private copy of the disk before
	// the VM starts.
	Persistent
)

// String names the policy as in the paper.
func (p DiskPolicy) String() string {
	switch p {
	case NonPersistent:
		return "non-persistent"
	case Persistent:
		return "persistent"
	default:
		return fmt.Sprintf("DiskPolicy(%d)", int(p))
	}
}

// ImageAccess selects how VM state reaches the compute node — Table 2's
// DiskFS / LoopbackNFS axis plus the wide-area options of §3.1.
type ImageAccess int

// Image access modes.
const (
	// AccessLocal reads state from the compute node's own file system
	// (Table 2 "DiskFS"). The image must be installed on the node.
	AccessLocal ImageAccess = iota + 1
	// AccessLoopback reads state through a loopback-mounted NFS
	// partition of the host (Table 2 "LoopbackNFS").
	AccessLoopback
	// AccessOnDemand mounts the image server's files through the grid
	// virtual file system; blocks move on demand (§3.1).
	AccessOnDemand
	// AccessStaged transfers whole state files from the image server
	// before starting (GASS/GridFTP-style staging).
	AccessStaged
)

// String names the mode.
func (a ImageAccess) String() string {
	switch a {
	case AccessLocal:
		return "DiskFS"
	case AccessLoopback:
		return "LoopbackNFS"
	case AccessOnDemand:
		return "on-demand"
	case AccessStaged:
		return "staged"
	default:
		return fmt.Sprintf("ImageAccess(%d)", int(a))
	}
}

// infoQueryLatency models one information-service query round trip
// (an MDS search on period hardware).
const infoQueryLatency = 120 * sim.Millisecond

// SessionConfig describes a requested VM session.
type SessionConfig struct {
	// User is the grid identity.
	User string
	// FrontEnd names the node submitting on the user's behalf.
	FrontEnd string
	// Image names the VM image to instantiate.
	Image string
	// MemBytes is the guest memory (defaults to the image's snapshot
	// size or 128 MB).
	MemBytes int64
	// Mode is cold boot (VM-reboot) or warm restore (VM-restore).
	Mode vmm.StartMode
	// Disk is the persistence policy.
	Disk DiskPolicy
	// Access is how state reaches the compute node.
	Access ImageAccess
	// Site restricts the compute-node search ("" = any).
	Site string
	// DataNode/DataFile, when set, attach the user's data session
	// (mounted as "data" in the guest) from that data server.
	DataNode string
	DataFile string
	// HomeNode, when set, is where traffic tunnels if the compute site
	// offers no addresses.
	HomeNode string
	// DirtyBps, when positive, bounds the guest's modeled memory
	// dirtying rate: after the first full suspend, later suspends write
	// only the bytes dirtied since the image was last in sync. Most
	// useful with the grid's chunk plane (EnableChunkedStaging), where
	// it turns periodic checkpoints into delta transfers. 0 keeps
	// full-image suspends.
	DirtyBps int64
}

func (c SessionConfig) validate() error {
	if c.User == "" || c.FrontEnd == "" || c.Image == "" {
		return errors.New("core: session needs User, FrontEnd, and Image")
	}
	if c.Mode != vmm.ColdBoot && c.Mode != vmm.WarmRestore {
		return fmt.Errorf("core: bad start mode %v", c.Mode)
	}
	if c.Disk != NonPersistent && c.Disk != Persistent {
		return fmt.Errorf("core: bad disk policy %v", c.Disk)
	}
	switch c.Access {
	case AccessLocal, AccessLoopback, AccessOnDemand, AccessStaged:
	default:
		return fmt.Errorf("core: bad image access %v", c.Access)
	}
	if (c.DataNode == "") != (c.DataFile == "") {
		return errors.New("core: DataNode and DataFile go together")
	}
	return nil
}

// Errors callers match with errors.Is.
var (
	ErrNoFuture    = errors.New("core: no VM future satisfies the query")
	ErrNoImage     = errors.New("core: image not found")
	ErrNoAddress   = errors.New("core: no address source (site DHCP or HomeNode)")
	ErrBadSession  = errors.New("core: operation invalid in session state")
	ErrUnknownNode = errors.New("core: unknown node")
	// ErrLeaseExpired marks a session whose heartbeat lease lapsed — the
	// hosting node failed — and which could not (or can no longer) be
	// recovered by its supervisor.
	ErrLeaseExpired = errors.New("core: session lease expired")
	// ErrNoQuorum re-exports the replicated registry's fail-closed write
	// rejection: the originating node sits on the minority side of a
	// partition.
	ErrNoQuorum = gis.ErrNoQuorum
	// ErrFencedEpoch re-exports the fencing rejection: the operation
	// carried an epoch token older than the session's current epoch, so
	// its issuer is a pre-failover zombie.
	ErrFencedEpoch = gis.ErrFencedEpoch
)

// Event is one timestamped step of the session life cycle.
type Event struct {
	Step string
	At   sim.Time
}

// Session is one VM grid session.
type Session struct {
	grid *Grid
	cfg  SessionConfig
	id   int
	name string

	node        *Node
	imageServer string
	info        storage.ImageInfo
	vm          *vmm.VM
	cow         *storage.CowDisk
	mem         *memBackend
	addr        string
	tunnel      *vnet.Tunnel
	localUser   string
	dataClient  *vfs.Client
	imageClient *vfs.Client
	events      []Event
	state       State
	phaseStart  sim.Time
	crashedAt   sim.Time

	// slotRelease returns the current incarnation's compute slot; it is
	// crash/reboot-safe (see Node.reserveSlot) and nil once released.
	slotRelease func()
	// priority is the balancer's eviction order (WithPriority): lower
	// migrates first.
	priority int
	// migrating marks a live migration in flight; checkpoints and
	// further migrations wait it out.
	migrating bool
	// gen counts incarnations: failover restores and migrations bump it,
	// which invalidates the previous incarnation's data-plane fences.
	gen int
	// epoch is the fencing epoch this incarnation runs under, assigned
	// by the supervisor through quorum writes (0 = never failed over or
	// unsupervised).
	epoch int64

	// root is the session's causal root span (submitted→ready); sctx is
	// its context, the parent every later span of the session's life —
	// phases, GRAM submits, VFS ops, VMM work, supervisor machinery —
	// descends from. Both are zero when tracing is off.
	root obs.Span
	sctx obs.SpanContext
}

// TraceContext returns the session's position in its causal tree (the
// root every span of its life cycle descends from). Invalid when
// tracing is off.
func (s *Session) TraceContext() obs.SpanContext { return s.sctx }

// Epoch returns the session's current fencing epoch.
func (s *Session) Epoch() int64 { return s.epoch }

// Priority returns the session's eviction priority (WithPriority).
func (s *Session) Priority() int { return s.priority }

// Name returns the session's unique name.
func (s *Session) Name() string { return s.name }

// Node returns the compute node hosting the VM.
func (s *Session) Node() *Node { return s.node }

// VM returns the underlying virtual machine.
func (s *Session) VM() *vmm.VM { return s.vm }

// Addr returns the VM's network address ("" when tunneled).
func (s *Session) Addr() string { return s.addr }

// Tunnel returns the Ethernet tunnel, when the site gave no address.
func (s *Session) Tunnel() *vnet.Tunnel { return s.tunnel }

// LocalUser returns the logical-account mapping: which local identity
// the grid user was multiplexed onto (the PUNCH logical user account
// model — grid middleware owns the physical accounts, users never do).
func (s *Session) LocalUser() string { return s.localUser }

// ImageServer returns the node the image was fetched from ("" for
// locally installed images).
func (s *Session) ImageServer() string { return s.imageServer }

// State returns the session's life-cycle state.
func (s *Session) State() State { return s.state }

// DataClient returns the session's user-data VFS client (nil before the
// data session is attached) — a read-only telemetry source.
func (s *Session) DataClient() *vfs.Client { return s.dataClient }

// ImageClient returns the session's on-demand image VFS client (nil for
// staged or locally installed images).
func (s *Session) ImageClient() *vfs.Client { return s.imageClient }

// Events returns the life-cycle timeline.
func (s *Session) Events() []Event {
	return append([]Event(nil), s.events...)
}

// EventAt returns the time of a step (-1 if it never happened).
func (s *Session) EventAt(step string) sim.Time {
	for _, e := range s.events {
		if e.Step == step {
			return e.At
		}
	}
	return -1
}

func (s *Session) mark(step string) {
	now := s.grid.k.Now()
	if tr := s.grid.tracer; tr != nil {
		if phase := startupPhases[step]; phase != "" {
			tr.SpanAtChild(s.sctx, s.name, "phase", phase, s.phaseStart, now)
		}
		tr.Instant(s.name, "lifecycle", step)
	}
	if step == "submitted" || startupPhases[step] != "" {
		s.phaseStart = now
	}
	s.events = append(s.events, Event{Step: step, At: now})
}

// Run executes a workload in the session's guest and delivers the
// result — step 6 of the life cycle.
func (s *Session) Run(w guest.Workload, done func(guest.TaskResult)) error {
	_, err := s.RunTask(w, done)
	return err
}

// RunTask is Run exposing the task handle, for callers that track
// mid-flight progress (the supervisor's checkpoint accounting).
func (s *Session) RunTask(w guest.Workload, done func(guest.TaskResult)) (*guest.Task, error) {
	if !s.state.CanRun() || s.vm == nil {
		return nil, fmt.Errorf("%w: run in %q", ErrBadSession, s.state)
	}
	return s.vm.Guest().Run(w, done)
}

// crash marks the session dead-in-place after its hosting node failed:
// the VM stops, the registry entry goes away, and every bit of guest
// state that was not checkpointed is gone. No cleanup runs on the
// crashed node — its store is unreachable until reboot.
func (s *Session) crash() {
	if s.state == StateDead || s.state == StateCrashed {
		return
	}
	if s.vm != nil {
		s.vm.PowerOff()
	}
	s.state = StateCrashed
	s.crashedAt = s.grid.k.Now()
	s.grid.tracer.Metrics().Counter("core.sessions.crashed").Inc()
	s.mark("crashed")
	s.grid.info.Deregister(gis.KindVM, s.name)
	s.addr = ""
	s.tunnel = nil
}

// Console returns an interactive handle description (a VNC display or
// login session in a real deployment).
func (s *Session) Console() string {
	return fmt.Sprintf("vnc://%s/%s", s.node.name, s.name)
}

// memBackend routes memory-image traffic: restores read from the warm
// image (or whatever the session last wrote), suspends write to a
// session-private file. Writing flips subsequent reads to the private
// copy, giving hibernate/restore the right redo semantics without ever
// touching the shared image.
type memBackend struct {
	restore storage.Backend
	local   storage.Backend
	dirty   bool
}

var _ storage.Backend = (*memBackend)(nil)

func (m *memBackend) Name() string { return "session-mem" }
func (m *memBackend) Size() int64 {
	if m.dirty {
		return m.local.Size()
	}
	return m.restore.Size()
}
func (m *memBackend) src() storage.Backend {
	if m.dirty {
		return m.local
	}
	return m.restore
}
func (m *memBackend) Read(off, size int64, done func()) { m.src().Read(off, size, done) }
func (m *memBackend) ReadSequential(off, size int64, done func()) {
	m.src().ReadSequential(off, size, done)
}
func (m *memBackend) Write(off, size int64, done func()) {
	m.dirty = true
	m.local.Write(off, size, done)
}

// CreateSession runs the Figure 3 life cycle and delivers the ready
// session (or the first error) to done. The returned session handle is
// also usable immediately for inspection of progress. Options
// customize placement and admission: WithPlacer / WithNodeHint steer
// step 1's node choice through the shared placement path, WithPriority
// orders balancer evictions, WithFence guards instantiation the way
// supervisors fence restores. With no options the session places on
// the information service's first-ranked future, exactly as before the
// placement subsystem existed.
func (g *Grid) CreateSession(cfg SessionConfig, done func(*Session, error), opts ...CreateOption) (*Session, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var o createOptions
	for _, opt := range opts {
		opt(&o)
	}
	front := g.nodes[cfg.FrontEnd]
	if front == nil {
		return nil, fmt.Errorf("%w: front end %q", ErrUnknownNode, cfg.FrontEnd)
	}
	if cfg.DataNode != "" && g.nodes[cfg.DataNode] == nil {
		return nil, fmt.Errorf("%w: data server %q", ErrUnknownNode, cfg.DataNode)
	}
	g.sessions++
	s := &Session{
		grid:     g,
		cfg:      cfg,
		id:       g.sessions,
		name:     fmt.Sprintf("sess-%d-%s", g.sessions, cfg.User),
		state:    StatePending,
		priority: o.priority,
	}
	g.tracer.Metrics().Counter("core.sessions.submitted").Inc()
	// The session's causal root: every span of its life cycle — phases,
	// the GRAM submit, VFS block moves, VMM work, later supervisor
	// recoveries — descends from this one trace.
	s.root = g.tracer.BeginTrace(s.name, "session", "lifecycle")
	s.sctx = s.root.Context()
	s.mark("submitted")

	fail := func(err error) {
		s.state = StateDead
		g.tracer.Metrics().Counter("core.sessions.failed").Inc()
		s.root.EndErr(err)
		if done != nil {
			done(s, err)
		}
	}

	// Step 1: query the information service for a VM future.
	g.k.After(infoQueryLatency, func() {
		futures := g.info.FindFutures(gis.FutureQuery{
			MinMemBytes: cfg.MemBytes,
			Site:        cfg.Site,
		})
		if len(futures) == 0 {
			fail(fmt.Errorf("%w: image %q site %q", ErrNoFuture, cfg.Image, cfg.Site))
			return
		}
		node, err := g.placeFor(cfg, o, futures)
		if err != nil {
			fail(err)
			return
		}
		s.node = node
		s.slotRelease = s.node.reserveSlot()
		s.mark("future-selected")

		// Step 2: locate the image.
		g.k.After(infoQueryLatency, func() {
			if err := s.resolveImage(); err != nil {
				s.releaseSlot()
				fail(err)
				return
			}
			s.mark("image-located")

			// Steps 3-4: the data session for the image and the VM
			// instantiation happen inside the globusrun envelope, as in
			// Table 2's measurement.
			client, err := gram.NewClient(g.net, g.registry, cfg.FrontEnd, front.host)
			if err != nil {
				s.releaseSlot()
				fail(err)
				return
			}
			client.SetTracer(g.tracer)
			job := gram.Job{
				Name:   "start-vm:" + s.name,
				User:   cfg.User,
				Fence:  o.fence,
				Ctx:    s.sctx,
				RunCtx: func(ctx obs.SpanContext, jobDone func(error)) { s.instantiate(ctx, jobDone) },
			}
			submitErr := client.Submit(s.node.name, job, func(err error) {
				if err != nil {
					s.releaseSlot()
					fail(fmt.Errorf("core: start %s: %w", s.name, err))
					return
				}
				s.mark("vm-running")
				// Step 5: network identity and user data session.
				if err := s.connect(); err != nil {
					s.Shutdown()
					fail(err)
					return
				}
				s.mark("ready")
				s.root.End()
				s.state = StateRunning
				g.tracer.Metrics().Counter("core.sessions.ready").Inc()
				g.live[s.name] = s
				_ = g.info.Register(gis.KindVM, s.name, map[string]any{
					gis.AttrHost: s.node.name,
					gis.AttrAddr: s.addr,
					"user":       cfg.User,
					"image":      cfg.Image,
				}, 0)
				if done != nil {
					done(s, nil)
				}
			})
			if submitErr != nil {
				s.releaseSlot()
				fail(submitErr)
			}
		})
	})
	return s, nil
}

func (s *Session) releaseSlot() {
	// The reservation closure is crash/reboot-safe: a node that crashed
	// and rebooted since the reservation had its slot accounting reset
	// wholesale, and the release becomes a no-op.
	if s.slotRelease != nil {
		s.slotRelease()
		s.slotRelease = nil
	}
}

// resolveImage decides where the image comes from and records its
// metadata.
func (s *Session) resolveImage() error {
	cfg := s.cfg
	if cfg.Access == AccessLocal || cfg.Access == AccessLoopback {
		info, ok := s.node.Image(cfg.Image)
		if !ok {
			return fmt.Errorf("%w: %q not installed on %s (access %v)",
				ErrNoImage, cfg.Image, s.node.name, cfg.Access)
		}
		s.info = info
		return nil
	}
	entries := s.grid.FindImage(cfg.Image, s.node.name)
	if len(entries) == 0 {
		return fmt.Errorf("%w: %q on any image server", ErrNoImage, cfg.Image)
	}
	server := entries[0].Str("node")
	info, ok := s.grid.nodes[server].Image(cfg.Image)
	if !ok {
		return fmt.Errorf("%w: %q advertised but missing on %s", ErrNoImage, cfg.Image, server)
	}
	s.imageServer = server
	s.info = info
	return nil
}

// instantiate performs steps 3-4 on the compute node: build the state
// backends per policy, then create and start the VM. ctx is the
// gatekeeper's handler span, so the VMM's boot/restore work parents
// under the server side of the GRAM submit.
func (s *Session) instantiate(ctx obs.SpanContext, done func(error)) {
	if s.cfg.MemBytes == 0 {
		if s.info.MemBytes > 0 {
			s.cfg.MemBytes = s.info.MemBytes
		} else {
			s.cfg.MemBytes = 128 << 20
		}
	}
	if s.cfg.Mode == vmm.WarmRestore && !s.info.Warm() {
		done(fmt.Errorf("core: image %q has no memory snapshot to restore", s.info.Name))
		return
	}
	s.buildBackends(func(disk storage.Backend, mem *memBackend, err error) {
		if err != nil {
			done(err)
			return
		}
		s.mem = mem
		vm, err := vmm.New(s.node.host, vmm.Config{
			Name:     s.name,
			MemBytes: s.cfg.MemBytes,
			Disk:     disk,
			MemImage: mem,
			DirtyBps: s.cfg.DirtyBps,
			Trace:    s.grid.tracer,
			Ctx:      ctx,
		})
		if err != nil {
			done(err)
			return
		}
		s.vm = vm
		s.localUser = fmt.Sprintf("vmuser%02d", s.id%100)
		s.mark("vm-starting")
		if err := vm.Start(s.cfg.Mode, done); err != nil {
			done(err)
		}
	})
}

// buildBackends constructs the virtual disk and memory-image backends
// for the session's policy and access mode, charging whatever transfers
// they imply (the persistent copy, staging) before yielding.
func (s *Session) buildBackends(yield func(storage.Backend, *memBackend, error)) {
	node := s.node
	info := s.info

	// localMem is the session-private memory file used by suspend.
	localMem, err := node.store.OpenOrCreate(s.name + ".mem")
	if err != nil {
		yield(nil, nil, err)
		return
	}

	switch s.cfg.Access {
	case AccessLocal:
		if s.cfg.Disk == Persistent {
			// Explicit private copy of the disk (and snapshot for warm
			// starts) in the host's local file system.
			diskCopy := s.name + ".disk"
			if err := node.store.Copy(info.DiskFile(), diskCopy, func() {
				s.copyMemIfWarm(func(restoreMem storage.Backend, err error) {
					if err != nil {
						yield(nil, nil, err)
						return
					}
					disk, err := node.store.Open(diskCopy)
					if err != nil {
						yield(nil, nil, err)
						return
					}
					yield(disk, &memBackend{restore: restoreMem, local: localMem}, nil)
				})
			}); err != nil {
				yield(nil, nil, err)
			}
			return
		}
		base, err := node.store.Open(info.DiskFile())
		if err != nil {
			yield(nil, nil, err)
			return
		}
		s.finishCow(base, s.localOrZeroMem(), localMem, yield)

	case AccessLoopback:
		tr := vfs.NewLoopbackTransport(s.grid.k, node.vfsrv)
		lcfg := vfs.LoopbackNFSConfig()
		lcfg.Trace = s.grid.tracer
		lcfg.Ctx = s.sctx
		client, err := vfs.NewClient(s.grid.k, tr, lcfg)
		if err != nil {
			yield(nil, nil, err)
			return
		}
		s.imageClient = client
		base := client.Open(info.DiskFile(), info.DiskBytes)
		var restoreMem storage.Backend = base
		if info.Warm() {
			restoreMem = client.Open(info.MemFile(), info.MemBytes)
		}
		s.finishCow(base, restoreMem, localMem, yield)

	case AccessOnDemand:
		client, err := s.grid.vfsClient(node.name, s.imageServer, s)
		if err != nil {
			yield(nil, nil, err)
			return
		}
		s.imageClient = client
		base := client.Open(info.DiskFile(), info.DiskBytes)
		var restoreMem storage.Backend = base
		if info.Warm() {
			restoreMem = client.Open(info.MemFile(), info.MemBytes)
		}
		s.finishCow(base, restoreMem, localMem, yield)

	case AccessStaged:
		// Whole-file staging from the image server, then run locally.
		src := s.grid.nodes[s.imageServer].store
		stageDisk := s.name + ".disk"
		err := gram.Stage(s.grid.net, s.imageServer, src, info.DiskFile(),
			node.name, node.store, stageDisk, func(err error) {
				if err != nil {
					yield(nil, nil, err)
					return
				}
				s.stageMemIfWarm(src, func(restoreMem storage.Backend, err error) {
					if err != nil {
						yield(nil, nil, err)
						return
					}
					disk, err := node.store.Open(stageDisk)
					if err != nil {
						yield(nil, nil, err)
						return
					}
					yield(disk, &memBackend{restore: restoreMem, local: localMem}, nil)
				})
			})
		if err != nil {
			yield(nil, nil, err)
		}

	default:
		yield(nil, nil, fmt.Errorf("core: unhandled access %v", s.cfg.Access))
	}
}

// finishCow wires the non-persistent (or trivially persistent-over-
// remote) copy-on-write stack.
func (s *Session) finishCow(base, restoreMem storage.Backend, localMem *storage.LocalFile,
	yield func(storage.Backend, *memBackend, error)) {
	diff, err := s.node.store.OpenOrCreate(s.name + ".cow")
	if err != nil {
		yield(nil, nil, err)
		return
	}
	s.cow = storage.NewCowDisk(base, diff)
	yield(s.cow, &memBackend{restore: restoreMem, local: localMem}, nil)
}

// localOrZeroMem returns the local warm-image backend for AccessLocal.
func (s *Session) localOrZeroMem() storage.Backend {
	if !s.info.Warm() {
		f, _ := s.node.store.OpenOrCreate(s.name + ".zeromem")
		return f
	}
	f, err := s.node.store.Open(s.info.MemFile())
	if err != nil {
		f, _ = s.node.store.OpenOrCreate(s.name + ".zeromem")
	}
	return f
}

// copyMemIfWarm makes the private snapshot copy for persistent local
// sessions.
func (s *Session) copyMemIfWarm(yield func(storage.Backend, error)) {
	if !s.info.Warm() {
		f, err := s.node.store.OpenOrCreate(s.name + ".zeromem")
		yield(f, err)
		return
	}
	memCopy := s.name + ".memimg"
	if err := s.node.store.Copy(s.info.MemFile(), memCopy, func() {
		f, err := s.node.store.Open(memCopy)
		yield(f, err)
	}); err != nil {
		yield(nil, err)
	}
}

// stageMemIfWarm transfers the snapshot for staged sessions.
func (s *Session) stageMemIfWarm(src *storage.Store, yield func(storage.Backend, error)) {
	if !s.info.Warm() {
		f, err := s.node.store.OpenOrCreate(s.name + ".zeromem")
		yield(f, err)
		return
	}
	stagedMem := s.name + ".memimg"
	err := gram.Stage(s.grid.net, s.imageServer, src, s.info.MemFile(),
		s.node.name, s.node.store, stagedMem, func(err error) {
			if err != nil {
				yield(nil, err)
				return
			}
			f, openErr := s.node.store.Open(stagedMem)
			yield(f, openErr)
		})
	if err != nil {
		yield(nil, err)
	}
}

// connect gives the VM a network identity (step 5) and attaches the
// user's data session.
func (s *Session) connect() error {
	// Scenario 1: the site hands out addresses.
	if s.node.dhcp != nil {
		addr, err := s.node.dhcp.Lease(s.name)
		if err == nil {
			s.addr = addr
			s.mark("addr-assigned")
			if err := s.attachData(); err != nil {
				// Hand the fresh lease back: a failed connect leaves no
				// address behind, so retried failovers cannot drain the
				// pool one dead lease at a time.
				_ = s.node.dhcp.Release(addr)
				s.addr = ""
				return err
			}
			return nil
		}
		// Pool exhausted: fall through to tunneling.
	}
	// Scenario 2: tunnel to the user's network.
	if s.cfg.HomeNode == "" {
		return fmt.Errorf("%w: site %q", ErrNoAddress, s.node.site)
	}
	tun, err := vnet.EstablishTunnel(s.grid.net, s.node.name, s.cfg.HomeNode)
	if err != nil {
		return err
	}
	s.tunnel = tun
	s.mark("tunnel-established")
	return s.attachData()
}

// attachData mounts the user's data server in the guest.
func (s *Session) attachData() error {
	if s.cfg.DataNode == "" {
		return nil
	}
	dataNode := s.grid.nodes[s.cfg.DataNode]
	if !dataNode.store.Has(s.cfg.DataFile) {
		return fmt.Errorf("core: data file %q missing on %s", s.cfg.DataFile, s.cfg.DataNode)
	}
	client, err := s.grid.vfsClient(s.node.name, s.cfg.DataNode, s)
	if err != nil {
		return err
	}
	s.dataClient = client
	size, _ := dataNode.store.Size(s.cfg.DataFile)
	s.vm.Guest().Mount("data", client.Open(s.cfg.DataFile, size))
	s.mark("data-attached")
	return nil
}

// fence builds the fencing token check for this incarnation's
// data-plane clients against a server at serverNode. Two layers: a
// superseded incarnation (a failover restore or migration bumped gen)
// is fenced unconditionally, and an operation whose epoch token the
// server's registry view has moved past is rejected with
// ErrFencedEpoch. Tripping either schedules zombie cleanup through the
// session's supervisor — the self-termination path of a pre-failover
// session that outlived its lease.
func (s *Session) fence(serverNode string) func() error {
	gen := s.gen
	token := s.epoch
	guard := s.grid.epochGuardAt(serverNode, s.name, token)
	return func() error {
		if s.gen != gen {
			return ErrFencedEpoch
		}
		if err := guard(); err != nil {
			s.grid.k.After(0, func() { s.grid.fenceZombies(s.name, token) })
			return err
		}
		return nil
	}
}

// fenceZombies asks every supervisor in charge of the named session to
// clean up the fenced pre-failover incarnation that ran under the
// given epoch.
func (g *Grid) fenceZombies(session string, epoch int64) {
	for _, sup := range g.supervisors {
		if c := sup.charges[session]; c != nil {
			sup.fenceZombie(c, epoch)
		}
	}
}

// vfsClient builds a proxy from one node to another, picking the LAN or
// WAN preset by measured latency. A non-nil session threads its
// fencing token into the mount: dirty-block flushes of a superseded
// incarnation are rejected with ErrFencedEpoch.
func (g *Grid) vfsClient(fromNode, toNode string, s *Session) (*vfs.Client, error) {
	target := g.nodes[toNode]
	if target == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, toNode)
	}
	tr, err := vfs.NewNetTransport(g.net, fromNode, toNode, target.vfsrv)
	if err != nil {
		return nil, err
	}
	lat, err := g.net.Latency(fromNode, toNode, 1024)
	if err != nil {
		// No route: refuse to build a mount that could never move data.
		return nil, fmt.Errorf("core: %s cannot reach %s: %w", fromNode, toNode, err)
	}
	cfg := vfs.LANConfig()
	if lat > 5*sim.Millisecond {
		cfg = vfs.WANConfig()
	}
	cfg.Retry = g.vfsRetry
	cfg.Trace = g.tracer
	if s != nil {
		cfg.Fence = s.fence(toNode)
		cfg.Ctx = s.sctx
	}
	return vfs.NewClient(g.k, tr, cfg)
}
