package core

import (
	"errors"
	"testing"

	"vmgrid/internal/guest"
	"vmgrid/internal/sim"
)

// superviseSession adopts s under a fresh supervisor checkpointing to
// the data server, and steps the kernel until the baseline checkpoint
// commits.
func superviseSession(t *testing.T, g *Grid, s *Session, cfg SupervisorConfig) *Supervisor {
	t.Helper()
	if cfg.StableNode == "" {
		cfg.StableNode = "data"
	}
	sup, err := NewSupervisor(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adopted := false
	if err := sup.Adopt(s, func(err error) {
		if err != nil {
			t.Errorf("baseline checkpoint: %v", err)
		}
		adopted = true
	}); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(10 * sim.Minute))
	if !adopted {
		t.Fatal("baseline checkpoint never committed")
	}
	return sup
}

// stepUntil advances the kernel in one-minute quanta until cond holds
// or the cap elapses. (The supervisor's heartbeats keep the event queue
// non-empty forever, so tests must bound time, not drain the queue.)
func stepUntil(g *Grid, cap sim.Duration, cond func() bool) {
	deadline := g.Kernel().Now().Add(cap)
	for !cond() && g.Kernel().Now() < deadline {
		_ = g.Kernel().RunUntil(g.Kernel().Now().Add(sim.Minute))
	}
}

// failoverScenario runs one supervised 600 s task with the hosting node
// crashing 120 s in, and returns the merged result, the stats, and the
// session.
func failoverScenario(t *testing.T) (guest.TaskResult, SupervisorStats, *Session, sim.Time) {
	t.Helper()
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	sup := superviseSession(t, g, s, SupervisorConfig{CheckpointInterval: 30 * sim.Second})

	var res guest.TaskResult
	finished := false
	if err := sup.Run(s, guest.MicroTask(600), func(r guest.TaskResult) {
		res = r
		finished = true
	}); err != nil {
		t.Fatal(err)
	}
	k := g.Kernel()
	victim := s.Node().Name()
	k.After(120*sim.Second, func() { _ = g.CrashNode(victim) })
	k.After(420*sim.Second, func() { _ = g.RebootNode(victim) })

	stepUntil(g, 2*sim.Hour, func() bool { return finished })
	if !finished {
		t.Fatalf("supervised task never finished; session state %q", s.State())
	}
	end := k.Now()
	sup.Stop()
	return res, sup.Stats(), s, end
}

func TestSupervisorFailoverCompletesWork(t *testing.T) {
	res, stats, s, _ := failoverScenario(t)

	if res.Err != nil {
		t.Fatalf("task error: %v", res.Err)
	}
	if res.UserSeconds != 600 {
		t.Errorf("UserSeconds = %v, want the full 600 (merged across failover)", res.UserSeconds)
	}
	if s.State() != StateRunning {
		t.Errorf("session state = %q after recovery", s.State())
	}
	if s.EventAt("recovered") < 0 {
		t.Errorf("no recovered step; events: %v", s.Events())
	}
	if stats.Crashes != 1 || stats.Recoveries != 1 {
		t.Errorf("crashes/recoveries = %d/%d, want 1/1", stats.Crashes, stats.Recoveries)
	}
	if stats.Checkpoints < 2 {
		t.Errorf("checkpoints = %d, want baseline + periodic", stats.Checkpoints)
	}
	// The crash at t≈120 s lands between 30 s checkpoints, so up to ~35 s
	// of work replays — never more, or checkpoints are not being taken.
	if stats.LostWorkSec <= 0 || stats.LostWorkSec > 40 {
		t.Errorf("lost work = %.1fs, want (0, 40]", stats.LostWorkSec)
	}
	if stats.RepairSec <= 0 || stats.RepairSec > 120 {
		t.Errorf("repair = %.1fs, want quick failover", stats.RepairSec)
	}
}

func TestSupervisorFailoverCostIsOnlyRecoveryTime(t *testing.T) {
	// Failure-free supervised baseline.
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	sup := superviseSession(t, g, s, SupervisorConfig{CheckpointInterval: 30 * sim.Second})
	var base guest.TaskResult
	baseDone := false
	if err := sup.Run(s, guest.MicroTask(600), func(r guest.TaskResult) {
		base = r
		baseDone = true
	}); err != nil {
		t.Fatal(err)
	}
	stepUntil(g, 2*sim.Hour, func() bool { return baseDone })
	if !baseDone || base.Err != nil {
		t.Fatalf("baseline run failed: done=%v err=%v", baseDone, base.Err)
	}
	sup.Stop()

	res, stats, _, _ := failoverScenario(t)
	overhead := res.Elapsed().Seconds() - base.Elapsed().Seconds()
	modeled := stats.LostWorkSec + stats.RepairSec
	if overhead <= 0 {
		t.Fatalf("faulty run (%.1fs) not slower than failure-free (%.1fs)",
			res.Elapsed().Seconds(), base.Elapsed().Seconds())
	}
	// The slowdown must be explained by the modeled recovery: replayed
	// work + repair, plus modest slack for the restore-side staging and
	// extra checkpoints the longer run takes.
	if overhead > modeled+60 {
		t.Errorf("overhead %.1fs exceeds modeled recovery %.1fs + slack",
			overhead, modeled)
	}
}

func TestSupervisorFailoverDeterminism(t *testing.T) {
	res1, stats1, _, end1 := failoverScenario(t)
	res2, stats2, _, end2 := failoverScenario(t)
	if res1 != res2 {
		t.Errorf("results differ across identical runs:\n  %+v\n  %+v", res1, res2)
	}
	if stats1 != stats2 {
		t.Errorf("stats differ across identical runs:\n  %+v\n  %+v", stats1, stats2)
	}
	if end1 != end2 {
		t.Errorf("end times differ: %v vs %v", end1, end2)
	}
}

func TestSupervisorGivesUpAfterMaxRecoveries(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	sup := superviseSession(t, g, s, SupervisorConfig{
		CheckpointInterval: 30 * sim.Second,
		MaxRecoveries:      1,
	})
	var res guest.TaskResult
	finished := false
	if err := sup.Run(s, guest.MicroTask(3600), func(r guest.TaskResult) {
		res = r
		finished = true
	}); err != nil {
		t.Fatal(err)
	}
	k := g.Kernel()
	// Crash whichever node hosts the session, twice: the first failover
	// succeeds, the second exceeds MaxRecoveries.
	k.After(60*sim.Second, func() { _ = g.CrashNode(s.Node().Name()) })
	k.After(300*sim.Second, func() { _ = g.CrashNode(s.Node().Name()) })

	stepUntil(g, 2*sim.Hour, func() bool { return finished })
	if !finished {
		t.Fatalf("task never resolved; state %q", s.State())
	}
	if !errors.Is(res.Err, ErrLeaseExpired) {
		t.Errorf("err = %v, want ErrLeaseExpired", res.Err)
	}
	if s.State() != StateDead {
		t.Errorf("state = %q, want dead after give-up", s.State())
	}
	if st := sup.Stats(); st.GivenUp != 1 || st.Recoveries != 1 {
		t.Errorf("stats = %+v, want 1 recovery then give-up", st)
	}
}

func TestSupervisorAdoptGuards(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	if _, err := NewSupervisor(g, SupervisorConfig{StableNode: "ghost"}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("ghost stable node = %v", err)
	}
	sup, err := NewSupervisor(g, SupervisorConfig{StableNode: "data"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Run(s, guest.MicroTask(1), nil); err == nil {
		t.Error("Run accepted an unsupervised session")
	}
	s.Shutdown()
	if err := sup.Adopt(s, nil); !errors.Is(err, ErrBadSession) {
		t.Errorf("adopt dead session = %v", err)
	}
}
