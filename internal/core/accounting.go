package core

import (
	"fmt"
	"strings"
)

// Usage is the metered consumption of one session — what a provider
// bills. The paper's resource-control argument (§2.2) is that the VM
// granularity makes this natural: one monitor process and a handful of
// files are the whole footprint of a user.
type Usage struct {
	// CPUSeconds is host CPU consumed by the monitor process (includes
	// virtualization overhead — the provider's cost, not the guest's
	// useful work).
	CPUSeconds float64
	// GuestUserSeconds is useful work the guest retired.
	GuestUserSeconds float64
	// DiffBytes is copy-on-write storage consumed on the host.
	DiffBytes int64
	// ImageBytesFetched is data pulled from the image server.
	ImageBytesFetched uint64
	// DataBytesFetched is data pulled from the data server.
	DataBytesFetched uint64
	// WallSeconds is how long the session has existed.
	WallSeconds float64
}

// Usage returns the session's metered consumption so far.
func (s *Session) Usage() Usage {
	u := Usage{}
	if s.vm != nil {
		u.CPUSeconds = s.vm.Proc().CPUSeconds()
		u.GuestUserSeconds = s.vm.Guest().UserSeconds()
	}
	if s.cow != nil {
		u.DiffBytes = s.cow.DiffBytes()
	}
	if s.imageClient != nil {
		u.ImageBytesFetched = s.imageClient.BytesFetched()
	}
	if s.dataClient != nil {
		u.DataBytesFetched = s.dataClient.BytesFetched()
	}
	if at := s.EventAt("submitted"); at >= 0 {
		u.WallSeconds = s.grid.k.Now().Sub(at).Seconds()
	}
	return u
}

// Efficiency returns useful guest work per host CPU second (0 when no
// CPU has been consumed yet).
func (u Usage) Efficiency() float64 {
	if u.CPUSeconds <= 0 {
		return 0
	}
	return u.GuestUserSeconds / u.CPUSeconds
}

// String renders a one-session bill.
func (u Usage) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cpu=%.1fs guest-work=%.1fs (eff %.1f%%) diff=%dKB image-fetch=%dKB data-fetch=%dKB wall=%.1fs",
		u.CPUSeconds, u.GuestUserSeconds, u.Efficiency()*100,
		u.DiffBytes>>10, u.ImageBytesFetched>>10, u.DataBytesFetched>>10, u.WallSeconds)
	return b.String()
}

// AccountingReport summarizes all sessions a provider has hosted on one
// grid (live and dead sessions the caller retained).
func AccountingReport(sessions []*Session) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-10s %-12s %-12s %-8s\n", "session", "user", "cpu (s)", "work (s)", "eff")
	var totalCPU, totalWork float64
	for _, s := range sessions {
		u := s.Usage()
		totalCPU += u.CPUSeconds
		totalWork += u.GuestUserSeconds
		fmt.Fprintf(&b, "%-20s %-10s %-12.1f %-12.1f %-8.2f\n",
			s.Name(), s.cfg.User, u.CPUSeconds, u.GuestUserSeconds, u.Efficiency())
	}
	fmt.Fprintf(&b, "%-20s %-10s %-12.1f %-12.1f\n", "TOTAL", "", totalCPU, totalWork)
	return b.String()
}
