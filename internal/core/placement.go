package core

import (
	"fmt"
	"sort"

	"vmgrid/internal/gis"
	"vmgrid/internal/placement"
)

// This file is the grid's single placement code path. Session creation
// (CreateSession), the supervisor's restore-target choice, and the
// balancer's migration-target choice all build their candidate lists
// here — same filters, same bidirectional-reachability probes — and
// then apply a placement.Placer. Before this, the front end and the
// supervisor each had a private node-picking loop, and the PR 7
// reachability checks only guarded one of them.

// createOptions collects the functional options of CreateSession.
type createOptions struct {
	placer   placement.Placer
	hint     string
	priority int
	fence    func() error
}

// CreateOption customizes one CreateSession call.
type CreateOption func(*createOptions)

// WithPlacer selects the placement policy for this session. nil (and
// no option at all) keeps the information service's ranking order —
// the advertised-load-ascending order every experiment before this
// subsystem was calibrated against.
func WithPlacer(p placement.Placer) CreateOption {
	return func(o *createOptions) { o.placer = p }
}

// WithNodeHint prefers the named compute node: if it is a viable
// candidate (alive, free slot, image when required) the session lands
// there; otherwise placement falls through to the policy. A hint is a
// preference, not a pin.
func WithNodeHint(node string) CreateOption {
	return func(o *createOptions) { o.hint = node }
}

// WithPriority sets the session's eviction priority. The balancer
// relieves hotspots lowest-priority-first, so a high-priority session
// migrates only after its lower-priority neighbors. Default 0.
func WithPriority(p int) CreateOption {
	return func(o *createOptions) { o.priority = p }
}

// WithFence threads an admission fence into the session's start-vm
// job: the gatekeeper evaluates it immediately before instantiation
// and rejects the job on a non-nil error. Callers that race session
// creation against their own failover machinery use it the way the
// supervisor fences restores.
func WithFence(fence func() error) CreateOption {
	return func(o *createOptions) { o.fence = fence }
}

// SetDefaultPlacer installs a grid-wide placement policy consulted by
// every CreateSession call that does not carry its own WithPlacer.
// nil restores the information-service ranking default.
func (g *Grid) SetDefaultPlacer(p placement.Placer) { g.defaultPlacer = p }

// biReachable reports whether a and b can currently route to each
// other in both directions — the requirement for any control-plane
// exchange that needs a reply. Placement demands it of every probe
// node so a half-dead candidate with a muted transmit side cannot be
// chosen and hang the operation.
func (g *Grid) biReachable(a, b string) bool {
	if a == b {
		return true
	}
	if _, err := g.net.Latency(a, b, 0); err != nil {
		return false
	}
	if _, err := g.net.Latency(b, a, 0); err != nil {
		return false
	}
	return true
}

// futureCandidates converts VM-future entries (in the information
// service's ranking order) into placement candidates, dropping any
// that cannot actually host right now: crashed or non-compute nodes,
// full nodes, nodes missing a required image, the excluded node, and
// nodes not bidirectionally reachable from every probe node.
func (g *Grid) futureCandidates(futures []gis.Entry, image, exclude string, probes ...string) []placement.Candidate {
	out := make([]placement.Candidate, 0, len(futures))
next:
	for _, e := range futures {
		if e.Name == exclude {
			continue
		}
		n := g.nodes[e.Name]
		if n == nil || n.crashed || n.gk == nil || n.slots <= 0 {
			continue
		}
		if image != "" {
			if _, ok := n.Image(image); !ok {
				continue
			}
		}
		for _, p := range probes {
			if !g.biReachable(p, e.Name) {
				continue next
			}
		}
		out = append(out, placement.Candidate{
			Node:      e.Name,
			Site:      n.site,
			Slots:     n.slots,
			Speed:     n.host.Spec().CPU.Speed,
			Load:      n.host.LoadAverage(),
			Predicted: g.predictedLoad(n),
		})
	}
	return out
}

// predictedLoad is the node's RPS forecast when the monitor watches
// it, else its live load average.
func (g *Grid) predictedLoad(n *Node) float64 {
	if g.monitor != nil {
		if _, ok := g.monitor.sensors[n.name]; ok {
			return g.monitor.PredictedLoad(n.name)
		}
	}
	return n.host.LoadAverage()
}

// placeWith applies a policy to pre-filtered candidates. A nil placer
// keeps the information service's ranking: first fit.
func placeWith(p placement.Placer, req placement.Request, cands []placement.Candidate) (string, bool) {
	if len(cands) == 0 {
		return "", false
	}
	if p == nil {
		return cands[0].Node, true
	}
	return p.Pick(req, cands)
}

// placeFor picks the compute node for a new session. Without a policy
// or hint in play it reproduces the legacy behavior exactly — the
// first future in ranking order, no extra filters — so the calibrated
// experiments are byte-identical. With one, it runs the shared
// candidate path (filtering for a locally-required image) and applies
// the hint, then the policy.
func (g *Grid) placeFor(cfg SessionConfig, o createOptions, futures []gis.Entry) (*Node, error) {
	placer := o.placer
	if placer == nil {
		placer = g.defaultPlacer
	}
	if placer == nil && o.hint == "" {
		return g.nodes[futures[0].Name], nil
	}
	image := ""
	if cfg.Access == AccessLocal || cfg.Access == AccessLoopback {
		// These modes can only start where the image is installed;
		// filtering here keeps the policy from picking a node that
		// would fail at image-resolution time.
		image = cfg.Image
	}
	cands := g.futureCandidates(futures, image, "")
	if o.hint != "" {
		for _, c := range cands {
			if c.Node == o.hint {
				return g.nodes[o.hint], nil
			}
		}
	}
	name, ok := placeWith(placer, placement.Request{
		User:        cfg.User,
		Image:       cfg.Image,
		Site:        cfg.Site,
		MinMemBytes: cfg.MemBytes,
	}, cands)
	if !ok {
		return nil, fmt.Errorf("%w: no candidate for image %q site %q", ErrNoFuture, cfg.Image, cfg.Site)
	}
	return g.nodes[name], nil
}

// sessionBusy reports whether any supervisor has the session mid-
// checkpoint or mid-recovery — states the balancer must not migrate
// under.
func (g *Grid) sessionBusy(name string) bool {
	for _, sup := range g.supervisors {
		if c := sup.charges[name]; c != nil && (c.recovering || c.checkpointing) {
			return true
		}
	}
	return false
}

// computeNodes returns the live compute nodes in name order.
func (g *Grid) computeNodes() []string {
	out := make([]string, 0, len(g.nodes))
	for name, n := range g.nodes {
		if n.gk != nil && !n.crashed {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
