package core

import (
	"fmt"

	"vmgrid/internal/gis"
	"vmgrid/internal/gram"
	"vmgrid/internal/obs"
	"vmgrid/internal/storage"
	"vmgrid/internal/vmm"
)

// Shutdown ends the session: the VM powers off, the non-persistent diff
// is discarded, the address returns to the pool, and the registry entry
// disappears. Persistent disks stay in the node's store (they are the
// user's state).
func (s *Session) Shutdown() {
	if s.state == StateDead {
		return
	}
	if s.vm != nil {
		s.vm.PowerOff()
	}
	if s.addr != "" && s.node != nil && s.node.dhcp != nil {
		_ = s.node.dhcp.Release(s.addr)
		s.addr = ""
	}
	// A crashed node's store survives but is unreachable; leave its files
	// for the reboot-time operator. (Shutdown of a crashed session happens
	// when its supervisor gives up on recovery.)
	if s.node != nil && !s.node.crashed {
		for _, f := range []string{s.name + ".cow", s.name + ".mem", s.name + ".zeromem"} {
			if s.node.store.Has(f) {
				_ = s.node.store.Delete(f)
			}
		}
	}
	s.grid.info.Deregister(gis.KindVM, s.name)
	s.releaseSlot()
	delete(s.grid.live, s.name)
	s.state = StateDead
	s.mark("shutdown")
}

// Hibernate checkpoints the session: the guest freezes and its memory
// image lands in the node's store. The session can be woken later (or
// migrated while hibernated).
func (s *Session) Hibernate(done func(error)) error {
	if !s.state.CanHibernate() {
		return fmt.Errorf("%w: hibernate in %q", ErrBadSession, s.state)
	}
	if err := s.vm.Suspend(func(err error) {
		if err == nil {
			s.state = StateHibernated
			s.mark("hibernated")
		}
		if done != nil {
			done(err)
		}
	}); err != nil {
		return err
	}
	return nil
}

// Wake resumes a hibernated session in place, re-reading the saved
// memory image.
func (s *Session) Wake(done func(error)) error {
	if !s.state.CanWake() {
		return fmt.Errorf("%w: wake in %q", ErrBadSession, s.state)
	}
	return s.vm.Start(vmm.WarmRestore, func(err error) {
		if err == nil {
			s.state = StateRunning
			s.mark("woken")
		}
		if done != nil {
			done(err)
		}
	})
}

// Migrate moves the session to another compute node: suspend, transfer
// the memory image and the copy-on-write diff, re-instantiate over the
// target's copy of the base image, resume, and re-attach the network
// and data sessions. The guest — task state included — survives.
//
// The target must be a compute node with a free slot holding the same
// base image (read-only base sharing is what keeps migration traffic
// down to the working set, §3.1).
func (s *Session) Migrate(targetName string, done func(error)) error {
	if !s.state.CanMigrate() || s.migrating {
		return fmt.Errorf("%w: migrate in %q", ErrBadSession, s.state)
	}
	if s.cow == nil {
		return fmt.Errorf("core: only non-persistent sessions migrate via diff transfer")
	}
	target := s.grid.nodes[targetName]
	if target == nil {
		return fmt.Errorf("%w: %q", ErrUnknownNode, targetName)
	}
	if target.gk == nil || target.slots <= 0 {
		return fmt.Errorf("core: %q cannot accept a VM (no gatekeeper or slots)", targetName)
	}
	if _, ok := target.Image(s.cfg.Image); !ok {
		return fmt.Errorf("%w: base image %q not on target %s", ErrNoImage, s.cfg.Image, targetName)
	}

	// gen pins the incarnation this migration moves. If the source
	// crashes mid-transfer and a supervisor failover restores the
	// session elsewhere (bumping gen), the half-done migration must
	// abort instead of minting a second live incarnation.
	gen := s.gen
	s.migrating = true
	// The migration span covers suspend, state transfer, and arrival;
	// it parents under the session's causal root so balancer moves show
	// up on the session's critical path.
	msp := s.grid.tracer.BeginChild(s.sctx, s.name, "migration", "migrate:"+targetName)
	finish := func(err error) {
		s.migrating = false
		msp.EndErr(err)
		if done != nil {
			done(err)
		}
	}
	superseded := func() bool { return s.gen != gen || !s.state.CanMigrate() }

	transfer := func() {
		if superseded() {
			finish(fmt.Errorf("%w: migration superseded mid-transfer", ErrFencedEpoch))
			return
		}
		src := s.node
		// Move the session state files: memory image and COW diff.
		memFile := s.name + ".mem"
		diffFile := s.name + ".cow"
		if !src.store.Has(memFile) {
			finish(fmt.Errorf("core: migrate %s: no saved memory image", s.name))
			return
		}
		stageNext := func(file string, next func(error)) {
			if !src.store.Has(file) {
				next(nil)
				return
			}
			if err := gram.Stage(s.grid.net, src.name, src.store, file,
				target.name, target.store, file, next); err != nil {
				next(err)
			}
		}
		stageNext(memFile, func(err error) {
			if err != nil {
				finish(err)
				return
			}
			stageNext(diffFile, func(err error) {
				if err != nil {
					finish(err)
					return
				}
				if superseded() {
					finish(fmt.Errorf("%w: migration superseded mid-transfer", ErrFencedEpoch))
					return
				}
				s.arrive(target, msp.Context(), finish)
			})
		})
	}

	if s.state == StateRunning {
		s.mark("migrate-suspend")
		if err := s.vm.Suspend(func(err error) {
			if err != nil {
				finish(err)
				return
			}
			transfer()
		}); err != nil {
			return err
		}
		return nil
	}
	// Already hibernated: state is on disk, transfer directly.
	s.mark("migrate-transfer")
	transfer()
	return nil
}

// MigrateFenced is Migrate fenced through the epoch machinery: the
// session's fencing epoch is bumped through a quorum write (from the
// front end) before any state moves, so a balancer-initiated migration
// can never race a partition failover — the failover's own quorum bump
// supersedes this one, the data-plane guards see the newer epoch, and
// whichever operation lost the race aborts instead of minting a second
// live incarnation. Returns ErrNoQuorum without moving anything when
// the front end sits on the minority side of a partition.
func (s *Session) MigrateFenced(targetName string, done func(error)) error {
	if !s.state.CanMigrate() || s.migrating {
		return fmt.Errorf("%w: fenced migrate in %q", ErrBadSession, s.state)
	}
	old := s.epoch
	qsp := s.grid.tracer.BeginChild(s.sctx, s.name, "quorum", "epoch-bump")
	ep, err := s.grid.info.BumpEpochFrom(s.cfg.FrontEnd, s.name)
	qsp.EndErr(err)
	if err != nil {
		return err
	}
	s.adoptEpoch(old, ep)
	return s.Migrate(targetName, func(err error) {
		if err == nil && s.epoch != ep {
			// A failover bumped past us while state was in flight; the
			// internal generation guard should already have aborted, but
			// never report a superseded migration as success.
			err = ErrFencedEpoch
		}
		if done != nil {
			done(err)
		}
	})
}

// adoptEpoch moves the session — same incarnation, same guest — to a
// new fencing epoch at the start of a fenced migration. Supervisors in
// charge follow to the new epoch and remember the old one as carried:
// results of tasks submitted under a carried epoch still belong to the
// one true incarnation (the guest survives a migration) and must not
// be fenced as zombie results. A real failover clears the carried set,
// because a new incarnation's history starts from its checkpoint.
func (s *Session) adoptEpoch(old, ep int64) {
	s.epoch = ep
	for _, sup := range s.grid.supervisors {
		if c := sup.charges[s.name]; c != nil {
			c.epoch = ep
			if c.carried == nil {
				c.carried = make(map[int64]bool)
			}
			c.carried[old] = true
		}
	}
}

// restoreFrom re-instantiates a crashed session on target from a
// checkpoint whose state files (s.name+".mem" and s.name+".cow") have
// already been staged into target's store. Unlike arrive, there is no
// guest to adopt — the crashed guest's post-checkpoint state is gone —
// so the VM warm-restores with a fresh guest and the caller (the
// supervisor) resubmits the remaining work. writtenPages is the COW
// page list recorded at checkpoint time.
//
// The session must be in the "recovering" state (the supervisor's
// failover path sets it) and the caller must have reserved a slot on
// target.
func (s *Session) restoreFrom(target *Node, writtenPages []int64, rctx obs.SpanContext, finish func(error)) {
	if s.state != StateRecovering {
		finish(fmt.Errorf("%w: restore in %q", ErrBadSession, s.state))
		return
	}
	info, ok := target.Image(s.cfg.Image)
	if !ok {
		finish(fmt.Errorf("%w: base image %q not on target %s", ErrNoImage, s.cfg.Image, target.name))
		return
	}
	base, err := target.store.Open(info.DiskFile())
	if err != nil {
		finish(err)
		return
	}
	diff, err := target.store.OpenOrCreate(s.name + ".cow")
	if err != nil {
		finish(err)
		return
	}
	cow := storage.NewCowDisk(base, diff)
	cow.MarkWritten(writtenPages)

	localMem, err := target.store.Open(s.name + ".mem")
	if err != nil {
		finish(err)
		return
	}
	mem := &memBackend{restore: localMem, local: localMem, dirty: true}

	vm, err := vmm.New(target.host, vmm.Config{
		Name:     s.name,
		MemBytes: s.cfg.MemBytes,
		Disk:     cow,
		MemImage: mem,
		DirtyBps: s.cfg.DirtyBps,
		Trace:    s.grid.tracer,
		Ctx:      rctx,
	})
	if err != nil {
		finish(err)
		return
	}

	s.node = target
	s.vm = vm
	s.cow = cow
	s.mem = mem
	s.gen++ // new incarnation: fences held by the old one go stale

	if err := vm.Start(vmm.WarmRestore, func(err error) {
		if err != nil {
			finish(err)
			return
		}
		// The restore read the same file suspends will write, so the
		// image is in sync: the next checkpoint can be a delta.
		vm.PrimeImage()
		if err := s.connect(); err != nil {
			finish(err)
			return
		}
		s.state = StateRunning
		s.mark("recovered")
		_ = s.grid.info.Register(gis.KindVM, s.name, map[string]any{
			gis.AttrHost: s.node.name,
			gis.AttrAddr: s.addr,
			"user":       s.cfg.User,
			"image":      s.cfg.Image,
		}, 0)
		finish(nil)
	}); err != nil {
		finish(err)
	}
}

// arrive re-instantiates the session on the target node after its state
// files landed there. mctx is the migration span, under which the new
// VM's restore work parents.
func (s *Session) arrive(target *Node, mctx obs.SpanContext, finish func(error)) {
	oldNode := s.node
	oldVM := s.vm
	oldGuest := s.vm.Guest()
	writtenPages := s.cow.WrittenPages()

	info, _ := target.Image(s.cfg.Image)
	base, err := target.store.Open(info.DiskFile())
	if err != nil {
		finish(err)
		return
	}
	diff, err := target.store.OpenOrCreate(s.name + ".cow")
	if err != nil {
		finish(err)
		return
	}
	cow := storage.NewCowDisk(base, diff)
	cow.MarkWritten(writtenPages)

	localMem, err := target.store.Open(s.name + ".mem")
	if err != nil {
		finish(err)
		return
	}
	mem := &memBackend{restore: localMem, local: localMem, dirty: true}

	vm, err := vmm.New(target.host, vmm.Config{
		Name:     s.name,
		MemBytes: s.cfg.MemBytes,
		Disk:     cow,
		MemImage: mem,
		DirtyBps: s.cfg.DirtyBps,
		Trace:    s.grid.tracer,
		Ctx:      mctx,
	})
	if err != nil {
		finish(err)
		return
	}
	oldVM.PowerOff()
	if err := vm.AdoptGuest(oldGuest); err != nil {
		finish(err)
		return
	}

	// Hand over bookkeeping. The new slot is reserved through a release
	// closure so a later crash of either node cannot double-free it.
	newRelease := target.reserveSlot()
	if s.addr != "" && oldNode.dhcp != nil {
		_ = oldNode.dhcp.Release(s.addr)
		s.addr = ""
	}
	s.releaseSlot()
	s.slotRelease = newRelease
	for _, f := range []string{s.name + ".cow", s.name + ".mem", s.name + ".zeromem"} {
		if oldNode.store.Has(f) {
			_ = oldNode.store.Delete(f)
		}
	}
	s.node = target
	s.vm = vm
	s.cow = cow
	s.mem = mem
	s.gen++ // new incarnation: fences held by the old one go stale
	myGen := s.gen

	if err := vm.Start(vmm.WarmRestore, func(err error) {
		if err != nil {
			finish(err)
			return
		}
		// The target may have crashed (or a failover superseded us)
		// while the VM was coming up; resuming would resurrect a dead
		// incarnation.
		if s.gen != myGen || s.state == StateCrashed || s.state == StateDead {
			finish(fmt.Errorf("%w: migration superseded at arrival", ErrFencedEpoch))
			return
		}
		// Restore source == suspend target here too: arm delta suspends.
		vm.PrimeImage()
		if err := s.connect(); err != nil {
			finish(err)
			return
		}
		s.state = StateRunning
		s.mark("migrated")
		_ = s.grid.info.Register(gis.KindVM, s.name, map[string]any{
			gis.AttrHost: s.node.name,
			gis.AttrAddr: s.addr,
			"user":       s.cfg.User,
			"image":      s.cfg.Image,
		}, 0)
		finish(nil)
	}); err != nil {
		finish(err)
	}
}
