package core

import (
	"vmgrid/internal/gis"
	"vmgrid/internal/placement"
	"vmgrid/internal/telemetry"
)

// BalancerConfig configures the grid's autonomic load balancer: the
// generic hysteresis knobs plus the placement policy used to rank
// migration targets.
type BalancerConfig struct {
	placement.BalancerConfig
	// Placer ranks migration-target candidates; nil keeps the
	// information service's ranking (first viable future). The same
	// shared candidate path serves session creation and supervisor
	// restores, so the viability filters cannot drift apart.
	Placer placement.Placer
}

// gridFabric adapts the grid to the balancer's world view. All reads
// flow through the observability surfaces a real deployment would have
// — the telemetry TSDB when enabled, the RPS forecast otherwise —
// rather than reaching into simulator internals the balancer could
// never see.
type gridFabric struct {
	g      *Grid
	placer placement.Placer
}

func (f *gridFabric) Nodes() []string { return f.g.computeNodes() }

// NodeLoad is the balancer's hotspot signal for one node: the
// telemetry pipeline's predicted-load series when the collector is
// scraping (the anticipatory signal Ablation I sweeps), then its raw
// load series, then the monitor's live forecast, then the host's load
// average — the best signal available in the current configuration.
func (f *gridFabric) NodeLoad(node string) (float64, bool) {
	n := f.g.nodes[node]
	if n == nil || n.crashed || n.gk == nil {
		return 0, false
	}
	if f.g.telemetry.Enabled() {
		db := f.g.telemetry.DB()
		for _, key := range []string{
			"node.predicted_load{node=" + node + "}",
			"node.load{node=" + node + "}",
		} {
			if s := db.Lookup(key); s != nil && s.Len() > 0 {
				return s.Last().V, true
			}
		}
	}
	if f.g.monitor != nil {
		if _, ok := f.g.monitor.sensors[node]; ok {
			return f.g.monitor.PredictedLoad(node), true
		}
	}
	return n.host.LoadAverage(), true
}

// Sessions lists the node's movable sessions, lowest eviction priority
// first (name-ordered within a priority). Sessions mid-migration,
// mid-checkpoint, or mid-recovery are not offered: the balancer must
// never contend with the supervisor for the same incarnation.
func (f *gridFabric) Sessions(node string) []string {
	n := f.g.nodes[node]
	if n == nil {
		return nil
	}
	var out []*Session
	for _, s := range f.g.sessionsOn(n) {
		if !s.state.CanMigrate() || s.cow == nil || s.migrating || f.g.sessionBusy(s.name) {
			continue
		}
		out = append(out, s)
	}
	// sessionsOn is already name-sorted; a stable pass by priority
	// keeps the name order within each priority class.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].priority > out[j].priority; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	names := make([]string, len(out))
	for i, s := range out {
		names[i] = s.name
	}
	return names
}

// Target picks where the session should land, through the grid's
// shared placement path: same candidate filters as session creation
// and supervisor restores (image present, free slot, bidirectional
// reachability from the source and the front end), ranked by the
// balancer's policy.
func (f *gridFabric) Target(sess, from string) (string, bool) {
	s := f.g.live[sess]
	if s == nil {
		return "", false
	}
	futures := f.g.info.FindFutures(gis.FutureQuery{
		MinMemBytes: s.cfg.MemBytes,
		Site:        s.cfg.Site,
	})
	cands := f.g.futureCandidates(futures, s.cfg.Image, from, from, s.cfg.FrontEnd)
	return placeWith(f.placer, placement.Request{
		Session:     sess,
		User:        s.cfg.User,
		Image:       s.cfg.Image,
		Site:        s.cfg.Site,
		MinMemBytes: s.cfg.MemBytes,
		Exclude:     from,
	}, cands)
}

// Migrate runs one fenced live migration on the balancer's behalf.
func (f *gridFabric) Migrate(sess, target string, done func(error)) error {
	s := f.g.live[sess]
	if s == nil {
		return ErrBadSession
	}
	f.g.telemetry.Record("balancer.migrations", 1,
		telemetry.L("session", sess), telemetry.L("target", target))
	f.g.tracer.Metrics().Counter("core.balancer-migrations").Inc()
	return s.MigrateFenced(target, done)
}

// StartBalancer starts the autonomic load-balancing loop: it watches
// per-node predicted load, detects sustained hotspots with hysteresis,
// and relieves them with fenced live migrations (so a balancer move
// can never race a partition failover — the epoch machinery arbitrates).
// Call Stop on the returned balancer to halt the loop.
func (g *Grid) StartBalancer(cfg BalancerConfig) (*placement.Balancer, error) {
	fab := &gridFabric{g: g, placer: cfg.Placer}
	b, err := placement.NewBalancer(g.k, fab, cfg.BalancerConfig)
	if err != nil {
		return nil, err
	}
	b.Start()
	return b, nil
}
