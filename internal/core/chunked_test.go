package core

import (
	"testing"

	"vmgrid/internal/chunk"
	"vmgrid/internal/guest"
	"vmgrid/internal/obs"
	"vmgrid/internal/retry"
	"vmgrid/internal/sim"
)

// chunkedFailover runs the failover scenario on a chunk-plane grid with
// the given guest dirty rate: a supervised 600 s task, host crash at
// 120 s, reboot at 420 s. Returns the merged result, the supervisor
// stats, the session, and total wire bytes.
func chunkedFailover(t *testing.T, dirtyBps int64) (guest.TaskResult, SupervisorStats, *Session, uint64) {
	t.Helper()
	g := testbed(t)
	g.EnableChunkedStaging(chunk.Config{})
	cfg := baseConfig()
	cfg.DirtyBps = dirtyBps
	s := startSession(t, g, cfg)
	sup := superviseSession(t, g, s, SupervisorConfig{CheckpointInterval: 30 * sim.Second})

	var res guest.TaskResult
	finished := false
	if err := sup.Run(s, guest.MicroTask(600), func(r guest.TaskResult) {
		res = r
		finished = true
	}); err != nil {
		t.Fatal(err)
	}
	k := g.Kernel()
	victim := s.Node().Name()
	k.After(120*sim.Second, func() { _ = g.CrashNode(victim) })
	k.After(420*sim.Second, func() { _ = g.RebootNode(victim) })
	stepUntil(g, 2*sim.Hour, func() bool { return finished })
	if !finished {
		t.Fatalf("supervised task never finished; session state %q", s.State())
	}
	sup.Stop()
	return res, sup.Stats(), s, g.Net().BytesSent()
}

// TestDeltaRestoreMatchesFullRestore is the dirty-chunk invariant: a
// session checkpointed with delta suspends (DirtyBps bounding each
// memory image to the dirtied window) must fail over to exactly the
// same user-visible outcome as one checkpointed with full images —
// the full 600 s of merged work, a running session, one recovery —
// while moving strictly fewer bytes on the wire.
func TestDeltaRestoreMatchesFullRestore(t *testing.T) {
	fullRes, fullStats, fullS, fullWire := chunkedFailover(t, 0)
	deltaRes, deltaStats, deltaS, deltaWire := chunkedFailover(t, 256<<10)

	for _, c := range []struct {
		name  string
		res   guest.TaskResult
		stats SupervisorStats
		s     *Session
	}{
		{"full", fullRes, fullStats, fullS},
		{"delta", deltaRes, deltaStats, deltaS},
	} {
		if c.res.Err != nil {
			t.Errorf("%s: task error: %v", c.name, c.res.Err)
		}
		if c.res.UserSeconds != 600 {
			t.Errorf("%s: UserSeconds = %v, want the full 600", c.name, c.res.UserSeconds)
		}
		if c.s.State() != StateRunning {
			t.Errorf("%s: state = %q after recovery", c.name, c.s.State())
		}
		if c.stats.Crashes != 1 || c.stats.Recoveries != 1 {
			t.Errorf("%s: crashes/recoveries = %d/%d, want 1/1",
				c.name, c.stats.Crashes, c.stats.Recoveries)
		}
		if c.stats.LostWorkSec <= 0 || c.stats.LostWorkSec > 40 {
			t.Errorf("%s: lost work = %.1fs, want (0, 40]", c.name, c.stats.LostWorkSec)
		}
	}
	// Delta checkpoints are cheaper, so the delta run must finish no
	// later than the full one (both at least as fast as required).
	if deltaRes.End > fullRes.End {
		t.Errorf("delta run finished at %v, after the full run's %v", deltaRes.End, fullRes.End)
	}
	if deltaWire >= fullWire {
		t.Errorf("delta checkpoints moved %d wire bytes, full moved %d — "+
			"dirty-chunk tracking saved nothing", deltaWire, fullWire)
	}
}

// TestStageCheckpointRetriesThroughTransientOutage is the regression
// test for checkpoint staging riding retry.Policy: with the zero policy
// a checkpoint that fires while the stable node is unreachable is
// abandoned (the historical behavior), and with a StageRetry policy the
// same checkpoint backs off across the outage and commits after the
// fabric heals.
func TestStageCheckpointRetriesThroughTransientOutage(t *testing.T) {
	run := func(policy retry.Policy) (duringOutage, after int, retries float64) {
		g := testbed(t)
		g.SetTracer(obs.New(g.Kernel()))
		s := startSession(t, g, baseConfig())
		sup := superviseSession(t, g, s, SupervisorConfig{
			CheckpointInterval: 30 * sim.Second,
			StageRetry:         policy,
		})
		k := g.Kernel()
		n0 := sup.Stats().Checkpoints
		// 40 s outage: at least one checkpoint tick fires inside it.
		if err := g.Net().SetNodeUp("data", false); err != nil {
			t.Fatal(err)
		}
		k.After(40*sim.Second, func() {
			if err := g.Net().SetNodeUp("data", true); err != nil {
				t.Error(err)
			}
		})
		_ = k.RunUntil(k.Now().Add(40 * sim.Second))
		duringOutage = sup.Stats().Checkpoints - n0
		_ = k.RunUntil(k.Now().Add(120 * sim.Second))
		after = sup.Stats().Checkpoints - n0
		retries = g.tracer.Metrics().Counter("core.checkpoint-stage-retries").Value()
		sup.Stop()
		return duringOutage, after, retries
	}

	noneDuring, noneAfter, noneRetries := run(retry.Policy{})
	if noneDuring != 0 {
		t.Errorf("zero policy committed %d checkpoints during the outage", noneDuring)
	}
	if noneRetries != 0 {
		t.Errorf("zero policy recorded %v staging retries, want 0", noneRetries)
	}
	if noneAfter == 0 {
		t.Errorf("periodic checkpoints never resumed after the outage healed")
	}

	during, after, retries := run(retry.Policy{
		MaxAttempts: 10, Backoff: 2 * sim.Second, MaxBackoff: 8 * sim.Second,
	})
	if during != 0 {
		t.Errorf("retrying policy committed %d checkpoints while the stable node was down", during)
	}
	if retries == 0 {
		t.Error("staging retries counter never moved — the policy was not applied")
	}
	if after == 0 {
		t.Error("retried checkpoint never committed after the outage healed")
	}
}

// TestMigrateBackDedup: with the chunk plane on and a bounded dirty
// rate, migrating a session away and back moves only the pages the
// guest dirtied on the far side — the origin's chunk cache still names
// everything it exported, and arrival primes the delta tracker so the
// return suspend writes a delta rather than the whole image.
func TestMigrateBackDedup(t *testing.T) {
	g := testbed(t)
	g.EnableChunkedStaging(chunk.Config{})
	// 16 KiB/s: the ~20 simulated minutes spent on the far side dirty
	// ~20 MB of the 128 MB image, so the return leg has real dedup to
	// find without being trivially empty.
	cfg := baseConfig()
	cfg.DirtyBps = 16 << 10
	s := startSession(t, g, cfg)
	firstNode := s.Node().Name()
	other := "compute2"
	if firstNode == "compute2" {
		other = "compute1"
	}
	migrate := func(target string) uint64 {
		t.Helper()
		before := g.Net().BytesSent()
		finished := false
		if err := s.Migrate(target, func(err error) {
			if err != nil {
				t.Errorf("migrate to %s: %v", target, err)
			}
			finished = true
		}); err != nil {
			t.Fatal(err)
		}
		_ = g.Kernel().RunUntil(g.Kernel().Now().Add(20 * sim.Minute))
		if !finished {
			t.Fatalf("migration to %s never completed", target)
		}
		return g.Net().BytesSent() - before
	}
	out := migrate(other)
	back := migrate(firstNode)
	if s.Node().Name() != firstNode {
		t.Fatalf("session on %s, want %s", s.Node().Name(), firstNode)
	}
	if back*4 >= out {
		t.Errorf("return migration moved %d bytes vs %d outbound — "+
			"want ≥ 4x dedup from the origin's chunk cache", back, out)
	}
	if s.State() != StateRunning {
		t.Errorf("state = %q after double migration", s.State())
	}
}
