package core

import (
	"fmt"

	"vmgrid/internal/gis"
	"vmgrid/internal/rps"
	"vmgrid/internal/sim"
	"vmgrid/internal/telemetry"
)

// Monitor closes the paper's adaptation loop (§3.2, application
// perspective): per-node load sensors feed time series, predictors
// forecast near-future load, and the VM-future advertisements in the
// information service carry the *predicted* load — so FindFutures ranks
// placements by where load is going, not just where it is.
type Monitor struct {
	grid     *Grid
	interval sim.Duration
	sensors  map[string]*rps.Sensor
	models   map[string]*rps.AR
	running  bool
	next     sim.EventID
	ticks    int
}

// StartMonitor begins sampling every compute node at the given interval
// (the RPS host-load sensor cadence; 1 s matches the original toolkit).
func (g *Grid) StartMonitor(interval sim.Duration) (*Monitor, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("core: monitor interval %v", interval)
	}
	m := &Monitor{
		grid:     g,
		interval: interval,
		sensors:  make(map[string]*rps.Sensor),
		models:   make(map[string]*rps.AR),
	}
	for name, node := range g.nodes {
		if node.gk == nil {
			continue
		}
		host := node.host
		sensor, err := rps.NewSensor(g.k, interval, 512, func() float64 {
			return host.LoadAverage()
		})
		if err != nil {
			return nil, err
		}
		ar, err := rps.NewAR(8)
		if err != nil {
			return nil, err
		}
		// Tee every raw sensor reading into the telemetry store (no-op
		// while telemetry is off — g.telemetry is nil-safe).
		nodeName := name
		sensor.Tee(func(at sim.Time, v float64) {
			g.telemetry.Record("node.load_sample", v, telemetry.L("node", nodeName))
		})
		m.sensors[name] = sensor
		m.models[name] = ar
		sensor.Start()
	}
	m.running = true
	m.tick()
	g.monitor = m
	return m, nil
}

// Stop halts sampling and prediction.
func (m *Monitor) Stop() {
	if !m.running {
		return
	}
	m.running = false
	m.grid.k.Cancel(m.next)
	m.next = sim.EventID{}
	for _, s := range m.sensors {
		s.Stop()
	}
}

// PredictedLoad returns the current forecast for a node (falls back to
// the last sample until the model has enough history).
func (m *Monitor) PredictedLoad(node string) float64 {
	sensor, ok := m.sensors[node]
	if !ok {
		return 0
	}
	series := sensor.Series()
	model := m.models[node]
	if series.Len() >= 32 {
		if err := model.Train(series.Values()); err == nil {
			p := model.Predict()
			if p < 0 {
				p = 0
			}
			return p
		}
	}
	return series.Last()
}

// tick refreshes every compute node's VM-future record with the
// predicted load.
func (m *Monitor) tick() {
	if !m.running {
		return
	}
	m.ticks++
	for name, node := range m.grid.nodes {
		if node.gk == nil {
			continue
		}
		spec := node.host.Spec()
		_ = m.grid.info.Register(gis.KindVMFuture, name, map[string]any{
			gis.AttrSite:      node.site,
			gis.AttrSlots:     int64(node.slots),
			gis.AttrSpeed:     spec.CPU.Speed,
			gis.AttrMemBytes:  spec.MemBytes / 2,
			gis.AttrDiskBytes: spec.Disk.CapacityBytes,
			gis.AttrLoad:      m.PredictedLoad(name),
		}, 0)
	}
	m.next = m.grid.k.After(m.interval, m.tick)
}

// Ticks returns how many refresh rounds have run.
func (m *Monitor) Ticks() int { return m.ticks }
