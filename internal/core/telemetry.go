package core

import (
	"fmt"
	"sort"

	"vmgrid/internal/gis"
	"vmgrid/internal/sim"
	"vmgrid/internal/telemetry"
	"vmgrid/internal/vfs"
)

// EnableTelemetry attaches a telemetry collector to the grid: every
// scrape records per-node gauges (runnable processes, load average,
// free slots, crash state, and — once StartMonitor runs — the RPS
// predicted load), per-session gauges (VM slowdown, VFS cache hit
// rate, retry and transport-error counters), and supervisor lease ages,
// plus the grid tracer's metrics registry when a tracer is set. The
// standard SLO rules (see DefaultAlertRules) are installed, and alert
// firings are mirrored into GIS soft state as KindAlert entries so
// middleware discovers SLO violations the way it discovers hosts.
//
// Call EnableTelemetry after SetTracer (the tracer registry is captured
// here); supervisors and the monitor may be created before or after.
// The collector is returned for rule registration and export; it is
// also reachable via Telemetry. Scraping only reads fabric state, so
// enabling telemetry never changes simulation outcomes.
func (g *Grid) EnableTelemetry(cfg telemetry.Config) (*telemetry.Collector, error) {
	if g.telemetry != nil {
		return nil, fmt.Errorf("core: telemetry already enabled")
	}
	if cfg.Trace == nil {
		cfg.Trace = g.tracer
	}
	col, err := telemetry.NewCollector(g.k, cfg)
	if err != nil {
		return nil, err
	}
	g.telemetry = col

	col.AddSource(g.scrapeNodes)
	col.AddSource(g.scrapeSessions)
	col.AddSource(g.scrapeLeases)
	col.AddSource(g.scrapeGIS)
	col.AddSource(g.scrapeStaging)
	if g.tracer != nil {
		col.AttachRegistry("grid", g.tracer.Metrics())
	}

	// Mirror firings into the information service: alerts are soft state
	// like everything else in the GIS, keyed rule/series.
	col.OnFire(func(f telemetry.Firing) {
		_ = g.info.Register(gis.KindAlert, f.Rule+"/"+f.Series, map[string]any{
			"rule":   f.Rule,
			"series": f.Series,
			"value":  f.Value,
		}, 0)
		// An SLO alert is an incident trigger: freeze the flight
		// recorder's recent past as a bundle (no-op without a recorder).
		g.incidentNow("alert:"+f.Rule, f.Series)
	})
	col.OnResolve(func(f telemetry.Firing) {
		g.info.Deregister(gis.KindAlert, f.Rule+"/"+f.Series)
	})
	return col, nil
}

// Telemetry returns the grid's collector (nil when telemetry is off —
// and a nil collector is itself safe to use).
func (g *Grid) Telemetry() *telemetry.Collector { return g.telemetry }

// DefaultAlertRules installs the standard SLO rules against the
// supervisor heartbeat interval hb (pass 0 for the 2 s default):
//
//   - slowdown: mean VM slowdown over 30 s exceeds Figure 1's ≤10%
//     virtualization budget for 30 s.
//   - stale-lease: a session's lease has not been renewed for more than
//     2×heartbeat — the telemetry-side shadow of the supervisor's
//     lease-expiry failure detector (which waits for the 3×hb TTL).
//   - vfs-retry-storm: the per-session VFS retry counter grows faster
//     than 5/s over 10 s — a flapping link or dying server.
//   - split-brain-risk: minority-side registry writes are being
//     rejected — some node is partitioned from the GIS quorum and its
//     sessions are failover candidates. (The series only exists on
//     replicated grids, so the rule is inert otherwise.)
func (g *Grid) DefaultAlertRules(hb sim.Duration) error {
	col := g.telemetry
	if col == nil {
		return fmt.Errorf("core: default alert rules without telemetry")
	}
	if hb <= 0 {
		hb = 2 * sim.Second
	}
	rules := []struct{ name, expr string }{
		{"slowdown", "mean(session.slowdown, 30s) > 1.10 for 30s"},
		{"stale-lease", fmt.Sprintf("last(lease.age) > %g", (2 * hb).Seconds())},
		{"vfs-retry-storm", "rate(vfs.retries, 10s) > 5"},
		{"split-brain-risk", "rate(gis.minority_writes, 10s) > 0"},
	}
	for _, r := range rules {
		if err := col.AddRule(r.name, r.expr); err != nil {
			return err
		}
	}
	return nil
}

// NodeNames returns every node name, sorted — the deterministic scrape
// and display order.
func (g *Grid) NodeNames() []string {
	names := make([]string, 0, len(g.nodes))
	for name := range g.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LiveSessions returns the live sessions in name order.
func (g *Grid) LiveSessions() []*Session {
	out := make([]*Session, 0, len(g.live))
	for _, s := range g.live {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (g *Grid) scrapeNodes(r *telemetry.Recorder) {
	for _, name := range g.NodeNames() {
		n := g.nodes[name]
		lbl := telemetry.L("node", name)
		crashed := 0.0
		if n.crashed {
			crashed = 1
		}
		r.Record("node.crashed", crashed, lbl)
		if n.crashed {
			continue
		}
		r.Record("node.runnable", float64(n.host.Runnable()), lbl)
		r.Record("node.load", n.host.LoadAverage(), lbl)
		r.Record("node.slots", float64(n.slots), lbl)
		if g.monitor != nil {
			if _, ok := g.monitor.sensors[name]; ok {
				r.Record("node.predicted_load", g.monitor.PredictedLoad(name), lbl)
			}
		}
	}
}

func (g *Grid) scrapeSessions(r *telemetry.Recorder) {
	for _, s := range g.LiveSessions() {
		lbl := telemetry.L("sess", s.name)
		u := s.Usage()
		if u.GuestUserSeconds > 0 {
			r.Record("session.slowdown", u.CPUSeconds/u.GuestUserSeconds, lbl)
		}
		var hits, misses, retries, terrs uint64
		for _, c := range []*vfs.Client{s.dataClient, s.imageClient} {
			if c == nil {
				continue
			}
			hits += c.Hits()
			misses += c.Misses()
			retries += c.Retries()
			terrs += c.TransportErrors()
		}
		if hits+misses > 0 {
			r.Record("vfs.hit_rate", float64(hits)/float64(hits+misses), lbl)
		}
		r.Record("vfs.retries", float64(retries), lbl)
		r.Record("vfs.transport_errors", float64(terrs), lbl)
	}
}

func (g *Grid) scrapeLeases(r *telemetry.Recorder) {
	for _, sup := range g.supervisors {
		names := make([]string, 0, len(sup.charges))
		for name := range sup.charges {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := sup.charges[name]
			if c.lastRenew < 0 {
				continue
			}
			r.Record("lease.age", r.At().Sub(c.lastRenew).Seconds(), telemetry.L("sess", name))
			r.Record("session.epoch", float64(c.epoch), telemetry.L("sess", name))
		}
	}
}

// scrapeStaging records the chunked-transfer plane's grid-wide dedup
// counters when chunked staging is enabled: cache hits and misses (in
// chunks) and the payload bytes those hits kept off the wire. The
// series are cumulative counters, so rate() works on them.
func (g *Grid) scrapeStaging(r *telemetry.Recorder) {
	if g.chunks == nil {
		return
	}
	st := g.chunks.Stats()
	r.Record("staging.chunk.hits", float64(st.Hits))
	r.Record("staging.chunk.misses", float64(st.Misses))
	r.Record("staging.bytes_saved", float64(st.BytesSaved))
}

// scrapeGIS records replication health when the registry is clustered:
// per-replica staleness relative to the newest write anywhere
// (gis.replica.lag) and the running count of quorum-rejected writes
// (gis.minority_writes) that the split-brain-risk rule watches.
func (g *Grid) scrapeGIS(r *telemetry.Recorder) {
	cl := g.info.Cluster()
	if cl == nil {
		return
	}
	for i := 0; i < cl.Size(); i++ {
		r.Record("gis.replica.lag", cl.Lag(i).Seconds(), telemetry.L("replica", cl.Node(i)))
	}
	r.Record("gis.minority_writes", float64(cl.MinorityWrites()))
}
