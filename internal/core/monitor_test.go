package core

import (
	"testing"

	"vmgrid/internal/gis"
	"vmgrid/internal/sim"
	"vmgrid/internal/trace"

	"vmgrid/internal/hostos"
)

func TestMonitorRefreshesPredictedLoad(t *testing.T) {
	g := testbed(t)
	m, err := g.StartMonitor(sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	// Put persistent load on compute1 so its forecast rises.
	bgTrace := &trace.Trace{Step: sim.Second, Loads: []float64{2.0}}
	lp := hostos.NewLoadProcess(g.Node("compute1").Host(), "bg", bgTrace)
	lp.Start()

	_ = g.Kernel().RunUntil(sim.Time(2 * sim.Minute))
	if m.Ticks() < 100 {
		t.Fatalf("monitor ticked %d times in 2 minutes", m.Ticks())
	}

	loaded := m.PredictedLoad("compute1")
	idle := m.PredictedLoad("compute2")
	if loaded <= idle {
		t.Errorf("predicted load: loaded node %v <= idle node %v", loaded, idle)
	}

	// The information service reflects the forecasts...
	e1, err := g.Info().Lookup(gis.KindVMFuture, "compute1")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := g.Info().Lookup(gis.KindVMFuture, "compute2")
	if err != nil {
		t.Fatal(err)
	}
	if e1.Float(gis.AttrLoad) <= e2.Float(gis.AttrLoad) {
		t.Errorf("advertised load: %v <= %v", e1.Float(gis.AttrLoad), e2.Float(gis.AttrLoad))
	}

	// ...so a new session avoids the loaded node.
	s := startSession(t, g, baseConfig())
	if s.Node().Name() != "compute2" {
		t.Errorf("session placed on %s despite load forecast", s.Node().Name())
	}
}

func TestMonitorStopHaltsTicks(t *testing.T) {
	g := testbed(t)
	m, err := g.StartMonitor(sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(sim.Time(5 * sim.Second))
	m.Stop()
	ticks := m.Ticks()
	_ = g.Kernel().RunUntil(sim.Time(30 * sim.Second))
	if m.Ticks() != ticks {
		t.Error("monitor kept ticking after Stop")
	}
	m.Stop() // idempotent
}

func TestMonitorValidation(t *testing.T) {
	g := testbed(t)
	if _, err := g.StartMonitor(0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestMonitorQueryLanguageIntegration(t *testing.T) {
	// The monitor's records are queryable through the URGIS-style
	// language — the paper's resource-discovery flow end to end.
	g := testbed(t)
	m, err := g.StartMonitor(sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	_ = g.Kernel().RunUntil(sim.Time(10 * sim.Second))

	rows, err := g.Info().QueryString(
		`select vm-future where slots >= 1 and site == "nwu" order by load limit 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Entries[0].Name == "" {
		t.Error("empty winner")
	}
}
