package core

import (
	"errors"
	"testing"

	"vmgrid/internal/guest"
	"vmgrid/internal/placement"
	"vmgrid/internal/sim"
)

func TestCreateSessionNodeHint(t *testing.T) {
	g := testbed(t)
	var sess *Session
	ready := false
	if _, err := g.CreateSession(baseConfig(), func(s *Session, err error) {
		if err != nil {
			t.Errorf("create: %v", err)
		}
		sess, ready = s, true
	}, WithNodeHint("compute2")); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(30 * sim.Minute))
	if !ready {
		t.Fatal("session never ready")
	}
	if got := sess.Node().Name(); got != "compute2" {
		t.Errorf("hinted session landed on %q, want compute2", got)
	}
}

func TestCreateSessionPlacerSpreads(t *testing.T) {
	// Two sessions under least-loaded must not stack on one node while
	// an idle equal candidate exists.
	g := testbed(t)
	s1 := startSessionWith(t, g, WithPlacer(placement.LeastLoaded{}))
	if err := s1.Run(guest.MicroTask(600), nil); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(30 * sim.Second))
	s2 := startSessionWith(t, g, WithPlacer(placement.LeastLoaded{}))
	if s1.Node() == s2.Node() {
		t.Errorf("least-loaded stacked both sessions on %q", s1.Node().Name())
	}
}

func startSessionWith(t *testing.T, g *Grid, opts ...CreateOption) *Session {
	t.Helper()
	var sess *Session
	var serr error
	ready := false
	if _, err := g.CreateSession(baseConfig(), func(s *Session, err error) {
		sess, serr, ready = s, err, true
	}, opts...); err != nil {
		t.Fatal(err)
	}
	stepUntil(g, 30*sim.Minute, func() bool { return ready })
	if !ready || serr != nil {
		t.Fatalf("session setup: ready=%v err=%v", ready, serr)
	}
	return sess
}

// TestFencedMigrationSourceCrashOneIncarnation: the source node dies
// while the fenced migration is staging state to the target. The
// migration must abort — never re-instantiate on the target from the
// half-staged files — leaving exactly one (crashed) incarnation and no
// leaked slot on the target.
func TestFencedMigrationSourceCrashOneIncarnation(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	k := g.Kernel()

	var migErr error
	migDone := false
	if err := s.MigrateFenced("compute2", func(err error) { migErr, migDone = err, true }); err != nil {
		t.Fatal(err)
	}
	_ = k.RunUntil(k.Now().Add(5 * sim.Second))
	if err := g.CrashNode("compute1"); err != nil {
		t.Fatal(err)
	}
	stepUntil(g, sim.Hour, func() bool { return migDone })
	if !migDone {
		t.Fatal("migration callback never fired after source crash")
	}
	if migErr == nil {
		t.Fatal("migration reported success after its source crashed mid-transfer")
	}
	if s.State() == StateRunning {
		t.Errorf("state = %q; a crashed source cannot leave the session live", s.State())
	}
	if s.Node() != nil && s.Node().Name() == "compute2" {
		t.Errorf("session re-homed to the target despite the aborted migration")
	}
	// The aborted migration must not hold a slot on the target.
	if got := g.Node("compute2").slots; got != 2 {
		t.Errorf("target slots = %d after aborted migration, want 2", got)
	}
}

// TestFencedMigrationTargetCrashOneIncarnation: the target dies while
// state is staging toward it. The migration must fail without killing
// the (suspended) source incarnation, and no second incarnation may
// exist anywhere.
func TestFencedMigrationTargetCrashOneIncarnation(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())
	k := g.Kernel()

	var migErr error
	migDone := false
	if err := s.MigrateFenced("compute2", func(err error) { migErr, migDone = err, true }); err != nil {
		t.Fatal(err)
	}
	_ = k.RunUntil(k.Now().Add(5 * sim.Second))
	if err := g.CrashNode("compute2"); err != nil {
		t.Fatal(err)
	}
	stepUntil(g, sim.Hour, func() bool { return migDone })
	if !migDone {
		t.Fatal("migration callback never fired after target crash")
	}
	if migErr == nil {
		t.Fatal("migration reported success onto a crashed target")
	}
	if s.State() == StateDead {
		t.Errorf("session died with its source intact")
	}
	if s.Node() != nil && s.Node().Name() == "compute2" && s.State() == StateRunning {
		t.Errorf("session reports live on the crashed target")
	}
}

// TestSupervisedTaskSurvivesFencedMigration is the carried-epoch
// contract: a balancer-style fenced migration bumps the session's
// fencing epoch mid-task, but the task — submitted under the old epoch
// by the same one true incarnation — must complete normally, not be
// fenced as a zombie result.
func TestSupervisedTaskSurvivesFencedMigration(t *testing.T) {
	g := testbed(t)
	s := startSession(t, g, baseConfig())

	// A long checkpoint interval keeps the periodic checkpoint (which
	// suspends the VM) out of the migration window; the balancer's
	// fabric skips mid-checkpoint sessions the same way.
	sup, err := NewSupervisor(g, SupervisorConfig{StableNode: "data", CheckpointInterval: 30 * sim.Minute})
	if err != nil {
		t.Fatal(err)
	}
	adopted := false
	if err := sup.Adopt(s, func(err error) {
		if err != nil {
			t.Errorf("adopt: %v", err)
		}
		adopted = true
	}); err != nil {
		t.Fatal(err)
	}
	stepUntil(g, sim.Hour, func() bool { return adopted })
	if !adopted {
		t.Fatal("baseline checkpoint never committed")
	}

	var res guest.TaskResult
	taskDone := false
	if err := sup.Run(s, guest.MicroTask(300), func(r guest.TaskResult) {
		res, taskDone = r, true
	}); err != nil {
		t.Fatal(err)
	}
	_ = g.Kernel().RunUntil(g.Kernel().Now().Add(30 * sim.Second))

	epochBefore := s.Epoch()
	var migErr error
	migDone := false
	if err := s.MigrateFenced("compute2", func(err error) { migErr, migDone = err, true }); err != nil {
		t.Fatal(err)
	}
	stepUntil(g, sim.Hour, func() bool { return migDone })
	if !migDone || migErr != nil {
		t.Fatalf("fenced migration: done=%v err=%v", migDone, migErr)
	}
	if s.Epoch() <= epochBefore {
		t.Errorf("epoch %d not bumped past %d by the fenced migration", s.Epoch(), epochBefore)
	}
	if got := s.Node().Name(); got != "compute2" {
		t.Errorf("session on %q after migration, want compute2", got)
	}

	stepUntil(g, 2*sim.Hour, func() bool { return taskDone })
	if !taskDone {
		t.Fatal("task never completed after the fenced migration")
	}
	if res.Err != nil {
		t.Fatalf("task failed across the migration: %v", res.Err)
	}
	st := sup.Stats()
	if st.FencedResults != 0 {
		t.Errorf("FencedResults = %d; the migrated incarnation's own result was fenced", st.FencedResults)
	}
	if st.Crashes != 0 || st.Recoveries != 0 {
		t.Errorf("stats = %+v; migration must not register as a failure", st)
	}
	sup.Stop()
}

// TestMigrateFencedRefusedWithoutQuorum: against a replicated registry
// with the front end partitioned onto the minority side, the fenced
// migration must refuse up front — no state moves, the session stays
// put.
func TestMigrateFencedRefusedWithoutQuorum(t *testing.T) {
	g := testbed(t)
	replicate(t, g)
	s := startSession(t, g, baseConfig())
	// Cut the front end (the epoch bump's origin) off from the other
	// replicas: its quorum write must fail closed.
	if err := g.Net().SetNodeUp("front", false); err != nil {
		t.Fatal(err)
	}
	err := s.MigrateFenced("compute2", nil)
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
	if s.Node().Name() != "compute1" || s.migrating {
		t.Errorf("refused migration moved state: node=%s migrating=%v", s.Node().Name(), s.migrating)
	}
}

// TestBalancerRelievesHotspotEndToEnd drives the real grid fabric: two
// busy sessions packed on one node trip the hysteresis detector and the
// lowest-priority one is live-migrated to the idle node.
func TestBalancerRelievesHotspotEndToEnd(t *testing.T) {
	g := testbed(t)
	important := startSessionWith(t, g, WithNodeHint("compute1"), WithPriority(10))
	cheap := startSessionWith(t, g, WithNodeHint("compute1"), WithPriority(0))
	if important.Node().Name() != "compute1" || cheap.Node().Name() != "compute1" {
		t.Fatalf("setup: sessions on %s/%s, want both on compute1",
			important.Node().Name(), cheap.Node().Name())
	}
	for _, s := range []*Session{important, cheap} {
		if err := s.Run(guest.MicroTask(1800), nil); err != nil {
			t.Fatal(err)
		}
	}
	bal, err := g.StartBalancer(BalancerConfig{
		BalancerConfig: placement.BalancerConfig{
			Interval: 5 * sim.Second, HotLoad: 1.5, ClearLoad: 0.75, Sustain: 2,
		},
		Placer: placement.LeastLoaded{},
	})
	if err != nil {
		t.Fatal(err)
	}
	stepUntil(g, 10*sim.Minute, func() bool {
		return cheap.Node().Name() == "compute2" || important.Node().Name() == "compute2"
	})
	bal.Stop()
	if got := bal.Stats().Migrations; got < 1 {
		t.Fatalf("balancer migrations = %d, want >= 1 (stats %+v)", got, bal.Stats())
	}
	if got := cheap.Node().Name(); got != "compute2" {
		t.Errorf("relieved session on %q, want the low-priority one on compute2 (important on %q)",
			got, important.Node().Name())
	}
	if got := important.Node().Name(); got != "compute1" {
		t.Errorf("high-priority session migrated (now on %q); eviction order ignored priority", got)
	}
	if cheap.State() != StateRunning {
		t.Errorf("migrated session state = %q", cheap.State())
	}
}
