package storage

import (
	"errors"
	"testing"

	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
)

func archiveFixture(t *testing.T) (*sim.Kernel, *Store, *Archive) {
	t.Helper()
	k := sim.NewKernel(1)
	h, err := hostos.New(k, hw.ReferenceMachine("n1"))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(h)
	return k, s, NewArchive(k)
}

func TestArchiveStoreAndRecall(t *testing.T) {
	k, s, a := archiveFixture(t)
	const size = 256 << 20
	if err := s.Create("old-image.disk", size); err != nil {
		t.Fatal(err)
	}
	var storeErr error = errors.New("pending")
	if err := a.Store(s, "old-image.disk", func(err error) { storeErr = err }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if storeErr != nil {
		t.Fatalf("store: %v", storeErr)
	}
	if s.Has("old-image.disk") {
		t.Error("online copy not deleted after archiving")
	}
	if !a.Has("old-image.disk") {
		t.Error("archive does not hold the image")
	}
	if a.Mounts() == 0 {
		t.Error("no tape mount recorded")
	}

	// Recall takes at least the mount latency plus streaming time.
	start := k.Now()
	var recallAt sim.Time = -1
	if err := a.Recall(s, "old-image.disk", func(err error) {
		if err != nil {
			t.Errorf("recall: %v", err)
		}
		recallAt = k.Now()
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if recallAt < 0 {
		t.Fatal("recall never completed")
	}
	elapsed := recallAt.Sub(start).Seconds()
	minExpected := TapeMountLatency.Seconds() + float64(size)/TapeBandwidthBps
	if elapsed < minExpected*0.9 {
		t.Errorf("recall took %.1fs, tape physics demand ≥ %.1fs", elapsed, minExpected)
	}
	if !s.Has("old-image.disk") {
		t.Error("recalled image missing from store")
	}
	if a.Has("old-image.disk") {
		t.Error("archive still lists recalled image")
	}
}

func TestArchiveErrors(t *testing.T) {
	k, s, a := archiveFixture(t)
	if err := a.Store(s, "missing", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("store missing = %v", err)
	}
	if err := a.Recall(s, "missing", nil); !errors.Is(err, ErrNotArchived) {
		t.Errorf("recall missing = %v", err)
	}
	if err := a.Remove("missing"); !errors.Is(err, ErrNotArchived) {
		t.Errorf("remove missing = %v", err)
	}

	if err := s.Create("img", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := a.Store(s, "img", nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	// Double-archive and recall-onto-existing both fail.
	if err := s.Create("img", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := a.Store(s, "img", nil); err == nil {
		t.Error("double archive accepted")
	}
	if err := a.Recall(s, "img", nil); !errors.Is(err, ErrExists) {
		t.Errorf("recall onto existing = %v", err)
	}
}

func TestArchiveRemoveEndsLifeCycle(t *testing.T) {
	k, s, a := archiveFixture(t)
	if err := s.Create("img", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := a.Store(s, "img", nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if err := a.Remove("img"); err != nil {
		t.Fatal(err)
	}
	if a.Has("img") || len(a.Files()) != 0 {
		t.Error("image persists after removal")
	}
}

func TestArchiveDriveSerializes(t *testing.T) {
	k, s, a := archiveFixture(t)
	for _, name := range []string{"a", "b"} {
		if err := s.Create(name, 64<<20); err != nil {
			t.Fatal(err)
		}
	}
	var doneA, doneB sim.Time
	if err := a.Store(s, "a", func(error) { doneA = k.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := a.Store(s, "b", func(error) { doneB = k.Now() }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	// Two mounts cannot overlap on one drive.
	if gap := doneB.Sub(doneA); gap < TapeMountLatency {
		t.Errorf("second archive finished %v after first; drive not serialized", gap)
	}
}
