package storage

import (
	"errors"
	"fmt"
	"sort"

	"vmgrid/internal/sim"
)

// The paper's life-cycle narrative ends with "infrequently run virtual
// machine images will be migrated to tape. The life cycle of a virtual
// machine ends when the image is removed from permanent storage." This
// file implements that tier: a tape archive with mount latency and
// streaming bandwidth, plus an idle-image policy.

// Tape parameters for a period library (DLT-class drive).
const (
	// TapeMountLatency is the robot fetch + mount + seek time.
	TapeMountLatency = 45 * sim.Second
	// TapeBandwidthBps is the streaming rate.
	TapeBandwidthBps = 6e6
)

// ErrNotArchived is returned when recalling a file the archive lacks.
var ErrNotArchived = errors.New("storage: not archived")

// Archive is a tape library holding evicted images.
type Archive struct {
	k     *sim.Kernel
	files map[string]int64
	// busyUntil serializes the single drive.
	busyUntil sim.Time

	mounts uint64
	bytes  uint64
}

// NewArchive creates an empty tape library.
func NewArchive(k *sim.Kernel) *Archive {
	return &Archive{k: k, files: make(map[string]int64)}
}

// Has reports whether a file is on tape.
func (a *Archive) Has(name string) bool {
	_, ok := a.files[name]
	return ok
}

// Files lists archived names, sorted.
func (a *Archive) Files() []string {
	out := make([]string, 0, len(a.files))
	for name := range a.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Mounts returns how many tape mounts have been performed.
func (a *Archive) Mounts() uint64 { return a.mounts }

// transfer schedules a tape operation of size bytes (mount + stream),
// serialized on the one drive, and calls done when it finishes.
func (a *Archive) transfer(size int64, done func()) {
	start := a.k.Now()
	if a.busyUntil > start {
		start = a.busyUntil
	}
	end := start.Add(TapeMountLatency).Add(sim.DurationOf(float64(size) / TapeBandwidthBps))
	a.busyUntil = end
	a.mounts++
	a.bytes += uint64(size)
	a.k.At(end, func() {
		if done != nil {
			done()
		}
	})
}

// Store archives a file from a node's store: the bytes stream from disk
// to tape, then the online copy is deleted. done receives any error.
func (a *Archive) Store(src *Store, name string, done func(error)) error {
	size, err := src.Size(name)
	if err != nil {
		return err
	}
	if a.Has(name) {
		return fmt.Errorf("storage: %q already archived", name)
	}
	f, err := src.Open(name)
	if err != nil {
		return err
	}
	// Read the file once (sequential) and stream it to tape; the slower
	// device dominates, so charge both and complete on the later one.
	f.ReadSequential(0, size, func() {
		a.transfer(size, func() {
			delErr := src.Delete(name)
			a.files[name] = size
			if done != nil {
				done(delErr)
			}
		})
	})
	return nil
}

// Recall restores a file from tape into a store. done receives any
// error.
func (a *Archive) Recall(dst *Store, name string, done func(error)) error {
	size, ok := a.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotArchived, name)
	}
	if dst.Has(name) {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	a.transfer(size, func() {
		if err := dst.Create(name, size); err != nil {
			if done != nil {
				done(err)
			}
			return
		}
		f, err := dst.Open(name)
		if err != nil {
			if done != nil {
				done(err)
			}
			return
		}
		f.Write(0, size, func() {
			delete(a.files, name)
			if done != nil {
				done(nil)
			}
		})
	})
	return nil
}

// Remove deletes an archived image permanently — the end of a VM's life
// cycle.
func (a *Archive) Remove(name string) error {
	if !a.Has(name) {
		return fmt.Errorf("%w: %s", ErrNotArchived, name)
	}
	delete(a.files, name)
	return nil
}
