package storage

import (
	"errors"
	"fmt"
	"sort"

	"vmgrid/internal/chunk"
	"vmgrid/internal/sim"
)

// The paper's life-cycle narrative ends with "infrequently run virtual
// machine images will be migrated to tape. The life cycle of a virtual
// machine ends when the image is removed from permanent storage." This
// file implements that tier: a tape archive with mount latency and
// streaming bandwidth, plus an idle-image policy.

// Tape parameters for a period library (DLT-class drive).
const (
	// TapeMountLatency is the robot fetch + mount + seek time.
	TapeMountLatency = 45 * sim.Second
	// TapeBandwidthBps is the streaming rate.
	TapeBandwidthBps = 6e6
)

// ErrNotArchived is returned when recalling a file the archive lacks.
var ErrNotArchived = errors.New("storage: not archived")

// Archive is a tape library holding evicted images.
type Archive struct {
	k     *sim.Kernel
	files map[string]int64
	// busyUntil serializes the single drive.
	busyUntil sim.Time

	mounts uint64
	bytes  uint64

	// Chunk-plane state: the manifest each archived file carried and a
	// refcount of the chunks on tape. Files archived from plane-attached
	// stores stream only the chunks the tape does not already hold, and
	// recalls skip chunks the destination node's cache still names.
	manifests map[string][]chunk.Key
	held      map[chunk.Key]int
}

// NewArchive creates an empty tape library.
func NewArchive(k *sim.Kernel) *Archive {
	return &Archive{
		k:         k,
		files:     make(map[string]int64),
		manifests: make(map[string][]chunk.Key),
		held:      make(map[chunk.Key]int),
	}
}

// Has reports whether a file is on tape.
func (a *Archive) Has(name string) bool {
	_, ok := a.files[name]
	return ok
}

// Files lists archived names, sorted.
func (a *Archive) Files() []string {
	out := make([]string, 0, len(a.files))
	for name := range a.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Mounts returns how many tape mounts have been performed.
func (a *Archive) Mounts() uint64 { return a.mounts }

// transfer schedules a tape operation of size bytes (mount + stream),
// serialized on the one drive, and calls done when it finishes.
func (a *Archive) transfer(size int64, done func()) {
	start := a.k.Now()
	if a.busyUntil > start {
		start = a.busyUntil
	}
	end := start.Add(TapeMountLatency).Add(sim.DurationOf(float64(size) / TapeBandwidthBps))
	a.busyUntil = end
	a.mounts++
	a.bytes += uint64(size)
	a.k.At(end, func() {
		if done != nil {
			done()
		}
	})
}

// Store archives a file from a node's store: the bytes stream from disk
// to tape, then the online copy is deleted. done receives any error.
// With a chunk plane on the source store, only chunks the tape does not
// already hold are read and streamed — archiving the fifth copy of a
// mostly-unchanged image pays for its delta, not its size.
func (a *Archive) Store(src *Store, name string, done func(error)) error {
	size, err := src.Size(name)
	if err != nil {
		return err
	}
	if a.Has(name) {
		return fmt.Errorf("storage: %q already archived", name)
	}
	f, err := src.Open(name)
	if err != nil {
		return err
	}
	stream := size
	var keys []chunk.Key
	if plane := src.ChunkPlane(); plane != nil {
		keys = src.ChunkKeys(name)
		stream = 0
		for i, k := range keys {
			if a.held[k] == 0 {
				_, n := plane.Span(size, i)
				stream += n
			}
		}
	}
	commit := func() {
		a.transfer(stream, func() {
			delErr := src.Delete(name)
			a.files[name] = size
			if keys != nil {
				a.manifests[name] = keys
				for _, k := range keys {
					a.held[k]++
				}
			}
			if done != nil {
				done(delErr)
			}
		})
	}
	// Read what must stream (sequential) and send it to tape; the
	// slower device dominates, so charge both and complete on the later
	// one. Deduplicated chunks are neither read nor streamed.
	if stream == 0 {
		commit()
		return nil
	}
	f.ReadSequential(0, stream, commit)
	return nil
}

// Recall restores a file from tape into a store. done receives any
// error. When the file was archived with a chunk manifest and the
// destination store shares a plane, chunks the destination node still
// holds are materialized by reference and only the rest stream off tape
// (the mount is paid regardless).
func (a *Archive) Recall(dst *Store, name string, done func(error)) error {
	size, ok := a.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotArchived, name)
	}
	if dst.Has(name) {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	finish := func(err error) {
		if done != nil {
			done(err)
		}
	}
	keys := a.manifests[name]
	plane := dst.ChunkPlane()
	stream := size
	if plane != nil && keys != nil {
		cache := plane.CacheFor(dst.Host().Name())
		stream = 0
		for i, k := range keys {
			_, n := plane.Span(size, i)
			if !cache.Lookup(k, n) {
				stream += n
			}
		}
	}
	forget := func() {
		delete(a.files, name)
		if m := a.manifests[name]; m != nil {
			delete(a.manifests, name)
			for _, k := range m {
				if a.held[k]--; a.held[k] <= 0 {
					delete(a.held, k)
				}
			}
		}
	}
	a.transfer(stream, func() {
		var err error
		if plane != nil && keys != nil {
			err = dst.CreateWithChunks(name, size, keys)
		} else {
			err = dst.Create(name, size)
		}
		if err != nil {
			finish(err)
			return
		}
		if stream == 0 {
			forget()
			finish(nil)
			return
		}
		f, err := dst.Open(name)
		if err != nil {
			finish(err)
			return
		}
		// Only the streamed bytes are written to disk; deduplicated
		// chunks are references to content the node already holds.
		f.store.host.Cache().Write(f.store.host.Kernel(), f.Name(), 0, stream, func() {
			forget()
			finish(nil)
		})
	})
	return nil
}

// Remove deletes an archived image permanently — the end of a VM's life
// cycle.
func (a *Archive) Remove(name string) error {
	if !a.Has(name) {
		return fmt.Errorf("%w: %s", ErrNotArchived, name)
	}
	delete(a.files, name)
	if m := a.manifests[name]; m != nil {
		delete(a.manifests, name)
		for _, k := range m {
			if a.held[k]--; a.held[k] <= 0 {
				delete(a.held, k)
			}
		}
	}
	return nil
}
