// Package storage models the files that make a virtual machine portable:
// base disk images, copy-on-write difference files, memory (suspend)
// snapshots, and the per-host stores that hold them. The paper's central
// abstraction — "a VM is a process plus files" — lives here: everything a
// VM is can be copied, transferred, cached, and instantiated elsewhere.
package storage

import (
	"errors"
	"fmt"
	"sort"

	"vmgrid/internal/hostos"
)

// Sentinel errors callers match with errors.Is.
var (
	ErrNotFound = errors.New("storage: file not found")
	ErrExists   = errors.New("storage: file already exists")
)

// CopyChunk is the unit of Store.Copy: each chunk pays one read request
// (with seek) and one streaming write, which reproduces the effective
// single-digit-MB/s throughput of a same-disk file copy — the mechanism
// behind Table 2's persistent-disk startup times.
const CopyChunk int64 = 128 * 1024

// Backend is random-access block storage for one file, with completion
// callbacks in virtual time. Local files and remote (grid virtual file
// system) files both implement it, so a virtual disk does not care where
// its image lives — the property the paper calls site independence.
type Backend interface {
	// Name identifies the file for diagnostics.
	Name() string
	// Size returns the file length in bytes.
	Size() int64
	// Read fetches [off, off+size) and calls done when available.
	Read(off, size int64, done func())
	// ReadSequential is Read for streaming patterns (readahead applies).
	ReadSequential(off, size int64, done func())
	// Write stores [off, off+size) and calls done when durable.
	Write(off, size int64, done func())
}

// Store is a host-local file namespace backed by the host's disk through
// its buffer cache.
type Store struct {
	host  *hostos.Host
	files map[string]int64
}

// NewStore creates an empty store on h.
func NewStore(h *hostos.Host) *Store {
	return &Store{host: h, files: make(map[string]int64)}
}

// Host returns the owning host.
func (s *Store) Host() *hostos.Host { return s.host }

// Create adds an empty-to-size file without charging I/O (the bytes are
// assumed pre-existing, e.g. an archived image).
func (s *Store) Create(name string, size int64) error {
	if name == "" {
		return fmt.Errorf("storage: create with empty name")
	}
	if size < 0 {
		return fmt.Errorf("storage: create %q with negative size", name)
	}
	if _, ok := s.files[name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	s.files[name] = size
	return nil
}

// Has reports whether the file exists.
func (s *Store) Has(name string) bool {
	_, ok := s.files[name]
	return ok
}

// Size returns the file's length.
func (s *Store) Size(name string) (int64, error) {
	sz, ok := s.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return sz, nil
}

// Delete removes the file and drops its cached pages.
func (s *Store) Delete(name string) error {
	if _, ok := s.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(s.files, name)
	s.host.Cache().Invalidate(s.qualify(name))
	return nil
}

// Files lists stored file names in sorted order.
func (s *Store) Files() []string {
	out := make([]string, 0, len(s.files))
	for name := range s.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// qualify namespaces cache keys per host so two stores on different
// hosts never share pages.
func (s *Store) qualify(name string) string {
	return s.host.Name() + ":" + name
}

// Open returns a Backend for an existing file.
func (s *Store) Open(name string) (*LocalFile, error) {
	if _, ok := s.files[name]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return &LocalFile{store: s, name: name, qname: s.qualify(name)}, nil
}

// OpenOrCreate returns a Backend, creating a zero-length file if needed.
func (s *Store) OpenOrCreate(name string) (*LocalFile, error) {
	if !s.Has(name) {
		if err := s.Create(name, 0); err != nil {
			return nil, err
		}
	}
	return s.Open(name)
}

// Copy duplicates src into dst on the same store, chunk by chunk through
// the buffer cache, invoking done when the last chunk is durable. The
// destination must not exist. This is the explicit whole-state transfer
// of Table 2's "Persistent" rows.
func (s *Store) Copy(src, dst string, done func()) error {
	size, ok := s.files[src]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, src)
	}
	if _, ok := s.files[dst]; ok {
		return fmt.Errorf("%w: %s", ErrExists, dst)
	}
	s.files[dst] = size
	k := s.host.Kernel()
	cache := s.host.Cache()
	var step func(off int64)
	step = func(off int64) {
		if off >= size {
			if done != nil {
				done()
			}
			return
		}
		n := CopyChunk
		if off+n > size {
			n = size - off
		}
		cache.Read(k, s.qualify(src), off, n, func() {
			cache.WriteSequential(k, s.qualify(dst), off, n, func() {
				step(off + n)
			})
		})
	}
	step(0)
	return nil
}

// LocalFile is a Backend over a Store file, charged to the host disk
// through the buffer cache.
type LocalFile struct {
	store *Store
	name  string
	qname string // host-qualified cache key, built once at Open
}

var _ Backend = (*LocalFile)(nil)

// Name returns the file name qualified by its host. The qualified form
// doubles as the buffer-cache key of every Read/Write, so it is built
// once at Open instead of concatenated per operation.
func (f *LocalFile) Name() string { return f.qname }

// Size returns the current file length.
func (f *LocalFile) Size() int64 { return f.store.files[f.name] }

// Read implements Backend.
func (f *LocalFile) Read(off, size int64, done func()) {
	f.store.host.Cache().Read(f.store.host.Kernel(), f.Name(), off, size, done)
}

// ReadSequential implements Backend.
func (f *LocalFile) ReadSequential(off, size int64, done func()) {
	f.store.host.Cache().ReadSequential(f.store.host.Kernel(), f.Name(), off, size, done)
}

// Write implements Backend, growing the file as needed.
func (f *LocalFile) Write(off, size int64, done func()) {
	if end := off + size; end > f.store.files[f.name] {
		f.store.files[f.name] = end
	}
	f.store.host.Cache().Write(f.store.host.Kernel(), f.Name(), off, size, done)
}
