// Package storage models the files that make a virtual machine portable:
// base disk images, copy-on-write difference files, memory (suspend)
// snapshots, and the per-host stores that hold them. The paper's central
// abstraction — "a VM is a process plus files" — lives here: everything a
// VM is can be copied, transferred, cached, and instantiated elsewhere.
package storage

import (
	"errors"
	"fmt"
	"sort"

	"vmgrid/internal/chunk"
	"vmgrid/internal/hostos"
)

// Sentinel errors callers match with errors.Is.
var (
	ErrNotFound = errors.New("storage: file not found")
	ErrExists   = errors.New("storage: file already exists")
)

// CopyChunk is the unit of Store.Copy: each chunk pays one read request
// (with seek) and one streaming write, which reproduces the effective
// single-digit-MB/s throughput of a same-disk file copy — the mechanism
// behind Table 2's persistent-disk startup times.
const CopyChunk int64 = 128 * 1024

// Backend is random-access block storage for one file, with completion
// callbacks in virtual time. Local files and remote (grid virtual file
// system) files both implement it, so a virtual disk does not care where
// its image lives — the property the paper calls site independence.
type Backend interface {
	// Name identifies the file for diagnostics.
	Name() string
	// Size returns the file length in bytes.
	Size() int64
	// Read fetches [off, off+size) and calls done when available.
	Read(off, size int64, done func())
	// ReadSequential is Read for streaming patterns (readahead applies).
	ReadSequential(off, size int64, done func())
	// Write stores [off, off+size) and calls done when durable.
	Write(off, size int64, done func())
}

// Store is a host-local file namespace backed by the host's disk through
// its buffer cache.
type Store struct {
	host  *hostos.Host
	files map[string]int64

	// plane, when attached, gives every file a content-key manifest so
	// staging paths can dedup against the node's chunk cache. nil (the
	// default) keeps the pre-chunking behavior exactly.
	plane  *chunk.Plane
	chunks map[string][]chunk.Key
}

// NewStore creates an empty store on h.
func NewStore(h *hostos.Host) *Store {
	return &Store{host: h, files: make(map[string]int64)}
}

// Host returns the owning host.
func (s *Store) Host() *hostos.Host { return s.host }

// SetChunkPlane attaches the content-addressed chunk plane: existing
// files get fresh manifests (their content predates the plane, so the
// keys are newly minted) and every chunk is recorded in the node's
// cache. Files are processed in sorted-name order so key assignment is
// deterministic regardless of map layout.
func (s *Store) SetChunkPlane(p *chunk.Plane) {
	s.plane = p
	s.chunks = make(map[string][]chunk.Key, len(s.files))
	for _, name := range s.Files() {
		s.mintManifest(name)
	}
}

// ChunkPlane returns the attached plane, or nil.
func (s *Store) ChunkPlane() *chunk.Plane { return s.plane }

// ChunkKeys returns a snapshot of the file's chunk manifest (nil when
// no plane is attached or the file is unknown).
func (s *Store) ChunkKeys(name string) []chunk.Key {
	keys, ok := s.chunks[name]
	if !ok {
		return nil
	}
	return append([]chunk.Key(nil), keys...)
}

// cache returns this node's chunk cache.
func (s *Store) cache() *chunk.Cache { return s.plane.CacheFor(s.host.Name()) }

// mintManifest issues fresh keys for every chunk of the file and
// records them as held by this node.
func (s *Store) mintManifest(name string) {
	size := s.files[name]
	total := s.plane.Count(size)
	keys := make([]chunk.Key, total)
	cache := s.cache()
	for i := range keys {
		_, n := s.plane.Span(size, i)
		keys[i] = s.plane.Mint()
		cache.Add(keys[i], n)
	}
	s.chunks[name] = keys
}

// touchChunks re-mints the keys of every chunk overlapping a guest
// write to [off, off+n): the content changed, so its old identity is
// gone. Chunks added by growth but outside the written range keep the
// reserved zero key (file holes are all-zero and legitimately dedup
// against each other).
func (s *Store) touchChunks(name string, off, n int64) {
	if s.plane == nil || n <= 0 {
		return
	}
	size := s.files[name]
	total := s.plane.Count(size)
	keys := s.chunks[name]
	for len(keys) < total {
		keys = append(keys, 0)
	}
	cb := s.plane.ChunkBytes()
	cache := s.cache()
	last := int((off + n - 1) / cb)
	for i := int(off / cb); i <= last && i < total; i++ {
		_, cn := s.plane.Span(size, i)
		keys[i] = s.plane.Mint()
		cache.Add(keys[i], cn)
	}
	s.chunks[name] = keys
}

// adoptChunk records that chunk i of the file holds key: content copied
// from elsewhere keeps its identity instead of minting a new one. The
// file grows to cover the chunk. Used by the staging paths both for
// transferred chunks and for dedup hits materialized by reference.
func (s *Store) adoptChunk(name string, i int, key chunk.Key, off, n int64) {
	if end := off + n; end > s.files[name] {
		s.files[name] = end
	}
	keys := s.chunks[name]
	for len(keys) <= i {
		keys = append(keys, 0)
	}
	keys[i] = key
	s.chunks[name] = keys
	s.cache().Add(key, n)
}

// AdoptChunk is adoptChunk for dedup hits: no bytes move and no I/O is
// charged — the node already holds the content, and materializing it
// into the file is a copy-on-write reference. [off, off+n) is the
// chunk's extent in the destination file.
func (s *Store) AdoptChunk(name string, i int, key chunk.Key, off, n int64) {
	s.adoptChunk(name, i, key, off, n)
}

// CreateWithChunks creates a file carrying an existing manifest (a tape
// recall landing content whose identity is known), seeding the node
// cache with every key.
func (s *Store) CreateWithChunks(name string, size int64, keys []chunk.Key) error {
	if err := s.Create(name, 0); err != nil {
		return err
	}
	if s.plane == nil {
		s.files[name] = size
		return nil
	}
	s.files[name] = size
	adopted := append([]chunk.Key(nil), keys...)
	cache := s.cache()
	for i, k := range adopted {
		_, n := s.plane.Span(size, i)
		cache.Add(k, n)
	}
	s.chunks[name] = adopted
	return nil
}

// Create adds an empty-to-size file without charging I/O (the bytes are
// assumed pre-existing, e.g. an archived image).
func (s *Store) Create(name string, size int64) error {
	if name == "" {
		return fmt.Errorf("storage: create with empty name")
	}
	if size < 0 {
		return fmt.Errorf("storage: create %q with negative size", name)
	}
	if _, ok := s.files[name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	s.files[name] = size
	if s.plane != nil {
		s.mintManifest(name)
	}
	return nil
}

// Has reports whether the file exists.
func (s *Store) Has(name string) bool {
	_, ok := s.files[name]
	return ok
}

// Size returns the file's length.
func (s *Store) Size(name string) (int64, error) {
	sz, ok := s.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return sz, nil
}

// Delete removes the file and drops its cached pages. The node's chunk
// cache keeps the file's keys: the content blocks outlive the name in
// the content store, which is what makes cross-session dedup work.
func (s *Store) Delete(name string) error {
	if _, ok := s.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(s.files, name)
	delete(s.chunks, name)
	s.host.Cache().Invalidate(s.qualify(name))
	return nil
}

// Files lists stored file names in sorted order.
func (s *Store) Files() []string {
	out := make([]string, 0, len(s.files))
	for name := range s.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// qualify namespaces cache keys per host so two stores on different
// hosts never share pages.
func (s *Store) qualify(name string) string {
	return s.host.Name() + ":" + name
}

// Open returns a Backend for an existing file.
func (s *Store) Open(name string) (*LocalFile, error) {
	if _, ok := s.files[name]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return &LocalFile{store: s, name: name, qname: s.qualify(name)}, nil
}

// OpenOrCreate returns a Backend, creating a zero-length file if needed.
func (s *Store) OpenOrCreate(name string) (*LocalFile, error) {
	if !s.Has(name) {
		if err := s.Create(name, 0); err != nil {
			return nil, err
		}
	}
	return s.Open(name)
}

// Copy duplicates src into dst on the same store, chunk by chunk through
// the buffer cache, invoking done when the last chunk is durable. The
// destination must not exist. This is the explicit whole-state transfer
// of Table 2's "Persistent" rows.
func (s *Store) Copy(src, dst string, done func()) error {
	size, ok := s.files[src]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, src)
	}
	if _, ok := s.files[dst]; ok {
		return fmt.Errorf("%w: %s", ErrExists, dst)
	}
	s.files[dst] = size
	if s.plane != nil {
		// Same-node duplication: the copy's content is the source's, so
		// the manifest carries over (every key is already in this node's
		// cache).
		s.chunks[dst] = append([]chunk.Key(nil), s.chunks[src]...)
	}
	k := s.host.Kernel()
	cache := s.host.Cache()
	var step func(off int64)
	step = func(off int64) {
		if off >= size {
			if done != nil {
				done()
			}
			return
		}
		n := CopyChunk
		if off+n > size {
			n = size - off
		}
		cache.Read(k, s.qualify(src), off, n, func() {
			cache.WriteSequential(k, s.qualify(dst), off, n, func() {
				step(off + n)
			})
		})
	}
	step(0)
	return nil
}

// LocalFile is a Backend over a Store file, charged to the host disk
// through the buffer cache.
type LocalFile struct {
	store *Store
	name  string
	qname string // host-qualified cache key, built once at Open
}

var _ Backend = (*LocalFile)(nil)

// Name returns the file name qualified by its host. The qualified form
// doubles as the buffer-cache key of every Read/Write, so it is built
// once at Open instead of concatenated per operation.
func (f *LocalFile) Name() string { return f.qname }

// Size returns the current file length.
func (f *LocalFile) Size() int64 { return f.store.files[f.name] }

// Read implements Backend.
func (f *LocalFile) Read(off, size int64, done func()) {
	f.store.host.Cache().Read(f.store.host.Kernel(), f.Name(), off, size, done)
}

// ReadSequential implements Backend.
func (f *LocalFile) ReadSequential(off, size int64, done func()) {
	f.store.host.Cache().ReadSequential(f.store.host.Kernel(), f.Name(), off, size, done)
}

// Write implements Backend, growing the file as needed. With a chunk
// plane attached, the touched chunks' keys are re-minted: the content
// changed, so its old identity no longer names it.
func (f *LocalFile) Write(off, size int64, done func()) {
	if end := off + size; end > f.store.files[f.name] {
		f.store.files[f.name] = end
	}
	f.store.touchChunks(f.name, off, size)
	f.store.host.Cache().Write(f.store.host.Kernel(), f.Name(), off, size, done)
}

// WriteChunkAs writes chunk i's bytes [off, off+n) and records key for
// it: a transfer landing content copied from elsewhere, which keeps its
// identity instead of minting a new one the way a guest Write would.
func (f *LocalFile) WriteChunkAs(i int, key chunk.Key, off, n int64, done func()) {
	f.store.adoptChunk(f.name, i, key, off, n)
	f.store.host.Cache().WriteSequential(f.store.host.Kernel(), f.Name(), off, n, done)
}
