package storage

import (
	"fmt"
)

// ImageInfo describes an archived virtual machine image: a base virtual
// disk plus, for "warm" images, a saved memory snapshot that lets the
// guest resume from a post-boot state (the paper's VM-restore path).
type ImageInfo struct {
	// Name is the catalog key, e.g. "rh72-base".
	Name string
	// OS describes the installed guest system, e.g. "redhat-7.2".
	OS string
	// DiskBytes is the virtual disk size.
	DiskBytes int64
	// MemBytes is the saved memory image size; zero for cold images.
	MemBytes int64
}

// Warm reports whether the image carries a memory snapshot to restore.
func (i ImageInfo) Warm() bool { return i.MemBytes > 0 }

// TotalBytes returns the full state size (disk plus memory image).
func (i ImageInfo) TotalBytes() int64 { return i.DiskBytes + i.MemBytes }

// DiskFile returns the store file name holding the virtual disk.
func (i ImageInfo) DiskFile() string { return i.Name + ".disk" }

// MemFile returns the store file name holding the memory snapshot.
func (i ImageInfo) MemFile() string { return i.Name + ".mem" }

// Validate reports whether the metadata is usable.
func (i ImageInfo) Validate() error {
	if i.Name == "" {
		return fmt.Errorf("storage: image without a name")
	}
	if i.DiskBytes <= 0 {
		return fmt.Errorf("storage: image %q disk size %d", i.Name, i.DiskBytes)
	}
	if i.MemBytes < 0 {
		return fmt.Errorf("storage: image %q memory size %d", i.Name, i.MemBytes)
	}
	return nil
}

// InstallImage materializes an image's files into a store (metadata-only:
// the archive is assumed to already be there, as on the paper's image
// servers).
func InstallImage(s *Store, info ImageInfo) error {
	if err := info.Validate(); err != nil {
		return err
	}
	if err := s.Create(info.DiskFile(), info.DiskBytes); err != nil {
		return err
	}
	if info.Warm() {
		if err := s.Create(info.MemFile(), info.MemBytes); err != nil {
			return err
		}
	}
	return nil
}

// cowPage is the COW granularity. VMware REDO logs operate on 64 KB
// grains; we match the buffer-cache page for simplicity.
const cowPage int64 = 64 * 1024

// CowDisk is a non-persistent virtual disk: reads come from a (possibly
// remote, read-only, shared) base image, writes go to a local difference
// file. Discarding the diff discards the session — exactly VMware's
// non-persistent mode, which Table 2 shows is what makes dynamic VM
// instantiation cheap.
type CowDisk struct {
	base    Backend
	diff    Backend
	written map[int64]bool
}

var _ Backend = (*CowDisk)(nil)

// NewCowDisk layers a local diff file over a base image backend.
func NewCowDisk(base, diff Backend) *CowDisk {
	return &CowDisk{base: base, diff: diff, written: make(map[int64]bool)}
}

// Name identifies the disk for diagnostics.
func (c *CowDisk) Name() string { return c.base.Name() + "+cow" }

// Size returns the base image size.
func (c *CowDisk) Size() int64 { return c.base.Size() }

// DiffBytes returns how much data has been redirected to the diff file.
func (c *CowDisk) DiffBytes() int64 { return int64(len(c.written)) * cowPage }

// WrittenPages returns the COW page indices redirected so far — the
// metadata that must travel with the diff file when a session migrates.
func (c *CowDisk) WrittenPages() []int64 {
	out := make([]int64, 0, len(c.written))
	for pg := range c.written {
		out = append(out, pg)
	}
	return out
}

// MarkWritten replays COW metadata onto a fresh disk (migration arrival
// path): reads of these pages will come from the diff backend.
func (c *CowDisk) MarkWritten(pages []int64) {
	for _, pg := range pages {
		c.written[pg] = true
	}
}

// Read fetches each page from the diff if written, else the base.
// For simplicity a read spanning both sources is charged to each source
// for the bytes it owns, completing when both halves arrive.
func (c *CowDisk) Read(off, size int64, done func()) { c.read(off, size, done, false) }

// ReadSequential implements Backend.
func (c *CowDisk) ReadSequential(off, size int64, done func()) { c.read(off, size, done, true) }

func (c *CowDisk) read(off, size int64, done func(), sequential bool) {
	if size <= 0 {
		size = 1
	}
	first := off / cowPage
	last := (off + size - 1) / cowPage
	var diffBytes, baseBytes int64
	for pg := first; pg <= last; pg++ {
		if c.written[pg] {
			diffBytes += cowPage
		} else {
			baseBytes += cowPage
		}
	}
	outstanding := 0
	if diffBytes > 0 {
		outstanding++
	}
	if baseBytes > 0 {
		outstanding++
	}
	complete := func() {
		outstanding--
		if outstanding == 0 && done != nil {
			done()
		}
	}
	read := func(b Backend, n int64) {
		if sequential {
			b.ReadSequential(off, n, complete)
			return
		}
		b.Read(off, n, complete)
	}
	if diffBytes > 0 {
		read(c.diff, diffBytes)
	}
	if baseBytes > 0 {
		read(c.base, baseBytes)
	}
}

// Write sends every page to the diff file and marks it copied-on-write.
func (c *CowDisk) Write(off, size int64, done func()) {
	if size <= 0 {
		size = 1
	}
	first := off / cowPage
	last := (off + size - 1) / cowPage
	for pg := first; pg <= last; pg++ {
		c.written[pg] = true
	}
	c.diff.Write(off, size, done)
}
