package storage

import (
	"testing"

	"vmgrid/internal/chunk"
	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
)

// chunkStore builds a store on a named host with a chunk plane attached.
func chunkStore(t *testing.T, k *sim.Kernel, p *chunk.Plane, node string) *Store {
	t.Helper()
	h, err := hostos.New(k, hw.ReferenceMachine(node))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(h)
	s.SetChunkPlane(p)
	return s
}

func TestCreateMintsManifest(t *testing.T) {
	k := sim.NewKernel(1)
	p := chunk.NewPlane(chunk.Config{ChunkBytes: 1 << 20})
	s := chunkStore(t, k, p, "n1")
	const size = int64(2<<20 + 512<<10) // 2.5 chunks
	if err := s.Create("f", size); err != nil {
		t.Fatal(err)
	}
	keys := s.ChunkKeys("f")
	if len(keys) != 3 {
		t.Fatalf("manifest = %d keys, want 3", len(keys))
	}
	cache := p.CacheFor("n1")
	seen := make(map[chunk.Key]bool)
	for i, key := range keys {
		if key == 0 {
			t.Errorf("chunk %d carries the zero key for fresh content", i)
		}
		if seen[key] {
			t.Errorf("chunk %d repeats a key within one file", i)
		}
		seen[key] = true
		if !cache.Contains(key) {
			t.Errorf("chunk %d not recorded in the node cache", i)
		}
	}
}

func TestSetChunkPlaneMintsExistingFilesDeterministically(t *testing.T) {
	mint := func() []chunk.Key {
		k := sim.NewKernel(1)
		h, err := hostos.New(k, hw.ReferenceMachine("n1"))
		if err != nil {
			t.Fatal(err)
		}
		s := NewStore(h)
		// Create before the plane attaches, in shuffled order relative to
		// the sorted names the attach walks.
		for _, name := range []string{"b", "a", "c"} {
			if err := s.Create(name, 1<<20); err != nil {
				t.Fatal(err)
			}
		}
		s.SetChunkPlane(chunk.NewPlane(chunk.Config{ChunkBytes: 1 << 20}))
		var out []chunk.Key
		for _, name := range []string{"a", "b", "c"} {
			out = append(out, s.ChunkKeys(name)...)
		}
		return out
	}
	first, second := mint(), mint()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("key %d differs across identical attaches: %x vs %x — "+
				"manifest minting depends on map order", i, first[i], second[i])
		}
	}
}

func TestCopyPropagatesManifest(t *testing.T) {
	k := sim.NewKernel(1)
	p := chunk.NewPlane(chunk.Config{ChunkBytes: 1 << 20})
	s := chunkStore(t, k, p, "n1")
	if err := s.Create("src", 3<<20); err != nil {
		t.Fatal(err)
	}
	done := false
	if err := s.Copy("src", "dst", func() { done = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !done {
		t.Fatal("copy never completed")
	}
	src, dst := s.ChunkKeys("src"), s.ChunkKeys("dst")
	if len(dst) != len(src) {
		t.Fatalf("dst manifest = %d keys, want %d", len(dst), len(src))
	}
	for i := range src {
		if src[i] != dst[i] {
			t.Errorf("chunk %d: copy minted a new key instead of propagating", i)
		}
	}
}

func TestGuestWriteReMintsTouchedChunks(t *testing.T) {
	k := sim.NewKernel(1)
	p := chunk.NewPlane(chunk.Config{ChunkBytes: 1 << 20})
	s := chunkStore(t, k, p, "n1")
	if err := s.Create("f", 3<<20); err != nil {
		t.Fatal(err)
	}
	before := s.ChunkKeys("f")
	f, err := s.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the middle chunk only.
	f.Write(1<<20+4096, 8192, nil)
	k.Run()
	after := s.ChunkKeys("f")
	if after[0] != before[0] || after[2] != before[2] {
		t.Error("untouched chunks lost their identity")
	}
	if after[1] == before[1] {
		t.Error("written chunk kept its key — stale content would dedup as current")
	}
	// A write spanning a chunk boundary re-mints both sides.
	f.Write(1<<20-100, 200, nil)
	k.Run()
	spanned := s.ChunkKeys("f")
	if spanned[0] == after[0] || spanned[1] == after[1] {
		t.Error("boundary-spanning write left a touched chunk's key intact")
	}
	if spanned[2] != after[2] {
		t.Error("boundary-spanning write touched a chunk outside its range")
	}
}

func TestWriteGrowthFillsHolesWithZeroKey(t *testing.T) {
	k := sim.NewKernel(1)
	p := chunk.NewPlane(chunk.Config{ChunkBytes: 1 << 20})
	s := chunkStore(t, k, p, "n1")
	if err := s.Create("f", 0); err != nil {
		t.Fatal(err)
	}
	f, err := s.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	// Write far past EOF: the written chunk gets a fresh key, the skipped
	// hole chunks all share the reserved zero key.
	f.Write(2<<20, 4096, nil)
	k.Run()
	keys := s.ChunkKeys("f")
	if len(keys) != 3 {
		t.Fatalf("manifest = %d keys, want 3", len(keys))
	}
	if keys[0] != 0 || keys[1] != 0 {
		t.Errorf("hole chunks = %x, %x, want the shared zero key", keys[0], keys[1])
	}
	if keys[2] == 0 {
		t.Error("written chunk carries the zero key")
	}
}

func TestWriteChunkAsAdoptsTransferredIdentity(t *testing.T) {
	k := sim.NewKernel(1)
	p := chunk.NewPlane(chunk.Config{ChunkBytes: 1 << 20})
	s := chunkStore(t, k, p, "n1")
	f, err := s.OpenOrCreate("f")
	if err != nil {
		t.Fatal(err)
	}
	want := p.Mint() // the "source side" identity riding the transfer
	done := false
	f.WriteChunkAs(0, want, 0, 1<<20, func() { done = true })
	k.Run()
	if !done {
		t.Fatal("chunk write never completed")
	}
	if keys := s.ChunkKeys("f"); len(keys) != 1 || keys[0] != want {
		t.Fatalf("manifest = %v, want the adopted key %x", keys, want)
	}
	if sz, _ := s.Size("f"); sz != 1<<20 {
		t.Errorf("size = %d after chunk write", sz)
	}
	if !p.CacheFor("n1").Contains(want) {
		t.Error("adopted key not in the node cache")
	}
}

func TestDeleteKeepsChunkCacheEntries(t *testing.T) {
	k := sim.NewKernel(1)
	p := chunk.NewPlane(chunk.Config{ChunkBytes: 1 << 20})
	s := chunkStore(t, k, p, "n1")
	if err := s.Create("f", 2<<20); err != nil {
		t.Fatal(err)
	}
	keys := s.ChunkKeys("f")
	if err := s.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if s.ChunkKeys("f") != nil {
		t.Error("deleted file still has a manifest")
	}
	cache := p.CacheFor("n1")
	for i, key := range keys {
		if !cache.Contains(key) {
			t.Errorf("chunk %d evicted by delete — content must outlive the name", i)
		}
	}
}

// TestArchiveDedupAcrossCopies: archiving a second, mostly-identical
// file streams only its delta to tape, and a recall to a node that
// still caches the chunks streams (nearly) nothing.
func TestArchiveDedupAcrossCopies(t *testing.T) {
	k := sim.NewKernel(1)
	p := chunk.NewPlane(chunk.Config{ChunkBytes: 1 << 20})
	s := chunkStore(t, k, p, "n1")
	a := NewArchive(k)
	const size = 64 << 20
	if err := s.Create("v1", size); err != nil {
		t.Fatal(err)
	}
	copied := false
	if err := s.Copy("v1", "v2", func() { copied = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !copied {
		t.Fatal("copy never completed")
	}
	// v2 diverges by one chunk.
	f, err := s.Open("v2")
	if err != nil {
		t.Fatal(err)
	}
	f.Write(0, 4096, nil)
	k.Run()

	archive := func(name string) sim.Duration {
		t.Helper()
		start := k.Now()
		var end sim.Time = -1
		if err := a.Store(s, name, func(err error) {
			if err != nil {
				t.Errorf("store %s: %v", name, err)
			}
			end = k.Now()
		}); err != nil {
			t.Fatal(err)
		}
		k.Run()
		if end < 0 {
			t.Fatalf("archiving %s never completed", name)
		}
		return end.Sub(start)
	}
	full := archive("v1")
	delta := archive("v2")
	// v2 shares all but one 1 MiB chunk with v1, already on tape: its
	// stream is ~1/64 of the full one (the 45 s mount dominates both).
	wantMax := sim.DurationOf(TapeMountLatency.Seconds() + 2*float64(1<<20)/TapeBandwidthBps)
	if delta > wantMax {
		t.Errorf("delta archive took %.1fs, want ≤ %.1fs (mount + one chunk)",
			delta.Seconds(), wantMax.Seconds())
	}
	if full <= delta {
		t.Errorf("full archive (%.1fs) not slower than delta (%.1fs)",
			full.Seconds(), delta.Seconds())
	}

	// The node still caches every chunk (delete keeps content), so the
	// recall materializes by reference: mount latency only.
	hitsBefore := p.Stats().Hits
	start := k.Now()
	var recallAt sim.Time = -1
	if err := a.Recall(s, "v2", func(err error) {
		if err != nil {
			t.Errorf("recall: %v", err)
		}
		recallAt = k.Now()
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if recallAt < 0 {
		t.Fatal("recall never completed")
	}
	elapsed := recallAt.Sub(start).Seconds()
	if slack := TapeMountLatency.Seconds() + 2; elapsed > slack {
		t.Errorf("warm recall took %.1fs, want ~mount latency (≤ %.1fs)", elapsed, slack)
	}
	if p.Stats().Hits == hitsBefore {
		t.Error("warm recall recorded no cache hits")
	}
	if sz, _ := s.Size("v2"); sz != size {
		t.Errorf("recalled size = %d, want %d", sz, size)
	}
	if keys := s.ChunkKeys("v2"); len(keys) != p.Count(size) {
		t.Errorf("recalled manifest = %d keys, want %d", len(keys), p.Count(size))
	}
}
