package storage

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
)

func newStore(t *testing.T, k *sim.Kernel) *Store {
	t.Helper()
	h, err := hostos.New(k, hw.ReferenceMachine("n1"))
	if err != nil {
		t.Fatal(err)
	}
	return NewStore(h)
}

func TestCreateHasSizeDelete(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(t, k)
	if err := s.Create("a", 100); err != nil {
		t.Fatal(err)
	}
	if !s.Has("a") {
		t.Error("Has(a) = false")
	}
	sz, err := s.Size("a")
	if err != nil || sz != 100 {
		t.Errorf("Size = %d, %v", sz, err)
	}
	if err := s.Create("a", 1); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create = %v, want ErrExists", err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if s.Has("a") {
		t.Error("Has(a) after delete")
	}
	if err := s.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v, want ErrNotFound", err)
	}
	if _, err := s.Size("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Size of deleted = %v, want ErrNotFound", err)
	}
}

func TestCreateValidation(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(t, k)
	if err := s.Create("", 10); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.Create("neg", -1); err == nil {
		t.Error("negative size accepted")
	}
}

func TestFilesSorted(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(t, k)
	for _, n := range []string{"c", "a", "b"} {
		if err := s.Create(n, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Files()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Files() = %v", got)
		}
	}
}

func TestOpenMissing(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(t, k)
	if _, err := s.Open("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Open missing = %v", err)
	}
	f, err := s.OpenOrCreate("fresh")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 0 {
		t.Errorf("fresh file size = %d", f.Size())
	}
}

func TestLocalFileWriteGrows(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(t, k)
	f, err := s.OpenOrCreate("log")
	if err != nil {
		t.Fatal(err)
	}
	f.Write(0, 1000, nil)
	f.Write(5000, 1000, nil)
	k.Run()
	if f.Size() != 6000 {
		t.Errorf("Size = %d, want 6000", f.Size())
	}
}

func TestCopyDuration(t *testing.T) {
	// Copying a 64 MB file chunk-by-chunk on the reference disk
	// (seek-charged read + streaming write per 128 KB chunk) should land
	// in the ~10 MB/s regime that dominates Table 2's persistent rows.
	k := sim.NewKernel(1)
	s := newStore(t, k)
	const size = 64 << 20
	if err := s.Create("src", size); err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time = -1
	if err := s.Copy("src", "dst", func() { doneAt = k.Now() }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if doneAt < 0 {
		t.Fatal("copy did not complete")
	}
	rate := float64(size) / doneAt.Seconds() / 1e6 // MB/s
	if rate < 7 || rate > 16 {
		t.Errorf("copy throughput = %.1f MB/s, want ~10 (same-disk copy)", rate)
	}
	if sz, _ := s.Size("dst"); sz != size {
		t.Errorf("dst size = %d", sz)
	}
}

func TestCopyErrors(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(t, k)
	if err := s.Copy("missing", "x", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("copy missing src = %v", err)
	}
	if err := s.Create("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("b", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Copy("a", "b", nil); !errors.Is(err, ErrExists) {
		t.Errorf("copy onto existing = %v", err)
	}
}

func TestCopyWarmsCache(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(t, k)
	const size = 8 << 20
	if err := s.Create("src", size); err != nil {
		t.Fatal(err)
	}
	if err := s.Copy("src", "dst", nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	// Reading the fresh copy should be nearly free: its pages are
	// resident from the write-through.
	f, err := s.Open("dst")
	if err != nil {
		t.Fatal(err)
	}
	start := k.Now()
	var doneAt sim.Time
	f.Read(0, size, func() { doneAt = k.Now() })
	k.Run()
	if doneAt.Sub(start) > sim.Millisecond {
		t.Errorf("read-after-copy took %v, want cache hit", doneAt.Sub(start))
	}
}

func TestImageInfo(t *testing.T) {
	img := ImageInfo{Name: "rh72", OS: "redhat-7.2", DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB}
	if err := img.Validate(); err != nil {
		t.Fatal(err)
	}
	if !img.Warm() {
		t.Error("image with memory snapshot must be warm")
	}
	if img.TotalBytes() != 2*hw.GB+128*hw.MB {
		t.Errorf("TotalBytes = %d", img.TotalBytes())
	}
	if img.DiskFile() != "rh72.disk" || img.MemFile() != "rh72.mem" {
		t.Errorf("file names: %s, %s", img.DiskFile(), img.MemFile())
	}

	cold := ImageInfo{Name: "cold", OS: "rh71", DiskBytes: hw.GB}
	if cold.Warm() {
		t.Error("cold image reported warm")
	}
	for _, bad := range []ImageInfo{
		{OS: "x", DiskBytes: 1},
		{Name: "x", DiskBytes: 0},
		{Name: "x", DiskBytes: 1, MemBytes: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
}

func TestInstallImage(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(t, k)
	img := ImageInfo{Name: "rh72", OS: "redhat-7.2", DiskBytes: 1 << 30, MemBytes: 128 << 20}
	if err := InstallImage(s, img); err != nil {
		t.Fatal(err)
	}
	if !s.Has("rh72.disk") || !s.Has("rh72.mem") {
		t.Error("image files missing after install")
	}
	if err := InstallImage(s, img); !errors.Is(err, ErrExists) {
		t.Errorf("double install = %v", err)
	}
	cold := ImageInfo{Name: "cold", OS: "rh71", DiskBytes: 1 << 20}
	if err := InstallImage(s, cold); err != nil {
		t.Fatal(err)
	}
	if s.Has("cold.mem") {
		t.Error("cold image grew a memory file")
	}
}

func TestCowDiskReadsBaseUntilWritten(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(t, k)
	if err := s.Create("base.disk", 1<<30); err != nil {
		t.Fatal(err)
	}
	base, err := s.Open("base.disk")
	if err != nil {
		t.Fatal(err)
	}
	diff, err := s.OpenOrCreate("vm1.cow")
	if err != nil {
		t.Fatal(err)
	}
	cow := NewCowDisk(base, diff)
	if cow.Size() != 1<<30 {
		t.Errorf("Size = %d", cow.Size())
	}
	if cow.DiffBytes() != 0 {
		t.Errorf("fresh cow DiffBytes = %d", cow.DiffBytes())
	}

	done := false
	cow.Read(0, 4096, func() { done = true })
	k.Run()
	if !done {
		t.Fatal("read did not complete")
	}

	cow.Write(0, 4096, nil)
	k.Run()
	if cow.DiffBytes() == 0 {
		t.Error("write did not mark COW pages")
	}
	// Second write to the same page must not grow the diff again.
	before := cow.DiffBytes()
	cow.Write(0, 4096, nil)
	k.Run()
	if cow.DiffBytes() != before {
		t.Error("rewrite grew the diff")
	}
}

func TestCowDiskMixedRead(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(t, k)
	if err := s.Create("base.disk", 1<<30); err != nil {
		t.Fatal(err)
	}
	base, _ := s.Open("base.disk")
	diff, _ := s.OpenOrCreate("vm1.cow")
	cow := NewCowDisk(base, diff)
	// Write the first page; then read a span covering written and
	// unwritten pages. The read must complete exactly once.
	cow.Write(0, 64*1024, nil)
	k.Run()
	completions := 0
	cow.Read(0, 256*1024, func() { completions++ })
	k.Run()
	if completions != 1 {
		t.Fatalf("mixed read completed %d times", completions)
	}
}

func TestCowDiskZeroSizeOps(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(t, k)
	if err := s.Create("base.disk", 1<<20); err != nil {
		t.Fatal(err)
	}
	base, _ := s.Open("base.disk")
	diff, _ := s.OpenOrCreate("d.cow")
	cow := NewCowDisk(base, diff)
	done := false
	cow.Read(0, 0, func() { done = true })
	k.Run()
	if !done {
		t.Error("zero-size read never completed")
	}
}

func TestStoresOnDifferentHostsDoNotShareCache(t *testing.T) {
	k := sim.NewKernel(1)
	h1, err := hostos.New(k, hw.ReferenceMachine("h1"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := hostos.New(k, hw.ReferenceMachine("h2"))
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := NewStore(h1), NewStore(h2)
	if err := s1.Create("img", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := s2.Create("img", 1<<20); err != nil {
		t.Fatal(err)
	}
	f1, _ := s1.Open("img")
	f2, _ := s2.Open("img")
	f1.Read(0, 1<<20, nil)
	k.Run()
	// h2's read must be a miss even though h1 cached the same name.
	var start = k.Now()
	var doneAt sim.Time
	f2.Read(0, 1<<20, func() { doneAt = k.Now() })
	k.Run()
	if elapsed := doneAt.Sub(start); elapsed < sim.Millisecond {
		t.Errorf("cross-host read finished in %v — caches are leaking", elapsed)
	}
	if math.Abs(float64(h2.Cache().Hits())) > 0 {
		t.Errorf("h2 cache hits = %d, want 0", h2.Cache().Hits())
	}
}

// Property: any CowDisk read completes exactly once, regardless of how
// the written-page set interleaves with the read span.
func TestCowDiskCompletionProperty(t *testing.T) {
	prop := func(writesRaw []uint8, offRaw, sizeRaw uint16) bool {
		k := sim.NewKernel(8)
		h, err := hostos.New(k, hw.ReferenceMachine("n"))
		if err != nil {
			return false
		}
		s := NewStore(h)
		if err := s.Create("base", 64<<20); err != nil {
			return false
		}
		base, _ := s.Open("base")
		diff, _ := s.OpenOrCreate("d.cow")
		cow := NewCowDisk(base, diff)
		for _, w := range writesRaw {
			cow.Write(int64(w)*cowPage, 4096, nil)
		}
		k.Run()
		completions := 0
		off := int64(offRaw) * 4096
		size := int64(sizeRaw%512) * 1024
		cow.Read(off, size, func() { completions++ })
		k.Run()
		return completions == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: WrittenPages/MarkWritten round-trips the COW metadata.
func TestCowDiskMetadataRoundTrip(t *testing.T) {
	prop := func(pagesRaw []uint8) bool {
		k := sim.NewKernel(9)
		h, err := hostos.New(k, hw.ReferenceMachine("n"))
		if err != nil {
			return false
		}
		s := NewStore(h)
		if err := s.Create("base", 64<<20); err != nil {
			return false
		}
		base, _ := s.Open("base")
		d1, _ := s.OpenOrCreate("a.cow")
		src := NewCowDisk(base, d1)
		want := map[int64]bool{}
		for _, pg := range pagesRaw {
			src.Write(int64(pg)*cowPage, 1, nil)
			want[int64(pg)] = true
		}
		k.Run()

		d2, _ := s.OpenOrCreate("b.cow")
		dst := NewCowDisk(base, d2)
		dst.MarkWritten(src.WrittenPages())
		if dst.DiffBytes() != src.DiffBytes() {
			return false
		}
		got := map[int64]bool{}
		for _, pg := range dst.WrittenPages() {
			got[pg] = true
		}
		if len(got) != len(want) {
			return false
		}
		for pg := range want {
			if !got[pg] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
