package retry

import (
	"testing"

	"vmgrid/internal/sim"
)

func TestAttemptsFloorsAtOne(t *testing.T) {
	for _, n := range []int{-3, 0, 1, 5} {
		got := Policy{MaxAttempts: n}.Attempts()
		want := n
		if want < 1 {
			want = 1
		}
		if got != want {
			t.Errorf("Attempts() with MaxAttempts=%d = %d, want %d", n, got, want)
		}
	}
}

func TestDelayCappedExponential(t *testing.T) {
	p := Policy{Backoff: 10 * sim.Millisecond, MaxBackoff: 45 * sim.Millisecond}
	want := []sim.Duration{
		10 * sim.Millisecond, // after attempt 1
		20 * sim.Millisecond,
		40 * sim.Millisecond,
		45 * sim.Millisecond, // capped
		45 * sim.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i+1, 0); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestDelayUsesCallerDefault(t *testing.T) {
	var p Policy
	if got := p.Delay(1, 500*sim.Millisecond); got != 500*sim.Millisecond {
		t.Errorf("Delay(1, 500ms) = %v, want 500ms", got)
	}
	if got := p.Delay(3, 500*sim.Millisecond); got != 2*sim.Second {
		t.Errorf("Delay(3, 500ms) = %v, want 2s", got)
	}
}

func TestDelayUncappedWhenMaxBackoffZero(t *testing.T) {
	p := Policy{Backoff: sim.Second}
	if got := p.Delay(5, 0); got != 16*sim.Second {
		t.Errorf("Delay(5) = %v, want 16s", got)
	}
}

func TestEqualJitterDeterministicAndBounded(t *testing.T) {
	mk := func() JitterFunc {
		var s uint64 = 42
		return EqualJitter(func() uint64 { // SplitMix64 step
			s += 0x9e3779b97f4a7c15
			z := s
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		})
	}
	a, b := mk(), mk()
	p := Policy{Backoff: 100 * sim.Millisecond, MaxBackoff: sim.Second}
	for n := 1; n <= 8; n++ {
		base := Policy{Backoff: p.Backoff, MaxBackoff: p.MaxBackoff}.Delay(n, 0)
		pa := Policy{Backoff: p.Backoff, MaxBackoff: p.MaxBackoff, Jitter: a}
		pb := Policy{Backoff: p.Backoff, MaxBackoff: p.MaxBackoff, Jitter: b}
		da, db := pa.Delay(n, 0), pb.Delay(n, 0)
		if da != db {
			t.Fatalf("jitter not deterministic: attempt %d: %v vs %v", n, da, db)
		}
		if da < base/2 || da > base {
			t.Errorf("attempt %d: jittered delay %v outside [%v, %v]", n, da, base/2, base)
		}
	}
}

func TestIsZero(t *testing.T) {
	if !(Policy{}).IsZero() {
		t.Error("zero Policy should report IsZero")
	}
	if (Policy{MaxAttempts: 1}).IsZero() {
		t.Error("non-zero Policy should not report IsZero")
	}
}
