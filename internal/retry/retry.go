// Package retry is the single retry/backoff vocabulary of the
// middleware. Historically vfs, gram, and the wire client each grew a
// private retry policy with the same shape and slightly different
// defaults; Policy unifies them. The per-layer semantics — what is
// retried, and what a failed attempt even means — stay with the layer:
// vfs retries timed-out RPCs, gram replays only pre-dispatch rejections,
// the wire client resends only requests that never reached the server.
// Policy owns the part they genuinely share: how many attempts, and how
// long to wait between them.
//
// Delays are capped-exponential: attempt n waits Backoff·2^(n-1),
// clamped to MaxBackoff. A Jitter hook decorrelates concurrent
// retriers; to preserve experiment reproducibility the hook must be
// deterministic (seed it from the sim kernel's RNG, never wall clock).
package retry

import "vmgrid/internal/sim"

// JitterFunc perturbs a computed backoff. attempt is 1-based (the delay
// before the second attempt has attempt == 1). Implementations must be
// deterministic for reproducible experiments.
type JitterFunc func(attempt int, backoff sim.Duration) sim.Duration

// Policy bounds attempts and spaces them with capped exponential
// backoff. The zero value means "defer to the caller's defaults": each
// layer applies its historical MaxAttempts/Backoff defaults to zero
// fields, so existing call sites keep their exact behavior.
type Policy struct {
	// MaxAttempts is the total number of tries, first included.
	// Values below 1 mean one attempt (no retries) unless the layer
	// documents a different default.
	MaxAttempts int
	// Timeout bounds one attempt, for layers that time out individual
	// attempts (vfs RPCs). Zero disables per-attempt timeouts.
	Timeout sim.Duration
	// Backoff is the delay before the second attempt; it doubles per
	// subsequent attempt. Zero selects the layer default.
	Backoff sim.Duration
	// MaxBackoff caps the doubling. Zero means the layer default cap,
	// or uncapped where the layer never capped.
	MaxBackoff sim.Duration
	// Jitter, when non-nil, post-processes every computed delay.
	Jitter JitterFunc `json:"-"`
}

// Attempts returns the effective attempt count: MaxAttempts, floored
// at one.
func (p Policy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the wait before retry attempt+1, where attempt is the
// 1-based index of the attempt that just failed: Backoff·2^(attempt-1)
// clamped to MaxBackoff, then jittered. def supplies the layer's
// historical base backoff when Policy.Backoff is zero.
func (p Policy) Delay(attempt int, def sim.Duration) sim.Duration {
	b := p.Backoff
	if b <= 0 {
		b = def
	}
	d := b
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter != nil {
		d = p.Jitter(attempt, d)
	}
	return d
}

// IsZero reports whether every tunable is unset, i.e. the policy
// defers entirely to layer defaults.
func (p Policy) IsZero() bool {
	return p.MaxAttempts == 0 && p.Timeout == 0 && p.Backoff == 0 &&
		p.MaxBackoff == 0 && p.Jitter == nil
}

// EqualJitter returns a deterministic jitter hook drawing uniformly
// from [backoff/2, backoff] using rng — the classic "equal jitter"
// scheme. Seed rng from the sim kernel so jittered schedules replay
// bit-identically across runs and worker counts.
func EqualJitter(rng func() uint64) JitterFunc {
	return func(_ int, backoff sim.Duration) sim.Duration {
		if backoff <= 1 {
			return backoff
		}
		half := backoff / 2
		return half + sim.Duration(rng()%uint64(backoff-half+1))
	}
}
