// Package trace provides host load traces and their playback, standing in
// for the Pittsburgh Supercomputing Center Alpha-cluster traces the paper
// replays with Dinda's host load playback tool. Traces are fixed-step
// series of load averages; a synthetic generator reproduces the
// statistical shape that matters for the Figure 1 microbenchmark —
// configurable mean utilization with bursty, autocorrelated variation.
package trace

import (
	"fmt"

	"vmgrid/internal/sim"
)

// Trace is a fixed-step host load series. Loads[i] is the average number
// of competing runnable processes during step i (a load average, so values
// above 1.0 are meaningful).
type Trace struct {
	// Step is the sampling interval.
	Step sim.Duration
	// Loads holds one load average per step.
	Loads []float64
}

// Class selects one of the paper's three background load levels.
type Class int

// The background load classes used in Figure 1.
const (
	None Class = iota + 1
	Light
	Heavy
)

// String returns the class name as used in the paper.
func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case Light:
		return "light"
	case Heavy:
		return "heavy"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists all load classes in presentation order.
func Classes() []Class { return []Class{None, Light, Heavy} }

// At returns the load in effect at virtual time tm. Times beyond the end
// of the trace wrap around, so a trace can be played indefinitely.
func (t *Trace) At(tm sim.Time) float64 {
	if len(t.Loads) == 0 {
		return 0
	}
	step := int64(t.Step)
	if step <= 0 {
		return t.Loads[0]
	}
	idx := (int64(tm) / step) % int64(len(t.Loads))
	if idx < 0 {
		idx += int64(len(t.Loads))
	}
	return t.Loads[idx]
}

// Duration returns the total covered virtual time.
func (t *Trace) Duration() sim.Duration {
	return t.Step * sim.Duration(len(t.Loads))
}

// Mean returns the average load over the whole trace.
func (t *Trace) Mean() float64 {
	if len(t.Loads) == 0 {
		return 0
	}
	var sum float64
	for _, l := range t.Loads {
		sum += l
	}
	return sum / float64(len(t.Loads))
}

// Peak returns the largest load in the trace.
func (t *Trace) Peak() float64 {
	var peak float64
	for _, l := range t.Loads {
		if l > peak {
			peak = l
		}
	}
	return peak
}

// GenConfig parameterizes the synthetic load generator.
type GenConfig struct {
	// Mean is the target long-run load average.
	Mean float64
	// Rho is the AR(1) autocorrelation coefficient in [0, 1). Host load
	// is strongly autocorrelated (Dinda, LCR 2000); 0.95 at a 1 s step
	// reproduces the multi-second busy epochs seen in the PSC traces.
	Rho float64
	// Sigma is the innovation standard deviation.
	Sigma float64
	// BurstProb is the per-step probability of a heavy-tailed burst.
	BurstProb float64
	// BurstShape is the Pareto shape of burst magnitudes (smaller =
	// heavier tail).
	BurstShape float64
	// Step is the sampling interval (default 1 s).
	Step sim.Duration
}

// ClassConfig returns the generator preset for a load class.
func ClassConfig(c Class) GenConfig {
	cfg := GenConfig{Rho: 0.95, Step: sim.Second, BurstShape: 1.8}
	switch c {
	case None:
		cfg.Mean, cfg.Sigma, cfg.BurstProb = 0, 0, 0
	case Light:
		cfg.Mean, cfg.Sigma, cfg.BurstProb = 0.22, 0.08, 0.01
	case Heavy:
		cfg.Mean, cfg.Sigma, cfg.BurstProb = 1.0, 0.25, 0.03
	default:
		cfg.Mean = 0
	}
	return cfg
}

// Generate produces a synthetic trace of n steps. The process is AR(1)
// around the configured mean with occasional Pareto bursts, clipped at
// zero; the result has roughly the configured mean and the bursty,
// epochal texture of measured host load.
func Generate(rng *sim.RNG, cfg GenConfig, n int) *Trace {
	if cfg.Step <= 0 {
		cfg.Step = sim.Second
	}
	loads := make([]float64, n)
	level := cfg.Mean
	for i := 0; i < n; i++ {
		if cfg.Sigma > 0 {
			level = cfg.Rho*level + (1-cfg.Rho)*cfg.Mean + cfg.Sigma*rng.Normal(0, 1)
		} else {
			level = cfg.Mean
		}
		if level < 0 {
			level = 0
		}
		v := level
		if cfg.BurstProb > 0 && rng.Float64() < cfg.BurstProb {
			v += rng.Pareto(cfg.Mean/2+0.05, cfg.BurstShape)
		}
		loads[i] = v
	}
	return &Trace{Step: cfg.Step, Loads: loads}
}

// Synthetic returns a trace of n steps for the given class, seeded from rng.
func Synthetic(c Class, rng *sim.RNG, n int) *Trace {
	return Generate(rng, ClassConfig(c), n)
}

// Playback walks a trace on the kernel, invoking a sink at every step
// with the current load. It is the simulated analogue of Dinda's host
// load trace playback tool: the sink typically sets the CPU demand of a
// background "load" process.
type Playback struct {
	k       *sim.Kernel
	trace   *Trace
	sink    func(load float64)
	step    int
	running bool
	next    sim.EventID
}

// NewPlayback prepares (but does not start) playback of tr, delivering
// each step's load to sink.
func NewPlayback(k *sim.Kernel, tr *Trace, sink func(load float64)) *Playback {
	return &Playback{k: k, trace: tr, sink: sink}
}

// Start begins playback at the current virtual time. The trace loops
// forever; call Stop to end it. Starting an already-running playback is a
// no-op.
func (p *Playback) Start() {
	if p.running || len(p.trace.Loads) == 0 {
		return
	}
	p.running = true
	p.tick()
}

// Stop halts playback and delivers a final load of zero so the sink does
// not keep stale background demand applied.
func (p *Playback) Stop() {
	if !p.running {
		return
	}
	p.running = false
	p.k.Cancel(p.next)
	p.next = sim.EventID{}
	p.sink(0)
}

// Running reports whether playback is active.
func (p *Playback) Running() bool { return p.running }

func (p *Playback) tick() {
	if !p.running {
		return
	}
	p.sink(p.trace.Loads[p.step%len(p.trace.Loads)])
	p.step++
	p.next = p.k.After(p.trace.Step, p.tick)
}
