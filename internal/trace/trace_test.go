package trace

import (
	"math"
	"testing"
	"testing/quick"

	"vmgrid/internal/sim"
)

func TestClassString(t *testing.T) {
	if None.String() != "none" || Light.String() != "light" || Heavy.String() != "heavy" {
		t.Error("class names wrong")
	}
	if Class(0).String() == "none" {
		t.Error("zero class must not alias a real class")
	}
	if len(Classes()) != 3 {
		t.Error("Classes() must list all three classes")
	}
}

func TestAtWrapsAround(t *testing.T) {
	tr := &Trace{Step: sim.Second, Loads: []float64{1, 2, 3}}
	tests := []struct {
		at   sim.Time
		want float64
	}{
		{0, 1},
		{sim.Time(sim.Second), 2},
		{sim.Time(2 * sim.Second), 3},
		{sim.Time(3 * sim.Second), 1},   // wrap
		{sim.Time(7*sim.Second + 1), 2}, // wrap + offset
		{sim.Time(500 * sim.Millisecond), 1},
	}
	for _, tt := range tests {
		if got := tr.At(tt.at); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestAtEmptyAndDegenerate(t *testing.T) {
	empty := &Trace{Step: sim.Second}
	if empty.At(0) != 0 {
		t.Error("empty trace must read 0")
	}
	zeroStep := &Trace{Loads: []float64{5}}
	if zeroStep.At(sim.Time(sim.Hour)) != 5 {
		t.Error("zero-step trace must read first sample")
	}
}

func TestMeanPeakDuration(t *testing.T) {
	tr := &Trace{Step: 2 * sim.Second, Loads: []float64{0, 1, 2, 1}}
	if got := tr.Mean(); got != 1 {
		t.Errorf("Mean = %v", got)
	}
	if got := tr.Peak(); got != 2 {
		t.Errorf("Peak = %v", got)
	}
	if got := tr.Duration(); got != 8*sim.Second {
		t.Errorf("Duration = %v", got)
	}
}

func TestSyntheticClassMeans(t *testing.T) {
	rng := sim.NewRNG(1)
	const n = 20000
	noneTr := Synthetic(None, rng, n)
	if noneTr.Mean() != 0 || noneTr.Peak() != 0 {
		t.Errorf("none class not flat zero: mean=%v peak=%v", noneTr.Mean(), noneTr.Peak())
	}
	light := Synthetic(Light, rng, n)
	if m := light.Mean(); m < 0.12 || m > 0.38 {
		t.Errorf("light mean = %v, want ~0.22", m)
	}
	heavy := Synthetic(Heavy, rng, n)
	if m := heavy.Mean(); m < 0.7 || m > 1.45 {
		t.Errorf("heavy mean = %v, want ~1.0", m)
	}
	if light.Mean() >= heavy.Mean() {
		t.Error("light load must be lighter than heavy load")
	}
}

func TestSyntheticNonNegative(t *testing.T) {
	prop := func(seed uint64, classRaw uint8) bool {
		c := Classes()[int(classRaw)%3]
		tr := Synthetic(c, sim.NewRNG(seed), 500)
		for _, l := range tr.Loads {
			if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
				return false
			}
		}
		return len(tr.Loads) == 500 && tr.Step == sim.Second
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(Heavy, sim.NewRNG(7), 100)
	b := Synthetic(Heavy, sim.NewRNG(7), 100)
	for i := range a.Loads {
		if a.Loads[i] != b.Loads[i] {
			t.Fatalf("same-seed traces diverge at %d", i)
		}
	}
}

func TestSyntheticAutocorrelated(t *testing.T) {
	// Lag-1 autocorrelation of the heavy trace should be clearly
	// positive — host load has epochs, not white noise.
	tr := Synthetic(Heavy, sim.NewRNG(3), 10000)
	mean := tr.Mean()
	var num, den float64
	for i := 1; i < len(tr.Loads); i++ {
		num += (tr.Loads[i] - mean) * (tr.Loads[i-1] - mean)
	}
	for _, l := range tr.Loads {
		den += (l - mean) * (l - mean)
	}
	if den == 0 {
		t.Fatal("degenerate trace")
	}
	if r := num / den; r < 0.5 {
		t.Errorf("lag-1 autocorrelation = %v, want > 0.5", r)
	}
}

func TestPlaybackDeliversSteps(t *testing.T) {
	k := sim.NewKernel(1)
	tr := &Trace{Step: sim.Second, Loads: []float64{0.5, 1.5}}
	var got []float64
	p := NewPlayback(k, tr, func(l float64) { got = append(got, l) })
	p.Start()
	if !p.Running() {
		t.Fatal("playback not running after Start")
	}
	if err := k.RunUntil(sim.Time(3*sim.Second + 1)); err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1.5, 0.5, 1.5} // loops
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPlaybackStopDeliversZero(t *testing.T) {
	k := sim.NewKernel(1)
	tr := &Trace{Step: sim.Second, Loads: []float64{2.0}}
	var last float64 = -1
	p := NewPlayback(k, tr, func(l float64) { last = l })
	p.Start()
	if err := k.RunUntil(sim.Time(1500 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if last != 2.0 {
		t.Fatalf("load during playback = %v, want 2.0", last)
	}
	p.Stop()
	if last != 0 {
		t.Errorf("load after Stop = %v, want 0", last)
	}
	if p.Running() {
		t.Error("Running() after Stop")
	}
	k.Run()
	if last != 0 {
		t.Errorf("playback kept ticking after Stop: %v", last)
	}
	// Idempotent stop / restartable.
	p.Stop()
	p.Start()
	if !p.Running() {
		t.Error("restart failed")
	}
}

func TestPlaybackDoubleStartNoDuplicateTicks(t *testing.T) {
	k := sim.NewKernel(1)
	tr := &Trace{Step: sim.Second, Loads: []float64{1}}
	count := 0
	p := NewPlayback(k, tr, func(float64) { count++ })
	p.Start()
	p.Start()
	if err := k.RunUntil(sim.Time(2*sim.Second + 1)); err != nil {
		t.Fatal(err)
	}
	if count != 3 { // t=0, 1s, 2s
		t.Errorf("tick count = %d, want 3 (double Start must not double ticks)", count)
	}
}
