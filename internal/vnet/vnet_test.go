package vnet

import (
	"errors"
	"fmt"
	"testing"

	"vmgrid/internal/netsim"
	"vmgrid/internal/sim"
)

func TestDHCPLeaseRelease(t *testing.T) {
	d := NewDHCP("10.1.0.", 2)
	a1, err := d.Lease("vm1")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := d.Lease("vm2")
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatalf("duplicate lease %s", a1)
	}
	if d.Owner(a1) != "vm1" || d.Owner(a2) != "vm2" {
		t.Error("owners wrong")
	}
	if _, err := d.Lease("vm3"); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("over-lease = %v", err)
	}
	if err := d.Release(a1); err != nil {
		t.Fatal(err)
	}
	if d.Leased() != 1 {
		t.Errorf("Leased = %d", d.Leased())
	}
	a3, err := d.Lease("vm3")
	if err != nil {
		t.Fatal(err)
	}
	if a3 != a1 {
		t.Errorf("released address not recycled: got %s, want %s", a3, a1)
	}
	if err := d.Release("10.9.9.9"); !errors.Is(err, ErrNotLeased) {
		t.Errorf("bogus release = %v", err)
	}
}

func TestDHCPAddressFormat(t *testing.T) {
	d := NewDHCP("10.7.3.", 300)
	a, err := d.Lease("x")
	if err != nil {
		t.Fatal(err)
	}
	if a != "10.7.3.1" {
		t.Errorf("first address = %s", a)
	}
}

func newTriangle(t *testing.T) (*sim.Kernel, *netsim.Network) {
	t.Helper()
	k := sim.NewKernel(1)
	n := netsim.New(k)
	for _, name := range []string{"home", "far", "relay"} {
		n.AddNode(name)
	}
	// Slow direct path home<->far; fast two-hop path through relay.
	if err := n.Connect("home", "far", 100*sim.Millisecond, 1e6); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("home", "relay", 5*sim.Millisecond, 10e6); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("relay", "far", 5*sim.Millisecond, 10e6); err != nil {
		t.Fatal(err)
	}
	return k, n
}

func TestTunnelCarriesFrames(t *testing.T) {
	k, n := newTriangle(t)
	tun, err := EstablishTunnel(n, "home", "far")
	if err != nil {
		t.Fatal(err)
	}
	delivered := false
	if err := tun.Send("home", 1000, "frame", func(p any) {
		if p != "frame" {
			t.Errorf("payload %v", p)
		}
		delivered = true
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !delivered {
		t.Fatal("frame not delivered")
	}
	if tun.Frames() != 1 || tun.Bytes() != 1000 {
		t.Errorf("stats: frames=%d bytes=%d", tun.Frames(), tun.Bytes())
	}
	a, b := tun.Endpoints()
	if a != "home" || b != "far" {
		t.Errorf("endpoints %s, %s", a, b)
	}
}

func TestTunnelBidirectionalAndGuards(t *testing.T) {
	k, n := newTriangle(t)
	tun, err := EstablishTunnel(n, "home", "far")
	if err != nil {
		t.Fatal(err)
	}
	delivered := false
	if err := tun.Send("far", 10, nil, func(any) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !delivered {
		t.Error("reverse frame lost")
	}
	if err := tun.Send("relay", 10, nil, nil); err == nil {
		t.Error("non-endpoint send accepted")
	}
}

func TestTunnelRequiresRoute(t *testing.T) {
	k := sim.NewKernel(1)
	n := netsim.New(k)
	n.AddNode("a")
	n.AddNode("island")
	if _, err := EstablishTunnel(n, "a", "island"); err == nil {
		t.Error("tunnel across partition accepted")
	}
}

func TestOverlayPrefersRelay(t *testing.T) {
	k, n := newTriangle(t)
	o, err := NewOverlay(n, "home", "far", "relay")
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Via("home", "far"); got != "relay" {
		t.Errorf("Via(home, far) = %q, want relay (10 ms two-hop beats 100 ms direct)", got)
	}
	var at sim.Time
	if err := o.Send("home", "far", 1000, nil, func(any) { at = k.Now() }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if at > sim.Time(50*sim.Millisecond) {
		t.Errorf("relayed delivery took %v; overlay did not use the fast path", at)
	}
	if o.Frames() != 1 {
		t.Errorf("Frames = %d", o.Frames())
	}
}

func TestOverlayDirectWhenFaster(t *testing.T) {
	k := sim.NewKernel(1)
	n := netsim.New(k)
	if err := n.BuildLAN("a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	o, err := NewOverlay(n, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Via("a", "b"); got != "" {
		t.Errorf("Via(a,b) = %q on a flat LAN, want direct", got)
	}
}

func TestOverlayReoptimizesAfterChange(t *testing.T) {
	k, n := newTriangle(t)
	_ = k
	o, err := NewOverlay(n, "home", "far")
	if err != nil {
		t.Fatal(err)
	}
	// Without the relay as a member, home->far must go direct.
	if got := o.Via("home", "far"); got != "" {
		t.Errorf("two-member overlay chose relay %q", got)
	}
	o2, err := NewOverlay(n, "home", "far", "relay")
	if err != nil {
		t.Fatal(err)
	}
	// A new fast link appears: direct becomes best after Optimize.
	if err := n.Connect("home", "far", sim.Microsecond, 100e6); err == nil {
		// netsim replaces the link; re-optimize must notice.
		o2.Optimize()
		if got := o2.Via("home", "far"); got != "" {
			t.Errorf("after fast direct link, Via = %q, want direct", got)
		}
	}
}

func TestOverlayGuards(t *testing.T) {
	k, n := newTriangle(t)
	_ = k
	if _, err := NewOverlay(n, "home"); err == nil {
		t.Error("single-member overlay accepted")
	}
	if _, err := NewOverlay(n, "home", "ghost"); err == nil {
		t.Error("unattached member accepted")
	}
	o, err := NewOverlay(n, "home", "far")
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Send("home", "home", 1, nil, nil); err == nil {
		t.Error("self-send accepted")
	}
	if err := o.Send("relay", "home", 1, nil, nil); err == nil {
		t.Error("non-member source accepted")
	}
	if err := o.Send("home", "relay", 1, nil, nil); err == nil {
		t.Error("non-member destination accepted")
	}
}

func TestOverlayScales(t *testing.T) {
	k := sim.NewKernel(1)
	n := netsim.New(k)
	var names []string
	for i := 0; i < 12; i++ {
		names = append(names, fmt.Sprintf("vm%02d", i))
	}
	if err := n.BuildLAN(names...); err != nil {
		t.Fatal(err)
	}
	o, err := NewOverlay(n, names...)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Members()) != 12 {
		t.Errorf("Members = %d", len(o.Members()))
	}
	delivered := 0
	for i := 1; i < 12; i++ {
		if err := o.Send(names[0], names[i], 100, nil, func(any) { delivered++ }); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if delivered != 11 {
		t.Errorf("delivered %d/11", delivered)
	}
}
