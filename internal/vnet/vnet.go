// Package vnet implements the paper's virtual networking layer (§3.3):
// how a dynamically created VM gets a network identity. Two scenarios are
// supported, matching the paper:
//
//  1. The VM host's site hands out addresses to VM instances — a DHCP
//     pool per site.
//  2. The site does not provide addresses — traffic is tunneled at the
//     Ethernet level back to the user's network, optionally through a
//     self-optimizing overlay among the user's VMs (à la resilient
//     overlay networks).
package vnet

import (
	"errors"
	"fmt"
	"sort"

	"vmgrid/internal/netsim"
	"vmgrid/internal/sim"
)

// Sentinel errors.
var (
	ErrPoolExhausted = errors.New("vnet: address pool exhausted")
	ErrNotLeased     = errors.New("vnet: address not leased")
)

// DHCP is a per-site address pool for dynamic VM instances.
type DHCP struct {
	prefix string
	next   int
	max    int
	free   []string
	leased map[string]string // addr -> owner
}

// NewDHCP creates a pool of n addresses under prefix (e.g. "10.1.0.").
func NewDHCP(prefix string, n int) *DHCP {
	return &DHCP{prefix: prefix, next: 1, max: n, leased: make(map[string]string)}
}

// Lease assigns an address to owner.
func (d *DHCP) Lease(owner string) (string, error) {
	if len(d.free) > 0 {
		addr := d.free[len(d.free)-1]
		d.free = d.free[:len(d.free)-1]
		d.leased[addr] = owner
		return addr, nil
	}
	if d.next > d.max {
		return "", fmt.Errorf("%w: %s (%d addresses)", ErrPoolExhausted, d.prefix, d.max)
	}
	addr := fmt.Sprintf("%s%d", d.prefix, d.next)
	d.next++
	d.leased[addr] = owner
	return addr, nil
}

// Release returns an address to the pool.
func (d *DHCP) Release(addr string) error {
	if _, ok := d.leased[addr]; !ok {
		return fmt.Errorf("%w: %s", ErrNotLeased, addr)
	}
	delete(d.leased, addr)
	d.free = append(d.free, addr)
	return nil
}

// Owner returns who holds addr ("" if unleased).
func (d *DHCP) Owner(addr string) string { return d.leased[addr] }

// Leased returns the number of outstanding leases.
func (d *DHCP) Leased() int { return len(d.leased) }

// frameOverheadBytes is the per-frame encapsulation cost of Ethernet
// tunneling (outer Ethernet + IP + UDP/SSH framing).
const frameOverheadBytes = 90

// Tunnel carries Ethernet frames between a remote VM's host and the
// user's local network, making the VM appear attached there. The paper
// notes the control connection used to launch the VM (e.g. SSH) can
// carry it.
type Tunnel struct {
	net  *netsim.Network
	a, b string

	frames uint64
	bytes  uint64
}

// EstablishTunnel creates a tunnel between two attached nodes. It fails
// if no route exists (you cannot tunnel over a partition).
func EstablishTunnel(n *netsim.Network, a, b string) (*Tunnel, error) {
	if _, err := n.Latency(a, b, 0); err != nil {
		return nil, fmt.Errorf("vnet: tunnel %s<->%s: %w", a, b, err)
	}
	return &Tunnel{net: n, a: a, b: b}, nil
}

// Endpoints returns the tunnel's two ends.
func (t *Tunnel) Endpoints() (string, string) { return t.a, t.b }

// Frames returns the number of frames carried.
func (t *Tunnel) Frames() uint64 { return t.frames }

// Bytes returns payload bytes carried (excluding encapsulation).
func (t *Tunnel) Bytes() uint64 { return t.bytes }

// Send carries one frame from one end to the other. from must be one of
// the endpoints.
func (t *Tunnel) Send(from string, size int64, payload any, deliver func(any)) error {
	var to string
	switch from {
	case t.a:
		to = t.b
	case t.b:
		to = t.a
	default:
		return fmt.Errorf("vnet: %q is not a tunnel endpoint", from)
	}
	t.frames++
	t.bytes += uint64(size)
	return t.net.Send(from, to, size+frameOverheadBytes, payload, deliver)
}

// Overlay is a self-optimizing virtual network among the VMs of one
// user or application: each pair of members communicates either directly
// or through one relay member, whichever the last optimization pass
// measured as faster (cf. resilient overlay networks).
type Overlay struct {
	net     *netsim.Network
	members []string
	// via[a][b] is the relay for a->b, or "" for direct.
	via map[string]map[string]string

	frames uint64
}

// NewOverlay builds an overlay among the given member nodes and runs an
// initial optimization pass.
func NewOverlay(n *netsim.Network, members ...string) (*Overlay, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("vnet: overlay needs at least 2 members, got %d", len(members))
	}
	for _, m := range members {
		if n.Node(m) == nil {
			return nil, fmt.Errorf("vnet: overlay member %q not attached", m)
		}
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	o := &Overlay{net: n, members: sorted}
	o.Optimize()
	return o, nil
}

// Members returns the member nodes.
func (o *Overlay) Members() []string {
	return append([]string(nil), o.members...)
}

// Frames returns the number of messages carried.
func (o *Overlay) Frames() uint64 { return o.frames }

// Optimize measures pairwise latency (for a representative 1 KB probe)
// and picks, for every ordered pair, the best of the direct path and
// every one-relay detour. Call it again after topology changes — the
// overlay "optimizes itself with respect to the communication between
// the virtual machines".
func (o *Overlay) Optimize() {
	probe := int64(1024)
	lat := func(a, b string) (sim.Duration, bool) {
		d, err := o.net.Latency(a, b, probe)
		if err != nil {
			return 0, false
		}
		return d, true
	}
	o.via = make(map[string]map[string]string, len(o.members))
	for _, a := range o.members {
		o.via[a] = make(map[string]string)
		for _, b := range o.members {
			if a == b {
				continue
			}
			best, okDirect := lat(a, b)
			relay := ""
			for _, r := range o.members {
				if r == a || r == b {
					continue
				}
				d1, ok1 := lat(a, r)
				d2, ok2 := lat(r, b)
				if !ok1 || !ok2 {
					continue
				}
				if !okDirect || d1+d2 < best {
					best = d1 + d2
					relay = r
					okDirect = true
				}
			}
			o.via[a][b] = relay
		}
	}
}

// Via returns the relay chosen for a->b ("" means direct).
func (o *Overlay) Via(a, b string) string {
	if m, ok := o.via[a]; ok {
		return m[b]
	}
	return ""
}

// Send routes a message between members along the optimized path.
func (o *Overlay) Send(a, b string, size int64, payload any, deliver func(any)) error {
	if a == b {
		return fmt.Errorf("vnet: overlay self-send")
	}
	m, ok := o.via[a]
	if !ok {
		return fmt.Errorf("vnet: %q is not an overlay member", a)
	}
	if _, isMember := o.via[b]; !isMember {
		return fmt.Errorf("vnet: %q is not an overlay member", b)
	}
	o.frames++
	size += frameOverheadBytes
	if relay := m[b]; relay != "" {
		return o.net.Send(a, relay, size, payload, func(p any) {
			// Relay hop: forward to the destination.
			_ = o.net.Send(relay, b, size, p, deliver)
		})
	}
	return o.net.Send(a, b, size, payload, deliver)
}
