// Package chunk is the content-addressed transfer plane: VM state files
// are split into fixed-size chunks, each named by a key that stands in
// for a collision-free content hash. Stores keep a per-file key
// manifest, every node keeps an LRU cache of the chunk keys whose
// content it holds, and the staging paths (gram.Stage, the tape
// archive, checkpoint staging) move only the chunks the destination
// lacks — the paper's "reducing VM overheads" argument applied to the
// state-transfer hot path.
//
// The simulation carries no real bytes, so content identity is modeled
// rather than computed: a key is minted whenever new content comes into
// being (file creation, a guest write dirtying a chunk) and propagated
// whenever content is copied (Store.Copy, staging, tape recall). Two
// chunks share a key exactly when one was copied from the other, which
// is the conservative under-approximation of a real content hash:
// dedup hits are always sound, independent re-creations of identical
// content just miss. Key 0 is reserved for the all-zero chunk (file
// holes), which every hole legitimately shares.
package chunk

import "vmgrid/internal/lru"

// Key names one chunk's content. The zero Key is the all-zero chunk.
type Key uint64

// DefaultChunkBytes is the chunk size used when Config leaves it zero:
// large enough that manifest overhead stays ~0.003% of the data, small
// enough that a 64 KiB COW page write dirties at most two chunks.
const DefaultChunkBytes int64 = 256 << 10

// Config tunes the plane.
type Config struct {
	// ChunkBytes is the fixed chunk size (default DefaultChunkBytes).
	ChunkBytes int64
	// CacheBytes caps each node's chunk cache; 0 = unbounded (every
	// chunk a node ever held stays nameable).
	CacheBytes int64
}

// Stats aggregates chunk-cache accounting, per cache or plane-wide.
type Stats struct {
	// Hits counts staging lookups answered from the destination cache
	// (chunks that never crossed the wire).
	Hits uint64
	// Misses counts lookups that forced a transfer.
	Misses uint64
	// Evictions counts cache entries dropped under byte pressure.
	Evictions uint64
	// BytesSaved is the payload bytes dedup kept off the wire.
	BytesSaved uint64
}

// HitRate returns Hits/(Hits+Misses), 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Plane is one grid's chunk namespace: the mint for fresh content keys
// and the per-node caches. A single Plane must be shared by every store
// that should dedup against each other.
type Plane struct {
	cfg    Config
	minted uint64
	caches map[string]*Cache
}

// NewPlane creates a plane with the given configuration.
func NewPlane(cfg Config) *Plane {
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = DefaultChunkBytes
	}
	return &Plane{cfg: cfg, caches: make(map[string]*Cache)}
}

// ChunkBytes returns the plane's chunk size.
func (p *Plane) ChunkBytes() int64 { return p.cfg.ChunkBytes }

// Mint issues a key for content that just came into being. Keys are
// drawn from a splitmix64 stream over a monotonic counter: globally
// fresh (never colliding with any previously minted key), so a minted
// chunk matches a cache entry only through explicit propagation.
func (p *Plane) Mint() Key {
	p.minted++
	z := p.minted * 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1 // 0 is the reserved zero-chunk key
	}
	return Key(z)
}

// Count returns how many chunks a file of the given size spans.
func (p *Plane) Count(size int64) int {
	if size <= 0 {
		return 0
	}
	return int((size + p.cfg.ChunkBytes - 1) / p.cfg.ChunkBytes)
}

// Span returns the extent [off, off+n) of chunk i in a file of the
// given size.
func (p *Plane) Span(size int64, i int) (off, n int64) {
	off = int64(i) * p.cfg.ChunkBytes
	n = p.cfg.ChunkBytes
	if off+n > size {
		n = size - off
	}
	return off, n
}

// CacheFor returns node's chunk cache, creating it on first use.
func (p *Plane) CacheFor(node string) *Cache {
	c := p.caches[node]
	if c == nil {
		c = &Cache{
			capacity: p.cfg.CacheBytes,
			lru:      lru.New[Key](1024),
			sizes:    make(map[Key]int64, 1024),
		}
		p.caches[node] = c
	}
	return c
}

// Stats sums every node cache's counters. Addition commutes, so the
// result is independent of map iteration order.
func (p *Plane) Stats() Stats {
	var out Stats
	for _, c := range p.caches {
		s := c.Stats()
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Evictions += s.Evictions
		out.BytesSaved += s.BytesSaved
	}
	return out
}

// Cache is one node's chunk holdings: the set of keys whose content is
// materialized somewhere on the node (a file, or retained content-store
// blocks after the file was deleted), LRU-bounded by bytes.
type Cache struct {
	capacity int64
	used     int64
	lru      *lru.Cache[Key]
	sizes    map[Key]int64
	stats    Stats
}

// Len returns the number of cached keys.
func (c *Cache) Len() int { return c.lru.Len() }

// UsedBytes returns the bytes the cached chunks occupy.
func (c *Cache) UsedBytes() int64 { return c.used }

// Stats returns the cache's counters.
func (c *Cache) Stats() Stats { return c.stats }

// Contains reports whether the key is cached, without touching recency
// or accounting (for assertions and scrapes).
func (c *Cache) Contains(k Key) bool {
	_, ok := c.sizes[k]
	return ok
}

// Lookup is the staging-time membership test: a hit touches recency and
// records size bytes saved; a miss records the forced transfer.
func (c *Cache) Lookup(k Key, size int64) bool {
	if c.lru.Touch(k) {
		c.stats.Hits++
		c.stats.BytesSaved += uint64(size)
		return true
	}
	c.stats.Misses++
	return false
}

// Add records that the node now holds the chunk, evicting the least
// recently used entries if the byte cap is exceeded. Re-adding an
// existing key just refreshes recency.
func (c *Cache) Add(k Key, size int64) {
	if _, ok := c.sizes[k]; ok {
		c.lru.Touch(k)
		return
	}
	c.lru.Insert(k)
	c.sizes[k] = size
	c.used += size
	for c.capacity > 0 && c.used > c.capacity {
		old, ok := c.lru.EvictOldest()
		if !ok {
			break
		}
		c.used -= c.sizes[old]
		delete(c.sizes, old)
		c.stats.Evictions++
	}
}
