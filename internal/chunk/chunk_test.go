package chunk

import "testing"

func TestMintKeysFreshAndNonZero(t *testing.T) {
	p := NewPlane(Config{})
	seen := make(map[Key]bool, 1<<17)
	for i := 0; i < 100000; i++ {
		k := p.Mint()
		if k == 0 {
			t.Fatalf("mint %d returned the reserved zero-chunk key", i)
		}
		if seen[k] {
			t.Fatalf("mint %d repeated key %x — dedup would alias unrelated content", i, k)
		}
		seen[k] = true
	}
}

func TestMintDeterministicAcrossPlanes(t *testing.T) {
	a, b := NewPlane(Config{}), NewPlane(Config{})
	for i := 0; i < 1000; i++ {
		if ka, kb := a.Mint(), b.Mint(); ka != kb {
			t.Fatalf("mint %d differs across fresh planes: %x vs %x", i, ka, kb)
		}
	}
}

func TestCountAndSpan(t *testing.T) {
	p := NewPlane(Config{ChunkBytes: 1000})
	counts := []struct {
		size int64
		want int
	}{{0, 0}, {-5, 0}, {1, 1}, {999, 1}, {1000, 1}, {1001, 2}, {2500, 3}}
	for _, c := range counts {
		if got := p.Count(c.size); got != c.want {
			t.Errorf("Count(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	// Full interior chunk, then the short tail — the extent that bit the
	// staging path when it assumed every chunk was full-size.
	if off, n := p.Span(2500, 0); off != 0 || n != 1000 {
		t.Errorf("Span(2500, 0) = (%d, %d), want (0, 1000)", off, n)
	}
	if off, n := p.Span(2500, 2); off != 2000 || n != 500 {
		t.Errorf("Span(2500, 2) = (%d, %d), want (2000, 500)", off, n)
	}
	if off, n := p.Span(1000, 0); off != 0 || n != 1000 {
		t.Errorf("Span(1000, 0) = (%d, %d), want (0, 1000)", off, n)
	}
}

func TestDefaultChunkBytes(t *testing.T) {
	if got := NewPlane(Config{}).ChunkBytes(); got != DefaultChunkBytes {
		t.Errorf("default chunk size = %d, want %d", got, DefaultChunkBytes)
	}
	if got := NewPlane(Config{ChunkBytes: 4096}).ChunkBytes(); got != 4096 {
		t.Errorf("explicit chunk size = %d, want 4096", got)
	}
}

func TestCacheLookupAccounting(t *testing.T) {
	p := NewPlane(Config{})
	c := p.CacheFor("n1")
	if p.CacheFor("n1") != c {
		t.Fatal("CacheFor minted a second cache for the same node")
	}
	k := p.Mint()
	if c.Lookup(k, 100) {
		t.Fatal("lookup hit on an empty cache")
	}
	c.Add(k, 100)
	if !c.Contains(k) {
		t.Fatal("added key not contained")
	}
	if !c.Lookup(k, 100) {
		t.Fatal("lookup missed an added key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.BytesSaved != 100 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 100 bytes saved", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
	if got := (Stats{}).HitRate(); got != 0 {
		t.Errorf("empty hit rate = %v, want 0", got)
	}
}

// TestCacheEvictionUnderPressure fills a byte-capped cache past its
// limit and checks that eviction is LRU (a just-touched key survives,
// the coldest goes), that the byte accounting never exceeds the cap,
// and that evicted keys genuinely miss afterwards.
func TestCacheEvictionUnderPressure(t *testing.T) {
	p := NewPlane(Config{ChunkBytes: 100, CacheBytes: 1000})
	c := p.CacheFor("n1")
	keys := make([]Key, 10)
	for i := range keys {
		keys[i] = p.Mint()
		c.Add(keys[i], 100)
	}
	if c.UsedBytes() != 1000 || c.Len() != 10 {
		t.Fatalf("full cache = %d bytes / %d keys, want 1000 / 10", c.UsedBytes(), c.Len())
	}
	// Touch the oldest key so the second-oldest becomes the LRU victim.
	if !c.Lookup(keys[0], 100) {
		t.Fatal("resident key missed")
	}
	c.Add(p.Mint(), 100)
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want exactly 1", st.Evictions)
	}
	if c.UsedBytes() > 1000 {
		t.Errorf("used %d bytes exceeds the 1000-byte cap", c.UsedBytes())
	}
	if !c.Contains(keys[0]) {
		t.Error("recently touched key was evicted — not LRU order")
	}
	if c.Contains(keys[1]) {
		t.Error("coldest key survived — not LRU order")
	}
	if c.Lookup(keys[1], 100) {
		t.Error("evicted key still answers lookups")
	}
	// Re-adding an existing key must not double-count its bytes.
	used := c.UsedBytes()
	c.Add(keys[0], 100)
	if c.UsedBytes() != used {
		t.Errorf("re-add changed used bytes %d -> %d", used, c.UsedBytes())
	}
}

// TestCacheOversizedChunkDoesNotWedge: a single chunk larger than the
// whole cap flushes everything (itself included) but leaves the cache
// consistent and usable.
func TestCacheOversizedChunkDoesNotWedge(t *testing.T) {
	p := NewPlane(Config{CacheBytes: 1000})
	c := p.CacheFor("n1")
	small := p.Mint()
	c.Add(small, 100)
	c.Add(p.Mint(), 5000)
	if c.UsedBytes() < 0 {
		t.Fatalf("used bytes went negative: %d", c.UsedBytes())
	}
	if c.Contains(small) {
		t.Error("small key survived a flush that needed its bytes")
	}
	k := p.Mint()
	c.Add(k, 100)
	if !c.Contains(k) {
		t.Error("cache unusable after oversized insert")
	}
}

func TestPlaneStatsSumAcrossNodes(t *testing.T) {
	p := NewPlane(Config{})
	a, b := p.CacheFor("a"), p.CacheFor("b")
	k := p.Mint()
	a.Add(k, 64)
	a.Lookup(k, 64)
	b.Lookup(k, 64) // b never held it: miss
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.BytesSaved != 64 {
		t.Errorf("plane stats = %+v, want the two caches' counters summed", st)
	}
}
