package experiments

import (
	"reflect"
	"testing"
)

// TestAblationBalanceImprovesTail is the ablation's headline claim: on
// the skewed burst workload, turning the balancer on strictly improves
// the p99 slowdown for the pack policy — the policy that manufactures
// the worst hotspot — and never does so by parking sessions without
// migrating (the improvement must come with actual migrations).
func TestAblationBalanceImprovesTail(t *testing.T) {
	if testing.Short() {
		t.Skip("full balance sweep in -short mode")
	}
	rows, err := AblationBalance(3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	byArm := make(map[string]map[bool]BalanceRow)
	for _, r := range rows {
		if byArm[r.Policy] == nil {
			byArm[r.Policy] = make(map[bool]BalanceRow)
		}
		byArm[r.Policy][r.Balancer] = r
	}
	pack := byArm["pack"]
	off, on := pack[false], pack[true]
	if !(on.P99 < off.P99) {
		t.Errorf("pack: balancer-on p99 %.3f not below balancer-off %.3f", on.P99, off.P99)
	}
	if on.Migrations == 0 {
		t.Error("pack: balancer-on arm reported zero migrations")
	}
	if !(on.SpreadLoad < off.SpreadLoad) {
		t.Errorf("pack: balancer-on spread %.3f not below balancer-off %.3f",
			on.SpreadLoad, off.SpreadLoad)
	}
	for policy, arms := range byArm {
		if arms[false].Migrations != 0 {
			t.Errorf("%s: balancer-off arm migrated %.0f times", policy, arms[false].Migrations)
		}
		for _, r := range arms {
			if r.P50 < 1 || r.P99 < r.P50 {
				t.Errorf("%s balancer=%v: slowdown percentiles p50=%.3f p99=%.3f malformed",
					policy, r.Balancer, r.P50, r.P99)
			}
		}
	}
}

// TestAblationBalanceParallelInvariant: the sweep's numbers must be
// identical at any worker count — the determinism contract every table
// in the repo honors.
func TestAblationBalanceParallelInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full balance sweep in -short mode")
	}
	w1, err := AblationBalance(7, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	w8, err := AblationBalance(7, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w1, w8) {
		t.Errorf("rows differ between workers=1 and workers=8:\n%+v\n%+v", w1, w8)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	vs := []float64{4, 1, 3, 2}
	if q := quantile(vs, 0.5); q != 2 {
		t.Errorf("p50 = %v, want 2", q)
	}
	if q := quantile(vs, 0.99); q != 4 {
		t.Errorf("p99 = %v, want 4", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	if !reflect.DeepEqual(vs, []float64{4, 1, 3, 2}) {
		t.Error("quantile mutated its input")
	}
}
