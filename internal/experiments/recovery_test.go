package experiments

import "testing"

// TestAblationRecoveryMonotoneInInterval is the ablation's headline
// claim: within each failure rate, shrinking the checkpoint interval
// shrinks both the work replayed per recovery and the MTTR. (The paired
// design replays one crash schedule across the interval arms, and the
// intervals divide each other, so per-crash lost work is ordered almost
// surely — any inversion means the checkpoint accounting broke.)
func TestAblationRecoveryMonotoneInInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("full recovery sweep in -short mode")
	}
	rows, err := AblationRecovery(3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	byMTBF := make(map[float64][]RecoveryRow)
	var order []float64
	for _, r := range rows {
		if _, seen := byMTBF[r.MTBFSec]; !seen {
			order = append(order, r.MTBFSec)
		}
		byMTBF[r.MTBFSec] = append(byMTBF[r.MTBFSec], r)
	}
	for _, mtbf := range order {
		group := byMTBF[mtbf]
		if len(group) < 2 {
			t.Fatalf("mtbf=%v: only %d interval rows", mtbf, len(group))
		}
		crashes := 0.0
		for i, r := range group {
			crashes += r.Crashes
			if i == 0 {
				continue
			}
			prev := group[i-1]
			if prev.IntervalSec >= r.IntervalSec {
				t.Fatalf("mtbf=%v: rows not in ascending interval order", mtbf)
			}
			if prev.LostWorkSec > r.LostWorkSec {
				t.Errorf("mtbf=%v: lost work %.1fs at ckpt=%.0fs > %.1fs at ckpt=%.0fs",
					mtbf, prev.LostWorkSec, prev.IntervalSec, r.LostWorkSec, r.IntervalSec)
			}
			if prev.MTTRSec > r.MTTRSec {
				t.Errorf("mtbf=%v: MTTR %.1fs at ckpt=%.0fs > %.1fs at ckpt=%.0fs",
					mtbf, prev.MTTRSec, prev.IntervalSec, r.MTTRSec, r.IntervalSec)
			}
		}
		if crashes == 0 {
			t.Errorf("mtbf=%v: no crashes across the whole cell; fault injection inert", mtbf)
		}
		first, last := group[0], group[len(group)-1]
		if !(first.LostWorkSec < last.LostWorkSec) {
			t.Errorf("mtbf=%v: lost work not strictly lower at %.0fs (%.1fs) than at %.0fs (%.1fs)",
				mtbf, first.IntervalSec, first.LostWorkSec, last.IntervalSec, last.LostWorkSec)
		}
		if !(first.MTTRSec < last.MTTRSec) {
			t.Errorf("mtbf=%v: MTTR not strictly lower at %.0fs (%.1fs) than at %.0fs (%.1fs)",
				mtbf, first.IntervalSec, first.MTTRSec, last.IntervalSec, last.MTTRSec)
		}
		for _, r := range group {
			if r.Availability <= 0 || r.Availability > 1 {
				t.Errorf("mtbf=%v ckpt=%.0fs: availability %.4f out of (0, 1]",
					mtbf, r.IntervalSec, r.Availability)
			}
			if r.CompletionSec < recoveryTaskSec {
				t.Errorf("mtbf=%v ckpt=%.0fs: completion %.1fs below the task's %d user-seconds",
					mtbf, r.IntervalSec, r.CompletionSec, recoveryTaskSec)
			}
		}
	}
}
