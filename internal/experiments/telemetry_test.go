package experiments

import (
	"bytes"
	"strings"
	"testing"

	"vmgrid/internal/sim"
	"vmgrid/internal/telemetry"
)

// TestTable2TelemetryDeterministicAcrossWorkers is the export's
// contract: the -telemetry JSON, like the tables, is a pure function of
// the seed — running the same samples on 1 worker and on 8 must produce
// byte-identical bytes.
func TestTable2TelemetryDeterministicAcrossWorkers(t *testing.T) {
	export := func(workers int) string {
		set := telemetry.NewSet()
		cfg := Table2Config{Seed: 7, Samples: 1, Workers: workers, Telemetry: set}
		if _, err := Table2(cfg); err != nil {
			t.Fatal(err)
		}
		if set.Len() != 6 {
			t.Fatalf("telemetry set has %d entries, want 6 (one per cell)", set.Len())
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one := export(1)
	eight := export(8)
	if one != eight {
		t.Fatalf("telemetry export differs between 1 and 8 workers:\n1: %d bytes\n8: %d bytes", len(one), len(eight))
	}
	// The scrapes really saw the fabric: node gauges for both nodes and
	// the cell labels must be present.
	for _, want := range []string{
		`"label":"table2/VM-reboot/Persistent/0"`,
		`"label":"table2/VM-restore/Non-persistent LoopbackNFS/0"`,
		"node.load{node=compute}",
		"node.load{node=front}",
	} {
		if !strings.Contains(one, want) {
			t.Errorf("telemetry export missing %q", want)
		}
	}
}

// TestFig1TelemetryDeterministicAcrossWorkers does the same for the
// microbenchmark's scenario collectors, which record the per-task
// slowdown series rather than grid scrapes.
func TestFig1TelemetryDeterministicAcrossWorkers(t *testing.T) {
	export := func(workers int) string {
		set := telemetry.NewSet()
		cfg := Fig1Config{Seed: 3, Samples: 20, TaskSeconds: 0.5, Workers: workers, Telemetry: set}
		if _, err := Figure1(cfg); err != nil {
			t.Fatal(err)
		}
		if set.Len() != 12 {
			t.Fatalf("telemetry set has %d entries, want 12 (one per scenario)", set.Len())
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one := export(1)
	eight := export(8)
	if one != eight {
		t.Fatalf("fig1 telemetry export differs between 1 and 8 workers:\n1: %d bytes\n8: %d bytes", len(one), len(eight))
	}
	if !strings.Contains(one, `"name":"task.slowdown"`) {
		t.Error("fig1 telemetry export missing the task.slowdown series")
	}
}

// TestRecoveryLeaseAlertsTrackCrashes cross-checks the telemetry
// pipeline's stale-lease alert against the supervisor's lease-expiry
// failure detector: the alert threshold (2×heartbeat) is tighter than
// the detector's TTL (3×heartbeat), so every crash the supervisor
// recovers from must first have tripped the alert — and one crash
// yields exactly one firing (the alert holds until the lease renews
// after failover), so firings never exceed crashes.
func TestRecoveryLeaseAlertsTrackCrashes(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		arm, _, err := recoveryRun(seed, 10*sim.Minute, 60*sim.Second, false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if arm.Crashes == 0 {
			if arm.LeaseAlerts != 0 {
				t.Errorf("seed %d: %d stale-lease alerts with no crashes", seed, arm.LeaseAlerts)
			}
			continue
		}
		if arm.LeaseAlerts == 0 {
			t.Errorf("seed %d: %d crashes but no stale-lease alert fired", seed, arm.Crashes)
		}
		if arm.LeaseAlerts > arm.Crashes {
			t.Errorf("seed %d: %d stale-lease alerts exceed %d crashes", seed, arm.LeaseAlerts, arm.Crashes)
		}
		return // one crashing schedule is enough
	}
	t.Fatal("no seed in 1..4 produced a crash; fault injection inert")
}
