package experiments

import (
	"context"
	"fmt"

	"vmgrid/internal/chunk"
	"vmgrid/internal/core"
	"vmgrid/internal/guest"
	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/vmm"
)

// ---------------------------------------------------------------------
// Ablation J: chunked state transfer & delta checkpoints
// ---------------------------------------------------------------------
//
// The paper's §3.1 worry — "transfer of entire VM states can lead to
// unnecessary traffic" — applies to every state move, not just the
// first one: re-instantiating an image a node staged before, and
// re-staging a checkpoint whose memory is mostly unchanged, both copy
// bytes the destination already holds. This ablation turns the
// content-addressed chunk plane on and off over the same grid and
// measures what it buys on both paths: staged instantiation against a
// warm chunk cache, and periodic supervisor checkpoints of a guest
// dirtying memory at a fixed rate, swept over chunk size × checkpoint
// interval. The baseline arm (chunk "full-copy") is the historical
// whole-file transfer; savings columns compare each chunked arm to the
// baseline at the same interval.

// DeltaRow aggregates one (chunk size, checkpoint interval) cell.
type DeltaRow struct {
	// ChunkKiB is the chunk size in KiB; 0 is the whole-file baseline.
	ChunkKiB int64
	// IntervalSec is the supervisor checkpoint interval under test.
	IntervalSec float64
	// ColdSec is staged instantiation latency with every cache cold.
	ColdSec float64
	// WarmSec is instantiation latency for a second session on the same
	// node, whose chunk cache still holds the image from the first.
	WarmSec float64
	// WarmWireMB is the payload the warm instantiation put on the wire.
	WarmWireMB float64
	// WarmSavings is the baseline's warm wire bytes over this arm's.
	WarmSavings float64
	// CkptCostSec is guest frozen time per run across the steady-state
	// checkpoints (the adoption baseline checkpoint is excluded).
	CkptCostSec float64
	// CkptWireMB is mean bytes on the wire per steady-state checkpoint.
	CkptWireMB float64
	// CkptSavings is the baseline's bytes/checkpoint over this arm's.
	CkptSavings float64
	// HitRate is the plane-wide chunk cache hit rate over the run.
	HitRate float64
}

// deltaArm is one simulated run at one (chunk size, interval) cell.
type deltaArm struct {
	ColdSec     float64
	WarmSec     float64
	ColdBytes   uint64
	WarmBytes   uint64
	CkptCostSec float64
	CkptBytes   uint64
	Ckpts       int
	HitRate     float64
}

const (
	// deltaDiskBytes / deltaMemBytes size the staged image: a disk big
	// enough that instantiation is transfer-dominated, a memory image
	// big enough that full-copy checkpoints visibly tax the run.
	deltaDiskBytes = 1 * hw.GB
	deltaMemBytes  = 64 * hw.MB
	// deltaTaskSec runs the supervised workload long enough for several
	// steady-state checkpoints at the slowest interval.
	deltaTaskSec = 600
	// deltaDirtyBps is the guest's modeled memory dirty rate: at 30 s
	// intervals roughly 4 MB of the 64 MB image changes per checkpoint.
	deltaDirtyBps = 128 << 10
)

// AblationDelta sweeps chunk size × checkpoint interval against a
// paired whole-file baseline. One sample is one (interval, replicate)
// pair; all chunk-size arms of a sample replay the same seed, so the
// savings columns compare identical randomness. samples <= 0 selects
// the default replicate count; samples × len(intervals) fan out across
// workers goroutines.
func AblationDelta(seed uint64, samples, workers int) ([]DeltaRow, error) {
	intervals := []sim.Duration{30 * sim.Second, 60 * sim.Second, 120 * sim.Second}
	sizes := []int64{0, 64 << 10, 256 << 10, 1 << 20}
	if samples <= 0 {
		samples = 2
	}
	results, err := RunSamples(context.Background(), seed, len(intervals)*samples, workers,
		func(i int, sseed uint64) ([]deltaArm, error) {
			iv := intervals[i/samples]
			arms := make([]deltaArm, len(sizes))
			for j, size := range sizes {
				a, err := deltaRun(sseed, size, iv)
				if err != nil {
					return nil, fmt.Errorf("delta chunk=%d ckpt=%v sample %d: %w", size, iv, i, err)
				}
				arms[j] = a
			}
			return arms, nil
		})
	if err != nil {
		return nil, err
	}
	rows := make([]DeltaRow, 0, len(intervals)*len(sizes))
	for ii, iv := range intervals {
		means := make([]deltaArm, len(sizes))
		for si := 0; si < samples; si++ {
			for ji := range sizes {
				a := results[ii*samples+si][ji]
				means[ji].ColdSec += a.ColdSec
				means[ji].WarmSec += a.WarmSec
				means[ji].ColdBytes += a.ColdBytes
				means[ji].WarmBytes += a.WarmBytes
				means[ji].CkptCostSec += a.CkptCostSec
				means[ji].CkptBytes += a.CkptBytes
				means[ji].Ckpts += a.Ckpts
				means[ji].HitRate += a.HitRate
			}
		}
		perCkpt := func(m deltaArm) float64 {
			if m.Ckpts == 0 {
				return 0
			}
			return float64(m.CkptBytes) / float64(m.Ckpts)
		}
		base := means[0]
		for ji, size := range sizes {
			m := means[ji]
			n := float64(samples)
			row := DeltaRow{
				ChunkKiB:    size >> 10,
				IntervalSec: iv.Seconds(),
				ColdSec:     m.ColdSec / n,
				WarmSec:     m.WarmSec / n,
				WarmWireMB:  float64(m.WarmBytes) / n / float64(hw.MB),
				CkptCostSec: m.CkptCostSec / n,
				CkptWireMB:  perCkpt(m) / float64(hw.MB),
				HitRate:     m.HitRate / n,
			}
			if size > 0 {
				if m.WarmBytes > 0 {
					row.WarmSavings = float64(base.WarmBytes) / float64(m.WarmBytes)
				}
				if pc := perCkpt(m); pc > 0 {
					row.CkptSavings = perCkpt(base) / pc
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// deltaRun simulates one cell: a staged instantiation with cold caches,
// a second one against the warm cache, then a supervised run with
// periodic checkpoints to the data server while the guest dirties
// memory and its COW disk. chunkBytes 0 leaves the chunk plane off —
// the historical whole-file transfer on every path.
func deltaRun(seed uint64, chunkBytes int64, interval sim.Duration) (deltaArm, error) {
	var arm deltaArm
	g := core.NewGrid(seed)
	k := g.Kernel()
	net := g.Net()
	for _, cfg := range []core.NodeConfig{
		{Name: "front", Site: "a", Role: core.RoleFrontEnd},
		{Name: "c1", Site: "a", Role: core.RoleCompute, Slots: 2, DHCPPrefix: "10.2.0."},
		{Name: "data", Site: "a", Role: core.RoleDataServer},
		{Name: "images", Site: "a", Role: core.RoleImageServer},
	} {
		if _, err := g.AddNode(cfg); err != nil {
			return arm, err
		}
	}
	if err := g.Net().BuildLAN("front", "c1", "data", "images"); err != nil {
		return arm, err
	}
	var plane *chunk.Plane
	if chunkBytes > 0 {
		plane = g.EnableChunkedStaging(chunk.Config{ChunkBytes: chunkBytes})
	}
	img := storage.ImageInfo{Name: "rh72", OS: "rh72", DiskBytes: deltaDiskBytes, MemBytes: deltaMemBytes}
	if err := g.Node("images").InstallImage(img); err != nil {
		return arm, err
	}

	scfg := core.SessionConfig{
		User: "bench", FrontEnd: "front", Image: "rh72",
		Mode: vmm.WarmRestore, Disk: core.NonPersistent, Access: core.AccessStaged,
		DirtyBps: deltaDirtyBps,
	}
	// Supervisor heartbeats keep the event queue non-empty, so drive the
	// kernel in bounded quanta throughout.
	step := func(cap sim.Duration, cond func() bool) {
		deadline := k.Now().Add(cap)
		for !cond() && k.Now() < deadline {
			_ = k.RunUntil(k.Now().Add(sim.Minute))
		}
	}
	instantiate := func() (*core.Session, float64, uint64, error) {
		t0, b0 := k.Now(), net.BytesSent()
		var sess *core.Session
		var serr error
		var secs float64
		var bytes uint64
		done := false
		if _, err := g.CreateSession(scfg, func(s *core.Session, err error) {
			sess, serr, done = s, err, true
			secs = k.Now().Sub(t0).Seconds()
			bytes = net.BytesSent() - b0
		}); err != nil {
			return nil, 0, 0, err
		}
		step(6*sim.Hour, func() bool { return done })
		if !done || serr != nil {
			return nil, 0, 0, fmt.Errorf("experiments: delta instantiation: done=%v err=%v", done, serr)
		}
		return sess, secs, bytes, nil
	}

	// Cold, then warm: the second session stages the same image files to
	// the same node, whose chunk cache survived the first's shutdown.
	s1, coldSec, coldBytes, err := instantiate()
	if err != nil {
		return arm, err
	}
	arm.ColdSec, arm.ColdBytes = coldSec, coldBytes
	s1.Shutdown()
	s2, warmSec, warmBytes, err := instantiate()
	if err != nil {
		return arm, err
	}
	arm.WarmSec, arm.WarmBytes = warmSec, warmBytes
	s2.Shutdown()

	// Supervised phase: a local COW session on c1 checkpointing to data.
	// The image lands on c1 only now — installing it earlier would make
	// c1 its own closest "image server" and turn the staged
	// instantiations above into loopback copies.
	if err := g.Node("c1").InstallImage(img); err != nil {
		return arm, err
	}
	lcfg := scfg
	lcfg.Access = core.AccessLocal
	var s3 *core.Session
	sready, serr := false, error(nil)
	if _, err := g.CreateSession(lcfg, func(s *core.Session, err error) {
		s3, serr, sready = s, err, true
	}); err != nil {
		return arm, err
	}
	step(sim.Hour, func() bool { return sready })
	if !sready || serr != nil {
		return arm, fmt.Errorf("experiments: delta local session: ready=%v err=%v", sready, serr)
	}

	sup, err := core.NewSupervisor(g, core.SupervisorConfig{
		CheckpointInterval: interval,
		StableNode:         "data",
	})
	if err != nil {
		return arm, err
	}
	adopted, aerr := false, error(nil)
	if err := sup.Adopt(s3, func(err error) { aerr, adopted = err, true }); err != nil {
		return arm, err
	}
	step(sim.Hour, func() bool { return adopted })
	if !adopted || aerr != nil {
		return arm, fmt.Errorf("experiments: delta adopt: adopted=%v err=%v", adopted, aerr)
	}
	// Steady state starts after the adoption baseline checkpoint: that
	// first image is a full copy in both arms by construction.
	baseStats := sup.Stats()
	bytesBase := net.BytesSent()

	w := guest.Workload{Name: "churn", CPUSeconds: deltaTaskSec, Writes: 600, WriteBytes: 48 * hw.MB}
	finished := false
	var res guest.TaskResult
	var statsAt core.SupervisorStats
	var bytesAt uint64
	if err := sup.Run(s3, w, func(r guest.TaskResult) {
		res = r
		// Snapshot at completion so checkpoints after the task is done do
		// not leak into the cell.
		statsAt = sup.Stats()
		bytesAt = net.BytesSent()
		finished = true
	}); err != nil {
		return arm, err
	}
	step(12*sim.Hour, func() bool { return finished })
	sup.Stop()
	if !finished {
		return arm, fmt.Errorf("experiments: delta run never finished (state %q)", s3.State())
	}
	if res.Err != nil {
		return arm, fmt.Errorf("experiments: delta task: %w", res.Err)
	}
	arm.Ckpts = statsAt.Checkpoints - baseStats.Checkpoints
	arm.CkptBytes = bytesAt - bytesBase
	arm.CkptCostSec = statsAt.CheckpointSec - baseStats.CheckpointSec
	if arm.Ckpts <= 0 {
		return arm, fmt.Errorf("experiments: delta run committed no steady-state checkpoints")
	}
	if plane != nil {
		arm.HitRate = plane.Stats().HitRate()
	}
	return arm, nil
}

// DeltaTable renders ablation J.
func DeltaTable(rows []DeltaRow) *Table {
	t := &Table{
		Title: "Ablation J: chunked state transfer & delta checkpoints (1 GB disk, 64 MB memory)",
		Note: "warm = second staged instantiation on the same node; wire = payload bytes on the network; " +
			"save = full-copy bytes over chunked bytes at the same interval",
		Header: []string{"chunk", "ckpt every (s)", "cold (s)", "warm (s)", "warm wire (MB)",
			"warm save", "ckpt cost (s)", "ckpt wire (MB)", "ckpt save", "hit rate"},
	}
	for _, r := range rows {
		chunkLbl := "full-copy"
		warmSave, ckptSave, hit := "-", "-", "-"
		if r.ChunkKiB > 0 {
			chunkLbl = fmt.Sprintf("%d KiB", r.ChunkKiB)
			warmSave = fmt.Sprintf("%.0fx", r.WarmSavings)
			ckptSave = fmt.Sprintf("%.1fx", r.CkptSavings)
			hit = pct(r.HitRate)
		}
		t.Rows = append(t.Rows, []string{
			chunkLbl,
			fmt.Sprintf("%.0f", r.IntervalSec),
			f1(r.ColdSec),
			f1(r.WarmSec),
			f2(r.WarmWireMB),
			warmSave,
			f1(r.CkptCostSec),
			f2(r.CkptWireMB),
			ckptSave,
			hit,
		})
	}
	return t
}
