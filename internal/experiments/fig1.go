package experiments

import (
	"context"
	"fmt"

	"vmgrid/internal/guest"
	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/obs"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/telemetry"
	"vmgrid/internal/trace"
	"vmgrid/internal/vmm"
)

// Placement says where a task runs in the Figure 1 grid of scenarios.
type Placement int

// Placements.
const (
	OnPhysical Placement = iota + 1
	OnVM
)

// String names the placement as in the paper's figure.
func (p Placement) String() string {
	switch p {
	case OnPhysical:
		return "physical"
	case OnVM:
		return "VM"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Fig1Config parameterizes the microbenchmark.
type Fig1Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Samples per scenario (the paper uses 1000).
	Samples int
	// TaskSeconds is the CPU work of one test task sample.
	TaskSeconds float64
	// Workers bounds the goroutines running scenarios concurrently;
	// <= 0 means one per CPU. Output is identical for every value.
	Workers int
	// Trace, when non-nil, collects one tracer per scenario (VM
	// lifecycle spans and the world-switch gauge), added in scenario
	// order so the set is byte-identical at any worker count.
	Trace *obs.TraceSet
	// Telemetry, when non-nil, collects one telemetry collector per
	// scenario: every test-task completion observes its slowdown as the
	// task.slowdown series, scraped once per simulated second with the
	// figure's >10% SLO armed as an alert rule. Added in scenario order
	// like Trace; nil keeps the nil-collector fast path.
	Telemetry *telemetry.Set
}

// DefaultFig1Config matches the paper's setup.
func DefaultFig1Config() Fig1Config {
	return Fig1Config{Seed: 1, Samples: 1000, TaskSeconds: 1}
}

// Fig1Row is one of the twelve bars: mean ± stddev of test-task slowdown.
type Fig1Row struct {
	Load   trace.Class
	LoadOn Placement
	TestOn Placement

	Mean, Std, Min, Max float64
	N                   int
}

// Scenario labels the row like the paper's x axis.
func (r Fig1Row) Scenario() string {
	return fmt.Sprintf("load=%s/%s test=%s", r.Load, r.LoadOn, r.TestOn)
}

// Figure1 runs the microbenchmark: a synthetic CPU-bound test task
// sampled repeatedly under {none, light, heavy} background load, for all
// four placements of {load, test} across {physical machine, VM}.
// Slowdown is elapsed time over the unloaded-physical elapsed time.
// The twelve scenarios are independent simulations and fan out across
// cfg.Workers goroutines; each builds its kernel, host, and traces inside
// its own sample closure, so the rows are identical at any worker count.
func Figure1(cfg Fig1Config) ([]Fig1Row, error) {
	if cfg.Samples <= 0 {
		cfg.Samples = 1000
	}
	if cfg.TaskSeconds <= 0 {
		cfg.TaskSeconds = 1
	}

	baseline, err := fig1Baseline(cfg)
	if err != nil {
		return nil, err
	}

	type scenario struct {
		load   trace.Class
		loadOn Placement
		testOn Placement
	}
	var scenarios []scenario
	for _, load := range trace.Classes() {
		for _, loadOn := range []Placement{OnPhysical, OnVM} {
			for _, testOn := range []Placement{OnPhysical, OnVM} {
				scenarios = append(scenarios, scenario{load, loadOn, testOn})
			}
		}
	}
	type scenarioOut struct {
		row Fig1Row
		tr  *obs.Tracer
		col *telemetry.Collector
	}
	results, err := RunSamples(context.Background(), cfg.Seed, len(scenarios), cfg.Workers,
		func(i int, seed uint64) (scenarioOut, error) {
			sc := scenarios[i]
			row, tr, col, err := fig1Scenario(cfg, baseline, seed, sc.load, sc.loadOn, sc.testOn)
			if err != nil {
				return scenarioOut{}, fmt.Errorf("scenario %v/%v/%v: %w", sc.load, sc.loadOn, sc.testOn, err)
			}
			return scenarioOut{row: row, tr: tr, col: col}, nil
		})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig1Row, 0, len(results))
	for _, r := range results {
		rows = append(rows, r.row)
		if cfg.Trace != nil {
			cfg.Trace.Add("fig1/"+r.row.Scenario(), r.tr)
		}
		if cfg.Telemetry != nil {
			cfg.Telemetry.Add("fig1/"+r.row.Scenario(), r.col)
		}
	}
	return rows, nil
}

// fig1Baseline measures the unloaded physical elapsed time of one task.
func fig1Baseline(cfg Fig1Config) (float64, error) {
	k := sim.NewKernel(cfg.Seed)
	h, err := hostos.New(k, hw.ReferenceMachine("phys"))
	if err != nil {
		return 0, err
	}
	os := guest.NewOS(guest.NewNativeCPU(h.Spawn("test")))
	os.MarkBooted()
	var elapsed float64
	if _, err := os.Run(guest.MicroTask(cfg.TaskSeconds), func(r guest.TaskResult) {
		elapsed = r.Elapsed().Seconds()
	}); err != nil {
		return 0, err
	}
	k.Run()
	if elapsed <= 0 {
		return 0, fmt.Errorf("experiments: baseline task never finished")
	}
	return elapsed, nil
}

// fig1VM builds a warm-restored VM on h ready to run tasks; it returns
// once the VM is running (the caller drives the kernel). tr (nil ok)
// records the VM's lifecycle spans.
func fig1VM(k *sim.Kernel, h *hostos.Host, name string, tr *obs.Tracer, ready func(*vmm.VM)) error {
	store := storage.NewStore(h)
	img := storage.ImageInfo{Name: "rh72-" + name, OS: "rh72", DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB}
	if err := storage.InstallImage(store, img); err != nil {
		return err
	}
	base, err := store.Open(img.DiskFile())
	if err != nil {
		return err
	}
	diff, err := store.OpenOrCreate(name + ".cow")
	if err != nil {
		return err
	}
	mem, err := store.Open(img.MemFile())
	if err != nil {
		return err
	}
	vm, err := vmm.New(h, vmm.Config{
		Name:     name,
		MemBytes: 128 * hw.MB,
		Disk:     storage.NewCowDisk(base, diff),
		MemImage: mem,
		Trace:    tr,
	})
	if err != nil {
		return err
	}
	return vm.Start(vmm.WarmRestore, func(err error) {
		if err == nil {
			ready(vm)
		}
	})
}

func fig1Scenario(cfg Fig1Config, baseline float64, seed uint64, load trace.Class, loadOn, testOn Placement) (Fig1Row, *obs.Tracer, *telemetry.Collector, error) {
	// seed is the runner-derived per-scenario seed; the background trace
	// below deliberately does NOT use it — all four placements of one
	// load class must replay the identical trace (paired design).
	k := sim.NewKernel(seed)
	var otr *obs.Tracer
	if cfg.Trace != nil {
		otr = obs.New(k)
	}
	var col *telemetry.Collector
	if cfg.Telemetry != nil {
		var err error
		// Figure 1 has no Grid, so the scenario hosts a raw collector: the
		// sample loop observes each task's slowdown, and the figure's ≤10%
		// virtualization budget doubles as the SLO under test.
		if col, err = telemetry.NewCollector(k, telemetry.Config{Trace: otr}); err != nil {
			return Fig1Row{}, nil, nil, err
		}
		if err := col.AddRule("slowdown", "mean(task.slowdown, 30s) > 1.10 for 30s"); err != nil {
			return Fig1Row{}, nil, nil, err
		}
		col.Start()
	}
	h, err := hostos.New(k, hw.ReferenceMachine("phys"))
	if err != nil {
		return Fig1Row{}, nil, nil, err
	}
	// All four placements of one load class replay the same trace, as
	// the paper does — placements are compared against each other, so
	// they must see identical background conditions.
	tr := trace.Synthetic(load, sim.NewRNG(cfg.Seed*1000003+uint64(load)), 8*cfg.Samples+64)

	var stat sim.Stat
	row := Fig1Row{Load: load, LoadOn: loadOn, TestOn: testOn}

	// The test environment: a guest OS either native or inside a VM.
	var testOS *guest.OS
	startSampling := func() {
		var sample func()
		sample = func() {
			if stat.N() >= cfg.Samples {
				// Measurement over: one closing scrape, then stop the
				// self-tick so the scenario's event queue can drain.
				col.Scrape()
				col.Stop()
				return
			}
			_, err := testOS.Run(guest.MicroTask(cfg.TaskSeconds), func(r guest.TaskResult) {
				stat.Add(r.Elapsed().Seconds() / baseline)
				col.Observe("task.slowdown", r.Elapsed().Seconds()/baseline)
				sample()
			})
			if err != nil {
				panic(err) // deterministic setup bug, not a runtime condition
			}
		}
		sample()
	}

	// Apply the background load.
	applyLoad := func(testVM *vmm.VM) error {
		if load == trace.None {
			// The paper still plots all four placements under "none";
			// there is simply nothing to start.
			return nil
		}
		switch loadOn {
		case OnPhysical:
			lp := hostos.NewLoadProcess(h, "bg-load", tr)
			lp.Start()
		case OnVM:
			if testOn == OnVM {
				// Load and test share the virtual machine.
				pb := trace.NewPlayback(k, tr, testVM.Guest().SetBackgroundLoad)
				pb.Start()
				return nil
			}
			// The load gets its own VM next to the physical test task.
			return fig1VM(k, h, "loadvm", otr, func(vm *vmm.VM) {
				pb := trace.NewPlayback(k, tr, vm.Guest().SetBackgroundLoad)
				pb.Start()
			})
		}
		return nil
	}

	switch testOn {
	case OnPhysical:
		testOS = guest.NewOS(guest.NewNativeCPU(h.Spawn("test")))
		testOS.MarkBooted()
		if err := applyLoad(nil); err != nil {
			return row, nil, nil, err
		}
		startSampling()
	case OnVM:
		if err := fig1VM(k, h, "testvm", otr, func(vm *vmm.VM) {
			testOS = vm.Guest()
			if err := applyLoad(vm); err != nil {
				panic(err)
			}
			startSampling()
		}); err != nil {
			return row, nil, nil, err
		}
	}

	// Generous horizon: heavy load can triple task times.
	horizon := sim.DurationOf(float64(cfg.Samples)*cfg.TaskSeconds*8 + 300)
	_ = k.RunUntil(sim.Time(horizon))
	if stat.N() < cfg.Samples {
		return row, nil, nil, fmt.Errorf("experiments: only %d/%d samples completed", stat.N(), cfg.Samples)
	}
	row.Mean, row.Std, row.Min, row.Max, row.N = stat.Mean(), stat.Stddev(), stat.Min(), stat.Max(), stat.N()
	return row, otr, col, nil
}

// Figure1Table renders the rows like the paper's figure (one bar each).
func Figure1Table(rows []Fig1Row) *Table {
	t := &Table{
		Title:  "Figure 1: microbenchmark slowdown (mean +/- std over samples)",
		Note:   "slowdown = elapsed / unloaded-physical elapsed",
		Header: []string{"load", "load on", "test on", "mean", "std", "min", "max"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Load.String(), r.LoadOn.String(), r.TestOn.String(),
			f3(r.Mean), f3(r.Std), f3(r.Min), f3(r.Max),
		})
	}
	return t
}
