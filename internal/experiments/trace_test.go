package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"vmgrid/internal/obs"
	"vmgrid/internal/sim"
)

// table2Trace runs a reduced Table 2 with tracing on and returns the
// trace set plus its Chrome emission.
func table2Trace(t *testing.T, workers int) (*obs.TraceSet, []byte) {
	t.Helper()
	ts := obs.NewTraceSet()
	cfg := Table2Config{Seed: 7, Samples: 2, Workers: workers, Trace: ts}
	if _, err := Table2(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ts.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return ts, buf.Bytes()
}

// TestTable2TraceDeterministicAcrossWorkers is the headline determinism
// guarantee: the trace bytes are a pure function of the seed, not of the
// fan-out schedule.
func TestTable2TraceDeterministicAcrossWorkers(t *testing.T) {
	_, one := table2Trace(t, 1)
	_, eight := table2Trace(t, 8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("table2 trace differs between workers=1 (%d bytes) and workers=8 (%d bytes)", len(one), len(eight))
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(one, &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
}

func TestFig1TraceDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		ts := obs.NewTraceSet()
		cfg := Fig1Config{Seed: 3, Samples: 3, TaskSeconds: 1, Workers: workers, Trace: ts}
		if _, err := Figure1(cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ts.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(1), run(8)) {
		t.Fatal("fig1 trace differs across worker counts")
	}
}

// TestPhaseSpansPartitionStartup checks the decomposition invariant the
// phase table relies on: per sample, the five phase spans sum exactly
// (integer microseconds) to the submitted->ready wall clock read off the
// lifecycle instants.
func TestPhaseSpansPartitionStartup(t *testing.T) {
	ts, _ := table2Trace(t, 0)
	if ts.Len() != 12 { // 6 cells x 2 samples
		t.Fatalf("trace set has %d entries, want 12", ts.Len())
	}
	checked := 0
	// Each label is one sample: sum its "phase" rows and compare against
	// the lifecycle instants recorded by the same tracer.
	type bounds struct {
		sum              sim.Duration
		submitted, ready sim.Time
		hasSub, hasReady bool
		phases           int
		label            string
	}
	perLabel := map[string]*bounds{}
	var order []string
	for _, p := range ts.PhaseStats() {
		if p.Cat != "phase" {
			continue
		}
		b := perLabel[p.Label]
		if b == nil {
			b = &bounds{label: p.Label}
			perLabel[p.Label] = b
			order = append(order, p.Label)
		}
		b.sum += p.Total
		b.phases += p.Count
	}
	// Lifecycle instants carry the absolute submitted/ready times.
	for _, sp := range allSpans(ts) {
		b := perLabel[sp.label]
		if b == nil || sp.rec.Cat != "lifecycle" {
			continue
		}
		switch sp.rec.Name {
		case "submitted":
			b.submitted, b.hasSub = sp.rec.Start, true
		case "ready":
			b.ready, b.hasReady = sp.rec.Start, true
		}
	}
	for _, label := range order {
		b := perLabel[label]
		if !b.hasSub || !b.hasReady {
			t.Errorf("%s: missing lifecycle instants", label)
			continue
		}
		if b.phases != 5 {
			t.Errorf("%s: %d phase spans, want 5", label, b.phases)
		}
		wall := b.ready.Sub(b.submitted)
		if b.sum != wall {
			t.Errorf("%s: phase sum %d us != wall clock %d us", label, int64(b.sum), int64(wall))
		}
		checked++
	}
	if checked != 12 {
		t.Errorf("validated %d samples, want 12", checked)
	}
}

// labeledSpan pairs a span with the trace-set label it came from.
type labeledSpan struct {
	label string
	rec   obs.SpanRecord
}

// allSpans flattens a TraceSet back into labeled spans by re-deriving
// the entry list from PhaseStats label order and the tracers' own data.
func allSpans(ts *obs.TraceSet) []labeledSpan {
	var out []labeledSpan
	for _, e := range ts.Entries() {
		for _, rec := range e.Tracer.Spans() {
			out = append(out, labeledSpan{label: e.Label, rec: rec})
		}
	}
	return out
}
