package experiments

import (
	"context"
	"fmt"
	"sort"

	"vmgrid/internal/core"
	"vmgrid/internal/guest"
	"vmgrid/internal/hw"
	"vmgrid/internal/placement"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/telemetry"
	"vmgrid/internal/vmm"
)

// ---------------------------------------------------------------------
// Ablation I: placement policy × autonomic balancer (skewed arrivals)
// ---------------------------------------------------------------------
//
// The paper's application perspective (§3.2) has the middleware adapt
// placement to resource dynamics. This ablation measures the whole
// adaptation loop end to end: sessions arrive in bursts (a skewed
// arrival pattern that piles load onto whichever node ranks first),
// placed by a swept policy, while the autonomic balancer — driven by
// the telemetry pipeline's predicted-load series — optionally relieves
// sustained hotspots with fenced live migrations. Reported per arm:
// p50/p99 task slowdown (elapsed over demanded CPU-seconds; the cost
// users feel from co-location) and the node-utilization spread (the
// imbalance the policy left behind).

// BalanceRow aggregates one (policy, balancer on/off) arm.
type BalanceRow struct {
	// Policy is the placement policy under test.
	Policy string
	// Balancer reports whether the autonomic balancer ran.
	Balancer bool
	// P50 and P99 are slowdown percentiles pooled over every task of
	// every sample (slowdown = elapsed / demanded CPU-seconds; 1.0 is a
	// task that never shared its node).
	P50 float64
	P99 float64
	// SpreadLoad is the mean over samples of (max − min) per-node mean
	// load — how unevenly the arm used the three compute nodes.
	SpreadLoad float64
	// Migrations is the mean number of balancer migrations per run.
	Migrations float64
}

// balanceArm is one simulated run of the burst workload under one
// (policy, balancer) combination.
type balanceArm struct {
	Slowdowns  []float64
	Spread     float64
	Migrations int
}

// balanceOffsets staggers the nine session arrivals into three bursts —
// the skew that separates the policies. Within a burst the sessions
// land faster than load signals move, so a policy that keeps ranking
// the same node first stacks the whole burst there.
var balanceOffsets = []sim.Duration{
	0, 1 * sim.Second, 2 * sim.Second, 3 * sim.Second,
	150 * sim.Second, 151 * sim.Second, 152 * sim.Second,
	300 * sim.Second, 301 * sim.Second,
}

// balancePolicies are the swept placement policies, in report order.
var balancePolicies = []struct {
	name   string
	placer placement.Placer
}{
	{"least-loaded", placement.LeastLoaded{}},
	{"predicted-load", placement.PredictedLoad{}},
	{"pack", placement.Pack{}},
}

// AblationBalance sweeps placement policy × balancer on/off over the
// burst workload. The design is paired: one sample is one replicate
// whose per-task CPU demands — drawn from the sample's seed — replay
// identically across all six arms, so arms compare the same work.
// samples <= 0 selects the default replicate count; samples fan out
// across workers goroutines and the tables are byte-identical at any
// worker count.
func AblationBalance(seed uint64, samples, workers int) ([]BalanceRow, error) {
	if samples <= 0 {
		samples = 4
	}
	arms, err := RunSamples(context.Background(), seed, samples, workers,
		func(i int, sseed uint64) ([]balanceArm, error) {
			// One demand vector per sample, shared by every arm.
			rng := sim.NewRNG(sseed)
			demands := make([]float64, len(balanceOffsets))
			for j := range demands {
				demands[j] = rng.Uniform(180, 420)
			}
			out := make([]balanceArm, 0, 2*len(balancePolicies))
			for _, p := range balancePolicies {
				for _, balance := range []bool{false, true} {
					a, err := balanceRun(sseed, demands, p.placer, balance)
					if err != nil {
						return nil, fmt.Errorf("balance policy=%s balancer=%v sample %d: %w",
							p.name, balance, i, err)
					}
					out = append(out, a)
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	rows := make([]BalanceRow, 0, 2*len(balancePolicies))
	for pi, p := range balancePolicies {
		for bi, balance := range []bool{false, true} {
			var pooled []float64
			var spread float64
			var migrations int
			for si := 0; si < samples; si++ {
				a := arms[si][2*pi+bi]
				pooled = append(pooled, a.Slowdowns...)
				spread += a.Spread
				migrations += a.Migrations
			}
			rows = append(rows, BalanceRow{
				Policy:     p.name,
				Balancer:   balance,
				P50:        quantile(pooled, 0.50),
				P99:        quantile(pooled, 0.99),
				SpreadLoad: spread / float64(samples),
				Migrations: float64(migrations) / float64(samples),
			})
		}
	}
	return rows, nil
}

// quantile is the nearest-rank quantile of vs (not mutated).
func quantile(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// balanceRun simulates the nine-session burst workload to completion on
// three compute nodes: every session is created through the policy
// under test, runs one CPU-bound task, and (when balance is set) the
// autonomic balancer watches predicted load and relieves sustained
// hotspots with fenced live migrations.
func balanceRun(seed uint64, demands []float64, placer placement.Placer, balance bool) (balanceArm, error) {
	var arm balanceArm
	g := core.NewGrid(seed)
	k := g.Kernel()
	// The telemetry pipeline supplies the balancer's load signal (the
	// monitor's predicted-load series lands in the TSDB via the scrape
	// loop) and the per-node utilization series the spread is read from.
	col, err := g.EnableTelemetry(telemetry.Config{})
	if err != nil {
		return arm, err
	}
	col.Start()
	computes := []string{"c1", "c2", "c3"}
	for _, cfg := range []core.NodeConfig{
		{Name: "front", Site: "a", Role: core.RoleFrontEnd},
		{Name: "c1", Site: "a", Role: core.RoleCompute, Slots: 4, DHCPPrefix: "10.1.0."},
		{Name: "c2", Site: "a", Role: core.RoleCompute, Slots: 4, DHCPPrefix: "10.1.1."},
		{Name: "c3", Site: "a", Role: core.RoleCompute, Slots: 4, DHCPPrefix: "10.1.2."},
		{Name: "data", Site: "a", Role: core.RoleDataServer},
	} {
		if _, err := g.AddNode(cfg); err != nil {
			return arm, err
		}
	}
	if err := g.Net().BuildLAN("front", "c1", "c2", "c3", "data"); err != nil {
		return arm, err
	}
	img := storage.ImageInfo{Name: "rh72", OS: "rh72", DiskBytes: 2 * hw.GB, MemBytes: 64 * hw.MB}
	for _, n := range computes {
		if err := g.Node(n).InstallImage(img); err != nil {
			return arm, err
		}
	}
	// The monitor feeds the predicted-load policy and the balancer: raw
	// 1 s load samples, AR forecasts republished into the VM futures.
	mon, err := g.StartMonitor(sim.Second)
	if err != nil {
		return arm, err
	}
	defer mon.Stop()

	var bal *placement.Balancer
	if balance {
		bal, err = g.StartBalancer(core.BalancerConfig{
			BalancerConfig: placement.BalancerConfig{
				Interval:  5 * sim.Second,
				HotLoad:   2.5,
				ClearLoad: 1.2,
				Sustain:   3,
				Cooldown:  90 * sim.Second,
			},
			// Relief always goes to the coolest viable node, whatever
			// policy caused the hotspot.
			Placer: placement.LeastLoaded{},
		})
		if err != nil {
			return arm, err
		}
		defer bal.Stop()
	}

	slowdowns := make([]float64, len(demands))
	finished := 0
	var firstErr error
	fail := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	for j, offset := range balanceOffsets {
		j, demand := j, demands[j]
		k.After(offset, func() {
			if _, err := g.CreateSession(core.SessionConfig{
				User: "bench", FrontEnd: "front", Image: "rh72",
				Mode: vmm.WarmRestore, Disk: core.NonPersistent, Access: core.AccessLocal,
			}, func(s *core.Session, err error) {
				if err != nil {
					fail(err)
					finished++ // count it done so the run terminates
					return
				}
				start := k.Now()
				if err := s.Run(guest.MicroTask(demand), func(res guest.TaskResult) {
					fail(res.Err)
					slowdowns[j] = k.Now().Sub(start).Seconds() / demand
					finished++
				}); err != nil {
					fail(err)
					finished++
				}
			}, core.WithPlacer(placer)); err != nil {
				fail(err)
				finished++
			}
		})
	}

	// The monitor and scrape loops keep the event queue non-empty
	// forever, so drive the kernel in bounded quanta.
	deadline := k.Now().Add(12 * sim.Hour)
	for finished < len(demands) && k.Now() < deadline {
		_ = k.RunUntil(k.Now().Add(sim.Minute))
	}
	if bal != nil {
		bal.Stop()
		arm.Migrations = bal.Stats().Migrations
	}
	col.Stop()
	if firstErr != nil {
		return arm, firstErr
	}
	if finished < len(demands) {
		return arm, fmt.Errorf("experiments: balance run stalled at %d/%d tasks", finished, len(demands))
	}
	// Node-utilization spread: max − min of the per-node mean load over
	// the whole run, from the telemetry node.load series.
	db := col.DB()
	minMean, maxMean := 0.0, 0.0
	for i, n := range computes {
		mean := 0.0
		if s := db.Lookup("node.load{node=" + n + "}"); s != nil && s.Len() > 0 {
			mean = s.Window(0).Mean
		}
		if i == 0 || mean < minMean {
			minMean = mean
		}
		if mean > maxMean {
			maxMean = mean
		}
	}
	arm.Spread = maxMean - minMean
	arm.Slowdowns = slowdowns
	return arm, nil
}

// BalanceTable renders ablation I.
func BalanceTable(rows []BalanceRow) *Table {
	t := &Table{
		Title: "Ablation I: placement policy vs autonomic balancer (skewed arrivals)",
		Note: "9 sessions in 3 bursts on 3 compute nodes; slowdown = elapsed / demanded " +
			"CPU-seconds; spread = max-min per-node mean load; migrations are balancer-driven " +
			"fenced live migrations per run",
		Header: []string{"policy", "balancer", "p50 slowdown", "p99 slowdown",
			"load spread", "migrations"},
	}
	for _, r := range rows {
		onOff := "off"
		if r.Balancer {
			onOff = "on"
		}
		t.Rows = append(t.Rows, []string{
			r.Policy,
			onOff,
			f2(r.P50),
			f2(r.P99),
			f2(r.SpreadLoad),
			f1(r.Migrations),
		})
	}
	return t
}
