package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel experiment engine. Every table, figure, and
// ablation in this package is a set of independent simulation samples —
// each sample builds its own sim.Kernel, hosts, traces, and RNG inside its
// closure, shares nothing, and is a pure function of (index, seed). That
// lets RunSamples fan samples out across a bounded worker pool while
// keeping the results bit-identical to a serial run: per-sample seeds are
// derived deterministically from the experiment seed with SplitMix64, and
// results are collected in index order regardless of completion order.
//
// Concurrency convention (see DESIGN.md §6): one kernel per goroutine, no
// shared simulation state. A sample closure must never touch another
// sample's kernel or any mutable state outside its own frame.

// DefaultWorkers resolves a worker-count setting: values <= 0 mean "one
// worker per available CPU" (runtime.GOMAXPROCS).
func DefaultWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// SampleSeed derives the seed for sample i from an experiment's base seed
// using the SplitMix64 finalizer. The derived streams are independent and
// collision-free in practice: SplitMix64 is a bijection of the counter
// sequence base + (i+1)·golden, so two indices collide only if the base
// seeds themselves are related by a multiple of the increment.
func SampleSeed(base uint64, i int) uint64 {
	z := base + (uint64(i)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RunSamples executes n independent samples on a bounded worker pool and
// returns their results in index order. Sample i receives SampleSeed(seed,
// i); paired experimental designs (arms that must replay identical
// randomness) are free to ignore it and derive their own sub-seeds from
// the experiment seed — determinism only requires that a sample be a pure
// function of its index.
//
// workers <= 0 selects runtime.GOMAXPROCS(0); workers == 1 runs the
// samples inline on the calling goroutine, which is the exact serial
// semantics. The first error (by lowest sample index) cancels the shared
// context so straggler samples are not started, and is returned after all
// in-flight samples finish. A canceled ctx aborts the fan-out the same
// way.
func RunSamples[T any](ctx context.Context, seed uint64, n, workers int, sample func(i int, seed uint64) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	results := make([]T, n)

	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := sample(i, SampleSeed(seed, i))
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // next sample index to claim
		mu       sync.Mutex
		firstErr error
		errIdx   = n // lowest failing index seen so far
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// A canceled context just stops the claim loop; only real
				// sample errors are recorded, so a straggler hitting the
				// internal cancellation can never mask the first failure.
				if ctx.Err() != nil {
					return
				}
				r, err := sample(i, SampleSeed(seed, i))
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := parent.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
