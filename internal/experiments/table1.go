package experiments

import (
	"context"
	"fmt"

	"vmgrid/internal/guest"
	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/netsim"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/vfs"
	"vmgrid/internal/vmm"
)

// Table1Row is one macrobenchmark measurement.
type Table1Row struct {
	App      string
	Resource string // "Physical", "VM, local disk", "VM, PVFS"
	User     float64
	Sys      float64
	Total    float64
	// Overhead is relative to the physical run of the same app (NaN-free:
	// zero for the physical rows themselves).
	Overhead float64
}

// Table1 reproduces the macrobenchmark: SPECseis- and SPECclimate-shaped
// workloads on (a) the physical machine, (b) a VM with state on local
// disk, and (c) a VM with state accessed via the NFS-based grid virtual
// file system across a WAN (image server at the remote site, data server
// on the local LAN, as in the paper's §4 description). The six (app,
// resource) runs are independent simulations and fan out across workers
// goroutines (<= 0 means one per CPU); rows are identical at any count.
func Table1(seed uint64, workers int) ([]Table1Row, error) {
	apps := []guest.Workload{guest.SPECseis96(), guest.SPECclimate()}
	modes := []struct{ mode, label string }{
		{"physical", "Physical"},
		{"vm-local", "VM, local disk"},
		{"vm-pvfs", "VM, PVFS"},
	}
	// Paired design: every run replays the experiment seed so the VM rows
	// are compared against a physical baseline that saw the identical
	// randomness — the runner-derived per-sample seed is ignored.
	results, err := RunSamples(context.Background(), seed, len(apps)*len(modes), workers,
		func(i int, _ uint64) (guest.TaskResult, error) {
			app, m := apps[i/len(modes)], modes[i%len(modes)]
			res, err := table1Run(seed, app, m.mode)
			if err != nil {
				return res, fmt.Errorf("table1 %s %s: %w", app.Name, m.mode, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}

	var rows []Table1Row
	for ai, app := range apps {
		physical := results[ai*len(modes)] // modes[0] is the physical run
		for mi, m := range modes {
			res := results[ai*len(modes)+mi]
			rows = append(rows, Table1Row{
				App:      app.Name,
				Resource: m.label,
				User:     res.UserSeconds,
				Sys:      res.SysSeconds(),
				Total:    res.Elapsed().Seconds(),
				Overhead: res.Elapsed().Seconds()/physical.Elapsed().Seconds() - 1,
			})
		}
	}
	return rows, nil
}

// table1Run executes one app in one configuration and returns its result.
func table1Run(seed uint64, app guest.Workload, mode string) (guest.TaskResult, error) {
	k := sim.NewKernel(seed)
	compute, err := hostos.New(k, hw.ReferenceMachine("compute"))
	if err != nil {
		return guest.TaskResult{}, err
	}
	store := storage.NewStore(compute)
	img := storage.ImageInfo{Name: "rh71", OS: "redhat-7.1", DiskBytes: 1 * hw.GB, MemBytes: 128 * hw.MB}
	if err := storage.InstallImage(store, img); err != nil {
		return guest.TaskResult{}, err
	}
	if err := store.Create("dataset", 2*hw.GB); err != nil {
		return guest.TaskResult{}, err
	}

	var res guest.TaskResult
	runOn := func(os *guest.OS) error {
		_, err := os.Run(app, func(r guest.TaskResult) { res = r })
		return err
	}

	switch mode {
	case "physical":
		os := guest.NewOS(guest.NewNativeCPU(compute.Spawn("app")))
		os.MarkBooted()
		root, err := store.Open(img.DiskFile())
		if err != nil {
			return res, err
		}
		data, err := store.Open("dataset")
		if err != nil {
			return res, err
		}
		os.Mount("root", root)
		os.Mount("data", data)
		if err := runOn(os); err != nil {
			return res, err
		}

	case "vm-local":
		vm, err := table1VM(k, compute, store, img, nil, "")
		if err != nil {
			return res, err
		}
		data, err := store.Open("dataset")
		if err != nil {
			return res, err
		}
		vm.Guest().Mount("data", data)
		if err := runOn(vm.Guest()); err != nil {
			return res, err
		}

	case "vm-pvfs":
		// Topology: compute and data server at the local site (LAN);
		// image server across the WAN holding the VM state.
		net := netsim.New(k)
		if err := net.BuildLAN("compute", "data"); err != nil {
			return res, err
		}
		net.AddNode("images")
		if err := net.ConnectWAN("compute", "images"); err != nil {
			return res, err
		}
		imgHost, err := hostos.New(k, hw.ReferenceMachine("images"))
		if err != nil {
			return res, err
		}
		imgStore := storage.NewStore(imgHost)
		if err := storage.InstallImage(imgStore, img); err != nil {
			return res, err
		}
		dataHost, err := hostos.New(k, hw.ReferenceMachine("data"))
		if err != nil {
			return res, err
		}
		dataStore := storage.NewStore(dataHost)
		if err := dataStore.Create("dataset", 2*hw.GB); err != nil {
			return res, err
		}

		imgTr, err := vfs.NewNetTransport(net, "compute", "images", vfs.NewServer(imgStore))
		if err != nil {
			return res, err
		}
		imgClient, err := vfs.NewClient(k, imgTr, vfs.WANConfig())
		if err != nil {
			return res, err
		}
		vm, err := table1VM(k, compute, store, img, imgClient, "images")
		if err != nil {
			return res, err
		}

		dataTr, err := vfs.NewNetTransport(net, "compute", "data", vfs.NewServer(dataStore))
		if err != nil {
			return res, err
		}
		dataClient, err := vfs.NewClient(k, dataTr, vfs.LANConfig())
		if err != nil {
			return res, err
		}
		vm.Guest().Mount("data", dataClient.Open("dataset", 2*hw.GB))
		if err := runOn(vm.Guest()); err != nil {
			return res, err
		}

	default:
		return res, fmt.Errorf("experiments: unknown table1 mode %q", mode)
	}

	_ = k.RunUntil(sim.Time(20 * sim.Hour))
	if res.End == 0 {
		return res, fmt.Errorf("experiments: %s/%s never finished", app.Name, mode)
	}
	return res, res.Err
}

// table1VM builds and warm-restores a VM whose root disk base is either
// the local image (imgClient nil) or the remote image server via the
// grid virtual file system.
func table1VM(k *sim.Kernel, h *hostos.Host, local *storage.Store,
	img storage.ImageInfo, imgClient *vfs.Client, server string) (*vmm.VM, error) {
	var base, mem storage.Backend
	if imgClient == nil {
		var err error
		if base, err = local.Open(img.DiskFile()); err != nil {
			return nil, err
		}
		if mem, err = local.Open(img.MemFile()); err != nil {
			return nil, err
		}
	} else {
		base = imgClient.Open(img.DiskFile(), img.DiskBytes)
		mem = imgClient.Open(img.MemFile(), img.MemBytes)
	}
	diff, err := local.OpenOrCreate("app.cow")
	if err != nil {
		return nil, err
	}
	vm, err := vmm.New(h, vmm.Config{
		Name:     "app-vm",
		MemBytes: img.MemBytes,
		Disk:     storage.NewCowDisk(base, diff),
		MemImage: mem,
	})
	if err != nil {
		return nil, err
	}
	started := false
	if err := vm.Start(vmm.WarmRestore, func(err error) {
		if err == nil {
			started = true
		}
	}); err != nil {
		return nil, err
	}
	// Bring the VM up before the measured run begins.
	_ = k.RunUntil(k.Now().Add(10 * sim.Minute))
	if !started {
		return nil, fmt.Errorf("experiments: VM never restored (server %s)", server)
	}
	return vm, nil
}

// Table1Table renders the rows like the paper's Table 1.
func Table1Table(rows []Table1Row) *Table {
	t := &Table{
		Title:  "Table 1: macrobenchmark user/system/total times and overheads",
		Note:   "overhead is vs. the physical run of the same application",
		Header: []string{"application", "resource", "user (s)", "sys (s)", "user+sys (s)", "overhead"},
	}
	for _, r := range rows {
		ovh := "N/A"
		if r.Resource != "Physical" {
			ovh = pct(r.Overhead)
		}
		t.Rows = append(t.Rows, []string{
			r.App, r.Resource, f1(r.User), f1(r.Sys), f1(r.Total), ovh,
		})
	}
	return t
}
