// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md, on top of the
// vmgrid substrates. Each experiment returns structured rows and can
// render itself as an aligned text table; cmd/gridbench prints them and
// the repository benchmarks time them.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first)
// for plotting pipelines. Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}
