package experiments

import (
	"context"
	"fmt"

	"vmgrid/internal/core"
	"vmgrid/internal/fault"
	"vmgrid/internal/guest"
	"vmgrid/internal/hw"
	"vmgrid/internal/obs"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/telemetry"
	"vmgrid/internal/vmm"
)

// ---------------------------------------------------------------------
// Ablation G: checkpoint interval × failure rate (recovery)
// ---------------------------------------------------------------------
//
// The paper argues (§2) that a VM's complete-state encapsulation makes
// sessions recoverable: suspend the memory image, and any node with the
// base image can resume the computation. This ablation quantifies that
// claim with the fault fabric and the self-healing supervisor: a 1500 s
// CPU-bound task runs under Poisson node crashes while the supervisor
// checkpoints at a swept interval, and we measure what the failures cost
// (work replayed, time to repair, availability) against what the
// protection costs (time spent suspended and staging checkpoints).

// RecoveryRow aggregates one (MTBF, checkpoint interval) cell.
type RecoveryRow struct {
	// MTBFSec is the mean time between node crashes.
	MTBFSec float64
	// IntervalSec is the checkpoint interval under test.
	IntervalSec float64
	// CompletionSec is mean task time, submission to completion,
	// including every failover the run absorbed.
	CompletionSec float64
	// Crashes is the mean number of host crashes per run.
	Crashes float64
	// LostWorkSec is mean user work replayed per recovery — progress
	// retired after the last checkpoint and before the crash.
	LostWorkSec float64
	// MTTRSec is mean time per recovery from the crash to the session
	// regaining its pre-crash progress: detection + restore + replay.
	MTTRSec float64
	// Availability is the fraction of wall-clock the session was live
	// (not crashed or being restored).
	Availability float64
	// CkptCostSec is mean time per run the session spent suspended or
	// staging for checkpoints — the fault-free price of protection.
	CkptCostSec float64
	// AlertFirings is the mean number of stale-lease telemetry alerts
	// fired per run by task completion. The alert engine watches the
	// same lease ages the supervisor's failure detector does (at a
	// tighter 2×heartbeat threshold versus the 3×heartbeat TTL), so
	// every detected crash should trip it exactly once: firings track
	// crashes, cross-checking the two detection paths against each
	// other.
	AlertFirings float64
}

// recoveryArm is one simulated run of the 1500 s task at one checkpoint
// interval under one crash schedule.
type recoveryArm struct {
	CompletionSec float64
	LostWorkSec   float64
	RepairSec     float64
	CkptCostSec   float64
	Crashes       int
	Recoveries    int
	LeaseAlerts   int
}

// recoveryTaskSec is the supervised workload: long enough for several
// crashes at the fast MTBF, short enough to keep the sweep cheap.
const recoveryTaskSec = 1500

// AblationRecovery sweeps checkpoint interval × failure rate. The design
// is paired: one sample is one (MTBF, replicate) pair whose crash
// schedule — drawn from fault.NewSeeded with the sample's seed — replays
// identically across all checkpoint intervals, so interval columns
// compare the same failures. samples <= 0 selects the default replicate
// count; samples × len(mtbfs) fan out across workers goroutines.
func AblationRecovery(seed uint64, samples, workers int) ([]RecoveryRow, error) {
	return ablationRecovery(seed, samples, workers, nil)
}

// AblationRecoveryIncidents runs the same sweep with every run's grid
// carrying a flight recorder (flight-only tracer: causal spans feed the
// ring and incident capture but are never retained whole). Each run's
// incident bundles — one "recovery" incident per failover, sealed with a
// postmortem when the failover resolves — are collected into set in
// sample order, so the JSON export is byte-identical at any worker
// count. The measured rows are unchanged: recording never alters
// simulation outcomes.
func AblationRecoveryIncidents(seed uint64, samples, workers int, set *obs.IncidentSet) ([]RecoveryRow, error) {
	return ablationRecovery(seed, samples, workers, set)
}

func ablationRecovery(seed uint64, samples, workers int, set *obs.IncidentSet) ([]RecoveryRow, error) {
	mtbfs := []sim.Duration{10 * sim.Minute, 30 * sim.Minute}
	intervals := []sim.Duration{30 * sim.Second, 60 * sim.Second, 120 * sim.Second, 240 * sim.Second}
	if samples <= 0 {
		samples = 8
	}
	type sampleOut struct {
		arms []recoveryArm
		recs []*obs.FlightRecorder
	}
	results, err := RunSamples(context.Background(), seed, len(mtbfs)*samples, workers,
		func(i int, sseed uint64) (sampleOut, error) {
			mtbf := mtbfs[i/samples]
			out := sampleOut{
				arms: make([]recoveryArm, len(intervals)),
				recs: make([]*obs.FlightRecorder, len(intervals)),
			}
			for j, iv := range intervals {
				a, rec, err := recoveryRun(sseed, mtbf, iv, set != nil)
				if err != nil {
					return sampleOut{}, fmt.Errorf("recovery mtbf=%v ckpt=%v sample %d: %w", mtbf, iv, i, err)
				}
				out.arms[j] = a
				out.recs[j] = rec
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	// RunSamples returns in sample-index order regardless of worker
	// interleaving, so this loop fixes the incident layout.
	if set != nil {
		for i, r := range results {
			mtbf := mtbfs[i/samples]
			for j, iv := range intervals {
				set.Add(fmt.Sprintf("recovery/mtbf-%.0fs/ckpt-%.0fs/%d",
					mtbf.Seconds(), iv.Seconds(), i%samples), r.recs[j])
			}
		}
	}
	rows := make([]RecoveryRow, 0, len(mtbfs)*len(intervals))
	for mi, mtbf := range mtbfs {
		for ji, iv := range intervals {
			var sum recoveryArm
			for si := 0; si < samples; si++ {
				a := results[mi*samples+si].arms[ji]
				sum.CompletionSec += a.CompletionSec
				sum.LostWorkSec += a.LostWorkSec
				sum.RepairSec += a.RepairSec
				sum.CkptCostSec += a.CkptCostSec
				sum.Crashes += a.Crashes
				sum.Recoveries += a.Recoveries
				sum.LeaseAlerts += a.LeaseAlerts
			}
			recoveries := float64(sum.Recoveries)
			if recoveries == 0 {
				recoveries = 1 // no crashes in the cell: lost/MTTR read as 0
			}
			rows = append(rows, RecoveryRow{
				MTBFSec:       mtbf.Seconds(),
				IntervalSec:   iv.Seconds(),
				CompletionSec: sum.CompletionSec / float64(samples),
				Crashes:       float64(sum.Crashes) / float64(samples),
				LostWorkSec:   sum.LostWorkSec / recoveries,
				MTTRSec:       (sum.LostWorkSec + sum.RepairSec) / recoveries,
				Availability:  1 - sum.RepairSec/sum.CompletionSec,
				CkptCostSec:   sum.CkptCostSec / float64(samples),
				AlertFirings:  float64(sum.LeaseAlerts) / float64(samples),
			})
		}
	}
	return rows, nil
}

// recoveryRun simulates one supervised task to completion: two compute
// nodes on a LAN with a data server holding the checkpoints, node
// crashes drawn from the crash seed (identical across interval arms),
// each crashed node rebooting 300 s later. With record set the grid
// carries a flight recorder whose incident bundles are returned (nil
// otherwise — the zero-cost disabled path).
func recoveryRun(crashSeed uint64, mtbf, interval sim.Duration, record bool) (recoveryArm, *obs.FlightRecorder, error) {
	var arm recoveryArm
	g := core.NewGrid(crashSeed)
	k := g.Kernel()
	var rec *obs.FlightRecorder
	if record {
		rec = g.EnableFlightRecorder(obs.FlightConfig{})
	}
	// The telemetry pipeline runs alongside the supervisor with the
	// standard SLO rules: its stale-lease alert (2×heartbeat) is an
	// independent shadow of the lease-expiry failure detector
	// (3×heartbeat TTL), and the firing count per run is reported so the
	// two detection paths cross-check each other. Scraping is read-only,
	// so the measured recovery numbers are unchanged by it.
	col, err := g.EnableTelemetry(telemetry.Config{})
	if err != nil {
		return arm, nil, err
	}
	if err := g.DefaultAlertRules(0); err != nil {
		return arm, nil, err
	}
	col.Start()
	for _, cfg := range []core.NodeConfig{
		{Name: "front", Site: "a", Role: core.RoleFrontEnd},
		{Name: "c1", Site: "a", Role: core.RoleCompute, Slots: 1, DHCPPrefix: "10.1.0."},
		{Name: "c2", Site: "a", Role: core.RoleCompute, Slots: 1, DHCPPrefix: "10.1.1."},
		{Name: "data", Site: "a", Role: core.RoleDataServer},
	} {
		if _, err := g.AddNode(cfg); err != nil {
			return arm, nil, err
		}
	}
	if err := g.Net().BuildLAN("front", "c1", "c2", "data"); err != nil {
		return arm, nil, err
	}
	// A modest warm image bounds the per-checkpoint staging cost so the
	// interval sweep exercises a real overhead/recovery trade-off.
	img := storage.ImageInfo{Name: "rh72", OS: "rh72", DiskBytes: 2 * hw.GB, MemBytes: 64 * hw.MB}
	for _, n := range []string{"c1", "c2"} {
		if err := g.Node(n).InstallImage(img); err != nil {
			return arm, nil, err
		}
	}

	ready, serr := false, error(nil)
	var sess *core.Session
	if _, err := g.CreateSession(core.SessionConfig{
		User: "bench", FrontEnd: "front", Image: "rh72",
		Mode: vmm.WarmRestore, Disk: core.NonPersistent, Access: core.AccessLocal,
	}, func(s *core.Session, err error) { sess, serr, ready = s, err, true }); err != nil {
		return arm, nil, err
	}
	_ = k.RunUntil(k.Now().Add(30 * sim.Minute))
	if !ready || serr != nil {
		return arm, nil, fmt.Errorf("experiments: recovery session setup: ready=%v err=%v", ready, serr)
	}

	sup, err := core.NewSupervisor(g, core.SupervisorConfig{
		CheckpointInterval: interval,
		StableNode:         "data",
		// The experiment measures recovery cost, not the give-up policy:
		// every crash schedule must run to completion.
		MaxRecoveries: 64,
	})
	if err != nil {
		return arm, nil, err
	}
	adopted, aerr := false, error(nil)
	if err := sup.Adopt(sess, func(err error) { aerr, adopted = err, true }); err != nil {
		return arm, nil, err
	}
	// Heartbeats keep the event queue non-empty forever, so drive the
	// kernel in bounded quanta rather than draining it.
	step := func(cap sim.Duration, cond func() bool) {
		deadline := k.Now().Add(cap)
		for !cond() && k.Now() < deadline {
			_ = k.RunUntil(k.Now().Add(sim.Minute))
		}
	}
	step(sim.Hour, func() bool { return adopted })
	if !adopted || aerr != nil {
		return arm, nil, fmt.Errorf("experiments: baseline checkpoint: adopted=%v err=%v", adopted, aerr)
	}

	var res guest.TaskResult
	var statsAt core.SupervisorStats
	leaseAlertsAt := 0
	finished := false
	if err := sup.Run(sess, guest.MicroTask(recoveryTaskSec), func(r guest.TaskResult) {
		res = r
		// Snapshot at completion: crashes striking after the task is done
		// must not leak into the cell's statistics.
		statsAt = sup.Stats()
		for _, f := range col.Firings() {
			if f.Rule == "stale-lease" {
				leaseAlertsAt++
			}
		}
		finished = true
	}); err != nil {
		return arm, nil, err
	}

	// The crash schedule is a pure function of the crash seed: interval
	// arms of one sample replay the same failure instants. Each event
	// crashes whichever node hosts the session at fire time (skipped
	// while it is already down or being restored) and reboots it 300 s
	// later.
	in := fault.NewSeeded(k, crashSeed)
	const outage = 300 * sim.Second
	for _, at := range in.Times(mtbf, 4*sim.Hour) {
		in.At(at, func() {
			if sess.State() != core.StateRunning {
				return
			}
			victim := sess.Node().Name()
			_ = g.CrashNode(victim)
			in.At(k.Now().Add(outage), func() { _ = g.RebootNode(victim) })
		})
	}

	step(24*sim.Hour, func() bool { return finished })
	sup.Stop()
	col.Stop()
	if !finished {
		return arm, nil, fmt.Errorf("experiments: recovery run never finished (state %q)", sess.State())
	}
	if res.Err != nil {
		return arm, nil, fmt.Errorf("experiments: recovery task: %w", res.Err)
	}
	return recoveryArm{
		CompletionSec: res.Elapsed().Seconds(),
		LostWorkSec:   statsAt.LostWorkSec,
		RepairSec:     statsAt.RepairSec,
		CkptCostSec:   statsAt.CheckpointSec,
		Crashes:       statsAt.Crashes,
		Recoveries:    statsAt.Recoveries,
		LeaseAlerts:   leaseAlertsAt,
	}, rec, nil
}

// RecoveryTable renders ablation G.
func RecoveryTable(rows []RecoveryRow) *Table {
	t := &Table{
		Title: "Ablation G: checkpoint interval vs failure rate (self-healing sessions)",
		Note: "1500 s task under Poisson node crashes (300 s outages); " +
			"MTTR = detection + restore + replay per recovery; " +
			"alerts = stale-lease telemetry firings per run (tracks crashes)",
		Header: []string{"MTBF (s)", "ckpt every (s)", "completion (s)", "crashes",
			"lost/rec (s)", "MTTR (s)", "avail", "ckpt cost (s)", "alerts"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", r.MTBFSec),
			fmt.Sprintf("%.0f", r.IntervalSec),
			f1(r.CompletionSec),
			f1(r.Crashes),
			f1(r.LostWorkSec),
			f1(r.MTTRSec),
			pct(r.Availability),
			f1(r.CkptCostSec),
			f1(r.AlertFirings),
		})
	}
	return t
}
