package experiments

import (
	"bytes"
	"testing"

	"vmgrid/internal/obs"
	"vmgrid/internal/sim"
)

// recoveryIncidents runs a reduced Ablation G sweep with flight
// recorders on and returns the incident set plus its JSON emission.
func recoveryIncidents(t *testing.T, workers int) (*obs.IncidentSet, []byte) {
	t.Helper()
	set := obs.NewIncidentSet()
	if _, err := AblationRecoveryIncidents(5, 1, workers, set); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return set, buf.Bytes()
}

// TestRecoveryIncidentsDeterministicAcrossWorkers extends the
// byte-identity guarantee to incident bundles: every TraceID, SpanID,
// incident id, and report in the JSON is a pure function of the seed,
// not of the fan-out schedule.
func TestRecoveryIncidentsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full recovery sweep in -short mode")
	}
	one, oneJSON := recoveryIncidents(t, 1)
	_, eightJSON := recoveryIncidents(t, 8)
	if !bytes.Equal(oneJSON, eightJSON) {
		t.Fatalf("incident JSON differs between workers=1 (%d bytes) and workers=8 (%d bytes)",
			len(oneJSON), len(eightJSON))
	}
	if one.Len() != 8 { // 2 MTBFs x 1 replicate x 4 intervals
		t.Fatalf("incident set has %d runs, want 8", one.Len())
	}
	if one.Total() == 0 {
		t.Fatal("recovery sweep produced no incidents (crashes should trigger them)")
	}
}

// TestRecoveryIncidentPostmortem is the acceptance check on the
// analyzer's output: a session crash during ablation-recovery must
// yield a sealed "recovery" incident whose critical path names the
// supervisor restore phase, and each stale-lease alert fired by the
// telemetry shadow detector must freeze its own bundle.
func TestRecoveryIncidentPostmortem(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery run in -short mode")
	}
	// Seed 1 at MTBF 10 min is known-crashy (the lease-alert test relies
	// on the same schedule shape).
	arm, rec, err := recoveryRun(1, 10*sim.Minute, 60*sim.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	if arm.Crashes == 0 {
		t.Fatal("crash schedule produced no crashes; pick another seed")
	}
	// Aborted failover attempts (no target up yet, backoff) seal
	// zero-length incidents with empty paths; at least one completed
	// recovery must name the restore phase on its critical path.
	restorePaths := 0
	alertBundles := 0
	for _, inc := range rec.Incidents() {
		switch {
		case inc.Trigger == "recovery" && inc.Sealed():
			if inc.Report == nil {
				t.Fatalf("%s: sealed recovery incident has no postmortem", inc.ID)
			}
			if inc.Report.CriticalPathNames("supervisor", "restore") {
				restorePaths++
			} else if inc.Report.TotalUs > 0 {
				t.Errorf("%s: %.3fs recovery's critical path does not pass through the supervisor restore phase: %+v",
					inc.ID, inc.Report.TotalUs.Seconds(), inc.Report.Critical)
			}
		case inc.Trigger == "alert:stale-lease":
			alertBundles++
		}
	}
	if restorePaths == 0 {
		t.Error("no recovery incident's critical path names the supervisor restore phase")
	}
	if arm.LeaseAlerts > 0 && alertBundles == 0 {
		t.Errorf("%d stale-lease alerts fired but no alert incident was frozen", arm.LeaseAlerts)
	}
}

// TestRecoveryIncidentsDoNotPerturbResults: recording is read-only —
// the measured rows with recorders on must equal the rows without.
func TestRecoveryIncidentsDoNotPerturbResults(t *testing.T) {
	if testing.Short() {
		t.Skip("paired recovery runs in -short mode")
	}
	plain, _, err := recoveryRun(2, 10*sim.Minute, 120*sim.Second, false)
	if err != nil {
		t.Fatal(err)
	}
	recorded, _, err := recoveryRun(2, 10*sim.Minute, 120*sim.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	if plain != recorded {
		t.Fatalf("flight recording changed measured results:\nplain    %+v\nrecorded %+v", plain, recorded)
	}
}
