package experiments

import (
	"strings"
	"testing"

	"vmgrid/internal/trace"
	"vmgrid/internal/vmm"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Note:   "n",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
	}
	out := tbl.String()
	for _, want := range []string{"T", "n", "a", "bb", "xxx", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1ShapeHolds(t *testing.T) {
	rows, err := Figure1(Fig1Config{Seed: 1, Samples: 120, TaskSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	byKey := map[string]Fig1Row{}
	for _, r := range rows {
		byKey[r.Scenario()] = r
		if r.N != 120 {
			t.Errorf("%s: N = %d", r.Scenario(), r.N)
		}
		if r.Mean < 0.999 {
			t.Errorf("%s: mean slowdown %v < 1", r.Scenario(), r.Mean)
		}
	}

	// The paper's takeaway: under no load, the VM costs ≤ ~10%.
	noneVM := byKey["load=none/physical test=VM"]
	nonePhys := byKey["load=none/physical test=physical"]
	if noneVM.Mean/nonePhys.Mean > 1.10 {
		t.Errorf("unloaded VM slowdown %v > 1.10 over physical", noneVM.Mean/nonePhys.Mean)
	}
	// Load must dominate: heavy scenarios are far above none scenarios.
	heavy := byKey["load=heavy/physical test=physical"]
	if heavy.Mean < 1.5 {
		t.Errorf("heavy load mean %v implausibly low", heavy.Mean)
	}
	light := byKey["load=light/physical test=physical"]
	if light.Mean <= nonePhys.Mean || heavy.Mean <= light.Mean {
		t.Errorf("load ordering broken: none %v light %v heavy %v",
			nonePhys.Mean, light.Mean, heavy.Mean)
	}
	// And virtualization must cost something when both placements see
	// identical load conditions (same-trace pairing).
	lightVM := byKey["load=light/physical test=VM"]
	if lightVM.Mean < light.Mean {
		t.Errorf("VM under light load (%v) cheaper than physical (%v)", lightVM.Mean, light.Mean)
	}

	tbl := Figure1Table(rows)
	if !strings.Contains(tbl.String(), "heavy") {
		t.Error("table missing heavy rows")
	}
}

func TestTable1ShapeHolds(t *testing.T) {
	rows, err := Table1(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	get := func(app, res string) Table1Row {
		for _, r := range rows {
			if r.App == app && r.Resource == res {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", app, res)
		return Table1Row{}
	}

	seisLocal := get("SPECseis", "VM, local disk")
	seisPVFS := get("SPECseis", "VM, PVFS")
	climLocal := get("SPECclimate", "VM, local disk")
	climPVFS := get("SPECclimate", "VM, PVFS")

	// Paper: 1.2%, 2.0%, 4.0%, 4.2%. Bands keep the shape without
	// chasing decimals.
	checks := []struct {
		name   string
		got    float64
		lo, hi float64
	}{
		{"seis local", seisLocal.Overhead, 0.005, 0.03},
		{"seis pvfs", seisPVFS.Overhead, 0.012, 0.04},
		{"climate local", climLocal.Overhead, 0.025, 0.06},
		{"climate pvfs", climPVFS.Overhead, 0.03, 0.065},
	}
	for _, c := range checks {
		if c.got < c.lo || c.got > c.hi {
			t.Errorf("%s overhead = %.2f%%, want in [%.1f%%, %.1f%%]",
				c.name, c.got*100, c.lo*100, c.hi*100)
		}
	}
	// Orderings that must hold: PVFS ≥ local; climate ≥ seis.
	if seisPVFS.Overhead <= seisLocal.Overhead {
		t.Error("SPECseis PVFS not above local disk")
	}
	if climLocal.Overhead <= seisLocal.Overhead {
		t.Error("SPECclimate (memory-bound) not above SPECseis")
	}
	// User time is the workload's CPU seconds everywhere.
	if seisLocal.User != 16395 || climLocal.User != 9304 {
		t.Error("user seconds drifted from the calibrated workloads")
	}
	_ = Table1Table(rows)
}

func TestTable2ShapeHolds(t *testing.T) {
	rows, err := Table2(Table2Config{Seed: 1, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	get := func(mode vmm.StartMode, cfg string) Table2Row {
		for _, r := range rows {
			if r.Mode == mode && r.Config == cfg {
				return r
			}
		}
		t.Fatalf("missing row %v/%s", mode, cfg)
		return Table2Row{}
	}
	rebootP := get(vmm.ColdBoot, "Persistent")
	rebootD := get(vmm.ColdBoot, "Non-persistent DiskFS")
	rebootN := get(vmm.ColdBoot, "Non-persistent LoopbackNFS")
	restoreP := get(vmm.WarmRestore, "Persistent")
	restoreD := get(vmm.WarmRestore, "Non-persistent DiskFS")
	restoreN := get(vmm.WarmRestore, "Non-persistent LoopbackNFS")

	// Paper bands (mean ± slack): 273, 69.2, 74.5, 269, 12.4, 29.2.
	bands := []struct {
		name   string
		got    float64
		lo, hi float64
	}{
		{"reboot persistent", rebootP.Mean, 220, 330},
		{"reboot DiskFS", rebootD.Mean, 60, 85},
		{"reboot LoopbackNFS", rebootN.Mean, 65, 95},
		{"restore persistent", restoreP.Mean, 190, 300},
		{"restore DiskFS", restoreD.Mean, 9, 20},
		{"restore LoopbackNFS", restoreN.Mean, 20, 45},
	}
	for _, b := range bands {
		if b.got < b.lo || b.got > b.hi {
			t.Errorf("%s mean = %.1fs, want [%v, %v]", b.name, b.got, b.lo, b.hi)
		}
	}
	// Structural orderings from the paper's discussion.
	if !(restoreD.Mean < restoreN.Mean && restoreN.Mean < rebootD.Mean) {
		t.Errorf("restore ordering broken: DiskFS %.1f, NFS %.1f, reboot %.1f",
			restoreD.Mean, restoreN.Mean, rebootD.Mean)
	}
	if rebootP.Mean < 3*rebootD.Mean {
		t.Error("persistent copy does not dominate reboot")
	}
	if restoreD.Mean*3 > rebootD.Mean {
		t.Error("restore not ≪ reboot")
	}
	// Variance exists (background noise) but stays modest.
	if rebootD.Std <= 0 {
		t.Error("no sample variance; noise model inactive")
	}
	_ = Table2Table(rows)
}

func TestAblationStagingCrossover(t *testing.T) {
	rows, err := AblationStaging(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// On-demand wins at small working sets; staging wins (or ties) at
	// full-image touch.
	if rows[0].OnDemandSec >= rows[0].StagedSec {
		t.Errorf("1%% working set: on-demand %v not faster than staged %v",
			rows[0].OnDemandSec, rows[0].StagedSec)
	}
	last := rows[len(rows)-1]
	if last.WorkingSet != 1.0 {
		t.Fatalf("last row ws = %v", last.WorkingSet)
	}
	if last.StagedSec >= last.OnDemandSec {
		t.Errorf("full working set: staged %v not faster than on-demand %v",
			last.StagedSec, last.OnDemandSec)
	}
	// Staged cost is roughly flat; on-demand grows with working set.
	if rows[0].OnDemandSec >= rows[len(rows)-1].OnDemandSec {
		t.Error("on-demand cost did not grow with working set")
	}
	_ = StagingTable(rows)
}

func TestAblationProxyCacheSharing(t *testing.T) {
	rows, err := AblationProxyCache(1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].BootSec >= rows[0].BootSec {
		t.Errorf("second boot (%v) not faster than first (%v)", rows[1].BootSec, rows[0].BootSec)
	}
	if rows[1].DiskReads >= rows[0].DiskReads {
		t.Errorf("second boot reads (%d) not below first (%d)", rows[1].DiskReads, rows[0].DiskReads)
	}
	_ = CacheTable(rows)
}

func TestAblationSchedulingAccuracy(t *testing.T) {
	rows, err := AblationScheduling(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]SchedRow{}
	for _, r := range rows {
		byName[r.Mechanism] = r
		if r.ShareA < 0.6 || r.ShareA > 0.82 {
			t.Errorf("%s long-run share %v far from 0.7", r.Mechanism, r.ShareA)
		}
	}
	if byName["wfq"].WorstWindow >= byName["lottery"].WorstWindow {
		t.Error("WFQ short-term fairness not better than lottery")
	}
	_ = SchedTable(rows)
}

func TestAblationMigrationBeatsRestart(t *testing.T) {
	rows, err := AblationMigration(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]MigrationRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	keep := byName["keep"].TotalSec
	migrate := byName["migrate"].TotalSec
	restart := byName["restart"].TotalSec
	if !(keep < migrate && migrate < restart) {
		t.Errorf("ordering broken: keep %v, migrate %v, restart %v", keep, migrate, restart)
	}
	// Migration overhead is tens of seconds, not the 300 s of lost work.
	if migrate-keep > 120 {
		t.Errorf("migration overhead %vs too large", migrate-keep)
	}
	if byName["restart"].LostWork < 200 {
		t.Error("restart did not record lost work")
	}
	_ = MigrationTable(rows)
}

func TestAblationPredictorsOrdering(t *testing.T) {
	rows, err := AblationPredictors(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	mse := map[string]float64{}
	for _, r := range rows {
		if r.Load == trace.Heavy {
			mse[r.Predictor] = r.MSE
		}
	}
	if mse["AR(8)"] >= mse["MEAN(500)"] {
		t.Errorf("AR (%v) not better than long mean (%v) on heavy load", mse["AR(8)"], mse["MEAN(500)"])
	}
	if mse["LAST"] >= mse["MEAN(500)"] {
		t.Errorf("LAST (%v) not better than long mean (%v)", mse["LAST"], mse["MEAN(500)"])
	}
	_ = PredictorTable(rows)
}

func TestAblationOverlayCrossover(t *testing.T) {
	rows, err := AblationOverlay(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// With a fast direct path the overlay must go direct; once the
	// direct path costs more than the 10 ms detour it must relay.
	if rows[0].Relayed {
		t.Error("overlay relayed over a 2 ms direct path")
	}
	last := rows[len(rows)-1]
	if !last.Relayed {
		t.Error("overlay did not relay around a 120 ms direct path")
	}
	if last.OverlayMs >= last.PlainMs {
		t.Errorf("relayed (%v ms) not faster than degraded direct (%v ms)",
			last.OverlayMs, last.PlainMs)
	}
	// The overlay never does much worse than direct.
	for _, r := range rows {
		if r.OverlayMs > r.PlainMs*1.2+1 {
			t.Errorf("direct %v ms: overlay %v ms worse than plain %v ms",
				r.DirectMs, r.OverlayMs, r.PlainMs)
		}
	}
	_ = OverlayTable(rows)
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"plain", `with "quote", comma`}},
	}
	got := tbl.CSV()
	want := "a,b\nplain,\"with \"\"quote\"\", comma\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
