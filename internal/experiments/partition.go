package experiments

import (
	"context"
	"errors"
	"fmt"

	"vmgrid/internal/core"
	"vmgrid/internal/fault"
	"vmgrid/internal/gis"
	"vmgrid/internal/guest"
	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/telemetry"
	"vmgrid/internal/vmm"
)

// ---------------------------------------------------------------------
// Ablation H: partition duration × replica count (partition tolerance)
// ---------------------------------------------------------------------
//
// Ablation G measures crash recovery; this ablation measures the harder
// failure mode the paper's centralized information service cannot
// survive: a network partition where the old incarnation keeps running.
// A supervised task runs while the session's host is periodically cut
// off — sometimes symmetrically, sometimes one-way (outbound mute, the
// classic half-dead NIC) — under a registry replicated across 1, 3, or
// 5 nodes. Three invariants are enforced in-run, not just reported:
// no acknowledged registry write may be lost after the fabric heals, a
// task must complete exactly once (the fencing epoch rejects the
// marooned incarnation's result), and the replicas must reconverge.
// A violated invariant fails the whole experiment.

// PartitionRow aggregates one (partition duration, replica count) cell.
type PartitionRow struct {
	// Replicas is the registry replica count under test.
	Replicas int
	// PartitionSec is the injected partition duration.
	PartitionSec float64
	// CompletionSec is mean task time including every failover absorbed.
	CompletionSec float64
	// Failovers is the mean number of fenced failovers per run.
	Failovers float64
	// Fenced is the mean number of zombie results rejected per run.
	Fenced float64
	// AckedWrites is the mean number of acknowledged probe writes.
	AckedWrites float64
	// RejectedWrites is the mean number of probe writes refused with
	// ErrNoQuorum because their origin was on the minority side.
	RejectedWrites float64
	// MinorityWrites is the mean number of quorum-failed writes of any
	// kind (probes, lease renewals) observed by the cluster.
	MinorityWrites float64
	// SplitAlerts is the mean number of split-brain-risk telemetry
	// firings per run.
	SplitAlerts float64
}

// partitionArm is one simulated run at one replica count under one
// partition schedule.
type partitionArm struct {
	CompletionSec  float64
	Failovers      int
	Fenced         int
	AckedWrites    int
	RejectedWrites int
	MinorityWrites uint64
	SplitAlerts    int
}

// partitionTaskSec is the supervised workload for ablation H: long
// enough that the Poisson partition schedule lands several cuts.
const partitionTaskSec = 900

// probeKind tags the acked-durability probe records ablation H writes
// into the registry.
const probeKind = gis.Kind("bench-probe")

// AblationPartition sweeps partition duration × replica count. The
// design is paired: one sample is one (duration, replicate) pair whose
// partition schedule — instants, symmetric/one-way alternation, replica
// lag cuts — replays identically across all replica counts, so the
// replication columns compare the same outages. samples <= 0 selects
// the default replicate count.
func AblationPartition(seed uint64, samples, workers int) ([]PartitionRow, error) {
	durations := []sim.Duration{60 * sim.Second, 180 * sim.Second}
	counts := []int{1, 3, 5}
	if samples <= 0 {
		samples = 6
	}
	arms, err := RunSamples(context.Background(), seed, len(durations)*samples, workers,
		func(i int, sseed uint64) ([]partitionArm, error) {
			dur := durations[i/samples]
			out := make([]partitionArm, len(counts))
			for j, count := range counts {
				a, err := partitionRun(sseed, dur, count)
				if err != nil {
					return nil, fmt.Errorf("partition dur=%v replicas=%d sample %d: %w", dur, count, i, err)
				}
				out[j] = a
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	rows := make([]PartitionRow, 0, len(durations)*len(counts))
	for di, dur := range durations {
		for ji, count := range counts {
			var sum partitionArm
			for si := 0; si < samples; si++ {
				a := arms[di*samples+si][ji]
				sum.CompletionSec += a.CompletionSec
				sum.Failovers += a.Failovers
				sum.Fenced += a.Fenced
				sum.AckedWrites += a.AckedWrites
				sum.RejectedWrites += a.RejectedWrites
				sum.MinorityWrites += a.MinorityWrites
				sum.SplitAlerts += a.SplitAlerts
			}
			n := float64(samples)
			rows = append(rows, PartitionRow{
				Replicas:       count,
				PartitionSec:   dur.Seconds(),
				CompletionSec:  sum.CompletionSec / n,
				Failovers:      float64(sum.Failovers) / n,
				Fenced:         float64(sum.Fenced) / n,
				AckedWrites:    float64(sum.AckedWrites) / n,
				RejectedWrites: float64(sum.RejectedWrites) / n,
				MinorityWrites: float64(sum.MinorityWrites) / n,
				SplitAlerts:    float64(sum.SplitAlerts) / n,
			})
		}
	}
	return rows, nil
}

// partitionRun simulates one supervised task to completion under one
// partition schedule with the registry replicated across count nodes.
// The topology is identical at every count — replica homes g2..g5 exist
// even when unused — so the fault schedule replays verbatim.
func partitionRun(seed uint64, dur sim.Duration, count int) (partitionArm, error) {
	var arm partitionArm
	g := core.NewGrid(seed)
	k := g.Kernel()
	col, err := g.EnableTelemetry(telemetry.Config{})
	if err != nil {
		return arm, err
	}
	if err := g.DefaultAlertRules(0); err != nil {
		return arm, err
	}
	col.Start()
	for _, cfg := range []core.NodeConfig{
		{Name: "front", Site: "a", Role: core.RoleFrontEnd},
		{Name: "c1", Site: "a", Role: core.RoleCompute, Slots: 1, DHCPPrefix: "10.1.0."},
		{Name: "c2", Site: "a", Role: core.RoleCompute, Slots: 1, DHCPPrefix: "10.1.1."},
		{Name: "data", Site: "a", Role: core.RoleDataServer},
		{Name: "g2", Site: "a", Role: core.RoleDataServer},
		{Name: "g3", Site: "a", Role: core.RoleDataServer},
		{Name: "g4", Site: "a", Role: core.RoleDataServer},
		{Name: "g5", Site: "a", Role: core.RoleDataServer},
	} {
		if _, err := g.AddNode(cfg); err != nil {
			return arm, err
		}
	}
	if err := g.Net().BuildLAN("front", "c1", "c2", "data", "g2", "g3", "g4", "g5"); err != nil {
		return arm, err
	}
	homes := []string{"data", "g2", "g3", "g4", "g5"}[:count]
	cl, err := g.EnableGISReplication(homes, 0)
	if err != nil {
		return arm, err
	}
	img := storage.ImageInfo{Name: "rh72", OS: "rh72", DiskBytes: 2 * hw.GB, MemBytes: 64 * hw.MB}
	for _, n := range []string{"c1", "c2"} {
		if err := g.Node(n).InstallImage(img); err != nil {
			return arm, err
		}
	}

	ready, serr := false, error(nil)
	var sess *core.Session
	if _, err := g.CreateSession(core.SessionConfig{
		User: "bench", FrontEnd: "front", Image: "rh72",
		Mode: vmm.WarmRestore, Disk: core.NonPersistent, Access: core.AccessLocal,
	}, func(s *core.Session, err error) { sess, serr, ready = s, err, true }); err != nil {
		return arm, err
	}
	_ = k.RunUntil(k.Now().Add(30 * sim.Minute))
	if !ready || serr != nil {
		return arm, fmt.Errorf("experiments: partition session setup: ready=%v err=%v", ready, serr)
	}

	sup, err := core.NewSupervisor(g, core.SupervisorConfig{
		CheckpointInterval: 60 * sim.Second,
		StableNode:         "data",
		MaxRecoveries:      64,
	})
	if err != nil {
		return arm, err
	}
	adopted, aerr := false, error(nil)
	if err := sup.Adopt(sess, func(err error) { aerr, adopted = err, true }); err != nil {
		return arm, err
	}
	step := func(cap sim.Duration, cond func() bool) {
		deadline := k.Now().Add(cap)
		for !cond() && k.Now() < deadline {
			_ = k.RunUntil(k.Now().Add(sim.Minute))
		}
	}
	step(sim.Hour, func() bool { return adopted })
	if !adopted || aerr != nil {
		return arm, fmt.Errorf("experiments: partition baseline checkpoint: adopted=%v err=%v", adopted, aerr)
	}

	var res guest.TaskResult
	completions := 0
	finished := false
	if err := sup.Run(sess, guest.MicroTask(partitionTaskSec), func(r guest.TaskResult) {
		res = r
		completions++
		finished = true
	}); err != nil {
		return arm, err
	}

	// Acked-durability probes: every 45 s a record is written into the
	// registry with no TTL, alternating between the front end and the
	// session's current host as origin. A write acked by a quorum must
	// survive the partition; a minority-side origin must be refused.
	var acked []string
	pn := 0
	var probeTick func()
	probeTick = func() {
		if finished {
			return
		}
		origin := "front"
		if pn%2 == 1 && sess.State() == core.StateRunning {
			origin = sess.Node().Name()
		}
		name := fmt.Sprintf("probe-%d", pn)
		pn++
		err := g.Info().RegisterFrom(origin, probeKind, name, map[string]any{"n": pn}, 0)
		switch {
		case err == nil:
			acked = append(acked, name)
		case errors.Is(err, gis.ErrNoQuorum):
			arm.RejectedWrites++
		default:
			// Transient routing errors (origin mid-reboot) are neither
			// acked nor quorum rejections; ignore them.
		}
		k.After(45*sim.Second, probeTick)
	}
	k.After(45*sim.Second, probeTick)

	// The partition schedule is a pure function of the sample seed and
	// replays identically across replica-count arms. Each event cuts off
	// whichever node hosts the session — even events symmetrically, odd
	// events one-way (outbound mute: its heartbeats vanish while traffic
	// still reaches it) — and additionally severs g2's inbound side so a
	// replica falls behind and anti-entropy has something to repair.
	in := fault.NewSeeded(k, seed)
	for idx, at := range in.Times(12*sim.Minute, 2*sim.Hour) {
		oneWay := idx%2 == 1
		in.At(at, func() {
			if finished || sess.State() != core.StateRunning {
				return
			}
			victim := sess.Node().Name()
			if oneWay {
				_ = g.Net().SetNodeDirUp(victim, true, false)
				in.At(k.Now().Add(dur), func() { _ = g.Net().SetNodeDirUp(victim, true, true) })
			} else {
				_ = g.Net().SetNodeUp(victim, false)
				in.At(k.Now().Add(dur), func() { _ = g.Net().SetNodeUp(victim, true) })
			}
			_ = g.Net().SetNodeDirUp("g2", false, false)
			in.At(k.Now().Add(dur), func() { _ = g.Net().SetNodeDirUp("g2", false, true) })
		})
	}
	step(24*sim.Hour, func() bool { return finished })
	if !finished {
		return arm, fmt.Errorf("experiments: partition run never finished (state %q)", sess.State())
	}
	if res.Err != nil {
		return arm, fmt.Errorf("experiments: partition task: %w", res.Err)
	}

	// Let in-flight heals land and marooned incarnations surface, then
	// require anti-entropy to reconverge the replicas.
	_ = k.RunUntil(k.Now().Add(dur + 10*sim.Minute))
	step(sim.Hour, cl.Converged)
	sup.Stop()
	col.Stop()

	// Invariant: exactly one completion. The fencing epoch must have
	// rejected every marooned incarnation's result.
	if completions != 1 {
		return arm, fmt.Errorf("experiments: partition run delivered %d completions, want 1", completions)
	}
	// Invariant: post-heal convergence.
	if !cl.Converged() {
		return arm, fmt.Errorf("experiments: replicas did not reconverge after heal")
	}
	// Invariant: no acked write lost — every acknowledged probe is
	// present on every replica once the fabric has healed.
	for _, name := range acked {
		for i := 0; i < cl.Size(); i++ {
			if _, err := cl.Replica(i).Lookup(probeKind, name); err != nil {
				return arm, fmt.Errorf("experiments: acked write %q lost on replica %s: %w",
					name, cl.Node(i), err)
			}
		}
	}

	st := sup.Stats()
	splitAlerts := 0
	for _, f := range col.Firings() {
		if f.Rule == "split-brain-risk" {
			splitAlerts++
		}
	}
	arm.CompletionSec = res.Elapsed().Seconds()
	arm.Failovers = st.Recoveries
	arm.Fenced = st.FencedResults
	arm.AckedWrites = len(acked)
	arm.MinorityWrites = cl.MinorityWrites()
	arm.SplitAlerts = splitAlerts
	return arm, nil
}

// PartitionTable renders ablation H.
func PartitionTable(rows []PartitionRow) *Table {
	t := &Table{
		Title: "Ablation H: partition duration vs replica count (fenced failover)",
		Note: "900 s task under Poisson host partitions (symmetric and one-way); " +
			"invariants enforced per run: no acked write lost, exactly one completion, " +
			"post-heal convergence",
		Header: []string{"replicas", "partition (s)", "completion (s)", "failovers",
			"fenced", "acked", "rejected", "minority", "alerts"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Replicas),
			fmt.Sprintf("%.0f", r.PartitionSec),
			f1(r.CompletionSec),
			f1(r.Failovers),
			f1(r.Fenced),
			f1(r.AckedWrites),
			f1(r.RejectedWrites),
			f1(r.MinorityWrites),
			f1(r.SplitAlerts),
		})
	}
	return t
}
