package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunSamplesOrdersResults(t *testing.T) {
	got, err := RunSamples(context.Background(), 1, 100, 8, func(i int, _ uint64) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunSamplesSeedsMatchSerial(t *testing.T) {
	// The seed handed to sample i must be SampleSeed(base, i) at every
	// worker count — the parallel schedule must not leak into seeding.
	const base = 99
	for _, workers := range []int{1, 3, 16} {
		seeds, err := RunSamples(context.Background(), base, 50, workers,
			func(i int, seed uint64) (uint64, error) { return seed, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			if want := SampleSeed(base, i); s != want {
				t.Fatalf("workers=%d: seed[%d] = %#x, want %#x", workers, i, s, want)
			}
		}
	}
}

func TestRunSamplesPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := RunSamples(context.Background(), 1, 100, workers, func(i int, _ uint64) (int, error) {
			if i == 7 {
				return 0, fmt.Errorf("sample %d: %w", i, boom)
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
	}
}

func TestRunSamplesErrorCancelsStragglers(t *testing.T) {
	// After the first failure, unstarted samples must not run: the error
	// cancels the shared context and workers stop claiming indices.
	var ran atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	_, err := RunSamples(context.Background(), 1, 10_000, 2, func(i int, _ uint64) (int, error) {
		ran.Add(1)
		var failed error
		once.Do(func() {
			failed = errors.New("first failure")
			close(release)
		})
		if failed != nil {
			return 0, failed
		}
		<-release // everyone else waits until the failure is recorded
		return i, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if n := ran.Load(); n > 100 {
		t.Fatalf("ran %d samples after failure; cancellation did not stop the fan-out", n)
	}
}

func TestRunSamplesContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := RunSamples(ctx, 1, 10, workers, func(i int, _ uint64) (int, error) {
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestRunSamplesEmpty(t *testing.T) {
	got, err := RunSamples(context.Background(), 1, 0, 4, func(i int, _ uint64) (int, error) {
		t.Fatal("sample ran for n=0")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers(3) != 3 {
		t.Error("explicit worker count not respected")
	}
	if DefaultWorkers(0) < 1 || DefaultWorkers(-1) < 1 {
		t.Error("defaulted worker count not positive")
	}
}

// TestSampleSeedCollisionFree is the property test for the SplitMix64
// derivation: across 10k sample indices of a random base seed, every
// derived seed is distinct (and none collides with the base itself).
func TestSampleSeedCollisionFree(t *testing.T) {
	prop := func(base uint64) bool {
		seen := make(map[uint64]struct{}, 10_001)
		seen[base] = struct{}{}
		for i := 0; i < 10_000; i++ {
			s := SampleSeed(base, i)
			if _, dup := seen[s]; dup {
				return false
			}
			seen[s] = struct{}{}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------------
// Determinism: every experiment must produce exactly equal rows at
// workers=1 (pure serial) and workers=8, from the same seed.
// ---------------------------------------------------------------------

func assertWorkerInvariant[T any](t *testing.T, name string, run func(workers int) ([]T, error)) {
	t.Helper()
	serial, err := run(1)
	if err != nil {
		t.Fatalf("%s workers=1: %v", name, err)
	}
	parallel, err := run(8)
	if err != nil {
		t.Fatalf("%s workers=8: %v", name, err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("%s: rows differ between workers=1 and workers=8:\nserial:   %+v\nparallel: %+v",
			name, serial, parallel)
	}
}

func TestFigure1WorkerInvariant(t *testing.T) {
	assertWorkerInvariant(t, "fig1", func(workers int) ([]Fig1Row, error) {
		return Figure1(Fig1Config{Seed: 3, Samples: 40, TaskSeconds: 1, Workers: workers})
	})
}

func TestTable1WorkerInvariant(t *testing.T) {
	assertWorkerInvariant(t, "table1", func(workers int) ([]Table1Row, error) {
		return Table1(3, workers)
	})
}

func TestTable2WorkerInvariant(t *testing.T) {
	assertWorkerInvariant(t, "table2", func(workers int) ([]Table2Row, error) {
		return Table2(Table2Config{Seed: 3, Samples: 2, Workers: workers})
	})
}

func TestAblationStagingWorkerInvariant(t *testing.T) {
	assertWorkerInvariant(t, "staging", func(workers int) ([]StagingRow, error) {
		return AblationStaging(3, workers)
	})
}

func TestAblationProxyCacheWorkerInvariant(t *testing.T) {
	assertWorkerInvariant(t, "cache", func(workers int) ([]CacheRow, error) {
		return AblationProxyCache(3, 3, workers)
	})
}

func TestAblationSchedulingWorkerInvariant(t *testing.T) {
	assertWorkerInvariant(t, "sched", func(workers int) ([]SchedRow, error) {
		return AblationScheduling(3, workers)
	})
}

func TestAblationMigrationWorkerInvariant(t *testing.T) {
	assertWorkerInvariant(t, "migration", func(workers int) ([]MigrationRow, error) {
		return AblationMigration(3, workers)
	})
}

func TestAblationPredictorsWorkerInvariant(t *testing.T) {
	assertWorkerInvariant(t, "rps", func(workers int) ([]PredictorRow, error) {
		return AblationPredictors(3, workers)
	})
}

func TestAblationRecoveryWorkerInvariant(t *testing.T) {
	assertWorkerInvariant(t, "recovery", func(workers int) ([]RecoveryRow, error) {
		return AblationRecovery(3, 2, workers)
	})
}

func TestAblationPartitionWorkerInvariant(t *testing.T) {
	assertWorkerInvariant(t, "partition", func(workers int) ([]PartitionRow, error) {
		return AblationPartition(3, 2, workers)
	})
}

// TestAblationPartitionInvariantsAcrossSeeds re-rolls the chaos
// schedule: every partitionRun enforces the safety invariants (no
// acked write lost, exactly one completion, post-heal convergence)
// and surfaces violations as errors, so a clean pass across seeds is
// the acceptance check itself.
func TestAblationPartitionInvariantsAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{5, 9, 13} {
		if _, err := AblationPartition(seed, 1, 8); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestAblationOverlayWorkerInvariant(t *testing.T) {
	assertWorkerInvariant(t, "overlay", func(workers int) ([]OverlayRow, error) {
		return AblationOverlay(3, workers)
	})
}
