package experiments

import (
	"context"
	"fmt"

	"vmgrid/internal/core"
	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/obs"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/telemetry"
	"vmgrid/internal/trace"
	"vmgrid/internal/vmm"
)

// Table2Config parameterizes the startup-latency experiment.
type Table2Config struct {
	Seed    uint64
	Samples int // the paper uses 10
	// Workers bounds concurrent samples; <= 0 means one per CPU.
	// Output is identical for every value.
	Workers int
	// Trace, when non-nil, collects one tracer per sample (in sample
	// order, so the set is byte-identical at any worker count). Leaving
	// it nil keeps the samples on the nil-sink fast path.
	Trace *obs.TraceSet
	// Telemetry, when non-nil, collects one telemetry collector per
	// sample (scraped once per simulated second from submission to
	// ready, standard SLO rules armed), added in sample order like
	// Trace. Nil keeps the samples on the nil-collector fast path.
	Telemetry *telemetry.Set
}

// DefaultTable2Config matches the paper.
func DefaultTable2Config() Table2Config { return Table2Config{Seed: 1, Samples: 10} }

// Table2Row is one (mode, configuration) cell with its sample statistics.
type Table2Row struct {
	Mode   vmm.StartMode
	Config string // "Persistent", "Non-persistent DiskFS", "Non-persistent LoopbackNFS"

	Mean, Std, Min, Max float64
	N                   int
}

// Table2 reproduces the VM startup measurements: globusrun-driven
// sessions within a LAN, for VM-reboot and VM-restore crossed with the
// three state configurations. Sample-to-sample variance comes from the
// same place it did on the real testbed: background activity on the
// compute host (a low-mean load trace with a different phase per
// sample).
func Table2(cfg Table2Config) ([]Table2Row, error) {
	if cfg.Samples <= 0 {
		cfg.Samples = 10
	}
	type cell struct {
		mode   vmm.StartMode
		label  string
		disk   core.DiskPolicy
		access core.ImageAccess
	}
	cells := []cell{
		{vmm.ColdBoot, "Persistent", core.Persistent, core.AccessLocal},
		{vmm.ColdBoot, "Non-persistent DiskFS", core.NonPersistent, core.AccessLocal},
		{vmm.ColdBoot, "Non-persistent LoopbackNFS", core.NonPersistent, core.AccessLoopback},
		{vmm.WarmRestore, "Persistent", core.Persistent, core.AccessLocal},
		{vmm.WarmRestore, "Non-persistent DiskFS", core.NonPersistent, core.AccessLocal},
		{vmm.WarmRestore, "Non-persistent LoopbackNFS", core.NonPersistent, core.AccessLoopback},
	}

	// Every (cell, sample) pair is an independent simulation: flatten to
	// 6×Samples samples and fan out. Each sample builds its own grid from
	// the runner-derived seed, so cells fill in parallel and the rows are
	// identical at any worker count.
	type sampleOut struct {
		v   float64
		tr  *obs.Tracer
		col *telemetry.Collector
	}
	results, err := RunSamples(context.Background(), cfg.Seed, len(cells)*cfg.Samples, cfg.Workers,
		func(i int, seed uint64) (sampleOut, error) {
			c := cells[i/cfg.Samples]
			v, tr, col, err := table2Sample(seed, c.mode, c.disk, c.access, cfg.Trace != nil, cfg.Telemetry != nil)
			if err != nil {
				return sampleOut{}, fmt.Errorf("table2 %v/%s sample %d: %w", c.mode, c.label, i%cfg.Samples, err)
			}
			return sampleOut{v: v, tr: tr, col: col}, nil
		})
	if err != nil {
		return nil, err
	}
	// RunSamples returns in sample-index order regardless of worker
	// interleaving, so these loops fix the trace and telemetry layout.
	if cfg.Trace != nil {
		for i, r := range results {
			c := cells[i/cfg.Samples]
			cfg.Trace.Add(fmt.Sprintf("table2/VM-%s/%s/%d", c.mode, c.label, i%cfg.Samples), r.tr)
		}
	}
	if cfg.Telemetry != nil {
		for i, r := range results {
			c := cells[i/cfg.Samples]
			cfg.Telemetry.Add(fmt.Sprintf("table2/VM-%s/%s/%d", c.mode, c.label, i%cfg.Samples), r.col)
		}
	}

	rows := make([]Table2Row, 0, len(cells))
	for ci, c := range cells {
		var stat sim.Stat
		for _, r := range results[ci*cfg.Samples : (ci+1)*cfg.Samples] {
			stat.Add(r.v)
		}
		rows = append(rows, Table2Row{
			Mode: c.mode, Config: c.label,
			Mean: stat.Mean(), Std: stat.Stddev(), Min: stat.Min(), Max: stat.Max(), N: stat.N(),
		})
	}
	return rows, nil
}

// table2Sample measures one globusrun-to-ready startup on a fresh LAN
// testbed with background host noise. With traced set it also returns
// the sample's tracer, and with telemetered set its telemetry collector
// (nil otherwise — the free disabled paths).
func table2Sample(seed uint64, mode vmm.StartMode, disk core.DiskPolicy, access core.ImageAccess, traced, telemetered bool) (float64, *obs.Tracer, *telemetry.Collector, error) {
	g := core.NewGrid(seed)
	var tr *obs.Tracer
	if traced {
		tr = obs.New(g.Kernel())
		g.SetTracer(tr)
	}
	var col *telemetry.Collector
	if telemetered {
		var err error
		if col, err = g.EnableTelemetry(telemetry.Config{}); err != nil {
			return 0, nil, nil, err
		}
		if err := g.DefaultAlertRules(0); err != nil {
			return 0, nil, nil, err
		}
		// Self-tick once per simulated second; the session-ready callback
		// below takes a final scrape and stops the clock so the bounded
		// RunUntil still drains once the startup is over.
		col.Start()
	}
	if _, err := g.AddNode(core.NodeConfig{Name: "front", Site: "lan", Role: core.RoleFrontEnd}); err != nil {
		return 0, nil, nil, err
	}
	compute, err := g.AddNode(core.NodeConfig{
		Name: "compute", Site: "lan", Role: core.RoleCompute,
		Slots: 1, DHCPPrefix: "10.0.0.",
	})
	if err != nil {
		return 0, nil, nil, err
	}
	if err := g.Net().BuildLAN("front", "compute"); err != nil {
		return 0, nil, nil, err
	}
	img := storage.ImageInfo{Name: "rh72", OS: "redhat-7.2", DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB}
	if err := compute.InstallImage(img); err != nil {
		return 0, nil, nil, err
	}

	// Background noise: the light desktop activity of a real host.
	noise := trace.Generate(g.Kernel().RNG().Split(), trace.GenConfig{
		Mean: 0.05, Rho: 0.9, Sigma: 0.05, Step: sim.Second, BurstProb: 0.01, BurstShape: 2.0,
	}, 4096)
	lp := hostos.NewLoadProcess(compute.Host(), "host-noise", noise)
	lp.Start()

	var ready *core.Session
	var sessErr error
	_, err = g.CreateSession(core.SessionConfig{
		User: "bench", FrontEnd: "front", Image: "rh72",
		Mode: mode, Disk: disk, Access: access,
	}, func(s *core.Session, err error) {
		ready, sessErr = s, err
		// Close out the telemetry window at the measurement boundary.
		col.Scrape()
		col.Stop()
	})
	if err != nil {
		return 0, nil, nil, err
	}
	_ = g.Kernel().RunUntil(sim.Time(2 * sim.Hour))
	if sessErr != nil {
		return 0, nil, nil, sessErr
	}
	if ready == nil || ready.EventAt("ready") < 0 {
		return 0, nil, nil, fmt.Errorf("experiments: session never ready")
	}
	return ready.EventAt("ready").Sub(ready.EventAt("submitted")).Seconds(), tr, col, nil
}

// Table2Table renders rows like the paper's Table 2.
func Table2Table(rows []Table2Row) *Table {
	t := &Table{
		Title:  "Table 2: VM startup times (seconds), globusrun within a LAN",
		Note:   "statistics over per-cell samples; noise from background host load",
		Header: []string{"mode", "configuration", "mean", "std", "min", "max", "n"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			"VM-" + r.Mode.String(), r.Config,
			f1(r.Mean), f1(r.Std), f1(r.Min), f1(r.Max), fmt.Sprintf("%d", r.N),
		})
	}
	return t
}
