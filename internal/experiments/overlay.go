package experiments

import (
	"context"

	"vmgrid/internal/netsim"
	"vmgrid/internal/sim"
	"vmgrid/internal/vnet"
)

// OverlayRow compares message latency between two of a user's VMs with
// and without the self-optimizing overlay, for one direct-path quality.
type OverlayRow struct {
	// DirectMs is the one-way latency of the degraded direct path.
	DirectMs float64
	// PlainMs is the measured delivery latency going direct.
	PlainMs float64
	// OverlayMs is the measured delivery latency through the overlay
	// (which may relay through a third VM).
	OverlayMs float64
	// Relayed reports whether the overlay chose a relay.
	Relayed bool
}

// AblationOverlay quantifies §3.3's "overlay network would optimize
// itself": two VMs communicate over a direct path of varying quality
// while a third VM sits on two good 5 ms links. Once the direct path
// degrades past the detour, the overlay routes around it — resilient
// overlay networks in miniature. The six path qualities simulate
// independently (paired on the experiment seed) and fan out across
// workers goroutines.
func AblationOverlay(seed uint64, workers int) ([]OverlayRow, error) {
	paths := []float64{2, 5, 9, 15, 40, 120}
	return RunSamples(context.Background(), seed, len(paths), workers,
		func(i int, _ uint64) (OverlayRow, error) {
			return overlayRun(seed, paths[i])
		})
}

func overlayRun(seed uint64, directMs float64) (OverlayRow, error) {
	k := sim.NewKernel(seed)
	n := netsim.New(k)
	for _, name := range []string{"vm-a", "vm-b", "vm-relay"} {
		n.AddNode(name)
	}
	direct := sim.DurationOf(directMs / 1000)
	if err := n.Connect("vm-a", "vm-b", direct, 1e7); err != nil {
		return OverlayRow{}, err
	}
	if err := n.Connect("vm-a", "vm-relay", 5*sim.Millisecond, 1e7); err != nil {
		return OverlayRow{}, err
	}
	if err := n.Connect("vm-relay", "vm-b", 5*sim.Millisecond, 1e7); err != nil {
		return OverlayRow{}, err
	}

	overlay, err := vnet.NewOverlay(n, "vm-a", "vm-b", "vm-relay")
	if err != nil {
		return OverlayRow{}, err
	}

	const msgBytes = 4 << 10
	var plainAt, overlayAt sim.Time
	if err := n.Send("vm-a", "vm-b", msgBytes, nil, func(any) { plainAt = k.Now() }); err != nil {
		return OverlayRow{}, err
	}
	k.Run()
	mark := k.Now()
	if err := overlay.Send("vm-a", "vm-b", msgBytes, nil, func(any) { overlayAt = k.Now() }); err != nil {
		return OverlayRow{}, err
	}
	k.Run()

	return OverlayRow{
		DirectMs:  directMs,
		PlainMs:   plainAt.Sub(0).Seconds() * 1000,
		OverlayMs: overlayAt.Sub(mark).Seconds() * 1000,
		Relayed:   overlay.Via("vm-a", "vm-b") != "",
	}, nil
}

// OverlayTable renders ablation F.
func OverlayTable(rows []OverlayRow) *Table {
	t := &Table{
		Title:  "Ablation F: self-optimizing overlay between a user's VMs",
		Note:   "4 KB message, direct path degrading; relay path is 2 x 5 ms",
		Header: []string{"direct path (ms)", "plain (ms)", "overlay (ms)", "path"},
	}
	for _, r := range rows {
		path := "direct"
		if r.Relayed {
			path = "via relay"
		}
		t.Rows = append(t.Rows, []string{
			f1(r.DirectMs), f2(r.PlainMs), f2(r.OverlayMs), path,
		})
	}
	return t
}
