package experiments

import (
	"context"
	"fmt"

	"vmgrid/internal/core"
	"vmgrid/internal/guest"
	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/rps"
	"vmgrid/internal/sched"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/trace"
	"vmgrid/internal/vmm"
)

// ---------------------------------------------------------------------
// Ablation A: whole-file staging vs on-demand virtual file system (§3.1)
// ---------------------------------------------------------------------

// StagingRow compares time-to-useful-work for one working-set fraction.
type StagingRow struct {
	// WorkingSet is the fraction of the 2 GB image the task touches.
	WorkingSet float64
	// StagedSec and OnDemandSec are time from submission to task
	// completion for the two transfer models.
	StagedSec   float64
	OnDemandSec float64
}

// AblationStaging sweeps the task's working-set fraction and measures a
// short task end-to-end under whole-file staging vs on-demand transfer
// across a WAN. The paper's §3.1 argument: "transfer of entire VM
// states can lead to unnecessary traffic due to the copying of unused
// data", so on-demand wins until the working set approaches the image.
// The 6 fractions × 2 transfer models are independent simulations and
// fan out across workers goroutines (<= 0 means one per CPU).
func AblationStaging(seed uint64, workers int) ([]StagingRow, error) {
	fractions := []float64{0.01, 0.05, 0.10, 0.25, 0.50, 1.0}
	arms := []struct {
		access core.ImageAccess
		label  string
	}{{core.AccessStaged, "staged"}, {core.AccessOnDemand, "on-demand"}}
	// Paired design: both arms of one fraction replay the experiment
	// seed so the winner column compares identical randomness.
	secs, err := RunSamples(context.Background(), seed, len(fractions)*len(arms), workers,
		func(i int, _ uint64) (float64, error) {
			ws, arm := fractions[i/len(arms)], arms[i%len(arms)]
			v, err := stagingRun(seed, arm.access, ws)
			if err != nil {
				return 0, fmt.Errorf("staging ws=%v %s: %w", ws, arm.label, err)
			}
			return v, nil
		})
	if err != nil {
		return nil, err
	}
	rows := make([]StagingRow, 0, len(fractions))
	for fi, ws := range fractions {
		rows = append(rows, StagingRow{
			WorkingSet: ws, StagedSec: secs[fi*len(arms)], OnDemandSec: secs[fi*len(arms)+1],
		})
	}
	return rows, nil
}

func stagingRun(seed uint64, access core.ImageAccess, workingSet float64) (float64, error) {
	g := core.NewGrid(seed)
	if _, err := g.AddNode(core.NodeConfig{Name: "front", Site: "a", Role: core.RoleFrontEnd}); err != nil {
		return 0, err
	}
	if _, err := g.AddNode(core.NodeConfig{Name: "compute", Site: "a", Role: core.RoleCompute,
		Slots: 1, DHCPPrefix: "10.0.0."}); err != nil {
		return 0, err
	}
	if _, err := g.AddNode(core.NodeConfig{Name: "images", Site: "b", Role: core.RoleImageServer}); err != nil {
		return 0, err
	}
	if err := g.Net().BuildLAN("front", "compute"); err != nil {
		return 0, err
	}
	if err := g.Net().ConnectWAN("compute", "images"); err != nil {
		return 0, err
	}
	if err := g.Net().ConnectWAN("front", "images"); err != nil {
		return 0, err
	}
	const diskBytes = 2 * hw.GB
	img := storage.ImageInfo{Name: "rh72", OS: "rh72", DiskBytes: diskBytes, MemBytes: 128 * hw.MB}
	if err := g.Node("images").InstallImage(img); err != nil {
		return 0, err
	}

	var finishedAt sim.Time = -1
	_, err := g.CreateSession(core.SessionConfig{
		User: "bench", FrontEnd: "front", Image: "rh72",
		Mode: vmm.WarmRestore, Disk: core.NonPersistent, Access: access,
	}, func(s *core.Session, err error) {
		if err != nil {
			return
		}
		// The task touches workingSet of the image through the root
		// mount, with a little compute in between.
		touched := int64(float64(diskBytes) * workingSet)
		reads := int(touched / (256 << 10))
		if reads < 1 {
			reads = 1
		}
		w := guest.Workload{
			Name:       "touch",
			CPUSeconds: 60,
			RootOps:    reads,
			RootBytes:  touched,
		}
		if err := s.Run(w, func(guest.TaskResult) { finishedAt = g.Kernel().Now() }); err != nil {
			panic(err) // setup bug
		}
	})
	if err != nil {
		return 0, err
	}
	_ = g.Kernel().RunUntil(sim.Time(6 * sim.Hour))
	if finishedAt < 0 {
		return 0, fmt.Errorf("experiments: staging run never finished")
	}
	return finishedAt.Seconds(), nil
}

// StagingTable renders ablation A.
func StagingTable(rows []StagingRow) *Table {
	t := &Table{
		Title:  "Ablation A: whole-file staging vs on-demand VFS (2 GB image over WAN)",
		Note:   "time from submission to completion of a 60 s task touching the given fraction",
		Header: []string{"working set", "staged (s)", "on-demand (s)", "winner"},
	}
	for _, r := range rows {
		winner := "on-demand"
		if r.StagedSec < r.OnDemandSec {
			winner = "staged"
		}
		t.Rows = append(t.Rows, []string{
			pct(r.WorkingSet), f1(r.StagedSec), f1(r.OnDemandSec), winner,
		})
	}
	return t
}

// ---------------------------------------------------------------------
// Ablation B: read-only image sharing through the host cache (§3.1)
// ---------------------------------------------------------------------

// CacheRow is the boot cost of the i-th VM sharing one base image.
type CacheRow struct {
	Instance  int
	BootSec   float64
	DiskReads uint64 // device requests during this boot
}

// AblationProxyCache boots N VMs one after another from the same master
// image on one host. Later boots hit the shared buffer cache, the
// mechanism behind "a master static Linux virtual system disk shared by
// multiple dynamic instances". Unlike the other experiments this one is
// inherently serial — the boots share one host cache, so it runs as a
// single sample regardless of workers.
func AblationProxyCache(seed uint64, instances, workers int) ([]CacheRow, error) {
	rows, err := RunSamples(context.Background(), seed, 1, workers,
		func(int, uint64) ([]CacheRow, error) { return proxyCacheRun(seed, instances) })
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

func proxyCacheRun(seed uint64, instances int) ([]CacheRow, error) {
	if instances <= 0 {
		instances = 4
	}
	k := sim.NewKernel(seed)
	h, err := hostos.New(k, hw.ReferenceMachine("host"))
	if err != nil {
		return nil, err
	}
	store := storage.NewStore(h)
	img := storage.ImageInfo{Name: "rh72", OS: "rh72", DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB}
	if err := storage.InstallImage(store, img); err != nil {
		return nil, err
	}

	var rows []CacheRow
	var bootNext func(i int)
	var fail error
	bootNext = func(i int) {
		if i >= instances {
			return
		}
		base, err := store.Open(img.DiskFile())
		if err != nil {
			fail = err
			return
		}
		diff, err := store.OpenOrCreate(fmt.Sprintf("vm%d.cow", i))
		if err != nil {
			fail = err
			return
		}
		vm, err := vmm.New(h, vmm.Config{
			Name:     fmt.Sprintf("vm%d", i),
			MemBytes: 128 * hw.MB,
			Disk:     storage.NewCowDisk(base, diff),
		})
		if err != nil {
			fail = err
			return
		}
		start := k.Now()
		reqBefore := h.Disk().Requests()
		if err := vm.Start(vmm.ColdBoot, func(err error) {
			if err != nil {
				fail = err
				return
			}
			rows = append(rows, CacheRow{
				Instance:  i + 1,
				BootSec:   k.Now().Sub(start).Seconds(),
				DiskReads: h.Disk().Requests() - reqBefore,
			})
			// Power off so the next boot measures I/O, not CPU sharing.
			vm.PowerOff()
			bootNext(i + 1)
		}); err != nil {
			fail = err
		}
	}
	bootNext(0)
	_ = k.RunUntil(sim.Time(2 * sim.Hour))
	if fail != nil {
		return nil, fail
	}
	if len(rows) != instances {
		return nil, fmt.Errorf("experiments: only %d/%d boots completed", len(rows), instances)
	}
	return rows, nil
}

// CacheTable renders ablation B.
func CacheTable(rows []CacheRow) *Table {
	t := &Table{
		Title:  "Ablation B: sequential VM boots sharing one master image",
		Note:   "later instances hit the host buffer cache for base-image blocks",
		Header: []string{"instance", "boot (s)", "device reads"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Instance), f1(r.BootSec), fmt.Sprintf("%d", r.DiskReads),
		})
	}
	return t
}

// ---------------------------------------------------------------------
// Ablation C: resource-control mechanisms (§3.2)
// ---------------------------------------------------------------------

// SchedRow reports how one mechanism enforced a 70/30 split.
type SchedRow struct {
	Mechanism string
	// ShareA is the long-run share client A achieved (target 0.7).
	ShareA float64
	// WorstWindow is the largest deviation of A's share from target in
	// any 100-quantum window (short-term fairness).
	WorstWindow float64
}

// schedTarget is client A's share of the CPU in ablation C.
const schedTarget = 0.7

// evalQuantum measures a quantum scheduler's long-run share and worst
// 100-quantum window deviation from the 70/30 target.
func evalQuantum(s sched.QuantumScheduler) SchedRow {
	const (
		quanta = 20000
		window = 100
	)
	countA := 0
	worst := 0.0
	winA := 0
	for q := 1; q <= quanta; q++ {
		if s.Next() == 0 {
			countA++
			winA++
		}
		if q%window == 0 {
			dev := float64(winA)/window - schedTarget
			if dev < 0 {
				dev = -dev
			}
			if dev > worst {
				worst = dev
			}
			winA = 0
		}
	}
	return SchedRow{
		Mechanism:   s.Name(),
		ShareA:      float64(countA) / quanta,
		WorstWindow: worst,
	}
}

// AblationScheduling compares lottery scheduling, weighted fair
// queueing, and SIGSTOP/SIGCONT duty-cycling at enforcing a 70/30 CPU
// split between two competing VMs. The three mechanisms evaluate
// independently and fan out across workers goroutines; each sample
// builds its own scheduler (and, for stop/cont, kernel) so nothing is
// shared.
func AblationScheduling(seed uint64, workers int) ([]SchedRow, error) {
	mechanisms := []func() (SchedRow, error){
		func() (SchedRow, error) {
			lot, err := sched.NewLottery(sim.NewRNG(seed), 7, 3)
			if err != nil {
				return SchedRow{}, err
			}
			return evalQuantum(lot), nil
		},
		func() (SchedRow, error) {
			wfq, err := sched.NewWFQ(7, 3)
			if err != nil {
				return SchedRow{}, err
			}
			return evalQuantum(wfq), nil
		},
		func() (SchedRow, error) { return schedStopCont(seed) },
	}
	return RunSamples(context.Background(), seed, len(mechanisms), workers,
		func(i int, _ uint64) (SchedRow, error) { return mechanisms[i]() })
}

// schedStopCont measures duty-cycle modulation on the fluid host model:
// two CPU-bound VMs, A capped at 70%, B at 30%, measuring A's achieved
// work share.
func schedStopCont(seed uint64) (SchedRow, error) {
	const target = schedTarget
	k := sim.NewKernel(seed)
	h, err := hostos.New(k, hw.ReferenceMachine("host"))
	if err != nil {
		return SchedRow{}, err
	}
	procA := h.Spawn("vm-a")
	procB := h.Spawn("vm-b")
	modA, err := sched.NewModulator(k, procA, target, 200*sim.Millisecond)
	if err != nil {
		return SchedRow{}, err
	}
	modB, err := sched.NewModulator(k, procB, 1-target, 200*sim.Millisecond)
	if err != nil {
		return SchedRow{}, err
	}
	modA.Start()
	modB.Start()
	trA := sim.NewWorkTracker(k, 1e9, nil)
	trB := sim.NewWorkTracker(k, 1e9, nil)
	procA.OnRate(trA.SetRate)
	procB.OnRate(trB.SetRate)
	procA.SetDemand(1)
	procB.SetDemand(1)

	// Sample A's share in 100×10ms windows for worst-window tracking.
	worst := 0.0
	var lastA, lastB float64
	sample := func() {}
	sample = func() {
		a, b := trA.Consumed(), trB.Consumed()
		da, db := a-lastA, b-lastB
		lastA, lastB = a, b
		if da+db > 0 {
			dev := da/(da+db) - target
			if dev < 0 {
				dev = -dev
			}
			if dev > worst {
				worst = dev
			}
		}
		if k.Now() < sim.Time(200*sim.Second) {
			k.After(sim.Second, sample)
		}
	}
	k.After(sim.Second, sample)
	_ = k.RunUntil(sim.Time(200 * sim.Second))
	total := trA.Consumed() + trB.Consumed()
	return SchedRow{
		Mechanism:   "stop/cont",
		ShareA:      trA.Consumed() / total,
		WorstWindow: worst,
	}, nil
}

// SchedTable renders ablation C.
func SchedTable(rows []SchedRow) *Table {
	t := &Table{
		Title:  "Ablation C: enforcing a 70/30 split between two VMs",
		Note:   "long-run share of client A (target 0.70) and worst short-window deviation",
		Header: []string{"mechanism", "share A", "worst window dev"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Mechanism, f3(r.ShareA), f3(r.WorstWindow)})
	}
	return t
}

// ---------------------------------------------------------------------
// Ablation D: migration vs restart (§3.1, §4)
// ---------------------------------------------------------------------

// MigrationRow compares moving a mid-flight computation.
type MigrationRow struct {
	Strategy string
	// TotalSec is submission-to-completion of a 600 s job interrupted
	// at 300 s.
	TotalSec float64
	// LostWork is CPU work discarded by the strategy.
	LostWork float64
}

// AblationMigration interrupts a long job halfway and compares finishing
// strategies: keep running (baseline), migrate the VM to a LAN peer,
// and kill + cold restart from scratch on the peer. The three strategies
// simulate independently (each builds its own grid from the shared
// experiment seed, a paired design) and fan out across workers
// goroutines.
func AblationMigration(seed uint64, workers int) ([]MigrationRow, error) {
	run := func(strategy string) (float64, float64, error) {
		g := core.NewGrid(seed)
		mk := func(cfg core.NodeConfig) error {
			_, err := g.AddNode(cfg)
			return err
		}
		if err := mk(core.NodeConfig{Name: "front", Site: "lan", Role: core.RoleFrontEnd}); err != nil {
			return 0, 0, err
		}
		if err := mk(core.NodeConfig{Name: "n1", Site: "lan", Role: core.RoleCompute, Slots: 1, DHCPPrefix: "10.0.1."}); err != nil {
			return 0, 0, err
		}
		if err := mk(core.NodeConfig{Name: "n2", Site: "lan", Role: core.RoleCompute, Slots: 1, DHCPPrefix: "10.0.2."}); err != nil {
			return 0, 0, err
		}
		if err := g.Net().BuildLAN("front", "n1", "n2"); err != nil {
			return 0, 0, err
		}
		img := storage.ImageInfo{Name: "rh72", OS: "rh72", DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB}
		if err := g.Node("n1").InstallImage(img); err != nil {
			return 0, 0, err
		}
		if err := g.Node("n2").InstallImage(img); err != nil {
			return 0, 0, err
		}

		const jobSeconds = 600
		var doneAt sim.Time = -1
		var lost float64
		_, err := g.CreateSession(core.SessionConfig{
			User: "bench", FrontEnd: "front", Image: "rh72", Site: "lan",
			Mode: vmm.WarmRestore, Disk: core.NonPersistent, Access: core.AccessLocal,
		}, func(s *core.Session, err error) {
			if err != nil {
				panic(err)
			}
			task := guest.MicroTask(jobSeconds)
			if err := s.Run(task, func(guest.TaskResult) { doneAt = g.Kernel().Now() }); err != nil {
				panic(err)
			}
			// Interrupt halfway through the job.
			g.Kernel().After(300*sim.Second, func() {
				switch strategy {
				case "keep":
					// nothing: baseline
				case "migrate":
					if err := s.Migrate("n2", func(err error) {
						if err != nil {
							panic(err)
						}
					}); err != nil {
						panic(err)
					}
				case "restart":
					progress := s.VM().Guest().UserSeconds()
					lost = 300 - 0 // approximate: all task progress is discarded
					_ = progress
					s.Shutdown()
					_, err := g.CreateSession(core.SessionConfig{
						User: "bench", FrontEnd: "front", Image: "rh72", Site: "lan",
						Mode: vmm.WarmRestore, Disk: core.NonPersistent, Access: core.AccessLocal,
					}, func(s2 *core.Session, err error) {
						if err != nil {
							panic(err)
						}
						if err := s2.Run(guest.MicroTask(jobSeconds), func(guest.TaskResult) {
							doneAt = g.Kernel().Now()
						}); err != nil {
							panic(err)
						}
					})
					if err != nil {
						panic(err)
					}
				}
			})
		})
		if err != nil {
			return 0, 0, err
		}
		_ = g.Kernel().RunUntil(sim.Time(6 * sim.Hour))
		if doneAt < 0 {
			return 0, 0, fmt.Errorf("experiments: %s never finished", strategy)
		}
		return doneAt.Seconds(), lost, nil
	}

	strategies := []string{"keep", "migrate", "restart"}
	return RunSamples(context.Background(), seed, len(strategies), workers,
		func(i int, _ uint64) (MigrationRow, error) {
			total, lost, err := run(strategies[i])
			if err != nil {
				return MigrationRow{}, err
			}
			return MigrationRow{Strategy: strategies[i], TotalSec: total, LostWork: lost}, nil
		})
}

// MigrationTable renders ablation D.
func MigrationTable(rows []MigrationRow) *Table {
	t := &Table{
		Title:  "Ablation D: interrupting a 600 s job at t=300 s",
		Note:   "migrate preserves guest state; restart discards it",
		Header: []string{"strategy", "total (s)", "lost work (s)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Strategy, f1(r.TotalSec), f1(r.LostWork)})
	}
	return t
}

// ---------------------------------------------------------------------
// Ablation E: load predictors for adaptation (§3.2)
// ---------------------------------------------------------------------

// PredictorRow is one (class, predictor) evaluation.
type PredictorRow struct {
	Load      trace.Class
	Predictor string
	MSE       float64
	MAE       float64
}

// AblationPredictors evaluates the RPS predictors one-step-ahead on the
// load classes. Each (class, predictor) pair evaluates independently —
// the sample closure regenerates its class's trace from the experiment
// seed — and fans out across workers goroutines.
func AblationPredictors(seed uint64, workers int) ([]PredictorRow, error) {
	classes := []trace.Class{trace.Light, trace.Heavy}
	const predictors = 3 // LAST, MEAN(500), AR(8)
	return RunSamples(context.Background(), seed, len(classes)*predictors, workers,
		func(i int, _ uint64) (PredictorRow, error) {
			class := classes[i/predictors]
			// The trace is paired per class (same data for all three
			// predictors), so it derives from the experiment seed.
			data := trace.Synthetic(class, sim.NewRNG(seed+uint64(class)), 6000).Loads
			const train = 2000
			var p rps.Predictor
			switch i % predictors {
			case 0:
				p = &rps.LastValue{}
			case 1:
				mm, err := rps.NewMovingMean(500)
				if err != nil {
					return PredictorRow{}, err
				}
				p = mm
			case 2:
				ar, err := rps.NewAR(8)
				if err != nil {
					return PredictorRow{}, err
				}
				p = ar
			}
			ev, err := rps.Evaluate(p, data, train)
			if err != nil {
				return PredictorRow{}, err
			}
			return PredictorRow{Load: class, Predictor: ev.Predictor, MSE: ev.MSE, MAE: ev.MAE}, nil
		})
}

// PredictorTable renders ablation E.
func PredictorTable(rows []PredictorRow) *Table {
	t := &Table{
		Title:  "Ablation E: one-step-ahead host load prediction (RPS)",
		Note:   "lower is better; AR exploits the strong autocorrelation of host load",
		Header: []string{"load", "predictor", "MSE", "MAE"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Load.String(), r.Predictor, f3(r.MSE), f3(r.MAE)})
	}
	return t
}
