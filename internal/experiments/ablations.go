package experiments

import (
	"fmt"

	"vmgrid/internal/core"
	"vmgrid/internal/guest"
	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/rps"
	"vmgrid/internal/sched"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/trace"
	"vmgrid/internal/vmm"
)

// ---------------------------------------------------------------------
// Ablation A: whole-file staging vs on-demand virtual file system (§3.1)
// ---------------------------------------------------------------------

// StagingRow compares time-to-useful-work for one working-set fraction.
type StagingRow struct {
	// WorkingSet is the fraction of the 2 GB image the task touches.
	WorkingSet float64
	// StagedSec and OnDemandSec are time from submission to task
	// completion for the two transfer models.
	StagedSec   float64
	OnDemandSec float64
}

// AblationStaging sweeps the task's working-set fraction and measures a
// short task end-to-end under whole-file staging vs on-demand transfer
// across a WAN. The paper's §3.1 argument: "transfer of entire VM
// states can lead to unnecessary traffic due to the copying of unused
// data", so on-demand wins until the working set approaches the image.
func AblationStaging(seed uint64) ([]StagingRow, error) {
	var rows []StagingRow
	for _, ws := range []float64{0.01, 0.05, 0.10, 0.25, 0.50, 1.0} {
		staged, err := stagingRun(seed, core.AccessStaged, ws)
		if err != nil {
			return nil, fmt.Errorf("staging ws=%v staged: %w", ws, err)
		}
		onDemand, err := stagingRun(seed, core.AccessOnDemand, ws)
		if err != nil {
			return nil, fmt.Errorf("staging ws=%v on-demand: %w", ws, err)
		}
		rows = append(rows, StagingRow{WorkingSet: ws, StagedSec: staged, OnDemandSec: onDemand})
	}
	return rows, nil
}

func stagingRun(seed uint64, access core.ImageAccess, workingSet float64) (float64, error) {
	g := core.NewGrid(seed)
	if _, err := g.AddNode(core.NodeConfig{Name: "front", Site: "a", Role: core.RoleFrontEnd}); err != nil {
		return 0, err
	}
	if _, err := g.AddNode(core.NodeConfig{Name: "compute", Site: "a", Role: core.RoleCompute,
		Slots: 1, DHCPPrefix: "10.0.0."}); err != nil {
		return 0, err
	}
	if _, err := g.AddNode(core.NodeConfig{Name: "images", Site: "b", Role: core.RoleImageServer}); err != nil {
		return 0, err
	}
	if err := g.Net().BuildLAN("front", "compute"); err != nil {
		return 0, err
	}
	if err := g.Net().ConnectWAN("compute", "images"); err != nil {
		return 0, err
	}
	if err := g.Net().ConnectWAN("front", "images"); err != nil {
		return 0, err
	}
	const diskBytes = 2 * hw.GB
	img := storage.ImageInfo{Name: "rh72", OS: "rh72", DiskBytes: diskBytes, MemBytes: 128 * hw.MB}
	if err := g.Node("images").InstallImage(img); err != nil {
		return 0, err
	}

	var finishedAt sim.Time = -1
	_, err := g.NewSession(core.SessionConfig{
		User: "bench", FrontEnd: "front", Image: "rh72",
		Mode: vmm.WarmRestore, Disk: core.NonPersistent, Access: access,
	}, func(s *core.Session, err error) {
		if err != nil {
			return
		}
		// The task touches workingSet of the image through the root
		// mount, with a little compute in between.
		touched := int64(float64(diskBytes) * workingSet)
		reads := int(touched / (256 << 10))
		if reads < 1 {
			reads = 1
		}
		w := guest.Workload{
			Name:       "touch",
			CPUSeconds: 60,
			RootOps:    reads,
			RootBytes:  touched,
		}
		if err := s.Run(w, func(guest.TaskResult) { finishedAt = g.Kernel().Now() }); err != nil {
			panic(err) // setup bug
		}
	})
	if err != nil {
		return 0, err
	}
	_ = g.Kernel().RunUntil(sim.Time(6 * sim.Hour))
	if finishedAt < 0 {
		return 0, fmt.Errorf("experiments: staging run never finished")
	}
	return finishedAt.Seconds(), nil
}

// StagingTable renders ablation A.
func StagingTable(rows []StagingRow) *Table {
	t := &Table{
		Title:  "Ablation A: whole-file staging vs on-demand VFS (2 GB image over WAN)",
		Note:   "time from submission to completion of a 60 s task touching the given fraction",
		Header: []string{"working set", "staged (s)", "on-demand (s)", "winner"},
	}
	for _, r := range rows {
		winner := "on-demand"
		if r.StagedSec < r.OnDemandSec {
			winner = "staged"
		}
		t.Rows = append(t.Rows, []string{
			pct(r.WorkingSet), f1(r.StagedSec), f1(r.OnDemandSec), winner,
		})
	}
	return t
}

// ---------------------------------------------------------------------
// Ablation B: read-only image sharing through the host cache (§3.1)
// ---------------------------------------------------------------------

// CacheRow is the boot cost of the i-th VM sharing one base image.
type CacheRow struct {
	Instance  int
	BootSec   float64
	DiskReads uint64 // device requests during this boot
}

// AblationProxyCache boots N VMs one after another from the same master
// image on one host. Later boots hit the shared buffer cache, the
// mechanism behind "a master static Linux virtual system disk shared by
// multiple dynamic instances".
func AblationProxyCache(seed uint64, instances int) ([]CacheRow, error) {
	if instances <= 0 {
		instances = 4
	}
	k := sim.NewKernel(seed)
	h, err := hostos.New(k, hw.ReferenceMachine("host"))
	if err != nil {
		return nil, err
	}
	store := storage.NewStore(h)
	img := storage.ImageInfo{Name: "rh72", OS: "rh72", DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB}
	if err := storage.InstallImage(store, img); err != nil {
		return nil, err
	}

	var rows []CacheRow
	var bootNext func(i int)
	var fail error
	bootNext = func(i int) {
		if i >= instances {
			return
		}
		base, err := store.Open(img.DiskFile())
		if err != nil {
			fail = err
			return
		}
		diff, err := store.OpenOrCreate(fmt.Sprintf("vm%d.cow", i))
		if err != nil {
			fail = err
			return
		}
		vm, err := vmm.New(h, vmm.Config{
			Name:     fmt.Sprintf("vm%d", i),
			MemBytes: 128 * hw.MB,
			Disk:     storage.NewCowDisk(base, diff),
		})
		if err != nil {
			fail = err
			return
		}
		start := k.Now()
		reqBefore := h.Disk().Requests()
		if err := vm.Start(vmm.ColdBoot, func(err error) {
			if err != nil {
				fail = err
				return
			}
			rows = append(rows, CacheRow{
				Instance:  i + 1,
				BootSec:   k.Now().Sub(start).Seconds(),
				DiskReads: h.Disk().Requests() - reqBefore,
			})
			// Power off so the next boot measures I/O, not CPU sharing.
			vm.PowerOff()
			bootNext(i + 1)
		}); err != nil {
			fail = err
		}
	}
	bootNext(0)
	_ = k.RunUntil(sim.Time(2 * sim.Hour))
	if fail != nil {
		return nil, fail
	}
	if len(rows) != instances {
		return nil, fmt.Errorf("experiments: only %d/%d boots completed", len(rows), instances)
	}
	return rows, nil
}

// CacheTable renders ablation B.
func CacheTable(rows []CacheRow) *Table {
	t := &Table{
		Title:  "Ablation B: sequential VM boots sharing one master image",
		Note:   "later instances hit the host buffer cache for base-image blocks",
		Header: []string{"instance", "boot (s)", "device reads"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Instance), f1(r.BootSec), fmt.Sprintf("%d", r.DiskReads),
		})
	}
	return t
}

// ---------------------------------------------------------------------
// Ablation C: resource-control mechanisms (§3.2)
// ---------------------------------------------------------------------

// SchedRow reports how one mechanism enforced a 70/30 split.
type SchedRow struct {
	Mechanism string
	// ShareA is the long-run share client A achieved (target 0.7).
	ShareA float64
	// WorstWindow is the largest deviation of A's share from target in
	// any 100-quantum window (short-term fairness).
	WorstWindow float64
}

// AblationScheduling compares lottery scheduling, weighted fair
// queueing, and SIGSTOP/SIGCONT duty-cycling at enforcing a 70/30 CPU
// split between two competing VMs.
func AblationScheduling(seed uint64) ([]SchedRow, error) {
	const (
		quanta = 20000
		window = 100
		target = 0.7
	)
	evalQuantum := func(s sched.QuantumScheduler) SchedRow {
		countA := 0
		worst := 0.0
		winA := 0
		for q := 1; q <= quanta; q++ {
			if s.Next() == 0 {
				countA++
				winA++
			}
			if q%window == 0 {
				dev := float64(winA)/window - target
				if dev < 0 {
					dev = -dev
				}
				if dev > worst {
					worst = dev
				}
				winA = 0
			}
		}
		return SchedRow{
			Mechanism:   s.Name(),
			ShareA:      float64(countA) / quanta,
			WorstWindow: worst,
		}
	}

	lot, err := sched.NewLottery(sim.NewRNG(seed), 7, 3)
	if err != nil {
		return nil, err
	}
	wfq, err := sched.NewWFQ(7, 3)
	if err != nil {
		return nil, err
	}
	rows := []SchedRow{evalQuantum(lot), evalQuantum(wfq)}

	// Duty-cycle modulation on the fluid host model: two CPU-bound VMs,
	// A capped at 70%, B at 30%, measuring A's achieved work share.
	k := sim.NewKernel(seed)
	h, err := hostos.New(k, hw.ReferenceMachine("host"))
	if err != nil {
		return nil, err
	}
	procA := h.Spawn("vm-a")
	procB := h.Spawn("vm-b")
	modA, err := sched.NewModulator(k, procA, target, 200*sim.Millisecond)
	if err != nil {
		return nil, err
	}
	modB, err := sched.NewModulator(k, procB, 1-target, 200*sim.Millisecond)
	if err != nil {
		return nil, err
	}
	modA.Start()
	modB.Start()
	trA := sim.NewWorkTracker(k, 1e9, nil)
	trB := sim.NewWorkTracker(k, 1e9, nil)
	procA.OnRate(trA.SetRate)
	procB.OnRate(trB.SetRate)
	procA.SetDemand(1)
	procB.SetDemand(1)

	// Sample A's share in 100×10ms windows for worst-window tracking.
	worst := 0.0
	var lastA, lastB float64
	sample := func() {}
	sample = func() {
		a, b := trA.Consumed(), trB.Consumed()
		da, db := a-lastA, b-lastB
		lastA, lastB = a, b
		if da+db > 0 {
			dev := da/(da+db) - target
			if dev < 0 {
				dev = -dev
			}
			if dev > worst {
				worst = dev
			}
		}
		if k.Now() < sim.Time(200*sim.Second) {
			k.After(sim.Second, sample)
		}
	}
	k.After(sim.Second, sample)
	_ = k.RunUntil(sim.Time(200 * sim.Second))
	total := trA.Consumed() + trB.Consumed()
	rows = append(rows, SchedRow{
		Mechanism:   "stop/cont",
		ShareA:      trA.Consumed() / total,
		WorstWindow: worst,
	})
	return rows, nil
}

// SchedTable renders ablation C.
func SchedTable(rows []SchedRow) *Table {
	t := &Table{
		Title:  "Ablation C: enforcing a 70/30 split between two VMs",
		Note:   "long-run share of client A (target 0.70) and worst short-window deviation",
		Header: []string{"mechanism", "share A", "worst window dev"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Mechanism, f3(r.ShareA), f3(r.WorstWindow)})
	}
	return t
}

// ---------------------------------------------------------------------
// Ablation D: migration vs restart (§3.1, §4)
// ---------------------------------------------------------------------

// MigrationRow compares moving a mid-flight computation.
type MigrationRow struct {
	Strategy string
	// TotalSec is submission-to-completion of a 600 s job interrupted
	// at 300 s.
	TotalSec float64
	// LostWork is CPU work discarded by the strategy.
	LostWork float64
}

// AblationMigration interrupts a long job halfway and compares finishing
// strategies: keep running (baseline), migrate the VM to a LAN peer,
// and kill + cold restart from scratch on the peer.
func AblationMigration(seed uint64) ([]MigrationRow, error) {
	run := func(strategy string) (float64, float64, error) {
		g := core.NewGrid(seed)
		mk := func(cfg core.NodeConfig) error {
			_, err := g.AddNode(cfg)
			return err
		}
		if err := mk(core.NodeConfig{Name: "front", Site: "lan", Role: core.RoleFrontEnd}); err != nil {
			return 0, 0, err
		}
		if err := mk(core.NodeConfig{Name: "n1", Site: "lan", Role: core.RoleCompute, Slots: 1, DHCPPrefix: "10.0.1."}); err != nil {
			return 0, 0, err
		}
		if err := mk(core.NodeConfig{Name: "n2", Site: "lan", Role: core.RoleCompute, Slots: 1, DHCPPrefix: "10.0.2."}); err != nil {
			return 0, 0, err
		}
		if err := g.Net().BuildLAN("front", "n1", "n2"); err != nil {
			return 0, 0, err
		}
		img := storage.ImageInfo{Name: "rh72", OS: "rh72", DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB}
		if err := g.Node("n1").InstallImage(img); err != nil {
			return 0, 0, err
		}
		if err := g.Node("n2").InstallImage(img); err != nil {
			return 0, 0, err
		}

		const jobSeconds = 600
		var doneAt sim.Time = -1
		var lost float64
		_, err := g.NewSession(core.SessionConfig{
			User: "bench", FrontEnd: "front", Image: "rh72", Site: "lan",
			Mode: vmm.WarmRestore, Disk: core.NonPersistent, Access: core.AccessLocal,
		}, func(s *core.Session, err error) {
			if err != nil {
				panic(err)
			}
			task := guest.MicroTask(jobSeconds)
			if err := s.Run(task, func(guest.TaskResult) { doneAt = g.Kernel().Now() }); err != nil {
				panic(err)
			}
			// Interrupt halfway through the job.
			g.Kernel().After(300*sim.Second, func() {
				switch strategy {
				case "keep":
					// nothing: baseline
				case "migrate":
					if err := s.Migrate("n2", func(err error) {
						if err != nil {
							panic(err)
						}
					}); err != nil {
						panic(err)
					}
				case "restart":
					progress := s.VM().Guest().UserSeconds()
					lost = 300 - 0 // approximate: all task progress is discarded
					_ = progress
					s.Shutdown()
					_, err := g.NewSession(core.SessionConfig{
						User: "bench", FrontEnd: "front", Image: "rh72", Site: "lan",
						Mode: vmm.WarmRestore, Disk: core.NonPersistent, Access: core.AccessLocal,
					}, func(s2 *core.Session, err error) {
						if err != nil {
							panic(err)
						}
						if err := s2.Run(guest.MicroTask(jobSeconds), func(guest.TaskResult) {
							doneAt = g.Kernel().Now()
						}); err != nil {
							panic(err)
						}
					})
					if err != nil {
						panic(err)
					}
				}
			})
		})
		if err != nil {
			return 0, 0, err
		}
		_ = g.Kernel().RunUntil(sim.Time(6 * sim.Hour))
		if doneAt < 0 {
			return 0, 0, fmt.Errorf("experiments: %s never finished", strategy)
		}
		return doneAt.Seconds(), lost, nil
	}

	var rows []MigrationRow
	for _, strategy := range []string{"keep", "migrate", "restart"} {
		total, lost, err := run(strategy)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MigrationRow{Strategy: strategy, TotalSec: total, LostWork: lost})
	}
	return rows, nil
}

// MigrationTable renders ablation D.
func MigrationTable(rows []MigrationRow) *Table {
	t := &Table{
		Title:  "Ablation D: interrupting a 600 s job at t=300 s",
		Note:   "migrate preserves guest state; restart discards it",
		Header: []string{"strategy", "total (s)", "lost work (s)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Strategy, f1(r.TotalSec), f1(r.LostWork)})
	}
	return t
}

// ---------------------------------------------------------------------
// Ablation E: load predictors for adaptation (§3.2)
// ---------------------------------------------------------------------

// PredictorRow is one (class, predictor) evaluation.
type PredictorRow struct {
	Load      trace.Class
	Predictor string
	MSE       float64
	MAE       float64
}

// AblationPredictors evaluates the RPS predictors one-step-ahead on the
// three load classes.
func AblationPredictors(seed uint64) ([]PredictorRow, error) {
	var rows []PredictorRow
	for _, class := range []trace.Class{trace.Light, trace.Heavy} {
		data := trace.Synthetic(class, sim.NewRNG(seed+uint64(class)), 6000).Loads
		const train = 2000
		mm, err := rps.NewMovingMean(500)
		if err != nil {
			return nil, err
		}
		ar, err := rps.NewAR(8)
		if err != nil {
			return nil, err
		}
		for _, p := range []rps.Predictor{&rps.LastValue{}, mm, ar} {
			ev, err := rps.Evaluate(p, data, train)
			if err != nil {
				return nil, err
			}
			rows = append(rows, PredictorRow{
				Load: class, Predictor: ev.Predictor, MSE: ev.MSE, MAE: ev.MAE,
			})
		}
	}
	return rows, nil
}

// PredictorTable renders ablation E.
func PredictorTable(rows []PredictorRow) *Table {
	t := &Table{
		Title:  "Ablation E: one-step-ahead host load prediction (RPS)",
		Note:   "lower is better; AR exploits the strong autocorrelation of host load",
		Header: []string{"load", "predictor", "MSE", "MAE"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Load.String(), r.Predictor, f3(r.MSE), f3(r.MAE)})
	}
	return t
}
