package vfs

import (
	"fmt"
	"testing"

	"vmgrid/internal/sim"
)

func TestWriteBackAcksBeforeServer(t *testing.T) {
	w := newWorld(t, true) // WAN: server ack takes ≥ 28 ms
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	c, _ := NewClient(w.k, tr, WANConfig())
	f := c.Open("out", 0)
	var ackAt sim.Time = -1
	f.Write(0, 64<<10, func() { ackAt = w.k.Now() })
	_ = w.k.RunUntil(sim.Time(5 * sim.Millisecond))
	if ackAt < 0 {
		t.Fatal("buffered write not acknowledged promptly")
	}
	if c.DirtyBytes() == 0 {
		t.Fatal("no dirty data while the RPC is in flight")
	}
	w.k.Run()
	if c.DirtyBytes() != 0 {
		t.Errorf("dirty = %d after drain", c.DirtyBytes())
	}
	if !w.sstore.Has("out") {
		t.Error("write never reached the server")
	}
}

func TestWriteBackThrottlesBeyondMaxDirty(t *testing.T) {
	w := newWorld(t, true)
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	cfg := WANConfig()
	cfg.MaxDirty = 256 << 10
	c, _ := NewClient(w.k, tr, cfg)
	f := c.Open("out", 0)

	acks := 0
	for i := 0; i < 8; i++ {
		f.Write(int64(i)*(128<<10), 128<<10, func() { acks++ })
	}
	_ = w.k.RunUntil(sim.Time(2 * sim.Millisecond))
	if acks >= 8 {
		t.Fatalf("all %d writes acked instantly despite a 256 KB bound", acks)
	}
	w.k.Run()
	if acks != 8 {
		t.Fatalf("only %d/8 writes ever acked", acks)
	}
}

func TestFlushWaitsForDrain(t *testing.T) {
	w := newWorld(t, true)
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	c, _ := NewClient(w.k, tr, WANConfig())
	f := c.Open("out", 0)
	f.Write(0, 1<<20, nil)
	var flushAt sim.Time = -1
	c.Flush(func() { flushAt = w.k.Now() })
	_ = w.k.RunUntil(sim.Time(5 * sim.Millisecond))
	if flushAt >= 0 {
		t.Fatal("flush completed with dirty data outstanding")
	}
	w.k.Run()
	if flushAt < 0 {
		t.Fatal("flush never completed")
	}
	// A clean flush completes immediately.
	immediate := false
	c.Flush(func() { immediate = true })
	w.k.Run()
	if !immediate {
		t.Error("clean flush did not complete")
	}
	c.Flush(nil) // nil callback is a no-op
}

func TestWriteThroughWhenWriteBackDisabled(t *testing.T) {
	w := newWorld(t, true)
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	cfg := WANConfig()
	cfg.WriteBack = false
	c, _ := NewClient(w.k, tr, cfg)
	f := c.Open("out", 0)
	var ackAt sim.Time = -1
	f.Write(0, 64<<10, func() { ackAt = w.k.Now() })
	w.k.Run()
	if ackAt < sim.Time(28*sim.Millisecond) {
		t.Errorf("write-through acked at %v, before the WAN round trip", ackAt)
	}
	if c.DirtyBytes() != 0 {
		t.Error("write-through left dirty bytes")
	}
}

func TestWriteBackConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := LANConfig()
	cfg.MaxDirty = -1
	if _, err := NewClient(k, nil, cfg); err == nil {
		t.Error("negative MaxDirty accepted")
	}
	cfg = LANConfig()
	cfg.MaxDirty = 0 // default kicks in
	c, err := NewClient(k, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.MaxDirty == 0 {
		t.Error("MaxDirty default not applied")
	}
}

// TestFenceRejectsWrites: a tripped fence fails write RPCs —
// write-back drains included — without touching the transport, while
// reads keep flowing (a superseded incarnation may still page in, it
// just may not mutate shared state).
func TestFenceRejectsWrites(t *testing.T) {
	w := newWorld(t, false)
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	cfg := LANConfig()
	fenced := false
	fenceErr := fmt.Errorf("fenced epoch")
	cfg.Fence = func() error {
		if fenced {
			return fenceErr
		}
		return nil
	}
	c, err := NewClient(w.k, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := c.Open("data", 1<<20)

	// Open fence: writes drain to the server.
	f.Write(0, 64<<10, nil)
	w.k.Run()
	if !w.sstore.Has("data") {
		t.Fatal("write with open fence never reached the server")
	}
	before := c.TransportErrors()

	// Tripped fence: the drain is rejected locally.
	fenced = true
	acked := false
	f.Write(64<<10, 64<<10, func() { acked = true })
	w.k.Run()
	if !acked {
		t.Fatal("write-back ack must still fire (buffering is local)")
	}
	if c.DirtyBytes() != 0 {
		t.Errorf("dirty = %d, want drained (rejected) after fence trip", c.DirtyBytes())
	}
	if c.TransportErrors() != before+1 {
		t.Errorf("transport errors = %d, want %d (the fenced drain)", c.TransportErrors(), before+1)
	}

	// Reads are unaffected.
	readDone := false
	f.Read(0, 4<<10, func() { readDone = true })
	w.k.Run()
	if !readDone {
		t.Error("read blocked by a write fence")
	}
}
