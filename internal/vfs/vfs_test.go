package vfs

import (
	"testing"

	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/netsim"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
)

type world struct {
	k       *sim.Kernel
	net     *netsim.Network
	server  *Server
	sstore  *storage.Store
	cluster []*hostos.Host
}

func newWorld(t testing.TB, wan bool) *world {
	t.Helper()
	k := sim.NewKernel(1)
	n := netsim.New(k)
	srvHost, err := hostos.New(k, hw.ReferenceMachine("server"))
	if err != nil {
		t.Fatal(err)
	}
	cliHost, err := hostos.New(k, hw.ReferenceMachine("client"))
	if err != nil {
		t.Fatal(err)
	}
	n.AddNode("server")
	n.AddNode("client")
	if wan {
		if err := n.ConnectWAN("client", "server"); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := n.ConnectLAN("client", "server"); err != nil {
			t.Fatal(err)
		}
	}
	store := storage.NewStore(srvHost)
	if err := store.Create("data", 1<<30); err != nil {
		t.Fatal(err)
	}
	return &world{
		k:       k,
		net:     n,
		server:  NewServer(store),
		sstore:  store,
		cluster: []*hostos.Host{srvHost, cliHost},
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{LoopbackNFSConfig(), LANConfig(), WANConfig()} {
		if err := cfg.validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
	k := sim.NewKernel(1)
	bad := []Config{
		{Rsize: 0, Prefetch: 0},
		{Rsize: 16, Prefetch: 8},
		{Rsize: 16, Prefetch: 16, CacheBytes: -1},
	}
	for _, cfg := range bad {
		if _, err := NewClient(k, nil, cfg); err == nil {
			t.Errorf("NewClient accepted %+v", cfg)
		}
	}
}

func TestRemoteReadOverLAN(t *testing.T) {
	w := newWorld(t, false)
	tr, err := NewNetTransport(w.net, "client", "server", w.server)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(w.k, tr, LANConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := c.Open("data", 1<<30)
	var doneAt sim.Time = -1
	f.Read(0, 64<<10, func() { doneAt = w.k.Now() })
	w.k.Run()
	if doneAt < 0 {
		t.Fatal("read never completed")
	}
	// One round trip + server disk: comfortably under 100 ms on a LAN,
	// but well above the sub-millisecond cache-hit time.
	if doneAt > sim.Time(100*sim.Millisecond) || doneAt < sim.Time(sim.Millisecond) {
		t.Errorf("LAN read took %v", doneAt)
	}
	if c.RemoteOps() == 0 || c.Misses() == 0 {
		t.Error("no remote activity recorded")
	}
}

func TestCacheHitOnSecondRead(t *testing.T) {
	w := newWorld(t, false)
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	c, _ := NewClient(w.k, tr, LANConfig())
	f := c.Open("data", 1<<30)
	f.Read(0, 64<<10, nil)
	w.k.Run()
	opsBefore := c.RemoteOps()
	var start = w.k.Now()
	var doneAt sim.Time
	f.Read(0, 64<<10, func() { doneAt = w.k.Now() })
	w.k.Run()
	if c.RemoteOps() != opsBefore {
		t.Error("cached read went remote")
	}
	// A hit pays only the per-op client cost, never a round trip.
	if doneAt.Sub(start) > 2*sim.Millisecond {
		t.Errorf("cached read took %v", doneAt.Sub(start))
	}
	if c.Hits() == 0 {
		t.Error("no hits recorded")
	}
}

func TestPrefetchReducesRoundTrips(t *testing.T) {
	// Sequential small reads with a 192 KB prefetch window must issue
	// roughly size/window RPCs, not size/rsize.
	w := newWorld(t, true)
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	c, _ := NewClient(w.k, tr, WANConfig())
	f := c.Open("data", 1<<30)

	const total = 4 << 20
	const per = 8 << 10
	var issue func(off int64)
	done := false
	issue = func(off int64) {
		if off >= total {
			done = true
			return
		}
		f.Read(off, per, func() { issue(off + per) })
	}
	issue(0)
	w.k.Run()
	if !done {
		t.Fatal("sequential scan never finished")
	}
	wantOps := uint64(total / (192 << 10))
	if ops := c.RemoteOps(); ops < wantOps || ops > wantOps*2 {
		t.Errorf("RemoteOps = %d for 4 MB scan, want ~%d (prefetch)", ops, wantOps)
	}
}

func TestZeroCacheClientRefetches(t *testing.T) {
	w := newWorld(t, false)
	tr := NewLoopbackTransport(w.k, w.server)
	c, _ := NewClient(w.k, tr, Config{Rsize: 16 << 10, Prefetch: 16 << 10, CacheBytes: 0})
	f := c.Open("data", 1<<30)
	f.Read(0, 16<<10, nil)
	w.k.Run()
	ops := c.RemoteOps()
	f.Read(0, 16<<10, nil)
	w.k.Run()
	if c.RemoteOps() == ops {
		t.Error("client cached despite CacheBytes=0")
	}
}

func TestLoopbackCacheIsSmallAndBounded(t *testing.T) {
	// The loopback preset models a kernel NFS client: a small page
	// cache with readahead, far below the proxy presets.
	cfg := LoopbackNFSConfig()
	if cfg.CacheBytes <= 0 || cfg.CacheBytes >= LANConfig().CacheBytes {
		t.Errorf("loopback cache %d not a small bounded window", cfg.CacheBytes)
	}
	if cfg.PerOpCost != 0 {
		t.Error("loopback must not double-charge a proxy per-op cost")
	}
}

func TestLoopbackLatencyDominatedByStack(t *testing.T) {
	w := newWorld(t, false)
	tr := NewLoopbackTransport(w.k, w.server)
	c, _ := NewClient(w.k, tr, LoopbackNFSConfig())
	f := c.Open("data", 1<<30)
	var doneAt sim.Time
	f.Read(0, 16<<10, func() { doneAt = w.k.Now() })
	w.k.Run()
	// 2×1 ms stack + server processing + one page fetch: ~2-12 ms.
	if doneAt < sim.Time(2*sim.Millisecond) || doneAt > sim.Time(15*sim.Millisecond) {
		t.Errorf("loopback RPC took %v", doneAt)
	}
}

func TestWANReadPaysRoundTrip(t *testing.T) {
	w := newWorld(t, true)
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	c, _ := NewClient(w.k, tr, WANConfig())
	f := c.Open("data", 1<<30)
	var doneAt sim.Time
	f.Read(0, 8<<10, func() { doneAt = w.k.Now() })
	w.k.Run()
	if doneAt < sim.Time(28*sim.Millisecond) {
		t.Errorf("WAN read took %v, must pay the ~28 ms RTT", doneAt)
	}
}

func TestUnknownFileStillCompletes(t *testing.T) {
	w := newWorld(t, false)
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	c, _ := NewClient(w.k, tr, LANConfig())
	f := c.Open("ghost", 1<<20)
	completed := false
	f.Read(0, 4096, func() { completed = true })
	w.k.Run()
	if !completed {
		t.Error("read of unknown file hung instead of completing")
	}
}

func TestRemoteWriteThrough(t *testing.T) {
	w := newWorld(t, false)
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	c, _ := NewClient(w.k, tr, LANConfig())
	f := c.Open("scratch", 0)
	var doneAt sim.Time = -1
	f.Write(0, 128<<10, func() { doneAt = w.k.Now() })
	w.k.Run()
	if doneAt < 0 {
		t.Fatal("write never acked")
	}
	if !w.sstore.Has("scratch") {
		t.Error("write did not create the file server-side")
	}
	if f.Size() != 128<<10 {
		t.Errorf("client size = %d", f.Size())
	}
	// Written blocks are resident: an immediate read-back stays local.
	ops := c.RemoteOps()
	f.Read(0, 128<<10, nil)
	w.k.Run()
	if c.RemoteOps() != ops {
		t.Error("read-after-write went remote")
	}
}

func TestClientSerializesRPCs(t *testing.T) {
	w := newWorld(t, false)
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	c, _ := NewClient(w.k, tr, Config{Rsize: 32 << 10, Prefetch: 32 << 10, CacheBytes: 1 << 20})
	f := c.Open("data", 1<<30)
	var t1, t2 sim.Time
	f.Read(0, 32<<10, func() { t1 = w.k.Now() })
	f.Read(10<<20, 32<<10, func() { t2 = w.k.Now() })
	w.k.Run()
	if t2 <= t1 {
		t.Errorf("second RPC (%v) did not serialize after first (%v)", t2, t1)
	}
}

func TestCacheEvictionBounded(t *testing.T) {
	w := newWorld(t, false)
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	cfg := Config{Rsize: 32 << 10, Prefetch: 32 << 10, CacheBytes: 128 << 10} // 4 blocks
	c, _ := NewClient(w.k, tr, cfg)
	f := c.Open("data", 1<<30)
	for i := int64(0); i < 16; i++ {
		f.Read(i*(32<<10), 32<<10, nil)
	}
	w.k.Run()
	// Re-reading the first block must be a miss again.
	ops := c.RemoteOps()
	f.Read(0, 32<<10, nil)
	w.k.Run()
	if c.RemoteOps() == ops {
		t.Error("evicted block served from cache")
	}
}

func TestNetTransportUnknownNode(t *testing.T) {
	w := newWorld(t, false)
	if _, err := NewNetTransport(w.net, "client", "nowhere", w.server); err == nil {
		t.Error("transport to unknown node accepted")
	}
}
