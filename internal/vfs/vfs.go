// Package vfs implements the grid virtual file system of the paper's
// data-management layer (the PUNCH virtual file system, PVFS): an
// NFS-style block protocol between per-session client proxies and file
// servers, with client-side caching and prefetching. It is what lets a
// VM's state live on an image server in one administrative domain while
// the VM runs in another — on-demand block transfer instead of
// whole-file staging.
//
// Three transports cover the paper's configurations:
//
//   - NetTransport over a LAN (data sessions between VMs, Figure 2)
//   - NetTransport over a WAN (image sessions across universities, Table 1)
//   - LoopbackTransport (Table 2's "LoopbackNFS" rows: an NFS mount of
//     the local host, exercising the RPC stack without a wire)
package vfs

import (
	"errors"
	"fmt"

	"vmgrid/internal/netsim"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
)

// ErrUnknownFile is returned (asynchronously) for reads of files the
// server does not export.
var ErrUnknownFile = errors.New("vfs: unknown file")

// rpcHeaderBytes approximates the on-wire size of request/response
// framing (RPC + NFS + TCP headers).
const rpcHeaderBytes = 160

// Server exports a store's files to clients. Request dispatch is pooled:
// each RPC runs through a freelisted srvOp whose stage callbacks are
// bound once, and file handles are cached per name, so serving a
// steady-state read performs no allocations.
type Server struct {
	store *storage.Store
	// procCost is the server-side CPU cost of fielding one RPC.
	procCost sim.Duration
	ops      uint64

	handles map[string]*storage.LocalFile
	freeOps *srvOp
}

// NewServer exports all files of store.
func NewServer(store *storage.Store) *Server {
	return &Server{
		store:    store,
		procCost: 150 * sim.Microsecond,
		handles:  make(map[string]*storage.LocalFile),
	}
}

// Store returns the exported store.
func (s *Server) Store() *storage.Store { return s.store }

// Ops returns the number of RPCs served.
func (s *Server) Ops() uint64 { return s.ops }

// openCached returns a (possibly cached) handle for an exported file.
// The existence check runs on every call, so a cached handle never
// outlives a Delete; a handle cached before a Delete/re-Create pair is
// still valid because LocalFile resolves its size through the store.
func (s *Server) openCached(file string) (*storage.LocalFile, error) {
	if f, ok := s.handles[file]; ok && s.store.Has(file) {
		return f, nil
	}
	f, err := s.store.Open(file)
	if err != nil {
		return nil, err
	}
	s.handles[file] = f
	return f, nil
}

// srvOp is one in-flight RPC on the server, pooled on a freelist with
// its stage callbacks bound at allocation.
type srvOp struct {
	s         *Server
	f         *storage.LocalFile
	off, size int64
	write     bool
	respond   func(error)
	err       error

	procFn   func() // after procCost: issue the storage op
	ioDoneFn func() // storage op complete: respond(nil)
	failFn   func() // after procCost on a lookup error: respond(err)
	nextFree *srvOp
}

func (s *Server) getOp() *srvOp {
	op := s.freeOps
	if op == nil {
		op = &srvOp{s: s}
		op.procFn = op.proc
		op.ioDoneFn = op.ioDone
		op.failFn = op.fail
		return op
	}
	s.freeOps = op.nextFree
	op.nextFree = nil
	return op
}

func (s *Server) putOp(op *srvOp) {
	op.f = nil
	op.off, op.size = 0, 0
	op.write = false
	op.respond = nil
	op.err = nil
	op.nextFree = s.freeOps
	s.freeOps = op
}

func (op *srvOp) proc() {
	if op.write {
		op.f.Write(op.off, op.size, op.ioDoneFn)
		return
	}
	op.f.Read(op.off, op.size, op.ioDoneFn)
}

func (op *srvOp) ioDone() {
	respond := op.respond
	op.s.putOp(op)
	respond(nil)
}

func (op *srvOp) fail() {
	respond, err := op.respond, op.err
	op.s.putOp(op)
	respond(err)
}

// handleRead services one read RPC: check the export, fetch the range
// from the server's disk (sequential, as the kernel readahead would),
// and respond.
func (s *Server) handleRead(file string, off, size int64, respond func(err error)) {
	s.ops++
	k := s.store.Host().Kernel()
	op := s.getOp()
	op.off, op.size, op.respond = off, size, respond
	f, err := s.openCached(file)
	if err != nil {
		op.err = fmt.Errorf("%w: %s", ErrUnknownFile, file)
		k.After(s.procCost, op.failFn)
		return
	}
	op.f = f
	k.After(s.procCost, op.procFn)
}

// handleWrite services one write RPC.
func (s *Server) handleWrite(file string, off, size int64, respond func(err error)) {
	s.ops++
	k := s.store.Host().Kernel()
	op := s.getOp()
	op.off, op.size, op.respond = off, size, respond
	op.write = true
	f, err := s.openOrCreateCached(file)
	if err != nil {
		op.err = err
		k.After(s.procCost, op.failFn)
		return
	}
	op.f = f
	k.After(s.procCost, op.procFn)
}

// openOrCreateCached is openCached for the write path, creating the
// file on first reference as OpenOrCreate did.
func (s *Server) openOrCreateCached(file string) (*storage.LocalFile, error) {
	if f, ok := s.handles[file]; ok && s.store.Has(file) {
		return f, nil
	}
	f, err := s.store.OpenOrCreate(file)
	if err != nil {
		return nil, err
	}
	s.handles[file] = f
	return f, nil
}

// Transport carries RPCs from a client proxy to a server.
type Transport interface {
	// Read requests [off, off+size) of file; done receives the server's
	// error (nil on success) once the data has arrived back.
	Read(file string, off, size int64, done func(error))
	// Write sends [off, off+size) of file; done receives the ack.
	Write(file string, off, size int64, done func(error))
}

// NetTransport carries RPCs across a simulated network. In-flight RPCs
// are pooled netCall structs: request delivery, server dispatch, and
// reply delivery all run through callbacks bound once per pooled call.
type NetTransport struct {
	net    *netsim.Network
	client string
	server string
	srv    *Server

	freeCalls *netCall
}

var _ Transport = (*NetTransport)(nil)

// NewNetTransport connects a client node to a server node. Both names
// must exist in the network, and srv's store should live on the machine
// the server node represents.
func NewNetTransport(net *netsim.Network, clientNode, serverNode string, srv *Server) (*NetTransport, error) {
	if net.Node(clientNode) == nil || net.Node(serverNode) == nil {
		return nil, fmt.Errorf("vfs: transport %s->%s: unknown node", clientNode, serverNode)
	}
	return &NetTransport{net: net, client: clientNode, server: serverNode, srv: srv}, nil
}

// netCall is one RPC in flight across the network.
type netCall struct {
	t         *NetTransport
	read      bool
	file      string
	off, size int64
	done      func(error)
	srvErr    error

	arriveFn  func(any)   // request delivered: dispatch to the server
	respondFn func(error) // server responded: send the reply
	replyFn   func(any)   // reply delivered: complete the RPC
	nextFree  *netCall
}

func (t *NetTransport) getCall() *netCall {
	c := t.freeCalls
	if c == nil {
		c = &netCall{t: t}
		c.arriveFn = c.arrive
		c.respondFn = c.respond
		c.replyFn = c.reply
		return c
	}
	t.freeCalls = c.nextFree
	c.nextFree = nil
	return c
}

func (t *NetTransport) putCall(c *netCall) {
	c.read = false
	c.file = ""
	c.off, c.size = 0, 0
	c.done = nil
	c.srvErr = nil
	c.nextFree = t.freeCalls
	t.freeCalls = c
}

func (c *netCall) arrive(any) {
	if c.read {
		c.t.srv.handleRead(c.file, c.off, c.size, c.respondFn)
		return
	}
	c.t.srv.handleWrite(c.file, c.off, c.size, c.respondFn)
}

func (c *netCall) respond(srvErr error) {
	c.srvErr = srvErr
	t := c.t
	replyBytes := int64(rpcHeaderBytes)
	if c.read {
		replyBytes += c.size
	}
	if sendErr := t.net.Send(t.server, t.client, replyBytes, nil, c.replyFn); sendErr != nil {
		done := c.done
		t.putCall(c)
		done(sendErr)
	}
}

func (c *netCall) reply(any) {
	done, err := c.done, c.srvErr
	c.t.putCall(c)
	done(err)
}

// Read implements Transport.
func (t *NetTransport) Read(file string, off, size int64, done func(error)) {
	c := t.getCall()
	c.read = true
	c.file, c.off, c.size, c.done = file, off, size, done
	if err := t.net.Send(t.client, t.server, rpcHeaderBytes, nil, c.arriveFn); err != nil {
		t.putCall(c)
		done(err)
	}
}

// Write implements Transport.
func (t *NetTransport) Write(file string, off, size int64, done func(error)) {
	c := t.getCall()
	c.file, c.off, c.size, c.done = file, off, size, done
	if err := t.net.Send(t.client, t.server, size+rpcHeaderBytes, nil, c.arriveFn); err != nil {
		t.putCall(c)
		done(err)
	}
}

// LoopbackTransport is an NFS mount of the local machine: RPCs traverse
// the network stack (client and server side CPU) but no wire. This is
// Table 2's "LoopbackNFS" configuration, which the paper uses to isolate
// the NFS/RPC stack cost from network cost.
type LoopbackTransport struct {
	k   *sim.Kernel
	srv *Server
	// StackLatency is the one-way stack traversal cost.
	StackLatency sim.Duration

	freeCalls *loopCall
}

var _ Transport = (*LoopbackTransport)(nil)

// NewLoopbackTransport wraps srv behind a local RPC stack.
func NewLoopbackTransport(k *sim.Kernel, srv *Server) *LoopbackTransport {
	return &LoopbackTransport{k: k, srv: srv, StackLatency: sim.Millisecond}
}

// loopCall is one RPC crossing the loopback stack, pooled like netCall.
type loopCall struct {
	t         *LoopbackTransport
	read      bool
	file      string
	off, size int64
	done      func(error)
	srvErr    error

	sendFn    func()      // after the client-side stack: dispatch
	respondFn func(error) // server responded: cross back
	replyFn   func()      // after the server-side stack: complete
	nextFree  *loopCall
}

func (t *LoopbackTransport) getCall() *loopCall {
	c := t.freeCalls
	if c == nil {
		c = &loopCall{t: t}
		c.sendFn = c.send
		c.respondFn = c.respond
		c.replyFn = c.reply
		return c
	}
	t.freeCalls = c.nextFree
	c.nextFree = nil
	return c
}

func (t *LoopbackTransport) putCall(c *loopCall) {
	c.read = false
	c.file = ""
	c.off, c.size = 0, 0
	c.done = nil
	c.srvErr = nil
	c.nextFree = t.freeCalls
	t.freeCalls = c
}

func (c *loopCall) send() {
	if c.read {
		c.t.srv.handleRead(c.file, c.off, c.size, c.respondFn)
		return
	}
	c.t.srv.handleWrite(c.file, c.off, c.size, c.respondFn)
}

func (c *loopCall) respond(err error) {
	c.srvErr = err
	c.t.k.After(c.t.StackLatency, c.replyFn)
}

func (c *loopCall) reply() {
	done, err := c.done, c.srvErr
	c.t.putCall(c)
	done(err)
}

// Read implements Transport.
func (t *LoopbackTransport) Read(file string, off, size int64, done func(error)) {
	c := t.getCall()
	c.read = true
	c.file, c.off, c.size, c.done = file, off, size, done
	t.k.After(t.StackLatency, c.sendFn)
}

// Write implements Transport.
func (t *LoopbackTransport) Write(file string, off, size int64, done func(error)) {
	c := t.getCall()
	c.file, c.off, c.size, c.done = file, off, size, done
	t.k.After(t.StackLatency, c.sendFn)
}
