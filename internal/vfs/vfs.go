// Package vfs implements the grid virtual file system of the paper's
// data-management layer (the PUNCH virtual file system, PVFS): an
// NFS-style block protocol between per-session client proxies and file
// servers, with client-side caching and prefetching. It is what lets a
// VM's state live on an image server in one administrative domain while
// the VM runs in another — on-demand block transfer instead of
// whole-file staging.
//
// Three transports cover the paper's configurations:
//
//   - NetTransport over a LAN (data sessions between VMs, Figure 2)
//   - NetTransport over a WAN (image sessions across universities, Table 1)
//   - LoopbackTransport (Table 2's "LoopbackNFS" rows: an NFS mount of
//     the local host, exercising the RPC stack without a wire)
package vfs

import (
	"errors"
	"fmt"

	"vmgrid/internal/netsim"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
)

// ErrUnknownFile is returned (asynchronously) for reads of files the
// server does not export.
var ErrUnknownFile = errors.New("vfs: unknown file")

// rpcHeaderBytes approximates the on-wire size of request/response
// framing (RPC + NFS + TCP headers).
const rpcHeaderBytes = 160

// Server exports a store's files to clients.
type Server struct {
	store *storage.Store
	// procCost is the server-side CPU cost of fielding one RPC.
	procCost sim.Duration
	ops      uint64
}

// NewServer exports all files of store.
func NewServer(store *storage.Store) *Server {
	return &Server{store: store, procCost: 150 * sim.Microsecond}
}

// Store returns the exported store.
func (s *Server) Store() *storage.Store { return s.store }

// Ops returns the number of RPCs served.
func (s *Server) Ops() uint64 { return s.ops }

// handleRead services one read RPC: check the export, fetch the range
// from the server's disk (sequential, as the kernel readahead would),
// and respond.
func (s *Server) handleRead(file string, off, size int64, respond func(err error)) {
	s.ops++
	k := s.store.Host().Kernel()
	f, err := s.store.Open(file)
	if err != nil {
		k.After(s.procCost, func() { respond(fmt.Errorf("%w: %s", ErrUnknownFile, file)) })
		return
	}
	k.After(s.procCost, func() {
		f.Read(off, size, func() { respond(nil) })
	})
}

// handleWrite services one write RPC.
func (s *Server) handleWrite(file string, off, size int64, respond func(err error)) {
	s.ops++
	k := s.store.Host().Kernel()
	f, err := s.store.OpenOrCreate(file)
	if err != nil {
		k.After(s.procCost, func() { respond(err) })
		return
	}
	k.After(s.procCost, func() {
		f.Write(off, size, func() { respond(nil) })
	})
}

// Transport carries RPCs from a client proxy to a server.
type Transport interface {
	// Read requests [off, off+size) of file; done receives the server's
	// error (nil on success) once the data has arrived back.
	Read(file string, off, size int64, done func(error))
	// Write sends [off, off+size) of file; done receives the ack.
	Write(file string, off, size int64, done func(error))
}

// NetTransport carries RPCs across a simulated network.
type NetTransport struct {
	net    *netsim.Network
	client string
	server string
	srv    *Server
}

var _ Transport = (*NetTransport)(nil)

// NewNetTransport connects a client node to a server node. Both names
// must exist in the network, and srv's store should live on the machine
// the server node represents.
func NewNetTransport(net *netsim.Network, clientNode, serverNode string, srv *Server) (*NetTransport, error) {
	if net.Node(clientNode) == nil || net.Node(serverNode) == nil {
		return nil, fmt.Errorf("vfs: transport %s->%s: unknown node", clientNode, serverNode)
	}
	return &NetTransport{net: net, client: clientNode, server: serverNode, srv: srv}, nil
}

// Read implements Transport.
func (t *NetTransport) Read(file string, off, size int64, done func(error)) {
	err := t.net.Send(t.client, t.server, rpcHeaderBytes, nil, func(any) {
		t.srv.handleRead(file, off, size, func(srvErr error) {
			if sendErr := t.net.Send(t.server, t.client, size+rpcHeaderBytes, nil, func(any) {
				done(srvErr)
			}); sendErr != nil {
				done(sendErr)
			}
		})
	})
	if err != nil {
		done(err)
	}
}

// Write implements Transport.
func (t *NetTransport) Write(file string, off, size int64, done func(error)) {
	err := t.net.Send(t.client, t.server, size+rpcHeaderBytes, nil, func(any) {
		t.srv.handleWrite(file, off, size, func(srvErr error) {
			if sendErr := t.net.Send(t.server, t.client, rpcHeaderBytes, nil, func(any) {
				done(srvErr)
			}); sendErr != nil {
				done(sendErr)
			}
		})
	})
	if err != nil {
		done(err)
	}
}

// LoopbackTransport is an NFS mount of the local machine: RPCs traverse
// the network stack (client and server side CPU) but no wire. This is
// Table 2's "LoopbackNFS" configuration, which the paper uses to isolate
// the NFS/RPC stack cost from network cost.
type LoopbackTransport struct {
	k   *sim.Kernel
	srv *Server
	// StackLatency is the one-way stack traversal cost.
	StackLatency sim.Duration
}

var _ Transport = (*LoopbackTransport)(nil)

// NewLoopbackTransport wraps srv behind a local RPC stack.
func NewLoopbackTransport(k *sim.Kernel, srv *Server) *LoopbackTransport {
	return &LoopbackTransport{k: k, srv: srv, StackLatency: sim.Millisecond}
}

// Read implements Transport.
func (t *LoopbackTransport) Read(file string, off, size int64, done func(error)) {
	t.k.After(t.StackLatency, func() {
		t.srv.handleRead(file, off, size, func(err error) {
			t.k.After(t.StackLatency, func() { done(err) })
		})
	})
}

// Write implements Transport.
func (t *LoopbackTransport) Write(file string, off, size int64, done func(error)) {
	t.k.After(t.StackLatency, func() {
		t.srv.handleWrite(file, off, size, func(err error) {
			t.k.After(t.StackLatency, func() { done(err) })
		})
	})
}
