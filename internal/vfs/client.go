package vfs

import (
	"errors"
	"fmt"

	"vmgrid/internal/lru"
	"vmgrid/internal/obs"
	"vmgrid/internal/retry"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
)

// Sentinel errors callers match with errors.Is.
var (
	// ErrUnavailable wraps the last transport error once the retry policy
	// is exhausted: the server is treated as down, not merely slow.
	ErrUnavailable = errors.New("vfs: server unavailable")
	// ErrTimeout marks an RPC attempt abandoned by the per-op timeout
	// (the reply may still be in flight; it is ignored if it arrives).
	ErrTimeout = errors.New("vfs: rpc timeout")
)

// A retry.Policy adds fault tolerance to a client: each RPC attempt
// gets a per-op timeout (Policy.Timeout — it must exceed the worst-case
// RPC service time, queueing included, or healthy-but-slow servers will
// look dead), and failed or timed-out attempts are reissued with capped
// exponential backoff (base 10 ms when unset) before the client gives
// up and reports ErrUnavailable. The zero value keeps the historical
// behavior: one attempt, no timeout (a lost RPC then hangs forever, so
// any lossy transport needs a Timeout).

// DefaultRetry is the policy supervised sessions thread through their
// mounts: generous per-op timeouts so only genuinely lost RPCs reissue.
func DefaultRetry() retry.Policy {
	return retry.Policy{
		MaxAttempts: 4,
		Timeout:     5 * sim.Second,
		Backoff:     50 * sim.Millisecond,
		MaxBackoff:  2 * sim.Second,
	}
}

// Config tunes a client proxy.
type Config struct {
	// Rsize is the maximum bytes per read RPC.
	Rsize int64
	// Prefetch is the window fetched on a miss (≥ Rsize enables the
	// proxy prefetching engine of Figure 2; == Rsize disables it).
	Prefetch int64
	// CacheBytes is the proxy's block cache capacity (0 disables
	// caching).
	CacheBytes int64
	// PerOpCost is the client-side cost charged on every read
	// operation, hit or miss: the in-guest NFS client plus the
	// user-level proxy crossing. The paper's Table 1 shows this as the
	// PVFS rows' inflated system time. Loopback transports already
	// charge a stack latency, so their preset leaves this zero.
	PerOpCost sim.Duration
	// WriteBack enables the proxy's write buffer (Figure 2): writes are
	// acknowledged once buffered and drain to the server asynchronously,
	// up to MaxDirty outstanding bytes. Zero MaxDirty with WriteBack set
	// uses a 4 MB default.
	WriteBack bool
	// MaxDirty bounds buffered-but-unacknowledged write data; writers
	// stall beyond it (the throttle real page caches apply).
	MaxDirty int64
	// Retry is the transport fault-tolerance policy (zero = one attempt,
	// no timeout — the presets' historical behavior).
	Retry retry.Policy
	// Trace, when non-nil, records a span per RPC attempt and the
	// client's counters into the shared observability layer.
	Trace *obs.Tracer
	// Ctx, when valid, parents the RPC spans under the owning session's
	// causal tree, so block waits show up on its critical path.
	Ctx obs.SpanContext
	// Fence, when non-nil, is evaluated before every write RPC is issued
	// (write-through and write-back drains alike); a non-nil error fails
	// the RPC without touching the transport. Sessions thread fencing
	// tokens through it so a superseded incarnation's dirty blocks are
	// rejected instead of overwriting state owned by its successor.
	Fence func() error
}

// Presets matching the paper's three deployment points.

// LoopbackNFSConfig models a kernel NFS client over the loopback:
// 16 KB transfers with standard client readahead (4 pages) and a small
// page-cache window. No user-level proxy sits on this path, so there is
// no per-operation proxy cost — the stack latency lives in the
// transport.
func LoopbackNFSConfig() Config {
	return Config{Rsize: 16 << 10, Prefetch: 64 << 10, CacheBytes: 4 << 20}
}

// LANConfig models a PVFS proxy to a data server on the same LAN.
func LANConfig() Config {
	return Config{
		Rsize: 32 << 10, Prefetch: 128 << 10, CacheBytes: 64 << 20,
		PerOpCost: 1200 * sim.Microsecond,
		WriteBack: true, MaxDirty: 4 << 20,
	}
}

// WANConfig models a PVFS proxy to a server across the wide area, where
// aggressive prefetching amortizes the round trip.
func WANConfig() Config {
	return Config{
		Rsize: 32 << 10, Prefetch: 192 << 10, CacheBytes: 128 << 20,
		PerOpCost: 1200 * sim.Microsecond,
		WriteBack: true, MaxDirty: 8 << 20,
	}
}

func (c Config) validate() error {
	if c.Rsize <= 0 {
		return fmt.Errorf("vfs: rsize %d", c.Rsize)
	}
	if c.Prefetch < c.Rsize {
		return fmt.Errorf("vfs: prefetch %d < rsize %d", c.Prefetch, c.Rsize)
	}
	if c.CacheBytes < 0 {
		return fmt.Errorf("vfs: cache %d", c.CacheBytes)
	}
	if c.MaxDirty < 0 {
		return fmt.Errorf("vfs: max dirty %d", c.MaxDirty)
	}
	if c.Retry.MaxAttempts < 0 || c.Retry.Timeout < 0 ||
		c.Retry.Backoff < 0 || c.Retry.MaxBackoff < 0 {
		return fmt.Errorf("vfs: negative retry policy %+v", c.Retry)
	}
	return nil
}

// Client is a per-session proxy: it caches and prefetches blocks from
// one server over one transport. RPCs are issued one at a time (FIFO),
// like a synchronous NFS client.
//
// The data plane is allocation-free at steady state: RPCs and
// multi-span reads run through freelisted call/readOp structs whose
// callbacks are bound once at allocation, the block cache is an
// intrusive LRU with recycled nodes, and the miss walk reuses
// client-owned scratch buffers. A fully cached read costs two pooled
// kernel events and nothing else.
type Client struct {
	k   *sim.Kernel
	t   Transport
	cfg Config

	cache     *lru.Cache[blockKey]
	capBlocks int

	queue  []*call
	qhead  int
	inCall bool

	// fastRPC is set when the retry policy is a single attempt with no
	// timeout: the RPC then settles exactly once and the pooled call can
	// carry the span/latency accounting itself, skipping the
	// closure-per-attempt transact machinery.
	fastRPC bool

	hits, misses, remoteOps uint64
	bytesFetched            uint64
	transportErrs           uint64
	retries                 uint64
	lastErr                 error

	// Cached instruments; the nil instruments of a nil Trace make every
	// recording below a single pointer test.
	mRPCs    *obs.Counter
	mRetries *obs.Counter
	mErrs    *obs.Counter
	hRPC     *obs.Histogram

	// write-back state
	dirty        int64
	stalled      []stalledWrite
	flushWaiters []func()

	// freelists and scratch buffers for the zero-alloc read path
	freeCalls      *call
	freeReads      *readOp
	scratchMissing []int64
	scratchSpans   [][2]int64
}

type stalledWrite struct {
	size int64
	ack  func() // the writer's done callback (may be nil)
}

type blockKey struct {
	file  string
	block int64
}

// NewClient creates a proxy over transport t.
func NewClient(k *sim.Kernel, t Transport, cfg Config) (*Client, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.WriteBack && cfg.MaxDirty == 0 {
		cfg.MaxDirty = 4 << 20
	}
	capBlocks := int(cfg.CacheBytes / cfg.Rsize)
	reg := cfg.Trace.Metrics()
	return &Client{
		k:         k,
		t:         t,
		cfg:       cfg,
		cache:     lru.New[blockKey](capBlocks),
		capBlocks: capBlocks,
		fastRPC:   cfg.Retry.Attempts() <= 1 && cfg.Retry.Timeout == 0,
		mRPCs:     reg.Counter("vfs.rpcs"),
		mRetries:  reg.Counter("vfs.retries"),
		mErrs:     reg.Counter("vfs.transport-errors"),
		hRPC:      reg.Histogram("vfs.rpc-latency"),
	}, nil
}

// Hits returns blocks served from the proxy cache.
func (c *Client) Hits() uint64 { return c.hits }

// Misses returns blocks that required a fetch.
func (c *Client) Misses() uint64 { return c.misses }

// RemoteOps returns the number of RPCs issued.
func (c *Client) RemoteOps() uint64 { return c.remoteOps }

// BytesFetched returns the total bytes pulled from the server.
func (c *Client) BytesFetched() uint64 { return c.bytesFetched }

// TransportErrors returns how many RPCs failed (server unreachable or
// unknown file). Reads still complete — like a soft-mounted NFS client
// returning EIO — so callers must check this to detect data loss.
func (c *Client) TransportErrors() uint64 { return c.transportErrs }

// LastError returns the most recent transport error (nil if none).
func (c *Client) LastError() error { return c.lastErr }

// Retries returns how many RPC attempts were reissued by the retry
// policy (0 without a policy).
func (c *Client) Retries() uint64 { return c.retries }

// vfsBaseBackoff is the historical base backoff applied when the
// policy leaves Backoff zero.
const vfsBaseBackoff = 10 * sim.Millisecond

// call is one queued RPC, pooled on the client freelist. Its callbacks
// are bound once when the struct is first allocated, so a steady-state
// RPC issues with zero allocations. Exactly one of the three completion
// shapes applies: owner != nil (read span), wb (write-back drain), or
// neither (write-through, wdone fires after the ack).
type call struct {
	c          *Client
	op         string
	file       string
	off, bytes int64

	owner  *readOp // read span: countdown on the owning read
	wb     bool    // write-back drain: release dirty bytes on settle
	wbSize int64
	wdone  func() // write-through ack

	// fast-path attempt state (unused when the retry policy engages)
	fast  bool
	sp    obs.Span
	began sim.Time

	issueFn  func(func(error)) // bound to issue
	settleFn func(error)       // bound to settle
	startFn  func()            // bound to start; what the queue runs
	nextFree *call
}

func (c *Client) getCall() *call {
	l := c.freeCalls
	if l == nil {
		l = &call{c: c}
		l.issueFn = l.issue
		l.settleFn = l.settle
		l.startFn = l.start
		return l
	}
	c.freeCalls = l.nextFree
	l.nextFree = nil
	return l
}

func (c *Client) putCall(l *call) {
	l.op, l.file = "", ""
	l.off, l.bytes = 0, 0
	l.owner = nil
	l.wb, l.wbSize = false, 0
	l.wdone = nil
	l.fast = false
	l.sp = obs.Span{}
	l.began = 0
	l.nextFree = c.freeCalls
	c.freeCalls = l
}

// start runs when the call reaches the head of the RPC queue.
func (l *call) start() {
	c := l.c
	if l.op != "read" && c.cfg.Fence != nil {
		if err := c.cfg.Fence(); err != nil {
			l.settle(err)
			return
		}
	}
	c.remoteOps++
	c.mRPCs.Inc()
	if l.op == "read" {
		c.bytesFetched += uint64(l.bytes)
	}
	if !c.fastRPC {
		c.transact(l.op, l.issueFn, l.settleFn)
		return
	}
	l.fast = true
	l.sp = c.cfg.Trace.BeginChild(c.cfg.Ctx, "vfs", "rpc", l.op)
	l.began = c.k.Now()
	l.issue(l.settleFn)
}

// issue fires the transport RPC with cb as the attempt's completion.
func (l *call) issue(cb func(error)) {
	if l.op == "read" {
		l.c.t.Read(l.file, l.off, l.bytes, cb)
		return
	}
	l.c.t.Write(l.file, l.off, l.bytes, cb)
}

// settle finishes the RPC: once per call on the fast path, or once from
// transact after the retry policy resolves.
func (l *call) settle(err error) {
	c := l.c
	if l.fast {
		l.sp.EndErr(err)
		c.hRPC.Observe(c.k.Now().Sub(l.began))
	}
	c.noteErr(err)
	switch {
	case l.owner != nil:
		o := l.owner
		c.callDone()
		c.putCall(l)
		o.outstanding--
		if o.outstanding == 0 {
			done := o.done
			c.putRead(o)
			if done != nil {
				done()
			}
		}
	case l.wb:
		size := l.wbSize
		c.putCall(l)
		c.dirty -= size
		c.releaseStalled()
		c.callDone()
	default:
		done := l.wdone
		c.callDone()
		c.putCall(l)
		if done != nil {
			done()
		}
	}
}

// readOp coordinates one Backend read across its missing spans, pooled
// like call. afterCostFn is the PerOpCost continuation, bound once.
type readOp struct {
	c           *Client
	file        string
	off, size   int64
	done        func()
	outstanding int
	afterCostFn func()
	nextFree    *readOp
}

func (c *Client) getRead() *readOp {
	o := c.freeReads
	if o == nil {
		o = &readOp{c: c}
		o.afterCostFn = o.afterCost
		return o
	}
	c.freeReads = o.nextFree
	o.nextFree = nil
	return o
}

func (c *Client) putRead(o *readOp) {
	o.file = ""
	o.off, o.size = 0, 0
	o.done = nil
	o.outstanding = 0
	o.nextFree = c.freeReads
	c.freeReads = o
}

func (o *readOp) afterCost() { o.c.readAfterClientCost(o) }

// transact issues one RPC through the retry policy. issue is invoked
// once per attempt with that attempt's completion callback; done
// receives nil on success, or the final error — wrapped in
// ErrUnavailable when the policy was exhausted — once no attempts
// remain. Late replies from timed-out attempts are ignored. op labels
// the RPC's trace span ("read"/"write").
func (c *Client) transact(op string, issue func(done func(error)), done func(error)) {
	p := c.cfg.Retry
	attempts := p.Attempts()
	var attempt func(n int)
	attempt = func(n int) {
		settled := false
		var timer sim.EventID
		sp := c.cfg.Trace.BeginChild(c.cfg.Ctx, "vfs", "rpc", op)
		start := c.k.Now()
		finish := func(err error) {
			if settled {
				return // late reply after timeout, or stale timer
			}
			settled = true
			c.k.Cancel(timer)
			sp.EndErr(err)
			c.hRPC.Observe(c.k.Now().Sub(start))
			if err == nil {
				done(nil)
				return
			}
			// A server NAK is a definitive reply, not a lost message:
			// retrying cannot change the answer.
			if errors.Is(err, ErrUnknownFile) {
				done(err)
				return
			}
			if n >= attempts {
				if attempts > 1 {
					err = fmt.Errorf("%w: %w (after %d attempts)", ErrUnavailable, err, n)
				}
				done(err)
				return
			}
			c.retries++
			c.mRetries.Inc()
			c.k.After(p.Delay(n, vfsBaseBackoff), func() { attempt(n + 1) })
		}
		if p.Timeout > 0 {
			timer = c.k.After(p.Timeout, func() {
				finish(fmt.Errorf("%w after %v", ErrTimeout, p.Timeout))
			})
		}
		issue(finish)
	}
	attempt(1)
}

func (c *Client) noteErr(err error) {
	if err != nil {
		c.transportErrs++
		c.mErrs.Inc()
		c.lastErr = err
	}
}

// Open returns a Backend for the named remote file of the given size.
func (c *Client) Open(file string, size int64) *RemoteFile {
	return &RemoteFile{client: c, file: file, size: size}
}

// enqueue serializes RPC issue.
func (c *Client) enqueue(l *call) {
	if c.inCall {
		c.queue = append(c.queue, l)
		return
	}
	c.inCall = true
	l.start()
}

func (c *Client) callDone() {
	if c.qhead >= len(c.queue) {
		c.queue = c.queue[:0]
		c.qhead = 0
		c.inCall = false
		return
	}
	next := c.queue[c.qhead]
	c.queue[c.qhead] = nil
	c.qhead++
	next.start()
}

func (c *Client) cached(key blockKey) bool {
	return c.cache.Touch(key)
}

func (c *Client) insert(key blockKey) {
	if c.cfg.CacheBytes < c.cfg.Rsize {
		return
	}
	if c.cache.Touch(key) {
		return
	}
	for c.cache.Len() >= c.capBlocks && c.cache.Len() > 0 {
		c.cache.EvictOldest()
	}
	c.cache.Insert(key)
}

// RemoteFile is a storage.Backend served by the proxy.
type RemoteFile struct {
	client *Client
	file   string
	size   int64
}

var _ storage.Backend = (*RemoteFile)(nil)

// Name implements storage.Backend.
func (f *RemoteFile) Name() string { return "vfs:" + f.file }

// Size implements storage.Backend.
func (f *RemoteFile) Size() int64 { return f.size }

// Read implements storage.Backend: walk the covered blocks, fetch the
// missing ones (prefetch-window at a time), and complete when every
// block is resident.
func (f *RemoteFile) Read(off, size int64, done func()) {
	f.client.read(f.file, off, size, done)
}

// ReadSequential implements storage.Backend (the prefetcher already
// exploits sequentiality).
func (f *RemoteFile) ReadSequential(off, size int64, done func()) {
	f.client.read(f.file, off, size, done)
}

// noopAck stands in for a nil writer callback so the ack event can be
// scheduled without minting a closure.
func noopAck() {}

// Write implements storage.Backend. Without WriteBack it is a
// write-through RPC: done fires on the server's acknowledgement. With
// WriteBack (Figure 2's "write buffers"), done fires once the data is
// buffered — immediately, unless the dirty bound forces a stall — and
// the RPC drains in the background; use Client.Flush for durability.
// Written blocks become resident in the proxy cache either way.
func (f *RemoteFile) Write(off, size int64, done func()) {
	c := f.client
	if size <= 0 {
		size = 1
	}
	rsize := c.cfg.Rsize
	for b := off / rsize; b <= (off+size-1)/rsize; b++ {
		c.insert(blockKey{file: f.file, block: b})
	}
	if end := off + size; end > f.size {
		f.size = end
	}

	l := c.getCall()
	l.op = "write"
	l.file = f.file
	l.off, l.bytes = off, size

	if !c.cfg.WriteBack {
		l.wdone = done
		c.enqueue(l)
		return
	}

	ack := done
	if ack == nil {
		ack = noopAck
	}
	if c.dirty+size > c.cfg.MaxDirty && c.dirty > 0 {
		// Throttle: the ack waits until enough dirty data drains.
		c.stalled = append(c.stalled, stalledWrite{size: size, ack: ack})
	} else {
		c.k.After(hitCost, ack)
	}
	c.dirty += size
	l.wb = true
	l.wbSize = size
	c.enqueue(l)
}

// releaseStalled acknowledges throttled writers whose data now fits and
// wakes flush waiters when the buffer is clean.
func (c *Client) releaseStalled() {
	for len(c.stalled) > 0 {
		head := c.stalled[0]
		// The head's bytes are already counted in dirty; release it once
		// the rest of the buffer leaves room for it.
		if c.dirty-head.size+head.size > c.cfg.MaxDirty && c.dirty > head.size {
			break
		}
		c.stalled = c.stalled[1:]
		c.k.After(hitCost, head.ack)
	}
	if c.dirty == 0 && len(c.flushWaiters) > 0 {
		waiters := c.flushWaiters
		c.flushWaiters = nil
		for _, w := range waiters {
			c.k.After(0, w)
		}
	}
}

// DirtyBytes returns buffered write data not yet on the server.
func (c *Client) DirtyBytes() int64 { return c.dirty }

// Flush invokes done once every buffered write has reached the server
// (immediately if the buffer is clean).
func (c *Client) Flush(done func()) {
	if done == nil {
		return
	}
	if c.dirty == 0 {
		c.k.After(0, done)
		return
	}
	c.flushWaiters = append(c.flushWaiters, done)
}

// read satisfies [off, off+size) through the cache.
func (c *Client) read(file string, off, size int64, done func()) {
	o := c.getRead()
	o.file, o.off, o.size, o.done = file, off, size, done
	if c.cfg.PerOpCost > 0 {
		c.k.After(c.cfg.PerOpCost, o.afterCostFn)
		return
	}
	c.readAfterClientCost(o)
}

// readAfterClientCost is the post-PerOpCost body of a read: one pass
// over the covered blocks collects the missing runs into client scratch,
// a second pass batches them into prefetch-window-aligned spans, and
// each span becomes one pooled RPC. Both scratch buffers are fully
// consumed before this returns (the kernel is single-threaded), so they
// are safe to share across every read on the client.
func (c *Client) readAfterClientCost(o *readOp) {
	file, off, size := o.file, o.off, o.size
	if size <= 0 {
		size = 1
	}
	rsize := c.cfg.Rsize
	first := off / rsize
	last := (off + size - 1) / rsize

	// Collect the missing block runs.
	missing := c.scratchMissing[:0]
	for b := first; b <= last; b++ {
		if c.cached(blockKey{file: file, block: b}) {
			c.hits++
		} else {
			c.misses++
			missing = append(missing, b)
		}
	}
	c.scratchMissing = missing
	if len(missing) == 0 {
		done := o.done
		c.putRead(o)
		if done == nil {
			done = noopAck
		}
		c.k.After(hitCost, done)
		return
	}

	// Fetch prefetch-window-aligned spans covering the missing blocks.
	window := c.cfg.Prefetch / rsize
	if window < 1 {
		window = 1
	}
	spans := c.scratchSpans[:0]
	i := 0
	for i < len(missing) {
		start := (missing[i] / window) * window
		end := start + window
		spans = append(spans, [2]int64{start, window})
		for i < len(missing) && missing[i] < end {
			i++
		}
	}
	c.scratchSpans = spans

	o.outstanding = len(spans)
	for _, span := range spans {
		startBlock, count := span[0], span[1]
		for b := startBlock; b < startBlock+count; b++ {
			c.insert(blockKey{file: file, block: b})
		}
		l := c.getCall()
		l.op = "read"
		l.file = file
		l.off = startBlock * rsize
		l.bytes = count * rsize
		l.owner = o
		c.enqueue(l)
	}
}

// hitCost is the proxy's in-memory service time for a fully cached read.
const hitCost = 30 * sim.Microsecond
