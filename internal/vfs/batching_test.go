package vfs

import (
	"fmt"
	"testing"

	"vmgrid/internal/sim"
)

// orderTransport wraps a Transport and records the order in which RPCs
// are issued to it and settle back, so tests can assert the client's
// FIFO serialization of batched reads against write-back drains.
type orderTransport struct {
	inner Transport
	log   []string
}

func (t *orderTransport) note(ev string) { t.log = append(t.log, ev) }

func (t *orderTransport) Read(file string, off, size int64, done func(error)) {
	t.note(fmt.Sprintf("read-issue %d+%d", off, size))
	t.inner.Read(file, off, size, func(err error) {
		t.note(fmt.Sprintf("read-settle %d+%d", off, size))
		done(err)
	})
}

func (t *orderTransport) Write(file string, off, size int64, done func(error)) {
	t.note(fmt.Sprintf("write-issue %d+%d", off, size))
	t.inner.Write(file, off, size, func(err error) {
		t.note(fmt.Sprintf("write-settle %d+%d", off, size))
		done(err)
	})
}

// TestBatchedReadCoalescesMissingBlocks: a cold sequential read covering
// many blocks issues one RPC per prefetch-window-aligned span, not one
// per block.
func TestBatchedReadCoalescesMissingBlocks(t *testing.T) {
	w := newWorld(t, false)
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	cfg := Config{Rsize: 16 << 10, Prefetch: 64 << 10, CacheBytes: 4 << 20}
	c, err := NewClient(w.k, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := c.Open("data", 1<<30)
	// 256 KB = 16 blocks = exactly 4 prefetch windows.
	reads := 0
	f.Read(0, 256<<10, func() { reads++ })
	w.k.Run()
	if reads != 1 {
		t.Fatalf("read completed %d times", reads)
	}
	if got := c.RemoteOps(); got != 4 {
		t.Errorf("RemoteOps = %d for a 16-block cold read, want 4 window spans", got)
	}
	if got := c.Misses(); got != 16 {
		t.Errorf("Misses = %d, want 16", got)
	}
	// Re-read: all blocks resident, no new RPC.
	f.Read(0, 256<<10, func() { reads++ })
	w.k.Run()
	if reads != 2 {
		t.Fatalf("cached read never completed")
	}
	if got := c.RemoteOps(); got != 4 {
		t.Errorf("RemoteOps = %d after cached re-read, want still 4", got)
	}
}

// TestBatchedReadFlushBeforeFetch: a batched read issued while a
// write-back drain is in flight must observe flush-before-fetch — the
// client's FIFO RPC queue settles the drain at the server before the
// read span goes out.
func TestBatchedReadFlushBeforeFetch(t *testing.T) {
	w := newWorld(t, true)
	net, _ := NewNetTransport(w.net, "client", "server", w.server)
	tr := &orderTransport{inner: net}
	cfg := WANConfig()
	c, err := NewClient(w.k, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := c.Open("data", 1<<30)

	// Buffer a write (acked locally, drain RPC enqueued) and immediately
	// read a range spanning the dirty blocks plus uncached ones.
	f.Write(0, 64<<10, nil)
	if c.DirtyBytes() != 64<<10 {
		t.Fatalf("DirtyBytes = %d after buffering", c.DirtyBytes())
	}
	readDone := false
	f.Read(0, 512<<10, func() { readDone = true })
	w.k.Run()
	if !readDone {
		t.Fatal("batched read never completed")
	}
	if c.DirtyBytes() != 0 {
		t.Errorf("DirtyBytes = %d after drain", c.DirtyBytes())
	}

	// The drain must fully settle before any read span is issued.
	var firstReadIssue, writeSettle = -1, -1
	for i, ev := range tr.log {
		switch {
		case firstReadIssue < 0 && len(ev) > 10 && ev[:10] == "read-issue":
			firstReadIssue = i
		case ev[:12] == "write-settle":
			writeSettle = i
		}
	}
	if writeSettle < 0 || firstReadIssue < 0 {
		t.Fatalf("missing RPCs in log: %v", tr.log)
	}
	if writeSettle > firstReadIssue {
		t.Errorf("read span issued before the write-back drain settled:\n%v", tr.log)
	}
}

// TestDirtyBytesExactUnderBatching: DirtyBytes tracks the byte-exact
// sum of buffered writes while span-batched reads interleave, and
// returns to zero after the drain.
func TestDirtyBytesExactUnderBatching(t *testing.T) {
	w := newWorld(t, true)
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	cfg := WANConfig()
	cfg.MaxDirty = 64 << 20 // no throttle: every write buffers instantly
	c, err := NewClient(w.k, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := c.Open("data", 1<<30)

	sizes := []int64{4 << 10, 32<<10 + 1, 64 << 10, 100, 256 << 10}
	var want int64
	for i, size := range sizes {
		f.Write(int64(i)<<20, size, nil)
		want += size
		// Interleave reads so the drain queue holds mixed call types.
		f.Read(int64(i+8)<<20, 48<<10, nil)
		if got := c.DirtyBytes(); got != want {
			t.Fatalf("DirtyBytes = %d after %d writes, want %d", got, i+1, want)
		}
	}
	flushed := false
	c.Flush(func() { flushed = true })
	w.k.Run()
	if !flushed {
		t.Fatal("flush never completed")
	}
	if got := c.DirtyBytes(); got != 0 {
		t.Errorf("DirtyBytes = %d after full drain", got)
	}
}

// benchTransport serves every RPC after a fixed latency without
// recording anything, so benchmark loops measure only the client.
type benchTransport struct {
	k       *sim.Kernel
	latency sim.Duration
}

func (t *benchTransport) Read(file string, off, size int64, done func(error)) {
	t.k.After(t.latency, func() { done(nil) })
}

func (t *benchTransport) Write(file string, off, size int64, done func(error)) {
	t.k.After(t.latency, func() { done(nil) })
}

// TestCachedReadZeroAllocs: a fully cached read — the data-plane hot
// path — allocates nothing once the client's call/read freelists and
// the kernel's event freelist are warm.
func TestCachedReadZeroAllocs(t *testing.T) {
	k := sim.NewKernel(1)
	tr := &benchTransport{k: k, latency: sim.Millisecond}
	cfg := Config{Rsize: 16 << 10, Prefetch: 64 << 10, CacheBytes: 4 << 20}
	c, err := NewClient(k, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := c.Open("data", 1<<30)
	// Warm the cache and every freelist.
	f.Read(0, 256<<10, nil)
	k.Run()

	allocs := testing.AllocsPerRun(200, func() {
		f.Read(0, 256<<10, nil)
		k.Run()
	})
	if allocs != 0 {
		t.Errorf("cached read allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkVFSReadCached measures the fully cached read path (hit
// walk + ack event only).
func BenchmarkVFSReadCached(b *testing.B) {
	k := sim.NewKernel(1)
	tr := &benchTransport{k: k, latency: sim.Millisecond}
	c, err := NewClient(k, tr, Config{Rsize: 16 << 10, Prefetch: 64 << 10, CacheBytes: 4 << 20})
	if err != nil {
		b.Fatal(err)
	}
	f := c.Open("data", 1<<30)
	f.Read(0, 256<<10, nil)
	k.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Read(0, 256<<10, nil)
		k.Run()
	}
}

// BenchmarkVFSReadMiss measures the cold path: span batching, pooled
// RPC issue, and settle, with caching disabled so every read misses.
func BenchmarkVFSReadMiss(b *testing.B) {
	k := sim.NewKernel(1)
	tr := &benchTransport{k: k, latency: sim.Millisecond}
	c, err := NewClient(k, tr, Config{Rsize: 16 << 10, Prefetch: 64 << 10, CacheBytes: 0})
	if err != nil {
		b.Fatal(err)
	}
	f := c.Open("data", 1<<30)
	f.Read(0, 256<<10, nil)
	k.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Read(0, 256<<10, nil)
		k.Run()
	}
}
